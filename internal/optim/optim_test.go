package optim_test

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
)

func TestPCGSolvesDiagonalSystem(t *testing.T) {
	// A = beta*biharm + I is SPD with a known spectral inverse, so PCG with
	// the exact inverse as preconditioner must converge in one iteration,
	// and with the identity preconditioner in a few.
	g := grid.MustNew(12, 12, 12)
	_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		beta := 0.1
		apply := func(v *field.Vector) *field.Vector {
			out := ops.Biharm(v)
			out.Scale(beta)
			out.Axpy(1, v)
			return out
		}
		inv := func(v *field.Vector) *field.Vector {
			return ops.DiagVector(v, func(k1, k2, k3 int) float64 {
				q := float64(k1*k1 + k2*k2 + k3*k3)
				return 1 / (beta*q*q + 1)
			})
		}
		ident := func(v *field.Vector) *field.Vector { return v.Clone() }
		b := field.NewVector(pe)
		b.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return math.Sin(x1), math.Cos(x2 + x3), math.Sin(2 * x2)
		})

		x, res := optim.PCG(apply, inv, b, 1e-10, 50)
		if !res.Converged || res.Iters > 2 {
			t.Errorf("exact preconditioner: converged=%v iters=%d", res.Converged, res.Iters)
		}
		check := apply(x)
		check.Axpy(-1, b)
		if rel := check.NormL2() / b.NormL2(); rel > 1e-9 {
			t.Errorf("residual %g", rel)
		}

		x2, res2 := optim.PCG(apply, ident, b, 1e-8, 200)
		if !res2.Converged {
			t.Errorf("identity preconditioner did not converge: relres %g", res2.RelRes)
		}
		check2 := apply(x2)
		check2.Axpy(-1, b)
		if rel := check2.NormL2() / b.NormL2(); rel > 1e-7 {
			t.Errorf("identity-prec residual %g", rel)
		}
		if res2.Iters <= res.Iters {
			t.Errorf("preconditioning should reduce iterations: %d vs %d", res.Iters, res2.Iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		ident := func(v *field.Vector) *field.Vector { return v.Clone() }
		b := field.NewVector(pe)
		x, res := optim.PCG(ident, ident, b, 1e-8, 10)
		if !res.Converged || x.NormL2() != 0 {
			t.Errorf("zero rhs: converged=%v norm=%g", res.Converged, x.NormL2())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// buildProblem creates the synthetic benchmark problem of §IV-A1 at the
// given size.
func buildProblem(pe *grid.Pencil, opt regopt.Options) (*regopt.Problem, error) {
	ops := spectral.New(pfft.NewPlan(pe))
	rhoT := field.NewScalar(pe)
	rhoT.SetFunc(func(x1, x2, x3 float64) float64 {
		s1, s2, s3 := math.Sin(x1), math.Sin(x2), math.Sin(x3)
		return (s1*s1 + s2*s2 + s3*s3) / 3
	})
	vStar := field.NewVector(pe)
	vStar.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return math.Cos(x1) * math.Sin(x2), math.Cos(x2) * math.Sin(x1), math.Cos(x1) * math.Sin(x3)
	})
	tmp, err := regopt.New(ops, rhoT, rhoT, opt)
	if err != nil {
		return nil, err
	}
	if opt.Incompressible {
		vStar = ops.Leray(vStar)
	}
	ctx := tmp.TS.NewContext(vStar, opt.Incompressible)
	rhoR := field.NewScalar(pe)
	copy(rhoR.Data, tmp.TS.State(ctx, rhoT)[opt.Nt])
	return regopt.New(ops, rhoT, rhoR, opt)
}

func TestGaussNewtonSolvesSyntheticRegistration(t *testing.T) {
	// End-to-end: the solver must reduce the gradient by 100x (the paper's
	// gtol = 1e-2) and shrink the misfit substantially.
	g := grid.MustNew(16, 16, 16)
	for _, p := range []int{1, 4} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pr, err := buildProblem(pe, regopt.DefaultOptions())
			if err != nil {
				return err
			}
			nopt := optim.DefaultNewtonOptions()
			res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pe), nopt)
			if !res.Converged {
				t.Errorf("p=%d: not converged: ||g|| %g -> %g after %d iters",
					p, res.GnormInit, res.GnormLast, res.Iters)
			}
			if res.MisfitLast > 0.25*res.MisfitInit {
				t.Errorf("p=%d: misfit only %g -> %g", p, res.MisfitInit, res.MisfitLast)
			}
			if res.Iters > 20 {
				t.Errorf("p=%d: too many Newton iterations: %d", p, res.Iters)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGaussNewtonIncompressible(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		opt := regopt.Options{Beta: 1e-2, Reg: regopt.RegH2, Nt: 4, GaussNewton: true, Incompressible: true}
		pr, err := buildProblem(pe, opt)
		if err != nil {
			return err
		}
		res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pe), optim.DefaultNewtonOptions())
		if res.GnormLast > 0.05*res.GnormInit {
			t.Errorf("incompressible: ||g|| %g -> %g", res.GnormInit, res.GnormLast)
		}
		// The computed velocity must be divergence free.
		if m := pr.Ops.Div(res.V).MaxAbs(); m > 1e-8 {
			t.Errorf("div v = %g", m)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewtonBeatsSteepestDescent(t *testing.T) {
	// The motivation for the Newton-Krylov scheme: far fewer outer
	// iterations than the first-order baseline at equal tolerance.
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)

		pr1, err := buildProblem(pe, regopt.DefaultOptions())
		if err != nil {
			return err
		}
		nopt := optim.DefaultNewtonOptions()
		newton := optim.GaussNewton[*field.Vector](pr1.Driver(), field.NewVector(pe), nopt)

		pr2, err := buildProblem(pe, regopt.DefaultOptions())
		if err != nil {
			return err
		}
		sdOpt := nopt
		sdOpt.MaxIters = 100
		sd := optim.SteepestDescent[*field.Vector](pr2.Driver(), field.NewVector(pe), sdOpt)

		if !newton.Converged {
			t.Fatalf("newton did not converge")
		}
		if sd.Converged && sd.Iters <= newton.Iters {
			t.Errorf("steepest descent unexpectedly fast: %d vs newton %d", sd.Iters, newton.Iters)
		}
		if !sd.Converged && sd.GnormLast < newton.GnormLast {
			t.Errorf("inconsistent comparison")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContinuationReachesTargetBeta(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		pr, err := buildProblem(pe, regopt.DefaultOptions())
		if err != nil {
			return err
		}
		drv := pr.Driver()
		res := optim.Continuation[*field.Vector](drv, drv.SetBeta, field.NewVector(pe),
			[]float64{1e-1, 1e-2, 1e-3}, optim.DefaultNewtonOptions())
		if pr.Opt.Beta != 1e-3 {
			t.Errorf("final beta %g", pr.Opt.Beta)
		}
		if res == nil || res.GnormLast > 0.05*res.GnormInit {
			t.Errorf("continuation did not converge at final level")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeshIndependenceOfNewtonIterations(t *testing.T) {
	// For fixed beta the paper reports mesh-independent Newton iteration
	// counts; check 12^3 vs 20^3 stay within a small additive margin.
	iters := map[int]int{}
	for _, n := range []int{12, 20} {
		g := grid.MustNew(n, n, n)
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, _ := grid.NewPencil(g, c)
			pr, err := buildProblem(pe, regopt.DefaultOptions())
			if err != nil {
				return err
			}
			res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pe), optim.DefaultNewtonOptions())
			iters[n] = res.Iters
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if d := iters[20] - iters[12]; d > 3 || d < -3 {
		t.Errorf("newton iterations not mesh independent: %v", iters)
	}
}

func TestMatvecsGrowAsBetaShrinks(t *testing.T) {
	// Table V of the paper: the preconditioner deteriorates with smaller
	// beta, so the number of Hessian matvecs must grow.
	g := grid.MustNew(12, 12, 12)
	counts := []int{}
	for _, beta := range []float64{1e-1, 1e-3} {
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, _ := grid.NewPencil(g, c)
			opt := regopt.DefaultOptions()
			opt.Beta = beta
			pr, err := buildProblem(pe, opt)
			if err != nil {
				return err
			}
			nopt := optim.DefaultNewtonOptions()
			nopt.MaxIters = 4 // fixed outer iterations as in Table V
			nopt.GradTol = 1e-12
			optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pe), nopt)
			counts = append(counts, pr.Matvecs)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if counts[1] <= counts[0] {
		t.Errorf("matvecs should grow as beta shrinks: %v", counts)
	}
}
