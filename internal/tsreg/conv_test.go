package tsreg

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/regopt"
)

// TestFDConvergence verifies the gradient/FD mismatch of the multiframe
// problem is a discretization consistency error: it must shrink under
// spatial refinement.
func TestFDConvergence(t *testing.T) {
	rels := []float64{}
	for _, n := range []int{16, 24, 32} {
		opt := regopt.DefaultOptions()
		withProblem(t, n, 1, 4, opt, func(pr *Problem, _ *field.Vector) error {
			pe := pr.Ops.Pe
			v := field.NewVector(pe)
			v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.2 * math.Sin(x2) * math.Cos(x3), -0.15 * math.Cos(x1), 0.1 * math.Sin(x1+x2)
			})
			w := field.NewVector(pe)
			w.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.3 * math.Cos(x2+x3), 0.2 * math.Sin(x3), -0.25 * math.Cos(x1) * math.Sin(x2)
			})
			gw := pr.EvalGradient(v).G.Dot(w)
			eps := 1e-5
			vp := v.Clone()
			vp.Axpy(eps, w)
			vm := v.Clone()
			vm.Axpy(-eps, w)
			fd := (pr.Evaluate(vp).J - pr.Evaluate(vm).J) / (2 * eps)
			rel := math.Abs(gw-fd) / math.Abs(fd)
			t.Logf("n=%d: gw=%g fd=%g rel=%g", n, gw, fd, rel)
			rels = append(rels, rel)
			return nil
		})
	}
	if rels[len(rels)-1] >= rels[0]/2 {
		t.Errorf("consistency error does not converge: %v", rels)
	}
}
