// Command regserve runs the registration job server: an HTTP/JSON daemon
// that accepts registration jobs, executes them through the distributed
// solver on a bounded worker pool, caches FFT plans and operator
// workspaces across jobs, and streams per-iteration progress.
//
//	regserve -addr :8080 -workers 4 -queue 16 -cache 8 -timeout 10m
//
// Submit a job and watch it:
//
//	curl -s localhost:8080/jobs -d '{"generator":"synthetic","n":[32,32,32],"tasks":4}'
//	curl -s localhost:8080/jobs/job-000001/events
//	curl -s localhost:8080/jobs/job-000001
//
// See README.md ("Registration as a service") for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diffreg/internal/par"
	"diffreg/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent solver slots")
	queue := flag.Int("queue", 16, "queued-job admission cap (beyond it: HTTP 429)")
	cache := flag.Int("cache", 0, "plan-cache capacity in operator-set collections (0 = 2*workers, negative disables)")
	timeout := flag.Duration("timeout", 0, "default per-job cooperative timeout (0 = none)")
	pool := flag.Int("pool", 0, "shared-memory worker pool size (0 = GOMAXPROCS)")
	quiet := flag.Bool("q", false, "suppress per-job log lines")
	flag.Parse()

	if *pool > 0 {
		par.SetWorkers(*pool)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		Logf:           logf,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("regserve: %v: draining (in-flight jobs stop at the next iteration boundary)", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	log.Printf("regserve: listening on %s (%d workers, queue %d, pool %d)", *addr, *workers, *queue, par.Workers())
	err := hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "regserve: %v\n", err)
		os.Exit(1)
	}
	srv.Close()
}
