package regopt

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/optim"
)

// solve runs the full Gauss-Newton driver on the synthetic problem and
// hands back the problem (for its counters) alongside the result.
func solve(t *testing.T, g grid.Grid, opt Options, nopt optim.NewtonOptions) (res *optim.Result[*field.Vector], matvecs, stateSolves int) {
	t.Helper()
	setup(t, g, 1, opt, func(pr *Problem) error {
		res = optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pr.Pe), nopt)
		matvecs = pr.Matvecs
		stateSolves = pr.StateSolves
		return nil
	})
	return res, matvecs, stateSolves
}

// TestQuadraticForcingFewerMatvecs is the convergence-history regression
// for the Eisenstat-Walker fix: the paper's quadratic forcing
// min(cap, sqrt(||g||/||g0||)) keeps early Krylov solves loose, so the
// solve must reach the same tolerance with strictly fewer Hessian matvecs
// than the legacy linear sequence (which over-solved early systems). On
// the default problem the measured counts are 4 vs 7 at identical outer
// trajectories (3 iterations), stable across 16^3..64^3.
func TestQuadraticForcingFewerMatvecs(t *testing.T) {
	n := 64
	if testing.Short() {
		n = 16
	}
	g := grid.MustNew(n, n, n)

	nopt := optim.DefaultNewtonOptions()
	nopt.Forcing = optim.ForcingQuadratic
	quad, quadMV, _ := solve(t, g, DefaultOptions(), nopt)
	nopt.Forcing = optim.ForcingLinear
	lin, linMV, _ := solve(t, g, DefaultOptions(), nopt)

	if !quad.Converged || !lin.Converged {
		t.Fatalf("both runs must converge: quadratic %v, linear %v", quad.Converged, lin.Converged)
	}
	if quad.Iters > lin.Iters {
		t.Errorf("looser forcing cost outer iterations: quadratic %d vs linear %d", quad.Iters, lin.Iters)
	}
	if quadMV >= linMV {
		t.Errorf("quadratic forcing should need fewer Hessian matvecs: %d vs %d (n=%d)", quadMV, linMV, n)
	}

	// Pin the recorded forcing sequence to the formulas, so a regression in
	// forcingEta is caught here even if the matvec counts happen to agree.
	for i, rec := range quad.History {
		want := math.Min(nopt.ForcingCap, math.Sqrt(rec.Gnorm/quad.GnormInit))
		if math.Abs(rec.Forcing-want) > 1e-14 {
			t.Errorf("quadratic iter %d: eta %g, want %g", i, rec.Forcing, want)
		}
	}
	for i, rec := range lin.History {
		want := math.Min(nopt.ForcingCap, rec.Gnorm/lin.GnormInit)
		if math.Abs(rec.Forcing-want) > 1e-14 {
			t.Errorf("linear iter %d: eta %g, want %g", i, rec.Forcing, want)
		}
	}
}

// TestEvalCacheEliminatesDuplicateSolves pins the line-search/gradient
// handshake: the accepted Armijo candidate is handed to the next
// EvalGradient as the same object, whose transport solve is reused instead
// of repeated. The forward-solve count of a full solve is therefore exactly
// one (initial gradient) plus one per line-search trial — previously every
// outer iteration paid one extra solve to re-evaluate the accepted iterate.
func TestEvalCacheEliminatesDuplicateSolves(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	res, _, stateSolves := solve(t, g, DefaultOptions(), optim.DefaultNewtonOptions())
	if !res.Converged {
		t.Fatal("solve did not converge")
	}
	want := 1
	for _, rec := range res.History {
		want += rec.LineTrial
	}
	if stateSolves != want {
		t.Errorf("state solves: %d, want 1 + sum(line trials) = %d", stateSolves, want)
	}
}

// TestEvalGradientReusesCachedEvaluate checks the cache mechanics at the
// API level: a gradient evaluation at the exact object just evaluated must
// not re-run the forward solve, while a distinct object (even with equal
// values) must.
func TestEvalGradientReusesCachedEvaluate(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		pr.Evaluate(v)
		if pr.StateSolves != 1 {
			t.Fatalf("state solves after Evaluate: %d", pr.StateSolves)
		}
		e := pr.EvalGradient(v)
		if pr.StateSolves != 1 {
			t.Errorf("EvalGradient(same object) re-ran the forward solve: %d", pr.StateSolves)
		}
		if pr.AdjointSolves != 1 {
			t.Errorf("adjoint solves: %d", pr.AdjointSolves)
		}
		if e.G == nil || e.Gnorm == 0 {
			t.Error("cached-path gradient is empty")
		}
		pr.EvalGradient(v.Clone())
		if pr.StateSolves != 2 {
			t.Errorf("EvalGradient(fresh object) must solve again: %d", pr.StateSolves)
		}
		return nil
	})
}

// TestIncompressibleIteratesDivergenceFree asserts the re-projection
// satellite: with every line-search candidate projected by Leray, the
// final iterate of a constrained solve sits on the divergence-free
// subspace at machine precision — not merely at the 1e-8 level the older
// smoke test allowed.
func TestIncompressibleIteratesDivergenceFree(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	opt := DefaultOptions()
	opt.Incompressible = true
	nopt := optim.DefaultNewtonOptions()
	nopt.MaxIters = 5
	setup(t, g, 1, opt, func(pr *Problem) error {
		res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pr.Pe), nopt)
		v := res.V
		if v.NormL2() == 0 {
			t.Fatal("solver did not move off the zero field")
		}
		rel := pr.Ops.Div(v).NormL2() / v.NormL2()
		if rel > 1e-12 {
			t.Errorf("relative ||div v|| after constrained solve: %g, want <= 1e-12", rel)
		}
		return nil
	})
}
