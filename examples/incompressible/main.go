// Incompressible registration: the paper's hardest setting — the velocity
// is constrained to div v = 0 through the Leray projection, so the
// computed deformation is locally volume preserving ("mass preserving" in
// medical imaging jargon, Table III). The diagnostic is det(grad y1): it
// must equal 1 everywhere, compared to the unconstrained solve where it
// varies freely.
package main

import (
	"fmt"
	"log"

	"diffreg"
)

func main() {
	template, reference, err := diffreg.SyntheticProblem(24, 24, 24, 4, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- unconstrained registration --")
	free, err := diffreg.Register(template, reference, diffreg.Config{
		Tasks: 2,
		Beta:  1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(free)

	fmt.Println("\n-- incompressible (volume preserving) registration --")
	iso, err := diffreg.Register(template, reference, diffreg.Config{
		Tasks:          2,
		Beta:           1e-3,
		Incompressible: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	report(iso)

	fmt.Println()
	fmt.Printf("volume distortion |det-1|: unconstrained %.4f, incompressible %.4f\n",
		maxDist(free), maxDist(iso))
	fmt.Println("the incompressible map preserves volume pointwise, at a higher")
	fmt.Println("per-iteration cost (the Leray projection and its extra FFTs)")
}

func report(r *diffreg.Result) {
	fmt.Printf("newton %d, matvecs %d, misfit %.3e -> %.3e\n",
		r.NewtonIters, r.HessianMatvecs, r.MisfitInit, r.MisfitFinal)
	fmt.Printf("det(grad y1) in [%.4f, %.4f]\n", r.DetMin, r.DetMax)
}

func maxDist(r *diffreg.Result) float64 {
	lo := r.DetMin - 1
	if lo < 0 {
		lo = -lo
	}
	hi := r.DetMax - 1
	if hi < 0 {
		hi = -hi
	}
	if lo > hi {
		return lo
	}
	return hi
}
