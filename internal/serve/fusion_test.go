package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"diffreg"
	"diffreg/internal/pfft"
)

// fusionSpecs returns three same-shape jobs with distinct solver knobs —
// fusable into one group, but with different trajectories, and with
// staggered budgets so one job drops out of the batch early.
func fusionSpecs() []JobSpec {
	base := JobSpec{
		Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 2,
		TimeSteps: 2, GradTol: 1e-12, MaxKrylovIters: 5, ReturnFields: true,
	}
	specs := make([]JobSpec, 3)
	for i := range specs {
		specs[i] = base
	}
	specs[0].Beta = 1e-2
	specs[0].MaxNewtonIters = 2
	specs[1].Beta = 5e-2
	specs[1].MaxNewtonIters = 2
	specs[2].Beta = 1e-2
	specs[2].MaxNewtonIters = 1 // drops out of the batch after one iteration
	return specs
}

// submitAll enqueues every spec and waits for all jobs to reach a
// terminal state, returning the results in submission order.
func submitAll(t *testing.T, srv *Server, specs []JobSpec) []*JobResult {
	t.Helper()
	jobs := make([]*Job, len(specs))
	for i, spec := range specs {
		job, err := srv.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i] = job
	}
	results := make([]*JobResult, len(jobs))
	for i, job := range jobs {
		select {
		case <-job.Done():
		case <-time.After(2 * time.Minute):
			t.Fatalf("job %d hung", i)
		}
		if st := job.Status(); st.State != JobDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		results[i] = job.Result()
	}
	return results
}

// TestFusedServerBitIdenticalToTimeSliced is the serve-layer identity
// gate: the same three jobs, run through a MaxBatch=4 server (one fused
// solver pass) and a MaxBatch=1 server (time-sliced solo jobs), must
// produce Float64bits-identical results — and the fused server's
// /stats fusion counters must record the batch.
func TestFusedServerBitIdenticalToTimeSliced(t *testing.T) {
	specs := fusionSpecs()

	solo := New(Config{Workers: 1, QueueDepth: 8})
	soloRes := submitAll(t, solo, specs)
	solo.Close()

	fusedSrv := New(Config{Workers: 1, QueueDepth: 8, MaxBatch: 4, BatchWindow: 300 * time.Millisecond})
	fusedRes := submitAll(t, fusedSrv, specs)
	st := fusedSrv.Stats()
	fusedSrv.Close()

	if st.Fusion.Batches != 1 || st.Fusion.FusedJobs != 3 {
		t.Errorf("fusion counters: batches=%d fused_jobs=%d, want 1 and 3 (window missed the group?)",
			st.Fusion.Batches, st.Fusion.FusedJobs)
	}
	if st.Fusion.Batches == 1 {
		if want := 3.0 / 4.0; st.Fusion.MeanFill != want {
			t.Errorf("mean_fill = %v, want %v", st.Fusion.MeanFill, want)
		}
		if st.Fusion.EarlyDropouts == 0 {
			t.Error("staggered budgets should produce at least one early dropout")
		}
	}

	for i := range specs {
		f, s := fusedRes[i], soloRes[i]
		if f.NewtonIters != s.NewtonIters {
			t.Errorf("job %d: fused iters %d != solo %d", i, f.NewtonIters, s.NewtonIters)
		}
		for _, c := range []struct {
			field     string
			got, want float64
		}{
			{"misfit_init", f.MisfitInit, s.MisfitInit},
			{"misfit_final", f.MisfitFinal, s.MisfitFinal},
			{"gnorm_final", f.GnormFinal, s.GnormFinal},
			{"det_min", f.DetMin, s.DetMin},
			{"det_mean", f.DetMean, s.DetMean},
		} {
			if math.Float64bits(c.got) != math.Float64bits(c.want) {
				t.Errorf("job %d %s: fused %v != solo %v", i, c.field, c.got, c.want)
			}
		}
		for k := range s.Warped {
			if math.Float64bits(f.Warped[k]) != math.Float64bits(s.Warped[k]) {
				t.Errorf("job %d warped[%d]: fused %v != solo %v", i, k, f.Warped[k], s.Warped[k])
				break
			}
		}
		for d := range s.Velocity {
			for k := range s.Velocity[d] {
				if math.Float64bits(f.Velocity[d][k]) != math.Float64bits(s.Velocity[d][k]) {
					t.Errorf("job %d velocity[%d][%d] differs", i, d, k)
					break
				}
			}
		}
	}
}

// TestFusionShapeMismatchDispatchesSolo: a job of a different fusion
// shape arriving inside an open admission window must not be absorbed
// into the group nor held behind it.
func TestFusionShapeMismatchDispatchesSolo(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 8, MaxBatch: 4, BatchWindow: 300 * time.Millisecond})
	defer srv.Close()
	a := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 2,
		TimeSteps: 2, MaxNewtonIters: 1, GradTol: 1e-12}
	b := a
	b.Tasks = 1 // different fusion shape
	submitAll(t, srv, []JobSpec{a, b, a})
	st := srv.Stats()
	if st.Fusion.FusedJobs != 2 {
		t.Errorf("fused_jobs = %d, want 2 (the two same-shape jobs)", st.Fusion.FusedJobs)
	}
	if st.Done != 3 {
		t.Errorf("done = %d, want 3", st.Done)
	}
}

// TestUnfusableJobRunsSoloUnderFusion: shapes RegisterFused rejects
// (multilevel, continuation, time-varying velocity, chaos) must flow
// through a fusion-enabled server on the solo path.
func TestUnfusableJobRunsSoloUnderFusion(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxBatch: 4, BatchWindow: 50 * time.Millisecond})
	defer srv.Close()
	spec := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 1, GradTol: 1e-12, MultilevelLevels: 2}
	submitAll(t, srv, []JobSpec{spec})
	if st := srv.Stats(); st.Fusion.FusedJobs != 0 || st.Fusion.Batches != 0 {
		t.Errorf("multilevel job must not be fused: %+v", st.Fusion)
	}
}

// TestRegisterFusedWarmCacheBitIdentical is the warm-cache leg of the
// fused identity gate: a second fused batch through the plan cache
// reuses every donated operator set — zero plan builds, zero arena
// grows — and still reproduces the cold batch bit for bit.
func TestRegisterFusedWarmCacheBitIdentical(t *testing.T) {
	for _, precision := range []string{"float64", "float32"} {
		tmpl, ref, err := diffreg.SyntheticProblem(16, 16, 16, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		pc := NewPlanCache(4)
		mkJobs := func() []diffreg.FusedJob {
			jobs := make([]diffreg.FusedJob, 2)
			for j := range jobs {
				jobs[j] = diffreg.FusedJob{Template: tmpl, Reference: ref, Config: diffreg.Config{
					Tasks: 2, Precision: precision, TimeSteps: 2,
					MaxNewtonIters: 2, MaxKrylovIters: 4, GradTol: 1e-12,
					Beta: 1e-2 * float64(j+1),
				}}
			}
			jobs[0].Config.Plans = pc
			return jobs
		}

		cold, _, err := diffreg.RegisterFused(mkJobs())
		if err != nil {
			t.Fatalf("%s cold: %v", precision, err)
		}
		if st := pc.Stats(); st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
			t.Fatalf("%s after cold fused batch: %+v", precision, st)
		}

		builds, grows := pfft.PlanBuilds(), pfft.ArenaGrows()
		warm, _, err := diffreg.RegisterFused(mkJobs())
		if err != nil {
			t.Fatalf("%s warm: %v", precision, err)
		}
		if db, dg := pfft.PlanBuilds()-builds, pfft.ArenaGrows()-grows; db != 0 || dg != 0 {
			t.Errorf("%s warm fused batch: %d plan builds, %d arena grows (want 0, 0)", precision, db, dg)
		}
		if st := pc.Stats(); st.Hits != 1 {
			t.Fatalf("%s warm fused batch missed the cache: %+v", precision, st)
		}
		for j := range cold {
			if math.Float64bits(warm[j].MisfitFinal) != math.Float64bits(cold[j].MisfitFinal) {
				t.Errorf("%s job %d: warm misfit %v != cold %v", precision, j, warm[j].MisfitFinal, cold[j].MisfitFinal)
			}
			for k := range cold[j].Warped.Data {
				if math.Float64bits(warm[j].Warped.Data[k]) != math.Float64bits(cold[j].Warped.Data[k]) {
					t.Errorf("%s job %d: warm warped[%d] differs from cold", precision, j, k)
					break
				}
			}
		}
	}
}

// TestFusedGroupShrinksToSoloOnVolumeFailure: when all but one member of
// a claimed fused group fails to materialize its volumes, the survivor
// must run on the solo path — not as a width-1 "fused" pass that inflates
// the fusion counters and checks out a batch-width plan arena.
func TestFusedGroupShrinksToSoloOnVolumeFailure(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 8, MaxBatch: 4, BatchWindow: 50 * time.Millisecond})
	defer srv.Close()

	good := newJob("good", JobSpec{
		Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 1, GradTol: 1e-12,
	})
	// Same fusion shape (n, tasks, precision, cache), but its inline
	// volumes fail to materialize.
	bad := newJob("bad", JobSpec{
		N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 1, GradTol: 1e-12,
	})
	if ka, fa := fusionKey(&good.Spec); !fa {
		t.Fatalf("good job unfusable: %+v", ka)
	} else if kb, fb := fusionKey(&bad.Spec); !fb || ka != kb {
		t.Fatalf("jobs do not share a fusion shape: %+v vs %+v", ka, kb)
	}

	srv.runBatch([]*Job{good, bad})

	if st := bad.Status(); st.State != JobFailed {
		t.Errorf("bad job: %s, want failed (volume materialization)", st.State)
	}
	if st := good.Status(); st.State != JobDone {
		t.Errorf("surviving job: %s (%s), want done", st.State, st.Error)
	}
	st := srv.Stats()
	if st.Fusion.Batches != 0 || st.Fusion.FusedJobs != 0 {
		t.Errorf("width-1 survivor was counted as fused: batches=%d fused_jobs=%d, want 0 and 0",
			st.Fusion.Batches, st.Fusion.FusedJobs)
	}
	if st.Fusion.MeanFill != 0 {
		t.Errorf("mean_fill = %v, want 0 (no fused batch ran)", st.Fusion.MeanFill)
	}
	if st.Failed != 1 || st.Done != 1 {
		t.Errorf("failed=%d done=%d, want 1 and 1", st.Failed, st.Done)
	}
}

// TestDispatchDeadlineAuthoritative: a mismatched-shape job arriving
// inside an open admission window must not block the group past its
// deadline when the worker channel is plugged — on expiry the group ships
// first, then the solo job.
func TestDispatchDeadlineAuthoritative(t *testing.T) {
	srv := &Server{
		cfg:   Config{MaxBatch: 4, BatchWindow: 100 * time.Millisecond},
		queue: make(chan *Job),
	}
	batches := make(chan []*Job) // no consumer during the window: plugged
	go srv.dispatch(batches)

	a := newJob("a", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 2})
	b := newJob("b", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1})
	srv.queue <- a // opens a window for shape tasks=2
	srv.queue <- b // mismatched shape: solo handoff blocks on the plugged channel
	close(srv.queue)

	// Let the window expire while nothing consumes the worker channel.
	time.Sleep(300 * time.Millisecond)

	recv := func(label string) []*Job {
		select {
		case g := <-batches:
			return g
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: dispatcher hung past the window deadline", label)
			return nil
		}
	}
	first := recv("first")
	if len(first) != 1 || first[0] != a {
		t.Fatalf("first dispatch after the deadline = %v, want the open group [a]", jobIDs(first))
	}
	second := recv("second")
	if len(second) != 1 || second[0] != b {
		t.Fatalf("second dispatch = %v, want the displaced solo job [b]", jobIDs(second))
	}
	if _, ok := <-batches; ok {
		t.Fatal("dispatcher emitted a third batch")
	}
}

func jobIDs(g []*Job) []string {
	ids := make([]string, len(g))
	for i, j := range g {
		ids[i] = j.ID
	}
	return ids
}

// TestFusionStatsJSONShape pins the /stats fusion block wire format.
func TestFusionStatsJSONShape(t *testing.T) {
	b, err := json.Marshal(FusionStats{Enabled: true, MaxBatch: 4, Batches: 2,
		FusedJobs: 6, MeanFill: 0.75, EarlyDropouts: 1, RequeuedSolo: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"enabled":true,"max_batch":4,"batches":2,"fused_jobs":6,"mean_fill":0.75,"early_dropouts":1,"requeued_solo":1}`
	if got := string(bytes.TrimSpace(b)); got != want {
		t.Fatalf("fusion stats JSON drifted:\n got %s\nwant %s", got, want)
	}

	// And the fusion block rides inside GET /stats.
	srv := New(Config{Workers: 1, MaxBatch: 3})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	raw, ok := body["fusion"]
	if !ok {
		t.Fatalf("/stats body has no fusion block: %v", body)
	}
	var fs FusionStats
	if err := json.Unmarshal(raw, &fs); err != nil {
		t.Fatal(err)
	}
	if !fs.Enabled || fs.MaxBatch != 3 {
		t.Fatalf("fusion block: %+v, want enabled with max_batch 3", fs)
	}
}
