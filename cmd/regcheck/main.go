// Command regcheck runs the numerical-correctness harness (package
// internal/check) against the distributed solver stack: Taylor-remainder
// derivative checks, operator adjointness fuzzing, and conservation
// invariants, at each requested simulated-MPI size. It exits nonzero when
// any property fails its gate, and optionally emits the machine-readable
// JSON report that CI archives.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"diffreg/internal/check"
	"diffreg/internal/prec"
)

func main() {
	quick := flag.Bool("quick", false, "reduced grid and trial counts (the CI configuration)")
	jsonPath := flag.String("json", "", "write the JSON report to this file ('-' for stdout)")
	n := flag.Int("n", 0, "override the grid size (default 24, quick 16)")
	nt := flag.Int("nt", 0, "override the transport time steps (default 4)")
	ranks := flag.String("ranks", "", "comma-separated simulated MPI sizes (default 1,4)")
	seed := flag.Int64("seed", 0, "override the fuzz seed")
	precision := flag.String("precision", "float64", "numeric mode under test: float64 | float32")
	verbose := flag.Bool("v", false, "log each finding as it is measured")
	flag.Parse()

	opt := check.DefaultOptions()
	if *quick {
		opt = check.QuickOptions()
	}
	if *n > 0 {
		opt.N = *n
	}
	if *nt > 0 {
		opt.Nt = *nt
	}
	if *seed != 0 {
		opt.Seed = *seed
	}
	if *ranks != "" {
		opt.Ranks = opt.Ranks[:0]
		for _, part := range strings.Split(*ranks, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || p < 1 {
				log.Fatalf("regcheck: bad -ranks entry %q", part)
			}
			opt.Ranks = append(opt.Ranks, p)
		}
	}
	pr, err := prec.Parse(*precision)
	if err != nil {
		log.Fatalf("regcheck: %v", err)
	}
	opt.Precision = pr
	if *verbose {
		opt.Log = log.Printf
	}

	rep, err := check.Run(opt)
	if err != nil {
		log.Fatalf("regcheck: %v", err)
	}
	fmt.Print(rep.Summary())

	if *jsonPath != "" {
		blob, err := rep.JSON()
		if err != nil {
			log.Fatalf("regcheck: %v", err)
		}
		if *jsonPath == "-" {
			fmt.Println(string(blob))
		} else if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("regcheck: %v", err)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
