package diffreg_test

import (
	"fmt"
	"log"

	"diffreg"
)

// Example demonstrates the smallest end-to-end registration: the paper's
// synthetic problem, solved with the default (paper) parameters.
func Example() {
	template, reference, err := diffreg.SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := diffreg.Register(template, reference, diffreg.Config{Tasks: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("diffeomorphic:", res.DetMin > 0)
	fmt.Println("misfit reduced below 25%:", res.MisfitFinal < 0.25*res.MisfitInit)
	// Output:
	// converged: true
	// diffeomorphic: true
	// misfit reduced below 25%: true
}

// ExampleRegister_incompressible shows the volume-preserving mode: the
// Leray projection keeps div v = 0, so det(grad y1) stays near one.
func ExampleRegister_incompressible() {
	template, reference, err := diffreg.SyntheticProblem(16, 16, 16, 4, true)
	if err != nil {
		log.Fatal(err)
	}
	res, err := diffreg.Register(template, reference, diffreg.Config{
		Tasks:          1,
		Beta:           1e-3,
		Incompressible: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("volume preserved within 5%:", res.DetMin > 0.95 && res.DetMax < 1.05)
	// Output:
	// volume preserved within 5%: true
}

// ExampleRegisterTimeSeries registers a whole image sequence with a single
// flow (4D registration).
func ExampleRegisterTimeSeries() {
	frames, err := diffreg.SyntheticSequence(16, 16, 16, 2, 4, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := diffreg.RegisterTimeSeries(frames, diffreg.Config{Tasks: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frames fitted:", len(res.FrameMisfits))
	fmt.Println("sequence misfit reduced below 25%:", res.MisfitFinal < 0.25*res.MisfitInit)
	// Output:
	// frames fitted: 2
	// sequence misfit reduced below 25%: true
}

// ExampleApplyDeformation transfers a label map with a recovered
// deformation.
func ExampleApplyDeformation() {
	template, reference, err := diffreg.SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := diffreg.Register(template, reference, diffreg.Config{Tasks: 1})
	if err != nil {
		log.Fatal(err)
	}
	labels := diffreg.NewVolume(16, 16, 16)
	for i, v := range template.Data {
		if v > 0.5 {
			labels.Data[i] = 1
		}
	}
	warped, err := diffreg.ApplyDeformation(labels, res.Displacement, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("warped volume size:", len(warped.Data))
	// Output:
	// warped volume size: 4096
}
