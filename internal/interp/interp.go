// Package interp provides the cubic Lagrange interpolation kernels used by
// the semi-Lagrangian time integrator. Cubic (rather than linear)
// interpolation matters because interpolation error accumulates over the
// time steps without a time-step factor (§III-B2 of the paper); the
// tricubic stencil has 4^3 = 64 coefficients, which is also the constant in
// the paper's flop model for the interpolation phase.
package interp

import (
	"math"

	"diffreg/internal/par"
)

// Weights returns the four cubic Lagrange weights for stencil offsets
// {-1, 0, 1, 2} at fractional position t in [0, 1). The weights reproduce
// cubic polynomials exactly and sum to one.
func Weights(t float64) [4]float64 {
	tm1 := t - 1
	tm2 := t - 2
	tp1 := t + 1
	return [4]float64{
		-t * tm1 * tm2 / 6,
		tp1 * tm1 * tm2 / 2,
		-tp1 * t * tm2 / 2,
		tp1 * t * tm1 / 6,
	}
}

// Weights32 is Weights in float32 arithmetic, for the narrow-precision
// gather. The weights still sum to one up to float32 roundoff.
func Weights32(t float32) [4]float32 {
	tm1 := t - 1
	tm2 := t - 2
	tp1 := t + 1
	return [4]float32{
		-t * tm1 * tm2 / 6,
		tp1 * tm1 * tm2 / 2,
		-tp1 * t * tm2 / 2,
		tp1 * t * tm1 / 6,
	}
}

// LinearWeights returns the two linear weights for stencil offsets {0, 1};
// kept as the baseline scheme for the cubic-vs-linear ablation.
func LinearWeights(t float64) [2]float64 { return [2]float64{1 - t, t} }

// SplitIndex decomposes a (possibly negative or out-of-range) continuous
// grid coordinate into its integer cell index wrapped into [0, n) and the
// fractional offset in [0, 1).
func SplitIndex(x float64, n int) (int, float64) {
	f := math.Floor(x)
	t := x - f
	i := int(f) % n
	if i < 0 {
		i += n
	}
	return i, t
}

// EvalPeriodic computes the tricubic interpolant of the field f with
// dimensions n (row-major, dimension 2 fastest) at the point x given in
// grid-index coordinates, with fully periodic wrapping. This is the
// reference (and serial) evaluation path; the distributed fast path in
// package semilag uses ghost padding instead of modular arithmetic.
func EvalPeriodic(f []float64, n [3]int, x [3]float64) float64 {
	i1, t1 := SplitIndex(x[0], n[0])
	i2, t2 := SplitIndex(x[1], n[1])
	i3, t3 := SplitIndex(x[2], n[2])
	w1 := Weights(t1)
	w2 := Weights(t2)
	w3 := Weights(t3)
	var idx1, idx2, idx3 [4]int
	for a := 0; a < 4; a++ {
		idx1[a] = wrap(i1+a-1, n[0])
		idx2[a] = wrap(i2+a-1, n[1])
		idx3[a] = wrap(i3+a-1, n[2])
	}
	sum := 0.0
	for a := 0; a < 4; a++ {
		base1 := idx1[a] * n[1]
		for b := 0; b < 4; b++ {
			base2 := (base1 + idx2[b]) * n[2]
			wab := w1[a] * w2[b]
			var line float64
			for c := 0; c < 4; c++ {
				line += w3[c] * f[base2+idx3[c]]
			}
			sum += wab * line
		}
	}
	return sum
}

// EvalPeriodicBatch evaluates the tricubic interpolant at many points,
// given as packed (x1, x2, x3) triples, writing out[i] for triple i. The
// 64-coefficient stencils are independent, so batches run concurrently on
// the worker pool; results are identical to calling EvalPeriodic per point.
func EvalPeriodicBatch(f []float64, n [3]int, pts []float64, out []float64) {
	npts := len(pts) / 3
	if len(out) != npts {
		panic("interp: batch output length mismatch")
	}
	// One item is a full stencil (~600 flops); a few hundred per chunk
	// amortize the pool overhead.
	par.Chunked(npts, 256, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = EvalPeriodic(f, n, [3]float64{pts[3*i], pts[3*i+1], pts[3*i+2]})
		}
	})
}

// EvalPeriodicLinear is the trilinear counterpart of EvalPeriodic, used by
// the interpolation-order ablation benchmark.
func EvalPeriodicLinear(f []float64, n [3]int, x [3]float64) float64 {
	i1, t1 := SplitIndex(x[0], n[0])
	i2, t2 := SplitIndex(x[1], n[1])
	i3, t3 := SplitIndex(x[2], n[2])
	w1 := LinearWeights(t1)
	w2 := LinearWeights(t2)
	w3 := LinearWeights(t3)
	sum := 0.0
	for a := 0; a < 2; a++ {
		ia := wrap(i1+a, n[0]) * n[1]
		for b := 0; b < 2; b++ {
			ib := (ia + wrap(i2+b, n[1])) * n[2]
			for c := 0; c < 2; c++ {
				sum += w1[a] * w2[b] * w3[c] * f[ib+wrap(i3+c, n[2])]
			}
		}
	}
	return sum
}

func wrap(i, n int) int {
	if i >= n {
		return i - n
	}
	if i < 0 {
		return i + n
	}
	return i
}
