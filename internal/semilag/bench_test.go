package semilag

import (
	"math/rand"
	"testing"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// BenchmarkEvalOrder measures the cache-blocking optimization the paper
// suggests for the memory-bound tricubic kernel: evaluating the scattered
// query points sorted by base cell (the plan's default) versus in arrival
// order. The field (64^3 = 2 MB) exceeds typical L2, so the sorted
// traversal's locality shows up directly in the wall time.
func BenchmarkEvalOrder(b *testing.B) {
	g := grid.MustNew(64, 64, 64)
	run := func(b *testing.B, sorted bool) {
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(7))
			nq := pe.LocalTotal()
			var pts [3][]float64
			for d := 0; d < 3; d++ {
				pts[d] = make([]float64, nq)
				for q := range pts[d] {
					pts[d][q] = rng.Float64() * 64
				}
			}
			plan := NewPlan(pe, pts)
			if !sorted {
				// Undo the cell sorting: restore arrival order.
				for r := range plan.recvPts {
					npts := len(plan.recvPts[r]) / 3
					rest := make([]float64, len(plan.recvPts[r]))
					for k := 0; k < npts; k++ {
						q := int(plan.origIdx[r][k])
						copy(rest[3*q:3*q+3], plan.recvPts[r][3*k:3*k+3])
						plan.origIdx[r][k] = int32(k)
					}
					// origIdx must be identity in arrival order.
					for k := 0; k < npts; k++ {
						plan.origIdx[r][k] = int32(k)
					}
					plan.recvPts[r] = rest
				}
			}
			f := make([]float64, nq)
			for i := range f {
				f[i] = rng.NormFloat64()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Interp(f)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cell-sorted", func(b *testing.B) { run(b, true) })
	b.Run("arrival-order", func(b *testing.B) { run(b, false) })
}
