package paperbench

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"

	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/semilag"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// writeSlices dumps mid-volume PGM slices of the named global volumes when
// outDir is non-empty.
func writeSlices(outDir, prefix string, g grid.Grid, vols map[string][]float64) error {
	if outDir == "" {
		return nil
	}
	for name, data := range vols {
		path := filepath.Join(outDir, fmt.Sprintf("%s_%s.pgm", prefix, name))
		if err := imaging.WritePGMSlice(path, g, data, 0, g.N[0]/2); err != nil {
			return err
		}
	}
	return nil
}

// Figure1 reproduces the rigid-vs-deformable comparison: the rigid
// (translation) baseline removes the bulk motion but leaves a large
// residual that only the diffeomorphic registration eliminates.
func Figure1(outDir string) (Report, error) {
	n := cube(32)
	g := grid.MustNew(n[0], n[1], n[2])

	// Build a problem with both a bulk translation and a deformation.
	var tmplG, refG []float64
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.BrainPhantom(pe, 1)
		imaging.PrepareImages(ops, rhoT)
		// Deform, then translate by 4 cells in dimension 0.
		ref := imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), 4, false)
		// Shift by 4 cells via the global array (serial run).
		shifted := field.NewScalar(pe)
		nn := pe.Grid.N
		refGlobal := ref.Gather()
		shiftGlobal := make([]float64, len(refGlobal))
		for i1 := 0; i1 < nn[0]; i1++ {
			for i2 := 0; i2 < nn[1]; i2++ {
				for i3 := 0; i3 < nn[2]; i3++ {
					shiftGlobal[(i1*nn[1]+i2)*nn[2]+i3] =
						refGlobal[(((i1+4)%nn[0])*nn[1]+i2)*nn[2]+i3]
				}
			}
		}
		shifted.Scatter(shiftGlobal)
		tmplG = rhoT.Gather()
		refG = shifted.Gather()
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	rigid := imaging.RigidRegister(g, tmplG, refG)

	// Deformable registration starting from the rigid result, as in
	// practice ("affine registration is used as an initialization step").
	var deformMisfit float64
	var warpedG, residG []float64
	_, err = mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		rhoT := field.NewScalar(pe)
		rhoT.Scatter(rigid.Warped)
		rhoR := field.NewScalar(pe)
		rhoR.Scatter(refG)
		cfg := core.DefaultConfig()
		cfg.Opt.Beta = 1e-3
		out, err := core.Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		deformMisfit = out.MisfitFinal
		warpedG = out.Warped.Gather()
		resid := out.Warped.Clone()
		resid.Axpy(-1, rhoR)
		for i := range resid.Data {
			resid.Data[i] = math.Abs(resid.Data[i])
		}
		residG = resid.Gather()
		return nil
	})
	if err != nil {
		return Report{}, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "misfit 1/2||rho_T - rho_R||^2:\n")
	fmt.Fprintf(&b, "  original pair:          %.6f\n", rigid.MisfitInit)
	fmt.Fprintf(&b, "  after rigid alignment:  %.6f (%.1f%% of initial)\n",
		rigid.MisfitFinal, 100*rigid.MisfitFinal/rigid.MisfitInit)
	fmt.Fprintf(&b, "  after deformable (LDDR):%.6f (%.1f%% of initial)\n",
		deformMisfit, 100*deformMisfit/rigid.MisfitInit)
	fmt.Fprintf(&b, "recovered rigid shift: %v grid cells (bulk shift was -4 in dim 0)\n", rigid.Shift)
	if rigid.MisfitFinal >= rigid.MisfitInit {
		fmt.Fprintf(&b, "WARNING: rigid did not reduce the misfit\n")
	}
	err = writeSlices(outDir, "fig1", g, map[string][]float64{
		"template": tmplG, "reference": refG, "rigid": rigid.Warped,
		"deformable": warpedG, "residual_deformable": residG,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "figure1", Title: "Fig. 1: rigid vs deformable registration", Text: b.String()}, nil
}

// Figure2 reproduces the deformation taxonomy: maps with det(grad y) in
// (0,1), = 1, > 1, and < 0, measured with the same spectral det(grad)
// machinery the solver uses.
func Figure2() (Report, error) {
	g := grid.MustNew(24, 24, 24)
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s | %9s %9s | %s\n", "displacement field", "min det", "max det", "classification")
	cases := []struct {
		name  string
		fn    func(x1, x2, x3 float64) (float64, float64, float64)
		class string
	}{
		{"contraction (det < 1)", func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.22 * math.Sin(x1), 0.22 * math.Sin(x2), 0.22 * math.Sin(x3)
		}, "diffeomorphic, shrinks volume where det < 1"},
		{"isochoric (det = 1)", func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Sin(x2), 0, 0 // shear: det(I + grad u) = 1 exactly
		}, "diffeomorphic, volume preserving"},
		{"expansion (det > 1)", func(x1, x2, x3 float64) (float64, float64, float64) {
			return -0.22 * math.Sin(x1), -0.22 * math.Sin(x2), -0.22 * math.Sin(x3)
		}, "diffeomorphic, expands volume where det > 1"},
		{"folding (det < 0)", func(x1, x2, x3 float64) (float64, float64, float64) {
			return 1.4 * math.Sin(x1), 0, 0 // |du/dx| > 1: material lines cross
		}, "NOT diffeomorphic: negative Jacobian"},
	}
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		ts := transport.NewSolver(ops, 4)
		for _, tc := range cases {
			u := field.NewVector(pe)
			u.SetFunc(tc.fn)
			det := ts.DetGrad(u)
			fmt.Fprintf(&b, "%-28s | %9.4f %9.4f | %s\n", tc.name, det.Min(), det.Max(), tc.class)
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "figure2", Title: "Fig. 2: diffeomorphic and non-diffeomorphic maps", Text: b.String()}, nil
}

// Figure3 reproduces the semi-Lagrangian scatter illustration with real
// data: the number of departure points per rank that land on another
// rank's domain and must be communicated (Algorithm 1).
func Figure3() (Report, error) {
	g := grid.MustNew(32, 32, 32)
	var b strings.Builder
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		v := imaging.SyntheticVelocity(pe)
		plan := semilag.DeparturePlan(pe, v, 0.25)
		frac := float64(plan.OffRank) / float64(plan.NQ)
		line := fmt.Sprintf("rank %d (block %v-%v): %5d of %5d departure points off-rank (%.1f%%)",
			c.Rank(), pe.Lo[:2], pe.Hi[:2], plan.OffRank, plan.NQ, 100*frac)
		all := c.GatherFloat64(0, []float64{float64(plan.OffRank), float64(plan.NQ)})
		if c.Rank() == 0 {
			total, tot := 0.0, 0.0
			for i := 0; i < len(all); i += 2 {
				total += all[i]
				tot += all[i+1]
			}
			fmt.Fprintf(&b, "synthetic velocity, dt = 1/4, 32^3 over 4 ranks (2x2 pencils)\n")
			fmt.Fprintf(&b, "%s\n", line)
			fmt.Fprintf(&b, "fleet total: %.0f of %.0f points scattered (%.1f%%)\n",
				total, tot, 100*total/tot)
			fmt.Fprintf(&b, "the scatter phase runs once per velocity per Newton iteration;\n")
			fmt.Fprintf(&b, "every transported field then reuses the plan (paper §III-C2)\n")
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "figure3", Title: "Fig. 3: off-rank semi-Lagrangian points", Text: b.String()}, nil
}

// Figure4 traces one distributed FFT and reports the transpose traffic of
// the pencil decomposition (Fig. 4 of the paper).
func Figure4() (Report, error) {
	g := grid.MustNew(32, 32, 32)
	var b strings.Builder
	stats, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		plan := pfft.NewPlan(pe)
		local := make([]float64, pe.LocalTotal())
		if _, err := plan.Forward(local); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		return Report{}, err
	}
	fmt.Fprintf(&b, "one forward 3D FFT, 32^3 over 4 ranks (2x2 pencil decomposition)\n")
	fmt.Fprintf(&b, "%5s | %9s | %12s | %s\n", "rank", "messages", "bytes recv", "modeled comm (s)")
	for r, s := range stats {
		fmt.Fprintf(&b, "%5d | %9d | %12d | %.3e\n", r,
			s.Messages[mpi.PhaseFFTComm], s.BytesRecv[mpi.PhaseFFTComm], s.ModeledComm[mpi.PhaseFFTComm])
	}
	fmt.Fprintf(&b, "\neach rank exchanges ~N^3/p complex values per transpose within its\n")
	fmt.Fprintf(&b, "sqrt(p)-sized row/column communicator, twice per transform (Fig. 4)\n")
	return Report{ID: "figure4", Title: "Fig. 4: pencil decomposition transpose traffic", Text: b.String()}, nil
}

// Figure5 reproduces the synthetic registration problem visualization:
// template, reference (template advected by the exact velocity), and the
// initial residual.
func Figure5(outDir string) (Report, error) {
	g := grid.MustNew(32, 32, 32)
	var b strings.Builder
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.SyntheticTemplate(pe)
		rhoR := imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), 4, false)
		resid := rhoT.Clone()
		resid.Axpy(-1, rhoR)
		for i := range resid.Data {
			resid.Data[i] = math.Abs(resid.Data[i])
		}
		fmt.Fprintf(&b, "rho_T(x) = (sin^2 x1 + sin^2 x2 + sin^2 x3)/3\n")
		fmt.Fprintf(&b, "v*(x) = (cos x1 sin x2, cos x2 sin x1, cos x1 sin x3)\n")
		fmt.Fprintf(&b, "rho_R = forward transport of rho_T along v* (nt = 4)\n\n")
		fmt.Fprintf(&b, "||rho_T|| = %.4f, ||rho_R|| = %.4f, ||rho_T - rho_R|| = %.4f\n",
			rhoT.NormL2(), rhoR.NormL2(), resid.NormL2())
		fmt.Fprintf(&b, "max residual %.4f (dark areas of the paper's figure)\n", resid.MaxAbs())
		return writeSlices(outDir, "fig5", g, map[string][]float64{
			"template": rhoT.Gather(), "reference": rhoR.Gather(), "residual": resid.Gather(),
		})
	})
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "figure5", Title: "Fig. 5: synthetic registration problem", Text: b.String()}, nil
}

// Figure67 reproduces the brain registration figures: residuals before and
// after registration (Fig. 6) and the slice-wise det(grad y) map with the
// deformed template (Fig. 7).
func Figure67(outDir string, quick bool) (Report, error) {
	n := brainGrid(8)
	if quick {
		n = brainGrid(16)
	}
	g := grid.MustNew(n[0], n[1], n[2])
	var b strings.Builder
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.BrainPhantom(pe, 1)
		rhoR := imaging.BrainPhantom(pe, 2)
		imaging.PrepareImages(ops, rhoT, rhoR)
		cfg := core.DefaultConfig()
		cfg.Opt.Beta = 1e-3
		out, err := core.Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		before, after := out.ResidualNorms(rhoT, rhoR)
		fmt.Fprintf(&b, "brain phantom pair at %dx%dx%d (NIREP substitute), beta = %g\n\n",
			n[0], n[1], n[2], cfg.Opt.Beta)
		fmt.Fprintf(&b, "||rho_R - rho_T||      = %.5f (before registration)\n", before)
		fmt.Fprintf(&b, "||rho_R - rho_T(y1)||  = %.5f (after registration, %.1f%% of initial)\n",
			after, 100*after/before)
		fmt.Fprintf(&b, "newton iterations: %d, hessian matvecs: %d\n", out.Counts.NewtonIters, out.Counts.Matvecs)
		fmt.Fprintf(&b, "det(grad y1): min %.4f, max %.4f, mean %.4f\n", out.DetMin, out.DetMax, out.DetMean)
		if out.DetMin > 0 {
			fmt.Fprintf(&b, "det strictly positive: the map is diffeomorphic (Fig. 7)\n")
		} else {
			fmt.Fprintf(&b, "WARNING: map not diffeomorphic\n")
		}
		residBefore := rhoT.Clone()
		residBefore.Axpy(-1, rhoR)
		residAfter := out.Warped.Clone()
		residAfter.Axpy(-1, rhoR)
		for i := range residBefore.Data {
			residBefore.Data[i] = math.Abs(residBefore.Data[i])
			residAfter.Data[i] = math.Abs(residAfter.Data[i])
		}
		// Deformed grid overlay, the rightmost panel of the paper's Fig. 7:
		// warp a lattice image by the recovered map and add it on top of
		// the deformed template.
		lattice := field.NewScalar(pe)
		pe.EachLocal(func(i1, i2, i3, idx int) {
			if (pe.Lo[0]+i1)%4 == 0 || (pe.Lo[1]+i2)%4 == 0 {
				lattice.Data[idx] = 1
			}
		})
		ts := transport.NewSolver(ops, cfg.Opt.Nt)
		warpedGrid := ts.ApplyMap(lattice, out.U)
		overlay := out.Warped.Clone()
		for i := range overlay.Data {
			overlay.Data[i] = 0.6*overlay.Data[i] + 0.4*warpedGrid.Data[i]
		}
		return writeSlices(outDir, "fig6_7", g, map[string][]float64{
			"reference": rhoR.Gather(), "template": rhoT.Gather(),
			"residual_before": residBefore.Gather(), "residual_after": residAfter.Gather(),
			"detgrad": out.Det.Gather(), "warped": out.Warped.Gather(),
			"deformed_grid": overlay.Gather(),
		})
	})
	if err != nil {
		return Report{}, err
	}
	return Report{ID: "figure6_7", Title: "Figs. 6-7: brain registration results", Text: b.String()}, nil
}
