// Scaling study: a miniature of the paper's Tables I and V on this
// machine — strong scaling over goroutine ranks (per-rank busy time and
// communication volumes are real; see DESIGN.md for how the cluster-scale
// tables are regenerated) and the sensitivity of the solver work to the
// regularization weight beta.
package main

import (
	"fmt"
	"log"

	"diffreg"
)

func main() {
	template, reference, err := diffreg.SyntheticProblem(32, 32, 32, 4, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strong scaling, 32^3 synthetic problem (beta = 1e-2, gtol = 1e-2)")
	fmt.Printf("%6s | %9s %9s %9s %9s | %8s %8s\n",
		"tasks", "fft-comm", "fft-exec", "int-comm", "int-exec", "newton", "matvecs")
	for _, p := range []int{1, 2, 4} {
		res, err := diffreg.Register(template, reference, diffreg.Config{Tasks: p})
		if err != nil {
			log.Fatal(err)
		}
		ph := res.Phases
		fmt.Printf("%6d | %9.4f %9.4f %9.4f %9.4f | %8d %8d\n",
			p, ph.FFTComm, ph.FFTExec, ph.InterpComm, ph.InterpExec,
			res.NewtonIters, res.HessianMatvecs)
	}
	fmt.Println("\nper-rank execution halves with the task count while the Newton and")
	fmt.Println("matvec counts stay fixed: the solver work is mesh- and")
	fmt.Println("decomposition-independent, as the paper reports.")

	fmt.Println("\nbeta sensitivity (Table V): fixed 4 Newton iterations")
	fmt.Printf("%10s | %8s | %s\n", "beta", "matvecs", "interpretation")
	for _, beta := range []float64{1e-1, 1e-2, 1e-3} {
		res, err := diffreg.Register(template, reference, diffreg.Config{
			Tasks:          1,
			Beta:           beta,
			GradTol:        1e-14, // force the fixed iteration budget
			MaxNewtonIters: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		note := "well conditioned"
		if res.HessianMatvecs > 40 {
			note = "preconditioner deteriorating"
		}
		fmt.Printf("%10.0e | %8d | %s\n", beta, res.HessianMatvecs, note)
	}
	fmt.Println("\nthe spectral preconditioner is mesh independent but not beta")
	fmt.Println("independent: smaller beta means a harder Hessian (paper Table V).")
}
