package regopt

import (
	"diffreg/internal/field"
	"diffreg/internal/optim"
)

// Driver adapts a Problem to the optimizer's Objective interface: it holds
// the evaluation cache of the most recent gradient point so that
// HessMatVec can be called without threading the Eval through the Krylov
// solver (this mirrors how the paper's TAO callbacks share state).
type Driver struct {
	P *Problem
	// Cur is the evaluation at the last EvalGradient point; HessMatVec
	// applies the Hessian there.
	Cur *Eval
}

// Driver returns the optimizer-facing view of the problem.
func (p *Problem) Driver() *Driver { return &Driver{P: p} }

// Evaluate implements optim.Objective.
func (d *Driver) Evaluate(v *field.Vector) optim.ObjVals {
	e := d.P.Evaluate(v)
	return optim.ObjVals{J: e.J, Misfit: e.Misfit}
}

// EvalGradient implements optim.Objective and refreshes the matvec cache.
func (d *Driver) EvalGradient(v *field.Vector) optim.GradVals[*field.Vector] {
	e := d.P.EvalGradient(v)
	d.Cur = e
	return optim.GradVals[*field.Vector]{J: e.J, Misfit: e.Misfit, G: e.G, Gnorm: e.Gnorm}
}

// HessMatVec implements optim.Objective at the cached gradient point.
func (d *Driver) HessMatVec(w *field.Vector) *field.Vector {
	if d.Cur == nil {
		panic("regopt: HessMatVec before EvalGradient")
	}
	return d.P.HessMatVec(d.Cur, w)
}

// ApplyPrec implements optim.Objective.
func (d *Driver) ApplyPrec(r *field.Vector) *field.Vector { return d.P.ApplyPrec(r) }

// Project implements optim.Objective.
func (d *Driver) Project(v *field.Vector) *field.Vector { return d.P.Project(v) }

// SetBeta updates the regularization weight (used by continuation).
func (d *Driver) SetBeta(beta float64) { d.P.Opt.Beta = beta }

var _ optim.Objective[*field.Vector] = (*Driver)(nil)
