package pfft

import (
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// TransferSpectrum redistributes a spectral block between two plans living
// on the same communicator but different grids: every Fourier mode
// representable on both grids is routed to the rank that owns it in the
// destination layout, scaled so that function values are preserved
// (forward transforms are unnormalized). Modes beyond either grid's
// Nyquist range are dropped/zero — exactly the spectral
// restriction/prolongation pair of the two-level preconditioner and the
// grid continuation, but fully distributed (no gather).
func TransferSpectrum(src, dst *Plan, spec []complex128) []complex128 {
	return TransferSpectrumBatch(src, dst, [][]complex128{spec})[0]
}

// TransferSpectrumBatch routes B spectral blocks between the grids together:
// the per-owner payload carries the B values of each transferable mode
// consecutively plus a single index entry, so the whole batch costs one
// complex and one int all-to-all regardless of B (the vector-field resample
// pays the collective latency once instead of three times).
func TransferSpectrumBatch(src, dst *Plan, specs [][]complex128) [][]complex128 {
	c := src.Pe.Comm
	p := c.Size()
	B := len(specs)
	ns := src.Pe.Grid.N
	nd := dst.Pe.Grid.N
	scale := complex(float64(nd[0]*nd[1]*nd[2])/float64(ns[0]*ns[1]*ns[2]), 0)

	// transferable reports whether signed wavenumber k fits strictly below
	// the Nyquist of both grids (Nyquist modes are ambiguous to transfer).
	transferable := func(k, a, b int) bool {
		lim := a
		if b < a {
			lim = b
		}
		return 2*k < lim && 2*k > -lim
	}

	sendVals := make([][]complex128, p)
	sendIdx := make([][]int, p)
	src.EachSpec(func(idx, k1, k2, k3 int) {
		if !transferable(k1, ns[0], nd[0]) || !transferable(k2, ns[1], nd[1]) ||
			!transferable(k3, ns[2], nd[2]) {
			return
		}
		// Destination global spectral indices.
		j1 := k1
		if j1 < 0 {
			j1 += nd[0]
		}
		j2 := k2
		if j2 < 0 {
			j2 += nd[1]
		}
		j3 := k3 // half-spectrum: k3 >= 0 always
		// Destination owner: dim 1 of the spectral layout is split over
		// the column coordinate (p1 shares of N2), dim 2 over the row
		// coordinate (p2 shares of M3).
		r1 := grid.ShareOwner(nd[1], dst.Pe.P[0], j2)
		r2 := grid.ShareOwner(dst.m3, dst.Pe.P[1], j3)
		owner := r1*dst.Pe.P[1] + r2
		// Local flat index within the owner's destination block.
		lo2, _ := grid.Share(nd[1], dst.Pe.P[0], r1)
		lo3, _ := grid.Share(dst.m3, dst.Pe.P[1], r2)
		dim1 := sizeOfShare(nd[1], dst.Pe.P[0], r1)
		dim2 := sizeOfShare(dst.m3, dst.Pe.P[1], r2)
		local := (j1*dim1+(j2-lo2))*dim2 + (j3 - lo3)
		for b := 0; b < B; b++ {
			sendVals[owner] = append(sendVals[owner], specs[b][idx]*scale)
		}
		sendIdx[owner] = append(sendIdx[owner], local)
	})

	old := c.SetPhase(mpi.PhaseFFTComm)
	recvVals := c.AlltoallvComplex(sendVals)
	recvIdx := c.AlltoallvInt(sendIdx)
	c.SetPhase(old)

	outs := make([][]complex128, B)
	for b := range outs {
		outs[b] = make([]complex128, dst.SpecLocalTotal())
	}
	for r := 0; r < p; r++ {
		for i, idx := range recvIdx[r] {
			for b := 0; b < B; b++ {
				outs[b][idx] = recvVals[r][B*i+b]
			}
		}
	}
	return outs
}

func sizeOfShare(n, p, i int) int {
	lo, hi := grid.Share(n, p, i)
	return hi - lo
}
