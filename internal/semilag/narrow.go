package semilag

// The float32 interpolation path. Coordinates and the communication plan
// stay float64 (departure points keep full precision), but the three hot
// costs narrow: the halo-padded field copy, the 64-coefficient tricubic
// gather, and the value-return exchange. Following the GPU CLAIRE
// mixed-precision recipe, everything downstream of the returned values
// (misfit, gradients, conservation sums) still accumulates in float64 —
// the conversion happens exactly once, at the scatter back into the
// caller's float64 outputs.

import (
	"time"

	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
)

// soaBlock is the point-block width of the narrow gather: sweep 1 stages
// indices and weights for a block into stack-resident SoA arrays, sweep 2
// streams the gathers. Small enough to keep the staging in L1 alongside
// the stencil lines.
const soaBlock = 64

// interpMany32 is InterpMany on the narrow path.
func (pl *Plan) interpMany32(fields [][]float64) [][]float64 {
	pe := pl.Pe
	p := pe.Comm.Size()
	nf := len(fields)
	vals := make([][]float32, p)
	for r := 0; r < p; r++ {
		vals[r] = make([]float32, nf*len(pl.recvPts[r])/3)
	}
	pd := pl.Ghost.PaddedDims()
	for fi, f := range fields {
		pe.Comm.CountInterp(int64(pl.NQ))
		padded := pl.Ghost.Pad32(f)
		t0 := time.Now()
		for r := 0; r < p; r++ {
			pts := pl.recvPts[r]
			npts := len(pts) / 3
			out := vals[r][fi*npts : (fi+1)*npts]
			orig := pl.origIdx[r]
			par.Chunked(npts, interpGrain, func(lo, hi int) {
				evalBlock32(padded, pd, pe, pts, lo, hi, out, orig)
			})
			pl.Evals += int64(npts)
		}
		pe.Comm.AddExec(mpi.PhaseInterpExec, time.Since(t0).Seconds())
	}
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	back := pe.Comm.AlltoallvFloat32(vals)
	pe.Comm.SetPhase(old)

	outs := make([][]float64, nf)
	for fi := range outs {
		outs[fi] = make([]float64, pl.NQ)
	}
	for r := 0; r < p; r++ {
		idx := pl.sendIdx[r]
		npts := len(idx)
		for fi := 0; fi < nf; fi++ {
			seg := back[r][fi*npts : (fi+1)*npts]
			for j, slot := range idx {
				outs[fi][slot] = float64(seg[j])
			}
		}
	}
	return outs
}

// evalBlock32 evaluates the sorted points [lo, hi) against a float32
// padded field in blocked SoA form: one index/weight staging sweep, then
// one gather sweep whose inner dimension-2 line is a contiguous 4-wide
// multiply-add the compiler can keep in vector registers. Points whose
// dimension-2 stencil wraps the periodic boundary fall back to the
// indexed gather.
func evalBlock32(f []float32, pd [3]int, pe *grid.Pencil, pts []float64, lo, hi int, out []float32, orig []int32) {
	n := pe.Grid.N
	n3 := n[2]
	stride1 := pd[1] * pd[2]
	stride2 := pd[2]
	var corner [soaBlock]int32
	var i3s [soaBlock]int32
	var w1s, w2s, w3s [soaBlock][4]float32
	for blo := lo; blo < hi; blo += soaBlock {
		bhi := blo + soaBlock
		if bhi > hi {
			bhi = hi
		}
		nb := bhi - blo
		for k := 0; k < nb; k++ {
			q := blo + k
			i1, t1 := interp.SplitIndex(pts[3*q], n[0])
			i2, t2 := interp.SplitIndex(pts[3*q+1], n[1])
			i3, t3 := interp.SplitIndex(pts[3*q+2], n3)
			li1 := i1 - pe.Lo[0] + GhostWidth
			li2 := i2 - pe.Lo[1] + GhostWidth
			corner[k] = int32((li1-1)*stride1 + (li2-1)*stride2)
			i3s[k] = int32(i3)
			w1s[k] = interp.Weights32(float32(t1))
			w2s[k] = interp.Weights32(float32(t2))
			w3s[k] = interp.Weights32(float32(t3))
		}
		for k := 0; k < nb; k++ {
			i3 := int(i3s[k])
			w1, w2, w3 := &w1s[k], &w2s[k], &w3s[k]
			var sum float32
			if i3 >= 1 && i3 <= n3-3 {
				base := int(corner[k]) + i3 - 1
				for a := 0; a < 4; a++ {
					ra := base + a*stride1
					for b := 0; b < 4; b++ {
						row := f[ra+b*stride2 : ra+b*stride2+4 : ra+b*stride2+4]
						sum += w1[a] * w2[b] *
							(w3[0]*row[0] + w3[1]*row[1] + w3[2]*row[2] + w3[3]*row[3])
					}
				}
			} else {
				var idx3 [4]int
				for c := 0; c < 4; c++ {
					j := i3 + c - 1
					if j < 0 {
						j += n3
					} else if j >= n3 {
						j -= n3
					}
					idx3[c] = j
				}
				base := int(corner[k])
				for a := 0; a < 4; a++ {
					ra := base + a*stride1
					for b := 0; b < 4; b++ {
						rb := ra + b*stride2
						sum += w1[a] * w2[b] *
							(w3[0]*f[rb+idx3[0]] + w3[1]*f[rb+idx3[1]] +
								w3[2]*f[rb+idx3[2]] + w3[3]*f[rb+idx3[3]])
					}
				}
			}
			out[orig[blo+k]] = sum
		}
	}
}

// Pad32 is Ghost.Pad producing a float32 padded array: the field narrows
// once on the interior copy, and the halo layers travel the same
// neighbor-exchange pattern (same tags, same cost structure) as float32
// payloads — half the halo bytes of the reference path.
func (g *Ghost) Pad32(f []float64) []float32 {
	pe := g.Pe
	const G = GhostWidth
	n1, n2, n3 := pe.Local(0), pe.Local(1), pe.Local(2)
	p1, p2 := pe.P[0], pe.P[1]
	pd := g.PaddedDims()
	out := make([]float32, pd[0]*pd[1]*pd[2])

	// Interior copy, narrowing element-wise.
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			src := (i1*n2 + i2) * n3
			dst := ((i1+G)*pd[1] + (i2 + G)) * pd[2]
			row := f[src : src+n3]
			for j, v := range row {
				out[dst+j] = float32(v)
			}
		}
	}

	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	defer pe.Comm.SetPhase(old)

	// Phase A: rows along dimension 0 within the column communicator.
	rowBlock := func(i1lo int) []float32 {
		blk := make([]float32, G*n2*n3)
		pos := 0
		for i1 := i1lo; i1 < i1lo+G; i1++ {
			src := i1 * n2 * n3
			for _, v := range f[src : src+n2*n3] {
				blk[pos] = float32(v)
				pos++
			}
		}
		return blk
	}
	placeRows := func(pi1lo int, blk []float32) {
		pos := 0
		for i1 := 0; i1 < G; i1++ {
			for i2 := 0; i2 < n2; i2++ {
				dst := ((pi1lo+i1)*pd[1] + (i2 + G)) * pd[2]
				copy(out[dst:dst+n3], blk[pos:pos+n3])
				pos += n3
			}
		}
	}
	if p1 == 1 {
		placeRows(0, rowBlock(n1-G))
		placeRows(n1+G, rowBlock(0))
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		const tagUp, tagDown = 101, 102
		col.Send(up, tagUp, rowBlock(n1-G))
		col.Send(down, tagDown, rowBlock(0))
		placeRows(0, col.Recv(down, tagUp).([]float32))
		placeRows(n1+G, col.Recv(up, tagDown).([]float32))
	}

	// Phase B: slabs along dimension 1 within the row communicator; slabs
	// span the full padded dimension 0, so corner halos arrive for free.
	colBlock := func(pi2lo int) []float32 {
		blk := make([]float32, pd[0]*G*n3)
		pos := 0
		for pi1 := 0; pi1 < pd[0]; pi1++ {
			for i2 := pi2lo; i2 < pi2lo+G; i2++ {
				src := (pi1*pd[1] + i2) * pd[2]
				copy(blk[pos:pos+n3], out[src:src+n3])
				pos += n3
			}
		}
		return blk
	}
	placeCols := func(pi2lo int, blk []float32) {
		pos := 0
		for pi1 := 0; pi1 < pd[0]; pi1++ {
			for i2 := 0; i2 < G; i2++ {
				dst := (pi1*pd[1] + pi2lo + i2) * pd[2]
				copy(out[dst:dst+n3], blk[pos:pos+n3])
				pos += n3
			}
		}
	}
	if p2 == 1 {
		placeCols(0, colBlock(n2))
		placeCols(n2+G, colBlock(G))
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		const tagRight, tagLeft = 103, 104
		row.Send(right, tagRight, colBlock(n2))
		row.Send(left, tagLeft, colBlock(G))
		placeCols(0, row.Recv(left, tagRight).([]float32))
		placeCols(n2+G, row.Recv(right, tagLeft).([]float32))
	}
	return out
}
