package transport

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

func withSolver(t *testing.T, g grid.Grid, p, nt int, fn func(s *Solver) error) {
	t.Helper()
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		return fn(NewSolver(ops, nt))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// smoothBlob is a broad periodic test profile.
func smoothBlob(x1, x2, x3 float64) float64 {
	return math.Exp(math.Cos(x1)+math.Cos(x2)+math.Cos(x3)) / 20
}

func TestStateConstantVelocity(t *testing.T) {
	// With v = const the exact solution is rho(x, 1) = rho0(x - v).
	g := grid.MustNew(24, 24, 24)
	withSolver(t, g, 2, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		const a, b, c = 0.4, -0.3, 0.2
		v.SetFunc(func(_, _, _ float64) (float64, float64, float64) { return a, b, c })
		ctx := s.NewContext(v, true) // constant fields are divergence free
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)
		states := s.State(ctx, rho0)
		maxErr := 0.0
		s.Pe.EachLocal(func(i1, i2, i3, idx int) {
			x1, x2, x3 := s.Pe.Coords(i1, i2, i3)
			want := smoothBlob(x1-a, x2-b, x3-c)
			if e := math.Abs(states[s.Nt][idx] - want); e > maxErr {
				maxErr = e
			}
		})
		// Tolerance: the departure points are exact for constant v, so the
		// error is 4 accumulated tricubic interpolation errors of a
		// full-spectrum profile at h = 2*pi/24 (~1e-3 each).
		if maxErr > 1e-2 {
			t.Errorf("advection error %g", maxErr)
		}
		return nil
	})
}

func TestStateTimeStepConvergence(t *testing.T) {
	// Halving dt must reduce the error of the RK2 scheme (for a smooth
	// rotating field the error is dominated by the time discretization).
	g := grid.MustNew(24, 24, 16)
	errFor := func(nt int) float64 {
		var maxErr float64
		withSolver(t, g, 1, nt, func(s *Solver) error {
			v := field.NewVector(s.Pe)
			v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
				return math.Sin(x1) * math.Cos(x2), -math.Cos(x1) * math.Sin(x2), 0
			})
			ctx := s.NewContext(v, true)
			rho0 := field.NewScalar(s.Pe)
			rho0.SetFunc(smoothBlob)
			got := s.State(ctx, rho0)[s.Nt]
			// Reference: 64 steps.
			sRef := NewSolver(s.Ops, 64)
			ctxRef := sRef.NewContext(v, true)
			ref := sRef.State(ctxRef, rho0)[64]
			for i := range got {
				if e := math.Abs(got[i] - ref[i]); e > maxErr {
					maxErr = e
				}
			}
			return nil
		})
		return maxErr
	}
	e2, e4 := errFor(2), errFor(4)
	if e4 >= e2 {
		t.Errorf("no convergence in dt: nt=2 err %g, nt=4 err %g", e2, e4)
	}
}

func TestAdjointConstantVelocity(t *testing.T) {
	// For constant v the adjoint solution is lambda(x, t) = lamT(x + v(1-t)).
	g := grid.MustNew(24, 24, 24)
	withSolver(t, g, 2, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		const a, b, c = 0.3, 0.2, -0.4
		v.SetFunc(func(_, _, _ float64) (float64, float64, float64) { return a, b, c })
		ctx := s.NewContext(v, true)
		lamT := field.NewScalar(s.Pe)
		lamT.SetFunc(smoothBlob)
		lams := s.Adjoint(ctx, lamT)
		maxErr := 0.0
		s.Pe.EachLocal(func(i1, i2, i3, idx int) {
			x1, x2, x3 := s.Pe.Coords(i1, i2, i3)
			want := smoothBlob(x1+a, x2+b, x3+c)
			if e := math.Abs(lams[0][idx] - want); e > maxErr {
				maxErr = e
			}
		})
		if maxErr > 1e-2 {
			t.Errorf("adjoint transport error %g", maxErr)
		}
		return nil
	})
}

func TestAdjointConservesMass(t *testing.T) {
	// The adjoint equation is in divergence form, so the integral of
	// lambda over the domain is conserved, including for compressible v.
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 4, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1), 0.2 * math.Cos(x2), -0.25 * math.Sin(x3)
		})
		ctx := s.NewContext(v, false)
		lamT := field.NewScalar(s.Pe)
		lamT.SetFunc(func(x1, x2, x3 float64) float64 { return 1 + 0.5*math.Cos(x1)*math.Cos(x2) })
		lams := s.Adjoint(ctx, lamT)
		tmp := field.NewScalar(s.Pe)
		copy(tmp.Data, lams[s.Nt])
		m1 := tmp.Mean()
		copy(tmp.Data, lams[0])
		m0 := tmp.Mean()
		if rel := math.Abs(m0-m1) / math.Abs(m1); rel > 5e-3 {
			t.Errorf("mass drift %g (means %g -> %g)", rel, m1, m0)
		}
		return nil
	})
}

func TestIncStateIsDirectionalDerivative(t *testing.T) {
	// rho~(1) from (5a) must match the finite-difference directional
	// derivative of the forward solve: (rho[v+eps*w](1) - rho[v](1))/eps.
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1) * math.Cos(x2), -0.3 * math.Cos(x1) * math.Sin(x2), 0
		})
		w := field.NewVector(s.Pe)
		w.SetFunc(func(x1, _, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Cos(x3), 0.1 * math.Sin(x1), 0.15 * math.Cos(x1)
		})
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)

		ctx := s.NewContext(v, false)
		states := s.State(ctx, rho0)
		gradRho := s.GradSlices(states)
		inc := s.IncState(ctx, gradRho, w)

		eps := 1e-5
		vp := v.Clone()
		vp.Axpy(eps, w)
		ctxP := s.NewContext(vp, false)
		statesP := s.State(ctxP, rho0)
		vm := v.Clone()
		vm.Axpy(-eps, w)
		ctxM := s.NewContext(vm, false)
		statesM := s.State(ctxM, rho0)

		maxErr, scale := 0.0, 0.0
		for i := range inc[s.Nt] {
			fd := (statesP[s.Nt][i] - statesM[s.Nt][i]) / (2 * eps)
			if a := math.Abs(fd); a > scale {
				scale = a
			}
			if e := math.Abs(inc[s.Nt][i] - fd); e > maxErr {
				maxErr = e
			}
		}
		// The analytic incremental equation and the finite difference of the
		// discrete forward solve agree only up to the discretization error
		// of the optimize-then-discretize approach, so the tolerance is a
		// few percent of the derivative magnitude, not machine precision.
		if maxErr > 0.05*scale {
			t.Errorf("incremental state vs finite difference: err %g (scale %g)", maxErr, scale)
		}
		return nil
	})
}

func TestDisplacementConstantVelocity(t *testing.T) {
	// For constant v, u(x, 1) = -v exactly.
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 2, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(_, _, _ float64) (float64, float64, float64) { return 0.3, -0.1, 0.2 })
		ctx := s.NewContext(v, true)
		u := s.Displacement(ctx)
		want := [3]float64{-0.3, 0.1, -0.2}
		for d := 0; d < 3; d++ {
			for i := range u.C[d].Data {
				if math.Abs(u.C[d].Data[i]-want[d]) > 1e-10 {
					t.Errorf("u[%d][%d] = %g want %g", d, i, u.C[d].Data[i], want[d])
					return nil
				}
			}
		}
		return nil
	})
}

func TestApplyMapMatchesState(t *testing.T) {
	// rho(x, 1) == rhoT(y1(x)) = rhoT(x + u(x)) up to discretization error.
	g := grid.MustNew(24, 24, 24)
	withSolver(t, g, 1, 8, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.25 * math.Sin(x1) * math.Cos(x2), -0.25 * math.Cos(x1) * math.Sin(x2), 0
		})
		ctx := s.NewContext(v, true)
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)
		rho1 := s.State(ctx, rho0)[s.Nt]
		u := s.Displacement(ctx)
		warped := s.ApplyMap(rho0, u)
		maxErr := 0.0
		for i := range rho1 {
			if e := math.Abs(rho1[i] - warped.Data[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 5e-3 {
			t.Errorf("state vs warped template: %g", maxErr)
		}
		return nil
	})
}

func TestDetGradIdentityMap(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 2, 4, func(s *Solver) error {
		u := field.NewVector(s.Pe) // zero displacement
		det := s.DetGrad(u)
		for i := range det.Data {
			if math.Abs(det.Data[i]-1) > 1e-12 {
				t.Errorf("det at %d: %g", i, det.Data[i])
				return nil
			}
		}
		return nil
	})
}

func TestDetGradVolumePreservingFlow(t *testing.T) {
	// A divergence-free velocity yields det(grad y) = 1 (up to
	// discretization error) — the isochoric property the paper targets.
	g := grid.MustNew(24, 24, 16)
	withSolver(t, g, 1, 8, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.5 * math.Sin(x1) * math.Cos(x2), -0.5 * math.Cos(x1) * math.Sin(x2), 0
		})
		if m := s.Ops.Div(v).MaxAbs(); m > 1e-10 {
			t.Fatalf("test field not solenoidal: %g", m)
		}
		ctx := s.NewContext(v, true)
		u := s.Displacement(ctx)
		det := s.DetGrad(u)
		minD, maxD := det.Min(), det.Max()
		if minD < 0.97 || maxD > 1.03 {
			t.Errorf("det range [%g, %g], want ~1", minD, maxD)
		}
		return nil
	})
}

func TestDetGradCompressibleFlowChangesVolume(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 1, 8, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, _, _ float64) (float64, float64, float64) {
			return 0.5 * math.Sin(x1), 0, 0
		})
		ctx := s.NewContext(v, false)
		u := s.Displacement(ctx)
		det := s.DetGrad(u)
		if det.Max()-det.Min() < 0.1 {
			t.Errorf("compressible flow should change volume: det in [%g, %g]",
				det.Min(), det.Max())
		}
		if det.Min() <= 0 {
			t.Errorf("map should stay diffeomorphic: min det %g", det.Min())
		}
		return nil
	})
}

func TestDistributedMatchesSerialState(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	ref := make([]float64, g.Total())
	setV := func(v *field.Vector) {
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.3 * math.Cos(x2), 0.3 * math.Sin(x1), 0.2 * math.Cos(x1+x3)
		})
	}
	withSolver(t, g, 1, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		setV(v)
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)
		ctx := s.NewContext(v, false)
		copy(ref, s.State(ctx, rho0)[s.Nt])
		return nil
	})
	withSolver(t, g, 4, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		setV(v)
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)
		ctx := s.NewContext(v, false)
		got := s.State(ctx, rho0)[s.Nt]
		n := g.N
		s.Pe.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((s.Pe.Lo[0]+i1)*n[1]+(s.Pe.Lo[1]+i2))*n[2] + s.Pe.Lo[2] + i3
			if math.Abs(got[idx]-ref[gidx]) > 1e-10 {
				t.Errorf("distributed state differs at %d: %g vs %g", gidx, got[idx], ref[gidx])
			}
		})
		return nil
	})
}

func TestCFLNumberAndSuggestTimeSteps(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(_, _, _ float64) (float64, float64, float64) { return 1.0, 0, 0 })
		h := g.Spacing(0)
		// CFL of dt=0.25 with |v|=1: 0.25/h.
		want := 0.25 / h
		if got := CFLNumber(v, 0.25); math.Abs(got-want) > 1e-12 {
			t.Errorf("CFL %g want %g", got, want)
		}
		// Keeping CFL <= 1 requires about 1/h steps.
		nt := SuggestTimeSteps(v, 1, 4)
		if float64(nt) < 1/h-1 || float64(nt) > 1/h+2 {
			t.Errorf("suggested nt %d, expected about %g", nt, 1/h)
		}
		// A slow field keeps the minimum.
		v.Scale(1e-3)
		if nt := SuggestTimeSteps(v, 1, 4); nt != 4 {
			t.Errorf("slow field: nt %d want 4", nt)
		}
		if nt := SuggestTimeSteps(v, 0, 2); nt < 2 {
			t.Errorf("bad target handled wrong: %d", nt)
		}
		return nil
	})
}

func TestMemoryPerRank(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 4, 4, func(s *Solver) error {
		got := s.MemoryPerRank()
		local := int64(s.Pe.LocalTotal())
		want := 8 * ((2*4+5)*local + 3*5*local)
		if got != want {
			t.Errorf("memory estimate %d want %d", got, want)
		}
		return nil
	})
}

func TestIncAdjointNewtonReducesToGNWhenLambdaZero(t *testing.T) {
	// With lambda == 0 the extra div(lam v~) source vanishes, so the full
	// Newton incremental adjoint equals the Gauss-Newton one.
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1), 0.2 * math.Cos(x2), 0
		})
		ctx := s.NewContext(v, false)
		term := field.NewScalar(s.Pe)
		term.SetFunc(smoothBlob)
		vt := field.NewVector(s.Pe)
		vt.SetFunc(func(x1, _, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Cos(x3), 0, 0.1 * math.Sin(x1)
		})
		zeros := make([][]float64, s.Nt+1)
		for j := range zeros {
			zeros[j] = make([]float64, s.Pe.LocalTotal())
		}
		gn := s.IncAdjointGN(ctx, term)
		full := s.IncAdjointNewton(ctx, zeros, vt, term)
		for j := range gn {
			for i := range gn[j] {
				if math.Abs(gn[j][i]-full[j][i]) > 1e-12 {
					t.Errorf("full Newton with lambda=0 differs at t=%d i=%d", j, i)
					return nil
				}
			}
		}
		return nil
	})
}

func TestApplyMapDistributedMatchesSerial(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	ref := make([]float64, g.Total())
	build := func(s *Solver) (*field.Scalar, *field.Vector) {
		img := field.NewScalar(s.Pe)
		img.SetFunc(smoothBlob)
		u := field.NewVector(s.Pe)
		u.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x2), -0.2 * math.Cos(x1), 0.1
		})
		return img, u
	}
	withSolver(t, g, 1, 4, func(s *Solver) error {
		img, u := build(s)
		copy(ref, s.ApplyMap(img, u).Data)
		return nil
	})
	withSolver(t, g, 4, 4, func(s *Solver) error {
		img, u := build(s)
		got := s.ApplyMap(img, u)
		n := g.N
		s.Pe.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((s.Pe.Lo[0]+i1)*n[1]+(s.Pe.Lo[1]+i2))*n[2] + s.Pe.Lo[2] + i3
			if math.Abs(got.Data[idx]-ref[gidx]) > 1e-11 {
				t.Errorf("warp differs at %d", gidx)
			}
		})
		return nil
	})
}

func TestInverseDisplacementComposesToIdentity(t *testing.T) {
	// Warping with u and then with uInv must return the original image,
	// and y^{-1}(y(x)) must be x, up to discretization error.
	g := grid.MustNew(24, 24, 24)
	withSolver(t, g, 2, 8, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1) * math.Cos(x2), -0.3 * math.Cos(x1) * math.Sin(x2), 0
		})
		ctx := s.NewContext(v, true)
		u := s.Displacement(ctx)
		uInv := s.InverseDisplacement(ctx)

		img := field.NewScalar(s.Pe)
		img.SetFunc(smoothBlob)
		roundTrip := s.ApplyMap(s.ApplyMap(img, u), uInv)
		maxErr := 0.0
		for i := range img.Data {
			if e := math.Abs(roundTrip.Data[i] - img.Data[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 2e-2 {
			t.Errorf("warp round trip error %g", maxErr)
		}
		// Composition of the displacements: u(x) + uInv(x + u(x)) ~ 0.
		h := [3]float64{s.Pe.Grid.Spacing(0), s.Pe.Grid.Spacing(1), s.Pe.Grid.Spacing(2)}
		comp := 0.0
		for d := 0; d < 3; d++ {
			uInvAtY := s.ApplyMap(uInv.C[d], u)
			for i := range uInvAtY.Data {
				if e := math.Abs(u.C[d].Data[i] + uInvAtY.Data[i]); e > comp {
					comp = e
				}
			}
		}
		_ = h
		if comp > 5e-2 {
			t.Errorf("map composition error %g", comp)
		}
		return nil
	})
}
