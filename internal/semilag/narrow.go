package semilag

// The float32 interpolation path. Coordinates and the communication plan
// stay float64 (departure points keep full precision), but the three hot
// costs narrow: the halo-padded field copy, the 64-coefficient tricubic
// gather, and the value-return exchange. Following the GPU CLAIRE
// mixed-precision recipe, everything downstream of the returned values
// (misfit, gradients, conservation sums) still accumulates in float64 —
// the conversion happens exactly once, at the scatter back into the
// caller's float64 outputs.

import (
	"time"

	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
)

// soaBlock is the point-block width of the narrow gather: sweep 1 stages
// indices and weights for a block into stack-resident SoA arrays, sweep 2
// streams the gathers. Small enough to keep the staging in L1 alongside
// the stencil lines.
const soaBlock = 64

// interpMany32 is InterpMany on the narrow path. Like the reference path
// it writes into plan-owned scratch: results are valid until the next
// Interp/InterpMany call on this plan.
func (pl *Plan) interpMany32(fields [][]float64) [][]float64 {
	pe := pl.Pe
	p := pe.Comm.Size()
	nf := len(fields)
	vals := pl.vals32For(nf)
	padded := pl.pad32For()
	blk := pl.blk32For()
	pd := pl.Ghost.PaddedDims()
	for fi, f := range fields {
		pe.Comm.CountInterp(int64(pl.NQ))
		pl.Ghost.PadInto32(padded, f, blk)
		t0 := time.Now()
		for r := 0; r < p; r++ {
			pts := pl.recvPts[r]
			npts := len(pts) / 3
			pl.sweep = sweepState{
				padded32: padded,
				pts:      pts,
				out32:    vals[r][fi*npts : (fi+1)*npts],
				orig:     pl.origIdx[r],
				pd:       pd,
			}
			par.ForChunks(npts, interpGrain, pl.sweep32Fn())
			pl.Evals += int64(npts)
		}
		pe.Comm.AddExec(mpi.PhaseInterpExec, time.Since(t0).Seconds())
	}
	back := vals
	if p > 1 {
		old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
		back = pe.Comm.AlltoallvFloat32(vals)
		pe.Comm.SetPhase(old)
	}

	outs := pl.outsFor(nf)
	for r := 0; r < p; r++ {
		idx := pl.sendIdx[r]
		npts := len(idx)
		for fi := 0; fi < nf; fi++ {
			seg := back[r][fi*npts : (fi+1)*npts]
			for j, slot := range idx {
				outs[fi][slot] = float64(seg[j])
			}
		}
	}
	return outs
}

// evalBlock32 evaluates the sorted points [lo, hi) against a float32
// padded field in blocked SoA form: one index/weight staging sweep, then
// one gather sweep whose inner dimension-2 line is a contiguous 4-wide
// multiply-add the compiler can keep in vector registers. Points whose
// dimension-2 stencil wraps the periodic boundary fall back to the
// indexed gather.
func evalBlock32(f []float32, pd [3]int, pe *grid.Pencil, pts []float64, lo, hi int, out []float32, orig []int32) {
	n := pe.Grid.N
	n3 := n[2]
	stride1 := pd[1] * pd[2]
	stride2 := pd[2]
	var corner [soaBlock]int32
	var i3s [soaBlock]int32
	var w1s, w2s, w3s [soaBlock][4]float32
	for blo := lo; blo < hi; blo += soaBlock {
		bhi := blo + soaBlock
		if bhi > hi {
			bhi = hi
		}
		nb := bhi - blo
		for k := 0; k < nb; k++ {
			q := blo + k
			i1, t1 := interp.SplitIndex(pts[3*q], n[0])
			i2, t2 := interp.SplitIndex(pts[3*q+1], n[1])
			i3, t3 := interp.SplitIndex(pts[3*q+2], n3)
			li1 := i1 - pe.Lo[0] + GhostWidth
			li2 := i2 - pe.Lo[1] + GhostWidth
			corner[k] = int32((li1-1)*stride1 + (li2-1)*stride2)
			i3s[k] = int32(i3)
			w1s[k] = interp.Weights32(float32(t1))
			w2s[k] = interp.Weights32(float32(t2))
			w3s[k] = interp.Weights32(float32(t3))
		}
		for k := 0; k < nb; k++ {
			i3 := int(i3s[k])
			w1, w2, w3 := &w1s[k], &w2s[k], &w3s[k]
			var sum float32
			if i3 >= 1 && i3 <= n3-3 {
				base := int(corner[k]) + i3 - 1
				for a := 0; a < 4; a++ {
					ra := base + a*stride1
					for b := 0; b < 4; b++ {
						row := f[ra+b*stride2 : ra+b*stride2+4 : ra+b*stride2+4]
						sum += w1[a] * w2[b] *
							(w3[0]*row[0] + w3[1]*row[1] + w3[2]*row[2] + w3[3]*row[3])
					}
				}
			} else {
				var idx3 [4]int
				for c := 0; c < 4; c++ {
					j := i3 + c - 1
					if j < 0 {
						j += n3
					} else if j >= n3 {
						j -= n3
					}
					idx3[c] = j
				}
				base := int(corner[k])
				for a := 0; a < 4; a++ {
					ra := base + a*stride1
					for b := 0; b < 4; b++ {
						rb := ra + b*stride2
						sum += w1[a] * w2[b] *
							(w3[0]*f[rb+idx3[0]] + w3[1]*f[rb+idx3[1]] +
								w3[2]*f[rb+idx3[2]] + w3[3]*f[rb+idx3[3]])
					}
				}
			}
			out[orig[blo+k]] = sum
		}
	}
}

// interior32Into copies the local field into the interior of the padded
// float32 array dst, narrowing element-wise.
func (g *Ghost) interior32Into(dst []float32, f []float64) {
	pe := g.Pe
	const G = GhostWidth
	n1, n2, n3 := pe.Local(0), pe.Local(1), pe.Local(2)
	pd := g.PaddedDims()
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			src := (i1*n2 + i2) * n3
			dst0 := ((i1+G)*pd[1] + (i2 + G)) * pd[2]
			row := f[src : src+n3]
			for j, v := range row {
				dst[dst0+j] = float32(v)
			}
		}
	}
}

// rowBlock32Into packs GhostWidth rows of the unpadded float64 field
// starting at i1lo into blk, narrowing element-wise.
func (g *Ghost) rowBlock32Into(blk []float32, f []float64, i1lo int) {
	pe := g.Pe
	const G = GhostWidth
	n2, n3 := pe.Local(1), pe.Local(2)
	pos := 0
	for i1 := i1lo; i1 < i1lo+G; i1++ {
		src := i1 * n2 * n3
		for _, v := range f[src : src+n2*n3] {
			blk[pos] = float32(v)
			pos++
		}
	}
}

// placeRows32 unpacks a phase-A payload into the padded float32 array.
func (g *Ghost) placeRows32(dst []float32, pi1lo int, blk []float32) {
	pe := g.Pe
	const G = GhostWidth
	n2, n3 := pe.Local(1), pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for i1 := 0; i1 < G; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			d := ((pi1lo+i1)*pd[1] + (i2 + G)) * pd[2]
			copy(dst[d:d+n3], blk[pos:pos+n3])
			pos += n3
		}
	}
}

// colBlock32Into packs GhostWidth padded columns starting at pi2lo into
// blk, reading the padded float32 array.
func (g *Ghost) colBlock32Into(blk, padded []float32, pi2lo int) {
	pe := g.Pe
	const G = GhostWidth
	n3 := pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for pi1 := 0; pi1 < pd[0]; pi1++ {
		for i2 := pi2lo; i2 < pi2lo+G; i2++ {
			src := (pi1*pd[1] + i2) * pd[2]
			copy(blk[pos:pos+n3], padded[src:src+n3])
			pos += n3
		}
	}
}

// placeCols32 unpacks a phase-B payload into the padded float32 array.
func (g *Ghost) placeCols32(dst []float32, pi2lo int, blk []float32) {
	pe := g.Pe
	const G = GhostWidth
	n3 := pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for pi1 := 0; pi1 < pd[0]; pi1++ {
		for i2 := 0; i2 < G; i2++ {
			d := (pi1*pd[1] + pi2lo + i2) * pd[2]
			copy(dst[d:d+n3], blk[pos:pos+n3])
			pos += n3
		}
	}
}

// Pad32 is Ghost.Pad producing a float32 padded array: the field narrows
// once on the interior copy, and the halo layers travel the same
// neighbor-exchange pattern (same tags, same cost structure) as float32
// payloads — half the halo bytes of the reference path.
func (g *Ghost) Pad32(f []float64) []float32 {
	out := make([]float32, g.PaddedLen())
	g.PadInto32(out, f, make([]float32, g.MaxBlockLen()))
	return out
}

// PadInto32 is PadInto on the narrow path: dst has PaddedLen elements and
// blk at least MaxBlockLen.
func (g *Ghost) PadInto32(dst []float32, f []float64, blk []float32) {
	pe := g.Pe
	const G = GhostWidth
	n1, n2 := pe.Local(0), pe.Local(1)
	p1, p2 := pe.P[0], pe.P[1]

	g.interior32Into(dst, f)

	// Phases are per-communicator: set the split comms too so the halo
	// point-to-points are charged to interpolation communication.
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	oldCol := pe.Col.SetPhase(mpi.PhaseInterpComm)
	oldRow := pe.Row.SetPhase(mpi.PhaseInterpComm)
	defer func() {
		pe.Comm.SetPhase(old)
		pe.Col.SetPhase(oldCol)
		pe.Row.SetPhase(oldRow)
	}()

	// Phase A: rows along dimension 0 within the column communicator.
	rb, cb := g.blockLens()
	if p1 == 1 {
		g.rowBlock32Into(blk[:rb], f, n1-G)
		g.placeRows32(dst, 0, blk[:rb])
		g.rowBlock32Into(blk[:rb], f, 0)
		g.placeRows32(dst, n1+G, blk[:rb])
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		g.rowBlock32Into(blk[:rb], f, n1-G)
		col.Send(up, tagRowUp, blk[:rb])
		g.rowBlock32Into(blk[:rb], f, 0)
		col.Send(down, tagRowDown, blk[:rb])
		g.placeRows32(dst, 0, col.Recv(down, tagRowUp).([]float32))
		g.placeRows32(dst, n1+G, col.Recv(up, tagRowDown).([]float32))
	}

	// Phase B: slabs along dimension 1 within the row communicator; slabs
	// span the full padded dimension 0, so corner halos arrive for free.
	if p2 == 1 {
		g.colBlock32Into(blk[:cb], dst, n2)
		g.placeCols32(dst, 0, blk[:cb])
		g.colBlock32Into(blk[:cb], dst, G)
		g.placeCols32(dst, n2+G, blk[:cb])
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		g.colBlock32Into(blk[:cb], dst, n2)
		row.Send(right, tagColRight, blk[:cb])
		g.colBlock32Into(blk[:cb], dst, G)
		row.Send(left, tagColLeft, blk[:cb])
		g.placeCols32(dst, 0, row.Recv(left, tagColRight).([]float32))
		g.placeCols32(dst, n2+G, row.Recv(right, tagColLeft).([]float32))
	}
}
