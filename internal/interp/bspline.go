package interp

import "math"

// Cubic B-spline interpolation. Unlike the Lagrange kernel, the uniform
// cubic B-spline basis does not interpolate nodal values directly: the
// data must first be prefiltered into B-spline coefficients (on the
// periodic domain the prefilter is an exact spectral division by the
// basis's discrete symbol — see BSplineSymbol). The payoff is a C2
// interpolant with a smaller error constant and no stencil-boundary
// derivative kinks, which several registration packages prefer for
// computing derivatives of warped images.

// BSplineWeights returns the four cubic B-spline basis weights for stencil
// offsets {-1, 0, 1, 2} at fractional position t in [0, 1). They are
// nonnegative and sum to one (a partition of unity), so the interpolant
// never overshoots the coefficient range.
func BSplineWeights(t float64) [4]float64 {
	t2 := t * t
	t3 := t2 * t
	return [4]float64{
		(1 - 3*t + 3*t2 - t3) / 6, // (1-t)^3/6
		(4 - 6*t2 + 3*t3) / 6,
		(1 + 3*t + 3*t2 - 3*t3) / 6,
		t3 / 6,
	}
}

// BSplineSymbol returns the discrete Fourier symbol of the cubic B-spline
// sampling operator along one axis: the interpolant reproduces the data
// exactly when the coefficients are the data divided (spectrally) by this
// symbol. For wavenumber k on a grid of n points the symbol is
// (4 + 2 cos(2 pi k / n)) / 6, bounded in [1/3, 1] — the prefilter is a
// well-conditioned diagonal operation.
func BSplineSymbol(k, n int) float64 {
	return (4 + 2*math.Cos(2*math.Pi*float64(k)/float64(n))) / 6
}

// EvalPeriodicBSpline computes the cubic B-spline interpolant of the
// coefficient array c (already prefiltered!) at point x in grid-index
// coordinates with periodic wrapping.
func EvalPeriodicBSpline(c []float64, n [3]int, x [3]float64) float64 {
	i1, t1 := SplitIndex(x[0], n[0])
	i2, t2 := SplitIndex(x[1], n[1])
	i3, t3 := SplitIndex(x[2], n[2])
	w1 := BSplineWeights(t1)
	w2 := BSplineWeights(t2)
	w3 := BSplineWeights(t3)
	sum := 0.0
	for a := 0; a < 4; a++ {
		ia := wrap(i1+a-1, n[0]) * n[1]
		for b := 0; b < 4; b++ {
			ib := (ia + wrap(i2+b-1, n[1])) * n[2]
			wab := w1[a] * w2[b]
			var line float64
			for cc := 0; cc < 4; cc++ {
				line += w3[cc] * c[ib+wrap(i3+cc-1, n[2])]
			}
			sum += wab * line
		}
	}
	return sum
}
