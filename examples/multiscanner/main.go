// Multi-scanner registration: the two images come from "different
// scanners" — same anatomy, different intensity calibration (an affine
// intensity rescaling). The squared-L2 measure cannot drive its residual
// to zero in this setting; the normalized cross correlation (NCC) measure
// is invariant to the rescaling and registers the pair anyway. This
// exercises the paper's remark that the formulation extends to other
// distance measures without algorithmic changes (§II-A, §V).
package main

import (
	"fmt"
	"log"

	"diffreg"
)

func main() {
	template, reference, err := diffreg.BrainPhantomPair(24, 24, 24, 5, 6)
	if err != nil {
		log.Fatal(err)
	}
	// Simulate the second scanner: gain 1.8, offset 0.3.
	for i := range reference.Data {
		reference.Data[i] = 1.8*reference.Data[i] + 0.3
	}

	for _, dist := range []string{"l2", "ncc"} {
		res, err := diffreg.Register(template, reference, diffreg.Config{
			Tasks:    2,
			Beta:     1e-3,
			Distance: dist,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s: misfit %.4e -> %.4e (%.1f%%), newton %d, det [%.3f, %.3f]\n",
			dist, res.MisfitInit, res.MisfitFinal, 100*res.MisfitFinal/res.MisfitInit,
			res.NewtonIters, res.DetMin, res.DetMax)
	}

	fmt.Println()
	fmt.Println("L2 stalls: its residual floor is the intensity mismatch itself,")
	fmt.Println("and the spurious intensity gradient drives a wrong deformation.")
	fmt.Println("NCC factors the calibration out and registers the anatomy.")
}
