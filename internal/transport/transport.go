// Package transport solves the hyperbolic PDEs of the optimality system
// with the unconditionally stable RK2 semi-Lagrangian scheme of the paper
// (eqs. 6-7): the state equation (2b) forward in time, the adjoint
// equation (3) backward in time, and the incremental state/adjoint
// equations (5a)/(5c) needed for Hessian matvecs (Algorithm 2). It also
// computes the deformation map y = x + u, the determinant of its Jacobian
// (the diffeomorphism diagnostic of Fig. 2/7), and image warps.
package transport

import (
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/semilag"
	"diffreg/internal/spectral"
)

// Solver fixes the time discretization: nt uniform steps over [0, 1].
// It owns reusable scratch for the per-timestep arrays of the transport
// sweeps, so steady-state solves stop churning the allocator; a Solver is
// therefore owned by one rank goroutine, like the Ops it wraps.
type Solver struct {
	Ops *spectral.Ops
	Pe  *grid.Pencil
	Nt  int

	stepBuf []float64 // per-component displacement step scratch
	zeroBuf []float64 // kept-zero source placeholder; never written

	// gate, when set, is installed on every interpolation plan this
	// solver builds, so a batch scheduler can fuse the gather exchanges
	// across jobs (see semilag.Gate). Nil on solo solvers.
	gate semilag.Gate
}

// NewSolver returns a transport solver with nt time steps.
func NewSolver(ops *spectral.Ops, nt int) *Solver {
	return &Solver{Ops: ops, Pe: ops.Pe, Nt: nt}
}

// SetGate installs (or clears, with nil) the cross-job interpolation
// batch gate threaded onto every plan the solver builds.
func (s *Solver) SetGate(g semilag.Gate) { s.gate = g }

// Dt returns the time step size.
func (s *Solver) Dt() float64 { return 1 / float64(s.Nt) }

// stepScratch returns the lazily allocated per-step scratch array; callers
// fully overwrite it before use and never retain it across steps.
func (s *Solver) stepScratch() []float64 {
	if s.stepBuf == nil {
		s.stepBuf = make([]float64, s.Pe.LocalTotal())
	}
	return s.stepBuf
}

// zeroField returns a shared all-zero array for the dropped source terms of
// solenoidal velocities. It is read-only by contract.
func (s *Solver) zeroField() []float64 {
	if s.zeroBuf == nil {
		s.zeroBuf = make([]float64, s.Pe.LocalTotal())
	}
	return s.zeroBuf
}

// trajectory allocates a full time trajectory (nt+1 local arrays) backed by
// a single slab: one allocation instead of nt+1, and the slices stay valid
// for as long as the caller keeps the trajectory.
func (s *Solver) trajectory() [][]float64 {
	n := s.Pe.LocalTotal()
	slab := make([]float64, (s.Nt+1)*n)
	out := make([][]float64, s.Nt+1)
	for j := range out {
		out[j] = slab[j*n : (j+1)*n]
	}
	return out
}

// Context caches everything that depends only on the velocity field: the
// departure-point interpolation plans for the forward (+v) and adjoint
// (-v) directions, div v and its interpolants, and v at the forward
// departure points. Building it is the paper's "interpolation planner" and
// happens once per velocity per Newton iteration.
type Context struct {
	V   *field.Vector
	Fwd *semilag.Plan // departure points of +v characteristics
	Adj *semilag.Plan // departure points of -v characteristics

	DivV     *field.Scalar
	DivVAdjX []float64 // div v at the adjoint departure points
	VFwdX    [3][]float64
	// Solenoidal indicates div v vanishes, so the adjoint sources drop and
	// the transport solves reduce to pure interpolation (§III-C2).
	Solenoidal bool
}

// NewContext builds the per-velocity caches. solenoidal should be true
// when v is (projected) divergence-free; the zero sources are then skipped.
func (s *Solver) NewContext(v *field.Vector, solenoidal bool) *Context {
	dt := s.Dt()
	pr := s.Ops.Precision()
	ctx := &Context{V: v, Solenoidal: solenoidal}
	ctx.Fwd = semilag.NewPlanPrec(s.Pe, semilag.DeparturePrecGate(s.Pe, v, dt, pr, s.gate), pr)
	ctx.Fwd.SetGate(s.gate)
	neg := v.Clone()
	neg.Scale(-1)
	ctx.Adj = semilag.NewPlanPrec(s.Pe, semilag.DeparturePrecGate(s.Pe, neg, dt, pr, s.gate), pr)
	ctx.Adj.SetGate(s.gate)
	// The interpolation results below live as long as the context, so they
	// are copied out of the plans' scratch.
	vx := ctx.Fwd.InterpMany(v.C[0].Data, v.C[1].Data, v.C[2].Data)
	for d := 0; d < 3; d++ {
		ctx.VFwdX[d] = append([]float64(nil), vx[d]...)
	}
	if !solenoidal {
		ctx.DivV = s.Ops.Div(v)
		ctx.DivVAdjX = append([]float64(nil), ctx.Adj.Interp(ctx.DivV.Data)...)
	}
	return ctx
}

// State solves the forward transport equation (2b) with initial condition
// rho0 and returns the full trajectory rho(t_j), j = 0..nt, as local
// arrays. The state equation is pure advection, so each step is a single
// interpolation at the cached departure points.
func (s *Solver) State(ctx *Context, rho0 *field.Scalar) [][]float64 {
	out := s.trajectory()
	copy(out[0], rho0.Data)
	for j := 0; j < s.Nt; j++ {
		// Interp returns plan scratch, overwritten by the next step's
		// call; each slice of the trajectory keeps its own copy.
		copy(out[j+1], ctx.Fwd.Interp(out[j]))
	}
	return out
}

// StateFinal solves the forward transport equation but returns only the
// final state rho(1), without storing the trajectory — the line search
// evaluates the objective many times per Newton iteration and needs no
// time history, so this saves nt*N^3/p values per trial (§III-C4 storage
// accounting).
func (s *Solver) StateFinal(ctx *Context, rho0 *field.Scalar) []float64 {
	cur := make([]float64, len(rho0.Data))
	copy(cur, rho0.Data)
	for j := 0; j < s.Nt; j++ {
		// In-place through the plan scratch is safe: the field is fully
		// copied into the padded array before any output is written.
		copy(cur, ctx.Fwd.Interp(cur))
	}
	return cur
}

// Adjoint solves the backward transport equation (3) from the terminal
// condition lamT = lambda(t=1) and returns lambda(t_j), j = 0..nt, ordered
// forward in time. In reversed time tau = 1-t the equation reads
// d_tau lambda - v . grad lambda = lambda div v, a semi-Lagrangian sweep
// along the -v characteristics with the linear source lambda*divv.
func (s *Solver) Adjoint(ctx *Context, lamT *field.Scalar) [][]float64 {
	out := make([][]float64, s.Nt+1)
	cur := make([]float64, len(lamT.Data))
	copy(cur, lamT.Data)
	out[s.Nt] = cur
	for j := s.Nt - 1; j >= 0; j-- {
		cur = s.AdjointStep(ctx, cur)
		out[j] = cur
	}
	return out
}

// AdjointStep advances the adjoint one time step backward (from t_{j+1}
// to t_j): pure interpolation along the -v characteristics for
// divergence-free velocities, the Heun corrector with the lambda*div(v)
// source otherwise. Exposed for solvers that interleave steps with other
// operations (the multiframe time-series adjoint adds misfit jumps at the
// frame times).
func (s *Solver) AdjointStep(ctx *Context, cur []float64) []float64 {
	if ctx.Solenoidal {
		// Callers retain the step result while stepping further on the
		// same plan, so the scratch is copied into a fresh slice.
		return append([]float64(nil), ctx.Adj.Interp(cur)...)
	}
	return s.stepLinearSource(ctx.Adj, cur, ctx.DivV.Data, ctx.DivVAdjX)
}

// stepLinearSource advances one step of d_tau nu + w . grad nu = nu * c
// with the Heun (RK2) corrector of scheme (7): the source depends on the
// transported variable itself, so the predictor nu* is required.
func (s *Solver) stepLinearSource(plan *semilag.Plan, nu, cGrid, cAtX []float64) []float64 {
	dt := s.Dt()
	nu0X := plan.Interp(nu)
	out := make([]float64, len(nu))
	for i := range out {
		f0 := nu0X[i] * cAtX[i]
		nuStar := nu0X[i] + dt*f0
		fStar := nuStar * cGrid[i]
		out[i] = nu0X[i] + 0.5*dt*(f0+fStar)
	}
	return out
}

// GradSlices computes the spectral gradient of every stored state slice.
// The result is cached by the caller and shared by all Hessian matvecs at
// the current velocity (the gradients change only when rho(t) changes).
func (s *Solver) GradSlices(states [][]float64) [][3][]float64 {
	out := make([][3][]float64, len(states))
	tmp := field.NewScalar(s.Pe)
	for j, st := range states {
		copy(tmp.Data, st)
		g := s.Ops.Grad(tmp)
		out[j] = [3][]float64{g.C[0].Data, g.C[1].Data, g.C[2].Data}
	}
	return out
}

// IncState solves the incremental state equation (5a):
// d_t rho~ + v . grad rho~ = -v~ . grad rho(t), rho~(0) = 0,
// returning the trajectory rho~(t_j). gradRho holds grad rho(t_j) from
// GradSlices. This is Algorithm 2 of the paper with the grid gradients
// reused instead of recomputed: four interpolations per step (one scalar
// for rho~, plus the source), and the FFT work hoisted into GradSlices.
func (s *Solver) IncState(ctx *Context, gradRho [][3][]float64, vt *field.Vector) [][]float64 {
	dt := s.Dt()
	n := s.Pe.LocalTotal()
	out := s.trajectory()
	cur := out[0]        // zero initial condition (the slab is zeroed)
	f := s.stepScratch() // f(x, t_j) = -v~ . grad rho(t_j)
	for j := 0; j < s.Nt; j++ {
		for i := 0; i < n; i++ {
			f[i] = -(vt.C[0].Data[i]*gradRho[j][0][i] +
				vt.C[1].Data[i]*gradRho[j][1][i] +
				vt.C[2].Data[i]*gradRho[j][2][i])
		}
		vals := ctx.Fwd.InterpMany(cur, f)
		nu0X, f0X := vals[0], vals[1]
		next := out[j+1]
		for i := 0; i < n; i++ {
			// f at the arrival point and new time level, using the stored
			// grad rho(t_{j+1}); the source does not depend on rho~ itself,
			// so no predictor is needed.
			fStar := -(vt.C[0].Data[i]*gradRho[j+1][0][i] +
				vt.C[1].Data[i]*gradRho[j+1][1][i] +
				vt.C[2].Data[i]*gradRho[j+1][2][i])
			next[i] = nu0X[i] + 0.5*dt*(f0X[i]+fStar)
		}
		cur = next
	}
	return out
}

// IncAdjointGN solves the Gauss-Newton incremental adjoint equation — (5c)
// with the lambda terms dropped: -d_t lam~ - div(lam~ v) = 0 with the
// given terminal condition (for the L2 distance, lam~(1) = -rho~(1)). It
// has the same form as the adjoint equation, so the same backward sweep
// applies.
func (s *Solver) IncAdjointGN(ctx *Context, term *field.Scalar) [][]float64 {
	return s.Adjoint(ctx, term)
}

// IncAdjointNewton solves the full-Newton incremental adjoint (5c):
// -d_t lam~ - div(lam~ v + lam v~) = 0 with the given terminal condition
// (for the L2 distance, lam~(1) = -rho~(1)). In reversed
// time the extra term contributes the source div(lam(t) v~)(x), which is
// differentiated on the grid and interpolated, per §III-B2.
func (s *Solver) IncAdjointNewton(ctx *Context, lambdas [][]float64, vt *field.Vector, term *field.Scalar) [][]float64 {
	dt := s.Dt()
	n := s.Pe.LocalTotal()
	out := s.trajectory()
	cur := out[s.Nt]
	copy(cur, term.Data)

	// Precompute the grid sources g_j = div(lambda(t_j) v~): one slab for
	// the whole history, with Div writing each slice in place.
	srcs := s.trajectory()
	work := field.NewVector(s.Pe)
	div := field.Scalar{P: s.Pe}
	for j := 0; j <= s.Nt; j++ {
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				work.C[d].Data[i] = lambdas[j][i] * vt.C[d].Data[i]
			}
		}
		div.Data = srcs[j]
		s.Ops.DivInto(work, &div)
	}
	zero := s.zeroField()
	divv := zero
	divvX := zero
	if !ctx.Solenoidal {
		divv = ctx.DivV.Data
		divvX = ctx.DivVAdjX
	} else {
		divvX = zero
	}
	for j := s.Nt - 1; j >= 0; j-- {
		vals := ctx.Adj.InterpMany(cur, srcs[j+1])
		nu0X, g0X := vals[0], vals[1]
		next := out[j]
		for i := 0; i < n; i++ {
			f0 := nu0X[i]*divvX[i] + g0X[i]
			nuStar := nu0X[i] + dt*f0
			fStar := nuStar*divv[i] + srcs[j][i]
			next[i] = nu0X[i] + 0.5*dt*(f0+fStar)
		}
		cur = next
	}
	return out
}

// Displacement solves for the displacement u = y - x of the deformation
// map (eq. 1): d_t u + v . grad u = -v, u(x, 0) = 0. Unlike y itself, u is
// periodic, so the spectral machinery applies. Returns u at t = 1.
func (s *Solver) Displacement(ctx *Context) *field.Vector {
	dt := s.Dt()
	n := s.Pe.LocalTotal()
	u := field.NewVector(s.Pe)
	uNew := s.stepScratch()
	for step := 0; step < s.Nt; step++ {
		vals := ctx.Fwd.InterpMany(u.C[0].Data, u.C[1].Data, u.C[2].Data)
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				// Source f = -v: f0 at the departure point, f* on the grid.
				uNew[i] = vals[d][i] - 0.5*dt*(ctx.VFwdX[d][i]+ctx.V.C[d].Data[i])
			}
			copy(u.C[d].Data, uNew)
		}
	}
	return u
}

// DetGrad computes det(grad y) = det(I + grad u) pointwise with spectral
// derivatives of the displacement — the map-quality metric of the paper
// (det = 1: volume preserving; det <= 0: not a diffeomorphism).
func (s *Solver) DetGrad(u *field.Vector) *field.Scalar {
	var J [3]*field.Vector
	for d := 0; d < 3; d++ {
		J[d] = s.Ops.Grad(u.C[d]) // J[d].C[e] = d u_d / d x_e
	}
	out := field.NewScalar(s.Pe)
	for i := range out.Data {
		var m [3][3]float64
		for d := 0; d < 3; d++ {
			for e := 0; e < 3; e++ {
				m[d][e] = J[d].C[e].Data[i]
			}
			m[d][d] += 1
		}
		out.Data[i] = m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
	}
	return out
}

// ApplyMap warps an image by the deformation map: out(x) = img(x + u(x)),
// evaluated with the distributed tricubic interpolation.
func (s *Solver) ApplyMap(img *field.Scalar, u *field.Vector) *field.Scalar {
	pe := s.Pe
	n := pe.LocalTotal()
	var pts [3][]float64
	h := [3]float64{pe.Grid.Spacing(0), pe.Grid.Spacing(1), pe.Grid.Spacing(2)}
	for d := 0; d < 3; d++ {
		pts[d] = make([]float64, n)
	}
	pe.EachLocalPar(func(i1, i2, i3, idx int) {
		pts[0][idx] = float64(pe.Lo[0]+i1) + u.C[0].Data[idx]/h[0]
		pts[1][idx] = float64(pe.Lo[1]+i2) + u.C[1].Data[idx]/h[1]
		pts[2][idx] = float64(pe.Lo[2]+i3) + u.C[2].Data[idx]/h[2]
	})
	plan := semilag.NewPlanPrec(pe, pts, s.Ops.Precision())
	plan.SetGate(s.gate)
	out := field.NewScalar(pe)
	copy(out.Data, plan.Interp(img.Data))
	return out
}

// CFLNumber returns the grid CFL number of a velocity field for the time
// step dt: max_d max_x |v_d| * dt / h_d. The semi-Lagrangian scheme is
// stable at any CFL (§III-B2), but accuracy degrades when characteristics
// cross many cells per step.
func CFLNumber(v *field.Vector, dt float64) float64 {
	pe := v.P
	cfl := 0.0
	for d := 0; d < 3; d++ {
		c := v.C[d].MaxAbs() * dt / pe.Grid.Spacing(d)
		if c > cfl {
			cfl = c
		}
	}
	return cfl
}

// SuggestTimeSteps returns the number of time steps needed to keep the CFL
// number of v at or below target (at least minSteps). The paper fixes
// nt = 4 for comparability ("the number of time steps nt controls the
// accuracy and should be related to the CFL number"); this helper
// implements that relation for adaptive use.
func SuggestTimeSteps(v *field.Vector, target float64, minSteps int) int {
	if target <= 0 {
		target = 1
	}
	c1 := CFLNumber(v, 1) // CFL of a single step over [0, 1]
	nt := minSteps
	for float64(nt) < c1/target {
		nt++
	}
	return nt
}

// MemoryPerRank estimates the per-rank storage of the time-stepping in
// bytes, following the paper's accounting (§III-C4): every task stores
// (2 nt + 5) N^3/p values for the state/adjoint/incremental variables,
// plus 3(nt+1) N^3/p for the cached state gradients our Hessian matvecs
// reuse. The semi-Lagrangian scheme's small nt is what keeps this
// feasible without checkpointing ("for large nt the storage requirements
// become excessive and more sophisticated checkpointing schemes are
// required — which are more expensive").
func (s *Solver) MemoryPerRank() int64 {
	local := int64(s.Pe.LocalTotal())
	values := int64(2*s.Nt+5)*local + int64(3*(s.Nt+1))*local
	return 8 * values
}

// InverseDisplacement solves for the displacement of the inverse map
// y^{-1} = x + uInv: the inverse flow runs the velocity backward, i.e.
// d_t u + (-v) . grad u = v with u(x, 0) = 0. Composing ApplyMap with u
// and uInv recovers the original image up to discretization error; the
// inverse map is what pushes quantities forward (label maps, meshes)
// while y itself pulls the template back.
func (s *Solver) InverseDisplacement(ctx *Context) *field.Vector {
	dt := s.Dt()
	n := s.Pe.LocalTotal()
	// The backward characteristics are the adjoint plan's departure
	// points; v at those points is needed for the source. The values are
	// retained across the step loop's interpolations, so they leave the
	// plan scratch.
	vX := ctx.Adj.InterpMany(ctx.V.C[0].Data, ctx.V.C[1].Data, ctx.V.C[2].Data)
	var vAdjX [3][]float64
	for d := 0; d < 3; d++ {
		vAdjX[d] = append([]float64(nil), vX[d]...)
	}
	u := field.NewVector(s.Pe)
	uNew := s.stepScratch()
	for step := 0; step < s.Nt; step++ {
		vals := ctx.Adj.InterpMany(u.C[0].Data, u.C[1].Data, u.C[2].Data)
		for d := 0; d < 3; d++ {
			for i := 0; i < n; i++ {
				uNew[i] = vals[d][i] + 0.5*dt*(vAdjX[d][i]+ctx.V.C[d].Data[i])
			}
			copy(u.C[d].Data, uNew)
		}
	}
	return u
}
