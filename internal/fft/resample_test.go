package fft

import (
	"math"
	"testing"
)

func sample(n [3]int, fn func(x, y, z float64) float64) []float64 {
	out := make([]float64, n[0]*n[1]*n[2])
	idx := 0
	for i := 0; i < n[0]; i++ {
		for j := 0; j < n[1]; j++ {
			for k := 0; k < n[2]; k++ {
				out[idx] = fn(
					2*math.Pi*float64(i)/float64(n[0]),
					2*math.Pi*float64(j)/float64(n[1]),
					2*math.Pi*float64(k)/float64(n[2]))
				idx++
			}
		}
	}
	return out
}

func trig(x, y, z float64) float64 {
	return 1 + math.Sin(x)*math.Cos(y) + 0.5*math.Cos(2*z) + 0.25*math.Sin(x+y+z)
}

func TestResampleBandLimitedExact(t *testing.T) {
	// A band-limited function transfers exactly in both directions.
	for _, tc := range []struct{ from, to [3]int }{
		{[3]int{8, 8, 8}, [3]int{16, 16, 16}},
		{[3]int{16, 16, 16}, [3]int{8, 8, 8}},
		{[3]int{8, 12, 10}, [3]int{16, 24, 20}},
		{[3]int{12, 8, 8}, [3]int{6, 16, 12}},
	} {
		src := sample(tc.from, trig)
		want := sample(tc.to, trig)
		got := Resample3Real(src, tc.from, tc.to)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Errorf("%v->%v: value %d: %g want %g", tc.from, tc.to, i, got[i], want[i])
				break
			}
		}
	}
}

func TestResampleIdentity(t *testing.T) {
	n := [3]int{8, 8, 8}
	src := sample(n, trig)
	got := Resample3Real(src, n, n)
	for i := range src {
		if src[i] != got[i] {
			t.Fatalf("identity resample changed value %d", i)
		}
	}
}

func TestResampleUpThenDownIsIdentity(t *testing.T) {
	// Prolongation followed by restriction must reproduce the coarse data
	// (the coarse grid's own Nyquist modes are dropped on both paths).
	n := [3]int{8, 10, 8}
	fine := [3]int{16, 20, 16}
	src := sample(n, trig)
	// First remove the (untransferable) Nyquist content by a roundtrip.
	base := Resample3Real(Resample3Real(src, n, fine), fine, n)
	up := Resample3Real(base, n, fine)
	back := Resample3Real(up, fine, n)
	for i := range base {
		if math.Abs(base[i]-back[i]) > 1e-9 {
			t.Fatalf("up-down roundtrip error at %d: %g vs %g", i, back[i], base[i])
		}
	}
}

func TestResampleConservesMean(t *testing.T) {
	n := [3]int{8, 8, 8}
	m := [3]int{12, 12, 12}
	src := sample(n, trig)
	dst := Resample3Real(src, n, m)
	var meanSrc, meanDst float64
	for _, v := range src {
		meanSrc += v
	}
	meanSrc /= float64(len(src))
	for _, v := range dst {
		meanDst += v
	}
	meanDst /= float64(len(dst))
	if math.Abs(meanSrc-meanDst) > 1e-10 {
		t.Errorf("mean not conserved: %g vs %g", meanSrc, meanDst)
	}
}
