// Package tsreg implements multiframe time-series registration — the
// extension the paper identifies as its main limitation ("In multiframe
// volume registration (e.g., 4D Cine-MRI) one seeks to register multiple
// images using a smooth, continuous mapping. Our solver can be used as
// is ... our parameterization can be extended without any major
// algorithmic changes", §I Limitations and §V).
//
// Given frames rho_0, ..., rho_K at pseudo-times t_k = k/K, the problem is
//
//	min_v  1/2 sum_{k=1..K} ||rho(t_k) - rho_k||^2 + beta/2 |v|^2_A
//	s.t.   d_t rho + v . grad rho = 0,  rho(0) = rho_0,
//
// a single flow that interpolates the whole sequence. The adjoint equation
// acquires delta sources at the frame times, which integrate to jump
// conditions in the backward sweep:
//
//	lambda(t_k^-) = lambda(t_k^+) + (rho_k - rho(t_k)).
//
// Everything else — the semi-Lagrangian transport, the spectral operators,
// the Gauss-Newton-Krylov driver, the parallel decomposition — is reused
// unchanged, exactly as the paper claims.
package tsreg

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/optim"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// Problem is the multiframe registration problem over a stationary
// velocity field.
type Problem struct {
	Ops    *spectral.Ops
	TS     *transport.Solver
	Frames []*field.Scalar // frames[0] is the template at t = 0
	Opt    regopt.Options  // Beta, Reg, Nt, Incompressible, GaussNewton used

	stepsPerFrame int
	cur           *Eval

	StateSolves int
	Matvecs     int
}

// New builds the problem. Opt.Nt must be divisible by the number of frame
// intervals (len(frames) - 1), and at least two frames are required.
func New(ops *spectral.Ops, frames []*field.Scalar, opt regopt.Options) (*Problem, error) {
	if opt.Beta <= 0 {
		return nil, fmt.Errorf("tsreg: beta must be positive, got %g", opt.Beta)
	}
	k := len(frames) - 1
	if k < 1 {
		return nil, fmt.Errorf("tsreg: need at least 2 frames, got %d", len(frames))
	}
	if opt.Nt < k || opt.Nt%k != 0 {
		return nil, fmt.Errorf("tsreg: nt=%d not divisible by %d frame intervals", opt.Nt, k)
	}
	return &Problem{
		Ops:           ops,
		TS:            transport.NewSolver(ops, opt.Nt),
		Frames:        frames,
		Opt:           opt,
		stepsPerFrame: opt.Nt / k,
	}, nil
}

// frameAt returns the frame index at time-step j, or -1 if j is not a
// frame time (frame 0 at j = 0 never carries a misfit term).
func (p *Problem) frameAt(j int) int {
	if j == 0 || j%p.stepsPerFrame != 0 {
		return -1
	}
	return j / p.stepsPerFrame
}

// Eval caches one evaluation point.
type Eval struct {
	V       *field.Vector
	Ctx     *transport.Context
	States  [][]float64
	GradRho [][3][]float64
	// LamPre[j] is the adjoint limit from above at t_j (the value on the
	// segment [t_j, t_{j+1}]); LamPost[j] the limit from below (segment
	// [t_{j-1}, t_j]). They differ only at frame times, by the misfit jump.
	LamPre  [][]float64
	LamPost [][]float64

	J      float64
	Misfit float64
	G      *field.Vector
	Gnorm  float64
}

// regApply applies the regularization operator (without beta).
func (p *Problem) regApply(v *field.Vector) *field.Vector {
	if p.Opt.Reg == regopt.RegH1 {
		lap := p.Ops.VecLap(v)
		lap.Scale(-1)
		return lap
	}
	return p.Ops.Biharm(v)
}

// project applies the Leray projection for incompressible problems.
func (p *Problem) project(v *field.Vector) *field.Vector {
	if p.Opt.Incompressible {
		return p.Ops.Leray(v)
	}
	return v
}

// evaluate runs the forward solve and the frame misfits.
func (p *Problem) evaluate(v *field.Vector) *Eval {
	e := &Eval{V: v}
	e.Ctx = p.TS.NewContext(v, p.Opt.Incompressible)
	e.States = p.TS.State(e.Ctx, p.Frames[0])
	p.StateSolves++

	res := field.NewScalar(p.Ops.Pe)
	for j := 0; j <= p.Opt.Nt; j++ {
		k := p.frameAt(j)
		if k < 0 {
			continue
		}
		for i := range res.Data {
			res.Data[i] = e.States[j][i] - p.Frames[k].Data[i]
		}
		e.Misfit += 0.5 * res.Dot(res)
	}
	av := p.regApply(v)
	e.J = e.Misfit + 0.5*p.Opt.Beta*av.Dot(v)
	return e
}

// Evaluate implements optim.Objective.
func (p *Problem) Evaluate(v *field.Vector) optim.ObjVals {
	e := p.evaluate(v)
	return optim.ObjVals{J: e.J, Misfit: e.Misfit}
}

// adjointSweep runs the backward sweep with the given jump values at the
// frame times: jumps[k] is added to lambda as the sweep passes t_k (for
// the gradient: rho_k - rho(t_k); for the GN matvec: -rho~(t_k)).
func (p *Problem) adjointSweep(ctx *transport.Context, jumps map[int][]float64) (lamPre, lamPost [][]float64) {
	nt := p.Opt.Nt
	n := len(p.Frames[0].Data)
	lamPre = make([][]float64, nt+1)
	lamPost = make([][]float64, nt+1)
	cur := make([]float64, n)
	lamPre[nt] = cur // unused segment above t_K; zero by convention
	if j, ok := jumps[nt]; ok {
		next := make([]float64, n)
		for i := range next {
			next[i] = cur[i] + j[i]
		}
		cur = next
	}
	lamPost[nt] = cur
	for step := nt - 1; step >= 0; step-- {
		cur = p.TS.AdjointStep(ctx, cur)
		lamPre[step] = cur
		if j, ok := jumps[step]; ok {
			next := make([]float64, n)
			for i := range next {
				next[i] = cur[i] + j[i]
			}
			cur = next
		}
		lamPost[step] = cur
	}
	return lamPre, lamPost
}

// accumulateB integrates lam grad rho over [0, 1] with the trapezoidal
// rule, using the one-sided adjoint limits at the frame discontinuities:
// the step [t_j, t_{j+1}] sees lambda(t_j^+) at its left endpoint and
// lambda(t_{j+1}^-) at its right endpoint.
func (p *Problem) accumulateB(lamPre, lamPost [][]float64, gradRho [][3][]float64) *field.Vector {
	nt := p.Opt.Nt
	dt := 1 / float64(nt)
	b := field.NewVector(p.Ops.Pe)
	for j := 0; j < nt; j++ {
		left := lamPre[j]
		right := lamPost[j+1]
		for d := 0; d < 3; d++ {
			grL := gradRho[j][d]
			grR := gradRho[j+1][d]
			dst := b.C[d].Data
			for i := range dst {
				dst[i] += 0.5 * dt * (left[i]*grL[i] + right[i]*grR[i])
			}
		}
	}
	return b
}

// EvalGradient implements optim.Objective: the reduced gradient of the
// multiframe objective, with the frame-misfit jumps in the adjoint.
func (p *Problem) EvalGradient(v *field.Vector) optim.GradVals[*field.Vector] {
	e := p.evaluate(v)
	jumps := map[int][]float64{}
	n := len(p.Frames[0].Data)
	for j := 0; j <= p.Opt.Nt; j++ {
		k := p.frameAt(j)
		if k < 0 {
			continue
		}
		jump := make([]float64, n)
		for i := range jump {
			jump[i] = p.Frames[k].Data[i] - e.States[j][i]
		}
		jumps[j] = jump
	}
	e.LamPre, e.LamPost = p.adjointSweep(e.Ctx, jumps)
	e.GradRho = p.TS.GradSlices(e.States)

	b := p.accumulateB(e.LamPre, e.LamPost, e.GradRho)
	g := p.regApply(v)
	g.Scale(p.Opt.Beta)
	g.Axpy(1, p.project(b))
	e.G = g
	e.Gnorm = g.NormL2()
	p.cur = e
	return optim.GradVals[*field.Vector]{J: e.J, Misfit: e.Misfit, G: g, Gnorm: e.Gnorm}
}

// HessMatVec implements optim.Objective: the Gauss-Newton matvec with the
// incremental jumps lam~(t_k^-) = lam~(t_k^+) - rho~(t_k).
func (p *Problem) HessMatVec(vt *field.Vector) *field.Vector {
	e := p.cur
	if e == nil {
		panic("tsreg: HessMatVec before EvalGradient")
	}
	p.Matvecs++
	incStates := p.TS.IncState(e.Ctx, e.GradRho, vt)
	jumps := map[int][]float64{}
	n := len(p.Frames[0].Data)
	for j := 0; j <= p.Opt.Nt; j++ {
		if p.frameAt(j) < 0 {
			continue
		}
		jump := make([]float64, n)
		for i := range jump {
			jump[i] = -incStates[j][i]
		}
		jumps[j] = jump
	}
	lamPre, lamPost := p.adjointSweep(e.Ctx, jumps)
	bt := p.accumulateB(lamPre, lamPost, e.GradRho)
	h := p.regApply(vt)
	h.Scale(p.Opt.Beta)
	h.Axpy(1, p.project(bt))
	return h
}

// ApplyPrec implements optim.Objective: the same inverse-regularization
// spectral preconditioner as the two-image problem.
func (p *Problem) ApplyPrec(r *field.Vector) *field.Vector {
	beta := p.Opt.Beta
	h2 := p.Opt.Reg == regopt.RegH2
	return p.Ops.DiagVector(r, func(k1, k2, k3 int) float64 {
		q := float64(k1*k1 + k2*k2 + k3*k3)
		a := q
		if h2 {
			a = q * q
		}
		if a == 0 {
			a = 1
		}
		return 1 / (beta * a)
	})
}

// Project implements optim.Objective.
func (p *Problem) Project(v *field.Vector) *field.Vector { return p.project(v) }

// FrameMisfits returns the per-frame misfits at the last gradient point.
func (p *Problem) FrameMisfits() []float64 {
	e := p.cur
	if e == nil {
		return nil
	}
	out := make([]float64, 0, len(p.Frames)-1)
	res := field.NewScalar(p.Ops.Pe)
	for j := 0; j <= p.Opt.Nt; j++ {
		k := p.frameAt(j)
		if k < 0 {
			continue
		}
		for i := range res.Data {
			res.Data[i] = e.States[j][i] - p.Frames[k].Data[i]
		}
		out = append(out, 0.5*res.Dot(res))
	}
	return out
}

var _ optim.Objective[*field.Vector] = (*Problem)(nil)
