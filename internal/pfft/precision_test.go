package pfft

import (
	"errors"
	"math"
	"testing"

	"diffreg/internal/fft"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/prec"
)

// fftCommBytes runs one forward+inverse transform pair at the given
// precision and returns the per-rank FFT-phase receive byte counts.
func fftCommBytes(t *testing.T, g grid.Grid, p int, pr prec.Precision) []int64 {
	t.Helper()
	stats, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlanPrec(pe, pr)
		local := localPart(pe, globalField(g.N))
		mustInv(pl, mustFwd(pl, local))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, p)
	for r, s := range stats {
		out[r] = s.BytesRecv[mpi.PhaseFFTComm]
	}
	return out
}

// TestNarrowWireHalvesTransposeBytes is the wire-format contract of the
// float32 hot path: the transpose stages carry (re, im) float32 pairs
// instead of complex128 elements, so the FFT-phase receive volume of the
// same transform pair is exactly half the float64 reference — per rank,
// not just in aggregate.
func TestNarrowWireHalvesTransposeBytes(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	const p = 4
	wide := fftCommBytes(t, g, p, prec.F64)
	narrow := fftCommBytes(t, g, p, prec.F32)
	for r := 0; r < p; r++ {
		if wide[r] == 0 {
			t.Fatalf("rank %d: no FFT communication recorded on the wide path", r)
		}
		if 2*narrow[r] != wide[r] {
			t.Errorf("rank %d: narrow wire %d bytes, wide %d — want exactly half", r, narrow[r], wide[r])
		}
	}
}

// TestNarrowForwardMatchesSerial bounds the accuracy cost of the narrow
// wire: the float32-transpose spectrum must agree with the float64 serial
// reference to single-precision roundoff, across uneven shapes and task
// counts (p=1 included: the degenerate transposes still round through the
// narrow staging buffers).
func TestNarrowForwardMatchesSerial(t *testing.T) {
	cases := []struct {
		n [3]int
		p int
	}{
		{[3]int{8, 8, 8}, 1},
		{[3]int{8, 12, 10}, 4},
		{[3]int{12, 15, 8}, 3},
	}
	for _, tc := range cases {
		g := grid.MustNew(tc.n[0], tc.n[1], tc.n[2])
		global := globalField(g.N)
		want := fft.Forward3Real(global, g.N[0], g.N[1], g.N[2])
		m3 := fft.HalfLen(g.N[2])
		// The unnormalized spectrum scales with the grid size; gate the
		// absolute error at eps32 times that scale with slack for the
		// two roundings per transpose stage.
		tol := 1e-6 * float64(g.Total())
		_, err := mpi.Run(tc.p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlanPrec(pe, prec.F32)
			local := localPart(pe, global)
			spec := mustFwd(pl, local)
			d := pl.SpecDims()
			idx := 0
			for i1 := 0; i1 < d[0]; i1++ {
				for i2 := 0; i2 < d[1]; i2++ {
					for i3 := 0; i3 < d[2]; i3++ {
						ref := want[(i1*g.N[1]+pl.specLo[1]+i2)*m3+pl.specLo[2]+i3]
						z := spec[idx]
						if math.Abs(real(z)-real(ref)) > tol || math.Abs(imag(z)-imag(ref)) > tol {
							t.Errorf("n=%v p=%d: spec(%d,%d,%d) = %v want %v (tol %.1e)",
								tc.n, tc.p, i1, pl.specLo[1]+i2, pl.specLo[2]+i3, z, ref, tol)
							return nil
						}
						idx++
					}
				}
			}
			back := mustInv(pl, spec)
			for i := range local {
				if math.Abs(local[i]-back[i]) > 1e-5 {
					t.Errorf("n=%v p=%d: roundtrip error at %d: %g vs %g", tc.n, tc.p, i, back[i], local[i])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%v p=%d: %v", tc.n, tc.p, err)
		}
	}
}

// TestNarrowWireTruncateRaisesCommError injects a truncation fault into a
// narrow-format transpose send. The fault layer cuts []float32 payloads to
// an odd element count — severing one (re, im) wire pair mid-element — so
// this exercises both the envelope length check and the decoder's
// ragged-tail validation behind it.
func TestNarrowWireTruncateRaisesCommError(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	fp := mpi.NewFaultPlan(11).Add(mpi.FaultSite{
		Rank: 1, Phase: mpi.PhaseFFTComm, Op: mpi.OpSend, Index: 0, Kind: mpi.FaultTruncate,
	})
	_, err := mpi.RunWith(4, mpi.RunOpts{Cost: mpi.DefaultCostModel(), Faults: fp}, func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlanPrec(pe, prec.F32)
		mustFwd(pl, make([]float64, pe.LocalTotal()))
		return nil
	})
	var comm *mpi.CommError
	if !errors.As(err, &comm) {
		t.Fatalf("truncated narrow transpose: got %v, want *mpi.CommError", err)
	}
	if comm.Phase != mpi.PhaseFFTComm {
		t.Errorf("CommError charged to phase %s, want %s", comm.Phase, mpi.PhaseFFTComm)
	}
}
