package regopt

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

func TestTwoLevelPrecReducesIterationsAtSmallBeta(t *testing.T) {
	// Table V regime: at small beta the coarse-grid correction captures
	// the data term on the low modes, so PCG needs fewer iterations than
	// with the pure inverse-regularization preconditioner.
	g := grid.MustNew(24, 24, 24)
	iters := map[bool]int{}
	for _, twoLevel := range []bool{false, true} {
		opt := DefaultOptions()
		opt.Beta = 1e-4
		opt.TwoLevelPrec = twoLevel
		setup(t, g, 1, opt, func(pr *Problem) error {
			e := pr.EvalGradient(field.NewVector(pr.Pe))
			rhs := e.G.Clone()
			rhs.Scale(-1)
			_, cg := optim.PCG(
				func(w *field.Vector) *field.Vector { return pr.HessMatVec(e, w) },
				func(w *field.Vector) *field.Vector { return pr.ApplyPrec(w) },
				rhs, 1e-3, 1000,
			)
			iters[twoLevel] = cg.Iters
			return nil
		})
	}
	t.Logf("fine PCG iterations at beta=1e-4: inverse-reg %d, two-level %d", iters[false], iters[true])
	if iters[true] > iters[false] {
		t.Errorf("two-level preconditioner worse: %d vs %d", iters[true], iters[false])
	}
}

func TestTwoLevelSolveMatchesSingleLevelSolution(t *testing.T) {
	// The preconditioner changes the Krylov path, not the optimum: both
	// solves must reach the same misfit (within the loose gtol).
	g := grid.MustNew(16, 16, 16)
	misfits := map[bool]float64{}
	for _, twoLevel := range []bool{false, true} {
		opt := DefaultOptions()
		opt.Beta = 1e-3
		opt.TwoLevelPrec = twoLevel
		setup(t, g, 1, opt, func(pr *Problem) error {
			res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pr.Pe), optim.DefaultNewtonOptions())
			if !res.Converged {
				t.Errorf("twoLevel=%v: not converged", twoLevel)
			}
			misfits[twoLevel] = res.MisfitLast
			return nil
		})
	}
	if rel := math.Abs(misfits[true]-misfits[false]) / misfits[false]; rel > 0.2 {
		t.Errorf("solutions differ: %g vs %g", misfits[true], misfits[false])
	}
}

func TestTwoLevelFallsBackOnTinyGrids(t *testing.T) {
	// 8^3 cannot be coarsened further; the solve must silently fall back.
	g := grid.MustNew(8, 8, 8)
	opt := DefaultOptions()
	opt.TwoLevelPrec = true
	setup(t, g, 1, opt, func(pr *Problem) error {
		e := pr.EvalGradient(field.NewVector(pr.Pe))
		if pr.Opt.TwoLevelPrec {
			t.Errorf("expected fallback on 8^3")
		}
		_ = pr.ApplyPrec(e.G) // must not panic
		return nil
	})
}

func TestTransferScalarRoundTrip(t *testing.T) {
	// Restriction of a band-limited field then prolongation reproduces it
	// (through the fully distributed spectral transfer).
	g := grid.MustNew(16, 16, 16)
	setup(t, g, 2, DefaultOptions(), func(pr *Problem) error {
		s := field.NewScalar(pr.Pe)
		s.SetFunc(func(x1, x2, x3 float64) float64 {
			return math.Sin(x1)*math.Cos(x2) + math.Cos(2*x3)
		})
		gc := grid.MustNew(8, 8, 8)
		cpe, err := grid.NewPencil(gc, pr.Pe.Comm)
		if err != nil {
			return err
		}
		cops := spectral.New(pfft.NewPlan(cpe))
		down := spectral.Resample(pr.Ops, cops, s)
		back := spectral.Resample(cops, pr.Ops, down)
		for i := range s.Data {
			if math.Abs(back.Data[i]-s.Data[i]) > 1e-9 {
				t.Errorf("transfer roundtrip differs at %d: %g vs %g", i, back.Data[i], s.Data[i])
				return nil
			}
		}
		return nil
	})
}
