// Package ckpt provides versioned, checksummed serialization of the
// optimizer state for checkpoint/restart. A checkpoint captures everything
// the Newton driver needs to reproduce the uninterrupted trajectory bit
// for bit: the velocity iterate (global arrays, gathered on rank 0), the
// continuation level and regularization weight, the iteration counter, the
// initial objective scalars that anchor the forcing sequence and the
// convergence test, and the iteration history.
//
// The on-disk format is little-endian binary:
//
//	magic   "DREGCKPT"                      (8 bytes)
//	version uint32                          (currently 2)
//	payload fixed fields, history, velocity (see State)
//	crc     uint64 CRC-64/ECMA of everything above
//
// Version 2 added the write-time solver precision to the header: a
// checkpoint taken on the float32 hot path resumed under float64 (or vice
// versa) would not reproduce the writing run's trajectory, so the
// mismatch is a typed *PrecisionMismatchError at resume validation, never
// a silent reinterpretation. Version 1 files (which predate the precision
// option) are rejected by the version check.
//
// Save writes to a temporary file in the same directory, syncs, and
// renames over the target, so a crash mid-write never corrupts an existing
// checkpoint. Load verifies magic, version, and checksum before decoding,
// converting torn or bit-rotted files into typed errors rather than
// silently resuming from garbage.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"

	"diffreg/internal/optim"
)

const magic = "DREGCKPT"

// Version is the current checkpoint format version.
const Version uint32 = 2

var crcTable = crc64.MakeTable(crc64.ECMA)

// State is the checkpointed optimizer state.
type State struct {
	N     [3]int // grid dimensions
	Tasks int    // rank count of the writing run (informational)

	// Precision records the hot-path precision the writing run solved at
	// ("float64" or "float32"; empty decodes as "float64" for symmetry
	// with the solver default). Resume validation must reject a precision
	// mismatch — the trajectories are not interchangeable.
	Precision string

	Beta      float64 // regularization weight of the active level
	BetaLevel int     // continuation schedule index (0 for single solves)
	Iter      int     // completed outer iterations within the level

	JInit      float64
	MisfitInit float64
	GnormInit  float64
	History    []optim.IterRecord

	// Seed is reserved for stochastic solver extensions; the deterministic
	// solver writes 0.
	Seed int64

	// V holds the three global velocity component arrays (row-major,
	// dimension 2 fastest — the field.Gather layout).
	V [3][]float64
}

// FormatError reports a checkpoint file that failed structural validation.
type FormatError struct {
	Path   string
	Detail string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("ckpt: %s: %s", e.Path, e.Detail)
}

// PrecisionMismatchError reports a resume attempt at a different hot-path
// precision than the checkpoint was written at.
type PrecisionMismatchError struct {
	Path      string
	Written   string // precision recorded in the checkpoint header
	Requested string // precision of the resuming solve
}

func (e *PrecisionMismatchError) Error() string {
	return fmt.Sprintf("ckpt: %s: checkpoint was written at precision %s but the resume requests %s — rerun at the original precision or start fresh",
		e.Path, e.Written, e.Requested)
}

// precisionCode maps the header precision string to its wire code. The
// empty string is the float64 default, matching the solver's zero value.
func precisionCode(s string) (int64, error) {
	switch s {
	case "", "float64":
		return 0, nil
	case "float32":
		return 1, nil
	default:
		return 0, fmt.Errorf("ckpt: unknown precision %q", s)
	}
}

// encode serializes the payload (everything between version and checksum).
func encode(st *State) ([]byte, error) {
	buf := &bytes.Buffer{}
	w := func(v any) { binary.Write(buf, binary.LittleEndian, v) }
	for d := 0; d < 3; d++ {
		w(int64(st.N[d]))
	}
	w(int64(st.Tasks))
	code, err := precisionCode(st.Precision)
	if err != nil {
		return nil, err
	}
	w(code)
	w(st.Beta)
	w(int64(st.BetaLevel))
	w(int64(st.Iter))
	w(st.JInit)
	w(st.MisfitInit)
	w(st.GnormInit)
	w(st.Seed)
	w(int64(len(st.History)))
	for _, h := range st.History {
		w(int64(h.Iter))
		w(h.J)
		w(h.Misfit)
		w(h.Gnorm)
		w(h.Forcing)
		w(int64(h.CGIters))
		w(h.Step)
		w(int64(h.LineTrial))
	}
	total := st.N[0] * st.N[1] * st.N[2]
	for d := 0; d < 3; d++ {
		if len(st.V[d]) != total {
			return nil, fmt.Errorf("ckpt: velocity component %d has %d values, want %d for dims %v",
				d, len(st.V[d]), total, st.N)
		}
		w(int64(len(st.V[d])))
		w(st.V[d])
	}
	return buf.Bytes(), nil
}

// Save atomically writes the state to path.
func Save(path string, st *State) error {
	payload, err := encode(st)
	if err != nil {
		return err
	}
	buf := &bytes.Buffer{}
	buf.WriteString(magic)
	binary.Write(buf, binary.LittleEndian, Version)
	buf.Write(payload)
	binary.Write(buf, binary.LittleEndian, crc64.Checksum(buf.Bytes(), crcTable))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// decoder reads little-endian fields with sticky error state.
type decoder struct {
	r   *bytes.Reader
	err error
}

func (d *decoder) i64() int64 {
	var v int64
	if d.err == nil {
		d.err = binary.Read(d.r, binary.LittleEndian, &v)
	}
	return v
}

func (d *decoder) f64() float64 {
	var v float64
	if d.err == nil {
		d.err = binary.Read(d.r, binary.LittleEndian, &v)
	}
	return v
}

// Load reads and validates a checkpoint.
func Load(path string) (*State, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(raw) < len(magic)+4+8 {
		return nil, &FormatError{path, fmt.Sprintf("file too short (%d bytes)", len(raw))}
	}
	if string(raw[:len(magic)]) != magic {
		return nil, &FormatError{path, "bad magic (not a checkpoint file)"}
	}
	if v := binary.LittleEndian.Uint32(raw[len(magic):]); v != Version {
		return nil, &FormatError{path, fmt.Sprintf("unsupported version %d (want %d)", v, Version)}
	}
	body, trailer := raw[:len(raw)-8], raw[len(raw)-8:]
	if got, want := crc64.Checksum(body, crcTable), binary.LittleEndian.Uint64(trailer); got != want {
		return nil, &FormatError{path, fmt.Sprintf("checksum mismatch (file %016x, computed %016x) — truncated or corrupted", want, got)}
	}

	d := &decoder{r: bytes.NewReader(body[len(magic)+4:])}
	st := &State{}
	for i := 0; i < 3; i++ {
		st.N[i] = int(d.i64())
	}
	st.Tasks = int(d.i64())
	switch code := d.i64(); {
	case d.err != nil:
	case code == 0:
		st.Precision = "float64"
	case code == 1:
		st.Precision = "float32"
	default:
		return nil, &FormatError{path, fmt.Sprintf("unknown precision code %d", code)}
	}
	st.Beta = d.f64()
	st.BetaLevel = int(d.i64())
	st.Iter = int(d.i64())
	st.JInit = d.f64()
	st.MisfitInit = d.f64()
	st.GnormInit = d.f64()
	st.Seed = d.i64()
	nh := d.i64()
	total := int64(st.N[0]) * int64(st.N[1]) * int64(st.N[2])
	if d.err == nil && (nh < 0 || nh > 1<<20 || total <= 0 || total > 1<<34) {
		return nil, &FormatError{path, fmt.Sprintf("implausible header (dims %v, %d history records)", st.N, nh)}
	}
	for i := int64(0); i < nh && d.err == nil; i++ {
		h := optim.IterRecord{}
		h.Iter = int(d.i64())
		h.J = d.f64()
		h.Misfit = d.f64()
		h.Gnorm = d.f64()
		h.Forcing = d.f64()
		h.CGIters = int(d.i64())
		h.Step = d.f64()
		h.LineTrial = int(d.i64())
		st.History = append(st.History, h)
	}
	for c := 0; c < 3 && d.err == nil; c++ {
		n := d.i64()
		if n != total {
			return nil, &FormatError{path, fmt.Sprintf("velocity component %d has %d values, want %d", c, n, total)}
		}
		st.V[c] = make([]float64, n)
		if d.err == nil {
			d.err = binary.Read(d.r, binary.LittleEndian, st.V[c])
		}
	}
	if d.err != nil {
		return nil, &FormatError{path, fmt.Sprintf("decode: %v", d.err)}
	}
	if d.r.Len() != 0 {
		return nil, &FormatError{path, fmt.Sprintf("%d trailing bytes after payload", d.r.Len())}
	}
	return st, nil
}
