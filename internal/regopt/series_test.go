package regopt

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/optim"
)

// seriesVelocity builds a time-varying test velocity with distinct
// coefficients per interval.
func seriesVelocity(pe *grid.Pencil, nc int) field.Series {
	vs := field.NewSeries(pe, nc)
	for c := 0; c < nc; c++ {
		phase := float64(c)
		vs[c].SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Sin(x2+phase) * math.Cos(x3),
				-0.15 * math.Cos(x1-phase),
				0.1 * math.Sin(x1+x2+phase)
		})
	}
	return vs
}

func TestNewSeriesValidates(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		if _, err := NewSeries(pr, 3); err == nil { // nt=4 not divisible by 3
			t.Error("nt=4 with 3 intervals accepted")
		}
		if _, err := NewSeries(pr, 0); err == nil {
			t.Error("0 intervals accepted")
		}
		for _, nc := range []int{1, 2, 4} {
			if _, err := NewSeries(pr, nc); err != nil {
				t.Errorf("nc=%d rejected: %v", nc, err)
			}
		}
		return nil
	})
}

func TestSeriesWithOneIntervalMatchesStationary(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		sp, err := NewSeries(pr, 1)
		if err != nil {
			return err
		}
		es := sp.EvalGradient(field.Series{v})
		e := pr.EvalGradient(v)
		if math.Abs(es.J-e.J) > 1e-12*(1+math.Abs(e.J)) {
			t.Errorf("J differs: %g vs %g", es.J, e.J)
		}
		for d := 0; d < 3; d++ {
			for i := range e.G.C[d].Data {
				if math.Abs(es.G[0].C[d].Data[i]-e.G.C[d].Data[i]) > 1e-10 {
					t.Errorf("gradient differs at d=%d i=%d: %g vs %g",
						d, i, es.G[0].C[d].Data[i], e.G.C[d].Data[i])
					return nil
				}
			}
		}
		// Hessian matvec must agree too.
		w := testDirection(pr.Pe)
		hs := sp.HessMatVec(field.Series{w})
		h := pr.HessMatVec(e, w)
		diff := hs[0].Clone()
		diff.Axpy(-1, h)
		if rel := diff.NormL2() / (h.NormL2() + 1e-300); rel > 1e-10 {
			t.Errorf("matvec differs: rel %g", rel)
		}
		return nil
	})
}

func TestSeriesGradientMatchesFiniteDifference(t *testing.T) {
	// The load-bearing correctness check of the time-varying extension:
	// <g, w>_series vs central finite differences of J, for 2 intervals.
	g := grid.MustNew(16, 16, 16)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		sp, err := NewSeries(pr, 2)
		if err != nil {
			return err
		}
		vs := seriesVelocity(pr.Pe, 2)
		ws := seriesVelocity(pr.Pe, 2)
		for c := range ws {
			ws[c].SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.3 * math.Cos(x2+x3+float64(c)), 0.2 * math.Sin(x3), -0.25 * math.Cos(x1)
			})
		}
		gv := sp.EvalGradient(vs)
		gw := gv.G.Dot(ws)

		eps := 1e-5
		vp := vs.Clone()
		vp.Axpy(eps, ws)
		vm := vs.Clone()
		vm.Axpy(-eps, ws)
		fd := (sp.Evaluate(vp).J - sp.Evaluate(vm).J) / (2 * eps)
		rel := math.Abs(gw-fd) / (math.Abs(fd) + 1e-12)
		if rel > 0.05 {
			t.Errorf("series gradient vs FD: %g vs %g (rel %g)", gw, fd, rel)
		}
		return nil
	})
}

func TestSeriesHessianSymmetry(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		sp, err := NewSeries(pr, 2)
		if err != nil {
			return err
		}
		vs := seriesVelocity(pr.Pe, 2)
		sp.EvalGradient(vs)
		w1 := seriesVelocity(pr.Pe, 2)
		w2 := field.NewSeries(pr.Pe, 2)
		for c := range w2 {
			phase := float64(c) * 0.7
			w2[c].SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return 0.2 * math.Sin(2*x3+phase), 0.3 * math.Cos(x1+x2), 0.1 * math.Sin(x2-phase)
			})
		}
		a := sp.HessMatVec(w1).Dot(w2)
		b := sp.HessMatVec(w2).Dot(w1)
		rel := math.Abs(a-b) / (math.Abs(a) + math.Abs(b) + 1e-12)
		if rel > 0.05 {
			t.Errorf("series Hessian asymmetric: %g vs %g (rel %g)", a, b, rel)
		}
		return nil
	})
}

func TestSeriesRegistrationImprovesOnStationary(t *testing.T) {
	// A time-varying velocity parameterization strictly contains the
	// stationary one, so at equal beta the optimizer must reach an equal
	// or lower objective.
	g := grid.MustNew(16, 16, 16)
	opt := DefaultOptions()
	opt.Beta = 1e-3
	setup(t, g, 1, opt, func(pr *Problem) error {
		nopt := optim.DefaultNewtonOptions()

		drv := pr.Driver()
		stat := optim.GaussNewton[*field.Vector](drv, field.NewVector(pr.Pe), nopt)

		sp, err := NewSeries(pr, 2)
		if err != nil {
			return err
		}
		tv := optim.GaussNewton[field.Series](sp, field.NewSeries(pr.Pe, 2), nopt)

		if tv.JFinal > stat.JFinal*1.1 {
			t.Errorf("time-varying solve worse than stationary: %g vs %g", tv.JFinal, stat.JFinal)
		}
		if !tv.Converged && !stat.Converged {
			t.Errorf("neither solve converged")
		}
		return nil
	})
}

func TestSeriesIncompressibleStaysDivergenceFree(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	opt := DefaultOptions()
	opt.Incompressible = true
	setup(t, g, 1, opt, func(pr *Problem) error {
		sp, err := NewSeries(pr, 2)
		if err != nil {
			return err
		}
		res := optim.GaussNewton[field.Series](sp, field.NewSeries(pr.Pe, 2), optim.DefaultNewtonOptions())
		for c, v := range res.V {
			if m := pr.Ops.Div(v).MaxAbs(); m > 1e-8 {
				t.Errorf("interval %d: div v = %g", c, m)
			}
		}
		return nil
	})
}
