package imaging

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"diffreg/internal/grid"
)

// WriteMHD writes a global volume as a MetaImage header/raw pair, the
// interchange format common in the medical imaging community (ELASTIX,
// ANTS and friends read it). Data is float64 little-endian, row-major with
// dimension 2 fastest; MetaImage's DimSize is listed fastest-first.
func WriteMHD(path string, g grid.Grid, data []float64) error {
	if len(data) != g.Total() {
		return fmt.Errorf("imaging: volume has %d values, grid needs %d", len(data), g.Total())
	}
	rawName := trimExt(filepath.Base(path)) + ".raw"
	header := fmt.Sprintf(`ObjectType = Image
NDims = 3
BinaryData = True
BinaryDataByteOrderMSB = False
DimSize = %d %d %d
ElementSpacing = %g %g %g
ElementType = MET_DOUBLE
ElementDataFile = %s
`, g.N[2], g.N[1], g.N[0], g.Spacing(2), g.Spacing(1), g.Spacing(0), rawName)
	if err := os.WriteFile(path, []byte(header), 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(filepath.Dir(path), rawName))
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	var buf [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// ReadMHDRaw reads back a raw volume written by WriteMHD given the grid.
func ReadMHDRaw(rawPath string, g grid.Grid) ([]float64, error) {
	b, err := os.ReadFile(rawPath)
	if err != nil {
		return nil, err
	}
	if len(b) != 8*g.Total() {
		return nil, fmt.Errorf("imaging: raw file has %d bytes, want %d", len(b), 8*g.Total())
	}
	out := make([]float64, g.Total())
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

func trimExt(name string) string {
	ext := filepath.Ext(name)
	return name[:len(name)-len(ext)]
}

// WritePGMSlice writes one axial slice (fixed index along the given axis)
// of a global volume as an 8-bit PGM image, rescaled to the volume's
// intensity range — the format used for the figure reproductions.
func WritePGMSlice(path string, g grid.Grid, data []float64, axis, index int) error {
	if axis < 0 || axis > 2 {
		return fmt.Errorf("imaging: axis %d out of range", axis)
	}
	if index < 0 || index >= g.N[axis] {
		return fmt.Errorf("imaging: slice %d out of range for axis %d (size %d)", index, axis, g.N[axis])
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	scale := 0.0
	if hi > lo {
		scale = 255 / (hi - lo)
	}
	var w, h int
	var at func(i, j int) float64
	n := g.N
	switch axis {
	case 0:
		h, w = n[1], n[2]
		at = func(i, j int) float64 { return data[(index*n[1]+i)*n[2]+j] }
	case 1:
		h, w = n[0], n[2]
		at = func(i, j int) float64 { return data[(i*n[1]+index)*n[2]+j] }
	default:
		h, w = n[0], n[1]
		at = func(i, j int) float64 { return data[(i*n[1]+j)*n[2]+index] }
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", w, h)
	for i := 0; i < h; i++ {
		for j := 0; j < w; j++ {
			bw.WriteByte(byte((at(i, j) - lo) * scale))
		}
	}
	return bw.Flush()
}
