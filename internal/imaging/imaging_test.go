package imaging

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

func withPencil(t *testing.T, g grid.Grid, p int, fn func(pe *grid.Pencil) error) {
	t.Helper()
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		return fn(pe)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticTemplateRange(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withPencil(t, g, 2, func(pe *grid.Pencil) error {
		s := SyntheticTemplate(pe)
		if s.Min() < 0 || s.Max() > 1 {
			t.Errorf("range [%g, %g]", s.Min(), s.Max())
		}
		if s.Max() < 0.9 {
			t.Errorf("template nearly flat: max %g", s.Max())
		}
		return nil
	})
}

func TestSolenoidalVelocityIsDivergenceFree(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withPencil(t, g, 1, func(pe *grid.Pencil) error {
		ops := spectral.New(pfft.NewPlan(pe))
		v := SolenoidalVelocity(pe)
		if m := ops.Div(v).MaxAbs(); m > 1e-10 {
			t.Errorf("div = %g", m)
		}
		return nil
	})
}

func TestMakeReferenceDiffersFromTemplate(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withPencil(t, g, 1, func(pe *grid.Pencil) error {
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := SyntheticTemplate(pe)
		rhoR := MakeReference(ops, rhoT, SyntheticVelocity(pe), 4, false)
		diff := rhoR.Clone()
		diff.Axpy(-1, rhoT)
		if diff.NormL2() < 1e-3 {
			t.Errorf("reference equals template: %g", diff.NormL2())
		}
		return nil
	})
}

func TestNormalize(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 2, func(pe *grid.Pencil) error {
		s := field.NewScalar(pe)
		s.SetFunc(func(x1, _, _ float64) float64 { return 5 + 3*math.Sin(x1) })
		Normalize(s)
		if math.Abs(s.Min()) > 1e-12 || math.Abs(s.Max()-1) > 1e-12 {
			t.Errorf("range [%g, %g]", s.Min(), s.Max())
		}
		flat := field.NewScalar(pe)
		flat.Fill(7)
		Normalize(flat)
		if flat.MaxAbs() != 0 {
			t.Errorf("constant image should normalize to 0")
		}
		return nil
	})
}

func TestBrainPhantomSubjectsDiffer(t *testing.T) {
	g := grid.MustNew(24, 24, 24)
	withPencil(t, g, 1, func(pe *grid.Pencil) error {
		a := BrainPhantom(pe, 1)
		b := BrainPhantom(pe, 2)
		aa := BrainPhantom(pe, 1)
		// Deterministic per seed.
		for i := range a.Data {
			if a.Data[i] != aa.Data[i] {
				t.Fatalf("phantom not deterministic at %d", i)
			}
		}
		diff := a.Clone()
		diff.Axpy(-1, b)
		rel := diff.NormL2() / a.NormL2()
		if rel < 0.02 {
			t.Errorf("subjects nearly identical: rel diff %g", rel)
		}
		if rel > 1.0 {
			t.Errorf("subjects unrelated: rel diff %g", rel)
		}
		// Plausible intensities and nonempty anatomy.
		if a.Min() < 0 || a.Max() > 1 {
			t.Errorf("intensity range [%g, %g]", a.Min(), a.Max())
		}
		if a.Mean() < 0.01 {
			t.Errorf("phantom almost empty: mean %g", a.Mean())
		}
		// Background (domain corner) must be empty.
		if a.Data[0] != 0 {
			t.Errorf("corner intensity %g, want 0", a.Data[0])
		}
		return nil
	})
}

func TestGatherScatterRoundTrip(t *testing.T) {
	g := grid.MustNew(8, 12, 6)
	withPencil(t, g, 4, func(pe *grid.Pencil) error {
		s := field.NewScalar(pe)
		s.SetFunc(func(x1, x2, x3 float64) float64 { return math.Sin(x1) + 2*math.Cos(x2) + x3 })
		global := s.Gather()
		if pe.Comm.Rank() == 0 {
			if len(global) != g.Total() {
				t.Errorf("gather len %d", len(global))
			}
		} else if global != nil {
			t.Errorf("non-root got data")
		}
		s2 := field.NewScalar(pe)
		s2.Scatter(global)
		for i := range s.Data {
			if s.Data[i] != s2.Data[i] {
				t.Errorf("scatter mismatch at %d", i)
				return nil
			}
		}
		return nil
	})
}

func TestGatherOrdering(t *testing.T) {
	// Gathered values must land at the right global indices.
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 4, func(pe *grid.Pencil) error {
		s := field.NewScalar(pe)
		n := g.N
		pe.EachLocal(func(i1, i2, i3, idx int) {
			s.Data[idx] = float64(((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2] + pe.Lo[2] + i3)
		})
		global := s.Gather()
		if pe.Comm.Rank() == 0 {
			for i, v := range global {
				if int(v) != i {
					t.Errorf("global[%d] = %v", i, v)
					return nil
				}
			}
		}
		return nil
	})
}

func TestWriteMHDRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := grid.MustNew(6, 5, 4)
	data := make([]float64, g.Total())
	for i := range data {
		data[i] = float64(i) * 0.5
	}
	path := filepath.Join(dir, "vol.mhd")
	if err := WriteMHD(path, g, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMHDRaw(filepath.Join(dir, "vol.raw"), g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != back[i] {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
	if err := WriteMHD(path, g, data[:10]); err == nil {
		t.Error("short volume accepted")
	}
}

func TestWritePGMSlice(t *testing.T) {
	dir := t.TempDir()
	g := grid.MustNew(6, 5, 4)
	data := make([]float64, g.Total())
	for i := range data {
		data[i] = float64(i % 7)
	}
	for axis := 0; axis < 3; axis++ {
		path := filepath.Join(dir, "s.pgm")
		if err := WritePGMSlice(path, g, data, axis, 1); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(b[:2]) != "P5" {
			t.Errorf("axis %d: bad magic", axis)
		}
	}
	if err := WritePGMSlice(filepath.Join(dir, "s.pgm"), g, data, 3, 0); err == nil {
		t.Error("bad axis accepted")
	}
	if err := WritePGMSlice(filepath.Join(dir, "s.pgm"), g, data, 0, 99); err == nil {
		t.Error("bad index accepted")
	}
}

func TestRigidRegisterRecoversShift(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	n := g.N
	tmpl := make([]float64, g.Total())
	ref := make([]float64, g.Total())
	blob := func(i1, i2, i3 int) float64 {
		d1 := float64(i1 - 8)
		d2 := float64(i2 - 8)
		d3 := float64(i3 - 8)
		return math.Exp(-(d1*d1 + d2*d2 + d3*d3) / 8)
	}
	idx := 0
	for i1 := 0; i1 < n[0]; i1++ {
		for i2 := 0; i2 < n[1]; i2++ {
			for i3 := 0; i3 < n[2]; i3++ {
				tmpl[idx] = blob(i1, i2, i3)
				ref[idx] = blob((i1-3+16)%16, (i2-2+16)%16, i3)
				idx++
			}
		}
	}
	res := RigidRegister(g, tmpl, ref)
	if res.Shift[0] != 3 || res.Shift[1] != 2 || res.Shift[2] != 0 {
		t.Errorf("shift %v, want (3,2,0)", res.Shift)
	}
	if res.MisfitFinal > 0.01*res.MisfitInit {
		t.Errorf("misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
}

func TestDice(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 2, func(pe *grid.Pencil) error {
		a := field.NewScalar(pe)
		b := field.NewScalar(pe)
		// Identical sets -> 1.
		a.SetFunc(func(x1, _, _ float64) float64 {
			if x1 < math.Pi {
				return 1
			}
			return 0
		})
		b.CopyFrom(a)
		if d := Dice(a, b, 0.5); math.Abs(d-1) > 1e-12 {
			t.Errorf("identical sets dice %g", d)
		}
		// Disjoint sets -> 0.
		b.SetFunc(func(x1, _, _ float64) float64 {
			if x1 >= math.Pi {
				return 1
			}
			return 0
		})
		if d := Dice(a, b, 0.5); d != 0 {
			t.Errorf("disjoint sets dice %g", d)
		}
		// Empty sets -> 1 by convention.
		a.Fill(0)
		b.Fill(0)
		if d := Dice(a, b, 0.5); d != 1 {
			t.Errorf("empty sets dice %g", d)
		}
		return nil
	})
}

func TestRegistrationImprovesDice(t *testing.T) {
	// The warped template's level sets must overlap the reference's much
	// better after registration — the standard evaluation protocol.
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := SyntheticTemplate(pe)
		rhoR := MakeReference(ops, rhoT, SyntheticVelocity(pe), 4, false)
		ts := transport.NewSolver(ops, 4)
		// Ground-truth map: warp the template with the exact velocity.
		ctx := ts.NewContext(SyntheticVelocity(pe), false)
		u := ts.Displacement(ctx)
		warped := ts.ApplyMap(rhoT, u)
		before := Dice(rhoT, rhoR, 0.5)
		after := Dice(warped, rhoR, 0.5)
		if after <= before {
			t.Errorf("dice did not improve: %g -> %g", before, after)
		}
		if after < 0.9 {
			t.Errorf("post-warp dice %g too low", after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
