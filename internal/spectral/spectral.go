// Package spectral implements the spatial differential operators of the
// paper as diagonal scalings in Fourier space: gradient, divergence,
// (vector) Laplacian, biharmonic operator, their inverses, the Leray
// projection that eliminates the incompressibility constraint, and the
// Gaussian smoothing applied to the input images. All operators act on
// distributed fields through the pencil FFT, so they are exact up to
// spectral accuracy and invertible at the cost of a diagonal scaling
// (§III-B1 of the paper).
//
// The hot operators run on precomputed per-mode symbol tables laid out in
// the plan's local spectral order (raw and Nyquist-filtered wavenumbers,
// |k|^2, the cubic B-spline sampling symbol, the grid-scale Gaussian), so
// a diagonal application is a straight slice loop with no wavenumber
// re-derivation. Vector operators carry all three components through the
// batched pencil transforms — one all-to-all per transpose stage for the
// whole field — and the *InPlace/*Into variants reuse plan and operator
// workspaces so steady-state applications allocate nothing.
package spectral

import (
	"math"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
)

// must asserts an error-free pfft entry-point call. Every transform issued
// by this package passes plan-owned or field-owned buffers whose lengths
// are correct by construction, so an error here is unreachable through the
// public API; must documents that and turns a plan bug into a loud stop.
func must(err error) {
	if err != nil {
		panic("spectral: " + err.Error())
	}
}

// Ops bundles the FFT plan with the operator implementations, the symbol
// tables, and the reusable spectral workspace. An Ops value is owned by one
// rank goroutine (like its Plan) and must not be shared concurrently.
type Ops struct {
	Plan *pfft.Plan
	Pe   *grid.Pencil

	// Symbol tables in local spectral layout, one entry per mode.
	kw   [3][]float64 // raw signed wavenumbers as floats
	kf   [3][]float64 // Nyquist-filtered wavenumbers (derivative symbols)
	ksqT []float64    // float64(k1^2+k2^2+k3^2), raw (Laplacian family)
	ksqF []float64    // kf1^2+kf2^2+kf3^2, filtered (Leray / grad-div)
	bsp  []float64    // cubic B-spline sampling symbol product (lazy)
	gaus []float64    // Gaussian symbol at sigma = grid spacing (lazy)

	// Workspace: three component spectra plus one scalar spectrum.
	spec [3][]complex128
	scal []complex128

	// Reusable batch headers for the plan's *BatchInto entry points.
	hdrR [3][]float64
	hdrC [3][]complex128

	// Job-fusion workspace: spectra and headers for fields × jobs
	// batches (see batch.go); grown lazily by DiagVectorBatch/WarmBatch.
	bspec [][]complex128
	bhdrR [][]float64
	bhdrC [][]complex128

	// Prebuilt pool kernels over the mode range [lo, hi); retained on the
	// Ops so hot operators spawn no closures.
	fnGrad    func(c, lo, hi int)
	fnDiv     func(c, lo, hi int)
	fnLeray   func(c, lo, hi int)
	fnGradDiv func(c, lo, hi int)
	fnVecLap  func(c, lo, hi int)
	fnBiharm  func(c, lo, hi int)
	fnInvBih  func(c, lo, hi int)
}

// New builds the operator set for a pencil decomposition, precomputing the
// wavenumber and |k|^2 tables at the plan's local spectral layout.
func New(plan *pfft.Plan) *Ops {
	o := &Ops{Plan: plan, Pe: plan.Pe}
	n := o.Pe.Grid.N
	total := plan.SpecLocalTotal()
	for d := 0; d < 3; d++ {
		o.kw[d] = make([]float64, total)
		o.kf[d] = make([]float64, total)
		o.spec[d] = make([]complex128, total)
	}
	o.ksqT = make([]float64, total)
	o.ksqF = make([]float64, total)
	o.scal = make([]complex128, total)
	plan.EachSpec(func(idx, k1, k2, k3 int) {
		o.kw[0][idx] = float64(k1)
		o.kw[1][idx] = float64(k2)
		o.kw[2][idx] = float64(k3)
		o.kf[0][idx] = kfilt(k1, n[0])
		o.kf[1][idx] = kfilt(k2, n[1])
		o.kf[2][idx] = kfilt(k3, n[2])
		o.ksqT[idx] = ksq(k1, k2, k3)
		kk := [3]float64{o.kf[0][idx], o.kf[1][idx], o.kf[2][idx]}
		o.ksqF[idx] = kk[0]*kk[0] + kk[1]*kk[1] + kk[2]*kk[2]
	})
	o.buildKernels()
	return o
}

// Rebind re-attaches the operator set (and its plan) to a pencil of
// identical geometry on a different communicator — see pfft.Plan.Rebind.
// The symbol tables, workspaces, and kernels are pure functions of the
// geometry, so they carry over unchanged; only the communicator handle
// moves. The single-owner contract is unchanged: a rebound Ops must still
// be used by exactly one rank goroutine at a time.
func (o *Ops) Rebind(pe *grid.Pencil) error {
	if err := o.Plan.Rebind(pe); err != nil {
		return err
	}
	o.Pe = pe
	return nil
}

// Precision returns the hot-path precision of the underlying transform
// plan; the symbol tables themselves always stay float64.
func (o *Ops) Precision() prec.Precision { return o.Plan.Precision() }

// buildKernels constructs the retained table-driven pool kernels. Each
// preserves the floating-point expression of the closure it replaces
// exactly, so results stay bit-identical to the unbatched operators.
func (o *Ops) buildKernels() {
	o.fnGrad = func(c, lo, hi int) {
		src := o.scal
		for idx := lo; idx < hi; idx++ {
			v := src[idx]
			o.spec[0][idx] = v * complex(0, o.kf[0][idx])
			o.spec[1][idx] = v * complex(0, o.kf[1][idx])
			o.spec[2][idx] = v * complex(0, o.kf[2][idx])
		}
	}
	o.fnDiv = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			t0 := s0[idx] * complex(0, o.kf[0][idx])
			t1 := s1[idx] * complex(0, o.kf[1][idx])
			t2 := s2[idx] * complex(0, o.kf[2][idx])
			s0[idx] = t0 + t1 + t2
		}
	}
	o.fnLeray = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			q := o.ksqF[idx]
			if q == 0 {
				continue
			}
			k0, k1, k2 := o.kf[0][idx], o.kf[1][idx], o.kf[2][idx]
			dot := complex(k0, 0)*s0[idx] + complex(k1, 0)*s1[idx] + complex(k2, 0)*s2[idx]
			s0[idx] -= complex(k0/q, 0) * dot
			s1[idx] -= complex(k1/q, 0) * dot
			s2[idx] -= complex(k2/q, 0) * dot
		}
	}
	o.fnGradDiv = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			k0, k1, k2 := o.kf[0][idx], o.kf[1][idx], o.kf[2][idx]
			dot := complex(k0, 0)*s0[idx] + complex(k1, 0)*s1[idx] + complex(k2, 0)*s2[idx]
			// grad(div) has symbol (ik_d)(ik_e) = -k_d k_e.
			s0[idx] = -complex(k0, 0) * dot
			s1[idx] = -complex(k1, 0) * dot
			s2[idx] = -complex(k2, 0) * dot
		}
	}
	o.fnVecLap = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			f := complex(-o.ksqT[idx], 0)
			s0[idx] *= f
			s1[idx] *= f
			s2[idx] *= f
		}
	}
	o.fnBiharm = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			q := o.ksqT[idx]
			f := complex(q*q, 0)
			s0[idx] *= f
			s1[idx] *= f
			s2[idx] *= f
		}
	}
	o.fnInvBih = func(c, lo, hi int) {
		s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
		for idx := lo; idx < hi; idx++ {
			q := o.ksqT[idx]
			var f complex128
			if q != 0 {
				f = complex(1/(q*q), 0)
			}
			s0[idx] *= f
			s1[idx] *= f
			s2[idx] *= f
		}
	}
}

// forwardVec transforms the three components of v into the spec workspace
// through one batched pipeline (a single all-to-all per transpose stage).
func (o *Ops) forwardVec(v *field.Vector) {
	for d := 0; d < 3; d++ {
		o.hdrR[d] = v.C[d].Data
		o.hdrC[d] = o.spec[d]
	}
	must(o.Plan.ForwardBatchInto(o.hdrR[:], o.hdrC[:]))
}

// inverseVec transforms the spec workspace back into the components of dst.
func (o *Ops) inverseVec(dst *field.Vector) {
	for d := 0; d < 3; d++ {
		o.hdrC[d] = o.spec[d]
		o.hdrR[d] = dst.C[d].Data
	}
	must(o.Plan.InverseBatchInto(o.hdrC[:], o.hdrR[:]))
}

// modes runs a retained kernel over the local mode range on the pool.
func (o *Ops) modes(fn func(c, lo, hi int)) {
	par.ForChunks(o.Plan.SpecLocalTotal(), par.DefaultGrain, fn)
}

// nyquistZero returns 0 for the Nyquist wavenumber of an even-length
// dimension and ik otherwise; first derivatives must drop the Nyquist mode
// to stay real and skew-symmetric.
func derivFactor(k, n int) complex128 {
	if 2*k == n {
		return 0
	}
	return complex(0, float64(k))
}

// Forward transforms a scalar field to its local spectral block.
func (o *Ops) Forward(s *field.Scalar) []complex128 {
	spec, err := o.Plan.Forward(s.Data)
	if err != nil {
		must(err)
	}
	return spec
}

// InverseInto transforms a spectral block back into the scalar field dst.
func (o *Ops) InverseInto(spec []complex128, dst *field.Scalar) {
	must(o.Plan.InverseInto(spec, dst.Data))
}

// DiagScalar applies the real diagonal symbol f(k1,k2,k3) to a scalar
// field, returning a new field.
func (o *Ops) DiagScalar(s *field.Scalar, f func(k1, k2, k3 int) float64) *field.Scalar {
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec := o.scal
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		spec[idx] *= complex(f(k1, k2, k3), 0)
	})
	out := field.NewScalar(o.Pe)
	must(o.Plan.InverseInto(spec, out.Data))
	return out
}

// DiagVector applies a real diagonal symbol componentwise to a vector
// field, returning a new field. The three components travel through one
// batched transform pipeline and the symbol is evaluated once per mode.
func (o *Ops) DiagVector(v *field.Vector, f func(k1, k2, k3 int) float64) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		cf := complex(f(k1, k2, k3), 0)
		s0[idx] *= cf
		s1[idx] *= cf
		s2[idx] *= cf
	})
	o.inverseVec(out)
	return out
}

// DiagVectorInPlace is DiagVector writing back into v.
func (o *Ops) DiagVectorInPlace(v *field.Vector, f func(k1, k2, k3 int) float64) {
	o.forwardVec(v)
	s0, s1, s2 := o.spec[0], o.spec[1], o.spec[2]
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		cf := complex(f(k1, k2, k3), 0)
		s0[idx] *= cf
		s1[idx] *= cf
		s2[idx] *= cf
	})
	o.inverseVec(v)
}

// Grad returns the spectral gradient of a scalar field. One forward
// transform is shared by the three component derivatives — the
// "optimization for the grad operator" the paper describes — and the three
// inverse transforms ride one batched pipeline.
func (o *Ops) Grad(s *field.Scalar) *field.Vector {
	out := field.NewVector(o.Pe)
	o.GradInto(s, out)
	return out
}

// GradInto is Grad writing into a caller-provided vector field; it performs
// zero heap allocations after workspace warmup.
func (o *Ops) GradInto(s *field.Scalar, out *field.Vector) {
	must(o.Plan.ForwardInto(s.Data, o.scal))
	o.modes(o.fnGrad)
	o.inverseVec(out)
}

// Div returns the spectral divergence of a vector field.
func (o *Ops) Div(v *field.Vector) *field.Scalar {
	out := field.NewScalar(o.Pe)
	o.DivInto(v, out)
	return out
}

// DivInto is Div writing into a caller-provided scalar field; it performs
// zero heap allocations after workspace warmup.
func (o *Ops) DivInto(v *field.Vector, out *field.Scalar) {
	o.forwardVec(v)
	o.modes(o.fnDiv)
	must(o.Plan.InverseInto(o.spec[0], out.Data))
}

// Lap returns the Laplacian of a scalar field (symbol -|k|^2).
func (o *Ops) Lap(s *field.Scalar) *field.Scalar {
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec, tab := o.scal, o.ksqT
	par.For(len(spec), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			spec[idx] *= complex(-tab[idx], 0)
		}
	})
	out := field.NewScalar(o.Pe)
	must(o.Plan.InverseInto(spec, out.Data))
	return out
}

// InvLap returns the zero-mean solution of lap(u) = s; the k=0 mode is
// projected out (the standard pseudo-inverse on the torus).
func (o *Ops) InvLap(s *field.Scalar) *field.Scalar {
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec, tab := o.scal, o.ksqT
	par.For(len(spec), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			q := tab[idx]
			var f float64
			if q != 0 {
				f = -1 / q
			}
			spec[idx] *= complex(f, 0)
		}
	})
	out := field.NewScalar(o.Pe)
	must(o.Plan.InverseInto(spec, out.Data))
	return out
}

// VecLap applies the Laplacian componentwise to a vector field.
func (o *Ops) VecLap(v *field.Vector) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	o.modes(o.fnVecLap)
	o.inverseVec(out)
	return out
}

// VecLapInPlace applies the componentwise Laplacian in place.
func (o *Ops) VecLapInPlace(v *field.Vector) {
	o.forwardVec(v)
	o.modes(o.fnVecLap)
	o.inverseVec(v)
}

// Biharm applies the biharmonic operator lap^2 componentwise (symbol |k|^4).
func (o *Ops) Biharm(v *field.Vector) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	o.modes(o.fnBiharm)
	o.inverseVec(out)
	return out
}

// BiharmInPlace applies the biharmonic operator in place.
func (o *Ops) BiharmInPlace(v *field.Vector) {
	o.forwardVec(v)
	o.modes(o.fnBiharm)
	o.inverseVec(v)
}

// InvBiharm applies the pseudo-inverse of the biharmonic operator, the
// preconditioner of the paper ("the inverse of the biharmonic operator,
// applied in nearly linear time using FFTs").
func (o *Ops) InvBiharm(v *field.Vector) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	o.modes(o.fnInvBih)
	o.inverseVec(out)
	return out
}

// InvBiharmInPlace applies the biharmonic pseudo-inverse in place.
func (o *Ops) InvBiharmInPlace(v *field.Vector) {
	o.forwardVec(v)
	o.modes(o.fnInvBih)
	o.inverseVec(v)
}

// Leray applies the projection P = I - grad lap^{-1} div onto
// divergence-free fields: in Fourier space v_k <- v_k - k (k . v_k)/|k|^2,
// with the Nyquist-filtered wavenumbers so that P matches the discrete
// Div/Grad operators exactly (then div(Pv) = 0 and P^2 = P to machine
// precision). The projected field satisfies div(Pv) = 0 to machine
// precision, which is how the incompressibility constraint (2d) is
// eliminated.
func (o *Ops) Leray(v *field.Vector) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	o.modes(o.fnLeray)
	o.inverseVec(out)
	return out
}

// LerayInPlace applies the Leray projection in place; it performs zero heap
// allocations after workspace warmup.
func (o *Ops) LerayInPlace(v *field.Vector) {
	o.forwardVec(v)
	o.modes(o.fnLeray)
	o.inverseVec(v)
}

// GradDiv applies the operator grad(div v) in one spectral pass (symbol
// -k k^T). The negated operator -grad div is symmetric positive
// semidefinite and penalizes exactly the compressible modes that the
// Leray projection removes; it implements the soft volume-change penalty
// gamma/2 ||div v||^2 (the NIFTYREG-style alternative to the paper's hard
// constraint).
func (o *Ops) GradDiv(v *field.Vector) *field.Vector {
	out := field.NewVector(o.Pe)
	o.forwardVec(v)
	o.modes(o.fnGradDiv)
	o.inverseVec(out)
	return out
}

// GradDivInPlace applies grad(div v) in place.
func (o *Ops) GradDivInPlace(v *field.Vector) {
	o.forwardVec(v)
	o.modes(o.fnGradDiv)
	o.inverseVec(v)
}

// GaussianSmooth convolves the scalar field in place with a periodic
// Gaussian of standard deviation sigma[d] in dimension d. The paper uses
// sigma equal to one grid cell (bandwidth 2*pi/N) to make raw images
// spectrally differentiable.
func (o *Ops) GaussianSmooth(s *field.Scalar, sigma [3]float64) {
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec := o.scal
	k0, k1, k2 := o.kw[0], o.kw[1], o.kw[2]
	par.For(len(spec), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			// kw[d]^2 equals float64(k_d*k_d) exactly (both are exact
			// integers below 2^53), so this matches the closure form.
			e := k0[idx]*k0[idx]*sigma[0]*sigma[0] + k1[idx]*k1[idx]*sigma[1]*sigma[1] + k2[idx]*k2[idx]*sigma[2]*sigma[2]
			spec[idx] *= complex(math.Exp(-e/2), 0)
		}
	})
	must(o.Plan.InverseInto(spec, s.Data))
}

// SmoothGridScale smooths with the paper's default bandwidth of one grid
// spacing in each dimension, using a lazily built symbol table so repeated
// smoothing (grid continuation, image preprocessing) skips the exponentials.
func (o *Ops) SmoothGridScale(s *field.Scalar) {
	if o.gaus == nil {
		g := o.Pe.Grid
		sigma := [3]float64{g.Spacing(0), g.Spacing(1), g.Spacing(2)}
		o.gaus = make([]float64, o.Plan.SpecLocalTotal())
		k0, k1, k2 := o.kw[0], o.kw[1], o.kw[2]
		for idx := range o.gaus {
			e := k0[idx]*k0[idx]*sigma[0]*sigma[0] + k1[idx]*k1[idx]*sigma[1]*sigma[1] + k2[idx]*k2[idx]*sigma[2]*sigma[2]
			o.gaus[idx] = math.Exp(-e / 2)
		}
	}
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec, tab := o.scal, o.gaus
	par.For(len(spec), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			spec[idx] *= complex(tab[idx], 0)
		}
	})
	must(o.Plan.InverseInto(spec, s.Data))
}

func ksq(k1, k2, k3 int) float64 {
	return float64(k1*k1 + k2*k2 + k3*k3)
}

// kfilt returns the wavenumber as a float with the Nyquist mode of
// even-length dimensions removed, mirroring derivFactor.
func kfilt(k, n int) float64 {
	if 2*k == n {
		return 0
	}
	return float64(k)
}

// Resample spectrally transfers a scalar field between two grids on the
// same communicator (restriction when dst is coarser, zero-padding
// prolongation when finer) without any gather: the shared Fourier modes
// are routed directly to their destination owners.
func Resample(src, dst *Ops, s *field.Scalar) *field.Scalar {
	must(src.Plan.ForwardInto(s.Data, src.scal))
	moved := pfft.TransferSpectrum(src.Plan, dst.Plan, src.scal)
	out := field.NewScalar(dst.Pe)
	must(dst.Plan.InverseInto(moved, out.Data))
	return out
}

// ResampleVector transfers all three components in one batch: a single
// batched forward, one fused mode-routing exchange, and a single batched
// inverse, so the collective latency is paid once for the whole field.
func ResampleVector(src, dst *Ops, v *field.Vector) *field.Vector {
	src.forwardVec(v)
	for d := 0; d < 3; d++ {
		src.hdrC[d] = src.spec[d]
	}
	moved := pfft.TransferSpectrumBatch(src.Plan, dst.Plan, src.hdrC[:])
	out := field.NewVector(dst.Pe)
	for d := 0; d < 3; d++ {
		dst.hdrC[d] = moved[d]
		dst.hdrR[d] = out.C[d].Data
	}
	must(dst.Plan.InverseBatchInto(dst.hdrC[:], dst.hdrR[:]))
	return out
}

// BSplinePrefilter converts nodal values to cubic B-spline coefficients in
// place: an exact spectral division by the B-spline sampling symbol on the
// periodic domain. After prefiltering, the B-spline interpolant (package
// interp) reproduces the original nodal values exactly.
func (o *Ops) BSplinePrefilter(s *field.Scalar) {
	if o.bsp == nil {
		n := o.Pe.Grid.N
		o.bsp = make([]float64, o.Plan.SpecLocalTotal())
		o.Plan.EachSpec(func(idx, k1, k2, k3 int) {
			o.bsp[idx] = interp.BSplineSymbol(k1, n[0]) * interp.BSplineSymbol(k2, n[1]) * interp.BSplineSymbol(k3, n[2])
		})
	}
	must(o.Plan.ForwardInto(s.Data, o.scal))
	spec, tab := o.scal, o.bsp
	par.For(len(spec), func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			spec[idx] /= complex(tab[idx], 0)
		}
	})
	must(o.Plan.InverseInto(spec, s.Data))
}
