package serve

// Retry supervisor: a per-job attempt budget with deterministic
// exponential backoff, gated by error kind. Communication failures —
// the typed *mpi.CommError class PR 5's receive-side validation raises,
// including chaos-injected faults — are transient by nature: the solver
// state they destroyed is rebuildable, so the job is re-queued and run
// again. Solver failures (non-finite objective after the escalation
// ladder), watchdog timeouts, cancels, and shutdown are deterministic or
// intentional: retrying would reproduce them, so they stay terminal.
//
//	error kind   retried?   rationale
//	comm         yes        transient transport fault; state rebuildable
//	solver       no         deterministic: same inputs, same failure
//	timeout      no         the budget was the point
//	(cancel)     no         client intent
//	shutdown     no         server intent
//
// Retryable attempts run with a checkpoint spool (see Config.SpoolDir):
// attempt N+1 resumes from the last checkpoint attempt N flushed, so a
// fault near the end of a long solve costs one backoff plus the tail of
// the work, not the whole solve. Multilevel jobs reject checkpointing
// (the restriction is the solver's), so the policy retries them from
// scratch. Fault injection (JobSpec.Chaos) is cleared on retry attempts:
// an injected fault models a transient environment failure bound to the
// attempt that hit it, and the deterministic plan would otherwise refire
// on every attempt and exhaust the budget by construction.

import (
	"time"

	"diffreg/internal/ckpt"
)

// RetryPolicy is the server-wide attempt budget. The zero value disables
// retries (every failure is terminal), which is also the default.
type RetryPolicy struct {
	// MaxAttempts is the total execution-attempt budget per job,
	// including the first attempt; <= 1 disables retries.
	MaxAttempts int
	// Backoff is the delay before attempt 2; attempt k waits
	// Backoff * 2^(k-2), capped at MaxBackoff. Deterministic — no jitter —
	// so recovery timing is reproducible in tests and journals.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 30s).
	MaxBackoff time.Duration
	// CheckpointEvery is the spool-checkpoint cadence in outer iterations
	// for retryable jobs (default 1: a fault never loses more than the
	// current iteration). Only meaningful with Config.SpoolDir set.
	CheckpointEvery int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Backoff <= 0 {
		p.Backoff = 250 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 30 * time.Second
	}
	if p.MaxBackoff < p.Backoff {
		// An explicit base beyond the cap wins: the cap bounds growth, it
		// does not silently shrink the configured first delay.
		p.MaxBackoff = p.Backoff
	}
	if p.CheckpointEvery <= 0 {
		p.CheckpointEvery = 1
	}
	return p
}

// enabled reports whether the policy grants second attempts at all.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// delay is the deterministic backoff before the given (1-based) attempt
// number runs; attempt 2 waits Backoff, each later attempt doubles.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.Backoff
	for k := 2; k < attempt; k++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// retryableKind reports whether a failure of this error kind is worth a
// second attempt (see the package table above).
func retryableKind(kind string) bool { return kind == "comm" }

// RetryStats is the retries section of GET /stats.
type RetryStats struct {
	Enabled     bool  `json:"enabled"`
	MaxAttempts int   `json:"max_attempts"`
	Scheduled   int64 `json:"scheduled"` // retry attempts scheduled
	Resumed     int64 `json:"resumed"`   // attempts resumed from a spool checkpoint
	Recovered   int64 `json:"recovered"` // jobs that reached done with attempts > 1
	Exhausted   int64 `json:"exhausted"` // retryable failures out of budget
	Pending     int   `json:"pending"`   // jobs currently waiting out a backoff
}

// checkpointable reports whether a spec's solve flavor supports the
// checkpoint spool. Grid continuation and non-stationary velocities
// reject checkpoint/restart in the solver; such jobs retry from scratch.
func checkpointable(spec *JobSpec) bool {
	return spec.config().Checkpointable()
}

// spoolPath returns the job's spool checkpoint file ("" when spooling is
// off or the solve flavor cannot checkpoint).
func (s *Server) spoolPath(job *Job) string {
	if s.cfg.SpoolDir == "" || !checkpointable(&job.Spec) {
		return ""
	}
	return ckpt.SpoolPath(s.cfg.SpoolDir, job.ID)
}

// maybeRetry inspects a failed attempt and either schedules the next one
// (returning true — the job is NOT terminal) or returns false, leaving the
// caller to finish the job. solo marks the rescheduled attempt as
// fusion-exempt (used when a fused batch dies: survivors re-run solo).
func (s *Server) maybeRetry(job *Job, errMsg, kind string, solo bool) bool {
	if !s.cfg.Retry.enabled() || !retryableKind(kind) {
		return false
	}
	// A cancel or timeout that raced the failure wins: the stop was
	// intentional, so the budget does not apply.
	if job.canceled.Load() || job.timedOut.Load() {
		return false
	}
	attempts := job.Attempts()
	if attempts >= s.cfg.Retry.MaxAttempts {
		s.retryExhausted.Add(1)
		return false
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	if solo {
		job.soloOnly.Store(true)
	}
	backoff := s.cfg.Retry.delay(attempts + 1)
	job.setQueuedForRetry(errMsg, kind, time.Now().Add(backoff))
	s.retryTimers[job.ID] = time.AfterFunc(backoff, func() { s.enqueueRetry(job) })
	s.retryScheduled.Add(1)
	s.mu.Unlock()
	s.logf("%s attempt %d failed (%s): retrying in %v: %v", job.ID, attempts, kind, backoff, errMsg)
	return true
}

// enqueueRetry moves a backed-off job onto the admission queue. It runs
// from the retry timer, after Close (the job is then finished by Close's
// sweep), or with a full queue (it re-arms and tries again).
func (s *Server) enqueueRetry(job *Job) {
	s.mu.Lock()
	delete(s.retryTimers, job.ID)
	if s.closed {
		// Close's terminal sweep owns jobs that never re-ran.
		s.mu.Unlock()
		return
	}
	if job.State().Terminal() {
		// Canceled while waiting out the backoff; account for it here —
		// the worker-side skip never sees a job that was never enqueued.
		s.mu.Unlock()
		s.canceled.Add(1)
		return
	}
	select {
	case s.queue <- job:
		s.mu.Unlock()
	default:
		// Queue full: the retried job yields to live traffic and backs
		// off one more base interval.
		s.retryTimers[job.ID] = time.AfterFunc(s.cfg.Retry.Backoff, func() { s.enqueueRetry(job) })
		s.mu.Unlock()
	}
}

// stopRetryTimersLocked cancels every pending backoff (caller holds s.mu,
// during Close): jobs whose timer had not fired stay queued and are
// finished by Close's terminal sweep; timers that already fired find
// s.closed set and stand down.
func (s *Server) stopRetryTimersLocked() {
	for id, tm := range s.retryTimers {
		tm.Stop()
		delete(s.retryTimers, id)
	}
}
