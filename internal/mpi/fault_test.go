package mpi

// Tests for the fault-injection and failure-detection layer: every
// injected fault must end in either the fault-free answer (delay,
// duplicate, expired stall) or a typed *CommError (bit flip, truncation,
// drop) — never a hang or a silent wrong answer. runBounded is the hang
// detector: any run that exceeds its budget fails the test instead of
// wedging the suite.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// runBounded executes RunWith under a wall-clock bound and fails the test
// if the world does not come back — the zero-hang property under test.
func runBounded(t *testing.T, bound time.Duration, p int, opts RunOpts, fn func(c *Comm) error) ([]*Stats, error) {
	t.Helper()
	type result struct {
		stats []*Stats
		err   error
	}
	ch := make(chan result, 1)
	go func() {
		stats, err := RunWith(p, opts, fn)
		ch <- result{stats, err}
	}()
	select {
	case res := <-ch:
		return res.stats, res.err
	case <-time.After(bound):
		t.Fatalf("RunWith(p=%d) hung for %v", p, bound)
		return nil, nil
	}
}

// exchange does one phase-tagged Alltoallv round and verifies the payload.
func exchange(c *Comm, phase Phase, round int) error {
	old := c.SetPhase(phase)
	defer c.SetPhase(old)
	send := make([][]float64, c.Size())
	for d := range send {
		send[d] = []float64{float64(c.Rank()), float64(d), float64(round)}
	}
	recv := c.AlltoallvFloat64(send)
	for src, got := range recv {
		if len(got) != 3 || got[0] != float64(src) || got[1] != float64(c.Rank()) || got[2] != float64(round) {
			return fmt.Errorf("alltoallv round %d from %d: got %v", round, src, got)
		}
	}
	return nil
}

func TestFaultBitFlipDetected(t *testing.T) {
	fp := NewFaultPlan(42).Add(FaultSite{Rank: 1, Phase: PhaseFFTComm, Op: OpSend, Index: 0, Kind: FaultBitFlip})
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp}, func(c *Comm) error {
		return exchange(c, PhaseFFTComm, 0)
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want CommError for bit flip, got %v", err)
	}
	if !strings.Contains(ce.Detail, "checksum") {
		t.Errorf("want checksum detail, got %q", ce.Detail)
	}
	if len(fp.Injected()) != 1 {
		t.Errorf("injected sites = %v, want exactly the registered one", fp.Injected())
	}
}

func TestFaultTruncateDetected(t *testing.T) {
	fp := NewFaultPlan(7).Add(FaultSite{Rank: 0, Phase: PhaseInterpComm, Op: OpSend, Index: 1, Kind: FaultTruncate})
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp}, func(c *Comm) error {
		return exchange(c, PhaseInterpComm, 0)
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want CommError for truncation, got %v", err)
	}
	if !strings.Contains(ce.Detail, "truncated") {
		t.Errorf("want truncation detail, got %q", ce.Detail)
	}
}

func TestFaultDropTimesOut(t *testing.T) {
	fp := NewFaultPlan(3).Add(FaultSite{Rank: 2, Phase: PhaseFFTComm, Op: OpSend, Index: 0, Kind: FaultDrop})
	start := time.Now()
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp, Watchdog: 200 * time.Millisecond}, func(c *Comm) error {
		return exchange(c, PhaseFFTComm, 0)
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want CommError for dropped message, got %v", err)
	}
	if !strings.Contains(ce.Detail, "timeout") {
		t.Errorf("want timeout detail, got %q", ce.Detail)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("drop detection took %v, watchdog not effective", el)
	}
}

// TestFaultDropSequenceGap pins the reordering hazard: when a dropped
// message is followed by a later message on the same (src, tag) stream,
// the receiver must NOT consume the later payload in its place (it has the
// wrong shape — this used to surface as an out-of-range panic deep in the
// transpose unpack). The sequence gap must be detected immediately as a
// typed CommError, without waiting for the watchdog.
func TestFaultDropSequenceGap(t *testing.T) {
	// Rank 0's first fft-comm send is dropped; rank 0 itself completes
	// round 0 (its incoming messages are intact) and proceeds to round 1,
	// whose message reaches the still-waiting receiver out of sequence.
	fp := NewFaultPlan(11).Add(FaultSite{Rank: 0, Phase: PhaseFFTComm, Op: OpSend, Index: 0, Kind: FaultDrop})
	start := time.Now()
	_, err := runBounded(t, 30*time.Second, 2, RunOpts{Faults: fp, Watchdog: 10 * time.Second}, func(c *Comm) error {
		for round := 0; round < 2; round++ {
			if err := exchange(c, PhaseFFTComm, round); err != nil {
				return err
			}
		}
		return nil
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want CommError for sequence gap, got %v", err)
	}
	if !strings.Contains(ce.Detail, "sequence gap") {
		t.Errorf("want sequence-gap detail, got %q", ce.Detail)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("gap detection took %v — it fell back to the watchdog instead of the sequence check", el)
	}
}

func TestFaultDuplicateTolerated(t *testing.T) {
	fp := NewFaultPlan(9).Add(FaultSite{Rank: 1, Phase: PhaseFFTComm, Op: OpSend, Index: 0, Kind: FaultDuplicate})
	stats, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp}, func(c *Comm) error {
		for round := 0; round < 3; round++ {
			if err := exchange(c, PhaseFFTComm, round); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("duplicate should be absorbed, got %v", err)
	}
	var dropped int64
	for _, s := range stats {
		dropped += s.DupsDropped
	}
	if dropped != 1 {
		t.Errorf("DupsDropped = %d, want 1", dropped)
	}
}

func TestFaultDelayTolerated(t *testing.T) {
	fp := NewFaultPlan(5)
	fp.Delay = time.Millisecond
	fp.Add(FaultSite{Rank: 0, Phase: PhaseFFTComm, Op: OpCollective, Index: 1, Kind: FaultDelay})
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp}, func(c *Comm) error {
		for round := 0; round < 3; round++ {
			if err := exchange(c, PhaseFFTComm, round); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("delay should be harmless, got %v", err)
	}
	if n := len(fp.Injected()); n != 1 {
		t.Errorf("injected = %d sites, want 1", n)
	}
}

func TestFaultStallCollectiveAborts(t *testing.T) {
	fp := NewFaultPlan(11).Add(FaultSite{Rank: 3, Phase: PhaseFFTComm, Op: OpCollective, Index: 0, Kind: FaultStall})
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{Faults: fp, Watchdog: 150 * time.Millisecond}, func(c *Comm) error {
		return exchange(c, PhaseFFTComm, 0)
	})
	var ce *CommError
	if !errors.As(err, &ce) {
		t.Fatalf("want CommError when a rank stalls a collective, got %v", err)
	}
}

// TestFaultPlanSizeOneComm exercises every fault kind on a size-1 world:
// there are no point-to-point messages, so payload sites never fire, a
// stall expires on its own, and the run must complete with the exact
// answer.
func TestFaultPlanSizeOneComm(t *testing.T) {
	fp := NewFaultPlan(13)
	fp.MaxStall = 50 * time.Millisecond
	for i, kind := range []FaultKind{FaultDelay, FaultDrop, FaultDuplicate, FaultBitFlip, FaultTruncate, FaultStall} {
		fp.Add(FaultSite{Rank: 0, Phase: PhaseFFTComm, Op: OpCollective, Index: int64(i), Kind: kind})
		fp.Add(FaultSite{Rank: 0, Phase: PhaseFFTComm, Op: OpSend, Index: int64(i), Kind: kind})
	}
	_, err := runBounded(t, 30*time.Second, 1, RunOpts{Faults: fp, Watchdog: 100 * time.Millisecond}, func(c *Comm) error {
		old := c.SetPhase(PhaseFFTComm)
		defer c.SetPhase(old)
		for round := 0; round < 8; round++ {
			recv := c.AlltoallvFloat64([][]float64{{1, 2, float64(round)}})
			if len(recv) != 1 || recv[0][2] != float64(round) {
				return fmt.Errorf("round %d: got %v", round, recv)
			}
			if s := c.AllreduceSum(3.5); s != 3.5 {
				return fmt.Errorf("allreduce got %v", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("size-1 world under a fault plan must complete, got %v", err)
	}
}

// TestZeroCountAlltoallv sends zero-length payloads with validation on:
// empty slices must pass length/checksum validation and payload faults on
// them must not fire or corrupt anything.
func TestZeroCountAlltoallv(t *testing.T) {
	fp := NewFaultPlan(17).
		Add(FaultSite{Rank: 0, Phase: PhaseOther, Op: OpSend, Index: 0, Kind: FaultBitFlip}).
		Add(FaultSite{Rank: 1, Phase: PhaseOther, Op: OpSend, Index: 0, Kind: FaultTruncate})
	for _, p := range []int{1, 2, 4} {
		_, err := runBounded(t, 30*time.Second, p, RunOpts{Faults: fp}, func(c *Comm) error {
			send := make([][]float64, c.Size())
			for d := range send {
				send[d] = []float64{}
			}
			recv := c.AlltoallvFloat64(send)
			for src, got := range recv {
				if len(got) != 0 {
					return fmt.Errorf("from %d: got %v, want empty", src, got)
				}
			}
			sendC := make([][]complex128, c.Size())
			recvC := c.AlltoallvComplex(sendC)
			for src, got := range recvC {
				if len(got) != 0 {
					return fmt.Errorf("complex from %d: got %v, want empty", src, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: zero-count alltoallv under faults: %v", p, err)
		}
	}
}

// TestSplitCommsUnderFaultPlan runs collectives concurrently on row/col
// split communicators of several worlds with an active (delay-only) fault
// plan; meant for -race coverage of the plan, envelope, and dedup
// bookkeeping.
func TestSplitCommsUnderFaultPlan(t *testing.T) {
	worlds := 3
	if testing.Short() {
		worlds = 2
	}
	var wg sync.WaitGroup
	for w := 0; w < worlds; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fp := NewFaultPlan(int64(w + 1))
			fp.Delay = time.Millisecond
			fp.Add(FaultSite{Rank: 1, Phase: PhaseFFTComm, Op: OpCollective, Index: 0, Kind: FaultDelay})
			fp.Add(FaultSite{Rank: 2, Phase: PhaseFFTComm, Op: OpSend, Index: 2, Kind: FaultDuplicate})
			_, err := runBounded(t, 60*time.Second, 4, RunOpts{Faults: fp}, func(c *Comm) error {
				row := c.Split(c.Rank()/2, c.Rank())
				col := c.Split(c.Rank()%2, c.Rank())
				for round := 0; round < 4; round++ {
					if err := exchange(c, PhaseFFTComm, round); err != nil {
						return err
					}
					if err := exchange(row, PhaseFFTComm, round); err != nil {
						return fmt.Errorf("row: %w", err)
					}
					if err := exchange(col, PhaseInterpComm, round); err != nil {
						return fmt.Errorf("col: %w", err)
					}
					if s := col.AllreduceSum(1); s != float64(col.Size()) {
						return fmt.Errorf("col allreduce got %v", s)
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("world %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
}

// TestPanicAbortsWorld pins the zero-hang property for unplanned panics: a
// rank that dies mid-collective must wake its peers (previously this
// deadlocked Run forever, with or without validation).
func TestPanicAbortsWorld(t *testing.T) {
	for _, opts := range []RunOpts{{}, {Validate: true}} {
		_, err := runBounded(t, 30*time.Second, 4, opts, func(c *Comm) error {
			if c.Rank() == 2 {
				panic("rank 2 dies")
			}
			// Peers block waiting for rank 2's contribution.
			return exchange(c, PhaseOther, 0)
		})
		if err == nil || !strings.Contains(err.Error(), "rank 2 dies") {
			t.Fatalf("opts=%+v: want propagated panic, got %v", opts, err)
		}
	}
}

// TestErrorReturnAbortsWorld pins the same property for plain error
// returns: peers blocked on the failed rank's messages unwind.
func TestErrorReturnAbortsWorld(t *testing.T) {
	boom := errors.New("rank 1 gives up")
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{}, func(c *Comm) error {
		if c.Rank() == 1 {
			return boom
		}
		return exchange(c, PhaseOther, 0)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want rank 1's error, got %v", err)
	}
}

// TestRaiseTyped verifies Raise unwinds with an errors.As-able error and
// aborts peers blocked in receives.
func TestRaiseTyped(t *testing.T) {
	_, err := runBounded(t, 30*time.Second, 4, RunOpts{}, func(c *Comm) error {
		if c.Rank() == 3 {
			Raise(&CommError{Rank: c.WorldRank(), Phase: PhaseInterpComm, Op: "interp", Detail: "synthetic"})
		}
		return exchange(c, PhaseOther, 0)
	})
	var ce *CommError
	if !errors.As(err, &ce) || ce.Detail != "synthetic" {
		t.Fatalf("want raised CommError, got %v", err)
	}
}

func TestParseFaultSpec(t *testing.T) {
	fp, err := ParseFaultSpec("seed=42;delay-ms=5;site=1:fft-comm:send:17:bitflip;site=0:interp-comm:coll:3:stall")
	if err != nil {
		t.Fatal(err)
	}
	if fp.Seed != 42 || fp.Delay != 5*time.Millisecond || fp.Sites() != 2 {
		t.Fatalf("parsed plan %+v, want seed 42, 5ms, 2 sites", fp)
	}
	if k := fp.lookup(1, PhaseFFTComm, OpSend, 17); k != FaultBitFlip {
		t.Errorf("site 1 lookup = %v", k)
	}
	if k := fp.lookup(0, PhaseInterpComm, OpCollective, 3); k != FaultStall {
		t.Errorf("site 2 lookup = %v", k)
	}
	for _, bad := range []string{
		"site=1:fft-comm:send:17", "site=x:fft-comm:send:0:delay", "site=1:warp:send:0:delay",
		"site=1:fft-comm:push:0:delay", "site=1:fft-comm:send:0:explode", "seed=abc", "nonsense",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q should fail to parse", bad)
		}
	}
	// Round-trip through FaultSite.String.
	site := FaultSite{Rank: 1, Phase: PhaseFFTComm, Op: OpSend, Index: 17, Kind: FaultBitFlip}
	if got, err := parseSite(site.String()); err != nil || got != site {
		t.Errorf("roundtrip %q -> %+v, %v", site.String(), got, err)
	}
}

// TestValidationCleanOverhead runs a validated world with no faults: the
// envelopes must be invisible (exact results, no dups dropped, no errors).
func TestValidationCleanOverhead(t *testing.T) {
	stats, err := runBounded(t, 30*time.Second, 4, RunOpts{Validate: true, Watchdog: 5 * time.Second}, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			if err := exchange(c, PhaseFFTComm, round); err != nil {
				return err
			}
			if s := c.AllreduceSum(float64(c.Rank())); s != 6 {
				return fmt.Errorf("allreduce got %v", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.DupsDropped != 0 {
			t.Errorf("rank %d: DupsDropped = %d", r, s.DupsDropped)
		}
	}
}

// TestAbortWakesBlockedReceiverNoWatchdog: a rank failure must wake a
// peer blocked in Recv even when no watchdog ticker exists to
// re-broadcast (plain Run, no FaultPlan). Regression: abort() used to
// broadcast without holding the mailbox mutex, so the wakeup could land
// between a receiver's aborted() check and its cond.Wait and be lost
// forever. The loop stresses that window; runBounded converts a lost
// wakeup into a test failure instead of a hang.
func TestAbortWakesBlockedReceiverNoWatchdog(t *testing.T) {
	for i := 0; i < 100; i++ {
		_, err := runBounded(t, 30*time.Second, 2, RunOpts{}, func(c *Comm) error {
			if c.Rank() == 0 {
				return fmt.Errorf("boom")
			}
			c.Recv(0, 7)
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("iteration %d: want the rank-0 error, got %v", i, err)
		}
	}
}
