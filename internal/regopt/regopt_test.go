package regopt

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// setup builds a small synthetic problem: the reference is the template
// advected by a known velocity, as in §IV-A1 of the paper.
func setup(t *testing.T, g grid.Grid, p int, opt Options, fn func(pr *Problem) error) {
	t.Helper()
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := field.NewScalar(pe)
		rhoT.SetFunc(func(x1, x2, x3 float64) float64 {
			s1, s2, s3 := math.Sin(x1), math.Sin(x2), math.Sin(x3)
			return (s1*s1 + s2*s2 + s3*s3) / 3
		})
		vStar := field.NewVector(pe)
		vStar.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.5 * math.Cos(x1) * math.Sin(x2),
				0.5 * math.Cos(x2) * math.Sin(x1),
				0.5 * math.Cos(x1) * math.Sin(x3)
		})
		prTmp, err := New(ops, rhoT, rhoT, opt)
		if err != nil {
			return err
		}
		ctx := prTmp.TS.NewContext(vStar, false)
		rhoR := field.NewScalar(pe)
		copy(rhoR.Data, prTmp.TS.State(ctx, rhoT)[opt.Nt])
		pr, err := New(ops, rhoT, rhoR, opt)
		if err != nil {
			return err
		}
		return fn(pr)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func testVelocity(pe *grid.Pencil) *field.Vector {
	v := field.NewVector(pe)
	v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return 0.2 * math.Sin(x2) * math.Cos(x3),
			-0.15 * math.Cos(x1),
			0.1 * math.Sin(x1+x2)
	})
	return v
}

func testDirection(pe *grid.Pencil) *field.Vector {
	w := field.NewVector(pe)
	w.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return 0.3 * math.Cos(x2+x3), 0.2 * math.Sin(x3), -0.25 * math.Cos(x1) * math.Sin(x2)
	})
	return w
}

func TestNewValidatesOptions(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		ops := spectral.New(pfft.NewPlan(pe))
		s := field.NewScalar(pe)
		if _, err := New(ops, s, s, Options{Beta: 0, Nt: 4}); err == nil {
			t.Error("beta = 0 accepted")
		}
		if _, err := New(ops, s, s, Options{Beta: 1, Nt: 0}); err == nil {
			t.Error("nt = 0 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveZeroWhenImagesEqual(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		ops := spectral.New(pfft.NewPlan(pe))
		img := field.NewScalar(pe)
		img.SetFunc(func(x1, _, _ float64) float64 { return math.Sin(x1) })
		pr, _ := New(ops, img, img, DefaultOptions())
		v := field.NewVector(pe) // zero velocity
		e := pr.Evaluate(v)
		if e.Misfit > 1e-20 || e.RegE > 1e-20 {
			t.Errorf("J should vanish: misfit %g reg %g", e.Misfit, e.RegE)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	// The single most load-bearing test of the optimal control machinery:
	// <g, w> must match the central finite difference of J along w, up to
	// the optimize-then-discretize consistency error.
	g := grid.MustNew(16, 16, 16)
	for _, opt := range []Options{
		{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: true},
		{Beta: 1e-1, Reg: RegH1, Nt: 4, GaussNewton: true},
	} {
		setup(t, g, 1, opt, func(pr *Problem) error {
			v := testVelocity(pr.Pe)
			w := testDirection(pr.Pe)
			e := pr.EvalGradient(v)
			gw := e.G.Dot(w)

			eps := 1e-5
			vp := v.Clone()
			vp.Axpy(eps, w)
			vm := v.Clone()
			vm.Axpy(-eps, w)
			jp := pr.Evaluate(vp).J
			jm := pr.Evaluate(vm).J
			fd := (jp - jm) / (2 * eps)
			rel := math.Abs(gw-fd) / (math.Abs(fd) + 1e-12)
			// 16^3 with nt=4 carries ~3% optimize-then-discretize
			// consistency error; TestGradFDConvergence (probe_test.go)
			// verifies the error vanishes under refinement.
			if rel > 0.05 {
				t.Errorf("%v: <g,w> = %g, FD = %g, rel err %g", opt.Reg, gw, fd, rel)
			}
			return nil
		})
	}
}

func TestGradientIncompressibleIsDivergenceFree(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	opt := Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: true, Incompressible: true}
	setup(t, g, 2, opt, func(pr *Problem) error {
		v := pr.Ops.Leray(testVelocity(pr.Pe))
		e := pr.EvalGradient(v)
		// beta*A*v of a div-free v is div-free, and the data term carries
		// the explicit projection, so g must be solenoidal.
		if m := pr.Ops.Div(e.G).MaxAbs(); m > 1e-9 {
			t.Errorf("div(g) = %g", m)
		}
		h := pr.HessMatVec(e, pr.Ops.Leray(testDirection(pr.Pe)))
		if m := pr.Ops.Div(h).MaxAbs(); m > 1e-9 {
			t.Errorf("div(Hw) = %g", m)
		}
		return nil
	})
}

func TestHessianSymmetry(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		e := pr.EvalGradient(v)
		w1 := testDirection(pr.Pe)
		w2 := field.NewVector(pr.Pe)
		w2.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Sin(2*x3), 0.3 * math.Cos(x1+x2), 0.1 * math.Sin(x2)
		})
		a := pr.HessMatVec(e, w1).Dot(w2)
		b := pr.HessMatVec(e, w2).Dot(w1)
		rel := math.Abs(a-b) / (math.Abs(a) + math.Abs(b) + 1e-12)
		// The discretized GN Hessian is symmetric up to the consistency
		// error of the semi-Lagrangian adjoints.
		if rel > 0.05 {
			t.Errorf("<Hw1,w2> = %g, <Hw2,w1> = %g, rel %g", a, b, rel)
		}
		return nil
	})
}

func TestHessianPositiveDefiniteDirection(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		e := pr.EvalGradient(v)
		for i, w := range []*field.Vector{testDirection(pr.Pe), testVelocity(pr.Pe)} {
			if q := pr.HessMatVec(e, w).Dot(w); q <= 0 {
				t.Errorf("direction %d: <Hw,w> = %g, want > 0", i, q)
			}
		}
		return nil
	})
}

func TestHessMatVecMatchesGradientDifference(t *testing.T) {
	// H(v) w ~ (g(v + eps w) - g(v - eps w)) / (2 eps) for Gauss-Newton at
	// small residual; here we use the full Newton matvec so the identity
	// holds at any residual.
	g := grid.MustNew(16, 16, 16)
	opt := Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: false}
	setup(t, g, 1, opt, func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		w := testDirection(pr.Pe)
		e := pr.EvalGradient(v)
		hw := pr.HessMatVec(e, w)

		eps := 1e-4
		vp := v.Clone()
		vp.Axpy(eps, w)
		vm := v.Clone()
		vm.Axpy(-eps, w)
		gp := pr.EvalGradient(vp).G
		gm := pr.EvalGradient(vm).G
		fd := gp.Clone()
		fd.Axpy(-1, gm)
		fd.Scale(1 / (2 * eps))

		diff := hw.Clone()
		diff.Axpy(-1, fd)
		rel := diff.NormL2() / (fd.NormL2() + 1e-12)
		if rel > 0.05 {
			t.Errorf("||Hw - FD(g)|| / ||FD|| = %g", rel)
		}
		return nil
	})
}

func TestPreconditionerRoundTrip(t *testing.T) {
	// beta*A applied to ApplyPrec(r) must reproduce r on every nonzero
	// mode (the zero mode is handled by the 1/beta fallback, so remove the
	// mean from the test field first).
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		r := testDirection(pr.Pe)
		for d := 0; d < 3; d++ {
			mean := r.C[d].Mean()
			for i := range r.C[d].Data {
				r.C[d].Data[i] -= mean
			}
		}
		mr := pr.ApplyPrec(r)
		back := pr.regApply(mr)
		back.Scale(pr.Opt.Beta)
		diff := back.Clone()
		diff.Axpy(-1, r)
		if rel := diff.NormL2() / r.NormL2(); rel > 1e-9 {
			t.Errorf("preconditioner roundtrip error %g", rel)
		}
		return nil
	})
}

func TestDistributedGradientMatchesSerial(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	var ref []float64
	opt := DefaultOptions()
	setup(t, g, 1, opt, func(pr *Problem) error {
		e := pr.EvalGradient(testVelocity(pr.Pe))
		ref = make([]float64, 3*g.Total())
		for d := 0; d < 3; d++ {
			copy(ref[d*g.Total():], e.G.C[d].Data)
		}
		return nil
	})
	setup(t, g, 4, opt, func(pr *Problem) error {
		e := pr.EvalGradient(testVelocity(pr.Pe))
		n := g.N
		pr.Pe.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((pr.Pe.Lo[0]+i1)*n[1]+(pr.Pe.Lo[1]+i2))*n[2] + pr.Pe.Lo[2] + i3
			for d := 0; d < 3; d++ {
				if math.Abs(e.G.C[d].Data[idx]-ref[d*g.Total()+gidx]) > 1e-9 {
					t.Errorf("gradient differs at %d dim %d", gidx, d)
				}
			}
		})
		return nil
	})
}

func TestCountersIncrement(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		e := pr.EvalGradient(v)
		pr.HessMatVec(e, testDirection(pr.Pe))
		if pr.StateSolves != 1 || pr.AdjointSolves != 1 || pr.Matvecs != 1 {
			t.Errorf("counters: %d %d %d", pr.StateSolves, pr.AdjointSolves, pr.Matvecs)
		}
		return nil
	})
}

func TestDivPenaltyGradientMatchesFiniteDifference(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	opt := Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: true, DivPenalty: 0.5}
	setup(t, g, 1, opt, func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		w := testDirection(pr.Pe)
		e := pr.EvalGradient(v)
		gw := e.G.Dot(w)
		eps := 1e-5
		vp := v.Clone()
		vp.Axpy(eps, w)
		vm := v.Clone()
		vm.Axpy(-eps, w)
		fd := (pr.Evaluate(vp).J - pr.Evaluate(vm).J) / (2 * eps)
		if rel := math.Abs(gw-fd) / (math.Abs(fd) + 1e-12); rel > 0.05 {
			t.Errorf("penalized gradient vs FD: %g vs %g (rel %g)", gw, fd, rel)
		}
		return nil
	})
}

func TestDivPenaltyIgnoredWhenIncompressible(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	optHard := Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: true, Incompressible: true}
	optBoth := optHard
	optBoth.DivPenalty = 10
	var jHard, jBoth float64
	setup(t, g, 1, optHard, func(pr *Problem) error {
		jHard = pr.Evaluate(pr.Ops.Leray(testVelocity(pr.Pe))).J
		return nil
	})
	setup(t, g, 1, optBoth, func(pr *Problem) error {
		jBoth = pr.Evaluate(pr.Ops.Leray(testVelocity(pr.Pe))).J
		return nil
	})
	if jHard != jBoth {
		t.Errorf("penalty should be inert under the hard constraint: %g vs %g", jHard, jBoth)
	}
}

func TestShiftedPreconditionerReducesBetaSensitivity(t *testing.T) {
	// The shifted preconditioner must need no more PCG iterations than the
	// paper's inverse-regularization one at small beta (Table V regime),
	// and typically far fewer.
	g := grid.MustNew(16, 16, 16)
	iters := map[bool]int{}
	for _, shifted := range []bool{false, true} {
		opt := DefaultOptions()
		opt.Beta = 1e-4
		opt.ShiftedPrec = shifted
		setup(t, g, 1, opt, func(pr *Problem) error {
			e := pr.EvalGradient(field.NewVector(pr.Pe))
			rhs := e.G.Clone()
			rhs.Scale(-1)
			_, cg := optim.PCG(
				func(w *field.Vector) *field.Vector { return pr.HessMatVec(e, w) },
				func(w *field.Vector) *field.Vector { return pr.ApplyPrec(w) },
				rhs, 1e-3, 1000,
			)
			iters[shifted] = cg.Iters
			return nil
		})
	}
	if iters[true] > iters[false] {
		t.Errorf("shifted prec worse: %d vs %d iterations", iters[true], iters[false])
	}
	t.Logf("PCG iterations at beta=1e-4: inverse-reg %d, shifted %d", iters[false], iters[true])
}
