package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(j) * float64(k) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 8, 12, 16, 30, 31, 32, 64, 100, 300} {
		x := randComplex(n, rng)
		p := NewPlan(n)
		got := make([]complex128, n)
		p.Forward(x, got)
		want := naiveDFT(x, false)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: forward mismatch %g", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 7, 8, 16, 30, 300} {
		x := randComplex(n, rng)
		p := NewPlan(n)
		got := make([]complex128, n)
		p.Inverse(x, got)
		want := naiveDFT(x, true)
		if d := maxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse mismatch %g", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 6, 9, 16, 27, 64, 128, 300, 301} {
		x := randComplex(n, rng)
		p := NewPlan(n)
		f := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(x, f)
		p.Inverse(f, back)
		if d := maxAbsDiff(x, back); d > 1e-8 {
			t.Errorf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|^2 == (1/n) sum |X|^2 for the unnormalized forward
	// transform. Checked with testing/quick over random signals.
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%62
		r := rand.New(rand.NewSource(seed))
		x := randComplex(n, r)
		p := NewPlan(n)
		X := make([]complex128, n)
		p.Forward(x, X)
		var e1, e2 float64
		for i := 0; i < n; i++ {
			e1 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			e2 += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		e2 /= float64(n)
		return math.Abs(e1-e2) <= 1e-8*(1+e1)
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 24 // mixed radix (Bluestein path)
		x := randComplex(n, r)
		y := randComplex(n, r)
		a := complex(r.NormFloat64(), r.NormFloat64())
		p := NewPlan(n)
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		fz := make([]complex128, n)
		z := make([]complex128, n)
		for i := range z {
			z[i] = a*x[i] + y[i]
		}
		p.Forward(x, fx)
		p.Forward(y, fy)
		p.Forward(z, fz)
		for i := range z {
			if cmplx.Abs(fz[i]-(a*fx[i]+fy[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForwardRealMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 8, 10, 15, 300} {
		x := make([]float64, n)
		xc := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			xc[i] = complex(x[i], 0)
		}
		p := NewPlan(n)
		full := make([]complex128, n)
		p.Forward(xc, full)
		half := make([]complex128, HalfLen(n))
		p.ForwardReal(x, half)
		if d := maxAbsDiff(half, full[:HalfLen(n)]); d > 1e-9*float64(n) {
			t.Errorf("n=%d: r2c mismatch %g", n, d)
		}
		back := make([]float64, n)
		p.InverseReal(half, back)
		for i := range back {
			if math.Abs(back[i]-x[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: c2r roundtrip error at %d: %g vs %g", n, i, back[i], x[i])
			}
		}
	}
}

func TestKnownTransforms(t *testing.T) {
	// A pure cosine cos(2*pi*k0*j/n) has spectrum n/2 at bins k0 and n-k0.
	n, k0 := 32, 5
	x := make([]float64, n)
	for j := range x {
		x[j] = math.Cos(2 * math.Pi * float64(k0) * float64(j) / float64(n))
	}
	p := NewPlan(n)
	half := make([]complex128, HalfLen(n))
	p.ForwardReal(x, half)
	for k := 0; k < HalfLen(n); k++ {
		want := 0.0
		if k == k0 {
			want = float64(n) / 2
		}
		if math.Abs(real(half[k])-want) > 1e-9 || math.Abs(imag(half[k])) > 1e-9 {
			t.Errorf("bin %d: got %v want %g", k, half[k], want)
		}
	}
}

func TestForward3RealRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, dims := range [][3]int{{4, 4, 4}, {8, 6, 4}, {4, 10, 8}, {8, 12, 6}} {
		n1, n2, n3 := dims[0], dims[1], dims[2]
		x := make([]float64, n1*n2*n3)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		spec := Forward3Real(x, n1, n2, n3)
		back := Inverse3Real(spec, n1, n2, n3)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-9 {
				t.Fatalf("dims %v: 3D roundtrip error at %d", dims, i)
			}
		}
	}
}

func TestForward3RealDC(t *testing.T) {
	// The DC bin must equal the sum of all samples.
	n1, n2, n3 := 4, 6, 8
	x := make([]float64, n1*n2*n3)
	sum := 0.0
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = rng.Float64()
		sum += x[i]
	}
	spec := Forward3Real(x, n1, n2, n3)
	if math.Abs(real(spec[0])-sum) > 1e-9 {
		t.Errorf("DC bin %g want %g", real(spec[0]), sum)
	}
}

func BenchmarkForward1D(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			p := NewPlan(n)
			x := randComplex(n, rand.New(rand.NewSource(1)))
			dst := make([]complex128, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(x, dst)
			}
		})
	}
}

func sizeName(n int) string {
	return "n" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
