package fft

import "diffreg/internal/par"

// Real-to-complex helpers. A real input line of length n transforms to
// n/2+1 complex coefficients (the Hermitian-redundant half is dropped),
// matching the layout of FFTW/AccFFT r2c transforms that the paper's
// spectral discretization relies on.

// HalfLen returns the number of retained complex coefficients for a real
// transform of length n.
func HalfLen(n int) int { return n/2 + 1 }

// RealWorkLen returns the scratch length (complex values) the real *Work
// transform variants require: the two full complex lines plus the complex
// kernel's own scratch.
func (p *Plan) RealWorkLen() int { return 2*p.n + p.WorkLen() }

// ForwardReal computes the unnormalized r2c DFT of src (length n) into dst
// (length n/2+1).
func (p *Plan) ForwardReal(src []float64, dst []complex128) {
	// Straightforward full complex transform of the real data. This wastes
	// a factor of two over a split-radix real kernel but keeps the code
	// simple; the distributed transposes dominate at scale anyway.
	p.ForwardRealWork(src, dst, make([]complex128, p.RealWorkLen()))
}

// ForwardRealWork is ForwardReal with caller-provided scratch of length
// >= RealWorkLen(); it performs no heap allocations.
func (p *Plan) ForwardRealWork(src []float64, dst, work []complex128) {
	n := p.n
	if len(src) != n || len(dst) != HalfLen(n) {
		panic("fft: r2c length mismatch")
	}
	a := work[:n]
	b := work[n : 2*n]
	for i, v := range src {
		a[i] = complex(v, 0)
	}
	p.ForwardWork(a, b, work[2*n:])
	copy(dst, b[:HalfLen(n)])
}

// InverseReal computes the normalized c2r inverse DFT: src holds the n/2+1
// non-redundant coefficients of a Hermitian spectrum; dst receives the real
// signal of length n.
func (p *Plan) InverseReal(src []complex128, dst []float64) {
	p.InverseRealWork(src, dst, make([]complex128, p.RealWorkLen()))
}

// InverseRealWork is InverseReal with caller-provided scratch of length
// >= RealWorkLen(); it performs no heap allocations.
func (p *Plan) InverseRealWork(src []complex128, dst []float64, work []complex128) {
	n := p.n
	if len(src) != HalfLen(n) || len(dst) != n {
		panic("fft: c2r length mismatch")
	}
	a := work[:n]
	b := work[n : 2*n]
	copy(a, src)
	for k := HalfLen(n); k < n; k++ {
		a[k] = complexConj(src[n-k])
	}
	p.InverseWork(a, b, work[2*n:])
	for i := range dst {
		dst[i] = real(b[i])
	}
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Forward3Real computes the full 3D r2c transform of a real array with
// dimensions n1 x n2 x n3 (row-major, dim 2 fastest) into a complex array
// of dimensions n1 x n2 x (n3/2+1). It is the serial reference that the
// distributed transform in package pfft is validated against.
func Forward3Real(src []float64, n1, n2, n3 int) []complex128 {
	m3 := HalfLen(n3)
	out := make([]complex128, n1*n2*m3)
	p3 := NewPlan(n3)
	// r2c along dim 2, batches of lines on the worker pool.
	par.Chunked(n1*n2, lineGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p3.ForwardReal(src[i*n3:(i+1)*n3], out[i*m3:(i+1)*m3])
		}
	})
	transformAxis(out, n1, n2, m3, 1, false)
	transformAxis(out, n1, n2, m3, 0, false)
	return out
}

// Inverse3Real inverts Forward3Real, returning the real array.
func Inverse3Real(src []complex128, n1, n2, n3 int) []float64 {
	m3 := HalfLen(n3)
	buf := make([]complex128, len(src))
	copy(buf, src)
	transformAxis(buf, n1, n2, m3, 0, true)
	transformAxis(buf, n1, n2, m3, 1, true)
	out := make([]float64, n1*n2*n3)
	p3 := NewPlan(n3)
	par.Chunked(n1*n2, lineGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p3.InverseReal(buf[i*m3:(i+1)*m3], out[i*n3:(i+1)*n3])
		}
	})
	return out
}

// transformAxis applies the 1D (inverse) DFT along axis 0 or 1 of a complex
// array with dimensions n1 x n2 x m3. Lines are independent and run in
// batches on the worker pool with per-chunk scratch.
func transformAxis(a []complex128, n1, n2, m3, axis int, inverse bool) {
	var length, stride, count int
	switch axis {
	case 0:
		length, stride = n1, n2*m3
		count = n2 * m3
	case 1:
		length, stride = n2, m3
		count = n1 * m3
	default:
		panic("fft: bad axis")
	}
	p := NewPlan(length)
	par.Chunked(count, lineGrain, func(lo, hi int) {
		line := make([]complex128, length)
		res := make([]complex128, length)
		for c := lo; c < hi; c++ {
			var base int
			if axis == 0 {
				base = c
			} else {
				// c enumerates (i1, i3) pairs.
				i1, i3 := c/m3, c%m3
				base = i1*n2*m3 + i3
			}
			for j := 0; j < length; j++ {
				line[j] = a[base+j*stride]
			}
			if inverse {
				p.Inverse(line, res)
			} else {
				p.Forward(line, res)
			}
			for j := 0; j < length; j++ {
				a[base+j*stride] = res[j]
			}
		}
	})
}

// lineGrain is the pool chunk granularity for per-line transforms.
const lineGrain = 8
