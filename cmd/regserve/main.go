// Command regserve runs the registration job server: an HTTP/JSON daemon
// that accepts registration jobs, executes them through the distributed
// solver on a bounded worker pool, caches FFT plans and operator
// workspaces across jobs, and streams per-iteration progress.
//
//	regserve -addr :8080 -workers 4 -queue 16 -cache 8 -timeout 10m
//
// With -max-batch N > 1 the server fuses queued same-shape jobs into one
// solver pass (see README, "Multi-job fusion"); -batch-window tunes how
// long a job waits for companions. -pprof ADDR serves net/http/pprof on a
// separate listener.
//
// Durability (see README, "Durability and retries"): -journal DIR enables
// the write-ahead job journal — kill the process, restart it with the
// same -journal, and every accepted-but-unfinished job re-runs. -retries
// N grants each job N total attempts; transient communication failures
// are retried with exponential backoff (-retry-backoff), resuming from a
// spooled checkpoint when the solve flavor supports it. -retain caps the
// terminal jobs kept queryable.
//
// Submit a job and watch it:
//
//	curl -s localhost:8080/jobs -d '{"generator":"synthetic","n":[32,32,32],"tasks":4}'
//	curl -s localhost:8080/jobs/job-000001/events
//	curl -s localhost:8080/jobs/job-000001
//
// See README.md ("Registration as a service") for the API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux; exposed only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"diffreg/internal/par"
	"diffreg/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "concurrent solver slots")
	queue := flag.Int("queue", 16, "queued-job admission cap (beyond it: HTTP 429)")
	cache := flag.Int("cache", 0, "plan-cache capacity in operator-set collections (0 = 2*workers, negative disables)")
	timeout := flag.Duration("timeout", 0, "default per-job cooperative timeout (0 = none)")
	pool := flag.Int("pool", 0, "shared-memory worker pool size (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 1, "fuse up to this many same-shape jobs into one solver pass (<= 1 disables fusion)")
	batchWindow := flag.Duration("batch-window", 25*time.Millisecond, "how long a fusable job waits for same-shape companions")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	journal := flag.String("journal", "", "write-ahead job journal directory (empty disables; restart with the same directory to recover)")
	spool := flag.String("spool", "", "checkpoint spool directory for retryable jobs (default JOURNAL/spool when -journal and -retries are on)")
	retries := flag.Int("retries", 1, "total attempts per job; > 1 retries transient comm failures with backoff")
	retryBackoff := flag.Duration("retry-backoff", 250*time.Millisecond, "backoff before the second attempt (doubles per attempt, capped at 30s)")
	retain := flag.Int("retain", 0, "terminal jobs kept queryable (0 = default 1024, negative = unlimited)")
	quiet := flag.Bool("q", false, "suppress per-job log lines")
	flag.Parse()

	if *pool > 0 {
		par.SetWorkers(*pool)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv, err := serve.Open(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWindow,
		JournalDir:     *journal,
		SpoolDir:       *spool,
		Retry:          serve.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff},
		Retain:         *retain,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "regserve: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprofAddr != "" {
		// Opt-in profiling on its own listener so the job API never
		// exposes pprof. The blank net/http/pprof import registers its
		// handlers on http.DefaultServeMux.
		go func() {
			log.Printf("regserve: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("regserve: pprof listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("regserve: %v: draining (in-flight jobs stop at the next iteration boundary)", s)
		// Close the job server FIRST: it finishes every job and wakes idle
		// event-stream watchers, so the HTTP drain below completes as soon
		// as in-flight solves reach an iteration boundary instead of
		// idling out the full deadline on open streams.
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	log.Printf("regserve: listening on %s (%d workers, queue %d, pool %d)", *addr, *workers, *queue, par.Workers())
	err = hs.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "regserve: %v\n", err)
		os.Exit(1)
	}
	srv.Close()
}
