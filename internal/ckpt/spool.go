package ckpt

// Checkpoint spooling for the serving layer: a retryable job runs with its
// CheckpointPath pointed into a per-server spool directory, so a failed
// attempt leaves behind the last good optimizer state and the next attempt
// resumes from it bit-identically instead of from scratch. The helpers
// here keep the path discipline and the cheap pre-Load validation in one
// place; full structural validation (CRC, payload plausibility) stays in
// Load.

import (
	"bytes"
	"os"
	"path/filepath"
)

// SpoolPath returns the checkpoint spool file for one job under dir. Job
// IDs are server-generated ("job-000042"), so the name is filesystem-safe
// by construction.
func SpoolPath(dir, jobID string) string {
	return filepath.Join(dir, jobID+".ckpt")
}

// EnsureSpoolDir creates the spool directory (and parents) if needed.
func EnsureSpoolDir(dir string) error {
	return os.MkdirAll(dir, 0o755)
}

// HasCheckpoint reports whether path holds something that looks like a
// resumable checkpoint: it exists, is large enough to frame a payload, and
// opens with the current magic and version. It deliberately does not read
// the whole file — Load does the CRC and payload validation — so callers
// can use it as a cheap "is a resume worth attempting" probe before wiring
// Resume into a solve.
func HasCheckpoint(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() < int64(len(magic)+4+8) {
		return false
	}
	hdr := make([]byte, len(magic)+4)
	if _, err := f.Read(hdr); err != nil {
		return false
	}
	if !bytes.Equal(hdr[:len(magic)], []byte(magic)) {
		return false
	}
	v := uint32(hdr[len(magic)]) | uint32(hdr[len(magic)+1])<<8 |
		uint32(hdr[len(magic)+2])<<16 | uint32(hdr[len(magic)+3])<<24
	return v == Version
}

// Reap removes a spool file, treating "already gone" as success: terminal
// jobs reap their spool exactly once, but crash/replay interleavings can
// race a reap against a restart that never wrote one.
func Reap(path string) error {
	err := os.Remove(path)
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}
