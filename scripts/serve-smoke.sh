#!/usr/bin/env bash
# serve-smoke.sh — CI smoke test for the regserve daemon.
#
# Leg 1: starts the daemon, submits one 32³ synthetic registration over
# HTTP, polls the job to completion, and asserts the final misfit is
# finite and below the initial misfit.
#
# Leg 2 (durability): starts a journaled daemon, SIGKILLs it while a job
# is running, restarts it with the same -journal directory, and asserts
# the job re-runs to a finite misfit with attempts > 1 — no accepted job
# is lost to the crash. Usage: scripts/serve-smoke.sh [regserve-binary]
set -euo pipefail

BIN=${1:-}
if [ -z "$BIN" ]; then
    go build -o /tmp/regserve ./cmd/regserve
    BIN=/tmp/regserve
fi
ADDR=127.0.0.1:7470
BASE=http://$ADDR

"$BIN" -addr "$ADDR" -workers 1 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true; kill -9 ${SERVE_PID2:-0} 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

code=$(curl -s -o job.json -w '%{http_code}' -X POST "$BASE/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"generator":"synthetic","n":[32,32,32],"tasks":2,"time_steps":2,"max_newton_iters":2}')
if [ "$code" != 202 ]; then
    echo "serve-smoke: POST /jobs returned $code" >&2
    cat job.json >&2
    exit 1
fi
id=$(jq -r .id job.json)

state=""
for _ in $(seq 1 300); do
    code=$(curl -s -o status.json -w '%{http_code}' "$BASE/jobs/$id")
    if [ "$code" != 200 ]; then
        echo "serve-smoke: GET /jobs/$id returned $code" >&2
        exit 1
    fi
    state=$(jq -r .state status.json)
    case "$state" in
    done) break ;;
    failed | canceled)
        echo "serve-smoke: job ended $state" >&2
        cat status.json >&2
        exit 1
        ;;
    esac
    sleep 1
done
if [ "$state" != done ]; then
    echo "serve-smoke: job did not finish in time" >&2
    cat status.json >&2
    exit 1
fi

jq -e '.result.misfit_final as $m
       | ($m | isnan or isinfinite | not)
       and $m >= 0 and $m < .result.misfit_init' status.json >/dev/null || {
    echo "serve-smoke: misfit check failed" >&2
    cat status.json >&2
    exit 1
}
echo "serve-smoke: ok (misfit $(jq -r .result.misfit_init status.json) -> $(jq -r .result.misfit_final status.json))"
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# ---- Leg 2: kill-and-restart durability -------------------------------
ADDR2=127.0.0.1:7471
BASE2=http://$ADDR2
JDIR=$(mktemp -d)

start_durable() {
    "$BIN" -addr "$ADDR2" -workers 1 -journal "$JDIR" -retries 2 &
    SERVE_PID2=$!
    for _ in $(seq 1 50); do
        curl -fsS "$BASE2/healthz" >/dev/null 2>&1 && break
        sleep 0.2
    done
    curl -fsS "$BASE2/healthz" >/dev/null
}
start_durable
curl -fsS "$BASE2/readyz" >/dev/null

code=$(curl -s -o job2.json -w '%{http_code}' -X POST "$BASE2/jobs" \
    -H 'Content-Type: application/json' \
    -H 'Idempotency-Key: smoke-durable-1' \
    -d '{"generator":"synthetic","n":[32,32,32],"tasks":2,"time_steps":2,"max_newton_iters":6,"grad_tol":1e-12}')
if [ "$code" != 202 ]; then
    echo "serve-smoke: durable POST /jobs returned $code" >&2
    cat job2.json >&2
    exit 1
fi
id2=$(jq -r .id job2.json)

# Wait for the job to start, then SIGKILL the daemon mid-solve.
for _ in $(seq 1 200); do
    state=$(curl -s "$BASE2/jobs/$id2" | jq -r .state)
    [ "$state" = running ] && break
    sleep 0.05
done
if [ "$state" != running ]; then
    echo "serve-smoke: durable job never started ($state)" >&2
    exit 1
fi
kill -9 "$SERVE_PID2"
wait "$SERVE_PID2" 2>/dev/null || true

# Restart with the same journal: the accepted job must replay and re-run.
start_durable
state=""
for _ in $(seq 1 300); do
    code=$(curl -s -o status2.json -w '%{http_code}' "$BASE2/jobs/$id2")
    if [ "$code" != 200 ]; then
        echo "serve-smoke: recovered job vanished (GET returned $code)" >&2
        exit 1
    fi
    state=$(jq -r .state status2.json)
    case "$state" in
    done) break ;;
    failed | canceled)
        echo "serve-smoke: recovered job ended $state" >&2
        cat status2.json >&2
        exit 1
        ;;
    esac
    sleep 1
done
if [ "$state" != done ]; then
    echo "serve-smoke: recovered job did not finish in time" >&2
    cat status2.json >&2
    exit 1
fi
jq -e '.result.misfit_final as $m
       | ($m | isnan or isinfinite | not)
       and $m >= 0 and $m < .result.misfit_init
       and .attempts > 1' status2.json >/dev/null || {
    echo "serve-smoke: recovered job misfit/attempts check failed" >&2
    cat status2.json >&2
    exit 1
}
# Idempotent re-POST of the pre-crash submission resolves to the same job.
dedup=$(curl -s -X POST "$BASE2/jobs" \
    -H 'Content-Type: application/json' \
    -H 'Idempotency-Key: smoke-durable-1' \
    -d '{"generator":"synthetic","n":[32,32,32],"tasks":2,"time_steps":2,"max_newton_iters":6,"grad_tol":1e-12}')
if [ "$(echo "$dedup" | jq -r .id)" != "$id2" ] || [ "$(echo "$dedup" | jq -r .deduped)" != true ]; then
    echo "serve-smoke: idempotency key did not survive the restart: $dedup" >&2
    exit 1
fi
# The /stats durability blocks must report the recovery.
curl -s "$BASE2/stats" | jq -e '.journal.enabled and .journal.recovered >= 1 and .retries.enabled' >/dev/null || {
    echo "serve-smoke: /stats journal/retries blocks missing or wrong" >&2
    curl -s "$BASE2/stats" >&2
    exit 1
}
kill "$SERVE_PID2" 2>/dev/null || true
wait "$SERVE_PID2" 2>/dev/null || true
echo "serve-smoke: durability ok (job $id2 survived SIGKILL: misfit $(jq -r .result.misfit_init status2.json) -> $(jq -r .result.misfit_final status2.json), attempts $(jq -r .attempts status2.json))"
