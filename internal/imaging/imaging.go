// Package imaging provides the image data used by the paper's experiments:
// the analytic synthetic template/velocity pair of §IV-A1, a deterministic
// multi-tissue brain phantom standing in for the NIREP MRI datasets (the
// originals are registration-gated; see DESIGN.md for the substitution
// rationale), image normalization and smoothing helpers, and simple volume
// output (MetaImage + PGM slices) for the figure reproductions.
package imaging

import (
	"math"
	"math/rand"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// SyntheticTemplate fills the paper's synthetic template image
// rho_T(x) = (sin^2 x1 + sin^2 x2 + sin^2 x3)/3.
func SyntheticTemplate(pe *grid.Pencil) *field.Scalar {
	s := field.NewScalar(pe)
	s.SetFunc(func(x1, x2, x3 float64) float64 {
		s1, s2, s3 := math.Sin(x1), math.Sin(x2), math.Sin(x3)
		return (s1*s1 + s2*s2 + s3*s3) / 3
	})
	return s
}

// SyntheticVelocity returns the paper's exact velocity
// v*(x) = (cos x1 sin x2, cos x2 sin x1, cos x1 sin x3).
func SyntheticVelocity(pe *grid.Pencil) *field.Vector {
	v := field.NewVector(pe)
	v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return math.Cos(x1) * math.Sin(x2),
			math.Cos(x2) * math.Sin(x1),
			math.Cos(x1) * math.Sin(x3)
	})
	return v
}

// SolenoidalVelocity returns a divergence-free analogue of the synthetic
// velocity ("for the incompressible case we use a similar but divergence
// free velocity field", §IV-A1): a Taylor-Green-like field with an exactly
// vanishing divergence.
func SolenoidalVelocity(pe *grid.Pencil) *field.Vector {
	v := field.NewVector(pe)
	v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return math.Sin(x1) * math.Cos(x2) * math.Cos(x3),
			-math.Cos(x1) * math.Sin(x2) * math.Cos(x3),
			0
	})
	return v
}

// MakeReference generates the reference image by solving the forward
// transport problem with the given exact velocity — how the paper builds
// its synthetic registration problems (Fig. 5).
func MakeReference(ops *spectral.Ops, rhoT *field.Scalar, v *field.Vector, nt int, solenoidal bool) *field.Scalar {
	ts := transport.NewSolver(ops, nt)
	ctx := ts.NewContext(v, solenoidal)
	out := field.NewScalar(ops.Pe)
	copy(out.Data, ts.State(ctx, rhoT)[nt])
	return out
}

// Normalize rescales the field to [0, 1] in place (constant fields map to
// zero). Medical images arrive with arbitrary intensity ranges; the solver
// works on normalized intensities.
func Normalize(s *field.Scalar) {
	lo, hi := s.Min(), s.Max()
	if hi-lo < 1e-300 {
		s.Fill(0)
		return
	}
	inv := 1 / (hi - lo)
	for i, v := range s.Data {
		s.Data[i] = (v - lo) * inv
	}
}

// brainSubject holds the smooth inter-subject warp parameters. Different
// seeds give anatomically plausible variations of the same phantom, like
// the multi-subject NIREP data the paper registers.
type brainSubject struct {
	amp          [3][4]float64
	phase        [3][4]float64
	freq         [3][4]int
	foldPhase    float64
	ventricleDx  float64
	corticalAmpl float64
}

func newBrainSubject(seed int64) brainSubject {
	rng := rand.New(rand.NewSource(seed))
	var s brainSubject
	for d := 0; d < 3; d++ {
		for k := 0; k < 4; k++ {
			s.amp[d][k] = 0.08 * (rng.Float64() - 0.5)
			s.phase[d][k] = 2 * math.Pi * rng.Float64()
			s.freq[d][k] = 1 + rng.Intn(3)
		}
	}
	s.foldPhase = 2 * math.Pi * rng.Float64()
	s.ventricleDx = 0.15 * (rng.Float64() - 0.5)
	s.corticalAmpl = 0.18 + 0.06*rng.Float64()
	return s
}

// smoothstep is a C1 ramp from 1 (t <= 0) to 0 (t >= w).
func smoothstep(t, w float64) float64 {
	if t <= 0 {
		return 1
	}
	if t >= w {
		return 0
	}
	u := t / w
	return 1 - u*u*(3-2*u)
}

// BrainPhantom fills a deterministic multi-tissue brain-like image for the
// given subject seed: an ellipsoidal head with a bright white-matter core,
// darker ventricles, and a folded cortical band, all warped by a smooth
// subject-specific deformation. Intensities lie in [0, 1].
func BrainPhantom(pe *grid.Pencil, subject int64) *field.Scalar {
	sub := newBrainSubject(subject)
	s := field.NewScalar(pe)
	s.SetFunc(func(x1, x2, x3 float64) float64 {
		return brainIntensity(&sub, x1, x2, x3)
	})
	return s
}

func brainIntensity(sub *brainSubject, x1, x2, x3 float64) float64 {
	// Subject-specific smooth warp of the evaluation point.
	x := [3]float64{x1, x2, x3}
	var w [3]float64
	for d := 0; d < 3; d++ {
		w[d] = x[d]
		for k := 0; k < 4; k++ {
			arg := float64(sub.freq[d][k])*x[(d+1)%3] + 2*float64(sub.freq[d][(k+1)%4])*x[(d+2)%3]
			w[d] += sub.amp[d][k] * math.Sin(arg+sub.phase[d][k])
		}
	}
	// Elliptic radius around the domain center.
	c := math.Pi
	dx := (w[0] - c) / 2.0
	dy := (w[1] - c) / 2.4
	dz := (w[2] - c) / 1.9
	r := math.Sqrt(dx*dx + dy*dy + dz*dz)

	// Head envelope.
	head := smoothstep(r-1.0, 0.25)
	if head == 0 {
		return 0
	}
	intensity := 0.35 * head

	// White matter core.
	intensity += 0.3 * smoothstep(r-0.55, 0.2)

	// Cortical folding band: angular modulation near the rim.
	theta := math.Atan2(dy, dx)
	phi := math.Atan2(dz, math.Sqrt(dx*dx+dy*dy))
	band := math.Exp(-((r - 0.85) * (r - 0.85)) / 0.02)
	folds := math.Sin(7*theta+sub.foldPhase) * math.Cos(5*phi+0.5*sub.foldPhase)
	intensity += sub.corticalAmpl * band * folds

	// Ventricles: two darker lobes beside the mid-plane.
	for _, side := range []float64{-1, 1} {
		vx := (w[0] - c - side*(0.35+sub.ventricleDx)) / 0.28
		vy := (w[1] - c + 0.1) / 0.55
		vz := (w[2] - c) / 0.3
		rv := math.Sqrt(vx*vx + vy*vy + vz*vz)
		intensity -= 0.3 * smoothstep(rv-1, 0.4)
	}
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return intensity
}

// PrepareImages applies the paper's preprocessing: normalize both images to
// [0, 1] and smooth them spectrally with a Gaussian of one grid cell
// bandwidth so the spectral differentiation is well behaved (§III-B1).
func PrepareImages(ops *spectral.Ops, imgs ...*field.Scalar) {
	for _, img := range imgs {
		Normalize(img)
		ops.SmoothGridScale(img)
	}
}

// Dice returns the Dice similarity coefficient of the level sets
// {a > threshold} and {b > threshold}: 2|A∩B| / (|A|+|B|), the standard
// overlap metric used to evaluate registration quality on label maps
// (e.g. in the NIREP evaluation protocol the paper's brain data comes
// from). 1 is perfect overlap; empty sets give 1 by convention.
func Dice(a, b *field.Scalar, threshold float64) float64 {
	var inter, sa, sb float64
	for i := range a.Data {
		av := a.Data[i] > threshold
		bv := b.Data[i] > threshold
		if av {
			sa++
		}
		if bv {
			sb++
		}
		if av && bv {
			inter++
		}
	}
	c := a.P.Comm
	inter = c.AllreduceSum(inter)
	sa = c.AllreduceSum(sa)
	sb = c.AllreduceSum(sb)
	if sa+sb == 0 {
		return 1
	}
	return 2 * inter / (sa + sb)
}
