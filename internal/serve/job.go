package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"diffreg"
	"diffreg/internal/prec"
)

// JobSpec is the JSON body of a job submission. Inputs are either a named
// deterministic generator (handy for smoke tests and benchmarks) or inline
// row-major volumes; solver knobs mirror diffreg.Config with zero values
// taking the library defaults.
type JobSpec struct {
	// Generator selects the input pair: "synthetic" (the paper's phantom
	// and its advected reference), "brain" (two brain-phantom subjects,
	// seeds SeedA/SeedB), or "" for inline Template/Reference volumes.
	Generator string    `json:"generator,omitempty"`
	N         [3]int    `json:"n"`
	SeedA     int64     `json:"seed_a,omitempty"`
	SeedB     int64     `json:"seed_b,omitempty"`
	Template  []float64 `json:"template,omitempty"`
	Reference []float64 `json:"reference,omitempty"`

	Tasks             int       `json:"tasks,omitempty"`
	Beta              float64   `json:"beta,omitempty"`
	Reg               string    `json:"reg,omitempty"` // "h1" | "h2" (default)
	Incompressible    bool      `json:"incompressible,omitempty"`
	DivPenalty        float64   `json:"div_penalty,omitempty"`
	Distance          string    `json:"distance,omitempty"`  // "l2" | "ncc"
	Precision         string    `json:"precision,omitempty"` // "float64" (default) | "float32"
	TimeSteps         int       `json:"time_steps,omitempty"`
	VelocityIntervals int       `json:"velocity_intervals,omitempty"`
	FullNewton        bool      `json:"full_newton,omitempty"`
	FirstOrder        bool      `json:"first_order,omitempty"`
	GradTol           float64   `json:"grad_tol,omitempty"`
	MaxNewtonIters    int       `json:"max_newton_iters,omitempty"`
	MaxKrylovIters    int       `json:"max_krylov_iters,omitempty"`
	ContinuationBetas []float64 `json:"continuation_betas,omitempty"`
	MultilevelLevels  int       `json:"multilevel_levels,omitempty"`
	TwoLevelPrec      bool      `json:"two_level_prec,omitempty"`
	Smooth            bool      `json:"smooth,omitempty"`
	Normalize         bool      `json:"normalize,omitempty"`
	Chaos             string    `json:"chaos,omitempty"`

	// IdempotencyKey deduplicates client-side retries of POST /jobs: two
	// submissions with the same non-empty key return the same job (the
	// second is not run). The HTTP handler also accepts the key via the
	// Idempotency-Key header, which takes precedence over the body field.
	// Keys survive server restarts through the job journal.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// TimeoutSec overrides the server's default per-job timeout; negative
	// disables the timeout for this job.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// NoCache opts this job out of the plan cache.
	NoCache bool `json:"no_cache,omitempty"`
	// ReturnFields includes the warped template and velocity components in
	// the result body (large: N^3 floats each).
	ReturnFields bool `json:"return_fields,omitempty"`
}

// maxTasks bounds the per-job rank count a client may request; ranks are
// goroutines, so this caps per-job goroutine fan-out, not machine size.
const maxTasks = 64

// Validate rejects malformed specs before they reach the queue.
func (s *JobSpec) Validate() error {
	for d := 0; d < 3; d++ {
		if s.N[d] < 4 {
			return fmt.Errorf("n[%d] = %d below the minimum grid size 4", d, s.N[d])
		}
	}
	total := s.N[0] * s.N[1] * s.N[2]
	switch s.Generator {
	case "synthetic", "brain":
		if len(s.Template) != 0 || len(s.Reference) != 0 {
			return fmt.Errorf("generator %q and inline volumes are mutually exclusive", s.Generator)
		}
	case "":
		if len(s.Template) != total || len(s.Reference) != total {
			return fmt.Errorf("inline volumes must both have n1*n2*n3 = %d samples (got %d and %d)",
				total, len(s.Template), len(s.Reference))
		}
	default:
		return fmt.Errorf("unknown generator %q (synthetic | brain | inline volumes)", s.Generator)
	}
	if s.Tasks < 0 || s.Tasks > maxTasks {
		return fmt.Errorf("tasks = %d outside [0, %d]", s.Tasks, maxTasks)
	}
	switch s.Reg {
	case "", "h1", "h2":
	default:
		return fmt.Errorf("unknown regularization %q (h1 | h2)", s.Reg)
	}
	switch s.Distance {
	case "", "l2", "L2", "ncc", "NCC":
	default:
		return fmt.Errorf("unknown distance %q (l2 | ncc)", s.Distance)
	}
	if _, err := prec.Parse(s.Precision); err != nil {
		return fmt.Errorf("unknown precision %q (float64 | float32)", s.Precision)
	}
	if s.Beta < 0 || s.GradTol < 0 || s.MaxNewtonIters < 0 || s.MaxKrylovIters < 0 || s.TimeSteps < 0 {
		return fmt.Errorf("solver knobs must be non-negative")
	}
	return nil
}

// volumes materializes the input pair.
func (s *JobSpec) volumes() (template, reference diffreg.Volume, err error) {
	switch s.Generator {
	case "synthetic":
		nt := s.TimeSteps
		if nt == 0 {
			nt = 4
		}
		return diffreg.SyntheticProblem(s.N[0], s.N[1], s.N[2], nt, s.Incompressible)
	case "brain":
		return diffreg.BrainPhantomPair(s.N[0], s.N[1], s.N[2], s.SeedA, s.SeedB)
	default:
		// Validate enforces this for submitted specs; re-checking here keeps
		// internal callers (the fused dispatcher claims groups before
		// loading inputs) from solving on truncated volumes.
		if total := s.N[0] * s.N[1] * s.N[2]; len(s.Template) != total || len(s.Reference) != total {
			return diffreg.Volume{}, diffreg.Volume{},
				fmt.Errorf("inline volumes must both have %d samples (got %d and %d)",
					total, len(s.Template), len(s.Reference))
		}
		t := diffreg.Volume{N: s.N, Data: s.Template}
		r := diffreg.Volume{N: s.N, Data: s.Reference}
		return t, r, nil
	}
}

// config maps the spec onto a diffreg.Config (hooks are attached by the
// worker).
func (s *JobSpec) config() diffreg.Config {
	cfg := diffreg.Config{
		Tasks:                s.Tasks,
		Beta:                 s.Beta,
		Incompressible:       s.Incompressible,
		DivPenalty:           s.DivPenalty,
		Distance:             s.Distance,
		Precision:            s.Precision,
		TimeSteps:            s.TimeSteps,
		VelocityIntervals:    s.VelocityIntervals,
		FullNewton:           s.FullNewton,
		FirstOrder:           s.FirstOrder,
		GradTol:              s.GradTol,
		MaxNewtonIters:       s.MaxNewtonIters,
		MaxKrylovIters:       s.MaxKrylovIters,
		ContinuationBetas:    s.ContinuationBetas,
		MultilevelLevels:     s.MultilevelLevels,
		TwoLevelPrec:         s.TwoLevelPrec,
		Smooth:               s.Smooth,
		NormalizeIntensities: s.Normalize,
		ChaosSpec:            s.Chaos,
	}
	if s.Reg == "h1" {
		cfg.Reg = diffreg.RegH1
	}
	return cfg
}

// JobState is the lifecycle of a job: queued -> running -> one of
// done | failed | canceled.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Event is one entry of a job's progress stream: a lifecycle transition
// (kind "state") or a solver notification (kind "level"/"iteration").
type Event struct {
	Seq      int                    `json:"seq"`
	Kind     string                 `json:"kind"`
	State    JobState               `json:"state,omitempty"`
	Progress *diffreg.ProgressEvent `json:"progress,omitempty"`
}

// JobResult is the JSON result of a completed (or partially completed)
// solve.
type JobResult struct {
	Converged      bool     `json:"converged"`
	Interrupted    bool     `json:"interrupted,omitempty"`
	NewtonIters    int      `json:"newton_iters"`
	HessianMatvecs int      `json:"hessian_matvecs"`
	MisfitInit     float64  `json:"misfit_init"`
	MisfitFinal    float64  `json:"misfit_final"`
	GnormInit      float64  `json:"gnorm_init"`
	GnormFinal     float64  `json:"gnorm_final"`
	DetMin         float64  `json:"det_min"`
	DetMax         float64  `json:"det_max"`
	DetMean        float64  `json:"det_mean"`
	Degradations   []string `json:"degradations,omitempty"`

	TimeToSolution float64 `json:"time_to_solution"`
	FFTs           int64   `json:"ffts"`
	InterpSweeps   int64   `json:"interp_sweeps"`
	CacheHit       bool    `json:"cache_hit"`

	Warped   []float64   `json:"warped,omitempty"`
	Velocity [][]float64 `json:"velocity,omitempty"`
}

// JobStatus is the snapshot served by GET /jobs/{id}.
type JobStatus struct {
	ID           string     `json:"id"`
	State        JobState   `json:"state"`
	Error        string     `json:"error,omitempty"`
	ErrorKind    string     `json:"error_kind,omitempty"` // comm | solver | timeout | shutdown
	Degradations []string   `json:"degradations,omitempty"`
	Events       int        `json:"events"`
	Result       *JobResult `json:"result,omitempty"`

	// Attempts counts execution attempts started (0 while first-queued;
	// > 1 means the retry supervisor re-ran the job). NextRetry is set
	// while the job waits out a retry backoff.
	Attempts  int        `json:"attempts,omitempty"`
	NextRetry *time.Time `json:"next_retry,omitempty"`
}

// Job is one tracked registration. The solver's stop flag is plain atomic
// state so the cooperative-interrupt poll (every outer iteration on every
// rank) never contends with the event stream's mutex.
type Job struct {
	ID   string
	Spec JobSpec

	stop     atomic.Bool // cooperative-stop request (cancel, timeout, shutdown)
	canceled atomic.Bool
	timedOut atomic.Bool
	soloOnly atomic.Bool // re-queued from a dead fused batch: never re-fuse

	mu           sync.Mutex
	state        JobState
	events       []Event
	notify       chan struct{} // closed and replaced on every append
	result       *JobResult
	errMsg       string
	errKind      string
	degradations []string
	attempts     int       // execution attempts started
	nextRetry    time.Time // zero unless waiting out a retry backoff
	lastErr      string    // last attempt's failure, kept across retries
	lastKind     string

	// onTerminal, when set (by the server), runs exactly once after the
	// job reaches a terminal state, outside j.mu — the server journals the
	// outcome, reaps the checkpoint spool, and retires the job into the
	// retention ring from it.
	onTerminal func(*Job)

	done chan struct{}
}

func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		ID: id, Spec: spec, state: JobQueued,
		notify: make(chan struct{}), done: make(chan struct{}),
	}
	j.appendLockedEvent(Event{Kind: "state", State: JobQueued})
	return j
}

// newReplayedJob reconstructs a job from the journal at server restart.
// A non-terminal replay comes back queued with its pre-crash attempt
// count (the budget spans restarts); a terminal replay is a stub holding
// the journaled outcome — results are not journaled, so it has none.
func newReplayedJob(r *ReplayedJob) *Job {
	j := newJob(r.ID, r.Spec)
	j.attempts = r.Attempts
	if !r.Terminal {
		return j
	}
	j.state = r.State
	j.errMsg = r.Error
	j.errKind = r.ErrKind
	j.appendLockedEvent(Event{Kind: "state", State: r.State})
	close(j.done)
	return j
}

// Wait blocks until the job reaches a terminal state.
func (j *Job) Wait() { <-j.done }

// Done exposes the terminal-state channel for select loops.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the result snapshot (nil until terminal).
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Status builds the JSON status snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, State: j.state, Error: j.errMsg, ErrorKind: j.errKind,
		Degradations: j.degradations, Events: len(j.events), Result: j.result,
		Attempts: j.attempts,
	}
	if !j.nextRetry.IsZero() {
		t := j.nextRetry
		st.NextRetry = &t
	}
	return st
}

// Attempts returns the number of execution attempts started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// EventsSince returns the events with Seq >= from plus the notification
// channel that closes on the next append and whether the job is terminal —
// everything a streaming handler needs for one wait-free round.
func (j *Job) EventsSince(from int) (evs []Event, notify <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, j.notify, j.state.Terminal()
}

func (j *Job) appendLockedEvent(ev Event) {
	// Caller holds j.mu (or the job is not yet visible to anyone else).
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
}

func (j *Job) progress(ev diffreg.ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := ev
	j.appendLockedEvent(Event{Kind: ev.Kind, Progress: &e})
}

// setRunning transitions queued -> running; it returns false when the job
// was already canceled (the worker then skips it). Each successful
// transition starts a new execution attempt.
func (j *Job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.attempts++
	j.nextRetry = time.Time{}
	j.appendLockedEvent(Event{Kind: "state", State: JobRunning})
	return true
}

// setQueuedForRetry transitions running -> queued for the retry
// supervisor, recording the failed attempt's error and the scheduled next
// attempt time. The transition is announced on the event stream as a
// "retry" event so watchers can tell a re-queue from the initial queue.
func (j *Job) setQueuedForRetry(errMsg, errKind string, next time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = JobQueued
	j.lastErr = errMsg
	j.lastKind = errKind
	j.nextRetry = next
	j.appendLockedEvent(Event{Kind: "retry", State: JobQueued})
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state JobState, result *JobResult, errMsg, errKind string, degradations []string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.errKind = errKind
	j.degradations = degradations
	j.nextRetry = time.Time{}
	j.appendLockedEvent(Event{Kind: "state", State: state})
	close(j.done)
	cb := j.onTerminal
	j.mu.Unlock()
	if cb != nil {
		cb(j)
	}
}

// RequestCancel flags the job for cooperative cancellation. A queued job
// is finished immediately; a running job stops at the next outer-iteration
// boundary. Returns the observed state.
func (j *Job) RequestCancel() JobState {
	j.canceled.Store(true)
	j.stop.Store(true)
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if st == JobQueued {
		j.finish(JobCanceled, nil, "canceled before start", "", nil)
		return JobCanceled
	}
	return st
}

// effectiveTimeout resolves the per-job timeout against the server default.
func (s *JobSpec) effectiveTimeout(def time.Duration) time.Duration {
	if s.TimeoutSec < 0 {
		return 0
	}
	if s.TimeoutSec > 0 {
		return time.Duration(s.TimeoutSec * float64(time.Second))
	}
	return def
}
