package core

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// LevelStat records the work done on one grid level of a coarse-to-fine
// continuation.
type LevelStat struct {
	N       [3]int
	Iters   int
	Matvecs int
	Misfit  float64
}

// RegisterMultilevel runs coarse-to-fine grid continuation: the problem is
// solved on a hierarchy of spectrally restricted grids, warm-starting each
// level with the prolonged velocity of the previous one. Grid continuation
// is one of the techniques the paper lists (§ Limitations) for reducing
// sensitivity to the regularization parameter; it also cuts the number of
// expensive fine-grid Hessian matvecs. levels = 1 is a plain Register.
// Only the stationary-velocity formulation is supported.
func RegisterMultilevel(pe *grid.Pencil, rhoT, rhoR *field.Scalar, cfg Config, levels int) (*Outcome, []LevelStat, error) {
	if cfg.Intervals > 1 {
		return nil, nil, fmt.Errorf("core: multilevel supports only stationary velocities")
	}
	if levels < 1 {
		return nil, nil, fmt.Errorf("core: levels must be >= 1, got %d", levels)
	}
	if levels == 1 {
		out, err := Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return nil, nil, err
		}
		stat := LevelStat{N: pe.Grid.N, Iters: out.Counts.NewtonIters, Matvecs: out.Counts.Matvecs, Misfit: out.MisfitFinal}
		return out, []LevelStat{stat}, nil
	}

	fineN := pe.Grid.N
	fineOps := cfg.Ops
	if fineOps == nil {
		fineOps = spectral.New(pfft.NewPlan(pe))
	} else if fineOps.Pe != pe {
		return nil, nil, fmt.Errorf("core: injected operator set is bound to a different pencil; Rebind it first")
	}

	// The initial misfit of the original (not warm-started) problem, so
	// the outcome reports the true overall reduction.
	diff := rhoT.Clone()
	diff.Axpy(-1, rhoR)
	misfit0 := 0.5 * diff.Dot(diff)

	// The coarsest usable dims keep at least the tricubic stencil per rank
	// in the split dimensions and at least 8 points per direction.
	minDims := [3]int{max(8, 4*pe.P[0]), max(8, 4*pe.P[1]), 8}
	levelDims := make([][3]int, levels) // levelDims[0] = coarsest
	for l := 0; l < levels; l++ {
		shift := levels - 1 - l
		for d := 0; d < 3; d++ {
			n := fineN[d] >> shift
			// Keep dimensions even so the hierarchy nests cleanly.
			if n%2 == 1 {
				n++
			}
			if n < minDims[d] {
				n = minDims[d]
			}
			if n > fineN[d] {
				n = fineN[d]
			}
			levelDims[l][d] = n
		}
	}

	var stats []LevelStat
	var v0 *field.Vector // prolonged warm start for the current level
	var prevOps *spectral.Ops
	for l := 0; l < levels; l++ {
		nl := levelDims[l]
		last := l == levels-1
		var lpe *grid.Pencil
		var lOps *spectral.Ops
		var lT, lR *field.Scalar
		if last {
			lpe, lOps, lT, lR = pe, fineOps, rhoT, rhoR
		} else {
			gl, err := grid.New(nl[0], nl[1], nl[2])
			if err != nil {
				return nil, nil, err
			}
			lpe, err = grid.NewPencil(gl, pe.Comm)
			if err != nil {
				return nil, nil, err
			}
			lOps = spectral.New(pfft.NewPlan(lpe))
			// Restrict the finest images directly to this level through the
			// distributed spectral transfer.
			lT = spectral.Resample(fineOps, lOps, rhoT)
			lR = spectral.Resample(fineOps, lOps, rhoR)
		}

		// Prolong the previous level's velocity to this grid.
		if v0 != nil && prevOps != nil {
			v0 = spectral.ResampleVector(prevOps, lOps, v0)
		}

		lcfg := cfg
		lcfg.V0 = v0
		lcfg.Ops = lOps // the fine level reuses fineOps instead of rebuilding
		if !last {
			lcfg.SkipMap = true // map artifacts only needed at the finest level
		}
		out, err := Register(lpe, lT, lR, lcfg)
		if err != nil {
			return nil, nil, err
		}
		stats = append(stats, LevelStat{
			N: nl, Iters: out.Counts.NewtonIters, Matvecs: out.Counts.Matvecs, Misfit: out.MisfitFinal,
		})
		if last {
			out.MisfitInit = misfit0
			if out.Result != nil {
				out.Result.MisfitInit = misfit0
			}
			return out, stats, nil
		}
		v0 = out.V
		prevOps = lOps
	}
	panic("unreachable")
}
