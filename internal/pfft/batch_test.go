package pfft

import (
	"math"
	"math/cmplx"
	"testing"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
)

// batchFields builds B deterministic local fields on the pencil.
func batchFields(pe *grid.Pencil, b int) [][]float64 {
	n := pe.Grid.N
	out := make([][]float64, b)
	for f := range out {
		g := globalField(n)
		for i := range g {
			g[i] += float64(f) // decorrelate the fields
		}
		out[f] = localPart(pe, g)
	}
	return out
}

// TestBatchBitIdentical asserts the batched pipeline produces bitwise the
// same spectra and round trips as the per-field entry points, at one rank
// (transposes skipped) and four ranks (both transposes fused).
func TestBatchBitIdentical(t *testing.T) {
	for _, p := range []int{1, 4} {
		g := grid.MustNew(8, 12, 10)
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			srcs := batchFields(pe, 3)
			var want [][]complex128
			for _, s := range srcs {
				want = append(want, mustFwd(pl, s))
			}
			got := mustFwdB(pl, srcs)
			for b := range want {
				for i := range want[b] {
					if got[b][i] != want[b][i] {
						t.Errorf("p=%d field %d spec[%d]: batched %v != single %v",
							p, b, i, got[b][i], want[b][i])
						return nil
					}
				}
			}
			backB := mustInvB(pl, got)
			for b := range want {
				back := mustInv(pl, want[b])
				for i := range back {
					if backB[b][i] != back[i] {
						t.Errorf("p=%d field %d back[%d]: batched %v != single %v",
							p, b, i, backB[b][i], back[i])
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchParseval checks Parseval's identity on every batched component:
// sum |X_k|^2 over the full spectrum equals N * sum x_i^2 (the Hermitian
// half-spectrum is expanded by mirror weights).
func TestBatchParseval(t *testing.T) {
	for _, p := range []int{1, 4} {
		g := grid.MustNew(8, 8, 8)
		n := g.N
		total := float64(n[0] * n[1] * n[2])
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			srcs := batchFields(pe, 3)
			specs := mustFwdB(pl, srcs)
			for b := range srcs {
				sumX := 0.0
				for _, v := range srcs[b] {
					sumX += v * v
				}
				sumX = c.AllreduceSum(sumX)
				sumS := 0.0
				pl.EachSpec(func(idx, k1, k2, k3 int) {
					w := 2.0
					if k3 == 0 || 2*k3 == n[2] {
						w = 1 // self-conjugate planes are stored once
					}
					m := cmplx.Abs(specs[b][idx])
					sumS += w * m * m
				})
				sumS = c.AllreduceSum(sumS)
				if rel := math.Abs(sumS-total*sumX) / (total * sumX); rel > 1e-12 {
					t.Errorf("p=%d field %d: Parseval violated, rel err %g", p, b, rel)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestRoundTripZeroAllocs gates the plan-owned workspace: after warmup, a
// forward+inverse round trip through the *Into entry points performs zero
// heap allocations at one rank (multi-rank runs still allocate inside the
// in-process all-to-all, which models real MPI buffers anyway).
func TestRoundTripZeroAllocs(t *testing.T) {
	g := grid.MustNew(16, 12, 10)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlan(pe)
		src := batchFields(pe, 1)[0]
		spec := make([]complex128, pl.SpecLocalTotal())
		back := make([]float64, pe.LocalTotal())
		mustNil(pl.ForwardInto(src, spec)) // warm the workspace
		mustNil(pl.InverseInto(spec, back))
		allocs := testing.AllocsPerRun(10, func() {
			mustNil(pl.ForwardInto(src, spec))
			mustNil(pl.InverseInto(spec, back))
		})
		if allocs != 0 {
			t.Errorf("round trip allocates %v times per run, want 0", allocs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchedTransposeCounters verifies the fused transpose issues exactly
// one all-to-all per stage however many fields it carries: a 3-field
// forward on a 2x2 grid must add 2 all-to-alls, 2 transpose stages, and 6
// field-transposes per rank.
func TestBatchedTransposeCounters(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	stats, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlan(pe)
		srcs := batchFields(pe, 3)
		before := *c.Stats()
		mustFwdB(pl, srcs)
		after := c.Stats()
		if d := after.Alltoalls - before.Alltoalls; d != 2 {
			t.Errorf("batched forward issued %d all-to-alls, want 2", d)
		}
		if d := after.TransposeStages - before.TransposeStages; d != 2 {
			t.Errorf("batched forward counted %d transpose stages, want 2", d)
		}
		if d := after.TransposeFields - before.TransposeFields; d != 6 {
			t.Errorf("batched forward carried %d field-transposes, want 6", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = stats
}

// TestBatchedTransferSpectrum checks the fused multi-field grid transfer
// equals the per-field transfer bitwise and still costs one exchange.
func TestBatchedTransferSpectrum(t *testing.T) {
	gF := grid.MustNew(16, 12, 10)
	gC := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		peF, err := grid.NewPencil(gF, c)
		if err != nil {
			return err
		}
		peC, err := grid.NewPencil(gC, c)
		if err != nil {
			return err
		}
		plF, plC := NewPlan(peF), NewPlan(peC)
		specs := mustFwdB(plF, batchFields(peF, 3))
		var want [][]complex128
		for _, s := range specs {
			want = append(want, TransferSpectrum(plF, plC, s))
		}
		before := *c.Stats()
		got := TransferSpectrumBatch(plF, plC, specs)
		if d := c.Stats().Alltoalls - before.Alltoalls; d != 2 {
			t.Errorf("batched transfer issued %d all-to-alls, want 2 (values+indices)", d)
		}
		for b := range want {
			for i := range want[b] {
				if got[b][i] != want[b][i] {
					t.Errorf("field %d mode %d: batched %v != single %v", b, i, got[b][i], want[b][i])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWorkspaceSerialParallelIdentical asserts the batched pipeline is
// bit-identical across pool sizes (the workspace and chunk-indexed scratch
// must not introduce any scheduling dependence).
func TestWorkspaceSerialParallelIdentical(t *testing.T) {
	g := grid.MustNew(12, 15, 8)
	run := func(workers int) [][]complex128 {
		defer par.SetWorkers(par.SetWorkers(workers))
		var out [][]complex128
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			out = mustFwdB(pl, batchFields(pe, 3))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	pooled := run(8)
	for b := range serial {
		for i := range serial[b] {
			if serial[b][i] != pooled[b][i] {
				t.Fatalf("field %d mode %d: serial %v != pooled %v", b, i, serial[b][i], pooled[b][i])
			}
		}
	}
}
