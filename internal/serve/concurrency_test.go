package serve

// Concurrency battery for the serving layer (run with -race):
//
//   - N parallel clients with mixed grid sizes and world sizes must get
//     results byte-identical to serial diffreg.Register runs of the same
//     specs — concurrency and the plan cache must not perturb a single bit;
//   - a second (warm, cache-hitting) round must reproduce the cold round
//     exactly: cached plans do not change trajectories;
//   - chaos-injected jobs fail with structured comm errors while healthy
//     jobs sharing the worker pool are untouched;
//   - the server winds down without leaking goroutines.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"diffreg"
)

// mixedSpecs is the shared client workload: every combination a client
// could reasonably pin against its serial baseline — two grids, two world
// sizes, both distance measures, H1 and H2 regularization.
func mixedSpecs() []JobSpec {
	base := func(n int, tasks int) JobSpec {
		return JobSpec{Generator: "synthetic", N: [3]int{n, n, n}, Tasks: tasks,
			TimeSteps: 2, MaxNewtonIters: 2, GradTol: 1e-12, ReturnFields: true}
	}
	s0 := base(16, 1)
	s1 := base(16, 4)
	s2 := base(20, 1)
	s2.Distance = "ncc"
	s3 := base(20, 4)
	s3.Reg = "h1"
	s4 := base(16, 2)
	s4.Beta = 5e-3
	s5 := base(20, 2)
	s5.Incompressible = true
	return []JobSpec{s0, s1, s2, s3, s4, s5}
}

// serialBaseline runs one spec directly through diffreg.Register — no
// server, no cache, no concurrency.
func serialBaseline(t *testing.T, spec JobSpec) *diffreg.Result {
	t.Helper()
	template, reference, err := spec.volumes()
	if err != nil {
		t.Fatal(err)
	}
	res, err := diffreg.Register(template, reference, spec.config())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fetchResult pulls a completed job's full status over HTTP, so the floats
// under comparison really crossed a JSON round-trip.
func fetchResult(t *testing.T, url, id string) *JobResult {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
	}
	return st.Result
}

// bitsEqual compares float slices at full precision; JSON encodes float64
// with the shortest round-trip representation, so equality after an HTTP
// round-trip is exact, not approximate.
func bitsEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func assertMatchesBaseline(t *testing.T, label string, got *JobResult, want *diffreg.Result) {
	t.Helper()
	for _, c := range []struct {
		name     string
		got, ref float64
	}{
		{"misfit_init", got.MisfitInit, want.MisfitInit},
		{"misfit_final", got.MisfitFinal, want.MisfitFinal},
		{"gnorm_final", got.GnormFinal, want.GnormFinal},
		{"det_min", got.DetMin, want.DetMin},
		{"det_mean", got.DetMean, want.DetMean},
	} {
		if math.Float64bits(c.got) != math.Float64bits(c.ref) {
			t.Errorf("%s: %s differs from serial run: %.17g != %.17g", label, c.name, c.got, c.ref)
		}
	}
	if got.NewtonIters != want.NewtonIters || got.HessianMatvecs != want.HessianMatvecs {
		t.Errorf("%s: iteration counts differ: (%d, %d) != (%d, %d)", label,
			got.NewtonIters, got.HessianMatvecs, want.NewtonIters, want.HessianMatvecs)
	}
	if i, ok := bitsEqual(got.Warped, want.Warped.Data); !ok {
		t.Errorf("%s: warped image differs from serial run at sample %d", label, i)
	}
	for d := 0; d < 3; d++ {
		if i, ok := bitsEqual(got.Velocity[d], want.Velocity[d].Data); !ok {
			t.Errorf("%s: velocity component %d differs from serial run at sample %d", label, d, i)
		}
	}
}

// TestConcurrentClientsBitIdentical is the core battery: serial baselines
// first, then two rounds (cold cache, warm cache) of all specs submitted
// concurrently by parallel HTTP clients against a saturated worker pool.
// Every result must match its serial baseline bit for bit, and the warm
// round must hit the cache without changing a single trajectory.
func TestConcurrentClientsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency battery is long; the dedicated CI step runs it without -short")
	}
	specs := mixedSpecs()
	baselines := make([]*diffreg.Result, len(specs))
	for i, spec := range specs {
		baselines[i] = serialBaseline(t, spec)
	}

	srv := New(Config{Workers: 4, QueueDepth: 64, CacheEntries: 2 * len(specs)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clientsPerSpec = 2
	for round, name := range []string{"cold", "warm"} {
		var wg sync.WaitGroup
		ids := make([][]string, len(specs))
		for i := range specs {
			ids[i] = make([]string, clientsPerSpec)
			for c := 0; c < clientsPerSpec; c++ {
				wg.Add(1)
				go func(i, c int) {
					defer wg.Done()
					body, _ := json.Marshal(specs[i])
					resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Errorf("round %s spec %d client %d: %v", name, i, c, err)
						return
					}
					var acc struct {
						ID string `json:"id"`
					}
					err = json.NewDecoder(resp.Body).Decode(&acc)
					resp.Body.Close()
					if err != nil || resp.StatusCode != http.StatusAccepted {
						t.Errorf("round %s spec %d client %d: status %d err %v", name, i, c, resp.StatusCode, err)
						return
					}
					ids[i][c] = acc.ID
				}(i, c)
			}
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		hits := 0
		for i := range specs {
			for c, id := range ids[i] {
				job, ok := srv.Job(id)
				if !ok {
					t.Fatalf("job %s not tracked", id)
				}
				select {
				case <-job.Done():
				case <-time.After(4 * time.Minute):
					t.Fatalf("round %s spec %d client %d hung", name, i, c)
				}
				res := fetchResult(t, ts.URL, id)
				assertMatchesBaseline(t, fmt.Sprintf("round %s spec %d client %d", name, i, c), res, baselines[i])
				if res.CacheHit {
					hits++
				}
			}
		}
		if round == 1 && hits == 0 {
			t.Fatalf("warm round never hit the plan cache: %+v", srv.Cache().Stats())
		}
	}

	st := srv.Cache().Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("cache never warmed across rounds: %+v", st)
	}
}

// TestChaosSoak mixes fault-injected jobs into a healthy concurrent
// workload: the injected jobs must fail with structured comm errors (never
// hang, never poison the pool), the healthy jobs must finish with the
// fault-free result, and the server must keep serving afterwards.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is long; the dedicated CI step runs it without -short")
	}
	healthy := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 4,
		TimeSteps: 2, MaxNewtonIters: 2, GradTol: 1e-12}
	baseline := serialBaseline(t, healthy)

	// Sites verified deterministic for this workload: checksum-validated
	// payload corruption and truncation, plus a dropped message that must
	// surface as a recv timeout, not a hang.
	chaosSites := []string{
		"seed=11;site=1:fft-comm:send:2:bitflip",
		"seed=12;site=0:fft-comm:send:1:truncate",
		"seed=14;site=3:fft-comm:send:0:bitflip",
		"seed=13;site=2:interp-comm:send:1:drop",
	}

	srv := New(Config{Workers: 3, QueueDepth: 64})
	defer srv.Close()

	type submitted struct {
		job   *Job
		chaos bool
	}
	var jobs []submitted
	for round := 0; round < 2; round++ {
		for _, site := range chaosSites {
			spec := healthy
			spec.Chaos = site
			job, err := srv.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, submitted{job, true})

			good, err := srv.Submit(healthy)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, submitted{good, false})
		}
	}

	failures := 0
	for i, sj := range jobs {
		select {
		case <-sj.job.Done():
		case <-time.After(4 * time.Minute):
			t.Fatalf("job %d (%s) hung — fault containment broken", i, sj.job.ID)
		}
		st := sj.job.Status()
		if !sj.chaos {
			if st.State != JobDone {
				t.Fatalf("healthy job %s degraded by chaos neighbors: %s (%s)", sj.job.ID, st.State, st.Error)
			}
			if got := st.Result.MisfitFinal; math.Float64bits(got) != math.Float64bits(baseline.MisfitFinal) {
				t.Fatalf("healthy job %s diverged from fault-free baseline: %.17g != %.17g",
					sj.job.ID, got, baseline.MisfitFinal)
			}
			continue
		}
		switch st.State {
		case JobFailed:
			failures++
			if st.ErrorKind != "comm" {
				t.Fatalf("chaos job %s failed with kind %q, want comm: %s", sj.job.ID, st.ErrorKind, st.Error)
			}
			if !strings.Contains(st.Error, "comm error") {
				t.Fatalf("chaos job %s error not structured: %q", sj.job.ID, st.Error)
			}
		case JobDone:
			// A tolerated fault must still produce a sane result.
			if !isFinite(st.Result.MisfitFinal) {
				t.Fatalf("chaos job %s completed with non-finite misfit", sj.job.ID)
			}
		default:
			t.Fatalf("chaos job %s in unexpected state %s", sj.job.ID, st.State)
		}
	}
	if failures == 0 {
		t.Fatal("no chaos job produced a structured failure — injection sites never fired")
	}

	// The pool must still be serviceable after absorbing the faults.
	after, err := srv.Submit(healthy)
	if err != nil {
		t.Fatal(err)
	}
	after.Wait()
	if st := after.Status(); st.State != JobDone {
		t.Fatalf("server unhealthy after chaos soak: %s (%s)", st.State, st.Error)
	}
	if stats := srv.Stats(); stats.Failed != int64(failures) {
		t.Fatalf("failure accounting drifted: stats %+v, observed %d", stats, failures)
	}
}

// TestServerShutdownLeaksNoGoroutines bounds the goroutine count after a
// busy server is closed: workers, rank goroutines, watchdog timers, and
// event streams must all unwind.
func TestServerShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(Config{Workers: 4, QueueDepth: 32})
	ts := httptest.NewServer(srv.Handler())
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			spec := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1 + c%2,
				TimeSteps: 2, MaxNewtonIters: 1, TimeoutSec: 30}
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			var acc struct {
				ID string `json:"id"`
			}
			json.NewDecoder(resp.Body).Decode(&acc)
			resp.Body.Close()
			if acc.ID == "" {
				return
			}
			// Hold an event stream open so shutdown also has to unwind a
			// streaming handler.
			sresp, err := http.Get(ts.URL + "/jobs/" + acc.ID + "/events")
			if err == nil {
				_, _ = json.NewDecoder(sresp.Body).Token()
				sresp.Body.Close()
			}
			if job, ok := srv.Job(acc.ID); ok {
				job.Wait()
			}
		}(c)
	}
	wg.Wait()
	ts.Close()
	srv.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after close\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
