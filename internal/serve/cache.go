// Package serve is the registration-as-a-service layer: an HTTP/JSON job
// server that runs many concurrent registrations through diffreg.Register
// on a bounded worker pool, with admission control, per-job cooperative
// timeouts, streamed progress events, and a plan/workspace cache that keeps
// steady-state solves at the zero-allocation level of the batched spectral
// pipeline.
package serve

import (
	"sync"

	"diffreg"
	"diffreg/internal/spectral"
)

// planKey identifies one cacheable operator-set shape. Precision is part
// of the key because the transpose wire format is baked into a plan's
// workspace arena: a float32 job must never check out an entry built at
// float64 (or vice versa) — the solve would run the wrong wire format.
type planKey struct {
	N         [3]int
	Tasks     int
	Precision string // canonical prec string: "float64" | "float32"
	// Slots is the per-rank operator-set count of the checkout shape: 1
	// for solo jobs, B+1 for a fused batch of B jobs (B fiber sets plus
	// the scheduler's executor). It is part of the key because fused
	// executors carry transpose arenas sized for 3·B-field batches —
	// a singleton job must never check out a fused batch's arena, and a
	// fused batch must never receive a solo-sized one.
	Slots int
}

// planEntry is one retained per-rank operator-set collection. refs > 0
// means a job holds the entry through a lease: it is pinned — the evictor
// skips it no matter how far over capacity the cache is.
type planEntry struct {
	key     planKey
	ops     [][]*spectral.Ops // [rank][slot]
	refs    int
	lastUse uint64 // LRU clock tick of the last acquire/release
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	InUse     int   `json:"in_use"`
	Capacity  int   `json:"capacity"`
}

// PlanCache pools per-rank operator sets (pfft plans, spectral symbol
// tables, workspaces) across jobs, keyed by (grid dims, tasks, precision).
// Checkout semantics enforce the plans' single-owner contract: Acquire
// hands an idle entry to exactly one job; a second concurrent job of the
// same shape misses and builds its own set, which is donated back on
// release — so after a warm-up round, N concurrent same-shape jobs run on
// N cached entries with zero plan construction. Eviction is LRU over idle
// entries only; in-use entries are ref-count-pinned.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	clock    uint64
	entries  []*planEntry

	hits, misses, evictions int64
}

// NewPlanCache returns a cache retaining at most capacity idle entries
// (capacity <= 0 retains nothing: every acquire misses and donations are
// dropped — the "cold" configuration).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{capacity: capacity}
}

// Acquire implements diffreg.PlanSource. It never blocks: a busy or absent
// key yields a miss lease whose Ops(rank) is nil, and the job builds (and
// then donates) its own operator sets. precision must be the canonical
// string diffreg passes ("float64" or "float32"); it used to be hardcoded
// to a single value here, which made the precision keying vestigial and
// would have handed float32 jobs entries built at float64.
func (pc *PlanCache) Acquire(n [3]int, tasks int, precision string, slots int) diffreg.PlanLease {
	if precision == "" {
		precision = "float64"
	}
	if slots <= 0 {
		slots = 1
	}
	key := planKey{N: n, Tasks: tasks, Precision: precision, Slots: slots}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.clock++
	var best *planEntry
	for _, e := range pc.entries {
		if e.key == key && e.refs == 0 && (best == nil || e.lastUse > best.lastUse) {
			best = e // most-recently-used idle match: warmest workspaces
		}
	}
	if best != nil {
		best.refs++
		best.lastUse = pc.clock
		pc.hits++
		return &planLease{pc: pc, entry: best}
	}
	pc.misses++
	fresh := make([][]*spectral.Ops, tasks)
	for r := range fresh {
		fresh[r] = make([]*spectral.Ops, slots)
	}
	return &planLease{pc: pc, key: key, fresh: fresh}
}

// Stats returns a snapshot of the counters.
func (pc *PlanCache) Stats() CacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	s := CacheStats{
		Hits: pc.hits, Misses: pc.misses, Evictions: pc.evictions,
		Entries: len(pc.entries), Capacity: pc.capacity,
	}
	for _, e := range pc.entries {
		if e.refs > 0 {
			s.InUse++
		}
	}
	return s
}

// evictLocked drops least-recently-used idle entries until the cache fits
// its capacity. In-use entries never leave; the cache may transiently sit
// over capacity while every entry is pinned.
func (pc *PlanCache) evictLocked() {
	for len(pc.entries) > pc.capacity {
		victim := -1
		for i, e := range pc.entries {
			if e.refs > 0 {
				continue
			}
			if victim < 0 || e.lastUse < pc.entries[victim].lastUse {
				victim = i
			}
		}
		if victim < 0 {
			return
		}
		pc.entries = append(pc.entries[:victim], pc.entries[victim+1:]...)
		pc.evictions++
	}
}

// planLease is one job's checkout. Exactly one of entry (hit) or fresh
// (miss) is active. Put writes distinct rank slots from distinct rank
// goroutines, which needs no lock; Release is called once, from the job's
// submitting goroutine, after the mpi world has fully unwound.
type planLease struct {
	pc       *PlanCache
	entry    *planEntry        // hit: the pinned cache entry
	key      planKey           // miss: the key the donation installs under
	fresh    [][]*spectral.Ops // miss: per-rank, per-slot donations
	released bool
}

// Ops returns the cached operator set for a rank (slot 0), nil on a miss.
func (l *planLease) Ops(rank int) *spectral.Ops { return l.OpsSlot(rank, 0) }

// Put donates the operator set a missing rank built (slot 0).
func (l *planLease) Put(rank int, ops *spectral.Ops) { l.PutSlot(rank, 0, ops) }

// OpsSlot returns the cached operator set of one slot of a rank's fused
// checkout, nil on a miss. Implements diffreg.BatchPlanLease.
func (l *planLease) OpsSlot(rank, slot int) *spectral.Ops {
	if l.entry == nil || rank < 0 || rank >= len(l.entry.ops) {
		return nil
	}
	if slot < 0 || slot >= len(l.entry.ops[rank]) {
		return nil
	}
	return l.entry.ops[rank][slot]
}

// PutSlot donates one slot of a missing rank's fused checkout. No-op on
// a hit.
func (l *planLease) PutSlot(rank, slot int, ops *spectral.Ops) {
	if l.entry != nil || rank < 0 || rank >= len(l.fresh) {
		return
	}
	if slot < 0 || slot >= len(l.fresh[rank]) {
		return
	}
	l.fresh[rank][slot] = ops
}

// Hit reports whether this lease came from a cached entry.
func (l *planLease) Hit() bool { return l.entry != nil }

// Release returns the checkout: a hit entry becomes evictable again, a
// complete miss donation (every rank Put its set — a failed job may leave
// gaps, which are discarded) is installed as a new entry. Either way the
// evictor then trims to capacity.
func (l *planLease) Release() {
	pc := l.pc
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if l.released {
		return
	}
	l.released = true
	pc.clock++
	if l.entry != nil {
		l.entry.refs--
		l.entry.lastUse = pc.clock
	} else if pc.capacity > 0 {
		complete := len(l.fresh) > 0
		for _, rankSlots := range l.fresh {
			for _, o := range rankSlots {
				if o == nil {
					complete = false
				}
			}
		}
		if complete {
			pc.entries = append(pc.entries, &planEntry{key: l.key, ops: l.fresh, lastUse: pc.clock})
		}
	}
	pc.evictLocked()
}
