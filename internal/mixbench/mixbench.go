// Package mixbench measures the float64-vs-float32 hot path comparison
// behind `regbench -mixed` and BENCH_pr7.json. It lives outside
// paperbench because it imports diffreg for the end-to-end solve legs;
// keeping it separate lets diffreg's in-package tests keep importing
// paperbench without a cycle (the same split as servebench).
package mixbench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"diffreg"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/paperbench"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
)

// PrecisionLeg is one numeric mode's measurements: the transpose wire
// volume of a batched 3-field forward+inverse pair at 4 ranks, its timing,
// and an end-to-end registration solve.
type PrecisionLeg struct {
	Precision             string  `json:"precision"`
	FFTCommBytesPerRank   int64   `json:"fft_comm_bytes_per_rank"`
	TransposeStages       int64   `json:"transpose_stages"`
	WireBytesPerTranspose float64 `json:"wire_bytes_per_transpose"`
	RoundtripNsPerOp      float64 `json:"roundtrip_ns_per_op"`
	SolveSeconds          float64 `json:"solve_seconds"`
	MisfitFinal           float64 `json:"misfit_final"`
}

// PrecisionSnapshot is the machine-readable output of `regbench -mixed`:
// the float64 reference leg against the float32 hot path on the same
// problem, with the headline ratios. wire_bytes_ratio is exact (the narrow
// format carries (re, im) float32 pairs in place of complex128 elements);
// solve_speedup is the measured end-to-end wall-time ratio.
type PrecisionSnapshot struct {
	Grid    [3]int       `json:"grid"`
	Tasks   int          `json:"tasks"`
	Float64 PrecisionLeg `json:"float64"`
	Float32 PrecisionLeg `json:"float32"`

	WireBytesRatio float64 `json:"wire_bytes_ratio"`
	SolveSpeedup   float64 `json:"solve_speedup"`
	MisfitRelDiff  float64 `json:"misfit_rel_diff"`
}

// precisionLeg measures one numeric mode at the given grid and rank count.
func precisionLeg(g grid.Grid, tasks int, pr prec.Precision, solveIters int) (PrecisionLeg, error) {
	leg := PrecisionLeg{Precision: pr.String()}

	const roundtrips = 4
	stats, err := mpi.Run(tasks, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := pfft.NewPlanPrec(pe, pr)
		rng := rand.New(rand.NewSource(int64(41 + c.Rank())))
		srcs := make([][]float64, 3)
		for b := range srcs {
			srcs[b] = make([]float64, pe.LocalTotal())
			for i := range srcs[b] {
				srcs[b][i] = rng.NormFloat64()
			}
		}
		// Warm the workspaces, then time outside the measurement of bytes
		// (the byte counters accumulate across all iterations; they are
		// normalized by the stage count below).
		if _, err := pl.ForwardBatch(srcs); err != nil {
			return err
		}
		t0 := time.Now()
		for i := 0; i < roundtrips; i++ {
			spec, err := pl.ForwardBatch(srcs)
			if err != nil {
				return err
			}
			if _, err := pl.InverseBatch(spec); err != nil {
				return err
			}
		}
		ns := float64(time.Since(t0).Nanoseconds()) / roundtrips
		if c.Rank() == 0 {
			leg.RoundtripNsPerOp = ns
		}
		return nil
	})
	if err != nil {
		return leg, err
	}
	leg.FFTCommBytesPerRank = stats[0].BytesRecv[mpi.PhaseFFTComm]
	leg.TransposeStages = stats[0].TransposeStages
	if leg.TransposeStages > 0 {
		leg.WireBytesPerTranspose = float64(leg.FFTCommBytesPerRank) / float64(leg.TransposeStages)
	}

	tmpl, ref, err := diffreg.SyntheticProblem(g.N[0], g.N[1], g.N[2], 4, false)
	if err != nil {
		return leg, err
	}
	cfg := diffreg.Config{Tasks: tasks, Precision: pr.String(),
		MaxNewtonIters: solveIters, GradTol: 1e-9}
	t0 := time.Now()
	res, err := diffreg.Register(tmpl, ref, cfg)
	if err != nil {
		return leg, fmt.Errorf("%s solve: %w", pr, err)
	}
	leg.SolveSeconds = time.Since(t0).Seconds()
	leg.MisfitFinal = res.MisfitFinal
	return leg, nil
}

// PrecisionBench runs the mixed-precision comparison: 64^3 at 4 ranks
// (32^3 under quick), 2 Newton iterations per solve.
func PrecisionBench(quick bool) (paperbench.Report, error) {
	n := 64
	if quick {
		n = 32
	}
	g := grid.MustNew(n, n, n)
	snap := PrecisionSnapshot{Grid: g.N, Tasks: 4}

	var err error
	if snap.Float64, err = precisionLeg(g, snap.Tasks, prec.F64, 2); err != nil {
		return paperbench.Report{}, err
	}
	if snap.Float32, err = precisionLeg(g, snap.Tasks, prec.F32, 2); err != nil {
		return paperbench.Report{}, err
	}
	if snap.Float64.WireBytesPerTranspose > 0 {
		snap.WireBytesRatio = snap.Float32.WireBytesPerTranspose / snap.Float64.WireBytesPerTranspose
	}
	if snap.Float32.SolveSeconds > 0 {
		snap.SolveSpeedup = snap.Float64.SolveSeconds / snap.Float32.SolveSeconds
	}
	if snap.Float64.MisfitFinal != 0 {
		snap.MisfitRelDiff = abs(snap.Float32.MisfitFinal-snap.Float64.MisfitFinal) / abs(snap.Float64.MisfitFinal)
	}

	text, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return paperbench.Report{}, err
	}
	return paperbench.Report{Title: "Mixed-precision hot path comparison", Text: string(text)}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
