package check

import (
	"fmt"
	"math"
	"math/rand"

	"diffreg/internal/field"
	"diffreg/internal/interp"
	"diffreg/internal/semilag"
)

// runAdjoint fuzzes the adjoint identities <Au, w> = <u, A*w> of every
// differential operator the optimality system composes, plus the
// interpolation gather/scatter pair. These identities are what make the
// reduced gradient the true adjoint-state gradient: a broken adjoint
// produces a plausible-looking but wrong descent direction that only the
// Taylor tests downstream would catch indirectly.
func (e *env) runAdjoint() {
	rng := rand.New(rand.NewSource(e.opt.Seed))
	ops := e.ops
	trials := e.opt.trials()
	detail := fmt.Sprintf("%d trials", trials)

	// The defect |<Au,w> - <u,A*w>| is normalized at operator level,
	// by ||Au|| ||w|| + ||u|| ||A*w||: two random band-limited fields can be
	// near-orthogonal under A (sparse mode overlap), which makes a plain
	// relative difference of the two inner products meaningless.
	var gradDiv, lap, vecLap, biharm, leraySym, lerayIdem, invBih, roundtrip, divGradLap float64
	for t := 0; t < trials; t++ {
		s := randScalar(e.pe, rng)
		s2 := randScalar(e.pe, rng)
		w := randVector(e.pe, rng)
		w2 := randVector(e.pe, rng)

		// Gradient and divergence are negative adjoints: <grad s, w> = -<s, div w>.
		gs, dw := ops.Grad(s), ops.Div(w)
		gradDiv = math.Max(gradDiv, math.Abs(gs.Dot(w)+s.Dot(dw))/
			(gs.NormL2()*w.NormL2()+s.NormL2()*dw.NormL2()))
		// The Laplacian and biharmonic operators are self-adjoint.
		ls, ls2 := ops.Lap(s), ops.Lap(s2)
		lap = math.Max(lap, math.Abs(ls.Dot(s2)-s.Dot(ls2))/
			(ls.NormL2()*s2.NormL2()+s.NormL2()*ls2.NormL2()))
		lw, lw2 := ops.VecLap(w), ops.VecLap(w2)
		vecLap = math.Max(vecLap, math.Abs(lw.Dot(w2)-w.Dot(lw2))/
			(lw.NormL2()*w2.NormL2()+w.NormL2()*lw2.NormL2()))
		bw, bw2 := ops.Biharm(w), ops.Biharm(w2)
		biharm = math.Max(biharm, math.Abs(bw.Dot(w2)-w.Dot(bw2))/
			(bw.NormL2()*w2.NormL2()+w.NormL2()*bw2.NormL2()))
		// The Leray projection is an orthogonal projector: self-adjoint and
		// idempotent.
		pw, pw2 := ops.Leray(w), ops.Leray(w2)
		leraySym = math.Max(leraySym, math.Abs(pw.Dot(w2)-w.Dot(pw2))/
			(pw.NormL2()*w2.NormL2()+w.NormL2()*pw2.NormL2()))
		ppw := ops.Leray(pw)
		ppw.Axpy(-1, pw)
		lerayIdem = math.Max(lerayIdem, ppw.NormL2()/pw.NormL2())
		// The preconditioner is self-adjoint and inverts the biharmonic
		// operator on zero-mean fields.
		iw, iw2 := ops.InvBiharm(w), ops.InvBiharm(w2)
		invBih = math.Max(invBih, math.Abs(iw.Dot(w2)-w.Dot(iw2))/
			(iw.NormL2()*w2.NormL2()+w.NormL2()*iw2.NormL2()))
		w0 := zeroMean(w)
		rt := ops.Biharm(ops.InvBiharm(w0))
		rt.Axpy(-1, w0)
		roundtrip = math.Max(roundtrip, rt.NormL2()/w0.NormL2())
		// div(grad s) agrees with the Laplacian on Nyquist-free fields (the
		// first-derivative operators drop the Nyquist mode, the Laplacian
		// keeps it; the fuzz fields are band-limited below Nyquist).
		dg := ops.Div(ops.Grad(s))
		dg.Axpy(-1, ops.Lap(s))
		divGradLap = math.Max(divGradLap, dg.NormL2()/ops.Lap(s).NormL2())
	}
	// Float32 gates: the narrowing noise enters in physical space during
	// the transpose stages, so operators whose symbols amplify high modes
	// (Lap ~k^2, Biharm ~k^4) amplify that noise too — their gates scale
	// with the symbol growth on a 24^3 grid.
	mach := e.opt.mach
	e.add("adjoint", "grad_div_negative", gradDiv, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "lap_self", lap, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "veclap_self", vecLap, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "biharm_self", biharm, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "leray_self", leraySym, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "leray_idempotent", lerayIdem, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "invbiharm_self", invBih, mach(1e-12, 3e-6), ModeMax, detail)
	e.add("adjoint", "biharm_roundtrip", roundtrip, mach(1e-11, 3e-3), ModeMax, "zero-mean fields")
	e.add("adjoint", "div_grad_vs_lap", divGradLap, mach(1e-12, 3e-5), ModeMax, "Nyquist-free fields")

	e.interpAdjoint(rng)
	e.interpDistributed(rng)
}

// zeroMean removes the componentwise mean (the kernel of the biharmonic
// operator) from a vector field.
func zeroMean(w *field.Vector) *field.Vector {
	out := w.Clone()
	for d := 0; d < 3; d++ {
		m := out.C[d].Mean()
		data := out.C[d].Data
		for i := range data {
			data[i] -= m
		}
	}
	return out
}

// interpAdjoint verifies that the explicit transpose-scatter of the
// tricubic gather satisfies <Af, w>_pts = <f, A*w>_grid exactly: A gathers
// grid values to off-grid points with the Lagrange weights, A* scatters
// point values back with the same weights. Every rank evaluates the
// identical global problem (the draws are seeded), so a p-dependence would
// indicate nondeterminism, not roundoff.
func (e *env) interpAdjoint(rng *rand.Rand) {
	n := e.pe.Grid.N
	tot := n[0] * n[1] * n[2]
	npts := 200
	if e.opt.Quick {
		npts = 100
	}
	worst := 0.0
	for t := 0; t < e.opt.trials(); t++ {
		f := make([]float64, tot)
		for i := range f {
			f[i] = rng.Float64()*2 - 1
		}
		lhs, rhs, denom := 0.0, 0.0, 0.0
		scat := make([]float64, tot)
		for j := 0; j < npts; j++ {
			x := [3]float64{
				rng.Float64() * float64(n[0]),
				rng.Float64() * float64(n[1]),
				rng.Float64() * float64(n[2]),
			}
			wj := rng.Float64()*2 - 1
			av := interp.EvalPeriodic(f, n, x)
			lhs += wj * av
			denom += math.Abs(wj * av)
			scatterPeriodic(scat, n, x, wj)
		}
		for i := range f {
			rhs += f[i] * scat[i]
		}
		worst = math.Max(worst, math.Abs(lhs-rhs)/denom)
	}
	e.add("adjoint", "interp_gather_scatter", worst, 1e-12, ModeMax,
		fmt.Sprintf("%d pts x %d trials", npts, e.opt.trials()))
}

// scatterPeriodic accumulates w times the tricubic stencil weights of the
// point x onto the grid — the exact transpose of interp.EvalPeriodic.
func scatterPeriodic(g []float64, n [3]int, x [3]float64, w float64) {
	i1, t1 := interp.SplitIndex(x[0], n[0])
	i2, t2 := interp.SplitIndex(x[1], n[1])
	i3, t3 := interp.SplitIndex(x[2], n[2])
	w1 := interp.Weights(t1)
	w2 := interp.Weights(t2)
	w3 := interp.Weights(t3)
	var idx1, idx2, idx3 [4]int
	for a := 0; a < 4; a++ {
		idx1[a] = wrapIdx(i1+a-1, n[0])
		idx2[a] = wrapIdx(i2+a-1, n[1])
		idx3[a] = wrapIdx(i3+a-1, n[2])
	}
	for a := 0; a < 4; a++ {
		base1 := idx1[a] * n[1]
		for b := 0; b < 4; b++ {
			base2 := (base1 + idx2[b]) * n[2]
			wab := w * w1[a] * w2[b]
			for c := 0; c < 4; c++ {
				g[base2+idx3[c]] += wab * w3[c]
			}
		}
	}
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// interpDistributed ties the distributed ghost-padded interpolation plan to
// the serial reference evaluator on the same global field and the same
// departure points: with the gather/scatter adjointness proven serially,
// bitwise agreement here extends it to the distributed operator.
func (e *env) interpDistributed(rng *rand.Rand) {
	pe := e.pe
	n := pe.Grid.N
	global := make([]float64, n[0]*n[1]*n[2])
	for i := range global {
		global[i] = rng.Float64()*2 - 1
	}
	local := field.NewScalar(pe)
	pe.EachLocal(func(i1, i2, i3, idx int) {
		j := ((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2] + pe.Lo[2] + i3
		local.Data[idx] = global[j]
	})
	v := randVector(pe, rng)
	pts := semilag.Departure(pe, v, 0.25)
	plan := semilag.NewPlanPrec(pe, pts, e.opt.Precision)
	got := plan.Interp(local.Data)
	maxd := 0.0
	for i := range got {
		want := interp.EvalPeriodic(global, n, [3]float64{pts[0][i], pts[1][i], pts[2][i]})
		maxd = math.Max(maxd, math.Abs(got[i]-want))
	}
	maxd = pe.Comm.AllreduceMax(maxd)
	// Under float32 the distributed gather rounds field values and stencil
	// weights to single precision while the serial reference stays wide, so
	// agreement is at the eps32 scale rather than bitwise.
	e.add("adjoint", "interp_dist_vs_serial", maxd, e.opt.mach(1e-12, 2e-6), ModeMax, "RK2 departure points")
}
