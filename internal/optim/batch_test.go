package optim

import (
	"math"
	"testing"
)

func newHostileTrio() []*hostile {
	return []*hostile{
		{a: dvec{2, 1, 0.5}, b: dvec{1, 1, 1}, beta: 0.1},
		{a: dvec{4, 3, 2}, b: dvec{2, -1, 0.5}, beta: 0.05},
		{a: dvec{1, 1, 1}, b: dvec{-1, 2, -3}, beta: 0.2},
	}
}

func soloResult(p *hostile, opt NewtonOptions) *Result[dvec] {
	return GaussNewton[dvec](p, make(dvec, len(p.b)), opt)
}

// TestBatchMatchesSolo: three quadratics solved through the rendezvous
// scheduler with fused prec + stop hooks must produce bitwise the same
// iterates, objective values, and iteration counts as three solo solves.
func TestBatchMatchesSolo(t *testing.T) {
	opt := DefaultNewtonOptions()
	opt.MaxIters = 20

	solo := make([]*Result[dvec], 3)
	for i, p := range newHostileTrio() {
		solo[i] = soloResult(p, opt)
		if !solo[i].Converged {
			t.Fatalf("solo job %d did not converge", i)
		}
	}

	probs := newHostileTrio()
	fused := FusedOps[dvec]{
		// Identity preconditioner applied batch-wide: same arithmetic as
		// hostile.ApplyPrec, exercised through the fused path.
		ApplyPrec: func(jobs []int, rs []dvec) []dvec {
			outs := make([]dvec, len(rs))
			for i := range rs {
				outs[i] = rs[i].Clone()
			}
			return outs
		},
		// Single-rank masked reduction: the identity.
		Stop: func(flags []float64) []float64 { return flags },
	}
	b := NewBatch[dvec](3, fused)
	results := make([]*Result[dvec], 3)
	fibers := make([]func() error, 3)
	for j := 0; j < 3; j++ {
		j := j
		o := opt
		o.Stop = b.GateStop(j, func() bool { return false })
		obj := b.Gate(j, probs[j], true)
		fibers[j] = func() error {
			results[j] = GaussNewton[dvec](obj, make(dvec, len(probs[j].b)), o)
			return nil
		}
	}
	for _, err := range b.Run(fibers) {
		if err != nil {
			t.Fatalf("fiber error: %v", err)
		}
	}
	for j := 0; j < 3; j++ {
		if results[j] == nil || !results[j].Converged {
			t.Fatalf("batched job %d did not converge", j)
		}
		if results[j].Iters != solo[j].Iters {
			t.Errorf("job %d: iters %d != solo %d", j, results[j].Iters, solo[j].Iters)
		}
		if math.Float64bits(results[j].JFinal) != math.Float64bits(solo[j].JFinal) {
			t.Errorf("job %d: JFinal %v != solo %v", j, results[j].JFinal, solo[j].JFinal)
		}
		for i := range results[j].V {
			if math.Float64bits(results[j].V[i]) != math.Float64bits(solo[j].V[i]) {
				t.Errorf("job %d component %d: %v != solo %v", j, i, results[j].V[i], solo[j].V[i])
			}
		}
	}
}

// TestBatchUnfusablePrecRunsSolo: a job gated with precFusable=false
// must never reach the fused ApplyPrec hook, yet still converge to the
// same answer.
func TestBatchUnfusablePrecRunsSolo(t *testing.T) {
	opt := DefaultNewtonOptions()
	opt.MaxIters = 20
	probs := newHostileTrio()
	solo := soloResult(newHostileTrio()[1], opt)

	var fusedJobs []int
	fused := FusedOps[dvec]{
		ApplyPrec: func(jobs []int, rs []dvec) []dvec {
			fusedJobs = append(fusedJobs, jobs...)
			outs := make([]dvec, len(rs))
			for i := range rs {
				outs[i] = rs[i].Clone()
			}
			return outs
		},
	}
	b := NewBatch[dvec](3, fused)
	results := make([]*Result[dvec], 3)
	fibers := make([]func() error, 3)
	for j := 0; j < 3; j++ {
		j := j
		obj := b.Gate(j, probs[j], j != 1) // job 1 is unfusable
		fibers[j] = func() error {
			results[j] = GaussNewton[dvec](obj, make(dvec, len(probs[j].b)), opt)
			return nil
		}
	}
	b.Run(fibers)
	for _, j := range fusedJobs {
		if j == 1 {
			t.Fatal("unfusable job 1 was routed through the fused preconditioner")
		}
	}
	if len(fusedJobs) == 0 {
		t.Fatal("no job used the fused preconditioner")
	}
	if math.Float64bits(results[1].JFinal) != math.Float64bits(solo.JFinal) {
		t.Errorf("unfusable job JFinal %v != solo %v", results[1].JFinal, solo.JFinal)
	}
}

// TestBatchDropout: jobs with different iteration budgets finish at
// different times; the early finishers must not disturb the survivor,
// and the scheduler must count the shrink events.
func TestBatchDropout(t *testing.T) {
	probs := newHostileTrio()
	solo := make([]*Result[dvec], 3)
	budgets := []int{1, 2, 20}
	for i, p := range newHostileTrio() {
		o := DefaultNewtonOptions()
		o.MaxIters = budgets[i]
		solo[i] = soloResult(p, o)
	}

	b := NewBatch[dvec](3, FusedOps[dvec]{})
	results := make([]*Result[dvec], 3)
	fibers := make([]func() error, 3)
	for j := 0; j < 3; j++ {
		j := j
		o := DefaultNewtonOptions()
		o.MaxIters = budgets[j]
		obj := b.Gate(j, probs[j], false)
		fibers[j] = func() error {
			results[j] = GaussNewton[dvec](obj, make(dvec, len(probs[j].b)), o)
			return nil
		}
	}
	b.Run(fibers)
	if b.Dropouts() != 2 {
		t.Errorf("want 2 dropout events, got %d", b.Dropouts())
	}
	for j := 0; j < 3; j++ {
		if results[j].Iters != solo[j].Iters {
			t.Errorf("job %d: iters %d != solo %d", j, results[j].Iters, solo[j].Iters)
		}
		if math.Float64bits(results[j].JFinal) != math.Float64bits(solo[j].JFinal) {
			t.Errorf("job %d: JFinal %v != solo %v", j, results[j].JFinal, solo[j].JFinal)
		}
	}
}

// TestBatchStopInterruptsOneJob: a per-job stop flag raised mid-solve
// interrupts only that job; its neighbors run to convergence
// bit-identically to solo.
func TestBatchStopInterruptsOneJob(t *testing.T) {
	opt := DefaultNewtonOptions()
	opt.MaxIters = 20
	probs := newHostileTrio()
	solo0 := soloResult(newHostileTrio()[0], opt)
	solo2 := soloResult(newHostileTrio()[2], opt)

	b := NewBatch[dvec](3, FusedOps[dvec]{
		Stop: func(flags []float64) []float64 { return flags },
	})
	results := make([]*Result[dvec], 3)
	fibers := make([]func() error, 3)
	polls := 0
	for j := 0; j < 3; j++ {
		j := j
		o := opt
		if j == 1 {
			o.Stop = b.GateStop(j, func() bool {
				polls++
				return polls > 1 // interrupt on the second poll
			})
		} else {
			o.Stop = b.GateStop(j, func() bool { return false })
		}
		obj := b.Gate(j, probs[j], false)
		fibers[j] = func() error {
			results[j] = GaussNewton[dvec](obj, make(dvec, len(probs[j].b)), o)
			return nil
		}
	}
	b.Run(fibers)
	if !results[1].Interrupted {
		t.Error("job 1 was not interrupted")
	}
	if results[0].Interrupted || results[2].Interrupted {
		t.Error("a neighbor of the stopped job was interrupted")
	}
	if math.Float64bits(results[0].JFinal) != math.Float64bits(solo0.JFinal) {
		t.Errorf("job 0 JFinal %v != solo %v", results[0].JFinal, solo0.JFinal)
	}
	if math.Float64bits(results[2].JFinal) != math.Float64bits(solo2.JFinal) {
		t.Errorf("job 2 JFinal %v != solo %v", results[2].JFinal, solo2.JFinal)
	}
}

// TestBatchExclusiveSerialized: Exclusive sections never overlap with
// any other fiber's callbacks.
func TestBatchExclusiveSerialized(t *testing.T) {
	const n = 4
	b := NewBatch[dvec](n, FusedOps[dvec]{})
	var inWindow, maxInWindow int
	fibers := make([]func() error, n)
	for j := 0; j < n; j++ {
		j := j
		fibers[j] = func() error {
			for k := 0; k < 3; k++ {
				b.Exclusive(j, func() {
					inWindow++
					if inWindow > maxInWindow {
						maxInWindow = inWindow
					}
					inWindow--
				})
			}
			return nil
		}
	}
	b.Run(fibers)
	if maxInWindow != 1 {
		t.Errorf("exclusive windows overlapped: max concurrency %d", maxInWindow)
	}
}

// TestBatchFiberPanicRepropagates: a panicking fiber must not crash the
// process from its own goroutine; Run re-raises the panic on the caller
// after the surviving fibers drain.
func TestBatchFiberPanicRepropagates(t *testing.T) {
	probs := newHostileTrio()
	b := NewBatch[dvec](2, FusedOps[dvec]{})
	opt := DefaultNewtonOptions()
	opt.MaxIters = 5
	var survived *Result[dvec]
	fibers := []func() error{
		func() error { panic("fiber 0 exploded") },
		func() error {
			obj := b.Gate(1, probs[1], false)
			survived = GaussNewton[dvec](obj, make(dvec, len(probs[1].b)), opt)
			return nil
		},
	}
	defer func() {
		pv := recover()
		if pv != "fiber 0 exploded" {
			t.Fatalf("want re-raised fiber panic, got %v", pv)
		}
		if survived == nil {
			t.Error("surviving fiber did not complete before the re-raise")
		}
	}()
	b.Run(fibers)
	t.Fatal("Run returned instead of re-raising the fiber panic")
}
