package serve

import (
	"errors"
	"fmt"
	"time"

	"diffreg"
	"diffreg/internal/ckpt"
	"diffreg/internal/mpi"
	"diffreg/internal/prec"
)

// Job fusion: with Config.MaxBatch > 1 a dispatcher sits between the
// admission queue and the workers. It holds each fusable job for a short
// admission window, groups queued jobs of identical fusion shape —
// (grid, tasks, precision, cache opt-out) — up to MaxBatch, and hands
// the group to a worker, which executes it as ONE fused solver pass via
// diffreg.RegisterFused. Jobs of a different shape arriving inside the
// window are dispatched solo immediately (they never wait behind an open
// group). Per-job lifecycle — events stream, cancel, timeout, result —
// is unchanged; only the execution vehicle differs.

// FusionStats is the fusion section of GET /stats.
type FusionStats struct {
	// Enabled mirrors MaxBatch > 1.
	Enabled bool `json:"enabled"`
	// MaxBatch is the configured fusion width cap.
	MaxBatch int `json:"max_batch"`
	// Batches counts fused groups executed (width ≥ 2).
	Batches int64 `json:"batches"`
	// FusedJobs counts jobs that ran inside those groups.
	FusedJobs int64 `json:"fused_jobs"`
	// MeanFill is the mean fused-group width over MaxBatch (0 when no
	// fused batch has run).
	MeanFill float64 `json:"mean_fill"`
	// EarlyDropouts counts jobs that left a fused batch while neighbors
	// were still iterating (converged/failed/canceled early).
	EarlyDropouts int64 `json:"early_dropouts"`
	// RequeuedSolo counts members of a fused batch that died of a
	// batch-level comm error and were re-queued to run solo by the retry
	// supervisor instead of failing with the batch.
	RequeuedSolo int64 `json:"requeued_solo"`
}

// fuseKey is the grouping shape of the admission window. Two jobs fuse
// only when their keys are equal; solver knobs not in the key (beta,
// regularization, distance, tolerances, budgets) vary freely inside a
// batch.
type fuseKey struct {
	n         [3]int
	tasks     int
	precision string
	noCache   bool
}

// fusionKey classifies a job: ok=false means the job must run solo
// (shapes the fused pass does not support). Validate has already run, so
// the precision string parses.
func fusionKey(spec *JobSpec) (fuseKey, bool) {
	if spec.MultilevelLevels > 1 || len(spec.ContinuationBetas) > 0 ||
		spec.VelocityIntervals > 1 || spec.Chaos != "" {
		return fuseKey{}, false
	}
	p, err := prec.Parse(spec.Precision)
	if err != nil {
		return fuseKey{}, false
	}
	tasks := spec.Tasks
	if tasks == 0 {
		tasks = 1
	}
	return fuseKey{n: spec.N, tasks: tasks, precision: p.String(), noCache: spec.NoCache}, true
}

// dispatch is the fusion scheduler goroutine: it drains the admission
// queue into per-shape groups bounded by the admission window and the
// batch cap, and feeds the worker channel.
func (s *Server) dispatch(batches chan<- []*Job) {
	defer close(batches)
	window := s.cfg.BatchWindow
	for job := range s.queue {
		key, fusable := fusionKey(&job.Spec)
		if !fusable || job.soloOnly.Load() {
			// soloOnly marks a survivor of a dead fused batch: its first
			// vehicle failed at batch scope, so its retry must not share
			// fate with new neighbors.
			batches <- []*Job{job}
			continue
		}
		group := []*Job{job}
		var overflow []*Job
		timer := time.NewTimer(window)
	collect:
		for len(group) < s.cfg.MaxBatch {
			select {
			case next, ok := <-s.queue:
				if !ok {
					break collect
				}
				if k, f := fusionKey(&next.Spec); f && k == key && !next.soloOnly.Load() {
					group = append(group, next)
				} else {
					// A different shape never waits behind the open group —
					// but the open group never waits behind a plugged worker
					// channel either: the window deadline stays
					// authoritative, and on expiry the solo job ships right
					// after the group instead of blocking it.
					select {
					case batches <- []*Job{next}:
					case <-timer.C:
						overflow = append(overflow, next)
						break collect
					}
				}
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		batches <- group
		for _, solo := range overflow {
			batches <- []*Job{solo}
		}
	}
}

// runBatch executes one dispatched group. Singleton groups take the solo
// path unchanged; larger groups run as one fused solver pass.
func (s *Server) runBatch(group []*Job) {
	if len(group) == 1 {
		s.runJob(group[0])
		return
	}

	// Claim the group's members; jobs canceled while queued drop out here.
	jobs := group[:0]
	for _, job := range group {
		if job.setRunning() {
			jobs = append(jobs, job)
		} else {
			s.canceled.Add(1)
		}
	}
	if len(jobs) == 0 {
		return
	}
	if len(jobs) == 1 {
		s.runClaimed(jobs[0])
		return
	}

	// Materialize every member's inputs BEFORE committing to a fused pass:
	// a member whose volumes fail drops out here, and a group that shrinks
	// below fusion width runs solo — it must be neither counted as fused
	// nor leased a batch-width plan arena.
	fused := make([]diffreg.FusedJob, 0, len(jobs))
	live := make([]*Job, 0, len(jobs))
	for _, job := range jobs {
		template, reference, err := s.volumes(&job.Spec)
		if err != nil {
			s.failed.Add(1)
			job.finish(JobFailed, nil, err.Error(), "solver", nil)
			continue
		}
		cfg := job.Spec.config()
		cfg.StopRequested = job.stop.Load
		cfg.OnProgress = job.progress
		fused = append(fused, diffreg.FusedJob{Template: template, Reference: reference, Config: cfg})
		live = append(live, job)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		// The generator memo makes the survivor's reload cheap; the solo
		// path re-arms its own timeout and plan lease.
		s.runClaimed(live[0])
		return
	}

	s.running.Add(int64(len(live)))
	defer s.running.Add(-int64(len(live)))
	if s.cfg.beforeRun != nil {
		for _, job := range live {
			s.cfg.beforeRun(job)
		}
	}
	for _, job := range live {
		if timeout := job.Spec.effectiveTimeout(s.cfg.DefaultTimeout); timeout > 0 {
			job := job
			timer := time.AfterFunc(timeout, func() {
				job.timedOut.Store(true)
				job.stop.Store(true)
			})
			defer timer.Stop()
		}
	}
	var rec *sourceRecorder
	if s.cache != nil && !live[0].Spec.NoCache {
		// One batch-wide lease (keyed by width B+1); RegisterFused reads
		// the plan source from the first job's config.
		rec = &sourceRecorder{pc: s.cache}
		fused[0].Config.Plans = rec
	}

	s.fusionBatches.Add(1)
	s.fusionJobs.Add(int64(len(live)))
	for _, job := range live {
		s.journalAttempt(job)
	}
	s.logf("fused batch of %d: %v tasks=%d", len(live), live[0].Spec.N, fused[0].Config.Tasks)

	run := diffreg.RegisterFused
	if s.cfg.runFused != nil {
		run = s.cfg.runFused
	}
	t0 := time.Now()
	results, info, err := run(fused)
	wall := time.Since(t0).Seconds()

	if err != nil {
		// A batch-level failure (invalid member, rank failure mid-pass)
		// kills the whole fused pass: the fused world is one solver run.
		// Graceful degradation: a transient comm fault is the batch's
		// fault, not any member's — each survivor is re-queued to run solo
		// under its retry budget instead of failing with the batch.
		kind := "solver"
		var ce *mpi.CommError
		if errors.As(err, &ce) {
			kind = "comm"
		}
		for _, job := range live {
			if s.maybeRetry(job, err.Error(), kind, true) {
				s.fusionRequeued.Add(1)
				continue
			}
			s.failed.Add(1)
			job.finish(JobFailed, nil, err.Error(), kind, nil)
		}
		s.logf("fused batch failed (%s): %v", kind, err)
		return
	}
	if info != nil {
		s.fusionDropouts.Add(int64(info.EarlyDropouts))
	}
	for i, job := range live {
		s.finishSolved(job, results[i], wall, rec)
	}
}

// journalAttempt records the start of the job's current execution attempt
// (a lost journal must not kill live jobs, so errors only log).
func (s *Server) journalAttempt(job *Job) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Attempt(job.ID, job.Attempts()); err != nil {
		s.logf("journal: attempt %s: %v", job.ID, err)
	}
}

// runClaimed is runJob for a job that already passed setRunning (a fused
// group that shrank to one member before launch).
func (s *Server) runClaimed(job *Job) {
	s.running.Add(1)
	defer s.running.Add(-1)
	s.journalAttempt(job)
	if s.cfg.beforeRun != nil {
		s.cfg.beforeRun(job)
	}
	template, reference, err := s.volumes(&job.Spec)
	if err != nil {
		s.failed.Add(1)
		job.finish(JobFailed, nil, err.Error(), "solver", nil)
		return
	}
	attempt := job.Attempts()
	cfg := job.Spec.config()
	cfg.StopRequested = job.stop.Load
	cfg.OnProgress = job.progress
	if attempt > 1 {
		// Injected faults model a transient environment failure bound to
		// the attempt that hit it; the spec's deterministic fault plan
		// would refire on every retry and exhaust the budget by
		// construction.
		cfg.ChaosSpec = ""
	}
	if sp := s.spoolPath(job); sp != "" {
		cfg.CheckpointPath = sp
		cfg.CheckpointEvery = s.cfg.Retry.CheckpointEvery
		if ckpt.HasCheckpoint(sp) {
			cfg.Resume = true
			s.retryResumed.Add(1)
			s.logf("%s attempt %d resuming from spool checkpoint", job.ID, attempt)
		}
	}
	var rec *sourceRecorder
	if s.cache != nil && !job.Spec.NoCache {
		rec = &sourceRecorder{pc: s.cache}
		cfg.Plans = rec
	}
	if timeout := job.Spec.effectiveTimeout(s.cfg.DefaultTimeout); timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			job.timedOut.Store(true)
			job.stop.Store(true)
		})
		defer timer.Stop()
	}
	t0 := time.Now()
	res, err := diffreg.Register(template, reference, cfg)
	if err != nil && cfg.Resume {
		var ce *mpi.CommError
		if !errors.As(err, &ce) {
			// The spool checkpoint did not load (torn write, precision
			// mismatch after a config change, stale dims). The spool is a
			// best-effort accelerator, never a correctness dependency:
			// reap it and run the attempt from scratch.
			s.logf("%s spool resume failed, re-running from scratch: %v", job.ID, err)
			if rerr := ckpt.Reap(cfg.CheckpointPath); rerr != nil {
				s.logf("spool: reap %s: %v", job.ID, rerr)
			}
			cfg.Resume = false
			res, err = diffreg.Register(template, reference, cfg)
		}
	}
	wall := time.Since(t0).Seconds()
	if err != nil {
		kind := "solver"
		var ce *mpi.CommError
		if errors.As(err, &ce) {
			kind = "comm"
		}
		if s.maybeRetry(job, err.Error(), kind, false) {
			return
		}
		s.failed.Add(1)
		job.finish(JobFailed, nil, err.Error(), kind, nil)
		s.logf("%s failed (%s): %v", job.ID, kind, err)
		return
	}
	s.finishSolved(job, res, wall, rec)
}

// finishSolved maps one completed solve onto the job lifecycle — the
// shared tail of the solo and fused execution paths.
func (s *Server) finishSolved(job *Job, res *diffreg.Result, wall float64, rec *sourceRecorder) {
	switch {
	case res.Failed:
		s.failed.Add(1)
		job.finish(JobFailed, nil, res.FailReason, "solver", res.Degradations)
		s.logf("%s failed: %s", job.ID, res.FailReason)
	case res.Interrupted && job.timedOut.Load():
		s.failed.Add(1)
		job.finish(JobFailed, buildResult(res, wall, rec, &job.Spec),
			fmt.Sprintf("watchdog: job exceeded its timeout; stopped cooperatively after %d iterations", res.NewtonIters),
			"timeout", res.Degradations)
		s.logf("%s timed out after %d iterations", job.ID, res.NewtonIters)
	case res.Interrupted && job.canceled.Load():
		s.canceled.Add(1)
		job.finish(JobCanceled, buildResult(res, wall, rec, &job.Spec), "canceled", "", res.Degradations)
		s.logf("%s canceled after %d iterations", job.ID, res.NewtonIters)
	case res.Interrupted:
		s.canceled.Add(1)
		job.finish(JobCanceled, buildResult(res, wall, rec, &job.Spec), "server shutdown", "shutdown", res.Degradations)
	default:
		s.done.Add(1)
		if job.Attempts() > 1 {
			s.retryRecovered.Add(1)
		}
		job.finish(JobDone, buildResult(res, wall, rec, &job.Spec), "", "", res.Degradations)
		s.logf("%s done: misfit %.3e -> %.3e in %.2fs", job.ID, res.MisfitInit, res.MisfitFinal, wall)
	}
}
