package tsreg

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/optim"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// SeriesProblem combines the two extensions §V of the paper pairs
// together: multiframe (4D) data AND a non-stationary velocity ("[the
// extension to time-varying velocities] will be necessary to register
// time-series of images or optical flow problems"). The velocity has one
// piecewise-constant coefficient per frame interval, so each segment of
// the sequence is matched by its own flow while the overall trajectory
// stays a single continuous deformation.
type SeriesProblem struct {
	Ops    *spectral.Ops
	TS     *transport.Solver
	Frames []*field.Scalar
	Opt    regopt.Options
	NC     int // velocity intervals == frame intervals

	stepsPerFrame int
	cur           *SeriesEval

	StateSolves int
	Matvecs     int
}

// NewSeries builds the time-varying multiframe problem: one velocity
// coefficient per frame interval; Opt.Nt must be divisible by the number
// of intervals.
func NewSeries(ops *spectral.Ops, frames []*field.Scalar, opt regopt.Options) (*SeriesProblem, error) {
	if opt.Beta <= 0 {
		return nil, fmt.Errorf("tsreg: beta must be positive, got %g", opt.Beta)
	}
	k := len(frames) - 1
	if k < 1 {
		return nil, fmt.Errorf("tsreg: need at least 2 frames, got %d", len(frames))
	}
	if opt.Nt < k || opt.Nt%k != 0 {
		return nil, fmt.Errorf("tsreg: nt=%d not divisible by %d frame intervals", opt.Nt, k)
	}
	return &SeriesProblem{
		Ops:           ops,
		TS:            transport.NewSolver(ops, opt.Nt),
		Frames:        frames,
		Opt:           opt,
		NC:            k,
		stepsPerFrame: opt.Nt / k,
	}, nil
}

// SeriesEval caches one evaluation point.
type SeriesEval struct {
	V       field.Series
	SC      *transport.SeriesContext
	States  [][]float64
	GradRho [][3][]float64
	LamPre  [][]float64
	LamPost [][]float64

	J      float64
	Misfit float64
	G      field.Series
	Gnorm  float64
}

func (p *SeriesProblem) frameAt(j int) int {
	if j == 0 || j%p.stepsPerFrame != 0 {
		return -1
	}
	return j / p.stepsPerFrame
}

func (p *SeriesProblem) regApply(v *field.Vector) *field.Vector {
	if p.Opt.Reg == regopt.RegH1 {
		lap := p.Ops.VecLap(v)
		lap.Scale(-1)
		return lap
	}
	return p.Ops.Biharm(v)
}

func (p *SeriesProblem) projectOne(v *field.Vector) *field.Vector {
	if p.Opt.Incompressible {
		return p.Ops.Leray(v)
	}
	return v
}

// evaluate runs the forward solve and the frame misfits.
func (p *SeriesProblem) evaluate(vs field.Series) (*SeriesEval, error) {
	sc, err := p.TS.NewSeriesContext(vs, p.Opt.Incompressible)
	if err != nil {
		return nil, err
	}
	e := &SeriesEval{V: vs, SC: sc}
	e.States = p.TS.StateSeries(sc, p.Frames[0])
	p.StateSolves++
	res := field.NewScalar(p.Ops.Pe)
	for j := 0; j <= p.Opt.Nt; j++ {
		k := p.frameAt(j)
		if k < 0 {
			continue
		}
		for i := range res.Data {
			res.Data[i] = e.States[j][i] - p.Frames[k].Data[i]
		}
		e.Misfit += 0.5 * res.Dot(res)
	}
	e.J = e.Misfit
	for _, v := range vs {
		av := p.regApply(v)
		e.J += 0.5 * p.Opt.Beta * av.Dot(v) / float64(p.NC)
	}
	return e, nil
}

// Evaluate implements optim.Objective.
func (p *SeriesProblem) Evaluate(vs field.Series) optim.ObjVals {
	e, err := p.evaluate(vs)
	if err != nil {
		panic(err)
	}
	return optim.ObjVals{J: e.J, Misfit: e.Misfit}
}

// adjointSweep runs backward with the time-varying velocity, applying the
// given jumps at the frame times (stored pre/post as in the stationary
// multiframe problem).
func (p *SeriesProblem) adjointSweep(sc *transport.SeriesContext, jumps map[int][]float64) (lamPre, lamPost [][]float64) {
	nt := p.Opt.Nt
	n := len(p.Frames[0].Data)
	lamPre = make([][]float64, nt+1)
	lamPost = make([][]float64, nt+1)
	cur := make([]float64, n)
	lamPre[nt] = cur
	if j, ok := jumps[nt]; ok {
		next := make([]float64, n)
		copy(next, j)
		cur = next
	}
	lamPost[nt] = cur
	for step := nt - 1; step >= 0; step-- {
		cur = p.TS.AdjointStepSeries(sc, step, cur)
		lamPre[step] = cur
		if j, ok := jumps[step]; ok {
			next := make([]float64, n)
			for i := range next {
				next[i] = cur[i] + j[i]
			}
			cur = next
		}
		lamPost[step] = cur
	}
	return lamPre, lamPost
}

// accumulateBInterval integrates lam grad rho over interval c with the
// one-sided adjoint limits at the frame jumps.
func (p *SeriesProblem) accumulateBInterval(c int, lamPre, lamPost [][]float64, gradRho [][3][]float64) *field.Vector {
	nt := p.Opt.Nt
	dt := 1 / float64(nt)
	m := nt / p.NC
	b := field.NewVector(p.Ops.Pe)
	for j := c * m; j < (c+1)*m; j++ {
		left := lamPre[j]
		right := lamPost[j+1]
		for d := 0; d < 3; d++ {
			grL := gradRho[j][d]
			grR := gradRho[j+1][d]
			dst := b.C[d].Data
			for i := range dst {
				dst[i] += 0.5 * dt * (left[i]*grL[i] + right[i]*grR[i])
			}
		}
	}
	return b
}

// EvalGradient implements optim.Objective.
func (p *SeriesProblem) EvalGradient(vs field.Series) optim.GradVals[field.Series] {
	e, err := p.evaluate(vs)
	if err != nil {
		panic(err)
	}
	n := len(p.Frames[0].Data)
	jumps := map[int][]float64{}
	for j := 0; j <= p.Opt.Nt; j++ {
		k := p.frameAt(j)
		if k < 0 {
			continue
		}
		jump := make([]float64, n)
		for i := range jump {
			jump[i] = p.Frames[k].Data[i] - e.States[j][i]
		}
		jumps[j] = jump
	}
	e.LamPre, e.LamPost = p.adjointSweep(e.SC, jumps)
	e.GradRho = p.TS.GradSlices(e.States)

	g := make(field.Series, p.NC)
	for c := 0; c < p.NC; c++ {
		b := p.accumulateBInterval(c, e.LamPre, e.LamPost, e.GradRho)
		gc := p.regApply(vs[c])
		gc.Scale(p.Opt.Beta)
		pb := p.projectOne(b)
		pb.Scale(float64(p.NC))
		gc.Axpy(1, pb)
		g[c] = gc
	}
	e.G = g
	e.Gnorm = g.NormL2()
	p.cur = e
	return optim.GradVals[field.Series]{J: e.J, Misfit: e.Misfit, G: g, Gnorm: e.Gnorm}
}

// HessMatVec implements optim.Objective (Gauss-Newton).
func (p *SeriesProblem) HessMatVec(vts field.Series) field.Series {
	e := p.cur
	if e == nil {
		panic("tsreg: series HessMatVec before EvalGradient")
	}
	p.Matvecs++
	incStates := p.TS.IncStateSeries(e.SC, e.GradRho, vts)
	n := len(p.Frames[0].Data)
	jumps := map[int][]float64{}
	for j := 0; j <= p.Opt.Nt; j++ {
		if p.frameAt(j) < 0 {
			continue
		}
		jump := make([]float64, n)
		for i := range jump {
			jump[i] = -incStates[j][i]
		}
		jumps[j] = jump
	}
	lamPre, lamPost := p.adjointSweep(e.SC, jumps)
	h := make(field.Series, p.NC)
	for c := 0; c < p.NC; c++ {
		bt := p.accumulateBInterval(c, lamPre, lamPost, e.GradRho)
		hc := p.regApply(vts[c])
		hc.Scale(p.Opt.Beta)
		pb := p.projectOne(bt)
		pb.Scale(float64(p.NC))
		hc.Axpy(1, pb)
		h[c] = hc
	}
	return h
}

// ApplyPrec implements optim.Objective per interval.
func (p *SeriesProblem) ApplyPrec(r field.Series) field.Series {
	beta := p.Opt.Beta
	h2 := p.Opt.Reg == regopt.RegH2
	out := make(field.Series, len(r))
	for c := range r {
		out[c] = p.Ops.DiagVector(r[c], func(k1, k2, k3 int) float64 {
			q := float64(k1*k1 + k2*k2 + k3*k3)
			a := q
			if h2 {
				a = q * q
			}
			if a == 0 {
				a = 1
			}
			return 1 / (beta * a)
		})
	}
	return out
}

// Project implements optim.Objective per interval.
func (p *SeriesProblem) Project(vs field.Series) field.Series {
	out := make(field.Series, len(vs))
	for c := range vs {
		out[c] = p.projectOne(vs[c])
	}
	return out
}

var _ optim.Objective[field.Series] = (*SeriesProblem)(nil)
