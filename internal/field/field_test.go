package field

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

func withPencil(t *testing.T, g grid.Grid, p int, fn func(pe *grid.Pencil) error) {
	t.Helper()
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		return fn(pe)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScalarBasicOps(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 2, func(pe *grid.Pencil) error {
		s := NewScalar(pe)
		s.Fill(2)
		x := NewScalar(pe)
		x.Fill(3)
		s.Axpy(2, x) // 2 + 6 = 8
		for _, v := range s.Data {
			if v != 8 {
				t.Fatalf("axpy: %g", v)
			}
		}
		s.Scale(0.5)
		if s.Max() != 4 || s.Min() != 4 || s.Mean() != 4 {
			t.Errorf("scale: max %g min %g mean %g", s.Max(), s.Min(), s.Mean())
		}
		c := s.Clone()
		c.Fill(0)
		if s.Max() != 4 {
			t.Errorf("clone aliases")
		}
		d := NewScalar(pe)
		d.CopyFrom(s)
		if d.MaxAbs() != 4 {
			t.Errorf("copyfrom")
		}
		return nil
	})
}

func TestScalarDotIsQuadrature(t *testing.T) {
	// <1, 1> over [0,2pi)^3 must equal the domain volume (2pi)^3, and
	// <sin x1, sin x1> must equal half the volume, independent of p.
	g := grid.MustNew(16, 16, 16)
	vol := math.Pow(2*math.Pi, 3)
	for _, p := range []int{1, 4} {
		withPencil(t, g, p, func(pe *grid.Pencil) error {
			one := NewScalar(pe)
			one.Fill(1)
			if got := one.Dot(one); math.Abs(got-vol) > 1e-9 {
				t.Errorf("p=%d: <1,1> = %g want %g", p, got, vol)
			}
			s := NewScalar(pe)
			s.SetFunc(func(x1, _, _ float64) float64 { return math.Sin(x1) })
			if got := s.Dot(s); math.Abs(got-vol/2) > 1e-9 {
				t.Errorf("p=%d: <sin,sin> = %g want %g", p, got, vol/2)
			}
			if got := s.NormL2(); math.Abs(got-math.Sqrt(vol/2)) > 1e-9 {
				t.Errorf("p=%d: ||sin|| = %g", p, got)
			}
			return nil
		})
	}
}

func TestScalarReductionsMatchSerial(t *testing.T) {
	g := grid.MustNew(8, 12, 8)
	vals := make([]float64, g.Total())
	rng := rand.New(rand.NewSource(5))
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	serialMin, serialMax, serialSum := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range vals {
		serialMin = math.Min(serialMin, v)
		serialMax = math.Max(serialMax, v)
		serialSum += v
	}
	withPencil(t, g, 6, func(pe *grid.Pencil) error {
		s := NewScalar(pe)
		n := g.N
		pe.EachLocal(func(i1, i2, i3, idx int) {
			s.Data[idx] = vals[((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2]+pe.Lo[2]+i3]
		})
		if s.Min() != serialMin || s.Max() != serialMax {
			t.Errorf("min/max: %g/%g want %g/%g", s.Min(), s.Max(), serialMin, serialMax)
		}
		if math.Abs(s.Mean()-serialSum/float64(g.Total())) > 1e-12 {
			t.Errorf("mean %g", s.Mean())
		}
		return nil
	})
}

func TestVectorOps(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 2, func(pe *grid.Pencil) error {
		v := NewVector(pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return 1, 2, 3
		})
		w := v.Clone()
		w.Scale(2)
		v.Axpy(1, w) // (3, 6, 9)
		if v.C[2].Max() != 9 || v.C[0].Min() != 3 {
			t.Errorf("vector axpy")
		}
		if v.MaxAbs() != 9 {
			t.Errorf("maxabs %g", v.MaxAbs())
		}
		vol := math.Pow(2*math.Pi, 3)
		want := (9.0 + 36 + 81) * vol
		if got := v.Dot(v); math.Abs(got-want) > 1e-9*want {
			t.Errorf("dot %g want %g", got, want)
		}
		u := NewVector(pe)
		u.CopyFrom(v)
		u.Fill(0)
		if v.MaxAbs() != 9 {
			t.Errorf("fill aliased")
		}
		return nil
	})
}

func TestDotSymmetryAndLinearityProperty(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	f := func(seed int64, aRaw uint8) bool {
		ok := true
		a := float64(aRaw%10) - 5
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(seed))
			x := NewScalar(pe)
			y := NewScalar(pe)
			z := NewScalar(pe)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
				y.Data[i] = rng.NormFloat64()
				z.Data[i] = rng.NormFloat64()
			}
			if math.Abs(x.Dot(y)-y.Dot(x)) > 1e-9 {
				ok = false
			}
			// <x + a z, y> == <x,y> + a <z,y>
			lhs := x.Clone()
			lhs.Axpy(a, z)
			if math.Abs(lhs.Dot(y)-(x.Dot(y)+a*z.Dot(y))) > 1e-8 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDotIndependentOfDecompositionProperty(t *testing.T) {
	g := grid.MustNew(8, 12, 8)
	vals := make([]float64, g.Total())
	rng := rand.New(rand.NewSource(17))
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	dots := map[int]float64{}
	for _, p := range []int{1, 2, 4, 6} {
		withPencil(t, g, p, func(pe *grid.Pencil) error {
			s := NewScalar(pe)
			n := g.N
			pe.EachLocal(func(i1, i2, i3, idx int) {
				s.Data[idx] = vals[((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2]+pe.Lo[2]+i3]
			})
			d := s.Dot(s)
			// Dot is an allreduce, so every rank holds the same value;
			// only rank 0 writes the shared map (the rank goroutines run
			// this closure concurrently).
			if pe.Comm.Rank() == 0 {
				dots[p] = d
			}
			return nil
		})
	}
	for p, d := range dots {
		if math.Abs(d-dots[1]) > 1e-9*math.Abs(dots[1]) {
			t.Errorf("dot differs at p=%d: %g vs %g", p, d, dots[1])
		}
	}
}

func TestSeriesVecOps(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 1, func(pe *grid.Pencil) error {
		s := NewSeries(pe, 2)
		if len(s) != 2 {
			t.Fatalf("series length %d", len(s))
		}
		s[0].Fill(1)
		s[1].Fill(3)
		x := s.Clone()
		x.Scale(2) // (2, 6)
		s.Axpy(1, x)
		if s[0].C[0].Max() != 3 || s[1].C[0].Max() != 9 {
			t.Errorf("series axpy: %g %g", s[0].C[0].Max(), s[1].C[0].Max())
		}
		if s.MaxAbs() != 9 {
			t.Errorf("series maxabs %g", s.MaxAbs())
		}
		// The series inner product averages over intervals: a constant
		// series (a, a) must have the same norm as the stationary field a.
		c := NewSeries(pe, 2)
		c[0].Fill(2)
		c[1].Fill(2)
		single := NewVector(pe)
		single.Fill(2)
		if math.Abs(c.NormL2()-single.NormL2()) > 1e-12 {
			t.Errorf("series norm %g vs stationary %g", c.NormL2(), single.NormL2())
		}
		// Clone must not alias.
		cl := s.Clone()
		cl.Scale(0)
		if s.MaxAbs() != 9 {
			t.Errorf("series clone aliases")
		}
		return nil
	})
}

func TestSeriesLengthMismatchPanics(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withPencil(t, g, 1, func(pe *grid.Pencil) error {
		a := NewSeries(pe, 2)
		b := NewSeries(pe, 3)
		defer func() {
			if recover() == nil {
				t.Error("length mismatch did not panic")
			}
		}()
		a.Axpy(1, b)
		return nil
	})
}

func TestVectorSetFuncAndNorm(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withPencil(t, g, 4, func(pe *grid.Pencil) error {
		v := NewVector(pe)
		v.SetFunc(func(x1, _, _ float64) (float64, float64, float64) {
			return math.Sin(x1), 0, 0
		})
		vol := math.Pow(2*math.Pi, 3)
		if got := v.NormL2(); math.Abs(got-math.Sqrt(vol/2)) > 1e-9 {
			t.Errorf("vector norm %g", got)
		}
		return nil
	})
}
