// Package prec names the floating-point precision a solver pipeline runs
// its hot paths at. The float64 path is the bit-exact reference; the
// float32 path narrows the pencil-transpose wire format and the
// semi-Lagrangian gather while keeping every reduction (misfit, gradient
// inner products, conservation sums) accumulated in float64, following
// the GPU CLAIRE mixed-precision recipe (arXiv:2401.17493).
package prec

import "fmt"

// Precision selects the hot-path floating-point width. The zero value is
// F64, so existing call sites that never mention precision keep the
// reference behaviour.
type Precision int

const (
	// F64 is the full float64 reference path (default).
	F64 Precision = iota
	// F32 runs transport/interpolation kernels and the pencil-transpose
	// wire format in float32 with float64 accumulation.
	F32
)

// String returns the canonical spelling used by CLI flags, JSON specs,
// and checkpoint headers.
func (p Precision) String() string {
	if p == F32 {
		return "float32"
	}
	return "float64"
}

// WireBytesPerValue returns the bytes one real scalar occupies on the
// transpose wire at this precision.
func (p Precision) WireBytesPerValue() int {
	if p == F32 {
		return 4
	}
	return 8
}

// Parse maps user-facing spellings to a Precision. The empty string means
// the default (float64) so optional flags and omitted JSON fields work
// unchanged.
func Parse(s string) (Precision, error) {
	switch s {
	case "", "float64", "f64", "fp64", "double":
		return F64, nil
	case "float32", "f32", "fp32", "single":
		return F32, nil
	default:
		return F64, fmt.Errorf("prec: unknown precision %q (want float64 or float32)", s)
	}
}
