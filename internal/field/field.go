// Package field provides distributed scalar and vector fields living on a
// pencil-decomposed grid, together with the BLAS-1 style operations
// (axpy, dot, norms) the Newton-Krylov solver needs. Reductions are exact
// collectives over the pencil communicator; this plays the role the PETSc
// Vec layer plays in the paper's implementation.
package field

import (
	"math"

	"diffreg/internal/grid"
	"diffreg/internal/par"
)

// Scalar is one rank's portion of a distributed scalar field.
type Scalar struct {
	P    *grid.Pencil
	Data []float64
}

// NewScalar allocates a zero-valued scalar field on the pencil.
func NewScalar(p *grid.Pencil) *Scalar {
	return &Scalar{P: p, Data: make([]float64, p.LocalTotal())}
}

// Clone returns a deep copy of the field.
func (s *Scalar) Clone() *Scalar {
	out := NewScalar(s.P)
	copy(out.Data, s.Data)
	return out
}

// CopyFrom overwrites the field with the values of src.
func (s *Scalar) CopyFrom(src *Scalar) { copy(s.Data, src.Data) }

// Fill sets every local value to v.
func (s *Scalar) Fill(v float64) {
	data := s.Data
	par.For(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = v
		}
	})
}

// SetFunc evaluates fn at every owned grid point (on the worker pool; fn
// must be safe to call concurrently).
func (s *Scalar) SetFunc(fn func(x1, x2, x3 float64) float64) {
	s.P.EachLocalPar(func(i1, i2, i3, idx int) {
		x1, x2, x3 := s.P.Coords(i1, i2, i3)
		s.Data[idx] = fn(x1, x2, x3)
	})
}

// Axpy computes s += a*x.
func (s *Scalar) Axpy(a float64, x *Scalar) {
	dst, src := s.Data, x.Data
	par.For(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += a * src[i]
		}
	})
}

// Scale multiplies the field by a.
func (s *Scalar) Scale(a float64) {
	data := s.Data
	par.For(len(data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] *= a
		}
	})
}

// Dot returns the global L2 inner product <s, t> including the quadrature
// weight (cell volume), so it approximates the continuous integral. The
// local reduction runs on the worker pool with fixed chunk association, so
// the result is bit-identical for every pool size.
func (s *Scalar) Dot(t *Scalar) float64 {
	local := localDot(s.Data, t.Data)
	return s.P.Comm.AllreduceSum(local) * s.P.Grid.CellVolume()
}

// localDot is the deterministic chunked dot product of two local arrays.
func localDot(a, b []float64) float64 {
	return par.Sum(len(a), func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += a[i] * b[i]
		}
		return sum
	})
}

// NormL2 returns the continuous L2 norm sqrt(integral s^2).
func (s *Scalar) NormL2() float64 { return math.Sqrt(s.Dot(s)) }

// AllFinite reports whether every value of the distributed field is finite
// (no NaN, no infinity). It is a collective operation — all ranks call it
// and receive the same answer — implemented as an allreduce of the local
// non-finite count (a max-norm would silently drop NaNs, since NaN
// comparisons are always false).
func (s *Scalar) AllFinite() bool {
	data := s.Data
	local := par.Sum(len(data), func(lo, hi int) float64 {
		bad := 0.0
		for i := lo; i < hi; i++ {
			if math.IsNaN(data[i]) || math.IsInf(data[i], 0) {
				bad++
			}
		}
		return bad
	})
	return s.P.Comm.AllreduceSum(local) == 0
}

// MaxAbs returns the global max-norm.
func (s *Scalar) MaxAbs() float64 {
	data := s.Data
	local := par.Reduce(len(data), 0, func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			if a := math.Abs(data[i]); a > m {
				m = a
			}
		}
		return m
	}, math.Max)
	return s.P.Comm.AllreduceMax(local)
}

// Min returns the global minimum value.
func (s *Scalar) Min() float64 {
	data := s.Data
	local := par.Reduce(len(data), math.Inf(1), func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if data[i] < m {
				m = data[i]
			}
		}
		return m
	}, math.Min)
	return s.P.Comm.AllreduceMin(local)
}

// Max returns the global maximum value.
func (s *Scalar) Max() float64 {
	data := s.Data
	local := par.Reduce(len(data), math.Inf(-1), func(lo, hi int) float64 {
		m := math.Inf(-1)
		for i := lo; i < hi; i++ {
			if data[i] > m {
				m = data[i]
			}
		}
		return m
	}, math.Max)
	return s.P.Comm.AllreduceMax(local)
}

// Mean returns the global mean value.
func (s *Scalar) Mean() float64 {
	data := s.Data
	local := par.Sum(len(data), func(lo, hi int) float64 {
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += data[i]
		}
		return sum
	})
	return s.P.Comm.AllreduceSum(local) / float64(s.P.Grid.Total())
}

// Vector is a three-component distributed vector field.
type Vector struct {
	P *grid.Pencil
	C [3]*Scalar
}

// NewVector allocates a zero vector field on the pencil.
func NewVector(p *grid.Pencil) *Vector {
	return &Vector{P: p, C: [3]*Scalar{NewScalar(p), NewScalar(p), NewScalar(p)}}
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.P)
	for d := 0; d < 3; d++ {
		copy(out.C[d].Data, v.C[d].Data)
	}
	return out
}

// CopyFrom overwrites v with src.
func (v *Vector) CopyFrom(src *Vector) {
	for d := 0; d < 3; d++ {
		copy(v.C[d].Data, src.C[d].Data)
	}
}

// Fill sets every component of every point to a.
func (v *Vector) Fill(a float64) {
	for d := 0; d < 3; d++ {
		v.C[d].Fill(a)
	}
}

// SetFunc evaluates a vector-valued function at every owned point (on the
// worker pool; fn must be safe to call concurrently).
func (v *Vector) SetFunc(fn func(x1, x2, x3 float64) (float64, float64, float64)) {
	v.P.EachLocalPar(func(i1, i2, i3, idx int) {
		x1, x2, x3 := v.P.Coords(i1, i2, i3)
		a, b, c := fn(x1, x2, x3)
		v.C[0].Data[idx] = a
		v.C[1].Data[idx] = b
		v.C[2].Data[idx] = c
	})
}

// Axpy computes v += a*x.
func (v *Vector) Axpy(a float64, x *Vector) {
	for d := 0; d < 3; d++ {
		v.C[d].Axpy(a, x.C[d])
	}
}

// Scale multiplies the field by a.
func (v *Vector) Scale(a float64) {
	for d := 0; d < 3; d++ {
		v.C[d].Scale(a)
	}
}

// Dot returns the global L2 inner product summed over components. Like
// Scalar.Dot, the reduction association is fixed, so the result does not
// depend on the pool size.
func (v *Vector) Dot(w *Vector) float64 {
	local := 0.0
	for d := 0; d < 3; d++ {
		local += localDot(v.C[d].Data, w.C[d].Data)
	}
	return v.P.Comm.AllreduceSum(local) * v.P.Grid.CellVolume()
}

// NormL2 returns the continuous L2 norm of the vector field.
func (v *Vector) NormL2() float64 { return math.Sqrt(v.Dot(v)) }

// AllFinite reports whether every component value is finite. Collective:
// all ranks must call it, and all receive the same answer.
func (v *Vector) AllFinite() bool {
	ok := true
	for d := 0; d < 3; d++ {
		// Each component check is itself collective, so every rank runs all
		// three — no short-circuit.
		if !v.C[d].AllFinite() {
			ok = false
		}
	}
	return ok
}

// MaxAbs returns the global max-norm over all components.
func (v *Vector) MaxAbs() float64 {
	m := 0.0
	for d := 0; d < 3; d++ {
		if a := v.C[d].MaxAbs(); a > m {
			m = a
		}
	}
	return m
}
