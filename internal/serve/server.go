package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diffreg"
)

// Config sizes the server. Zero values take the documented defaults; set
// CacheEntries negative to disable the plan cache.
type Config struct {
	// Workers is the number of concurrent solver slots (default 2). Each
	// running job additionally spawns its own Tasks rank goroutines.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (default 16).
	// Submissions beyond the cap are rejected — HTTP 429.
	QueueDepth int
	// CacheEntries is the plan-cache capacity in operator-set collections
	// (default 2*Workers; negative disables caching).
	CacheEntries int
	// DefaultTimeout is the per-job cooperative timeout applied when a spec
	// carries none (0 = no default timeout).
	DefaultTimeout time.Duration
	// Logf receives server lifecycle lines (nil discards).
	Logf func(format string, args ...any)

	// MaxBatch enables job fusion when > 1: queued jobs of identical
	// fusion shape — (grid, tasks, precision, cache opt-out) — are
	// grouped up to this width and executed as one fused solver pass
	// (see diffreg.RegisterFused). Per-job results are bit-identical to
	// solo execution. 0 or 1 disables fusion.
	MaxBatch int
	// BatchWindow is how long the fusion dispatcher holds a fusable job
	// open for same-shape companions before dispatching (default 25ms).
	// Only meaningful with MaxBatch > 1.
	BatchWindow time.Duration

	// beforeRun, when set, runs in the worker immediately before a job's
	// solve starts — a test hook for making "worker busy" deterministic.
	beforeRun func(*Job)
}

// Submission errors surfaced by Submit (mapped to HTTP statuses by the
// handler).
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrClosed    = errors.New("serve: server is shutting down")
)

// SpecError marks a malformed job spec (HTTP 400).
type SpecError struct{ Err error }

func (e *SpecError) Error() string { return "serve: bad job spec: " + e.Err.Error() }
func (e *SpecError) Unwrap() error { return e.Err }

// ServerStats is the GET /stats body.
type ServerStats struct {
	Workers      int         `json:"workers"`
	QueueDepth   int         `json:"queue_depth"`
	Queued       int         `json:"queued"`
	Running      int64       `json:"running"`
	Done         int64       `json:"done"`
	Failed       int64       `json:"failed"`
	Canceled     int64       `json:"canceled"`
	Rejected     int64       `json:"rejected"`
	Cache        CacheStats  `json:"cache"`
	CacheEnabled bool        `json:"cache_enabled"`
	Fusion       FusionStats `json:"fusion"`
}

// Server is the registration job server: a bounded queue feeding a fixed
// worker pool, a job store, and the plan cache. Create with New, serve its
// Handler over HTTP, stop with Close.
type Server struct {
	cfg   Config
	cache *PlanCache // nil when disabled
	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int64
	closed bool

	wg       sync.WaitGroup
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	rejected atomic.Int64

	fusionBatches  atomic.Int64
	fusionJobs     atomic.Int64
	fusionDropouts atomic.Int64

	genMu sync.Mutex
	gen   map[genKey]genPair
}

// genKey identifies one deterministic generator output; memoizing it keeps
// repeat jobs from rebuilding the input pair (and the pfft plan the
// generators spin up internally) on every submission.
type genKey struct {
	generator      string
	n              [3]int
	seedA, seedB   int64
	nt             int
	incompressible bool
}

type genPair struct{ template, reference diffreg.Volume }

// maxGenEntries bounds the generator memo; entries are a pair of n1*n2*n3
// float64 volumes each.
const maxGenEntries = 8

// volumes materializes a job's input pair, memoizing named-generator
// outputs. The generators are deterministic and Register never mutates its
// inputs (both images are scattered into per-rank fields), so sharing one
// backing array across concurrent jobs is safe.
func (s *Server) volumes(spec *JobSpec) (diffreg.Volume, diffreg.Volume, error) {
	if spec.Generator == "" {
		return spec.volumes()
	}
	// The generator memo is part of the warm path: a cache-disabled server
	// (or a NoCache job) regenerates its inputs — and the plans inside the
	// generator — per job, which is what "cold" means operationally.
	if s.cache == nil || spec.NoCache {
		return spec.volumes()
	}
	key := genKey{
		generator: spec.Generator, n: spec.N,
		seedA: spec.SeedA, seedB: spec.SeedB,
		incompressible: spec.Incompressible,
	}
	if spec.Generator == "synthetic" {
		if key.nt = spec.TimeSteps; key.nt == 0 {
			key.nt = 4
		}
	}
	s.genMu.Lock()
	if p, ok := s.gen[key]; ok {
		s.genMu.Unlock()
		return p.template, p.reference, nil
	}
	s.genMu.Unlock()
	template, reference, err := spec.volumes()
	if err != nil {
		return template, reference, err
	}
	s.genMu.Lock()
	if s.gen == nil {
		s.gen = map[genKey]genPair{}
	}
	if len(s.gen) >= maxGenEntries {
		for k := range s.gen { // drop an arbitrary entry; the memo is tiny
			delete(s.gen, k)
			break
		}
	}
	s.gen[key] = genPair{template, reference}
	s.genMu.Unlock()
	return template, reference, nil
}

// New starts the worker pool and returns the server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 2 * cfg.Workers
	}
	s := &Server{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewPlanCache(cfg.CacheEntries)
	}
	if cfg.MaxBatch > 1 {
		// Fusion: one dispatcher groups the queue into fused batches;
		// workers consume groups.
		if s.cfg.BatchWindow <= 0 {
			s.cfg.BatchWindow = 25 * time.Millisecond
		}
		batches := make(chan []*Job, cfg.Workers)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatch(batches)
		}()
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for group := range batches {
					s.runBatch(group)
				}
			}()
		}
		return s
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s
}

// Submit validates and enqueues a job. It returns *SpecError for malformed
// specs, ErrQueueFull when admission control rejects, ErrClosed after
// Close.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, &SpecError{Err: err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%06d", s.seq), spec)
	select {
	case s.queue <- job:
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.mu.Unlock()
		s.logf("accepted %s: %v tasks=%d", job.ID, spec.N, spec.Tasks)
		return job, nil
	default:
		s.seq--
		s.rejected.Add(1)
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Job looks up a tracked job.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cache exposes the plan cache (nil when disabled).
func (s *Server) Cache() *PlanCache { return s.cache }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Workers: s.cfg.Workers, QueueDepth: s.cfg.QueueDepth,
		Queued:  len(s.queue),
		Running: s.running.Load(), Done: s.done.Load(), Failed: s.failed.Load(),
		Canceled: s.canceled.Load(), Rejected: s.rejected.Load(),
		CacheEnabled: s.cache != nil,
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	st.Fusion = FusionStats{
		Enabled:       s.cfg.MaxBatch > 1,
		MaxBatch:      s.cfg.MaxBatch,
		Batches:       s.fusionBatches.Load(),
		FusedJobs:     s.fusionJobs.Load(),
		EarlyDropouts: s.fusionDropouts.Load(),
	}
	if st.Fusion.Batches > 0 {
		st.Fusion.MeanFill = float64(st.Fusion.FusedJobs) / float64(st.Fusion.Batches) / float64(s.cfg.MaxBatch)
	}
	return st
}

// Close stops admission, requests cooperative stop of every non-terminal
// job, and waits for the workers to drain. Queued jobs that never ran are
// finished as canceled.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.stop.Store(true)
		}
	}
	close(s.queue)
	s.wg.Wait()
	// Workers have drained: anything still queued was closed out below in
	// runJob; anything never dequeued is finished here.
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.finish(JobCanceled, nil, "server shutdown before start", "shutdown", nil)
			s.canceled.Add(1)
		}
	}
	s.logf("server closed: %d done, %d failed, %d canceled", s.done.Load(), s.failed.Load(), s.canceled.Load())
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sourceRecorder wraps the cache to record whether this job's lease was a
// hit (reported in the result body).
type sourceRecorder struct {
	pc  *PlanCache
	hit atomic.Bool
}

func (r *sourceRecorder) Acquire(n [3]int, tasks int, precision string, slots int) diffreg.PlanLease {
	lease := r.pc.Acquire(n, tasks, precision, slots)
	if pl, ok := lease.(*planLease); ok && pl.Hit() {
		r.hit.Store(true)
	}
	return lease
}

// runJob executes one dequeued job end to end.
func (s *Server) runJob(job *Job) {
	if !job.setRunning() {
		s.canceled.Add(1) // canceled while queued; the worker skips it
		return
	}
	s.runClaimed(job)
}

func buildResult(res *diffreg.Result, wall float64, rec *sourceRecorder, spec *JobSpec) *JobResult {
	jr := &JobResult{
		Converged: res.Converged, Interrupted: res.Interrupted,
		NewtonIters: res.NewtonIters, HessianMatvecs: res.HessianMatvecs,
		MisfitInit: res.MisfitInit, MisfitFinal: res.MisfitFinal,
		GnormInit: res.GnormInit, GnormFinal: res.GnormFinal,
		DetMin: res.DetMin, DetMax: res.DetMax, DetMean: res.DetMean,
		Degradations:   res.Degradations,
		TimeToSolution: wall,
		FFTs:           res.FFTs, InterpSweeps: res.InterpSweeps,
	}
	if rec != nil {
		jr.CacheHit = rec.hit.Load()
	}
	if spec.ReturnFields {
		jr.Warped = res.Warped.Data
		jr.Velocity = make([][]float64, 3)
		for d := 0; d < 3; d++ {
			jr.Velocity[d] = res.Velocity[d].Data
		}
	}
	return jr
}

// Handler returns the HTTP API:
//
//	POST /jobs            submit a JobSpec        -> 202 {id} | 400 | 429 | 503
//	GET  /jobs            list jobs               -> 200 [{id, state}]
//	GET  /jobs/{id}        job status + result     -> 200 JobStatus | 404
//	GET  /jobs/{id}/events NDJSON progress stream  -> 200 (blocks until terminal)
//	POST /jobs/{id}/cancel cooperative cancel      -> 202 {state} | 404
//	GET  /stats            server + cache counters -> 200 ServerStats
//	GET  /healthz          liveness                -> 200 "ok"
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<30))
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		job, err := s.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.State()})
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		list := make([]map[string]any, 0, len(s.order))
		for _, id := range s.order {
			list = append(list, map[string]any{"id": id, "state": s.jobs[id].State()})
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		// A reconnecting client passes ?from=N with N = the number of
		// events it has already consumed; the stream resumes at event N
		// exactly — no event is replayed, none is skipped.
		next := 0
		if from := r.URL.Query().Get("from"); from != "" {
			v, err := strconv.Atoi(from)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, "from must be a non-negative integer")
				return
			}
			next = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			evs, notify, terminal := job.EventsSince(next)
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			next += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
			if terminal && len(evs) == 0 {
				return
			}
			if terminal {
				continue // drain whatever the terminal transition appended
			}
			select {
			case <-notify:
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.RequestCancel()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
