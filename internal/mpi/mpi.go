// Package mpi implements an in-process message-passing runtime with the
// subset of MPI semantics used by the registration solver: point-to-point
// send/receive, barriers, broadcast, reductions, gather, all-to-all
// (including the variable-count flavor), and communicator splitting.
//
// Ranks are goroutines inside a single OS process. The package exists so
// that the distributed algorithms of the paper (pencil-decomposed FFT
// transposes, semi-Lagrangian scatter plans, ghost-layer exchanges) can be
// implemented with their real communication structure. Every operation is
// additionally charged against a latency/bandwidth cost model so that the
// communication columns of the paper's tables can be regenerated from the
// exact message counts and volumes the algorithms produce.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Phase labels the solver phase to which communication cost is attributed.
// The paper's tables report exactly the first four categories.
type Phase int

const (
	PhaseOther Phase = iota
	PhaseFFTComm
	PhaseFFTExec
	PhaseInterpComm
	PhaseInterpExec
	numPhases
)

// String returns the human-readable phase name used in reports.
func (p Phase) String() string {
	switch p {
	case PhaseFFTComm:
		return "fft-comm"
	case PhaseFFTExec:
		return "fft-exec"
	case PhaseInterpComm:
		return "interp-comm"
	case PhaseInterpExec:
		return "interp-exec"
	default:
		return "other"
	}
}

// CostModel holds the machine constants of the classical latency/bandwidth
// (Hockney) model: a message of n bytes costs Ts + Tw*n seconds.
type CostModel struct {
	Ts float64 // latency per message, seconds
	Tw float64 // reciprocal bandwidth, seconds per byte
}

// DefaultCostModel mirrors a 2016-era fat-tree interconnect (FDR
// InfiniBand): ~2 microseconds latency, ~6 GB/s effective point-to-point
// bandwidth. perfmodel recalibrates these from measured runs.
func DefaultCostModel() CostModel { return CostModel{Ts: 2e-6, Tw: 1.0 / 6e9} }

// message is a single point-to-point payload in flight.
type message struct {
	commID int
	src    int // rank within the communicator
	tag    int
	data   any
	bytes  int
}

// mailbox holds delivered-but-unreceived messages for one world rank.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message matching (commID, src, tag) is available and
// removes it from the queue.
func (m *mailbox) take(commID, src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.commID == commID && msg.src == src && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World is the shared state of one parallel run: the mailboxes of all
// ranks plus communicator-ID bookkeeping.
type World struct {
	size  int
	boxes []*mailbox
	cost  CostModel

	idMu  sync.Mutex
	idMap map[string]int
	idSeq int
}

// commID returns a process-wide communicator ID for the agreed-upon key.
// All members of a split derive the same key deterministically, so the
// first caller allocates and the rest observe the same ID.
func (w *World) commID(key string) int {
	w.idMu.Lock()
	defer w.idMu.Unlock()
	if id, ok := w.idMap[key]; ok {
		return id
	}
	w.idSeq++
	w.idMap[key] = w.idSeq
	return w.idSeq
}

// Stats accumulates per-rank communication statistics and algorithmic
// operation counts (the inputs of the performance model in perfmodel).
type Stats struct {
	Messages     [numPhases]int64
	BytesRecv    [numPhases]int64
	ModeledComm  [numPhases]float64 // seconds charged by the cost model
	MeasuredExec [numPhases]float64 // seconds recorded by AddExec

	FFTs         int64 // 3D transforms performed (forward or inverse)
	InterpSweeps int64 // off-grid interpolation passes over a field
	InterpPoints int64 // tricubic point evaluations

	// Alltoalls counts all-to-all collective invocations (any payload
	// type); each fused pencil transpose issues exactly one, however many
	// fields it carries, so this is the latency-term counter of the
	// ts*sqrt(p) model.
	Alltoalls int64
	// TransposeStages / TransposeFields count the pencil-FFT transpose
	// stages that actually communicated (communicator size > 1) and the
	// field-transposes they carried; Fields/Stages is the achieved
	// batching factor (1 = unbatched, 3 = a full vector per collective).
	TransposeStages int64
	TransposeFields int64
}

// TotalModeled returns the modeled communication time summed over phases.
func (s *Stats) TotalModeled() float64 {
	t := 0.0
	for _, v := range s.ModeledComm {
		t += v
	}
	return t
}

// Comm is one rank's view of a communicator.
type Comm struct {
	world *World
	id    int
	rank  int   // rank within this communicator
	group []int // communicator rank -> world rank
	phase Phase
	stats *Stats

	splitSeq int // number of Split calls issued on this communicator
}

// Run executes fn concurrently on p ranks and blocks until all complete.
// It returns the first non-nil error (if any) and the per-rank stats.
func Run(p int, cost CostModel, fn func(c *Comm) error) ([]*Stats, error) {
	if p < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", p)
	}
	w := &World{size: p, cost: cost, idMap: map[string]int{}}
	w.boxes = make([]*mailbox, p)
	group := make([]int, p)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		group[i] = i
	}
	stats := make([]*Stats, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	var panicVal atomic.Value
	for r := 0; r < p; r++ {
		stats[r] = &Stats{}
		c := &Comm{world: w, id: 0, rank: r, group: group, stats: stats[r]}
		wg.Add(1)
		go func(r int, c *Comm) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicVal.Store(fmt.Sprintf("rank %d: %v", r, v))
				}
			}()
			errs[r] = fn(c)
		}(r, c)
	}
	wg.Wait()
	if v := panicVal.Load(); v != nil {
		return stats, fmt.Errorf("mpi: panic in %s", v)
	}
	for r, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("mpi: rank %d: %w", r, err)
		}
	}
	return stats, nil
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's index in the top-level world.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// SetPhase selects the phase to which subsequent communication cost is
// charged and returns the previous phase so callers can restore it.
func (c *Comm) SetPhase(p Phase) Phase {
	old := c.phase
	c.phase = p
	return old
}

// AddExec records measured execution (computation) time for a phase.
func (c *Comm) AddExec(p Phase, seconds float64) { c.stats.MeasuredExec[p] += seconds }

// CountFFT records one distributed 3D transform.
func (c *Comm) CountFFT() { c.stats.FFTs++ }

// CountFFTs records n distributed 3D transforms at once (a batched pipeline
// carrying n fields still performs n logical transforms).
func (c *Comm) CountFFTs(n int) { c.stats.FFTs += int64(n) }

// CountInterp records one interpolation sweep evaluating n points.
func (c *Comm) CountInterp(n int64) {
	c.stats.InterpSweeps++
	c.stats.InterpPoints += n
}

// CountTranspose records one communicating pencil-transpose stage carrying
// the given number of fields through a single all-to-all.
func (c *Comm) CountTranspose(fields int) {
	c.stats.TransposeStages++
	c.stats.TransposeFields += int64(fields)
}

// Stats returns this rank's accumulated statistics.
func (c *Comm) Stats() *Stats { return c.stats }

// payloadBytes estimates the wire size of a payload for the cost model.
func payloadBytes(data any) int {
	switch d := data.(type) {
	case []float64:
		return 8 * len(d)
	case []complex128:
		return 16 * len(d)
	case []int:
		return 8 * len(d)
	case []byte:
		return len(d)
	case float64, int, int64:
		return 8
	case nil:
		return 0
	default:
		return 64 // opaque struct; charged a nominal size
	}
}

// clonePayload copies slice payloads so sender and receiver never alias.
func clonePayload(data any) any {
	switch d := data.(type) {
	case []float64:
		out := make([]float64, len(d))
		copy(out, d)
		return out
	case []complex128:
		out := make([]complex128, len(d))
		copy(out, d)
		return out
	case []int:
		out := make([]int, len(d))
		copy(out, d)
		return out
	case []byte:
		out := make([]byte, len(d))
		copy(out, d)
		return out
	default:
		return data
	}
}

// Send delivers data to dest (rank within this communicator) with the given
// tag. Sends are buffered and never block.
func (c *Comm) Send(dest, tag int, data any) {
	if dest < 0 || dest >= len(c.group) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dest, len(c.group)))
	}
	n := payloadBytes(data)
	msg := message{commID: c.id, src: c.rank, tag: tag, data: clonePayload(data), bytes: n}
	c.world.boxes[c.group[dest]].put(msg)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Communication cost is charged to the current phase
// on the receiving rank.
func (c *Comm) Recv(src, tag int) any {
	if src < 0 || src >= len(c.group) {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", src, len(c.group)))
	}
	msg := c.world.boxes[c.group[c.rank]].take(c.id, src, tag)
	c.charge(msg.bytes)
	return msg.data
}

// charge records one received message of n bytes against the cost model.
func (c *Comm) charge(n int) {
	c.stats.Messages[c.phase]++
	c.stats.BytesRecv[c.phase] += int64(n)
	c.stats.ModeledComm[c.phase] += c.world.cost.Ts + c.world.cost.Tw*float64(n)
}

// SendRecvFloat64 exchanges float64 slices with two (possibly distinct)
// partners in a single step, which is safe because sends never block.
func (c *Comm) SendRecvFloat64(dest, destTag int, data []float64, src, srcTag int) []float64 {
	c.Send(dest, destTag, data)
	return c.Recv(src, srcTag).([]float64)
}

// Split partitions the communicator by color. Ranks passing the same color
// form a new communicator ordered by (key, rank). All members of the parent
// must call Split collectively the same number of times.
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	all := make([]entry, c.Size())
	mine := entry{color: color, key: key, rank: c.rank}
	// Allgather of the (color, key) triples via flat float64 encoding.
	enc := []float64{float64(color), float64(key), float64(c.rank)}
	gathered := c.Allgather(enc)
	for i := 0; i < c.Size(); i++ {
		all[i] = entry{int(gathered[3*i]), int(gathered[3*i+1]), int(gathered[3*i+2])}
	}
	_ = mine
	var members []entry
	for _, e := range all {
		if e.color == color {
			members = append(members, e)
		}
	}
	// Stable order by (key, rank).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.key < a.key || (b.key == a.key && b.rank < a.rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, e := range members {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			newRank = i
		}
	}
	c.splitSeq++
	key2 := fmt.Sprintf("%d/%d/%d", c.id, c.splitSeq, color)
	id := c.world.commID(key2)
	return &Comm{
		world: c.world,
		id:    id,
		rank:  newRank,
		group: group,
		phase: c.phase,
		stats: c.stats,
	}
}
