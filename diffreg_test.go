package diffreg

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegisterSyntheticPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("not converged: ||g|| %g -> %g", res.GnormInit, res.GnormFinal)
	}
	if res.MisfitFinal > 0.25*res.MisfitInit {
		t.Errorf("misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
	if res.DetMin <= 0 {
		t.Errorf("not a diffeomorphism: det min %g", res.DetMin)
	}
	if len(res.Warped.Data) != 16*16*16 || len(res.DetGrad.Data) != 16*16*16 {
		t.Errorf("global artifacts missing")
	}
	for d := 0; d < 3; d++ {
		if len(res.Velocity[d].Data) != 4096 || len(res.Displacement[d].Data) != 4096 {
			t.Errorf("velocity/displacement missing for dim %d", d)
		}
	}
	// The warped template must be closer to the reference than the
	// original template was.
	var before, after float64
	for i := range ref.Data {
		d0 := tmpl.Data[i] - ref.Data[i]
		d1 := res.Warped.Data[i] - ref.Data[i]
		before += d0 * d0
		after += d1 * d1
	}
	if after >= 0.5*before {
		t.Errorf("warped residual %g vs initial %g", after, before)
	}
}

func TestRegisterValidation(t *testing.T) {
	a := NewVolume(8, 8, 8)
	b := NewVolume(8, 8, 16)
	if _, err := Register(a, b, Config{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	short := Volume{N: [3]int{8, 8, 8}, Data: make([]float64, 10)}
	if _, err := Register(short, short, Config{}); err == nil {
		t.Error("short data accepted")
	}
	tiny := NewVolume(2, 2, 2)
	if _, err := Register(tiny, tiny, Config{}); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestRegisterResultsIndependentOfTasks(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Register(tmpl, ref, Config{Tasks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.MisfitFinal-r4.MisfitFinal) > 1e-9 {
		t.Errorf("misfit depends on task count: %g vs %g", r1.MisfitFinal, r4.MisfitFinal)
	}
	for i := range r1.Warped.Data {
		if math.Abs(r1.Warped.Data[i]-r4.Warped.Data[i]) > 1e-9 {
			t.Fatalf("warped image differs at %d", i)
		}
	}
}

func TestRegisterIncompressiblePublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, Incompressible: true, Beta: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DetMin-1) > 0.05 || math.Abs(res.DetMax-1) > 0.05 {
		t.Errorf("volume not preserved: det in [%g, %g]", res.DetMin, res.DetMax)
	}
}

func TestVolumeAccessors(t *testing.T) {
	v := NewVolume(4, 5, 6)
	v.Set(1, 2, 3, 7.5)
	if v.At(1, 2, 3) != 7.5 {
		t.Errorf("At/Set mismatch")
	}
	if v.At(0, 0, 0) != 0 {
		t.Errorf("zero init")
	}
}

func TestBrainPhantomPair(t *testing.T) {
	a, b, err := BrainPhantomPair(16, 20, 16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data) != 16*20*16 || len(b.Data) != 16*20*16 {
		t.Fatalf("wrong sizes")
	}
	var diff float64
	for i := range a.Data {
		diff += math.Abs(a.Data[i] - b.Data[i])
	}
	if diff == 0 {
		t.Error("subjects identical")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Tasks != 1 || c.Beta != 1e-2 || c.TimeSteps != 4 || c.GradTol != 1e-2 || c.MaxNewtonIters != 50 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestRegisterTimeVaryingPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, VelocityIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VelocitySeries) != 2 {
		t.Fatalf("expected 2 velocity coefficients, got %d", len(res.VelocitySeries))
	}
	for c, vols := range res.VelocitySeries {
		for d := 0; d < 3; d++ {
			if len(vols[d].Data) != 4096 {
				t.Errorf("interval %d dim %d: missing data", c, d)
			}
		}
	}
	if res.MisfitFinal > 0.25*res.MisfitInit {
		t.Errorf("misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
	if _, err := Register(tmpl, ref, Config{VelocityIntervals: 3}); err == nil {
		t.Error("non-divisible interval count accepted")
	}
}

func TestRegisterMultilevelPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, MultilevelLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MisfitFinal > 0.3*res.MisfitInit {
		t.Errorf("multilevel misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
	if res.DetMin <= 0 {
		t.Errorf("multilevel map not diffeomorphic: %g", res.DetMin)
	}
}

func TestRegisterNCCDistancePublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	// Rescale the reference intensities; NCC must still register.
	for i := range ref.Data {
		ref.Data[i] = 2*ref.Data[i] + 0.5
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, Beta: 1e-3, Distance: "ncc"})
	if err != nil {
		t.Fatal(err)
	}
	if res.MisfitFinal > 0.3*res.MisfitInit {
		t.Errorf("NCC misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
	if res.DetMin <= 0 {
		t.Errorf("map not diffeomorphic: %g", res.DetMin)
	}
	if _, err := Register(tmpl, ref, Config{Distance: "bogus"}); err == nil {
		t.Error("unknown distance accepted")
	}
}

func TestRegisterTimeSeriesPublicAPI(t *testing.T) {
	frames, err := SyntheticSequence(16, 16, 16, 2, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("expected 3 frames, got %d", len(frames))
	}
	res, err := RegisterTimeSeries(frames, Config{Tasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MisfitFinal > 0.25*res.MisfitInit {
		t.Errorf("sequence misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
	if len(res.FrameMisfits) != 2 || len(res.Warped) != 2 {
		t.Errorf("per-frame outputs missing: %d misfits, %d warped", len(res.FrameMisfits), len(res.Warped))
	}
	if res.DetMin <= 0 {
		t.Errorf("end-to-end map not diffeomorphic: %g", res.DetMin)
	}
	// Validation paths.
	if _, err := RegisterTimeSeries(frames[:1], Config{}); err == nil {
		t.Error("single frame accepted")
	}
	bad := []Volume{frames[0], NewVolume(8, 8, 8)}
	if _, err := RegisterTimeSeries(bad, Config{}); err == nil {
		t.Error("mismatched frame dims accepted")
	}
	if _, err := SyntheticSequence(16, 16, 16, 3, 4, 0.5); err == nil {
		t.Error("non-divisible frame count accepted")
	}
}

func TestRegisterMaskedPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	mask := NewVolume(16, 16, 16)
	for i := range mask.Data {
		mask.Data[i] = 1
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, Mask: &mask})
	if err != nil {
		t.Fatal(err)
	}
	// Unit mask equals plain L2 registration.
	plain, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MisfitFinal-plain.MisfitFinal) > 1e-9*(1+plain.MisfitFinal) {
		t.Errorf("unit mask misfit %g vs plain %g", res.MisfitFinal, plain.MisfitFinal)
	}
	// Validation paths.
	bad := NewVolume(8, 8, 8)
	if _, err := Register(tmpl, ref, Config{Mask: &bad}); err == nil {
		t.Error("mismatched mask accepted")
	}
	if _, err := Register(tmpl, ref, Config{Mask: &mask, Distance: "ncc"}); err == nil {
		t.Error("mask + ncc accepted")
	}
}

func TestRegisterShiftedPrecPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, Beta: 1e-3, ShiftedPrec: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("shifted-prec solve did not converge")
	}
	if res.MisfitFinal > 0.25*res.MisfitInit {
		t.Errorf("misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
}

func TestApplyDeformationWarpsLabels(t *testing.T) {
	// Register, then transfer a "label map" with the recovered
	// displacement: the warped labels must align better with the labels
	// derived from the reference than the originals do.
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	label := func(v Volume) Volume {
		out := NewVolume(16, 16, 16)
		for i, x := range v.Data {
			if x > 0.5 {
				out.Data[i] = 1
			}
		}
		return out
	}
	tmplLabels := label(tmpl)
	refLabels := label(ref)
	warped, err := ApplyDeformation(tmplLabels, res.Displacement, 2)
	if err != nil {
		t.Fatal(err)
	}
	mismatch := func(a, b Volume) (n int) {
		for i := range a.Data {
			av, bv := a.Data[i] > 0.5, b.Data[i] > 0.5
			if av != bv {
				n++
			}
		}
		return
	}
	before := mismatch(tmplLabels, refLabels)
	after := mismatch(warped, refLabels)
	if after >= before {
		t.Errorf("label transfer did not improve overlap: %d -> %d mismatches", before, after)
	}
	// Validation.
	bad := [3]Volume{NewVolume(8, 8, 8), NewVolume(8, 8, 8), NewVolume(8, 8, 8)}
	if _, err := ApplyDeformation(tmplLabels, bad, 1); err == nil {
		t.Error("mismatched displacement dims accepted")
	}
}

func TestInverseDisplacementPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	uInv, err := InverseDisplacement(res.Velocity, 4, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Forward then inverse warp must approximately restore the template.
	fwd, err := ApplyDeformation(tmpl, res.Displacement, 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ApplyDeformation(fwd, uInv, 1)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range tmpl.Data {
		if e := math.Abs(back.Data[i] - tmpl.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.12 {
		t.Errorf("inverse warp round trip error %g", maxErr)
	}
}

func TestGridImage(t *testing.T) {
	gimg := GridImage(8, 8, 8, 4)
	on := 0
	for _, v := range gimg.Data {
		if v == 1 {
			on++
		}
	}
	if on == 0 || on == len(gimg.Data) {
		t.Errorf("grid image degenerate: %d of %d on", on, len(gimg.Data))
	}
	if gimg.At(0, 3, 3) != 1 || gimg.At(1, 1, 1) != 0 {
		t.Errorf("grid line placement wrong")
	}
}

func TestRegisterTwoLevelPrecPublicAPI(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1, Beta: 1e-3, TwoLevelPrec: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("two-level solve did not converge")
	}
	if res.MisfitFinal > 0.25*res.MisfitInit {
		t.Errorf("misfit %g -> %g", res.MisfitInit, res.MisfitFinal)
	}
}

func TestResultHistoryPopulated(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) == 0 {
		t.Fatal("no convergence history")
	}
	// The objective must be monotonically non-increasing (Armijo).
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Objective > res.History[i-1].Objective {
			t.Errorf("objective increased at iter %d: %g -> %g",
				i, res.History[i-1].Objective, res.History[i].Objective)
		}
	}
	if res.History[0].CGIters == 0 {
		t.Errorf("no Krylov iterations recorded")
	}
}

func TestRegisterWarmStart(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Register(tmpl, ref, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from the converged velocity starts near the optimum
	// (small initial gradient; the relative gtol then drives it further)
	// and must end at least as good as the cold solve.
	warm, err := Register(tmpl, ref, Config{Tasks: 1, InitialVelocity: &cold.Velocity})
	if err != nil {
		t.Fatal(err)
	}
	if warm.GnormInit > 0.1*cold.GnormInit {
		t.Errorf("warm start gradient %g not much below cold %g", warm.GnormInit, cold.GnormInit)
	}
	if warm.MisfitFinal > 1.05*cold.MisfitFinal {
		t.Errorf("warm misfit %g vs cold %g", warm.MisfitFinal, cold.MisfitFinal)
	}
}

func TestRegisterTimeSeriesTimeVarying(t *testing.T) {
	// The optical-flow setting of §V: per-interval velocities on a
	// multiframe sequence. It must fit the sequence at least as well as
	// the stationary velocity and stay diffeomorphic.
	frames, err := SyntheticSequence(16, 16, 16, 2, 4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := RegisterTimeSeries(frames, Config{Tasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	tv, err := RegisterTimeSeries(frames, Config{Tasks: 1, VelocityIntervals: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tv.MisfitFinal > 1.1*stat.MisfitFinal {
		t.Errorf("time-varying misfit %g vs stationary %g", tv.MisfitFinal, stat.MisfitFinal)
	}
	if tv.DetMin <= 0 {
		t.Errorf("time-varying 4D map not diffeomorphic: %g", tv.DetMin)
	}
	if len(tv.FrameMisfits) != 2 || len(tv.Warped) != 2 {
		t.Errorf("per-frame outputs missing")
	}
	// Interval count must match the frame intervals.
	if _, err := RegisterTimeSeries(frames, Config{VelocityIntervals: 3}); err == nil {
		t.Error("mismatched interval count accepted")
	}
}

func TestCheckpointMultilevelIncompatibleError(t *testing.T) {
	// Regression pin for the documented limitation: checkpoint/restart
	// snapshots a velocity on one grid, while MultilevelLevels > 1 changes
	// the grid mid-solve, so the combination must be rejected up front —
	// before any solve work — with a stable, descriptive error.
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	ckptPath := filepath.Join(t.TempDir(), "state.ckpt")
	const want = "incompatible with grid continuation"

	_, err = Register(tmpl, ref, Config{MultilevelLevels: 2, CheckpointPath: ckptPath})
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("checkpoint+multilevel accepted or error drifted: %v", err)
	}
	_, err = Register(tmpl, ref, Config{MultilevelLevels: 2, CheckpointPath: ckptPath, Resume: true})
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("resume+multilevel accepted or error drifted: %v", err)
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Fatalf("rejected config still touched the checkpoint path: %v", err)
	}

	// Each half works on its own: multilevel without checkpointing ...
	if _, err := Register(tmpl, ref, Config{MultilevelLevels: 2, MaxNewtonIters: 1}); err != nil {
		t.Fatalf("multilevel alone rejected: %v", err)
	}
	// ... and checkpointing without grid continuation.
	if _, err := Register(tmpl, ref, Config{CheckpointPath: ckptPath, CheckpointEvery: 1, MaxNewtonIters: 1}); err != nil {
		t.Fatalf("checkpoint alone rejected: %v", err)
	}
}
