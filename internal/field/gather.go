package field

import "diffreg/internal/grid"

// Gather assembles the global array of the distributed scalar field on
// rank 0 (row-major, dimension 2 fastest); other ranks receive nil. Used
// for volume output and figure export, never inside the solver.
func (s *Scalar) Gather() []float64 {
	pe := s.P
	c := pe.Comm
	flat := c.GatherFloat64(0, s.Data)
	if c.Rank() != 0 {
		return nil
	}
	n := pe.Grid.N
	out := make([]float64, pe.Grid.Total())
	off := 0
	for r := 0; r < c.Size(); r++ {
		r1 := r / pe.P[1]
		r2 := r % pe.P[1]
		lo1, hi1 := grid.Share(n[0], pe.P[0], r1)
		lo2, hi2 := grid.Share(n[1], pe.P[1], r2)
		for j1 := lo1; j1 < hi1; j1++ {
			for j2 := lo2; j2 < hi2; j2++ {
				dst := (j1*n[1] + j2) * n[2]
				copy(out[dst:dst+n[2]], flat[off:off+n[2]])
				off += n[2]
			}
		}
	}
	return out
}

// Scatter distributes a global array (significant on rank 0 only) into the
// local portions of the field on every rank.
func (s *Scalar) Scatter(global []float64) {
	pe := s.P
	c := pe.Comm
	n := pe.Grid.N
	if c.Rank() == 0 {
		for r := c.Size() - 1; r >= 0; r-- {
			r1 := r / pe.P[1]
			r2 := r % pe.P[1]
			lo1, hi1 := grid.Share(n[0], pe.P[0], r1)
			lo2, hi2 := grid.Share(n[1], pe.P[1], r2)
			buf := make([]float64, (hi1-lo1)*(hi2-lo2)*n[2])
			pos := 0
			for j1 := lo1; j1 < hi1; j1++ {
				for j2 := lo2; j2 < hi2; j2++ {
					src := (j1*n[1] + j2) * n[2]
					copy(buf[pos:pos+n[2]], global[src:src+n[2]])
					pos += n[2]
				}
			}
			if r == 0 {
				copy(s.Data, buf)
			} else {
				c.Send(r, 900, buf)
			}
		}
		return
	}
	copy(s.Data, c.Recv(0, 900).([]float64))
}
