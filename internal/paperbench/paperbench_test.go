package paperbench

import (
	"strings"
	"testing"

	"diffreg/internal/core"
	"diffreg/internal/perfmodel"
)

func TestRunMeasurementSynthetic(t *testing.T) {
	cfg := scalingConfig()
	out, err := RunMeasurement(cube(16), 2, SyntheticProblem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Counts.FFTs == 0 || out.Counts.InterpSweeps == 0 {
		t.Errorf("no work counted: %+v", out.Counts)
	}
	if out.MisfitFinal >= out.MisfitInit {
		t.Errorf("no misfit reduction")
	}
}

func TestWorkloadCountsAreMeshIndependent(t *testing.T) {
	// The core premise of the table regeneration: operation counts at a
	// small grid carry over to large grids (fixed beta, fixed solver).
	cfg := scalingConfig()
	w16, _, err := measureWorkload(SyntheticProblem, cfg, cube(16))
	if err != nil {
		t.Fatal(err)
	}
	w24, _, err := measureWorkload(SyntheticProblem, cfg, cube(24))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(w24.FFTs) / float64(w16.FFTs)
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("FFT counts not mesh independent: %d vs %d", w16.FFTs, w24.FFTs)
	}
}

func TestTable1Quick(t *testing.T) {
	rep, err := Table1(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#1", "#13", "strong scaling", "paper", "model", "measured"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	rep, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "#19") || !strings.Contains(rep.Text, "1024x1024x1024") {
		t.Errorf("table 2 incomplete:\n%s", rep.Text)
	}
}

func TestTable3Quick(t *testing.T) {
	rep, err := Table3(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "det(grad y)") {
		t.Errorf("table 3 missing det check")
	}
	if !strings.Contains(rep.Text, "#24") {
		t.Errorf("table 3 missing rows")
	}
}

func TestTable4Quick(t *testing.T) {
	rep, err := Table4(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "256x300x256") {
		t.Errorf("table 4 missing brain rows")
	}
}

func TestTable5Quick(t *testing.T) {
	rep, err := Table5(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "beta") || !strings.Contains(rep.Text, "matvecs") {
		t.Errorf("table 5 incomplete:\n%s", rep.Text)
	}
}

func TestFigures(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func() (Report, error)
		want []string
	}{
		{"fig2", Figure2, []string{"isochoric", "NOT diffeomorphic"}},
		{"fig3", Figure3, []string{"off-rank", "scattered"}},
		{"fig4", Figure4, []string{"messages", "transpose"}},
		{"fig5", func() (Report, error) { return Figure5("") }, []string{"rho_T", "residual"}},
	} {
		rep, err := tc.fn()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, w := range tc.want {
			if !strings.Contains(rep.Text, w) {
				t.Errorf("%s missing %q:\n%s", tc.name, w, rep.Text)
			}
		}
	}
}

func TestFigure67Quick(t *testing.T) {
	rep, err := Figure67("", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "diffeomorphic") {
		t.Errorf("fig 6/7 missing diffeomorphism check:\n%s", rep.Text)
	}
	if strings.Contains(rep.Text, "WARNING") {
		t.Errorf("fig 6/7 reports a problem:\n%s", rep.Text)
	}
}

func TestFigureOutputsToDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := Figure5(dir); err != nil {
		t.Fatal(err)
	}
	// At least the template slice must exist.
	if _, err := readDirCount(dir); err != nil {
		t.Fatal(err)
	}
}

func readDirCount(dir string) (int, error) {
	entries, err := dirEntries(dir)
	if err != nil {
		return 0, err
	}
	if len(entries) == 0 {
		return 0, errNoFiles
	}
	return len(entries), nil
}

func TestModelAgreesWithPaperShape(t *testing.T) {
	// The calibrated Table I model must land within 2x of every published
	// row (most are much closer) — this bounds how far the reproduction
	// can drift from the paper.
	cfg := scalingConfig()
	w0, _, err := measureWorkload(SyntheticProblem, cfg, cube(16))
	if err != nil {
		t.Fatal(err)
	}
	m := perfmodel.Calibrate("maverick", workloadAt(w0, cube(128), 16), perfmodel.MaverickCalibration())
	for _, r := range tableIRows {
		b := perfmodel.Predict(workloadAt(w0, r.n, r.tasks), m)
		ratio := b.TimeToSolution / r.total
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: model %g vs paper %g (ratio %.2f)", r.id, b.TimeToSolution, r.total, ratio)
		}
	}
}

func TestMeasuredScalingReducesPerRankWork(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SkipMap = true
	out1, err := RunMeasurement(cube(16), 1, SyntheticProblem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out4, err := RunMeasurement(cube(16), 4, SyntheticProblem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1 := out1.Phases.FFTExec + out1.Phases.InterpExec
	e4 := out4.Phases.FFTExec + out4.Phases.InterpExec
	if e4 >= e1 {
		t.Errorf("per-rank exec did not shrink: %g -> %g", e1, e4)
	}
}

func TestTable5ExtQuick(t *testing.T) {
	rep, err := Table5Ext(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inverse-reg", "two-level", "beta"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("table 5ext missing %q", want)
		}
	}
}
