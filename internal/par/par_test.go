package par

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withWorkers runs body with the pool temporarily sized to n.
func withWorkers(n int, body func()) {
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	body()
}

func TestChunkBoundsCoverAndAreDisjoint(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 4096, 4097, 1 << 20} {
		for _, grain := range []int{1, 8, 512, DefaultGrain} {
			chunks := chunkCount(n, grain)
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := chunkBounds(n, chunks, c)
				if lo != prev {
					t.Fatalf("n=%d grain=%d chunk %d: lo=%d want %d", n, grain, c, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d grain=%d chunk %d: hi=%d < lo=%d", n, grain, c, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d grain=%d: chunks cover [0,%d) want [0,%d)", n, grain, prev, n)
			}
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		withWorkers(w, func() {
			const n = 10000
			hits := make([]int32, n)
			For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
				}
			}
		})
	}
}

func TestSumBitIdenticalAcrossPoolSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 100003
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * math.Exp(10*rng.Float64()-5)
	}
	sum := func() float64 {
		return Sum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += x[i]
			}
			return s
		})
	}
	var ref float64
	withWorkers(1, func() { ref = sum() })
	for _, w := range []int{2, 3, 4, 7, 16} {
		withWorkers(w, func() {
			for rep := 0; rep < 3; rep++ {
				if got := sum(); got != ref {
					t.Fatalf("workers=%d rep=%d: sum %x differs from serial %x",
						w, rep, math.Float64bits(got), math.Float64bits(ref))
				}
			}
		})
	}
}

func TestReduceMax(t *testing.T) {
	const n = 50000
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range x {
		x[i] = rng.Float64()
	}
	x[31337] = 2.5
	withWorkers(4, func() {
		got := Reduce(n, math.Inf(-1), func(lo, hi int) float64 {
			m := math.Inf(-1)
			for i := lo; i < hi; i++ {
				if x[i] > m {
					m = x[i]
				}
			}
			return m
		}, math.Max)
		if got != 2.5 {
			t.Fatalf("Reduce max = %v, want 2.5", got)
		}
	})
}

func TestChunkedGrainOne(t *testing.T) {
	withWorkers(4, func() {
		var mu sync.Mutex
		seen := map[int]bool{}
		Chunked(37, 1, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i] = true
			}
			mu.Unlock()
		})
		if len(seen) != 37 {
			t.Fatalf("covered %d of 37 items", len(seen))
		}
	})
}

func TestZeroAndNegativeTripCounts(t *testing.T) {
	For(0, func(lo, hi int) { t.Fatal("fn called for n=0") })
	For(-5, func(lo, hi int) { t.Fatal("fn called for n<0") })
	if s := Sum(0, func(lo, hi int) float64 { return 1 }); s != 0 {
		t.Fatalf("Sum(0) = %v", s)
	}
}

// TestPoolReuseHammer drives the shared pool from many goroutines at once
// (the simulated-MPI-ranks usage pattern) and checks every loop's result.
// It is the pool half of the race-detector satellite: run with -race.
func TestPoolReuseHammer(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	withWorkers(8, func() {
		const ranks = 6
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r)))
				for it := 0; it < iters; it++ {
					n := 1 + rng.Intn(20000)
					out := make([]float64, n)
					For(n, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							out[i] = float64(i)
						}
					})
					got := Sum(n, func(lo, hi int) float64 {
						s := 0.0
						for i := lo; i < hi; i++ {
							s += out[i]
						}
						return s
					})
					want := float64(n-1) * float64(n) / 2
					if got != want {
						t.Errorf("rank %d iter %d: sum=%v want %v", r, it, got, want)
						return
					}
				}
			}(r)
		}
		wg.Wait()
	})
}

func TestSnapshotAndSpeedup(t *testing.T) {
	before := Snapshot()
	withWorkers(2, func() {
		For(100000, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	})
	after := Snapshot()
	if after.Calls <= before.Calls {
		t.Fatalf("Calls did not advance: %d -> %d", before.Calls, after.Calls)
	}
	if sp := Speedup(before, after); sp <= 0 || math.IsNaN(sp) {
		t.Fatalf("Speedup = %v", sp)
	}
	if Speedup(after, after) != 1 {
		t.Fatalf("empty-interval speedup should be 1")
	}
}
