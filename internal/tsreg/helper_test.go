package tsreg

import (
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

func newTransport(ops *spectral.Ops, nt int) *transport.Solver {
	return transport.NewSolver(ops, nt)
}
