package diffreg

import (
	"math"
	"testing"
)

// fusedBatchSpec builds a 4-job batch over one synthetic pair with
// per-job solver knobs varied (beta, first-order vs Gauss-Newton,
// budgets) so the lock-step scheduler sees heterogeneous trajectories.
func fusedBatchSpec(t *testing.T, tasks int, precision string) ([]FusedJob, []Config) {
	t.Helper()
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Tasks: tasks, Precision: precision, TimeSteps: 2,
		GradTol: 1e-12, MaxKrylovIters: 5,
	}
	cfgs := make([]Config, 4)
	for j := range cfgs {
		cfgs[j] = base
	}
	cfgs[0].Beta = 1e-2
	cfgs[0].MaxNewtonIters = 2
	cfgs[1].Beta = 5e-2
	cfgs[1].MaxNewtonIters = 2
	cfgs[2].Beta = 1e-2
	cfgs[2].MaxNewtonIters = 1
	cfgs[3].Beta = 1e-2
	cfgs[3].MaxNewtonIters = 2
	cfgs[3].FirstOrder = true
	jobs := make([]FusedJob, 4)
	for j := range jobs {
		jobs[j] = FusedJob{Template: tmpl, Reference: ref, Config: cfgs[j]}
	}
	return jobs, cfgs
}

func bitsEqual(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: fused %v != solo %v", label, got, want)
	}
}

func volumeBitsEqual(t *testing.T, label string, got, want Volume) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Errorf("%s: fused len %d != solo len %d", label, len(got.Data), len(want.Data))
		return
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Errorf("%s: first mismatch at %d: fused %v != solo %v", label, i, got.Data[i], want.Data[i])
			return
		}
	}
}

// TestRegisterFusedBitIdenticalToSolo is the fused-batch correctness
// gate: every job of a fused batch must be Float64bits-identical — in
// misfit, gradient norm, iterate, warped image, and deformation-map
// summaries — to the same job run solo, at 1 and 4 ranks and in both
// precisions.
func TestRegisterFusedBitIdenticalToSolo(t *testing.T) {
	for _, precision := range []string{"float64", "float32"} {
		for _, tasks := range []int{1, 4} {
			if testing.Short() && (tasks == 4 && precision == "float32") {
				continue
			}
			jobs, cfgs := fusedBatchSpec(t, tasks, precision)
			solo := make([]*Result, len(jobs))
			for j := range jobs {
				res, err := Register(jobs[j].Template, jobs[j].Reference, cfgs[j])
				if err != nil {
					t.Fatalf("prec=%s p=%d solo job %d: %v", precision, tasks, j, err)
				}
				solo[j] = res
			}
			fusedRes, info, err := RegisterFused(jobs)
			if err != nil {
				t.Fatalf("prec=%s p=%d fused: %v", precision, tasks, err)
			}
			if info.Jobs != len(jobs) {
				t.Errorf("prec=%s p=%d: info.Jobs = %d, want %d", precision, tasks, info.Jobs, len(jobs))
			}
			for j := range jobs {
				got, want := fusedRes[j], solo[j]
				label := func(f string) string {
					return "prec=" + precision + " job " + string(rune('0'+j)) + " " + f
				}
				if got.NewtonIters != want.NewtonIters {
					t.Errorf("%s: fused iters %d != solo %d", label("iters"), got.NewtonIters, want.NewtonIters)
				}
				bitsEqual(t, label("misfit_init"), got.MisfitInit, want.MisfitInit)
				bitsEqual(t, label("misfit_final"), got.MisfitFinal, want.MisfitFinal)
				bitsEqual(t, label("gnorm_final"), got.GnormFinal, want.GnormFinal)
				bitsEqual(t, label("det_min"), got.DetMin, want.DetMin)
				bitsEqual(t, label("det_mean"), got.DetMean, want.DetMean)
				volumeBitsEqual(t, label("warped"), got.Warped, want.Warped)
				for d := 0; d < 3; d++ {
					volumeBitsEqual(t, label("velocity"), got.Velocity[d], want.Velocity[d])
				}
			}

			// Transport-gather fusion accounting. The heterogeneous knobs
			// desynchronize the batch after job budgets diverge, so not
			// every exchange fuses — but the lock-stepped prefix must, and
			// at p > 1 the fused batch's interp-phase message count (a
			// rank-wide batch aggregate) must undercut the sum of the solo
			// runs'.
			if fusedRes[0].FusedInterpExchanges == 0 {
				t.Errorf("prec=%s p=%d: no fused interp exchanges recorded", precision, tasks)
			}
			if fusedRes[0].FusedInterpJobs < 2*fusedRes[0].FusedInterpExchanges {
				t.Errorf("prec=%s p=%d: fused interp fill %d jobs / %d exchanges < 2",
					precision, tasks, fusedRes[0].FusedInterpJobs, fusedRes[0].FusedInterpExchanges)
			}
			if tasks > 1 {
				var soloMsgs int64
				for j := range jobs {
					soloMsgs += solo[j].InterpMsgs
				}
				if fusedRes[0].InterpMsgs >= soloMsgs {
					t.Errorf("prec=%s p=%d: fused batch interp msgs %d did not undercut solo total %d",
						precision, tasks, fusedRes[0].InterpMsgs, soloMsgs)
				}
			}
		}
	}
}

// TestRegisterFusedHeterogeneousKnobsRejected pins the batch-shape
// validation: mixed grids, task counts, precisions, and unsupported
// solve flavors are rejected up front with a job-indexed error.
func TestRegisterFusedValidation(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	ok := Config{Tasks: 1, TimeSteps: 2, MaxNewtonIters: 1, MaxKrylovIters: 3}
	mk := func(mut func(c *Config)) []FusedJob {
		a, b := ok, ok
		mut(&b)
		return []FusedJob{
			{Template: tmpl, Reference: ref, Config: a},
			{Template: tmpl, Reference: ref, Config: b},
		}
	}
	cases := []struct {
		name string
		jobs []FusedJob
	}{
		{"empty", nil},
		{"mixed tasks", mk(func(c *Config) { c.Tasks = 2 })},
		{"mixed precision", mk(func(c *Config) { c.Precision = "float32" })},
		{"multilevel", mk(func(c *Config) { c.MultilevelLevels = 2 })},
		{"continuation", mk(func(c *Config) { c.ContinuationBetas = []float64{1e-1, 1e-2} })},
		{"time-varying", mk(func(c *Config) { c.VelocityIntervals = 2; c.TimeSteps = 4 })},
		{"checkpoint", mk(func(c *Config) { c.CheckpointPath = "/tmp/nope.ckpt" })},
		{"chaos", mk(func(c *Config) { c.ChaosSpec = "seed=7;site=0:fft-comm:send:1:bitflip" })},
	}
	for _, tc := range cases {
		if _, _, err := RegisterFused(tc.jobs); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// TestRegisterFusedWidthOne: a degenerate single-job batch runs and
// matches solo bitwise (the serve dispatcher can shrink a group to one).
func TestRegisterFusedWidthOne(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tasks: 2, TimeSteps: 2, MaxNewtonIters: 1, MaxKrylovIters: 3, GradTol: 1e-12}
	solo, err := Register(tmpl, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fused, info, err := RegisterFused([]FusedJob{{Template: tmpl, Reference: ref, Config: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	if info.EarlyDropouts != 0 {
		t.Errorf("width-1 batch reported %d dropouts", info.EarlyDropouts)
	}
	bitsEqual(t, "misfit_final", fused[0].MisfitFinal, solo.MisfitFinal)
	volumeBitsEqual(t, "warped", fused[0].Warped, solo.Warped)
}

// TestRegisterFusedPerJobStop: one job's StopRequested interrupts only
// that job; its neighbor completes normally.
func TestRegisterFusedPerJobStop(t *testing.T) {
	tmpl, ref, err := SyntheticProblem(16, 16, 16, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tasks: 1, TimeSteps: 2, MaxNewtonIters: 3, MaxKrylovIters: 3, GradTol: 1e-12}
	stopped := cfg
	stopped.StopRequested = func() bool { return true }
	res, info, err := RegisterFused([]FusedJob{
		{Template: tmpl, Reference: ref, Config: stopped},
		{Template: tmpl, Reference: ref, Config: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Interrupted {
		t.Error("job 0 with StopRequested=true was not interrupted")
	}
	if res[1].Interrupted {
		t.Error("job 1 without a stop hook was interrupted")
	}
	if res[1].NewtonIters != 3 {
		t.Errorf("job 1 ran %d iters, want its full budget of 3", res[1].NewtonIters)
	}
	if info.EarlyDropouts == 0 {
		t.Error("interrupting one of two jobs should register a dropout")
	}
}
