// Package optim provides the numerical optimization layer of the paper:
// a matrix-free preconditioned conjugate gradient solver for the Newton
// step, an Armijo line-search globalized inexact (Gauss-)Newton-Krylov
// driver with Eisenstat-Walker quadratic forcing, a first-order
// (preconditioned steepest descent) baseline, and parameter continuation
// in the regularization weight beta. It plays the role PETSc/TAO plays in
// the paper's implementation. The drivers are generic over the vector
// type, so the same code optimizes stationary velocities (*field.Vector)
// and time-varying velocity series (field.Series).
package optim

import "math"

// finite reports whether x is neither NaN nor an infinity.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// pcgDivergeFactor flags a diverging solve: CG on an SPD system is
// monotone in the A-norm, so a residual growing by orders of magnitude
// means the operator or preconditioner is corrupted.
const pcgDivergeFactor = 1e8

// CGResult reports how a PCG solve went.
type CGResult struct {
	Iters     int
	RelRes    float64
	Converged bool
	// Indefinite is set when a direction of non-positive curvature was
	// encountered; the current iterate is returned (truncated CG).
	Indefinite bool
	// Breakdown is set when the recurrence produced a non-finite quantity
	// or the residual diverged — the footprint of a corrupted matvec or
	// preconditioner. The last finite iterate is returned (the zero vector
	// if the very first step broke down).
	Breakdown bool
	// Restarts counts recovery attempts after a breakdown (at most one:
	// the solve is retried without the preconditioner).
	Restarts int
}

// PCG solves A x = b with preconditioned conjugate gradients, starting
// from x = 0. matvec must be symmetric positive definite on the relevant
// subspace and prec an SPD approximation of its inverse. The solve stops
// when the residual norm drops below rtol times the initial residual norm
// (inexact Newton: rtol is the forcing term) or after maxIter iterations.
// A breakdown (non-finite recurrence or diverging residual) before any
// progress triggers one restart with the identity preconditioner, which
// rescues the step when the preconditioner is the corrupted operator.
func PCG[T Vec[T]](matvec, prec func(T) T, b T, rtol float64, maxIter int) (T, CGResult) {
	x, res := pcgRun(matvec, prec, b, rtol, maxIter)
	if res.Breakdown && res.Iters == 0 {
		x2, res2 := pcgRun(matvec, func(r T) T { return r.Clone() }, b, rtol, maxIter)
		res2.Restarts = 1
		if !res2.Breakdown {
			return x2, res2
		}
		res.Restarts = 1
	}
	return x, res
}

// pcgRun is one unguarded-restart-free PCG pass with breakdown detection.
func pcgRun[T Vec[T]](matvec, prec func(T) T, b T, rtol float64, maxIter int) (T, CGResult) {
	x := b.Clone()
	x.Scale(0)
	r := b.Clone() // r = b - A*0
	res := CGResult{}
	bnorm := r.NormL2()
	if bnorm == 0 {
		res.Converged = true
		return x, res
	}
	if !finite(bnorm) {
		res.Breakdown = true
		return x, res
	}
	z := prec(r)
	p := z.Clone()
	rz := r.Dot(z)
	if !finite(rz) {
		res.Breakdown = true
		return x, res
	}
	for res.Iters = 0; res.Iters < maxIter; res.Iters++ {
		ap := matvec(p)
		pap := p.Dot(ap)
		if !finite(pap) {
			res.Breakdown = true
			break
		}
		if pap <= 0 {
			res.Indefinite = true
			break
		}
		alpha := rz / pap
		x.Axpy(alpha, p)
		r.Axpy(-alpha, ap)
		rn := r.NormL2()
		res.RelRes = rn / bnorm
		if !finite(rn) || res.RelRes > pcgDivergeFactor {
			// Roll the corrupted update back so the caller still gets the
			// last finite truncated iterate.
			x.Axpy(-alpha, p)
			res.Breakdown = true
			break
		}
		if res.RelRes <= rtol {
			res.Iters++
			res.Converged = true
			break
		}
		z = prec(r)
		rzNew := r.Dot(z)
		if !finite(rzNew) {
			res.Breakdown = true
			break
		}
		beta := rzNew / rz
		rz = rzNew
		// p = z + beta*p
		pNew := z.Clone()
		pNew.Axpy(beta, p)
		p = pNew
	}
	return x, res
}
