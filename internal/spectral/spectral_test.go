package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
)

// withOps runs fn on p ranks with an operator set on the given grid.
func withOps(t *testing.T, g grid.Grid, p int, fn func(o *Ops) error) {
	t.Helper()
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		return fn(New(pfft.NewPlan(pe)))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGradTrig(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	for _, p := range []int{1, 4} {
		withOps(t, g, p, func(o *Ops) error {
			s := field.NewScalar(o.Pe)
			s.SetFunc(func(x1, x2, x3 float64) float64 {
				return math.Sin(x1) * math.Cos(2*x2) * math.Sin(x3)
			})
			gr := o.Grad(s)
			want := field.NewVector(o.Pe)
			want.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return math.Cos(x1) * math.Cos(2*x2) * math.Sin(x3),
					-2 * math.Sin(x1) * math.Sin(2*x2) * math.Sin(x3),
					math.Sin(x1) * math.Cos(2*x2) * math.Cos(x3)
			})
			for d := 0; d < 3; d++ {
				for i := range gr.C[d].Data {
					if math.Abs(gr.C[d].Data[i]-want.C[d].Data[i]) > 1e-10 {
						t.Errorf("p=%d d=%d i=%d: %g want %g", p, d, i, gr.C[d].Data[i], want.C[d].Data[i])
						return nil
					}
				}
			}
			return nil
		})
	}
}

func TestDivMatchesGradIdentity(t *testing.T) {
	// div(grad s) == lap s for any smooth s.
	g := grid.MustNew(12, 8, 16)
	withOps(t, g, 2, func(o *Ops) error {
		s := field.NewScalar(o.Pe)
		s.SetFunc(func(x1, x2, x3 float64) float64 {
			return math.Cos(x1+x3) + math.Sin(2*x2)*math.Cos(x1)
		})
		dg := o.Div(o.Grad(s))
		lp := o.Lap(s)
		for i := range dg.Data {
			if math.Abs(dg.Data[i]-lp.Data[i]) > 1e-9 {
				t.Errorf("div grad != lap at %d: %g vs %g", i, dg.Data[i], lp.Data[i])
				return nil
			}
		}
		return nil
	})
}

func TestLapEigenfunction(t *testing.T) {
	// lap sin(a x1) sin(b x2) = -(a^2+b^2) sin sin.
	g := grid.MustNew(16, 16, 8)
	withOps(t, g, 1, func(o *Ops) error {
		s := field.NewScalar(o.Pe)
		s.SetFunc(func(x1, x2, _ float64) float64 { return math.Sin(3*x1) * math.Sin(2*x2) })
		lp := o.Lap(s)
		for i := range lp.Data {
			if math.Abs(lp.Data[i]+13*s.Data[i]) > 1e-9 {
				t.Errorf("eigenvalue mismatch at %d", i)
				return nil
			}
		}
		return nil
	})
}

func TestInvLapInvertsLap(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	withOps(t, g, 4, func(o *Ops) error {
		s := field.NewScalar(o.Pe)
		rng := rand.New(rand.NewSource(int64(o.Pe.Comm.Rank() + 1)))
		for i := range s.Data {
			s.Data[i] = rng.NormFloat64()
		}
		// Remove the mean so s lies in the range of the Laplacian, and
		// smooth so the field is resolvable.
		o.SmoothGridScale(s)
		mean := s.Mean()
		for i := range s.Data {
			s.Data[i] -= mean
		}
		back := o.InvLap(o.Lap(s))
		for i := range back.Data {
			if math.Abs(back.Data[i]-s.Data[i]) > 1e-8 {
				t.Errorf("invlap(lap) != id at %d: %g vs %g", i, back.Data[i], s.Data[i])
				return nil
			}
		}
		return nil
	})
}

func TestBiharmIsLapSquared(t *testing.T) {
	g := grid.MustNew(8, 12, 8)
	withOps(t, g, 2, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return math.Sin(x1 + 2*x2), math.Cos(x2), math.Sin(x3) * math.Cos(x1)
		})
		bi := o.Biharm(v)
		ll := o.VecLap(o.VecLap(v))
		for d := 0; d < 3; d++ {
			for i := range bi.C[d].Data {
				if math.Abs(bi.C[d].Data[i]-ll.C[d].Data[i]) > 1e-8 {
					t.Errorf("biharm != lap^2 at d=%d i=%d", d, i)
					return nil
				}
			}
		}
		return nil
	})
}

func TestInvBiharmInverts(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withOps(t, g, 1, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			// Zero-mean smooth field.
			return math.Sin(x1), math.Cos(2*x3) - 0, math.Sin(x2 + x3)
		})
		// Project out means: the used components are already zero-mean.
		back := o.InvBiharm(o.Biharm(v))
		for d := 0; d < 3; d++ {
			for i := range back.C[d].Data {
				if math.Abs(back.C[d].Data[i]-v.C[d].Data[i]) > 1e-8 {
					t.Errorf("invbiharm(biharm) != id at d=%d i=%d", d, i)
					return nil
				}
			}
		}
		return nil
	})
}

func TestLerayGivesDivergenceFree(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	for _, p := range []int{1, 4} {
		withOps(t, g, p, func(o *Ops) error {
			v := field.NewVector(o.Pe)
			v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
				return math.Sin(x1) * math.Cos(x2), math.Cos(x2 + x3), math.Sin(2*x3) * math.Cos(x1)
			})
			pv := o.Leray(v)
			div := o.Div(pv)
			if m := div.MaxAbs(); m > 1e-10 {
				t.Errorf("p=%d: div(Pv) max %g", p, m)
			}
			// Idempotency: P(Pv) = Pv.
			ppv := o.Leray(pv)
			for d := 0; d < 3; d++ {
				for i := range ppv.C[d].Data {
					if math.Abs(ppv.C[d].Data[i]-pv.C[d].Data[i]) > 1e-10 {
						t.Errorf("p=%d: Leray not idempotent at d=%d i=%d", p, d, i)
						return nil
					}
				}
			}
			return nil
		})
	}
}

func TestLerayPreservesDivergenceFree(t *testing.T) {
	// A field that is already divergence-free must pass through unchanged.
	g := grid.MustNew(12, 12, 8)
	withOps(t, g, 2, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			// Taylor-Green: div = cos x1 cos x2 - cos x1 cos x2 = 0.
			return math.Sin(x1) * math.Cos(x2), -math.Cos(x1) * math.Sin(x2), 0
		})
		pv := o.Leray(v)
		for d := 0; d < 3; d++ {
			for i := range pv.C[d].Data {
				if math.Abs(pv.C[d].Data[i]-v.C[d].Data[i]) > 1e-10 {
					t.Errorf("Leray changed a solenoidal field at d=%d i=%d", d, i)
					return nil
				}
			}
		}
		return nil
	})
}

func TestLerayProjectionProperty(t *testing.T) {
	// Property over random band-limited fields: div(Pv) == 0 and P^2 == P.
	g := grid.MustNew(8, 8, 8)
	f := func(seed int64) bool {
		ok := true
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			o := New(pfft.NewPlan(pe))
			rng := rand.New(rand.NewSource(seed))
			v := field.NewVector(pe)
			for d := 0; d < 3; d++ {
				for i := range v.C[d].Data {
					v.C[d].Data[i] = rng.NormFloat64()
				}
				o.SmoothGridScale(v.C[d])
			}
			pv := o.Leray(v)
			if o.Div(pv).MaxAbs() > 1e-9 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGaussianSmoothDampsHighFrequencies(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withOps(t, g, 1, func(o *Ops) error {
		lowPre := field.NewScalar(o.Pe)
		lowPre.SetFunc(func(x1, _, _ float64) float64 { return math.Sin(x1) })
		highPre := field.NewScalar(o.Pe)
		highPre.SetFunc(func(x1, _, _ float64) float64 { return math.Sin(7 * x1) })
		low := lowPre.Clone()
		high := highPre.Clone()
		o.SmoothGridScale(low)
		o.SmoothGridScale(high)
		lowRatio := low.NormL2() / lowPre.NormL2()
		highRatio := high.NormL2() / highPre.NormL2()
		if lowRatio < 0.9 {
			t.Errorf("low frequency damped too much: %g", lowRatio)
		}
		if highRatio > lowRatio {
			t.Errorf("high frequency not damped more: %g vs %g", highRatio, lowRatio)
		}
		// Smoothing must preserve the mean (k=0 mode).
		dc := field.NewScalar(o.Pe)
		dc.Fill(3.25)
		o.SmoothGridScale(dc)
		if math.Abs(dc.Mean()-3.25) > 1e-12 {
			t.Errorf("mean not preserved: %g", dc.Mean())
		}
		return nil
	})
}

func TestGradOfConstantIsZero(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	withOps(t, g, 2, func(o *Ops) error {
		s := field.NewScalar(o.Pe)
		s.Fill(5)
		gr := o.Grad(s)
		if gr.MaxAbs() > 1e-12 {
			t.Errorf("grad of constant: %g", gr.MaxAbs())
		}
		return nil
	})
}

func TestDistributedMatchesSerialOperators(t *testing.T) {
	// The same random smooth field must produce identical Laplacians on 1
	// and 6 ranks.
	g := grid.MustNew(12, 12, 12)
	ref := make([]float64, g.Total())
	{
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, _ := grid.NewPencil(g, c)
			o := New(pfft.NewPlan(pe))
			s := field.NewScalar(pe)
			s.SetFunc(func(x1, x2, x3 float64) float64 {
				return math.Sin(x1)*math.Cos(x2) + math.Sin(x2+2*x3)
			})
			copy(ref, o.Lap(s).Data)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := mpi.Run(6, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		o := New(pfft.NewPlan(pe))
		s := field.NewScalar(pe)
		s.SetFunc(func(x1, x2, x3 float64) float64 {
			return math.Sin(x1)*math.Cos(x2) + math.Sin(x2+2*x3)
		})
		lp := o.Lap(s)
		n := g.N
		pe.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2] + pe.Lo[2] + i3
			if math.Abs(lp.Data[idx]-ref[gidx]) > 1e-10 {
				t.Errorf("distributed lap differs at %d", gidx)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGradDivMatchesComposition(t *testing.T) {
	// GradDiv(v) must equal Grad(Div(v)) computed by composition.
	g := grid.MustNew(12, 12, 12)
	withOps(t, g, 2, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return math.Sin(x1) * math.Cos(x2), math.Cos(x2 + x3), math.Sin(2 * x3)
		})
		fast := o.GradDiv(v)
		slow := o.Grad(o.Div(v))
		for d := 0; d < 3; d++ {
			for i := range fast.C[d].Data {
				if math.Abs(fast.C[d].Data[i]-slow.C[d].Data[i]) > 1e-9 {
					t.Errorf("graddiv != grad(div) at d=%d i=%d: %g vs %g",
						d, i, fast.C[d].Data[i], slow.C[d].Data[i])
					return nil
				}
			}
		}
		return nil
	})
}

func TestGradDivVanishesOnSolenoidal(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	withOps(t, g, 1, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return math.Sin(x1) * math.Cos(x2), -math.Cos(x1) * math.Sin(x2), 0
		})
		if m := o.GradDiv(v).MaxAbs(); m > 1e-10 {
			t.Errorf("grad(div) of solenoidal field: %g", m)
		}
		return nil
	})
}

func TestNegGradDivIsPositiveSemidefinite(t *testing.T) {
	// <-grad(div v), v> = ||div v||^2 >= 0.
	g := grid.MustNew(12, 12, 12)
	withOps(t, g, 1, func(o *Ops) error {
		v := field.NewVector(o.Pe)
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return math.Sin(x1 + x3), math.Cos(2 * x2), math.Sin(x2) * math.Cos(x3)
		})
		gd := o.GradDiv(v)
		gd.Scale(-1)
		quad := gd.Dot(v)
		dv := o.Div(v)
		want := dv.Dot(dv)
		if math.Abs(quad-want) > 1e-8*(1+want) {
			t.Errorf("<-graddiv v, v> = %g want ||div v||^2 = %g", quad, want)
		}
		return nil
	})
}

func TestResampleMatchesSerialReference(t *testing.T) {
	// The distributed spectral transfer must agree with the serial
	// gather-based resampling for random smooth fields in both directions
	// and at several task counts.
	fine := grid.MustNew(16, 16, 16)
	coarse := grid.MustNew(8, 8, 8)
	fill := func(s *field.Scalar, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := s.P.Grid.N
		s.P.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((s.P.Lo[0]+i1)*n[1]+(s.P.Lo[1]+i2))*n[2] + s.P.Lo[2] + i3
			r := rand.New(rand.NewSource(seed + int64(gidx)))
			s.Data[idx] = r.NormFloat64()
			_ = rng
		})
	}
	for _, p := range []int{1, 2, 4} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			peF, err := grid.NewPencil(fine, c)
			if err != nil {
				return err
			}
			peC, err := grid.NewPencil(coarse, c)
			if err != nil {
				return err
			}
			opsF := New(pfft.NewPlan(peF))
			opsC := New(pfft.NewPlan(peC))
			s := field.NewScalar(peF)
			fill(s, 7)
			// Reference: gather, serial resample, compare pointwise.
			global := s.Gather()
			down := Resample(opsF, opsC, s)
			var want []float64
			if c.Rank() == 0 {
				want = serialResample(global, fine.N, coarse.N)
			}
			ref := field.NewScalar(peC)
			ref.Scatter(want)
			for i := range down.Data {
				if math.Abs(down.Data[i]-ref.Data[i]) > 1e-9 {
					t.Errorf("p=%d: restriction differs at %d: %g vs %g", p, i, down.Data[i], ref.Data[i])
					return nil
				}
			}
			// Prolongation back: restriction of the prolongation is the
			// identity on the coarse field.
			up := Resample(opsC, opsF, down)
			downAgain := Resample(opsF, opsC, up)
			for i := range down.Data {
				if math.Abs(down.Data[i]-downAgain.Data[i]) > 1e-9 {
					t.Errorf("p=%d: up-down roundtrip differs at %d", p, i)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestResampleAnisotropic(t *testing.T) {
	fine := grid.MustNew(16, 12, 8)
	coarse := grid.MustNew(8, 8, 8) // mixed: coarsen dims 0,1, keep dim 2
	_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		peF, _ := grid.NewPencil(fine, c)
		peC, _ := grid.NewPencil(coarse, c)
		opsF := New(pfft.NewPlan(peF))
		opsC := New(pfft.NewPlan(peC))
		s := field.NewScalar(peF)
		s.SetFunc(func(x1, x2, x3 float64) float64 {
			return 1 + math.Sin(x1)*math.Cos(x2) + 0.3*math.Cos(2*x3)
		})
		down := Resample(opsF, opsC, s)
		// The band-limited field transfers exactly.
		want := field.NewScalar(peC)
		want.SetFunc(func(x1, x2, x3 float64) float64 {
			return 1 + math.Sin(x1)*math.Cos(x2) + 0.3*math.Cos(2*x3)
		})
		for i := range down.Data {
			if math.Abs(down.Data[i]-want.Data[i]) > 1e-9 {
				t.Errorf("anisotropic transfer differs at %d: %g vs %g", i, down.Data[i], want.Data[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// serialResample is the gather-based reference (identical math to
// fft.Resample3Real, re-declared here to avoid an import cycle in tests).
func serialResample(global []float64, from, to [3]int) []float64 {
	return fftResample(global, from, to)
}

func TestBSplinePrefilterGivesExactInterpolation(t *testing.T) {
	// After prefiltering, the cubic B-spline interpolant must reproduce
	// the original nodal values exactly, and off-grid accuracy on a smooth
	// field must match (or beat) the Lagrange kernel.
	g := grid.MustNew(16, 16, 16)
	withOps(t, g, 1, func(o *Ops) error {
		orig := field.NewScalar(o.Pe)
		orig.SetFunc(func(x1, x2, x3 float64) float64 {
			return math.Sin(x1)*math.Cos(x2) + 0.5*math.Sin(2*x3)
		})
		coef := orig.Clone()
		o.BSplinePrefilter(coef)

		n := g.N
		// Nodal exactness.
		o.Pe.EachLocal(func(i1, i2, i3, idx int) {
			got := interp.EvalPeriodicBSpline(coef.Data, n, [3]float64{float64(i1), float64(i2), float64(i3)})
			if math.Abs(got-orig.Data[idx]) > 1e-10 {
				t.Fatalf("nodal value not reproduced at %d: %g vs %g", idx, got, orig.Data[idx])
			}
		})
		// Off-grid accuracy vs the exact function and the Lagrange kernel.
		rng := rand.New(rand.NewSource(11))
		h := 2 * math.Pi / 16
		var bsErr, lgErr float64
		for trial := 0; trial < 300; trial++ {
			p := [3]float64{rng.Float64() * 16, rng.Float64() * 16, rng.Float64() * 16}
			want := math.Sin(p[0]*h)*math.Cos(p[1]*h) + 0.5*math.Sin(2*p[2]*h)
			if e := math.Abs(interp.EvalPeriodicBSpline(coef.Data, n, p) - want); e > bsErr {
				bsErr = e
			}
			if e := math.Abs(interp.EvalPeriodic(orig.Data, n, p) - want); e > lgErr {
				lgErr = e
			}
		}
		if bsErr > 2*lgErr {
			t.Errorf("B-spline err %g much worse than Lagrange %g", bsErr, lgErr)
		}
		return nil
	})
}
