// Package diffreg is a from-scratch Go implementation of the SC16 paper
// "Distributed-Memory Large Deformation Diffeomorphic 3D Image
// Registration" (Mang, Gholami, Biros): a PDE-constrained optimal control
// solver for diffeomorphic image registration with a spectral
// discretization in space, a semi-Lagrangian scheme in time, analytic
// adjoints, an inexact preconditioned Gauss-Newton-Krylov optimizer,
// optional incompressibility (locally volume-preserving maps) via the
// Leray projection, and a distributed-memory execution model built on a
// pencil-decomposed FFT and a scatter-based off-grid interpolation.
//
// Ranks are goroutines inside the process (see internal/mpi), so a
// registration "runs on p tasks" without any external launcher:
//
//	res, err := diffreg.Register(template, reference, diffreg.Config{Tasks: 4})
//
// The package exposes the same knobs the paper evaluates: the
// regularization weight beta and seminorm (H1/H2), the number of
// semi-Lagrangian time steps nt, Gauss-Newton vs full Newton,
// incompressibility, beta-continuation, and the solver tolerances.
package diffreg

import (
	"fmt"

	"diffreg/internal/ckpt"
	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
)

// Volume is a dense 3D image on the periodic grid [0, 2*pi)^3 with
// dimensions N[0] x N[1] x N[2], stored row-major with dimension 2 fastest.
type Volume struct {
	N    [3]int
	Data []float64
}

// NewVolume allocates a zero volume.
func NewVolume(n1, n2, n3 int) Volume {
	return Volume{N: [3]int{n1, n2, n3}, Data: make([]float64, n1*n2*n3)}
}

// At returns the intensity at integer grid indices.
func (v Volume) At(i1, i2, i3 int) float64 {
	return v.Data[(i1*v.N[1]+i2)*v.N[2]+i3]
}

// Set writes the intensity at integer grid indices.
func (v Volume) Set(i1, i2, i3 int, x float64) {
	v.Data[(i1*v.N[1]+i2)*v.N[2]+i3] = x
}

// RegKind selects the velocity regularization seminorm.
type RegKind = regopt.RegKind

// Regularization seminorms: H1 penalizes ||grad v||^2 (the functional in
// eq. 2a); H2 penalizes ||lap v||^2, whose inverse (the biharmonic
// inverse) is the paper's spectral preconditioner and the default for
// volume-preserving registration.
const (
	RegH1 = regopt.RegH1
	RegH2 = regopt.RegH2
)

// Config selects the problem formulation and solver parameters. The zero
// value is completed with the paper's defaults (beta = 1e-2, H2, nt = 4,
// Gauss-Newton, gtol = 1e-2, 50 outer iterations, 1 task).
type Config struct {
	// Tasks is the number of ranks the solve is distributed over.
	Tasks int
	// Beta is the regularization weight (> 0).
	Beta float64
	// Reg selects the H1 or H2 seminorm.
	Reg RegKind
	// Incompressible enforces div v = 0 exactly through the Leray
	// projection, producing a locally volume preserving (isochoric)
	// diffeomorphism.
	Incompressible bool
	// DivPenalty adds the soft volume-change penalty gamma/2 ||div v||^2
	// instead of the hard constraint (ignored when Incompressible is set).
	DivPenalty float64
	// Distance selects the image similarity measure: "l2" (default, the
	// paper's squared L2 misfit) or "ncc" (normalized cross correlation,
	// invariant to affine intensity rescalings — for multi-scanner data).
	Distance string
	// Precision selects the hot-path floating-point width: "float64"
	// (default, the bit-exact reference) or "float32", which narrows the
	// pencil-transpose wire format, the halo exchanges, and the tricubic
	// gather while keeping all misfit/gradient reductions in float64 —
	// half the transpose bytes and a faster interpolation sweep at
	// registration-tolerance accuracy.
	Precision string
	// InitialVelocity warm-starts the solve from a previously recovered
	// velocity (e.g. a prior registration of a similar pair). All three
	// components must match the image dimensions.
	InitialVelocity *[3]Volume
	// Mask, when non-nil, switches to the weighted L2 misfit
	// 1/2||sqrt(Mask)(rho1 - rhoR)||^2: only the masked region drives the
	// deformation. Incompatible with Distance = "ncc".
	Mask *Volume
	// ShiftedPrec augments the paper's inverse-regularization spectral
	// preconditioner with a data-term shift, reducing the beta-sensitivity
	// of Table V (a cheap stand-in for multilevel preconditioning).
	ShiftedPrec bool
	// TwoLevelPrec switches to the two-level coarse-grid Hessian
	// preconditioner — the multilevel preconditioning the paper lists as
	// future work. Strongest at small beta; subsumes ShiftedPrec.
	TwoLevelPrec bool
	// TimeSteps is the number of semi-Lagrangian steps nt.
	TimeSteps int
	// VelocityIntervals parameterizes the velocity by this many
	// piecewise-constant-in-time coefficient fields (default 1: the
	// stationary velocity of the paper; > 1 is the non-stationary
	// extension of §V, useful for time-series-like deformations).
	// TimeSteps must be divisible by it.
	VelocityIntervals int
	// FullNewton keeps the second-order terms of (5); the default is the
	// Gauss-Newton approximation used throughout the paper's experiments.
	FullNewton bool
	// FirstOrder switches to the preconditioned steepest descent baseline.
	FirstOrder bool
	// GradTol is the relative gradient reduction for convergence.
	GradTol float64
	// MaxNewtonIters bounds the outer iterations.
	MaxNewtonIters int
	// MaxKrylovIters bounds the PCG iterations inside each Newton step
	// (default 200). Serving deployments lower it to bound per-job compute.
	MaxKrylovIters int
	// ContinuationBetas, when set, runs beta-continuation over this
	// decreasing schedule (ending at the last value).
	ContinuationBetas []float64
	// MultilevelLevels > 1 runs coarse-to-fine grid continuation with this
	// many levels (stationary velocity only): the velocity solved on a
	// spectrally restricted grid warm-starts the next finer level.
	MultilevelLevels int
	// Smooth applies the paper's grid-scale Gaussian preprocessing.
	Smooth bool
	// NormalizeIntensities rescales both images to [0, 1] before solving.
	NormalizeIntensities bool
	// Verbose emits per-iteration progress lines through Logf.
	Verbose bool
	// Logf receives progress output when Verbose is set (default: stdout
	// via fmt.Printf behavior is NOT assumed; nil Logf discards).
	Logf func(format string, args ...any)

	// CheckpointPath enables periodic checkpointing of the optimizer state
	// (stationary velocity solves without grid continuation only): every
	// CheckpointEvery outer iterations the velocity iterate, continuation
	// level, and convergence state are written atomically to this file.
	CheckpointPath string
	// CheckpointEvery is the checkpoint interval in outer iterations
	// (default 5 when CheckpointPath is set).
	CheckpointEvery int
	// Resume restarts from the checkpoint at CheckpointPath instead of the
	// zero (or InitialVelocity) guess. The resumed trajectory is
	// bit-identical to the uninterrupted run at the same rank count.
	Resume bool
	// StopRequested is polled at every outer iteration boundary (e.g. from
	// a signal handler); returning true interrupts the solve after
	// flushing a final checkpoint, and Result.Interrupted is set.
	StopRequested func() bool
	// ChaosSpec attaches a deterministic fault-injection plan to the
	// communication layer for resilience testing, e.g.
	// "seed=7;site=1:fft-comm:send:3:bitflip". See mpi.ParseFaultSpec for
	// the grammar. Injected corruption is detected by receive-side
	// validation and surfaces as a typed *mpi.CommError.
	ChaosSpec string

	// OnProgress receives a per-continuation-level event at the start of
	// each level and a per-iteration event after every accepted outer step,
	// delivered from rank 0 only (one consumer sees one stream). The
	// callback runs on the solver's critical path — keep it cheap and do
	// not call back into the solve.
	OnProgress func(ProgressEvent)

	// Plans, when non-nil, supplies cached per-rank operator sets (FFT
	// plans, spectral symbol tables, workspaces) keyed by grid dims and
	// task count, so repeated solves of the same shape skip plan
	// construction entirely — the job server's warm path. See PlanSource.
	Plans PlanSource
}

// ProgressEvent is one solver progress notification; see core.ProgressEvent.
type ProgressEvent = core.ProgressEvent

// PlanLease is one job's exclusive checkout of cached per-rank operator
// sets. Ops returns the cached set for a rank (nil on a cache miss — the
// solve then builds its own); Put donates the set a missing rank built so
// the next solve of this shape hits; Release returns the checkout. The
// lease owns the sets between Acquire and Release: no other job may use
// them (pfft plans are single-owner).
type PlanLease interface {
	Ops(rank int) *spectral.Ops
	Put(rank int, ops *spectral.Ops)
	Release()
}

// BatchPlanLease is a lease over slots operator-set slots per rank, the
// checkout shape of a fused multi-job solve: slot j < B belongs to job
// j's fiber and the final slot is the scheduler's fused executor. A
// plain lease's Ops/Put address slot 0.
type BatchPlanLease interface {
	PlanLease
	OpsSlot(rank, slot int) *spectral.Ops
	PutSlot(rank, slot int, ops *spectral.Ops)
}

// PlanSource hands out plan leases; implemented by the job server's
// PlanCache. Acquire never blocks on a busy cache — it returns a miss
// lease instead, so concurrent same-shape jobs each get exclusive sets.
// precision is the canonical precision string ("float64" or "float32")
// the solve will run at; cached operator sets bake their wire format into
// their workspaces, so an implementation must never hand a lease built at
// one precision to a solve requesting the other. slots is the number of
// operator sets per rank the checkout needs: 1 for a solo solve, B+1 for
// a fused batch of B jobs (fused arenas are sized for 3·B-field
// transforms, so entries must be keyed by slots — a singleton job must
// never check out a fused batch's arena, and vice versa).
type PlanSource interface {
	Acquire(n [3]int, tasks int, precision string, slots int) PlanLease
}

// Checkpointable reports whether this configuration supports
// checkpoint/restart: the checkpoint format captures a single stationary
// velocity iterate, so grid continuation (MultilevelLevels > 1) and
// non-stationary velocities (VelocityIntervals > 1) are incompatible —
// Register rejects CheckpointPath/Resume for them. Supervisors that
// checkpoint jobs defensively (the regserve retry spool) use this to know
// which jobs must recover from scratch instead.
func (c Config) Checkpointable() bool {
	return c.MultilevelLevels <= 1 && c.VelocityIntervals <= 1
}

func (c Config) withDefaults() Config {
	if c.Tasks == 0 {
		c.Tasks = 1
	}
	if c.Beta == 0 {
		c.Beta = 1e-2
	}
	if c.TimeSteps == 0 {
		c.TimeSteps = 4
	}
	if c.GradTol == 0 {
		c.GradTol = 1e-2
	}
	if c.MaxNewtonIters == 0 {
		c.MaxNewtonIters = 50
	}
	if c.VelocityIntervals == 0 {
		c.VelocityIntervals = 1
	}
	return c
}

// Result reports a completed registration.
type Result struct {
	// Converged is true when the gradient tolerance was met.
	Converged bool
	// NewtonIters and HessianMatvecs count the optimizer work.
	NewtonIters    int
	HessianMatvecs int

	// MisfitInit and MisfitFinal are 1/2||rho(1)-rho_R||^2 before/after.
	MisfitInit  float64
	MisfitFinal float64
	// GnormInit and GnormFinal are the reduced gradient norms.
	GnormInit  float64
	GnormFinal float64

	// DetMin/DetMax/DetMean summarize det(grad y1); DetMin > 0 certifies a
	// diffeomorphism, and DetMin ~ DetMax ~ 1 a volume-preserving one.
	DetMin  float64
	DetMax  float64
	DetMean float64

	// Warped is the deformed template rho_T(y1); DetGrad the pointwise
	// Jacobian determinant; Velocity and Displacement the stationary
	// velocity and the displacement field of the map (3 components each).
	Warped       Volume
	DetGrad      Volume
	Velocity     [3]Volume
	Displacement [3]Volume
	// VelocitySeries holds all interval coefficients when
	// VelocityIntervals > 1 (VelocitySeries[0] == Velocity's data).
	VelocitySeries [][3]Volume

	// Phases is the per-phase performance breakdown (maximum over ranks);
	// communication is modeled from message counts, execution measured.
	Phases PhaseBreakdown
	// FFTs and InterpSweeps count the distributed transforms and
	// interpolation passes the solve performed.
	FFTs         int64
	InterpSweeps int64

	// InterpMsgs and InterpBytes count this rank's interpolation-phase
	// point-to-point traffic (ghost halos plus scattered-value returns).
	// FusedInterpExchanges counts cross-job fused gather exchanges and
	// FusedInterpJobs the job requests they carried; both are zero for
	// solo solves, and Jobs/Exchanges is the achieved job-axis batching
	// factor of a fused one.
	InterpMsgs           int64
	InterpBytes          int64
	FusedInterpExchanges int64
	FusedInterpJobs      int64

	// History records the outer-iteration convergence trace.
	History []IterationRecord

	// Interrupted is true when StopRequested ended the solve early; the
	// result holds the last accepted iterate and a final checkpoint was
	// flushed (when CheckpointPath is set). Warped/DetGrad/Displacement
	// are empty — resume to finish the solve.
	Interrupted bool
	// Failed is true when the solver could not keep a finite objective
	// state even after its recovery ladder; FailReason explains why.
	Failed     bool
	FailReason string
	// Degradations lists every solver guard that fired (PCG breakdowns,
	// direction fallbacks, rewinds, continuation-level retries) — empty
	// for a healthy run.
	Degradations []string
	// CheckpointWriteError reports a failed checkpoint write (the solve
	// itself continues when a checkpoint cannot be written).
	CheckpointWriteError string
}

// IterationRecord is one outer (Newton or descent) iteration.
type IterationRecord struct {
	Iter      int
	Objective float64
	Misfit    float64
	Gnorm     float64
	CGIters   int
	Step      float64
}

// PhaseBreakdown mirrors the timing columns of the paper's tables.
type PhaseBreakdown = core.PhaseBreakdown

// Register solves the registration problem for a template/reference pair.
// Both volumes must have identical dimensions, each at least 4 points per
// direction and large enough for the pencil decomposition over
// cfg.Tasks ranks.
func Register(template, reference Volume, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if template.N != reference.N {
		return nil, fmt.Errorf("diffreg: template %v and reference %v dimensions differ", template.N, reference.N)
	}
	if len(template.Data) != template.N[0]*template.N[1]*template.N[2] {
		return nil, fmt.Errorf("diffreg: template data length %d does not match dims %v", len(template.Data), template.N)
	}
	if len(reference.Data) != len(template.Data) {
		return nil, fmt.Errorf("diffreg: reference data length %d does not match dims %v", len(reference.Data), reference.N)
	}
	g, err := grid.New(template.N[0], template.N[1], template.N[2])
	if err != nil {
		return nil, err
	}
	precision, err := prec.Parse(cfg.Precision)
	if err != nil {
		return nil, fmt.Errorf("diffreg: %w", err)
	}
	var dist regopt.Distance
	switch cfg.Distance {
	case "", "l2", "L2":
		dist = nil // regopt defaults to L2
	case "ncc", "NCC":
		if cfg.Mask != nil {
			return nil, fmt.Errorf("diffreg: Mask is incompatible with the NCC distance")
		}
		dist = regopt.NCCDistance{}
	default:
		return nil, fmt.Errorf("diffreg: unknown distance %q (l2 | ncc)", cfg.Distance)
	}
	if cfg.Mask != nil {
		if cfg.Mask.N != template.N {
			return nil, fmt.Errorf("diffreg: mask dims %v differ from image dims %v", cfg.Mask.N, template.N)
		}
	}

	var faults *mpi.FaultPlan
	if cfg.ChaosSpec != "" {
		faults, err = mpi.ParseFaultSpec(cfg.ChaosSpec)
		if err != nil {
			return nil, fmt.Errorf("diffreg: %w", err)
		}
	}
	// Reject the invalid combinations before any checkpoint I/O happens.
	if (cfg.CheckpointPath != "" || cfg.Resume) && cfg.MultilevelLevels > 1 {
		return nil, fmt.Errorf("diffreg: checkpoint/restart is incompatible with grid continuation (MultilevelLevels > 1)")
	}
	if (cfg.CheckpointPath != "" || cfg.Resume) && cfg.VelocityIntervals > 1 {
		return nil, fmt.Errorf("diffreg: checkpoint/restart is incompatible with non-stationary velocities (VelocityIntervals > 1)")
	}
	var resume *ckpt.State
	if cfg.Resume {
		if cfg.CheckpointPath == "" {
			return nil, fmt.Errorf("diffreg: Resume requires CheckpointPath")
		}
		resume, err = ckpt.Load(cfg.CheckpointPath)
		if err != nil {
			return nil, err
		}
		if resume.N != template.N {
			return nil, fmt.Errorf("diffreg: checkpoint dims %v do not match image dims %v", resume.N, template.N)
		}
		// A checkpoint written on one hot path does not reproduce the
		// other path's trajectory; reject with the typed error instead of
		// silently resuming into a different numerical run.
		if written := resume.Precision; written != "" && written != precision.String() {
			return nil, &ckpt.PrecisionMismatchError{
				Path: cfg.CheckpointPath, Written: written, Requested: precision.String(),
			}
		}
	}

	var lease PlanLease
	if cfg.Plans != nil {
		if lease = cfg.Plans.Acquire(template.N, cfg.Tasks, precision.String(), 1); lease != nil {
			defer lease.Release()
		}
	}

	res := &Result{}
	var solveErr error
	_, err = mpi.RunWith(cfg.Tasks, mpi.RunOpts{Cost: mpi.DefaultCostModel(), Faults: faults}, func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		rhoT := field.NewScalar(pe)
		rhoR := field.NewScalar(pe)
		var tData, rData []float64
		if c.Rank() == 0 {
			tData, rData = template.Data, reference.Data
		}
		rhoT.Scatter(tData)
		rhoR.Scatter(rData)
		if cfg.NormalizeIntensities {
			imaging.Normalize(rhoT)
			imaging.Normalize(rhoR)
		}
		if cfg.Mask != nil {
			w := field.NewScalar(pe)
			var mData []float64
			if c.Rank() == 0 {
				mData = cfg.Mask.Data
			}
			w.Scatter(mData)
			dist = regopt.WeightedL2Distance{W: w}
		}
		var v0 *field.Vector
		if cfg.InitialVelocity != nil {
			v0 = field.NewVector(pe)
			for d := 0; d < 3; d++ {
				var vd []float64
				if c.Rank() == 0 {
					vd = cfg.InitialVelocity[d].Data
				}
				v0.C[d].Scatter(vd)
			}
		}

		ccfg := core.Config{
			V0:        v0,
			Precision: precision,
			Intervals: cfg.VelocityIntervals,
			Opt: regopt.Options{
				Beta:           cfg.Beta,
				Reg:            cfg.Reg,
				Incompressible: cfg.Incompressible,
				DivPenalty:     cfg.DivPenalty,
				Distance:       dist,
				ShiftedPrec:    cfg.ShiftedPrec,
				TwoLevelPrec:   cfg.TwoLevelPrec,
				Nt:             cfg.TimeSteps,
				GaussNewton:    !cfg.FullNewton,
			},
			Newton:            optim.DefaultNewtonOptions(),
			ContinuationBetas: cfg.ContinuationBetas,
			FirstOrder:        cfg.FirstOrder,
			Smooth:            cfg.Smooth,
			Checkpoint: core.CheckpointConfig{
				Path:   cfg.CheckpointPath,
				Every:  cfg.CheckpointEvery,
				Resume: resume,
				Stop:   cfg.StopRequested,
			},
		}
		ccfg.Newton.GradTol = cfg.GradTol
		ccfg.Newton.MaxIters = cfg.MaxNewtonIters
		if cfg.MaxKrylovIters > 0 {
			ccfg.Newton.MaxKrylov = cfg.MaxKrylovIters
		}
		if cfg.Verbose && cfg.Logf != nil && c.Rank() == 0 {
			ccfg.Newton.Log = cfg.Logf
		}
		if cfg.OnProgress != nil && c.Rank() == 0 {
			ccfg.OnProgress = cfg.OnProgress
		}
		if lease != nil {
			if ops := lease.Ops(c.Rank()); ops != nil {
				if err := ops.Rebind(pe); err != nil {
					solveErr = err
					return err
				}
				ccfg.Ops = ops
			}
		}

		var out *core.Outcome
		if cfg.MultilevelLevels > 1 {
			out, _, err = core.RegisterMultilevel(pe, rhoT, rhoR, ccfg, cfg.MultilevelLevels)
		} else {
			out, err = core.Register(pe, rhoT, rhoR, ccfg)
		}
		if err != nil {
			solveErr = err
			return err
		}
		if lease != nil && out.Ops != nil {
			// Donate the operator set this rank used (a no-op on a cache
			// hit); the cache installs the complete per-rank collection on
			// Release.
			lease.Put(c.Rank(), out.Ops)
		}
		// Gather global artifacts on rank 0 and fill the shared result. An
		// interrupted or failed solve has no deformation map — only the
		// velocity iterate exists.
		var warped, det []float64
		var vel, disp [3][]float64
		if out.Warped != nil {
			warped = out.Warped.Gather()
		}
		if out.Det != nil {
			det = out.Det.Gather()
		}
		for d := 0; d < 3; d++ {
			vel[d] = out.V.C[d].Gather()
			if out.U != nil {
				disp[d] = out.U.C[d].Gather()
			}
		}
		var series [][3][]float64
		if len(out.VSeries) > 1 {
			series = make([][3][]float64, len(out.VSeries))
			for ci, vc := range out.VSeries {
				for d := 0; d < 3; d++ {
					series[ci][d] = vc.C[d].Gather()
				}
			}
		}
		if c.Rank() == 0 {
			res.Converged = out.Result.Converged
			res.Interrupted = out.Result.Interrupted
			res.Failed = out.Result.Failed
			res.FailReason = out.Result.FailReason
			res.Degradations = out.Result.Degradations
			if out.CheckpointErr != nil {
				res.CheckpointWriteError = out.CheckpointErr.Error()
			}
			res.NewtonIters = out.Counts.NewtonIters
			res.HessianMatvecs = out.Counts.Matvecs
			res.MisfitInit = out.MisfitInit
			res.MisfitFinal = out.MisfitFinal
			res.GnormInit = out.Result.GnormInit
			res.GnormFinal = out.Result.GnormLast
			res.DetMin, res.DetMax, res.DetMean = out.DetMin, out.DetMax, out.DetMean
			res.Warped = Volume{N: g.N, Data: warped}
			res.DetGrad = Volume{N: g.N, Data: det}
			for d := 0; d < 3; d++ {
				res.Velocity[d] = Volume{N: g.N, Data: vel[d]}
				res.Displacement[d] = Volume{N: g.N, Data: disp[d]}
			}
			for _, sc := range series {
				var vols [3]Volume
				for d := 0; d < 3; d++ {
					vols[d] = Volume{N: g.N, Data: sc[d]}
				}
				res.VelocitySeries = append(res.VelocitySeries, vols)
			}
			res.Phases = out.Phases
			res.FFTs = out.Counts.FFTs
			res.InterpSweeps = out.Counts.InterpSweeps
			res.InterpMsgs = out.Counts.InterpMsgs
			res.InterpBytes = out.Counts.InterpBytes
			for _, h := range out.Result.History {
				res.History = append(res.History, IterationRecord{
					Iter: h.Iter, Objective: h.J, Misfit: h.Misfit,
					Gnorm: h.Gnorm, CGIters: h.CGIters, Step: h.Step,
				})
			}
		}
		return nil
	})
	if solveErr != nil {
		return nil, solveErr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SyntheticProblem builds the paper's synthetic benchmark pair (§IV-A1) at
// the given resolution: the template is the smooth sinusoidal phantom and
// the reference is the template advected by the known velocity v*
// (solenoidal variant when incompressible is set).
func SyntheticProblem(n1, n2, n3, nt int, incompressible bool) (template, reference Volume, err error) {
	g, err := grid.New(n1, n2, n3)
	if err != nil {
		return Volume{}, Volume{}, err
	}
	tv := NewVolume(n1, n2, n3)
	rv := NewVolume(n1, n2, n3)
	_, err = mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.SyntheticTemplate(pe)
		var v *field.Vector
		if incompressible {
			v = imaging.SolenoidalVelocity(pe)
		} else {
			v = imaging.SyntheticVelocity(pe)
		}
		rhoR := imaging.MakeReference(ops, rhoT, v, nt, incompressible)
		copy(tv.Data, rhoT.Data)
		copy(rv.Data, rhoR.Data)
		return nil
	})
	if err != nil {
		return Volume{}, Volume{}, err
	}
	return tv, rv, nil
}

// BrainPhantomPair builds two subjects of the deterministic brain phantom
// (the NIREP multi-subject analogue; see DESIGN.md) at the given
// resolution, normalized and ready for registration.
func BrainPhantomPair(n1, n2, n3 int, seedA, seedB int64) (a, b Volume, err error) {
	g, err := grid.New(n1, n2, n3)
	if err != nil {
		return Volume{}, Volume{}, err
	}
	av := NewVolume(n1, n2, n3)
	bv := NewVolume(n1, n2, n3)
	_, err = mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		sa := imaging.BrainPhantom(pe, seedA)
		sb := imaging.BrainPhantom(pe, seedB)
		imaging.PrepareImages(ops, sa, sb)
		copy(av.Data, sa.Data)
		copy(bv.Data, sb.Data)
		return nil
	})
	if err != nil {
		return Volume{}, Volume{}, err
	}
	return av, bv, nil
}
