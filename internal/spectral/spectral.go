// Package spectral implements the spatial differential operators of the
// paper as diagonal scalings in Fourier space: gradient, divergence,
// (vector) Laplacian, biharmonic operator, their inverses, the Leray
// projection that eliminates the incompressibility constraint, and the
// Gaussian smoothing applied to the input images. All operators act on
// distributed fields through the pencil FFT, so they are exact up to
// spectral accuracy and invertible at the cost of a diagonal scaling
// (§III-B1 of the paper).
package spectral

import (
	"math"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
)

// Ops bundles the FFT plan with the operator implementations.
type Ops struct {
	Plan *pfft.Plan
	Pe   *grid.Pencil
}

// New builds the operator set for a pencil decomposition.
func New(plan *pfft.Plan) *Ops {
	return &Ops{Plan: plan, Pe: plan.Pe}
}

// nyquistZero returns 0 for the Nyquist wavenumber of an even-length
// dimension and ik otherwise; first derivatives must drop the Nyquist mode
// to stay real and skew-symmetric.
func derivFactor(k, n int) complex128 {
	if 2*k == n {
		return 0
	}
	return complex(0, float64(k))
}

// Forward transforms a scalar field to its local spectral block.
func (o *Ops) Forward(s *field.Scalar) []complex128 { return o.Plan.Forward(s.Data) }

// InverseInto transforms a spectral block back into the scalar field dst.
func (o *Ops) InverseInto(spec []complex128, dst *field.Scalar) {
	copy(dst.Data, o.Plan.Inverse(spec))
}

// DiagScalar applies the real diagonal symbol f(k1,k2,k3) to a scalar
// field, returning a new field.
func (o *Ops) DiagScalar(s *field.Scalar, f func(k1, k2, k3 int) float64) *field.Scalar {
	spec := o.Plan.Forward(s.Data)
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		spec[idx] *= complex(f(k1, k2, k3), 0)
	})
	out := field.NewScalar(o.Pe)
	copy(out.Data, o.Plan.Inverse(spec))
	return out
}

// DiagVector applies a real diagonal symbol componentwise to a vector
// field, returning a new field.
func (o *Ops) DiagVector(v *field.Vector, f func(k1, k2, k3 int) float64) *field.Vector {
	out := field.NewVector(o.Pe)
	for d := 0; d < 3; d++ {
		spec := o.Plan.Forward(v.C[d].Data)
		o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
			spec[idx] *= complex(f(k1, k2, k3), 0)
		})
		copy(out.C[d].Data, o.Plan.Inverse(spec))
	}
	return out
}

// Grad returns the spectral gradient of a scalar field. One forward
// transform is shared by the three component derivatives — the
// "optimization for the grad operator" the paper describes.
func (o *Ops) Grad(s *field.Scalar) *field.Vector {
	spec := o.Plan.Forward(s.Data)
	n := o.Pe.Grid.N
	out := field.NewVector(o.Pe)
	work := make([]complex128, len(spec))
	for d := 0; d < 3; d++ {
		o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
			var f complex128
			switch d {
			case 0:
				f = derivFactor(k1, n[0])
			case 1:
				f = derivFactor(k2, n[1])
			default:
				f = derivFactor(k3, n[2])
			}
			work[idx] = spec[idx] * f
		})
		copy(out.C[d].Data, o.Plan.Inverse(work))
	}
	return out
}

// Div returns the spectral divergence of a vector field.
func (o *Ops) Div(v *field.Vector) *field.Scalar {
	n := o.Pe.Grid.N
	var acc []complex128
	for d := 0; d < 3; d++ {
		spec := o.Plan.Forward(v.C[d].Data)
		o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
			var f complex128
			switch d {
			case 0:
				f = derivFactor(k1, n[0])
			case 1:
				f = derivFactor(k2, n[1])
			default:
				f = derivFactor(k3, n[2])
			}
			spec[idx] *= f
		})
		if acc == nil {
			acc = spec
		} else {
			sum := acc
			par.For(len(sum), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					sum[i] += spec[i]
				}
			})
		}
	}
	out := field.NewScalar(o.Pe)
	copy(out.Data, o.Plan.Inverse(acc))
	return out
}

// Lap returns the Laplacian of a scalar field (symbol -|k|^2).
func (o *Ops) Lap(s *field.Scalar) *field.Scalar {
	return o.DiagScalar(s, func(k1, k2, k3 int) float64 {
		return -ksq(k1, k2, k3)
	})
}

// InvLap returns the zero-mean solution of lap(u) = s; the k=0 mode is
// projected out (the standard pseudo-inverse on the torus).
func (o *Ops) InvLap(s *field.Scalar) *field.Scalar {
	return o.DiagScalar(s, func(k1, k2, k3 int) float64 {
		q := ksq(k1, k2, k3)
		if q == 0 {
			return 0
		}
		return -1 / q
	})
}

// VecLap applies the Laplacian componentwise to a vector field.
func (o *Ops) VecLap(v *field.Vector) *field.Vector {
	return o.DiagVector(v, func(k1, k2, k3 int) float64 {
		return -ksq(k1, k2, k3)
	})
}

// Biharm applies the biharmonic operator lap^2 componentwise (symbol |k|^4).
func (o *Ops) Biharm(v *field.Vector) *field.Vector {
	return o.DiagVector(v, func(k1, k2, k3 int) float64 {
		q := ksq(k1, k2, k3)
		return q * q
	})
}

// InvBiharm applies the pseudo-inverse of the biharmonic operator, the
// preconditioner of the paper ("the inverse of the biharmonic operator,
// applied in nearly linear time using FFTs").
func (o *Ops) InvBiharm(v *field.Vector) *field.Vector {
	return o.DiagVector(v, func(k1, k2, k3 int) float64 {
		q := ksq(k1, k2, k3)
		if q == 0 {
			return 0
		}
		return 1 / (q * q)
	})
}

// Leray applies the projection P = I - grad lap^{-1} div onto
// divergence-free fields: in Fourier space v_k <- v_k - k (k . v_k)/|k|^2.
// The projected field satisfies div(Pv) = 0 to machine precision, which is
// how the incompressibility constraint (2d) is eliminated.
func (o *Ops) Leray(v *field.Vector) *field.Vector {
	specs := [3][]complex128{}
	for d := 0; d < 3; d++ {
		specs[d] = o.Plan.Forward(v.C[d].Data)
	}
	n := o.Pe.Grid.N
	// In Fourier space the projection is v_k -= k (k . v_k)/|k|^2, with the
	// Nyquist-filtered wavenumbers so that P matches the discrete Div/Grad
	// operators exactly (then div(Pv) = 0 and P^2 = P to machine precision).
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		kk := [3]float64{kfilt(k1, n[0]), kfilt(k2, n[1]), kfilt(k3, n[2])}
		q := kk[0]*kk[0] + kk[1]*kk[1] + kk[2]*kk[2]
		if q == 0 {
			return
		}
		dot := complex(kk[0], 0)*specs[0][idx] + complex(kk[1], 0)*specs[1][idx] + complex(kk[2], 0)*specs[2][idx]
		for d := 0; d < 3; d++ {
			specs[d][idx] -= complex(kk[d]/q, 0) * dot
		}
	})
	out := field.NewVector(o.Pe)
	for d := 0; d < 3; d++ {
		copy(out.C[d].Data, o.Plan.Inverse(specs[d]))
	}
	return out
}

// GradDiv applies the operator grad(div v) in one spectral pass (symbol
// -k k^T). The negated operator -grad div is symmetric positive
// semidefinite and penalizes exactly the compressible modes that the
// Leray projection removes; it implements the soft volume-change penalty
// gamma/2 ||div v||^2 (the NIFTYREG-style alternative to the paper's hard
// constraint).
func (o *Ops) GradDiv(v *field.Vector) *field.Vector {
	specs := [3][]complex128{}
	for d := 0; d < 3; d++ {
		specs[d] = o.Plan.Forward(v.C[d].Data)
	}
	n := o.Pe.Grid.N
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		kk := [3]float64{kfilt(k1, n[0]), kfilt(k2, n[1]), kfilt(k3, n[2])}
		dot := complex(kk[0], 0)*specs[0][idx] + complex(kk[1], 0)*specs[1][idx] + complex(kk[2], 0)*specs[2][idx]
		for d := 0; d < 3; d++ {
			// grad(div) has symbol (ik_d)(ik_e) = -k_d k_e.
			specs[d][idx] = -complex(kk[d], 0) * dot
		}
	})
	out := field.NewVector(o.Pe)
	for d := 0; d < 3; d++ {
		copy(out.C[d].Data, o.Plan.Inverse(specs[d]))
	}
	return out
}

// GaussianSmooth convolves the scalar field in place with a periodic
// Gaussian of standard deviation sigma[d] in dimension d. The paper uses
// sigma equal to one grid cell (bandwidth 2*pi/N) to make raw images
// spectrally differentiable.
func (o *Ops) GaussianSmooth(s *field.Scalar, sigma [3]float64) {
	spec := o.Plan.Forward(s.Data)
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		e := float64(k1*k1)*sigma[0]*sigma[0] + float64(k2*k2)*sigma[1]*sigma[1] + float64(k3*k3)*sigma[2]*sigma[2]
		spec[idx] *= complex(math.Exp(-e/2), 0)
	})
	copy(s.Data, o.Plan.Inverse(spec))
}

// SmoothGridScale smooths with the paper's default bandwidth of one grid
// spacing in each dimension.
func (o *Ops) SmoothGridScale(s *field.Scalar) {
	g := o.Pe.Grid
	o.GaussianSmooth(s, [3]float64{g.Spacing(0), g.Spacing(1), g.Spacing(2)})
}

func ksq(k1, k2, k3 int) float64 {
	return float64(k1*k1 + k2*k2 + k3*k3)
}

// kfilt returns the wavenumber as a float with the Nyquist mode of
// even-length dimensions removed, mirroring derivFactor.
func kfilt(k, n int) float64 {
	if 2*k == n {
		return 0
	}
	return float64(k)
}

// Resample spectrally transfers a scalar field between two grids on the
// same communicator (restriction when dst is coarser, zero-padding
// prolongation when finer) without any gather: the shared Fourier modes
// are routed directly to their destination owners.
func Resample(src, dst *Ops, s *field.Scalar) *field.Scalar {
	spec := src.Plan.Forward(s.Data)
	moved := pfft.TransferSpectrum(src.Plan, dst.Plan, spec)
	out := field.NewScalar(dst.Pe)
	copy(out.Data, dst.Plan.Inverse(moved))
	return out
}

// ResampleVector transfers all three components.
func ResampleVector(src, dst *Ops, v *field.Vector) *field.Vector {
	out := field.NewVector(dst.Pe)
	for d := 0; d < 3; d++ {
		out.C[d] = Resample(src, dst, v.C[d])
	}
	return out
}

// BSplinePrefilter converts nodal values to cubic B-spline coefficients in
// place: an exact spectral division by the B-spline sampling symbol on the
// periodic domain. After prefiltering, the B-spline interpolant (package
// interp) reproduces the original nodal values exactly.
func (o *Ops) BSplinePrefilter(s *field.Scalar) {
	n := o.Pe.Grid.N
	spec := o.Plan.Forward(s.Data)
	o.Plan.EachSpecPar(func(idx, k1, k2, k3 int) {
		f := interp.BSplineSymbol(k1, n[0]) * interp.BSplineSymbol(k2, n[1]) * interp.BSplineSymbol(k3, n[2])
		spec[idx] /= complex(f, 0)
	})
	copy(s.Data, o.Plan.Inverse(spec))
}
