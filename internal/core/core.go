// Package core orchestrates a complete registration solve: it wires the
// spectral operators, transport solvers, optimality system, and the
// Newton-Krylov optimizer together, runs the optimization, reconstructs
// the deformation map, and collects the per-phase performance figures the
// paper's tables report (time to solution, FFT communication/execution,
// interpolation communication/execution).
package core

import (
	"fmt"
	"runtime"
	"time"

	"diffreg/internal/ckpt"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// Config selects the problem formulation and solver parameters.
type Config struct {
	Opt    regopt.Options
	Newton optim.NewtonOptions
	// ContinuationBetas, when non-empty, runs parameter continuation over
	// this decreasing schedule before (and instead of) a single solve at
	// Opt.Beta.
	ContinuationBetas []float64
	// FirstOrder switches to the preconditioned steepest-descent baseline.
	FirstOrder bool
	// SkipMap disables the deformation-map reconstruction (used by pure
	// timing runs).
	SkipMap bool
	// Smooth applies the paper's grid-scale Gaussian preprocessing to the
	// input images before solving.
	Smooth bool
	// Intervals selects the number of piecewise-constant-in-time velocity
	// coefficients (1 = the paper's stationary velocity; > 1 enables the
	// time-varying extension of §V). Opt.Nt must be divisible by it.
	Intervals int
	// V0 warm-starts the stationary solve (used by grid continuation);
	// nil means the zero velocity.
	V0 *field.Vector
	// Precision selects the hot-path floating-point width: the transpose
	// wire format and the semi-Lagrangian gather. The zero value is the
	// float64 reference path; prec.F32 runs them narrow with float64
	// accumulation. An injected Ops must have been built at this precision.
	Precision prec.Precision
	// Ops injects a prebuilt operator set (FFT plan, symbol tables,
	// spectral workspaces) instead of building one — the plan-cache path of
	// the job server. The injected Ops must already be bound to pe (see
	// spectral.Ops.Rebind) and obeys the single-owner contract: it belongs
	// to this solve's rank goroutine until the solve returns.
	Ops *spectral.Ops
	// OnProgress receives a per-continuation-level event at the start of
	// each level and a per-iteration event after every accepted step. It
	// runs on every rank at the same iterations (collective operations are
	// safe inside); callers that feed a single consumer should install it
	// on one rank only.
	OnProgress func(ProgressEvent)
	// Checkpoint configures periodic checkpoint/restart of the optimizer
	// state (checkpoint writes and resume require a stationary velocity;
	// the cooperative Stop hook works for every solve flavor).
	Checkpoint CheckpointConfig
}

// CheckpointConfig wires checkpoint/restart and cooperative interruption
// into a solve. All hooks are exercised collectively: every rank gathers,
// only rank 0 touches the filesystem.
type CheckpointConfig struct {
	// Path of the checkpoint file; empty disables periodic writes.
	Path string
	// Every is the number of outer iterations between checkpoints
	// (default 5 when Path is set).
	Every int
	// Resume restarts the solve from a previously loaded checkpoint. The
	// state is shared by all rank goroutines; the velocity is scattered
	// from rank 0 and the solve continues bit-identically to the
	// uninterrupted run.
	Resume *ckpt.State
	// Stop requests a cooperative interrupt (e.g. from a signal handler).
	// It may return different values on different ranks — the solver
	// resolves it with an allreduce so every rank stops at the same
	// iteration boundary.
	Stop func() bool
}

// ProgressEvent is one solver progress notification: a continuation-level
// start (Kind "level") or a completed outer iteration (Kind "iteration").
// N carries the active grid so coarse-to-fine solves are distinguishable.
type ProgressEvent struct {
	Kind    string  `json:"kind"` // "level" | "iteration"
	N       [3]int  `json:"n"`
	Level   int     `json:"level"`
	Beta    float64 `json:"beta"`
	Iter    int     `json:"iter,omitempty"`
	J       float64 `json:"j,omitempty"`
	Misfit  float64 `json:"misfit,omitempty"`
	Gnorm   float64 `json:"gnorm,omitempty"`
	CGIters int     `json:"cg_iters,omitempty"`
	Step    float64 `json:"step,omitempty"`
}

// DefaultConfig mirrors the paper's scalability setup.
func DefaultConfig() Config {
	return Config{Opt: regopt.DefaultOptions(), Newton: optim.DefaultNewtonOptions()}
}

// PhaseBreakdown aggregates the solver phases over all ranks (maximum),
// matching the columns of Tables I-IV. Communication times come from the
// message-level cost model; execution times are measured wall clock.
type PhaseBreakdown struct {
	TimeToSolution float64 // measured wall clock of the whole solve
	FFTComm        float64 // modeled
	FFTExec        float64 // measured
	InterpComm     float64 // modeled
	InterpExec     float64 // measured

	// PoolWorkers is the shared-memory worker-pool size the solve ran with
	// (package par); PoolSpeedup is the achieved intra-rank speedup of the
	// pooled kernel regions — worker-busy time over region wall time,
	// aggregated over the solve. PoolSpeedup is 1 for a serial pool.
	PoolWorkers int
	PoolSpeedup float64

	// AllocCount/AllocBytes are the heap allocations and bytes allocated
	// during the solve (runtime.MemStats deltas). The Go heap is shared by
	// all simulated ranks in the process, so these are process-global
	// figures, not per-rank ones; they attribute allocator pressure to the
	// solve as a whole.
	AllocCount float64
	AllocBytes float64
}

// Counts reports the algorithmic work of a solve.
type Counts struct {
	NewtonIters  int
	Matvecs      int
	StateSolves  int
	FFTs         int64
	InterpSweeps int64
	InterpPoints int64

	// Alltoalls counts all-to-all collectives (the latency term of the
	// transpose model); TransposeStages/TransposeFields record how many
	// pencil-transpose stages communicated and how many field-transposes
	// they carried — Fields/Stages is the achieved batching factor.
	Alltoalls       int64
	TransposeStages int64
	TransposeFields int64

	// InterpMsgs/InterpBytes count the point-to-point messages and bytes
	// received in the interpolation-communication phase (ghost-halo
	// exchanges plus scattered-value returns) on this rank.
	// FusedInterpExchanges counts cross-job fused gather exchanges and
	// FusedInterpJobs the job requests they carried — Jobs/Exchanges is
	// the achieved job-axis batching factor (zero for solo solves).
	InterpMsgs           int64
	InterpBytes          int64
	FusedInterpExchanges int64
	FusedInterpJobs      int64
}

// Outcome is the result of one registration solve on the calling rank.
type Outcome struct {
	Problem *regopt.Problem
	Result  *optim.Result[*field.Vector]

	// Ops is the operator set the solve ran on (the injected one when
	// Config.Ops was set, otherwise freshly built). Callers that pool plans
	// across jobs harvest it from here after the solve.
	Ops *spectral.Ops

	V       *field.Vector // optimal velocity (stationary problems)
	VSeries field.Series  // optimal velocity coefficients (Intervals > 1)
	U       *field.Vector // displacement of the deformation map, y = x + u
	Det     *field.Scalar // det(grad y)
	Warped  *field.Scalar // rho_T(y1)

	MisfitInit  float64 // 1/2||rho_T - rho_R||^2 (after preprocessing)
	MisfitFinal float64
	DetMin      float64
	DetMax      float64
	DetMean     float64

	Phases PhaseBreakdown
	Counts Counts

	// CheckpointErr reports a failed checkpoint write (rank 0 only). The
	// solve itself continues — losing a checkpoint must not kill a healthy
	// run — so the error is surfaced here instead of aborting.
	CheckpointErr error
}

// Register runs the full solve for a template/reference pair living on the
// pencil. The images are modified in place when cfg.Smooth is set.
func Register(pe *grid.Pencil, rhoT, rhoR *field.Scalar, cfg Config) (*Outcome, error) {
	ops := cfg.Ops
	if ops == nil {
		ops = spectral.New(pfft.NewPlanPrec(pe, cfg.Precision))
	} else if ops.Pe != pe {
		return nil, fmt.Errorf("core: injected operator set is bound to a different pencil; Rebind it first")
	} else if ops.Precision() != cfg.Precision {
		// The wire format is baked into the plan's workspace arena, so a
		// cached operator set built at the other precision must never be
		// silently reused — this is the bug the vestigial PlanCache key hid.
		return nil, fmt.Errorf("core: injected operator set was built at %s but the solve requests %s",
			ops.Precision(), cfg.Precision)
	}
	if cfg.Smooth {
		ops.SmoothGridScale(rhoT)
		ops.SmoothGridScale(rhoR)
	}
	pr, err := regopt.New(ops, rhoT, rhoR, cfg.Opt)
	if err != nil {
		return nil, err
	}

	ck := cfg.Checkpoint
	betas := cfg.ContinuationBetas
	var ckptErr error
	var saveState func(v *field.Vector, prog optim.Progress)
	if ck.Stop != nil {
		// The cooperative interrupt is independent of checkpoint I/O and
		// works for every solve flavor, including Intervals > 1.
		stop := ck.Stop
		cfg.Newton.Stop = func() bool {
			local := 0.0
			if stop() {
				local = 1
			}
			// Collective resolution: a signal may land between the polls
			// of different rank goroutines, so every rank must agree on
			// whether this iteration stops.
			return pe.Comm.AllreduceMax(local) > 0
		}
	}
	if ck.Path != "" || ck.Resume != nil {
		if cfg.Intervals > 1 {
			return nil, fmt.Errorf("core: checkpoint/restart requires a stationary velocity (Intervals = 1)")
		}
		// Level/beta bookkeeping for the checkpoint records. curLevel is an
		// index into the full (unsliced) continuation schedule.
		curLevel, curBeta := 0, cfg.Opt.Beta
		levelOffset := 0
		if rs := ck.Resume; rs != nil {
			if rs.N != pe.Grid.N {
				return nil, fmt.Errorf("core: checkpoint dims %v do not match grid %v", rs.N, pe.Grid.N)
			}
			v0 := field.NewVector(pe)
			for d := 0; d < 3; d++ {
				var global []float64
				if pe.Comm.Rank() == 0 {
					global = rs.V[d]
				}
				v0.C[d].Scatter(global)
			}
			cfg.V0 = v0
			cfg.Newton.Resume = &optim.ResumeState{
				Iter: rs.Iter, JInit: rs.JInit, MisfitInit: rs.MisfitInit,
				GnormInit: rs.GnormInit, History: rs.History,
			}
			if len(betas) > 0 {
				levelOffset = rs.BetaLevel
				if levelOffset >= len(betas) {
					levelOffset = len(betas) - 1
				}
				betas = append([]float64(nil), betas[levelOffset:]...)
				if rs.Beta > 0 {
					// Honor the beta the checkpoint was taken at: a retry
					// after a failed level runs at the geometric-mean beta,
					// not the schedule entry, and the resumed trajectory
					// must continue at the active value.
					betas[0] = rs.Beta
				}
				curLevel, curBeta = levelOffset, rs.Beta
			}
		}
		saveState = func(v *field.Vector, prog optim.Progress) {
			var comps [3][]float64
			for d := 0; d < 3; d++ {
				comps[d] = v.C[d].Gather()
			}
			if pe.Comm.Rank() != 0 {
				return
			}
			st := &ckpt.State{
				N: pe.Grid.N, Tasks: pe.Comm.Size(), Precision: cfg.Precision.String(),
				Beta: curBeta, BetaLevel: curLevel, Iter: prog.Iter,
				JInit: prog.JInit, MisfitInit: prog.MisfitInit, GnormInit: prog.GnormInit,
				History: prog.History, V: comps,
			}
			if err := ckpt.Save(ck.Path, st); err != nil {
				ckptErr = err
			}
		}
		cfg.Newton.OnLevel = func(level int, beta float64) {
			curLevel, curBeta = levelOffset+level, beta
		}
		if ck.Path != "" {
			every := ck.Every
			if every <= 0 {
				every = 5
			}
			cfg.Newton.OnIterate = func(vv any, prog optim.Progress) {
				// prog.Iter counts completed iterations, so this fires after
				// iterations every, 2*every, ...
				if prog.Iter%every == 0 {
					saveState(vv.(*field.Vector), prog)
				}
			}
		}
	}

	if cfg.OnProgress != nil {
		// Chain onto whatever the checkpoint wiring installed: hooks must
		// compose, not replace each other.
		cb := cfg.OnProgress
		n := pe.Grid.N
		activeBeta := cfg.Opt.Beta
		activeLevel := 0
		prevLevel := cfg.Newton.OnLevel
		cfg.Newton.OnLevel = func(level int, beta float64) {
			if prevLevel != nil {
				prevLevel(level, beta)
			}
			activeLevel, activeBeta = level, beta
			cb(ProgressEvent{Kind: "level", N: n, Level: level, Beta: beta})
		}
		prevIter := cfg.Newton.OnIterate
		cfg.Newton.OnIterate = func(v any, prog optim.Progress) {
			if prevIter != nil {
				prevIter(v, prog)
			}
			ev := ProgressEvent{Kind: "iteration", N: n, Level: activeLevel, Beta: activeBeta, Iter: prog.Iter}
			if len(prog.History) > 0 {
				h := prog.History[len(prog.History)-1]
				ev.J, ev.Misfit, ev.Gnorm, ev.CGIters, ev.Step = h.J, h.Misfit, h.Gnorm, h.CGIters, h.Step
			}
			cb(ev)
		}
		if len(cfg.ContinuationBetas) == 0 {
			// No continuation schedule means the optimizer never fires
			// OnLevel; announce the single level here so every solve's
			// stream opens with its grid and regularization weight.
			cb(ProgressEvent{Kind: "level", N: n, Level: 0, Beta: activeBeta})
		}
	}

	before := *pe.Comm.Stats() // snapshot to report only this solve's work
	parBefore := par.Snapshot()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	t0 := time.Now()

	out := &Outcome{Problem: pr, Ops: ops}
	ts := transport.NewSolver(ops, cfg.Opt.Nt)
	if cfg.Intervals > 1 {
		sp, err := regopt.NewSeries(pr, cfg.Intervals)
		if err != nil {
			return nil, err
		}
		v0 := field.NewSeries(pe, cfg.Intervals)
		var sres *optim.Result[field.Series]
		switch {
		case cfg.FirstOrder:
			sres = optim.SteepestDescent[field.Series](sp, v0, cfg.Newton)
		case len(cfg.ContinuationBetas) > 0:
			sres = optim.Continuation[field.Series](sp, sp.SetBeta, v0, cfg.ContinuationBetas, cfg.Newton)
		default:
			sres = optim.GaussNewton[field.Series](sp, v0, cfg.Newton)
		}
		out.VSeries = sres.V
		out.MisfitInit = sres.MisfitInit
		out.MisfitFinal = sres.MisfitLast
		// Adapt the series result into the scalar-result view used by the
		// reporting fields that do not depend on the velocity type.
		out.Result = &optim.Result[*field.Vector]{
			V: sres.V[0], Iters: sres.Iters,
			JInit: sres.JInit, JFinal: sres.JFinal,
			MisfitInit: sres.MisfitInit, MisfitLast: sres.MisfitLast,
			GnormInit: sres.GnormInit, GnormLast: sres.GnormLast,
			Converged: sres.Converged, History: sres.History,
			Interrupted: sres.Interrupted, Failed: sres.Failed,
			FailReason: sres.FailReason, Degradations: sres.Degradations,
		}
		out.V = sres.V[0]
		if !cfg.SkipMap && !sres.Interrupted && !sres.Failed {
			sc, err := ts.NewSeriesContext(sres.V, cfg.Opt.Incompressible)
			if err != nil {
				return nil, err
			}
			out.U = ts.DisplacementSeries(sc)
		}
	} else {
		drv := pr.Driver()
		v0 := cfg.V0
		if v0 == nil {
			v0 = field.NewVector(pe)
		}
		var res *optim.Result[*field.Vector]
		switch {
		case cfg.FirstOrder:
			res = optim.SteepestDescent[*field.Vector](drv, v0, cfg.Newton)
		case len(betas) > 0:
			res = optim.Continuation[*field.Vector](drv, drv.SetBeta, v0, betas, cfg.Newton)
		default:
			res = optim.GaussNewton[*field.Vector](drv, v0, cfg.Newton)
		}
		out.Result = res
		out.V = res.V
		out.MisfitInit = res.MisfitInit
		out.MisfitFinal = res.MisfitLast
		if res.Interrupted && saveState != nil && ck.Path != "" {
			// Flush the final checkpoint so an interrupt never loses more
			// than the current (incomplete) iteration.
			saveState(res.V, optim.Progress{
				Iter: res.Iters, JInit: res.JInit, MisfitInit: res.MisfitInit,
				GnormInit: res.GnormInit, History: res.History,
			})
		}
		// Map reconstruction needs a usable velocity; an interrupted or
		// failed solve skips it (the caller gets the iterate itself).
		if !cfg.SkipMap && !res.Interrupted && !res.Failed {
			ctx := ts.NewContext(res.V, cfg.Opt.Incompressible)
			out.U = ts.Displacement(ctx)
		}
	}
	out.CheckpointErr = ckptErr
	if out.U != nil {
		out.Det = ts.DetGrad(out.U)
		out.DetMin = out.Det.Min()
		out.DetMax = out.Det.Max()
		out.DetMean = out.Det.Mean()
		out.Warped = ts.ApplyMap(rhoT, out.U)
	}

	wall := time.Since(t0).Seconds()
	after := pe.Comm.Stats()
	out.Phases = aggregatePhases(pe.Comm, &before, after, wall)
	// Intra-rank (shared-memory) attribution: the pool counters are global
	// to the process, so every rank sees (approximately) the same interval
	// delta; the max over ranks smooths the snapshot skew.
	out.Phases.PoolWorkers = par.Workers()
	out.Phases.PoolSpeedup = pe.Comm.AllreduceMax(par.Speedup(parBefore, par.Snapshot()))
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	// The heap counters are process-global; the max over ranks just smooths
	// snapshot skew between the rank goroutines.
	out.Phases.AllocCount = pe.Comm.AllreduceMax(float64(memAfter.Mallocs - memBefore.Mallocs))
	out.Phases.AllocBytes = pe.Comm.AllreduceMax(float64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	out.Counts = Counts{
		NewtonIters:     out.Result.Iters,
		Matvecs:         pr.Matvecs,
		StateSolves:     pr.StateSolves,
		FFTs:            after.FFTs - before.FFTs,
		InterpSweeps:    after.InterpSweeps - before.InterpSweeps,
		InterpPoints:    after.InterpPoints - before.InterpPoints,
		Alltoalls:       after.Alltoalls - before.Alltoalls,
		TransposeStages: after.TransposeStages - before.TransposeStages,
		TransposeFields: after.TransposeFields - before.TransposeFields,
		InterpMsgs:      after.Messages[mpi.PhaseInterpComm] - before.Messages[mpi.PhaseInterpComm],
		InterpBytes:     after.BytesRecv[mpi.PhaseInterpComm] - before.BytesRecv[mpi.PhaseInterpComm],
	}
	return out, nil
}

// aggregatePhases diffs the stats snapshots and takes the maximum over all
// ranks (the straggler determines the reported time, as with MPI timers).
func aggregatePhases(c *mpi.Comm, before, after *mpi.Stats, wall float64) PhaseBreakdown {
	b := PhaseBreakdown{
		TimeToSolution: c.AllreduceMax(wall),
		FFTComm:        c.AllreduceMax(after.ModeledComm[mpi.PhaseFFTComm] - before.ModeledComm[mpi.PhaseFFTComm]),
		FFTExec:        c.AllreduceMax(after.MeasuredExec[mpi.PhaseFFTExec] - before.MeasuredExec[mpi.PhaseFFTExec]),
		InterpComm:     c.AllreduceMax(after.ModeledComm[mpi.PhaseInterpComm] - before.ModeledComm[mpi.PhaseInterpComm]),
		InterpExec:     c.AllreduceMax(after.MeasuredExec[mpi.PhaseInterpExec] - before.MeasuredExec[mpi.PhaseInterpExec]),
	}
	return b
}

// ResidualNorms returns ||rho_T - rho_R|| and ||rho_T(y1) - rho_R|| — the
// before/after residuals visualized in Figs. 1, 6 and 7.
func (o *Outcome) ResidualNorms(rhoT, rhoR *field.Scalar) (before, afterN float64) {
	d := rhoT.Clone()
	d.Axpy(-1, rhoR)
	before = d.NormL2()
	if o.Warped != nil {
		d2 := o.Warped.Clone()
		d2.Axpy(-1, rhoR)
		afterN = d2.NormL2()
	}
	return before, afterN
}
