// Package check is the numerical-correctness harness of the repo: it
// verifies, on the actual distributed solver stack, that the discrete
// reduced gradient is the derivative of the discrete objective, that the
// Gauss-Newton matvec is symmetric and consistent with finite differences
// of the gradient, that the spectral and interpolation operators satisfy
// their adjoint identities, and that the transport and projection
// invariants (constant preservation, mass conservation, div-free iterates,
// unit Jacobian determinant) hold. This is the self-validation layer that
// CLAIRE (the paper's successor) ships as derivative checks: PR 1/3 proved
// bit-identity across parallelism; this package proves the numerics being
// reproduced are the right ones. Every property is checked at each
// requested rank count, so a decomposition-dependent defect (ghost
// exchange, transpose layout, reduction order) shows up as a p=4 failure
// with a p=1 pass.
package check

import (
	"fmt"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
	"diffreg/internal/spectral"
)

// Options selects the harness resolution and scope.
type Options struct {
	N         int            // grid size (N^3 global)
	Nt        int            // transport time steps
	Ranks     []int          // simulated MPI sizes to exercise
	Seed      int64          // fuzz seed (deterministic across ranks)
	Quick     bool           // reduced trials and looser discretization gates
	Precision prec.Precision // numeric mode of the stack under test (zero value: float64)
	Log       func(format string, args ...any)
}

// DefaultOptions is the full harness: 24^3 (large enough that the
// calibrated discretization floors sit well under the gates) at p=1 and
// p=4.
func DefaultOptions() Options {
	return Options{N: 24, Nt: 4, Ranks: []int{1, 4}, Seed: 7}
}

// QuickOptions is the CI-friendly reduced harness (16^3, fewer fuzz
// trials, discretization gates widened for the coarser grid).
func QuickOptions() Options {
	o := DefaultOptions()
	o.N = 16
	o.Quick = true
	return o
}

// trials returns the fuzz repetition count.
func (o *Options) trials() int {
	if o.Quick {
		return 2
	}
	return 3
}

// disc returns the discretization-level gate: full at 24^3 holds the
// measured floors (~2e-3) against 1e-2; quick doubles it for 16^3.
// Discretization gates are precision-independent: float32 roundoff
// (~1e-7) sits orders of magnitude below the truncation floors they hold.
func (o *Options) disc(full float64) float64 {
	if o.Quick {
		return 2 * full
	}
	return full
}

// mach returns a machine-precision gate. Identities that are exact in
// floating point hold to ~1e-12 on the float64 reference path; under
// float32 the transpose wire and the tricubic gather round every value to
// single precision, so the same identities hold only to the accumulated
// single-precision floor — each call site passes its calibrated f32 gate
// (roughly 1e2..1e4 x eps32, depending on how much spectral amplification
// the operator chain applies to the narrowing noise).
func (o *Options) mach(f64, f32 float64) float64 {
	if o.Precision == prec.F32 {
		return f32
	}
	return f64
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// env is the per-rank-count execution context of one harness pass.
type env struct {
	opt *Options
	c   *mpi.Comm
	pe  *grid.Pencil
	ops *spectral.Ops
	rep *Report
}

// add registers a finding. Every rank computes identical values (the
// reductions are deterministic), so only rank 0 appends.
func (e *env) add(group, name string, measured, limit float64, mode, detail string) {
	if e.c.Rank() != 0 {
		return
	}
	e.rep.add(Finding{
		Group: group, Name: name, Ranks: e.c.Size(),
		Measured: measured, Limit: limit, Mode: mode, Detail: detail,
	})
	e.opt.logf("p=%d %s/%s: %.4e (%s %.1e)", e.c.Size(), group, name, measured, mode, limit)
}

// Run executes the full harness and returns the report.
func Run(opt Options) (*Report, error) {
	g, err := grid.New(opt.N, opt.N, opt.N)
	if err != nil {
		return nil, err
	}
	rep := &Report{N: opt.N, Nt: opt.Nt, Quick: opt.Quick, Ranks: opt.Ranks,
		Precision: opt.Precision.String()}
	for _, p := range opt.Ranks {
		opt.logf("=== ranks=%d ===", p)
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			e := &env{opt: &opt, c: c, pe: pe,
				ops: spectral.New(pfft.NewPlanPrec(pe, opt.Precision)), rep: rep}
			e.runAdjoint()
			e.runInvariants()
			e.runTaylor()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("check: ranks=%d: %w", p, err)
		}
	}
	return rep, nil
}
