package core

import (
	"fmt"
	"runtime"
	"time"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// BatchInfo reports the scheduling shape of one fused solve on this rank.
type BatchInfo struct {
	// Dropouts counts jobs that finished (converged, failed, or were
	// interrupted) while at least one neighbor was still iterating — the
	// batch-shrink events.
	Dropouts int
	// Rounds counts rendezvous rounds the fiber scheduler executed.
	Rounds int
}

// RegisterBatch runs B independent stationary registrations lock-stepped
// on this rank: each job owns a pencil on its own duplicated
// communicator and solves exactly the solo Register trajectory, while a
// per-rank fiber scheduler fuses the cross-job spectral preconditioner
// (3·B fields through one transform batch on exec) and the cooperative
// stop polls (one masked vector allreduce on base). Per-job results are
// bit-identical to solo runs; see DESIGN.md §11.
//
//   - base is the rank's base communicator; the scheduler owns it while
//     fibers are parked.
//   - exec is a scheduler-reserved operator set bound to a pencil on
//     base (never shared with a job).
//   - pes[j], rhoTs[j], rhoRs[j], cfgs[j] describe job j on its dup
//     communicator.
//
// Restrictions (enforced): stationary velocity (Intervals ≤ 1), no
// continuation schedule, no checkpoint/resume. Per-job Stop hooks,
// progress callbacks, beta/regularization/tolerances all vary freely.
//
// Phase and MPI-counter figures are batch aggregates — the simulated
// MPI layer keeps one unlocked counter set per rank shared by all split
// communicators — and are copied to every outcome; per-job algorithmic
// counters (Newton iterations, matvecs, state solves) remain exact.
func RegisterBatch(base *mpi.Comm, exec *spectral.Ops, pes []*grid.Pencil, rhoTs, rhoRs []*field.Scalar, cfgs []Config) ([]*Outcome, BatchInfo, error) {
	nb := len(cfgs)
	if len(pes) != nb || len(rhoTs) != nb || len(rhoRs) != nb {
		return nil, BatchInfo{}, fmt.Errorf("core: batch slice lengths disagree")
	}
	if nb == 0 {
		return nil, BatchInfo{}, fmt.Errorf("core: empty batch")
	}
	if exec == nil {
		return nil, BatchInfo{}, fmt.Errorf("core: batch requires an executor operator set")
	}

	outs := make([]*Outcome, nb)
	prs := make([]*regopt.Problem, nb)
	tss := make([]*transport.Solver, nb)
	newtons := make([]optim.NewtonOptions, nb)
	for j := range cfgs {
		cfg := &cfgs[j]
		if cfg.Intervals > 1 {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: fused batches require a stationary velocity", j)
		}
		if len(cfg.ContinuationBetas) > 0 {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: fused batches do not support continuation", j)
		}
		if cfg.Checkpoint.Path != "" || cfg.Checkpoint.Resume != nil {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: fused batches do not support checkpoint/restart", j)
		}
		ops := cfg.Ops
		if ops == nil {
			ops = spectral.New(pfft.NewPlanPrec(pes[j], cfg.Precision))
		} else if ops.Pe != pes[j] {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: injected operator set is bound to a different pencil; Rebind it first", j)
		} else if ops.Precision() != cfg.Precision {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: injected operator set was built at %s but the solve requests %s",
				j, ops.Precision(), cfg.Precision)
		}
		if exec.Precision() != cfg.Precision {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: executor precision %s does not match the solve's %s",
				j, exec.Precision(), cfg.Precision)
		}
		if cfg.Smooth {
			ops.SmoothGridScale(rhoTs[j])
			ops.SmoothGridScale(rhoRs[j])
		}
		pr, err := regopt.New(ops, rhoTs[j], rhoRs[j], cfg.Opt)
		if err != nil {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: %w", j, err)
		}
		prs[j] = pr
		tss[j] = transport.NewSolver(ops, cfg.Opt.Nt)
		outs[j] = &Outcome{Problem: pr, Ops: ops}
		newtons[j] = cfg.Newton
	}

	// Pre-size the executor's fused arena so a warm fused solve neither
	// allocates nor grows mid-batch.
	exec.WarmBatch(nb)

	batch := optim.NewBatch[*field.Vector](nb, optim.FusedOps[*field.Vector]{
		ApplyPrec: regopt.FusedPrec(exec, prs),
		Interp:    regopt.FusedInterp(exec.Pe),
		Stop: func(flags []float64) []float64 {
			return base.AllreduceFloat64(flags, func(a, b float64) float64 {
				if a > b {
					return a
				}
				return b
			})
		},
	})

	for j := range cfgs {
		cfg := &cfgs[j]
		// Gate the job's transport interpolations through the scheduler:
		// lock-stepped calls with matching precision and field count ride
		// one fused halo exchange and Alltoallv on exec's pencil;
		// desynchronized calls fall back to their solo exchange inside
		// their release window. (The epilogue solvers tss[j] run inside
		// batch.Exclusive and stay ungated.)
		j := j
		prs[j].TS.SetGate(regopt.InterpGate(func(key string, payload any) bool {
			return batch.Interp(j, key, payload)
		}))
		if stop := cfg.Checkpoint.Stop; stop != nil {
			// The collective resolution of the solo path (a scalar
			// allreduce per poll) becomes one slot of the batch's masked
			// vector allreduce — per-element the same reduction tree, so
			// the per-job verdict is unchanged.
			newtons[j].Stop = batch.GateStop(j, stop)
		}
		if cb := cfg.OnProgress; cb != nil {
			n := pes[j].Grid.N
			activeBeta := cfg.Opt.Beta
			newtons[j].OnIterate = func(v any, prog optim.Progress) {
				ev := ProgressEvent{Kind: "iteration", N: n, Beta: activeBeta, Iter: prog.Iter}
				if len(prog.History) > 0 {
					h := prog.History[len(prog.History)-1]
					ev.J, ev.Misfit, ev.Gnorm, ev.CGIters, ev.Step = h.J, h.Misfit, h.Gnorm, h.CGIters, h.Step
				}
				cb(ev)
			}
			// Fused solves have no continuation schedule, so the
			// optimizer never fires OnLevel; announce the single level so
			// every job's stream opens with its grid and beta.
			cb(ProgressEvent{Kind: "level", N: n, Level: 0, Beta: activeBeta})
		}
	}

	before := *base.Stats()
	parBefore := par.Snapshot()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	t0 := time.Now()

	fibers := make([]func() error, nb)
	for j := range cfgs {
		j := j
		cfg := &cfgs[j]
		drv := prs[j].Driver()
		gobj := batch.Gate(j, drv, prs[j].PrecFusable())
		v0 := cfg.V0
		if v0 == nil {
			v0 = field.NewVector(pes[j])
		}
		newton := newtons[j]
		fibers[j] = func() error {
			// Fiber prologue before the first gated call (the optimizer's
			// initial Project) must stay communication-free.
			var res *optim.Result[*field.Vector]
			if cfg.FirstOrder {
				res = optim.SteepestDescent[*field.Vector](gobj, v0, newton)
			} else {
				res = optim.GaussNewton[*field.Vector](gobj, v0, newton)
			}
			out := outs[j]
			out.Result = res
			out.V = res.V
			out.MisfitInit = res.MisfitInit
			out.MisfitFinal = res.MisfitLast
			if !cfg.SkipMap && !res.Interrupted && !res.Failed {
				// Map reconstruction runs collectives on the job's own
				// communicator; the exclusive window keeps it serialized
				// against neighbors and the scheduler.
				batch.Exclusive(j, func() {
					ctx := tss[j].NewContext(res.V, cfg.Opt.Incompressible)
					out.U = tss[j].Displacement(ctx)
					out.Det = tss[j].DetGrad(out.U)
					out.DetMin = out.Det.Min()
					out.DetMax = out.Det.Max()
					out.DetMean = out.Det.Mean()
					out.Warped = tss[j].ApplyMap(rhoTs[j], out.U)
				})
			}
			return nil
		}
	}

	errs := batch.Run(fibers)
	for j, err := range errs {
		if err != nil {
			return nil, BatchInfo{}, fmt.Errorf("core: job %d: %w", j, err)
		}
	}

	wall := time.Since(t0).Seconds()
	after := base.Stats()
	phases := aggregatePhases(base, &before, after, wall)
	phases.PoolWorkers = par.Workers()
	phases.PoolSpeedup = base.AllreduceMax(par.Speedup(parBefore, par.Snapshot()))
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	phases.AllocCount = base.AllreduceMax(float64(memAfter.Mallocs - memBefore.Mallocs))
	phases.AllocBytes = base.AllreduceMax(float64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	for j := range outs {
		outs[j].Phases = phases
		outs[j].Counts = Counts{
			NewtonIters:          outs[j].Result.Iters,
			Matvecs:              prs[j].Matvecs,
			StateSolves:          prs[j].StateSolves,
			FFTs:                 after.FFTs - before.FFTs,
			InterpSweeps:         after.InterpSweeps - before.InterpSweeps,
			InterpPoints:         after.InterpPoints - before.InterpPoints,
			Alltoalls:            after.Alltoalls - before.Alltoalls,
			TransposeStages:      after.TransposeStages - before.TransposeStages,
			TransposeFields:      after.TransposeFields - before.TransposeFields,
			InterpMsgs:           after.Messages[mpi.PhaseInterpComm] - before.Messages[mpi.PhaseInterpComm],
			InterpBytes:          after.BytesRecv[mpi.PhaseInterpComm] - before.BytesRecv[mpi.PhaseInterpComm],
			FusedInterpExchanges: after.FusedInterpExchanges - before.FusedInterpExchanges,
			FusedInterpJobs:      after.FusedInterpJobs - before.FusedInterpJobs,
		}
	}
	return outs, BatchInfo{Dropouts: batch.Dropouts(), Rounds: batch.Rounds()}, nil
}
