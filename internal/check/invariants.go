package check

import (
	"math"
	"math/rand"

	"diffreg/internal/field"
	"diffreg/internal/optim"
	"diffreg/internal/regopt"
	"diffreg/internal/transport"
)

// runInvariants verifies the conservation and structure properties the
// discretization promises: Parseval for the transform stack, exact
// constant preservation and mass conservation under solenoidal transport,
// machine-precision divergence after the Leray projection (including at
// the end of a full incompressible registration solve, where iterates
// could drift off the subspace through line-search arithmetic), and a unit
// Jacobian determinant for volume-preserving flows.
func (e *env) runInvariants() {
	rng := rand.New(rand.NewSource(e.opt.Seed + 1))
	ops := e.ops
	pe := e.pe
	nt := e.opt.Nt

	// Parseval: sum |f|^2 == (1/N^3) sum |F|^2 for the unnormalized r2c
	// transform, with the Hermitian half-spectrum expanded by mirror
	// weights (stored planes k3=0 and k3=N/2 are self-conjugate), reduced
	// across the spectral pencils.
	s := randScalar(pe, rng)
	spec := ops.Forward(s)
	specE := 0.0
	n3 := pe.Grid.N[2]
	ops.Plan.EachSpec(func(idx, k1, k2, k3 int) {
		w := 2.0
		if k3 == 0 || 2*k3 == n3 {
			w = 1
		}
		z := spec[idx]
		specE += w * (real(z)*real(z) + imag(z)*imag(z))
	})
	specE = pe.Comm.AllreduceSum(specE) / float64(pe.Grid.Total())
	physE := s.Dot(s) / pe.Grid.CellVolume()
	e.add("invariant", "parseval", relDiff(physE, specE), e.opt.mach(1e-12, 1e-6), ModeMax, "")

	ts := transport.NewSolver(ops, nt)

	// Constant preservation: the interpolation weights sum to one, so a
	// constant image is transported exactly for any velocity.
	cst := field.NewScalar(pe)
	cst.Fill(0.7)
	ctx := ts.NewContext(randVector(pe, rng), false)
	rho1 := ts.State(ctx, cst)[nt]
	maxd := 0.0
	for _, x := range rho1 {
		maxd = math.Max(maxd, math.Abs(x-0.7))
	}
	maxd = pe.Comm.AllreduceMax(maxd)
	e.add("invariant", "transport_constant", maxd, e.opt.mach(1e-12, 3e-6), ModeMax, "")

	// Leray projection leaves a divergence at the roundoff floor, and
	// solenoidal transport preserves the image mean (mass conservation for
	// an incompressible flow).
	vdf := ops.Leray(randVector(pe, rng))
	vdf.Scale(0.3 / math.Max(vdf.MaxAbs(), 1e-300))
	e.add("invariant", "leray_div_free", ops.Div(vdf).NormL2()/vdf.NormL2(), e.opt.mach(1e-12, 1e-5), ModeMax, "")

	// Mass conservation under a solenoidal flow holds to interpolation
	// accuracy, not machine precision: the semi-Lagrangian scheme is not
	// conservative, so the mean drifts at the tricubic truncation level
	// (~(kh)^4 per step), shrinking with the grid.
	rho := synthImage(pe)
	ctx2 := ts.NewContext(vdf, true)
	st := ts.State(ctx2, rho)
	r1 := field.NewScalar(pe)
	copy(r1.Data, st[nt])
	e.add("invariant", "transport_mean", relDiff(r1.Mean(), rho.Mean()), e.opt.disc(5e-5), ModeMax, "solenoidal flow")

	// det(grad y) = 1 up to discretization error for the same flow.
	u := ts.Displacement(ctx2)
	det := ts.DetGrad(u)
	dev := math.Max(math.Abs(det.Min()-1), math.Abs(det.Max()-1))
	e.add("invariant", "detgrad_unit", dev, e.opt.disc(1e-2), ModeMax, "solenoidal flow")

	e.incompressibleSolve()
}

// incompressibleSolve runs a short constrained registration and checks the
// final iterate: the velocity must still be divergence-free to machine
// precision (the line search projects every candidate) and the induced map
// volume-preserving to discretization accuracy.
func (e *env) incompressibleSolve() {
	opt := regopt.Options{Beta: 1e-2, Reg: regopt.RegH2, Nt: e.opt.Nt,
		GaussNewton: true, Incompressible: true}
	pr, _, err := synthProblem(e.pe, e.ops, opt, 0.3)
	if err != nil {
		e.add("invariant", "incompressible_solve", math.Inf(1), 1e-12, ModeMax, err.Error())
		return
	}
	nopt := optim.DefaultNewtonOptions()
	nopt.MaxIters = 3
	res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(e.pe), nopt)
	v := res.V
	e.add("invariant", "incompressible_div", pr.Ops.Div(v).NormL2()/math.Max(v.NormL2(), 1e-300),
		e.opt.mach(1e-12, 1e-5), ModeMax, "after constrained solve")
	ts := pr.TS
	det := ts.DetGrad(ts.Displacement(ts.NewContext(v, true)))
	dev := math.Max(math.Abs(det.Min()-1), math.Abs(det.Max()-1))
	e.add("invariant", "incompressible_detgrad", dev, e.opt.disc(5e-2), ModeMax, "after constrained solve")
}
