package spectral

import "diffreg/internal/fft"

func fftResample(global []float64, from, to [3]int) []float64 {
	return fft.Resample3Real(global, from, to)
}
