// Package perfmodel implements the paper's complexity model (§III-C4) as a
// predictive performance model:
//
//	Tflop ~ nt (8 * 7.5 N^3/p log N + 4 * 600 N^3/p)
//	Tmpi  ~ 8 nt (3 ts sqrt(p) + tw 3 N^3/p) + 4 nt (ts + tw N^2/p)
//
// generalized in two ways: the FFT/interpolation work is taken from the
// actual operation counts of our solver (mesh-independent for fixed beta,
// so measurable at small N), and the FFT transpose traffic is charged at
// the bisection-limited rate N^3/sqrt(p) rather than N^3/p — the paper's
// own measurements (Table I: FFT communication decaying like ~p^-0.6, not
// p^-1) show the congestion of concurrent all-to-alls, and the model must
// reproduce that shape. Machine constants are calibrated against a single
// row of the paper's tables; fidelity is judged on the remaining rows.
// This model substitutes for the TACC clusters that are unavailable in
// this reproduction (see DESIGN.md).
package perfmodel

import "math"

// offRankFrac is the structural estimate of the fraction of semi-Lagrangian
// departure points that land on a different rank and must be scattered
// (Algorithm 1); it depends on the CFL number and is absorbed into the
// calibrated interpolation bandwidth.
const offRankFrac = 0.25

// Machine holds calibrated hardware constants.
type Machine struct {
	Name       string
	FFTRate    float64 // flop/s per task achieved by the FFT kernels
	InterpRate float64 // flop/s per task achieved by the tricubic kernels
	Ts         float64 // message latency, seconds
	FFTTw      float64 // per-word time of the congested transpose all-to-all
	InterpTw   float64 // per-word time of halo + scatter traffic
	OtherFrac  float64 // vector-ops overhead as a fraction of exec time
}

// Workload describes one solve: the grid, the task count, and the total
// algorithmic work (3D transforms and interpolation sweeps).
type Workload struct {
	N  [3]int
	P  int
	Nt int
	// FFTs is the total number of distributed 3D transforms in the solve;
	// InterpSweeps the number of whole-field off-grid interpolations.
	FFTs         int64
	InterpSweeps int64
}

// Points returns the global grid size.
func (w Workload) Points() float64 {
	return float64(w.N[0]) * float64(w.N[1]) * float64(w.N[2])
}

func (w Workload) logN() float64 {
	return math.Log2(math.Cbrt(w.Points()))
}

// Breakdown mirrors the columns of the paper's tables.
type Breakdown struct {
	TimeToSolution float64
	FFTComm        float64
	FFTExec        float64
	InterpComm     float64
	InterpExec     float64
}

// fftFlops returns the per-task flop count of one 3D FFT (7.5 N^3 log N).
func fftFlops(w Workload) float64 { return 7.5 * w.Points() * w.logN() / float64(w.P) }

// interpFlops returns the per-task flop count of one interpolation sweep:
// 64 coefficients times ~10 flops per point (the paper's constant 600).
func interpFlops(w Workload) float64 { return 600 * w.Points() / float64(w.P) }

// fftCommTerms returns per-FFT message and word counts: two transposes
// among sqrt(p)-sized groups, charged at the bisection-limited rate.
func fftCommTerms(w Workload) (msgs, words float64) {
	if w.P == 1 {
		return 0, 0
	}
	sq := math.Sqrt(float64(w.P))
	return 3 * sq, 3 * w.Points() / sq
}

// interpCommTerms returns the per-sweep traffic: the four ghost-layer
// neighbor exchanges (width-2 halos over the N^2/sqrt(p) pencil faces)
// plus the scatter of off-rank departure points and their value return
// (4 words per off-rank point, near-neighbor so uncongested).
func interpCommTerms(w Workload) (msgs, words float64) {
	if w.P == 1 {
		return 0, 0
	}
	area := math.Pow(w.Points(), 2.0/3.0)
	ghost := 8 * area / math.Sqrt(float64(w.P))
	scatter := 4 * offRankFrac * w.Points() / float64(w.P)
	return 8, ghost + scatter
}

// Predict evaluates the model for a workload on a machine.
func Predict(w Workload, m Machine) Breakdown {
	f := float64(w.FFTs)
	i := float64(w.InterpSweeps)
	var b Breakdown
	b.FFTExec = f * fftFlops(w) / m.FFTRate
	b.InterpExec = i * interpFlops(w) / m.InterpRate
	fm, fw := fftCommTerms(w)
	b.FFTComm = f * (fm*m.Ts + fw*m.FFTTw)
	im, iw := interpCommTerms(w)
	b.InterpComm = i * (im*m.Ts + iw*m.InterpTw)
	exec := b.FFTExec + b.InterpExec
	b.TimeToSolution = exec + b.FFTComm + b.InterpComm + m.OtherFrac*exec
	return b
}

// ApplyThreading scales the execution (non-communication) components of a
// predicted breakdown by a measured intra-rank worker-pool speedup (package
// par): the spectral scalings and tricubic sweeps are the memory-bound hot
// paths that shared-memory parallelism accelerates, while the modeled
// communication terms are unaffected. This composes the paper's Hockney
// model (distributed axis) with the measured shared-memory axis.
func ApplyThreading(b Breakdown, speedup float64) Breakdown {
	if speedup <= 1 {
		return b
	}
	overhead := b.TimeToSolution - (b.FFTExec + b.InterpExec + b.FFTComm + b.InterpComm)
	b.FFTExec /= speedup
	b.InterpExec /= speedup
	b.TimeToSolution = b.FFTExec + b.InterpExec + b.FFTComm + b.InterpComm + overhead/speedup
	return b
}

// Calibrate fits the machine constants so that Predict(w) reproduces the
// target row exactly: the compute rates from the execution columns, the
// two effective bandwidths from the communication columns (with a fixed
// nominal latency), and the overhead fraction from the residual of the
// total time.
func Calibrate(name string, w Workload, target Breakdown) Machine {
	m := Machine{Name: name, Ts: 2e-6}
	f := float64(w.FFTs)
	i := float64(w.InterpSweeps)
	m.FFTRate = f * fftFlops(w) / target.FFTExec
	m.InterpRate = i * interpFlops(w) / target.InterpExec

	fm, fw := fftCommTerms(w)
	if fw > 0 {
		m.FFTTw = (target.FFTComm/f - fm*m.Ts) / fw
		if m.FFTTw < 0 {
			m.FFTTw = 0
		}
	}
	im, iw := interpCommTerms(w)
	if iw > 0 {
		m.InterpTw = (target.InterpComm/i - im*m.Ts) / iw
		if m.InterpTw < 0 {
			m.InterpTw = 0
		}
	}
	exec := target.FFTExec + target.InterpExec
	other := target.TimeToSolution - exec - target.FFTComm - target.InterpComm
	if other < 0 {
		other = 0
	}
	m.OtherFrac = other / exec
	return m
}

// Efficiency returns the strong-scaling parallel efficiency of t(p1)
// relative to t(p0): (t0 * p0) / (t1 * p1).
func Efficiency(t0 float64, p0 int, t1 float64, p1 int) float64 {
	return t0 * float64(p0) / (t1 * float64(p1))
}

// MaverickCalibration is the paper's Table I row #3 (synthetic problem,
// 128^3 on 16 tasks) used as the default calibration point for the
// "Maverick" machine model.
func MaverickCalibration() Breakdown {
	return Breakdown{
		TimeToSolution: 15.2,
		FFTComm:        1.73,
		FFTExec:        1.35,
		InterpComm:     1.84,
		InterpExec:     6.66,
	}
}

// StampedeCalibration is Table II row #15 (512^3 on 1024 tasks).
func StampedeCalibration() Breakdown {
	return Breakdown{
		TimeToSolution: 20.2,
		FFTComm:        2.23,
		FFTExec:        1.30,
		InterpComm:     2.38,
		InterpExec:     9.42,
	}
}
