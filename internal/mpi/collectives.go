package mpi

// Collective operations. All collectives must be called by every rank of
// the communicator. The implementations use simple, deterministic
// algorithms (fan-in/fan-out trees for reductions, pairwise exchange for
// all-to-all); cost is charged per received message, which reproduces the
// standard latency/bandwidth complexity of each collective.

const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagAlltoall
	tagScan
)

// Barrier blocks until every rank of the communicator has entered it.
// It uses a dissemination pattern with ceil(log2(p)) rounds.
func (c *Comm) Barrier() {
	p := c.Size()
	if p == 1 {
		return
	}
	for dist := 1; dist < p; dist *= 2 {
		dest := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.Send(dest, tagBarrier-dist, nil)
		c.Recv(src, tagBarrier-dist)
	}
}

// Bcast distributes root's data to all ranks using a binomial tree and
// returns each rank's copy.
func (c *Comm) Bcast(root int, data any) any {
	p := c.Size()
	if p == 1 {
		return data
	}
	// Relative rank so any root works with the same tree.
	vrank := (c.rank - root + p) % p
	if vrank != 0 {
		// Receive from parent.
		mask := 1
		for mask < p {
			if vrank&mask != 0 {
				parent := ((vrank - mask) + root) % p
				data = c.Recv(parent, tagBcast)
				break
			}
			mask *= 2
		}
		// Forward to children below the bit that received.
		mask2 := 1
		for mask2 < p {
			if vrank&mask2 != 0 {
				break
			}
			mask2 *= 2
		}
		for m := mask2 / 2; m >= 1; m /= 2 {
			child := vrank + m
			if child < p {
				c.Send((child+root)%p, tagBcast, data)
			}
		}
		return data
	}
	// Root: send to children at each power of two.
	highest := 1
	for highest*2 < p {
		highest *= 2
	}
	for m := highest; m >= 1; m /= 2 {
		child := vrank + m
		if child < p {
			c.Send((child+root)%p, tagBcast, data)
		}
	}
	return data
}

// ReduceFloat64 combines per-rank slices elementwise with op at root.
// Non-root ranks receive nil.
func (c *Comm) ReduceFloat64(root int, data []float64, op func(a, b float64) float64) []float64 {
	p := c.Size()
	acc := make([]float64, len(data))
	copy(acc, data)
	if p == 1 {
		return acc
	}
	vrank := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % p
			c.Send(parent, tagReduce, acc)
			return nil
		}
		src := vrank | mask
		if src < p {
			in := c.Recv((src+root)%p, tagReduce).([]float64)
			for i := range acc {
				acc[i] = op(acc[i], in[i])
			}
		}
		mask *= 2
	}
	return acc
}

// AllreduceFloat64 is ReduceFloat64 to rank 0 followed by a broadcast.
func (c *Comm) AllreduceFloat64(data []float64, op func(a, b float64) float64) []float64 {
	acc := c.ReduceFloat64(0, data, op)
	out := c.Bcast(0, acc)
	return out.([]float64)
}

// AllreduceSum sums a scalar over all ranks.
func (c *Comm) AllreduceSum(x float64) float64 {
	return c.AllreduceFloat64([]float64{x}, func(a, b float64) float64 { return a + b })[0]
}

// AllreduceMax takes the max of a scalar over all ranks.
func (c *Comm) AllreduceMax(x float64) float64 {
	out := c.AllreduceFloat64([]float64{x}, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
	return out[0]
}

// AllreduceMin takes the min of a scalar over all ranks.
func (c *Comm) AllreduceMin(x float64) float64 {
	out := c.AllreduceFloat64([]float64{x}, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
	return out[0]
}

// GatherFloat64 collects variable-length slices at root, concatenated in
// rank order. Non-root ranks receive nil.
func (c *Comm) GatherFloat64(root int, data []float64) []float64 {
	if c.Size() == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	var out []float64
	for r := 0; r < c.Size(); r++ {
		if r == root {
			out = append(out, data...)
		} else {
			out = append(out, c.Recv(r, tagGather).([]float64)...)
		}
	}
	return out
}

// Allgather concatenates equal-or-variable-length slices from every rank in
// rank order and returns the result on all ranks.
func (c *Comm) Allgather(data []float64) []float64 {
	out := c.GatherFloat64(0, data)
	res := c.Bcast(0, out)
	return res.([]float64)
}

// AlltoallvFloat64 performs a personalized all-to-all exchange: send[i] goes
// to rank i, and the returned slice recv[i] is what rank i sent to us.
// Self-exchange is a local copy and is not charged communication cost.
func (c *Comm) AlltoallvFloat64(send [][]float64) [][]float64 {
	c.stats.Alltoalls++
	c.collectiveSite()
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoallv send length != communicator size")
	}
	recv := make([][]float64, p)
	// Post all sends first (non-blocking), then receive in a rotated order
	// to avoid hot-spotting rank 0.
	for dist := 1; dist < p; dist++ {
		dest := (c.rank + dist) % p
		c.Send(dest, tagAlltoall, send[dest])
	}
	self := make([]float64, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	for dist := 1; dist < p; dist++ {
		src := (c.rank - dist + p) % p
		recv[src] = c.Recv(src, tagAlltoall).([]float64)
	}
	return recv
}

// AlltoallvFloat32 is AlltoallvFloat64 for float32 payloads; it is the
// narrow wire format of the mixed-precision transposes and interpolation
// exchanges, halving bytes on the wire.
func (c *Comm) AlltoallvFloat32(send [][]float32) [][]float32 {
	c.stats.Alltoalls++
	c.collectiveSite()
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoallv send length != communicator size")
	}
	recv := make([][]float32, p)
	for dist := 1; dist < p; dist++ {
		dest := (c.rank + dist) % p
		c.Send(dest, tagAlltoall, send[dest])
	}
	self := make([]float32, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	for dist := 1; dist < p; dist++ {
		src := (c.rank - dist + p) % p
		recv[src] = c.Recv(src, tagAlltoall).([]float32)
	}
	return recv
}

// AlltoallvComplex is AlltoallvFloat64 for complex128 payloads; it is the
// transpose primitive of the distributed FFT.
func (c *Comm) AlltoallvComplex(send [][]complex128) [][]complex128 {
	c.stats.Alltoalls++
	c.collectiveSite()
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoallv send length != communicator size")
	}
	recv := make([][]complex128, p)
	for dist := 1; dist < p; dist++ {
		dest := (c.rank + dist) % p
		c.Send(dest, tagAlltoall, send[dest])
	}
	self := make([]complex128, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	for dist := 1; dist < p; dist++ {
		src := (c.rank - dist + p) % p
		recv[src] = c.Recv(src, tagAlltoall).([]complex128)
	}
	return recv
}

// AlltoallvInt exchanges int slices; used for communication-plan metadata.
func (c *Comm) AlltoallvInt(send [][]int) [][]int {
	c.stats.Alltoalls++
	c.collectiveSite()
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoallv send length != communicator size")
	}
	recv := make([][]int, p)
	for dist := 1; dist < p; dist++ {
		dest := (c.rank + dist) % p
		c.Send(dest, tagAlltoall, send[dest])
	}
	self := make([]int, len(send[c.rank]))
	copy(self, send[c.rank])
	recv[c.rank] = self
	for dist := 1; dist < p; dist++ {
		src := (c.rank - dist + p) % p
		recv[src] = c.Recv(src, tagAlltoall).([]int)
	}
	return recv
}
