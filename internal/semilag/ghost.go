// Package semilag implements the semi-Lagrangian machinery of the paper:
// RK2 characteristic tracing (eq. 6), the distributed off-grid tricubic
// interpolation with its scatter/ghost communication pattern (Algorithm 1),
// and the reusable interpolation plan that is built once per velocity field
// per Newton iteration.
package semilag

import (
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// GhostWidth is the halo width required by the tricubic stencil: a query
// whose base cell is owned locally touches at most one plane below and two
// planes above the owned block.
const GhostWidth = 2

// Ghost exchanges halo layers of width GhostWidth in the two decomposed
// dimensions of a pencil. The third dimension is complete on every rank and
// wraps locally. Each exchange is the paper's "layer of ghost points ...
// synchronized before interpolation takes place", with the four corner
// blocks folded into the second phase, costing 4(tw N^2/p + ts) per rank.
type Ghost struct {
	Pe *grid.Pencil
}

// NewGhost returns a halo exchanger for the pencil.
func NewGhost(pe *grid.Pencil) *Ghost { return &Ghost{Pe: pe} }

// PaddedDims returns the dimensions of the padded local array.
func (g *Ghost) PaddedDims() [3]int {
	pe := g.Pe
	return [3]int{pe.Local(0) + 2*GhostWidth, pe.Local(1) + 2*GhostWidth, pe.Local(2)}
}

// Pad returns a copy of the local field extended by halo layers obtained
// from the neighboring ranks (or by periodic wrap when a dimension is not
// split). The input field has the pencil's local dimensions.
func (g *Ghost) Pad(f []float64) []float64 {
	pe := g.Pe
	const G = GhostWidth
	n1, n2, n3 := pe.Local(0), pe.Local(1), pe.Local(2)
	p1, p2 := pe.P[0], pe.P[1]
	pd := g.PaddedDims()
	out := make([]float64, pd[0]*pd[1]*pd[2])

	// Interior copy.
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			src := (i1*n2 + i2) * n3
			dst := ((i1+G)*pd[1] + (i2 + G)) * pd[2]
			copy(out[dst:dst+n3], f[src:src+n3])
		}
	}

	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	defer pe.Comm.SetPhase(old)

	// Phase A: exchange rows along dimension 0 within the column
	// communicator (ranks differing in coordinate r1). Rows span only the
	// owned dimension-1 range.
	rowBlock := func(i1lo int) []float64 {
		blk := make([]float64, G*n2*n3)
		pos := 0
		for i1 := i1lo; i1 < i1lo+G; i1++ {
			src := i1 * n2 * n3
			copy(blk[pos:pos+n2*n3], f[src:src+n2*n3])
			pos += n2 * n3
		}
		return blk
	}
	placeRows := func(pi1lo int, blk []float64) {
		pos := 0
		for i1 := 0; i1 < G; i1++ {
			for i2 := 0; i2 < n2; i2++ {
				dst := ((pi1lo+i1)*pd[1] + (i2 + G)) * pd[2]
				copy(out[dst:dst+n3], blk[pos:pos+n3])
				pos += n3
			}
		}
	}
	if p1 == 1 {
		placeRows(0, rowBlock(n1-G))
		placeRows(n1+G, rowBlock(0))
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		const tagUp, tagDown = 101, 102
		col.Send(up, tagUp, rowBlock(n1-G))  // my top rows -> their low ghosts
		col.Send(down, tagDown, rowBlock(0)) // my bottom rows -> their high ghosts
		placeRows(0, col.Recv(down, tagUp).([]float64))
		placeRows(n1+G, col.Recv(up, tagDown).([]float64))
	}

	// Phase B: exchange slabs along dimension 1 within the row
	// communicator. Slabs span the full padded dimension 0, so the corner
	// halos arrive for free.
	colBlock := func(pi2lo int) []float64 {
		blk := make([]float64, pd[0]*G*n3)
		pos := 0
		for pi1 := 0; pi1 < pd[0]; pi1++ {
			for i2 := pi2lo; i2 < pi2lo+G; i2++ {
				src := (pi1*pd[1] + i2) * pd[2]
				copy(blk[pos:pos+n3], out[src:src+n3])
				pos += n3
			}
		}
		return blk
	}
	placeCols := func(pi2lo int, blk []float64) {
		pos := 0
		for pi1 := 0; pi1 < pd[0]; pi1++ {
			for i2 := 0; i2 < G; i2++ {
				dst := (pi1*pd[1] + pi2lo + i2) * pd[2]
				copy(out[dst:dst+n3], blk[pos:pos+n3])
				pos += n3
			}
		}
	}
	if p2 == 1 {
		placeCols(0, colBlock(n2))
		placeCols(n2+G, colBlock(G))
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		const tagRight, tagLeft = 103, 104
		row.Send(right, tagRight, colBlock(n2)) // my rightmost owned columns
		row.Send(left, tagLeft, colBlock(G))    // my leftmost owned columns
		placeCols(0, row.Recv(left, tagRight).([]float64))
		placeCols(n2+G, row.Recv(right, tagLeft).([]float64))
	}
	return out
}
