// Brain phantom: the paper's real-world workload — inter-subject
// registration of two brain MR images (Table IV, Figs. 6-7). The NIREP
// datasets are substituted by the deterministic multi-tissue brain
// phantom (see DESIGN.md); the experiment exercises the identical code
// paths, including the non-power-of-two FFT (the paper's brain grid is
// 256x300x256, reproduced here at 1/8 scale as 32x37x32).
package main

import (
	"fmt"
	"log"
	"os"

	"diffreg"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
)

func main() {
	// Two "subjects": same anatomy family, different smooth inter-subject
	// deformation, like the NIREP na01/na02 pair.
	na01, na02, err := diffreg.BrainPhantomPair(32, 37, 32, 1, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Register na01 -> na02. The paper uses beta = 1e-4 and up to 50
	// Newton iterations for quality runs; 1e-3 suits this resolution.
	res, err := diffreg.Register(na01, na02, diffreg.Config{
		Tasks:   2,
		Beta:    1e-3,
		Verbose: true,
		Logf:    func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nnewton iterations: %d, hessian matvecs: %d\n", res.NewtonIters, res.HessianMatvecs)
	fmt.Printf("misfit: %.5e -> %.5e (%.1f%% of initial)\n",
		res.MisfitInit, res.MisfitFinal, 100*res.MisfitFinal/res.MisfitInit)
	fmt.Printf("det(grad y1): min %.4f max %.4f mean %.4f\n", res.DetMin, res.DetMax, res.DetMean)
	if res.DetMin > 0 {
		fmt.Println("the deformation map is diffeomorphic (Fig. 7 of the paper)")
	}

	// Write the figure panels: reference, template, residual before/after,
	// det(grad y) map, warped template — the columns of the paper's Fig. 7.
	outDir := "brain_results"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	g := grid.MustNew(32, 37, 32)
	residBefore := make([]float64, len(na01.Data))
	residAfter := make([]float64, len(na01.Data))
	for i := range na01.Data {
		residBefore[i] = abs(na01.Data[i] - na02.Data[i])
		residAfter[i] = abs(res.Warped.Data[i] - na02.Data[i])
	}
	panels := map[string][]float64{
		"reference":       na02.Data,
		"template":        na01.Data,
		"residual_before": residBefore,
		"residual_after":  residAfter,
		"detgrad":         res.DetGrad.Data,
		"warped":          res.Warped.Data,
	}
	for name, data := range panels {
		if err := imaging.WritePGMSlice(outDir+"/"+name+".pgm", g, data, 0, 16); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("slice panels written to %s/\n", outDir)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
