package pfft

import (
	"fmt"
	"testing"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// Panic-on-error wrappers for the Plan entry points: test inputs are
// always correctly sized, and a panic inside a rank goroutine aborts the
// world and surfaces through mpi.Run's error, so a defect fails the test
// instead of hanging it.

func mustFwd(pl *Plan, src []float64) []complex128 {
	spec, err := pl.Forward(src)
	if err != nil {
		panic(err)
	}
	return spec
}

func mustInv(pl *Plan, spec []complex128) []float64 {
	out, err := pl.Inverse(spec)
	if err != nil {
		panic(err)
	}
	return out
}

func mustFwdB(pl *Plan, srcs [][]float64) [][]complex128 {
	specs, err := pl.ForwardBatch(srcs)
	if err != nil {
		panic(err)
	}
	return specs
}

func mustInvB(pl *Plan, specs [][]complex128) [][]float64 {
	outs, err := pl.InverseBatch(specs)
	if err != nil {
		panic(err)
	}
	return outs
}

func mustNil(err error) {
	if err != nil {
		panic(err)
	}
}

// TestEntryPointErrors verifies that caller-violable contracts surface as
// returned errors (not panics) before any communication, at p=1 and p=4.
func TestEntryPointErrors(t *testing.T) {
	g, err := grid.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			good := make([]float64, pe.LocalTotal())
			goodSpec := make([]complex128, pl.SpecLocalTotal())
			cases := []struct {
				name string
				call func() error
			}{
				{"forward short src", func() error { return pl.ForwardInto(good[:1], goodSpec) }},
				{"forward short dst", func() error { return pl.ForwardInto(good, goodSpec[:1]) }},
				{"forward count mismatch", func() error {
					return pl.ForwardBatchInto([][]float64{good}, [][]complex128{goodSpec, goodSpec})
				}},
				{"inverse short spec", func() error { return pl.InverseInto(goodSpec[:1], good) }},
				{"inverse short dst", func() error { return pl.InverseInto(goodSpec, good[:1]) }},
				{"inverse count mismatch", func() error {
					return pl.InverseBatchInto([][]complex128{goodSpec}, [][]float64{good, good})
				}},
				{"forward nil batch", func() error {
					_, err := pl.ForwardBatch([][]float64{nil})
					return err
				}},
			}
			for _, tc := range cases {
				if err := tc.call(); err == nil {
					return fmt.Errorf("p=%d %s: want error, got nil", p, tc.name)
				}
			}
			// Valid calls still work after the rejected ones.
			if err := pl.ForwardInto(good, goodSpec); err != nil {
				return fmt.Errorf("p=%d valid forward: %v", p, err)
			}
			if err := pl.InverseInto(goodSpec, good); err != nil {
				return fmt.Errorf("p=%d valid inverse: %v", p, err)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
