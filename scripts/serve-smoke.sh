#!/usr/bin/env bash
# serve-smoke.sh — CI smoke test for the regserve daemon.
#
# Starts the daemon, submits one 32³ synthetic registration over HTTP,
# polls the job to completion, and asserts the final misfit is finite
# and below the initial misfit. Usage: scripts/serve-smoke.sh [regserve-binary]
set -euo pipefail

BIN=${1:-}
if [ -z "$BIN" ]; then
    go build -o /tmp/regserve ./cmd/regserve
    BIN=/tmp/regserve
fi
ADDR=127.0.0.1:7470
BASE=http://$ADDR

"$BIN" -addr "$ADDR" -workers 1 &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

code=$(curl -s -o job.json -w '%{http_code}' -X POST "$BASE/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"generator":"synthetic","n":[32,32,32],"tasks":2,"time_steps":2,"max_newton_iters":2}')
if [ "$code" != 202 ]; then
    echo "serve-smoke: POST /jobs returned $code" >&2
    cat job.json >&2
    exit 1
fi
id=$(jq -r .id job.json)

state=""
for _ in $(seq 1 300); do
    code=$(curl -s -o status.json -w '%{http_code}' "$BASE/jobs/$id")
    if [ "$code" != 200 ]; then
        echo "serve-smoke: GET /jobs/$id returned $code" >&2
        exit 1
    fi
    state=$(jq -r .state status.json)
    case "$state" in
    done) break ;;
    failed | canceled)
        echo "serve-smoke: job ended $state" >&2
        cat status.json >&2
        exit 1
        ;;
    esac
    sleep 1
done
if [ "$state" != done ]; then
    echo "serve-smoke: job did not finish in time" >&2
    cat status.json >&2
    exit 1
fi

jq -e '.result.misfit_final as $m
       | ($m | isnan or isinfinite | not)
       and $m >= 0 and $m < .result.misfit_init' status.json >/dev/null || {
    echo "serve-smoke: misfit check failed" >&2
    cat status.json >&2
    exit 1
}
echo "serve-smoke: ok (misfit $(jq -r .result.misfit_init status.json) -> $(jq -r .result.misfit_final status.json))"
