package semilag

import (
	"math"
	"math/rand"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
)

func globalRandom(n [3]int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n[0]*n[1]*n[2])
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func localOf(pe *grid.Pencil, global []float64) []float64 {
	n := pe.Grid.N
	out := make([]float64, pe.LocalTotal())
	pe.EachLocal(func(i1, i2, i3, idx int) {
		out[idx] = global[((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2]+pe.Lo[2]+i3]
	})
	return out
}

func TestGhostPadMatchesPeriodicIndexing(t *testing.T) {
	g := grid.MustNew(8, 12, 6)
	global := globalRandom(g.N, 11)
	for _, p := range []int{1, 2, 4, 6} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			gh := NewGhost(pe)
			padded := gh.Pad(localOf(pe, global))
			pd := gh.PaddedDims()
			n := g.N
			for pi1 := 0; pi1 < pd[0]; pi1++ {
				for pi2 := 0; pi2 < pd[1]; pi2++ {
					for i3 := 0; i3 < pd[2]; i3++ {
						g1 := ((pe.Lo[0] + pi1 - GhostWidth) + n[0]) % n[0]
						g2 := ((pe.Lo[1] + pi2 - GhostWidth) + n[1]) % n[1]
						want := global[(g1*n[1]+g2)*n[2]+i3]
						got := padded[(pi1*pd[1]+pi2)*pd[2]+i3]
						if got != want {
							t.Errorf("p=%d rank=%d: padded(%d,%d,%d)=%g want %g",
								p, c.Rank(), pi1, pi2, i3, got, want)
							return nil
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestPlanInterpMatchesSerialReference(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	global := globalRandom(g.N, 22)
	// Random query points, one per local grid point, distributed around the
	// whole domain (large displacements so many are off-rank).
	for _, p := range []int{1, 2, 4, 6} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(int64(100 + c.Rank())))
			nq := pe.LocalTotal()
			var pts [3][]float64
			for d := 0; d < 3; d++ {
				pts[d] = make([]float64, nq)
				for q := 0; q < nq; q++ {
					pts[d][q] = (rng.Float64()*3 - 1) * float64(g.N[d]) // in [-N, 2N)
				}
			}
			plan := NewPlan(pe, pts)
			got := plan.Interp(localOf(pe, global))
			for q := 0; q < nq; q++ {
				want := interp.EvalPeriodic(global, g.N, [3]float64{pts[0][q], pts[1][q], pts[2][q]})
				if math.Abs(got[q]-want) > 1e-10 {
					t.Errorf("p=%d rank=%d q=%d: got %g want %g", p, c.Rank(), q, got[q], want)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestInterpManyMatchesRepeatedInterp(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	f1 := globalRandom(g.N, 1)
	f2 := globalRandom(g.N, 2)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		nq := 50
		var pts [3][]float64
		for d := 0; d < 3; d++ {
			pts[d] = make([]float64, nq)
			for q := range pts[d] {
				pts[d][q] = rng.Float64() * float64(g.N[d])
			}
		}
		plan := NewPlan(pe, pts)
		l1, l2 := localOf(pe, f1), localOf(pe, f2)
		// Outs are plan-owned scratch, valid only until the next interp on
		// the same plan — copy before issuing the solo calls.
		res := plan.InterpMany(l1, l2)
		both := [][]float64{
			append([]float64(nil), res[0]...),
			append([]float64(nil), res[1]...),
		}
		one1 := append([]float64(nil), plan.Interp(l1)...)
		one2 := plan.Interp(l2)
		for q := 0; q < nq; q++ {
			if both[0][q] != one1[q] || both[1][q] != one2[q] {
				t.Errorf("batched interp differs at %d", q)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDepartureConstantVelocity(t *testing.T) {
	// With constant v both RK2 stages agree and X = x - dt*v exactly.
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		v := field.NewVector(pe)
		v.SetFunc(func(_, _, _ float64) (float64, float64, float64) { return 0.3, -0.2, 0.1 })
		dt := 0.25
		dep := Departure(pe, v, dt)
		h := g.Spacing(0)
		pe.EachLocal(func(i1, i2, i3, idx int) {
			want0 := float64(pe.Lo[0]+i1) - dt*0.3/h
			want1 := float64(pe.Lo[1]+i2) + dt*0.2/h
			want2 := float64(pe.Lo[2]+i3) - dt*0.1/h
			if math.Abs(dep[0][idx]-want0) > 1e-12 ||
				math.Abs(dep[1][idx]-want1) > 1e-12 ||
				math.Abs(dep[2][idx]-want2) > 1e-12 {
				t.Errorf("departure mismatch at %d", idx)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDepartureMatchesSerialAcrossRanks(t *testing.T) {
	// Departure points for a smooth velocity must be identical no matter
	// how many ranks compute them.
	g := grid.MustNew(12, 12, 12)
	setV := func(v *field.Vector) {
		v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
			return math.Cos(x1) * math.Sin(x2), math.Cos(x2) * math.Sin(x1), math.Cos(x1) * math.Sin(x3)
		})
	}
	ref := make([]float64, 3*g.Total())
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		v := field.NewVector(pe)
		setV(v)
		dep := Departure(pe, v, 0.25)
		for d := 0; d < 3; d++ {
			copy(ref[d*g.Total():(d+1)*g.Total()], dep[d])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		v := field.NewVector(pe)
		setV(v)
		dep := Departure(pe, v, 0.25)
		n := g.N
		pe.EachLocal(func(i1, i2, i3, idx int) {
			gidx := ((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2] + pe.Lo[2] + i3
			for d := 0; d < 3; d++ {
				if math.Abs(dep[d][idx]-ref[d*g.Total()+gidx]) > 1e-10 {
					t.Errorf("departure differs at %d dim %d: %g vs %g",
						gidx, d, dep[d][idx], ref[d*g.Total()+gidx])
				}
			}
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffRankCounting(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		// Queries exactly at the local grid points: all on-rank.
		nq := pe.LocalTotal()
		var pts [3][]float64
		for d := 0; d < 3; d++ {
			pts[d] = make([]float64, nq)
		}
		pe.EachLocal(func(i1, i2, i3, idx int) {
			pts[0][idx] = float64(pe.Lo[0] + i1)
			pts[1][idx] = float64(pe.Lo[1] + i2)
			pts[2][idx] = float64(pe.Lo[2] + i3)
		})
		plan := NewPlan(pe, pts)
		if plan.OffRank != 0 {
			t.Errorf("expected 0 off-rank points, got %d", plan.OffRank)
		}
		// Shift by half the domain in dim 0: every point leaves the rank.
		for q := range pts[0] {
			pts[0][q] += float64(g.N[0]) / 2
		}
		plan2 := NewPlan(pe, pts)
		if plan2.OffRank != nq {
			t.Errorf("expected %d off-rank points, got %d", nq, plan2.OffRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPlanExactAtNodes(t *testing.T) {
	// Interpolating at exact node coordinates returns the nodal values.
	g := grid.MustNew(8, 12, 6)
	global := globalRandom(g.N, 33)
	_, err := mpi.Run(6, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		nq := pe.LocalTotal()
		var pts [3][]float64
		for d := 0; d < 3; d++ {
			pts[d] = make([]float64, nq)
		}
		pe.EachLocal(func(i1, i2, i3, idx int) {
			pts[0][idx] = float64(pe.Lo[0] + i1)
			pts[1][idx] = float64(pe.Lo[1] + i2)
			pts[2][idx] = float64(pe.Lo[2] + i3)
		})
		plan := NewPlan(pe, pts)
		local := localOf(pe, global)
		got := plan.Interp(local)
		for q := range got {
			if math.Abs(got[q]-local[q]) > 1e-12 {
				t.Errorf("node interp differs at %d: %g vs %g", q, got[q], local[q])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanReuseCountersAndValues pins the plan-reuse contract: one plan
// serving several transported quantities (the solver transports the state,
// adjoint, and incremental fields through the same departure points) must
// leave OffRank at its build-time value, advance Evals by exactly the local
// evaluation count per field — identically for batched (InterpMany) and
// sequential (Interp) use — and return bit-identical values to a fresh
// plan built from the same points.
func TestPlanReuseCountersAndValues(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	fields := [][]float64{globalRandom(g.N, 41), globalRandom(g.N, 42), globalRandom(g.N, 43)}
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(100 + c.Rank())))
		nq := 64
		var pts [3][]float64
		for d := 0; d < 3; d++ {
			pts[d] = make([]float64, nq)
			for q := range pts[d] {
				pts[d][q] = rng.Float64() * float64(g.N[d])
			}
		}
		plan := NewPlan(pe, pts)
		offRank0 := plan.OffRank
		perField := int64(0)
		for r := range plan.recvPts {
			perField += int64(len(plan.recvPts[r]) / 3)
		}
		if plan.Evals != 0 {
			t.Errorf("fresh plan has Evals=%d, want 0", plan.Evals)
		}

		locals := make([][]float64, len(fields))
		for i, f := range fields {
			locals[i] = localOf(pe, f)
		}
		// InterpMany returns plan-owned scratch; copy before reusing the plan.
		batched := make([][]float64, len(fields))
		for i, o := range plan.InterpMany(locals...) {
			batched[i] = append([]float64(nil), o...)
		}
		if plan.Evals != int64(len(fields))*perField {
			t.Errorf("after InterpMany of %d fields: Evals=%d, want %d",
				len(fields), plan.Evals, int64(len(fields))*perField)
		}
		if plan.OffRank != offRank0 {
			t.Errorf("InterpMany changed OffRank: %d -> %d", offRank0, plan.OffRank)
		}

		sequential := make([][]float64, len(fields))
		for i := range locals {
			sequential[i] = append([]float64(nil), plan.Interp(locals[i])...)
		}
		if plan.Evals != 2*int64(len(fields))*perField {
			t.Errorf("after sequential reuse: Evals=%d, want %d",
				plan.Evals, 2*int64(len(fields))*perField)
		}
		if plan.OffRank != offRank0 {
			t.Errorf("sequential reuse changed OffRank: %d -> %d", offRank0, plan.OffRank)
		}

		for i := range fields {
			fresh := NewPlan(pe, pts).Interp(locals[i])
			for q := 0; q < nq; q++ {
				if math.Float64bits(batched[i][q]) != math.Float64bits(fresh[q]) {
					t.Errorf("field %d point %d: batched reused plan %v != fresh plan %v",
						i, q, batched[i][q], fresh[q])
					return nil
				}
				if math.Float64bits(sequential[i][q]) != math.Float64bits(fresh[q]) {
					t.Errorf("field %d point %d: sequential reused plan %v != fresh plan %v",
						i, q, sequential[i][q], fresh[q])
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
