package ckpt

import (
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"testing"

	"diffreg/internal/optim"
)

func sample() *State {
	st := &State{
		N: [3]int{4, 3, 2}, Tasks: 4,
		Beta: 1e-2, BetaLevel: 1, Iter: 7,
		JInit: 3.25, MisfitInit: 3.0, GnormInit: 12.5,
		History: []optim.IterRecord{
			{Iter: 0, J: 3.25, Misfit: 3, Gnorm: 12.5, Forcing: 0.5, CGIters: 4, Step: 1, LineTrial: 1},
			{Iter: 1, J: 1.5, Misfit: 1.25, Gnorm: 4.75, Forcing: 0.31, CGIters: 7, Step: 0.5, LineTrial: 2},
		},
		Seed: 42,
	}
	for d := 0; d < 3; d++ {
		st.V[d] = make([]float64, 24)
		for i := range st.V[d] {
			st.V[d][i] = math.Sin(float64(d*100+i)) * math.Pow(10, float64(d-1))
		}
	}
	return st
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.ckpt")
	want := sample()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Tasks != want.Tasks || got.Beta != want.Beta ||
		got.BetaLevel != want.BetaLevel || got.Iter != want.Iter || got.Seed != want.Seed {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	if got.JInit != want.JInit || got.MisfitInit != want.MisfitInit || got.GnormInit != want.GnormInit {
		t.Fatalf("scalar mismatch")
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("history length %d vs %d", len(got.History), len(want.History))
	}
	for i := range want.History {
		if got.History[i] != want.History[i] {
			t.Errorf("history %d: %+v vs %+v", i, got.History[i], want.History[i])
		}
	}
	for d := 0; d < 3; d++ {
		for i := range want.V[d] {
			if got.V[d][i] != want.V[d][i] {
				t.Fatalf("component %d value %d: %v vs %v (must be bit-identical)", d, i, got.V[d][i], want.V[d][i])
			}
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.ckpt")
	first := sample()
	if err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Iter = 11
	if err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != 11 {
		t.Fatalf("stale checkpoint survived: iter %d", got.Iter)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("leftover files: %v", entries)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bitflip":   append([]byte{}, raw...),
		"truncated": raw[:len(raw)/2],
		"badmagic":  append([]byte("NOTACKPT"), raw[8:]...),
		"short":     raw[:10],
	}
	cases["bitflip"][len(raw)/2] ^= 0x10
	for name, data := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: corrupted checkpoint loaded without error", name)
		}
	}

	// Version bump must be refused (with the CRC recomputed, so only the
	// version check can catch it).
	bumped := append([]byte{}, raw[:len(raw)-8]...)
	bumped[8] = 99
	if err := os.WriteFile(filepath.Join(dir, "ver"), appendCRC(bumped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "ver")); err == nil {
		t.Error("future version loaded without error")
	}
}

// TestPrecisionHeaderRoundTrip pins the v2 precision header: the write-time
// precision string survives the round trip, with the empty string decoding
// as the float64 default.
func TestPrecisionHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for i, tc := range []struct{ in, want string }{
		{"", "float64"},
		{"float64", "float64"},
		{"float32", "float32"},
	} {
		st := sample()
		st.Precision = tc.in
		path := filepath.Join(dir, fmt.Sprintf("p%d.ckpt", i))
		if err := Save(path, st); err != nil {
			t.Fatalf("precision %q: %v", tc.in, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("precision %q: %v", tc.in, err)
		}
		if got.Precision != tc.want {
			t.Errorf("precision %q round-tripped to %q, want %q", tc.in, got.Precision, tc.want)
		}
	}

	// A precision string outside the format's vocabulary must refuse to
	// save rather than write an undecodable header.
	bad := sample()
	bad.Precision = "float16"
	if err := Save(filepath.Join(dir, "bad.ckpt"), bad); err == nil {
		t.Error("unknown precision string saved without error")
	}
}

// TestLoadRejectsUnknownPrecisionCode patches the on-disk precision code to
// an undefined value (with the CRC recomputed, so only the field validation
// can catch it) and requires a typed format error.
func TestLoadRejectsUnknownPrecisionCode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reg.ckpt")
	if err := Save(path, sample()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Precision code offset: magic (8) + version (4) + N (3x8) + Tasks (8).
	body := append([]byte{}, raw[:len(raw)-8]...)
	body[44] = 7
	patched := filepath.Join(dir, "badcode.ckpt")
	if err := os.WriteFile(patched, appendCRC(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var ferr *FormatError
	if _, err := Load(patched); !errors.As(err, &ferr) {
		t.Fatalf("unknown precision code: got %v, want *FormatError", err)
	}
}

func appendCRC(body []byte) []byte {
	sum := crc64.Checksum(body, crcTable)
	out := append([]byte{}, body...)
	for i := 0; i < 8; i++ {
		out = append(out, byte(sum>>(8*i)))
	}
	return out
}
