package check

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Mode states how a finding's measured value relates to its limit.
const (
	// ModeMax passes when Measured <= Limit (error bounds).
	ModeMax = "max"
	// ModeMin passes when Measured >= Limit (convergence orders).
	ModeMin = "min"
)

// Finding is one verified numerical property: a measured quantity, the
// acceptance limit it is held against, and the verdict.
type Finding struct {
	Group    string  `json:"group"` // taylor | adjoint | invariant
	Name     string  `json:"name"`
	Ranks    int     `json:"ranks"`
	Measured float64 `json:"measured"`
	Limit    float64 `json:"limit"`
	Mode     string  `json:"mode"`
	Pass     bool    `json:"pass"`
	Detail   string  `json:"detail,omitempty"`
}

// Report aggregates the findings of one harness run, in a shape that is
// stable for machines (JSON, gated in CI) and readable for humans
// (Summary).
type Report struct {
	N         int       `json:"n"`         // grid size (N^3)
	Nt        int       `json:"nt"`        // transport time steps
	Quick     bool      `json:"quick"`     // reduced grid + trial counts
	Precision string    `json:"precision"` // numeric mode under test
	Ranks     []int     `json:"ranks"`     // process counts exercised
	Findings  []Finding `json:"findings"`
	Passed    int       `json:"passed"`
	Failed    int       `json:"failed"`
}

func (r *Report) add(f Finding) {
	switch f.Mode {
	case ModeMin:
		f.Pass = f.Measured >= f.Limit
	default:
		f.Pass = f.Measured <= f.Limit
	}
	if f.Pass {
		r.Passed++
	} else {
		r.Failed++
	}
	r.Findings = append(r.Findings, f)
}

// OK reports whether every finding passed.
func (r *Report) OK() bool { return r.Failed == 0 }

// JSON renders the machine-readable report.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Summary renders a human-readable table of the findings.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "numerical self-check: N=%d nt=%d ranks=%v quick=%v precision=%s\n", r.N, r.Nt, r.Ranks, r.Quick, r.Precision)
	for _, f := range r.Findings {
		verdict := "PASS"
		if !f.Pass {
			verdict = "FAIL"
		}
		rel := "<="
		if f.Mode == ModeMin {
			rel = ">="
		}
		fmt.Fprintf(&b, "  [%s] %-9s p=%d %-28s %11.4e %s %.1e", verdict, f.Group, f.Ranks, f.Name, f.Measured, rel, f.Limit)
		if f.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", f.Detail)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "passed %d, failed %d\n", r.Passed, r.Failed)
	return b.String()
}
