package diffreg

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
	"diffreg/internal/tsreg"
)

// TimeSeriesResult reports a multiframe registration.
type TimeSeriesResult struct {
	Converged      bool
	NewtonIters    int
	HessianMatvecs int

	// MisfitInit/MisfitFinal sum the per-frame misfits; FrameMisfits
	// breaks the final value down per frame (frames 1..K).
	MisfitInit   float64
	MisfitFinal  float64
	FrameMisfits []float64
	GnormInit    float64
	GnormFinal   float64

	// DetMin/DetMax certify the end-to-end map y(x, 1).
	DetMin  float64
	DetMax  float64
	DetMean float64

	// Velocity is the recovered stationary velocity driving the sequence.
	Velocity [3]Volume
	// Warped holds rho_0 transported to each frame time t_1..t_K.
	Warped []Volume
}

// RegisterTimeSeries registers an image sequence (4D registration, e.g.
// Cine-MRI): it finds one flow whose trajectory passes through every
// frame, minimizing
//
//	1/2 sum_k ||rho(t_k) - frames[k]||^2 + beta/2 |v|^2_A.
//
// frames[0] is the initial frame (transported exactly); there must be at
// least two frames, all with identical dimensions, and cfg.TimeSteps must
// be divisible by len(frames)-1.
//
// With cfg.VelocityIntervals == len(frames)-1 the velocity becomes
// time-varying (one coefficient per frame interval) — the full optical
// flow setting of §V, which captures motion that changes direction
// between frames. Distance, MultilevelLevels and FirstOrder are not
// supported here.
func RegisterTimeSeries(frames []Volume, cfg Config) (*TimeSeriesResult, error) {
	cfg = cfg.withDefaults()
	if len(frames) < 2 {
		return nil, fmt.Errorf("diffreg: need at least 2 frames, got %d", len(frames))
	}
	n := frames[0].N
	for k, f := range frames {
		if f.N != n {
			return nil, fmt.Errorf("diffreg: frame %d dims %v differ from %v", k, f.N, n)
		}
		if len(f.Data) != n[0]*n[1]*n[2] {
			return nil, fmt.Errorf("diffreg: frame %d has %d values for dims %v", k, len(f.Data), n)
		}
	}
	g, err := grid.New(n[0], n[1], n[2])
	if err != nil {
		return nil, err
	}

	res := &TimeSeriesResult{}
	var solveErr error
	_, err = mpi.Run(cfg.Tasks, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		local := make([]*field.Scalar, len(frames))
		for k := range frames {
			local[k] = field.NewScalar(pe)
			var data []float64
			if c.Rank() == 0 {
				data = frames[k].Data
			}
			local[k].Scatter(data)
			if cfg.NormalizeIntensities {
				imaging.Normalize(local[k])
			}
			if cfg.Smooth {
				ops.SmoothGridScale(local[k])
			}
		}
		opt := regopt.Options{
			Beta:           cfg.Beta,
			Reg:            cfg.Reg,
			Incompressible: cfg.Incompressible,
			Nt:             cfg.TimeSteps,
			GaussNewton:    !cfg.FullNewton,
		}
		nopt := optim.DefaultNewtonOptions()
		nopt.GradTol = cfg.GradTol
		nopt.MaxIters = cfg.MaxNewtonIters
		if cfg.Verbose && cfg.Logf != nil && c.Rank() == 0 {
			nopt.Log = cfg.Logf
		}

		ts := transport.NewSolver(ops, cfg.TimeSteps)
		nc := cfg.VelocityIntervals
		var sol struct {
			converged              bool
			iters, matvecs         int
			misfitInit, misfitLast float64
			gnormInit, gnormLast   float64
			vs                     field.Series
			frameMis               []float64
		}
		if nc > 1 {
			if nc != len(frames)-1 {
				solveErr = fmt.Errorf("diffreg: VelocityIntervals (%d) must equal the number of frame intervals (%d)", nc, len(frames)-1)
				return solveErr
			}
			pr, err := tsreg.NewSeries(ops, local, opt)
			if err != nil {
				solveErr = err
				return err
			}
			r := optim.GaussNewton[field.Series](pr, field.NewSeries(pe, nc), nopt)
			sol.converged, sol.iters, sol.matvecs = r.Converged, r.Iters, pr.Matvecs
			sol.misfitInit, sol.misfitLast = r.MisfitInit, r.MisfitLast
			sol.gnormInit, sol.gnormLast = r.GnormInit, r.GnormLast
			sol.vs = r.V
		} else {
			pr, err := tsreg.New(ops, local, opt)
			if err != nil {
				solveErr = err
				return err
			}
			r := optim.GaussNewton[*field.Vector](pr, field.NewVector(pe), nopt)
			sol.converged, sol.iters, sol.matvecs = r.Converged, r.Iters, pr.Matvecs
			sol.misfitInit, sol.misfitLast = r.MisfitInit, r.MisfitLast
			sol.gnormInit, sol.gnormLast = r.GnormInit, r.GnormLast
			sol.vs = field.Series{r.V}
			sol.frameMis = pr.FrameMisfits()
		}

		// Map quality of the end-to-end deformation and warped frames.
		sc, err := ts.NewSeriesContext(sol.vs, cfg.Incompressible)
		if err != nil {
			solveErr = err
			return err
		}
		u := ts.DisplacementSeries(sc)
		det := ts.DetGrad(u)
		states := ts.StateSeries(sc, local[0])
		stepsPerFrame := cfg.TimeSteps / (len(frames) - 1)

		var vel [3][]float64
		for d := 0; d < 3; d++ {
			vel[d] = sol.vs[0].C[d].Gather()
		}
		var warped [][]float64
		snap := field.NewScalar(pe)
		frameMis := sol.frameMis
		if frameMis == nil {
			frameMis = make([]float64, 0, len(frames)-1)
		}
		resid := field.NewScalar(pe)
		for k := 1; k < len(frames); k++ {
			copy(snap.Data, states[k*stepsPerFrame])
			warped = append(warped, snap.Gather())
			if sol.frameMis == nil {
				for i := range resid.Data {
					resid.Data[i] = snap.Data[i] - local[k].Data[i]
				}
				frameMis = append(frameMis, 0.5*resid.Dot(resid))
			}
		}
		detMin, detMax, detMean := det.Min(), det.Max(), det.Mean()

		if c.Rank() == 0 {
			res.Converged = sol.converged
			res.NewtonIters = sol.iters
			res.HessianMatvecs = sol.matvecs
			res.MisfitInit = sol.misfitInit
			res.MisfitFinal = sol.misfitLast
			res.FrameMisfits = frameMis
			res.GnormInit = sol.gnormInit
			res.GnormFinal = sol.gnormLast
			res.DetMin, res.DetMax, res.DetMean = detMin, detMax, detMean
			for d := 0; d < 3; d++ {
				res.Velocity[d] = Volume{N: n, Data: vel[d]}
			}
			for _, w := range warped {
				res.Warped = append(res.Warped, Volume{N: n, Data: w})
			}
		}
		return nil
	})
	if solveErr != nil {
		return nil, solveErr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SyntheticSequence builds a synthetic 4D test sequence: the sinusoidal
// template transported along the scaled synthetic velocity, sampled at
// nFrames+1 uniformly spaced pseudo-times.
func SyntheticSequence(n1, n2, n3, nFrames, nt int, amplitude float64) ([]Volume, error) {
	if nFrames < 1 || nt%nFrames != 0 {
		return nil, fmt.Errorf("diffreg: nt=%d not divisible by %d frames", nt, nFrames)
	}
	g, err := grid.New(n1, n2, n3)
	if err != nil {
		return nil, err
	}
	frames := make([]Volume, nFrames+1)
	_, err = mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rho0 := imaging.SyntheticTemplate(pe)
		v := imaging.SyntheticVelocity(pe)
		v.Scale(amplitude)
		ts := transport.NewSolver(ops, nt)
		ctx := ts.NewContext(v, false)
		states := ts.State(ctx, rho0)
		step := nt / nFrames
		for k := 0; k <= nFrames; k++ {
			frames[k] = NewVolume(n1, n2, n3)
			copy(frames[k].Data, states[k*step])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return frames, nil
}
