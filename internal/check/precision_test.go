package check

// Mixed-precision acceptance tests at the public solver API: the float32
// hot path must reproduce the float64 registration result to single
// precision, the float64 reference path must be unperturbed by the
// precision plumbing, narrow-wire corruption must surface as a structured
// CommError exactly like the wide format, and a checkpoint written at one
// precision must refuse to resume at the other with a typed error.

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"diffreg"
	"diffreg/internal/ckpt"
	"diffreg/internal/mpi"
)

// TestFloat32SolveMatchesReference solves the same synthetic problem on
// both numeric paths. The narrow path carries eps32-level noise through
// the transport and transpose stages, but the reductions accumulate in
// float64, so the converged misfit agrees to far better than the
// discretization error. The empty precision string must be bit-identical
// to the explicit float64 reference — it is the same code path.
func TestFloat32SolveMatchesReference(t *testing.T) {
	tmpl, ref := chaosProblem(t)
	for _, p := range []int{1, 4} {
		cfg := chaosConfig(p)
		wide, err := registerBounded(t, tmpl, ref, cfg, 2*time.Minute, "float64")
		if err != nil {
			t.Fatalf("p=%d float64: %v", p, err)
		}

		explicit := cfg
		explicit.Precision = "float64"
		eres, err := registerBounded(t, tmpl, ref, explicit, 2*time.Minute, "float64 explicit")
		if err != nil {
			t.Fatalf("p=%d explicit float64: %v", p, err)
		}
		if eres.MisfitFinal != wide.MisfitFinal || eres.GnormFinal != wide.GnormFinal {
			t.Errorf("p=%d: explicit float64 is not bit-identical to the default: misfit %v vs %v",
				p, eres.MisfitFinal, wide.MisfitFinal)
		}

		narrowCfg := cfg
		narrowCfg.Precision = "float32"
		narrow, err := registerBounded(t, tmpl, ref, narrowCfg, 2*time.Minute, "float32")
		if err != nil {
			t.Fatalf("p=%d float32: %v", p, err)
		}
		if !finiteVal(narrow.MisfitFinal) {
			t.Fatalf("p=%d: float32 solve diverged: misfit %v", p, narrow.MisfitFinal)
		}
		if rel := math.Abs(narrow.MisfitFinal-wide.MisfitFinal) / wide.MisfitFinal; rel > 1e-3 {
			t.Errorf("p=%d: float32 misfit %g deviates %.2e from float64 %g (want < 1e-3 relative)",
				p, narrow.MisfitFinal, rel, wide.MisfitFinal)
		}
	}

	bad := chaosConfig(1)
	bad.Precision = "float16"
	if _, err := diffreg.Register(tmpl, ref, bad); err == nil {
		t.Error("unknown precision string accepted")
	}
}

// TestChaosNarrowWireSites extends the PR 5 fault sweep to the float32
// wire format: truncation and bit flips on narrow transpose and halo
// payloads must surface as structured *mpi.CommError (the truncation cuts
// []float32 payloads to an odd count, severing a complex wire pair
// mid-element), while delays must be tolerated within the 1% misfit band.
func TestChaosNarrowWireSites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sites are long; run without -short (dedicated CI job)")
	}
	tmpl, ref := chaosProblem(t)

	base := chaosConfig(4)
	base.Precision = "float32"
	clean, err := registerBounded(t, tmpl, ref, base, 2*time.Minute, "float32 fault-free")
	if err != nil {
		t.Fatalf("fault-free float32 baseline: %v", err)
	}

	sites := []string{
		"1:fft-comm:send:0:truncate",
		"2:fft-comm:send:3:bitflip",
		"0:interp-comm:send:1:truncate",
		"3:interp-comm:send:2:bitflip",
		"1:fft-comm:coll:1:truncate",
		"2:interp-comm:send:0:delay",
	}
	detected, completed := 0, 0
	for i, s := range sites {
		cfg := base
		cfg.ChaosSpec = fmt.Sprintf("seed=%d;site=%s", 2000+i, s)
		label := "float32 site=" + s
		res, err := registerBounded(t, tmpl, ref, cfg, 2*time.Minute, label)
		if err != nil {
			var comm *mpi.CommError
			if !errors.As(err, &comm) {
				t.Errorf("%s: error is not a structured CommError: %v", label, err)
				continue
			}
			detected++
			continue
		}
		if !finiteVal(res.MisfitFinal) {
			t.Errorf("%s: silent divergence: misfit %v", label, res.MisfitFinal)
			continue
		}
		if rel := math.Abs(res.MisfitFinal-clean.MisfitFinal) / clean.MisfitFinal; rel > 0.01 {
			t.Errorf("%s: misfit %g deviates %.2f%% from fault-free", label, res.MisfitFinal, 100*rel)
			continue
		}
		completed++
	}
	t.Logf("narrow-wire chaos: %d sites, %d detected, %d completed", len(sites), detected, completed)
	if detected == 0 {
		t.Error("no narrow-wire fault was detected — the float32 format bypasses validation")
	}
	if completed == 0 {
		t.Error("no narrow-wire run completed — tolerated faults break the float32 path")
	}
}

// TestCrossPrecisionResumeRejected interrupts a float32 solve with a
// checkpoint, then attempts to resume it at float64: the v2 header records
// the write-time precision and the resume must fail with the typed
// *ckpt.PrecisionMismatchError, never silently continue a float32
// trajectory on the wide path. Resuming at the matching precision works.
func TestCrossPrecisionResumeRejected(t *testing.T) {
	tmpl, ref := chaosProblem(t)
	ckPath := filepath.Join(t.TempDir(), "reg.ckpt")

	interrupted := diffreg.Config{Tasks: 4, MaxNewtonIters: 6, GradTol: 1e-9,
		Precision: "float32", CheckpointPath: ckPath, CheckpointEvery: 1}
	var polls atomic.Int64
	interrupted.StopRequested = func() bool { return polls.Add(1) > int64(2*4) }
	ires, err := registerBounded(t, tmpl, ref, interrupted, 3*time.Minute, "interrupted float32")
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Interrupted || ires.CheckpointWriteError != "" {
		t.Fatalf("interrupt did not flush a checkpoint: %+v", ires)
	}

	st, err := ckpt.Load(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Precision != "float32" {
		t.Fatalf("checkpoint recorded precision %q, want float32", st.Precision)
	}

	cross := diffreg.Config{Tasks: 4, MaxNewtonIters: 6, GradTol: 1e-9,
		CheckpointPath: ckPath, Resume: true} // defaults to float64
	var mismatch *ckpt.PrecisionMismatchError
	if _, err := diffreg.Register(tmpl, ref, cross); !errors.As(err, &mismatch) {
		t.Fatalf("cross-precision resume: got %v, want *ckpt.PrecisionMismatchError", err)
	}
	if mismatch.Written != "float32" || mismatch.Requested != "float64" {
		t.Errorf("mismatch error fields: written %q requested %q", mismatch.Written, mismatch.Requested)
	}

	matched := cross
	matched.Precision = "float32"
	rres, err := registerBounded(t, tmpl, ref, matched, 3*time.Minute, "resumed float32")
	if err != nil {
		t.Fatalf("same-precision resume: %v", err)
	}
	if rres.NewtonIters <= ires.NewtonIters {
		t.Errorf("resumed run did not advance past the interrupt: %d <= %d iters",
			rres.NewtonIters, ires.NewtonIters)
	}
}
