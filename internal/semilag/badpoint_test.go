package semilag

// Regression tests for corrupted-velocity handling. Before this layer,
// NewPlan looped forever on a -Inf coordinate (the repeated-subtraction
// wrap never terminated), and a NaN coordinate flowed through SplitIndex
// into an out-of-range slice index deep in evalPadded. Both must now
// surface as a typed *BadPointError through mpi.Run, on every rank count.

import (
	"errors"
	"math"
	"testing"
	"time"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// runPlanCase builds a plan whose q-th coordinate is poisoned and returns
// mpi.Run's error, bounding the wall clock so a hang fails the test.
func runPlanCase(t *testing.T, p int, poison float64) error {
	t.Helper()
	g, err := grid.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			var pts [3][]float64
			n := pe.LocalTotal()
			for d := 0; d < 3; d++ {
				pts[d] = make([]float64, n)
				for i := range pts[d] {
					pts[d][i] = float64(i % 8)
				}
			}
			if c.Rank() == 0 {
				pts[1][n/2] = poison
			}
			pl := NewPlan(pe, pts)
			f := make([]float64, pe.LocalTotal())
			pl.Interp(f)
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("p=%d poison=%v: NewPlan hung", p, poison)
		return nil
	}
}

func TestCorruptedPointTypedError(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
			err := runPlanCase(t, p, poison)
			var bad *BadPointError
			if !errors.As(err, &bad) {
				t.Fatalf("p=%d poison=%v: want BadPointError, got %v", p, poison, err)
			}
			if bad.Rank != 0 {
				t.Errorf("p=%d poison=%v: reported rank %d, want 0", p, poison, bad.Rank)
			}
		}
	}
}

// TestHugeFiniteCoordWraps pins the O(1) wrap: a coordinate like 1e12 is
// far outside the domain but finite, so it wraps periodically (and
// instantly — the old loop would have iterated ~1e11 times).
func TestHugeFiniteCoordWraps(t *testing.T) {
	for _, p := range []int{1, 4} {
		if err := runPlanCase(t, p, 1e12); err != nil {
			t.Fatalf("p=%d: huge finite coordinate should wrap, got %v", p, err)
		}
	}
}

// TestWrapCoordEdgeCases covers the scalar wrap directly.
func TestWrapCoordEdgeCases(t *testing.T) {
	n := 16
	cases := []struct{ in, want float64 }{
		{0, 0}, {15.5, 15.5}, {16, 0}, {-0.25, 15.75}, {-16, 0},
		{33, 1}, {-33, 15}, {1e12, math.Mod(1e12, 16)},
	}
	for _, tc := range cases {
		if got := wrapCoord(tc.in, n); got != tc.want {
			t.Errorf("wrapCoord(%v, %d) = %v, want %v", tc.in, n, got, tc.want)
		}
	}
	// A tiny negative must not wrap to n itself.
	if got := wrapCoord(-1e-18, n); !(got >= 0 && got < float64(n)) {
		t.Errorf("wrapCoord(-1e-18) = %v, outside [0, %d)", got, n)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := wrapCoord(bad, n); got >= 0 && got < float64(n) {
			t.Errorf("wrapCoord(%v) = %v, should stay non-finite", bad, got)
		}
	}
}

// TestDepartureWithNaNVelocity drives the full Departure path with a NaN
// velocity component — the realistic corruption footprint.
func TestDepartureWithNaNVelocity(t *testing.T) {
	g, err := grid.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		done := make(chan error, 1)
		go func() {
			_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				v := field.NewVector(pe)
				if c.Rank() == p-1 {
					v.C[2].Data[0] = math.NaN()
				}
				DeparturePlan(pe, v, 0.1)
				return nil
			})
			done <- err
		}()
		select {
		case err := <-done:
			var bad *BadPointError
			if !errors.As(err, &bad) {
				t.Fatalf("p=%d: want BadPointError from NaN velocity, got %v", p, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("p=%d: Departure hung on NaN velocity", p)
		}
	}
}
