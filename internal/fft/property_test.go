package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dot is the complex inner product <a, b> = sum a[i] * conj(b[i]).
func dot(a, b []complex128) complex128 {
	var s complex128
	for i := range a {
		s += a[i] * cmplx.Conj(b[i])
	}
	return s
}

// TestAdjointProperty checks <Fx, y> == <x, F*y> where the adjoint of the
// unnormalized forward transform is F* = n * Inverse (the inverse is
// (1/n) F^H). Exercised on power-of-two, mixed-radix, and prime (Bluestein)
// lengths.
func TestAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{8, 12, 17, 30, 64, 101, 300} {
		p := NewPlan(n)
		for trial := 0; trial < 5; trial++ {
			x := randComplex(n, rng)
			y := randComplex(n, rng)
			fx := make([]complex128, n)
			fsy := make([]complex128, n)
			p.Forward(x, fx)
			p.Inverse(y, fsy)
			for i := range fsy {
				fsy[i] *= complex(float64(n), 0)
			}
			lhs := dot(fx, y)
			rhs := dot(x, fsy)
			if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(lhs)) {
				t.Errorf("n=%d trial %d: <Fx,y>=%v but <x,F*y>=%v", n, trial, lhs, rhs)
			}
		}
	}
}

// TestAdjointQuick is the same adjoint identity as a testing/quick property
// over random lengths, so the radix-2, mixed-radix, and Bluestein code
// paths are all sampled.
func TestAdjointQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%126
		r := rand.New(rand.NewSource(seed))
		x := randComplex(n, r)
		y := randComplex(n, r)
		p := NewPlan(n)
		fx := make([]complex128, n)
		fsy := make([]complex128, n)
		p.Forward(x, fx)
		p.Inverse(y, fsy)
		for i := range fsy {
			fsy[i] *= complex(float64(n), 0)
		}
		lhs := dot(fx, y)
		rhs := dot(x, fsy)
		return cmplx.Abs(lhs-rhs) <= 1e-8*(1+cmplx.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestParsevalBluestein pins Parseval's identity at explicitly
// non-power-of-two lengths (prime 17 and 31 force the Bluestein path;
// 12 and 30 the mixed-radix path), complementing the randomized
// TestParsevalProperty.
func TestParsevalBluestein(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{12, 17, 30, 31} {
		x := randComplex(n, rng)
		p := NewPlan(n)
		X := make([]complex128, n)
		p.Forward(x, X)
		var e1, e2 float64
		for i := 0; i < n; i++ {
			e1 += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			e2 += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		e2 /= float64(n)
		if math.Abs(e1-e2) > 1e-9*(1+e1) {
			t.Errorf("n=%d: energy %g in time domain, %g/n in frequency domain", n, e1, e2)
		}
	}
}

// TestRealAdjointProperty checks the r2c/c2r pair: for real x and
// Hermitian-symmetric spectra, <ForwardReal(x), Y>_half-weighted equals
// <x, n*InverseReal(Y)>. Both Fx and Y are Hermitian, so the full-spectrum
// terms at k and n-k are complex conjugates of each other; the full inner
// product therefore equals the sum over the half spectrum of the REAL part
// of each term, double-weighted on the interior bins (the imaginary parts
// cancel only across the conjugate pair, not within the half).
func TestRealAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 12, 17, 30} {
		p := NewPlan(n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		h := HalfLen(n)
		Y := make([]complex128, h)
		for i := range Y {
			Y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		Y[0] = complex(real(Y[0]), 0)
		if n%2 == 0 {
			Y[h-1] = complex(real(Y[h-1]), 0)
		}
		fx := make([]complex128, h)
		p.ForwardReal(x, fx)
		var lhs float64
		for k := 0; k < h; k++ {
			w := 2.0
			if k == 0 || (n%2 == 0 && k == h-1) {
				w = 1.0
			}
			lhs += w * real(fx[k]*cmplx.Conj(Y[k]))
		}
		fsY := make([]float64, n)
		p.InverseReal(Y, fsY)
		var rhs float64
		for i := range x {
			rhs += x[i] * float64(n) * fsY[i]
		}
		if math.Abs(lhs-rhs) > 1e-8*(1+math.Abs(rhs)) {
			t.Errorf("n=%d: half-spectrum <Fx,Y>=%g but <x,F*Y>=%g", n, lhs, rhs)
		}
	}
}
