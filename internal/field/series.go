package field

import (
	"math"

	"diffreg/internal/grid"
)

// Series is a time-varying velocity parameterization: one stationary
// coefficient field per time interval (piecewise-constant-in-time
// velocity, the extension the paper describes for registering image time
// series, §V). A Series of length 1 is equivalent to a stationary field.
// Series satisfies the optimizer's Vec interface, so the identical
// Newton-Krylov machinery drives the time-varying problem.
type Series []*Vector

// NewSeries allocates nc zero coefficient fields on the pencil.
func NewSeries(p *grid.Pencil, nc int) Series {
	out := make(Series, nc)
	for i := range out {
		out[i] = NewVector(p)
	}
	return out
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[i] = v.Clone()
	}
	return out
}

// Axpy computes s += a*x componentwise over intervals.
func (s Series) Axpy(a float64, x Series) {
	if len(s) != len(x) {
		panic("field: series length mismatch")
	}
	for i := range s {
		s[i].Axpy(a, x[i])
	}
}

// Scale multiplies every coefficient field by a.
func (s Series) Scale(a float64) {
	for i := range s {
		s[i].Scale(a)
	}
}

// Dot returns the time-averaged inner product: the L2(Omega x [0,1]) inner
// product of the piecewise-constant velocities, i.e. the mean over
// intervals of the spatial inner products.
func (s Series) Dot(x Series) float64 {
	if len(s) != len(x) {
		panic("field: series length mismatch")
	}
	sum := 0.0
	for i := range s {
		sum += s[i].Dot(x[i])
	}
	return sum / float64(len(s))
}

// NormL2 returns the L2(Omega x [0,1]) norm.
func (s Series) NormL2() float64 { return math.Sqrt(s.Dot(s)) }

// MaxAbs returns the global max-norm over all intervals and components.
func (s Series) MaxAbs() float64 {
	m := 0.0
	for _, v := range s {
		if a := v.MaxAbs(); a > m {
			m = a
		}
	}
	return m
}
