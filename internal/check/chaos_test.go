package check

// Chaos acceptance suite: a seeded sweep of injected communication faults
// over the full registration solve, plus the checkpoint/restart
// bit-identity gate. The contract under test (see DESIGN.md §7):
//
//   - every chaos run either completes with a final misfit within 1% of
//     the fault-free run, or returns a structured *mpi.CommError — never a
//     hang, never a panic, never a silently divergent (non-finite) result;
//   - a solve resumed from a checkpoint written at an interrupt reproduces
//     the uninterrupted trajectory bit for bit.

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"diffreg"
	"diffreg/internal/mpi"
)

const chaosN = 16

func chaosProblem(t *testing.T) (diffreg.Volume, diffreg.Volume) {
	t.Helper()
	tmpl, ref, err := diffreg.SyntheticProblem(chaosN, chaosN, chaosN, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	return tmpl, ref
}

func chaosConfig(p int) diffreg.Config {
	return diffreg.Config{Tasks: p, MaxNewtonIters: 2, GradTol: 1e-9}
}

// registerBounded runs a registration with a wall-clock bound — the
// in-test hang detector demanded by the fault-tolerance contract.
func registerBounded(t *testing.T, tmpl, ref diffreg.Volume, cfg diffreg.Config, bound time.Duration, label string) (*diffreg.Result, error) {
	t.Helper()
	type outcome struct {
		res *diffreg.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := diffreg.Register(tmpl, ref, cfg)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(bound):
		t.Fatalf("%s: solve hung (no result within %v)", label, bound)
		return nil, nil
	}
}

// TestChaosSweep drives the solver through a seeded sweep of fault sites
// covering the fft-comm and interp-comm phases, point-to-point sends and
// collectives, at 1 and 4 ranks. Tolerated faults (delays, duplicates,
// sites that never fire) must leave the result within 1% of the fault-free
// misfit; detected corruption and losses must surface as *mpi.CommError.
func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is long; run without -short (dedicated CI job)")
	}
	tmpl, ref := chaosProblem(t)

	baseline := map[int]float64{}
	for _, p := range []int{1, 4} {
		res, err := registerBounded(t, tmpl, ref, chaosConfig(p), 2*time.Minute, fmt.Sprintf("baseline p=%d", p))
		if err != nil {
			t.Fatalf("fault-free baseline p=%d: %v", p, err)
		}
		baseline[p] = res.MisfitFinal
	}

	type site struct {
		p    int
		site string
	}
	var sites []site
	// p=1: no point-to-point traffic exists, so every fault must be
	// tolerated and the solve must complete (size-1 degenerate coverage).
	for i, kind := range []string{"delay", "drop", "dup", "bitflip", "truncate"} {
		sites = append(sites,
			site{1, fmt.Sprintf("0:fft-comm:coll:%d:%s", i, kind)},
			site{1, fmt.Sprintf("0:interp-comm:send:%d:%s", i+1, kind)},
		)
	}
	// p=4 point-to-point sends in both communication phases.
	for i, kind := range []string{"delay", "dup", "bitflip", "truncate", "drop"} {
		sites = append(sites,
			site{4, fmt.Sprintf("%d:fft-comm:send:%d:%s", i%4, 2*i, kind)},
			site{4, fmt.Sprintf("%d:interp-comm:send:%d:%s", (i+1)%4, i, kind)},
		)
	}
	// p=4 collectives: stalls plus payload faults deferred to the first
	// outgoing send of the collective.
	for i, kind := range []string{"stall", "bitflip", "truncate", "drop", "delay", "dup"} {
		sites = append(sites,
			site{4, fmt.Sprintf("%d:fft-comm:coll:%d:%s", (i+2)%4, i, kind)},
			site{4, fmt.Sprintf("%d:interp-comm:coll:%d:%s", (3*i)%4, i+1, kind)},
		)
	}
	if len(sites) < 30 {
		t.Fatalf("sweep too small: %d sites", len(sites))
	}

	completed, detected := 0, 0
	for i, s := range sites {
		label := fmt.Sprintf("p=%d site=%s", s.p, s.site)
		cfg := chaosConfig(s.p)
		cfg.ChaosSpec = fmt.Sprintf("seed=%d;site=%s", 1000+i, s.site)
		res, err := registerBounded(t, tmpl, ref, cfg, 2*time.Minute, label)
		if err != nil {
			var comm *mpi.CommError
			if !errors.As(err, &comm) {
				t.Errorf("%s: error is not a structured CommError: %v", label, err)
				continue
			}
			detected++
			t.Logf("%s: detected: %v", label, comm)
			continue
		}
		if !finiteVal(res.MisfitFinal) {
			t.Errorf("%s: silent divergence: final misfit %v with no error", label, res.MisfitFinal)
			continue
		}
		base := baseline[s.p]
		if rel := math.Abs(res.MisfitFinal-base) / base; rel > 0.01 {
			t.Errorf("%s: final misfit %g deviates %.2f%% from fault-free %g", label, res.MisfitFinal, 100*rel, base)
			continue
		}
		completed++
	}
	t.Logf("chaos sweep: %d sites, %d completed within tolerance, %d detected as CommError", len(sites), completed, detected)
	if detected == 0 {
		t.Error("no fault was ever detected — injection or validation is not wired")
	}
	if completed == 0 {
		t.Error("no run completed — tolerated faults are breaking the solver")
	}
}

func finiteVal(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// TestCheckpointResumeBitIdentical is the restart gate: interrupt a solve
// mid-run (flushing a checkpoint), resume it, and require the final
// velocity and misfit to be bit-identical to the uninterrupted run — at
// both 1 and 4 ranks.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("checkpoint gate is long; run without -short (dedicated CI job)")
	}
	tmpl, ref := chaosProblem(t)
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			base := diffreg.Config{Tasks: p, MaxNewtonIters: 6, GradTol: 1e-9}

			full, err := registerBounded(t, tmpl, ref, base, 3*time.Minute, "uninterrupted")
			if err != nil {
				t.Fatal(err)
			}
			if full.NewtonIters < 4 {
				t.Fatalf("reference run too short (%d iters) to exercise resume", full.NewtonIters)
			}

			ckPath := filepath.Join(t.TempDir(), "reg.ckpt")
			interrupted := base
			interrupted.CheckpointPath = ckPath
			interrupted.CheckpointEvery = 2
			// Cooperative interrupt at the start of iteration 3: the stop
			// wrapper polls once per rank per iteration, synchronized by the
			// collective resolution, so the counter threshold is exact.
			var polls atomic.Int64
			interrupted.StopRequested = func() bool { return polls.Add(1) > int64(3*p) }
			ires, err := registerBounded(t, tmpl, ref, interrupted, 3*time.Minute, "interrupted")
			if err != nil {
				t.Fatal(err)
			}
			if !ires.Interrupted {
				t.Fatalf("stop request did not interrupt the solve: %+v", ires)
			}
			if ires.NewtonIters != 3 {
				t.Fatalf("interrupt landed at iteration %d, want 3", ires.NewtonIters)
			}
			if ires.CheckpointWriteError != "" {
				t.Fatalf("checkpoint write failed: %s", ires.CheckpointWriteError)
			}

			resumed := base
			resumed.CheckpointPath = ckPath
			resumed.Resume = true
			rres, err := registerBounded(t, tmpl, ref, resumed, 3*time.Minute, "resumed")
			if err != nil {
				t.Fatal(err)
			}

			if rres.NewtonIters != full.NewtonIters {
				t.Fatalf("resumed run took %d iterations, uninterrupted %d", rres.NewtonIters, full.NewtonIters)
			}
			if rres.MisfitFinal != full.MisfitFinal || rres.GnormFinal != full.GnormFinal {
				t.Errorf("scalars not bit-identical: misfit %v vs %v, ||g|| %v vs %v",
					rres.MisfitFinal, full.MisfitFinal, rres.GnormFinal, full.GnormFinal)
			}
			for d := 0; d < 3; d++ {
				if len(rres.Velocity[d].Data) != len(full.Velocity[d].Data) {
					t.Fatalf("component %d length mismatch", d)
				}
				for i := range full.Velocity[d].Data {
					if rres.Velocity[d].Data[i] != full.Velocity[d].Data[i] {
						t.Fatalf("component %d value %d: %v vs %v — resume is not bit-identical",
							d, i, rres.Velocity[d].Data[i], full.Velocity[d].Data[i])
					}
				}
			}
			if len(rres.History) != len(full.History) {
				t.Errorf("history length %d vs %d", len(rres.History), len(full.History))
			}
		})
	}
}
