// Package optim provides the numerical optimization layer of the paper:
// a matrix-free preconditioned conjugate gradient solver for the Newton
// step, an Armijo line-search globalized inexact (Gauss-)Newton-Krylov
// driver with Eisenstat-Walker quadratic forcing, a first-order
// (preconditioned steepest descent) baseline, and parameter continuation
// in the regularization weight beta. It plays the role PETSc/TAO plays in
// the paper's implementation. The drivers are generic over the vector
// type, so the same code optimizes stationary velocities (*field.Vector)
// and time-varying velocity series (field.Series).
package optim

// CGResult reports how a PCG solve went.
type CGResult struct {
	Iters     int
	RelRes    float64
	Converged bool
	// Indefinite is set when a direction of non-positive curvature was
	// encountered; the current iterate is returned (truncated CG).
	Indefinite bool
}

// PCG solves A x = b with preconditioned conjugate gradients, starting
// from x = 0. matvec must be symmetric positive definite on the relevant
// subspace and prec an SPD approximation of its inverse. The solve stops
// when the residual norm drops below rtol times the initial residual norm
// (inexact Newton: rtol is the forcing term) or after maxIter iterations.
func PCG[T Vec[T]](matvec, prec func(T) T, b T, rtol float64, maxIter int) (T, CGResult) {
	x := b.Clone()
	x.Scale(0)
	r := b.Clone() // r = b - A*0
	res := CGResult{}
	bnorm := r.NormL2()
	if bnorm == 0 {
		res.Converged = true
		return x, res
	}
	z := prec(r)
	p := z.Clone()
	rz := r.Dot(z)
	for res.Iters = 0; res.Iters < maxIter; res.Iters++ {
		ap := matvec(p)
		pap := p.Dot(ap)
		if pap <= 0 {
			res.Indefinite = true
			break
		}
		alpha := rz / pap
		x.Axpy(alpha, p)
		r.Axpy(-alpha, ap)
		rn := r.NormL2()
		res.RelRes = rn / bnorm
		if res.RelRes <= rtol {
			res.Iters++
			res.Converged = true
			break
		}
		z = prec(r)
		rzNew := r.Dot(z)
		beta := rzNew / rz
		rz = rzNew
		// p = z + beta*p
		pNew := z.Clone()
		pNew.Axpy(beta, p)
		p = pNew
	}
	return x, res
}
