// Package paperbench regenerates every table and figure of the paper's
// evaluation section (§IV). Measured quantities come from real solves of
// this implementation at container-feasible resolutions (goroutine ranks;
// per-rank execution times and message-level communication volumes are
// exact). Cluster-scale rows are produced by the calibrated performance
// model of package perfmodel, as documented in DESIGN.md: the paper's own
// complexity analysis with machine constants fitted to one row per table,
// judged on the shape of the remaining rows.
package paperbench

import (
	"fmt"
	"strings"

	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/perfmodel"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
)

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Text  string
}

// Problem selects the image pair of a measurement run.
type Problem int

const (
	SyntheticProblem Problem = iota
	SyntheticIncompressible
	BrainProblem
)

// RunMeasurement performs a real solve and returns the outcome, collecting
// only this solve's phase times and operation counts.
func RunMeasurement(n [3]int, p int, prob Problem, cfg core.Config) (*core.Outcome, error) {
	g, err := grid.New(n[0], n[1], n[2])
	if err != nil {
		return nil, err
	}
	var out *core.Outcome
	_, err = mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		var rhoT, rhoR *field.Scalar
		switch prob {
		case SyntheticProblem:
			rhoT = imaging.SyntheticTemplate(pe)
			rhoR = imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), cfg.Opt.Nt, false)
		case SyntheticIncompressible:
			rhoT = imaging.SyntheticTemplate(pe)
			rhoR = imaging.MakeReference(ops, rhoT, imaging.SolenoidalVelocity(pe), cfg.Opt.Nt, true)
		case BrainProblem:
			rhoT = imaging.BrainPhantom(pe, 1)
			rhoR = imaging.BrainPhantom(pe, 2)
			imaging.PrepareImages(ops, rhoT, rhoR)
		}
		o, err := core.Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			out = o
		} else {
			_ = o
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// scalingConfig is the paper's scalability setup: fixed beta = 1e-2,
// nt = 4, gtol = 1e-2, Gauss-Newton, no map reconstruction in the timings.
func scalingConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SkipMap = true
	return cfg
}

// measureWorkload runs the reference solve at a small grid to obtain the
// algorithmic work counts, which are mesh-independent for fixed beta
// (§III-C4: "for fixed beta the number of Newton iterations are
// independent of the mesh size").
func measureWorkload(prob Problem, cfg core.Config, n [3]int) (perfmodel.Workload, *core.Outcome, error) {
	out, err := RunMeasurement(n, 1, prob, cfg)
	if err != nil {
		return perfmodel.Workload{}, nil, err
	}
	w := perfmodel.Workload{
		Nt:           cfg.Opt.Nt,
		FFTs:         out.Counts.FFTs,
		InterpSweeps: out.Counts.InterpSweeps,
	}
	return w, out, nil
}

// paperRow is one published table row for side-by-side comparison.
type paperRow struct {
	id    string
	n     [3]int
	nodes int
	tasks int
	total float64
	fftCo float64
	fftEx float64
	intCo float64
	intEx float64
}

func fmtSec(x float64) string {
	switch {
	case x == 0:
		return "     0"
	case x >= 100:
		return fmt.Sprintf("%6.0f", x)
	case x >= 10:
		return fmt.Sprintf("%6.1f", x)
	default:
		return fmt.Sprintf("%6.2f", x)
	}
}

func rowHeader(b *strings.Builder) {
	fmt.Fprintf(b, "%-5s %-14s %6s | %22s | %22s | %22s | %22s | %22s\n",
		"run", "N", "tasks", "time-to-solution", "fft comm", "fft exec", "interp comm", "interp exec")
	fmt.Fprintf(b, "%-5s %-14s %6s | %10s %11s | %10s %11s | %10s %11s | %10s %11s | %10s %11s\n",
		"", "", "", "paper", "model", "paper", "model", "paper", "model", "paper", "model", "paper", "model")
}

func compareRow(b *strings.Builder, r paperRow, m perfmodel.Breakdown) {
	dims := fmt.Sprintf("%dx%dx%d", r.n[0], r.n[1], r.n[2])
	fmt.Fprintf(b, "%-5s %-14s %6d | %10s %11s | %10s %11s | %10s %11s | %10s %11s | %10s %11s\n",
		r.id, dims, r.tasks,
		fmtSec(r.total), fmtSec(m.TimeToSolution),
		fmtSec(r.fftCo), fmtSec(m.FFTComm),
		fmtSec(r.fftEx), fmtSec(m.FFTExec),
		fmtSec(r.intCo), fmtSec(m.InterpComm),
		fmtSec(r.intEx), fmtSec(m.InterpExec))
}

func cube(n int) [3]int { return [3]int{n, n, n} }
