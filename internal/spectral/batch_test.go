package spectral

import (
	"math/rand"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/prec"
)

// randomVector fills a vector field deterministically.
func randomVector(o *Ops, seed int64) *field.Vector {
	rng := rand.New(rand.NewSource(seed))
	v := field.NewVector(o.Pe)
	for d := 0; d < 3; d++ {
		for i := range v.C[d].Data {
			v.C[d].Data[i] = rng.NormFloat64()
		}
	}
	return v
}

// TestInPlaceMatchesAllocating asserts the in-place vector operators are
// bitwise identical to their allocating counterparts at 1 and 4 ranks.
func TestInPlaceMatchesAllocating(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	for _, p := range []int{1, 4} {
		withOps(t, g, p, func(o *Ops) error {
			cases := []struct {
				name    string
				apply   func(v *field.Vector) *field.Vector
				inPlace func(v *field.Vector)
			}{
				{"Leray", o.Leray, o.LerayInPlace},
				{"GradDiv", o.GradDiv, o.GradDivInPlace},
				{"VecLap", o.VecLap, o.VecLapInPlace},
				{"Biharm", o.Biharm, o.BiharmInPlace},
				{"InvBiharm", o.InvBiharm, o.InvBiharmInPlace},
			}
			for ci, tc := range cases {
				v := randomVector(o, int64(100+ci))
				want := tc.apply(v.Clone())
				got := v.Clone()
				tc.inPlace(got)
				for d := 0; d < 3; d++ {
					for i := range want.C[d].Data {
						if got.C[d].Data[i] != want.C[d].Data[i] {
							t.Errorf("p=%d %s d=%d i=%d: in-place %v != allocating %v",
								p, tc.name, d, i, got.C[d].Data[i], want.C[d].Data[i])
							return nil
						}
					}
				}
			}
			return nil
		})
	}
}

// TestDiagVectorMatchesDiagScalar asserts the batched componentwise symbol
// application equals three independent scalar applications bitwise.
func TestDiagVectorMatchesDiagScalar(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	f := func(k1, k2, k3 int) float64 {
		return 1 / (1 + ksq(k1, k2, k3))
	}
	for _, p := range []int{1, 4} {
		withOps(t, g, p, func(o *Ops) error {
			v := randomVector(o, 7)
			got := o.DiagVector(v, f)
			for d := 0; d < 3; d++ {
				want := o.DiagScalar(v.C[d], f)
				for i := range want.Data {
					if got.C[d].Data[i] != want.Data[i] {
						t.Errorf("p=%d d=%d i=%d: batched %v != scalar %v",
							p, d, i, got.C[d].Data[i], want.Data[i])
						return nil
					}
				}
			}
			return nil
		})
	}
}

// TestGradDivIntoMatch asserts GradInto/DivInto equal Grad/Div bitwise.
func TestGradDivIntoMatch(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	for _, p := range []int{1, 4} {
		withOps(t, g, p, func(o *Ops) error {
			v := randomVector(o, 11)
			s := v.C[0].Clone()

			wantG := o.Grad(s)
			gotG := field.NewVector(o.Pe)
			o.GradInto(s, gotG)
			wantD := o.Div(v)
			gotD := field.NewScalar(o.Pe)
			o.DivInto(v, gotD)
			for d := 0; d < 3; d++ {
				for i := range wantG.C[d].Data {
					if gotG.C[d].Data[i] != wantG.C[d].Data[i] {
						t.Errorf("p=%d GradInto d=%d i=%d mismatch", p, d, i)
						return nil
					}
				}
			}
			for i := range wantD.Data {
				if gotD.Data[i] != wantD.Data[i] {
					t.Errorf("p=%d DivInto i=%d mismatch", p, i)
					return nil
				}
			}
			return nil
		})
	}
}

// TestLerayZeroAllocs gates the whole zero-allocation stack end to end: a
// steady-state Leray projection (batched forward, table kernel, batched
// inverse) must not allocate at one rank.
func TestLerayZeroAllocs(t *testing.T) {
	g := grid.MustNew(16, 12, 10)
	withOps(t, g, 1, func(o *Ops) error {
		v := randomVector(o, 3)
		o.LerayInPlace(v) // warm the plan and operator workspaces
		allocs := testing.AllocsPerRun(10, func() {
			o.LerayInPlace(v)
		})
		if allocs != 0 {
			t.Errorf("LerayInPlace allocates %v times per run, want 0", allocs)
		}
		return nil
	})
}

// TestDiagVectorBatchMatchesSolo asserts the job-fused diagonal pass —
// B jobs' vector fields riding one 3·B-component transform batch — is
// bitwise identical per job to B solo DiagVector calls, at 1 and 4
// ranks and in both wire precisions.
func TestDiagVectorBatchMatchesSolo(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	fs := []func(k1, k2, k3 int) float64{
		func(k1, k2, k3 int) float64 { return 1 / (1 + ksq(k1, k2, k3)) },
		func(k1, k2, k3 int) float64 { q := ksq(k1, k2, k3); return 1 / (0.5*q*q + 1e-3) },
		func(k1, k2, k3 int) float64 { return 0.25 },
	}
	for _, pr := range []prec.Precision{prec.F64, prec.F32} {
		for _, p := range []int{1, 4} {
			_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				o := New(pfft.NewPlanPrec(pe, pr))
				vs := make([]*field.Vector, len(fs))
				outs := make([]*field.Vector, len(fs))
				want := make([]*field.Vector, len(fs))
				for i := range fs {
					vs[i] = randomVector(o, int64(40+i))
					outs[i] = field.NewVector(o.Pe)
					want[i] = o.DiagVector(vs[i].Clone(), fs[i])
				}
				o.WarmBatch(len(fs))
				o.DiagVectorBatch(vs, outs, fs)
				for i := range fs {
					for d := 0; d < 3; d++ {
						for k := range want[i].C[d].Data {
							if outs[i].C[d].Data[k] != want[i].C[d].Data[k] {
								t.Errorf("prec=%v p=%d job=%d d=%d i=%d: fused %v != solo %v",
									pr, p, i, d, k, outs[i].C[d].Data[k], want[i].C[d].Data[k])
								return nil
							}
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
