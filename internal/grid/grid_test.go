package grid

import (
	"math"
	"testing"
	"testing/quick"

	"diffreg/internal/mpi"
)

func TestShare(t *testing.T) {
	for _, n := range []int{7, 8, 16, 300} {
		for _, p := range []int{1, 2, 3, 4, 7} {
			covered := 0
			prevHi := 0
			for i := 0; i < p; i++ {
				lo, hi := Share(n, p, i)
				if lo != prevHi {
					t.Fatalf("n=%d p=%d i=%d: gap lo=%d prevHi=%d", n, p, i, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d p=%d: covered %d", n, p, covered)
			}
		}
	}
}

func TestShareOwnerProperty(t *testing.T) {
	f := func(nRaw, pRaw, jRaw uint16) bool {
		n := 1 + int(nRaw)%1000
		p := 1 + int(pRaw)%16
		if p > n {
			p = n
		}
		j := int(jRaw) % n
		i := ShareOwner(n, p, j)
		lo, hi := Share(n, p, i)
		return lo <= j && j < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestProcGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4},
		12: {3, 4}, 16: {4, 4}, 64: {8, 8}, 1024: {32, 32}, 7: {1, 7},
	}
	for p, want := range cases {
		p1, p2 := ProcGrid(p)
		if p1 != want[0] || p2 != want[1] {
			t.Errorf("p=%d: got %dx%d want %dx%d", p, p1, p2, want[0], want[1])
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 8, 8); err == nil {
		t.Error("expected error for tiny dim")
	}
	g, err := New(8, 12, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 8*12*16 {
		t.Errorf("total %d", g.Total())
	}
	if math.Abs(g.Spacing(0)-2*math.Pi/8) > 1e-15 {
		t.Errorf("spacing %g", g.Spacing(0))
	}
	if math.Abs(g.CellVolume()-g.Spacing(0)*g.Spacing(1)*g.Spacing(2)) > 1e-18 {
		t.Error("cell volume")
	}
}

func TestPencilCoversGrid(t *testing.T) {
	g := MustNew(8, 12, 16)
	for _, p := range []int{1, 2, 4, 6} {
		p := p
		seen := make([][]int32, p) // per-rank owned flat global indices
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := NewPencil(g, c)
			if err != nil {
				return err
			}
			var mine []int32
			for j1 := pe.Lo[0]; j1 < pe.Hi[0]; j1++ {
				for j2 := pe.Lo[1]; j2 < pe.Hi[1]; j2++ {
					for j3 := pe.Lo[2]; j3 < pe.Hi[2]; j3++ {
						mine = append(mine, int32((j1*g.N[1]+j2)*g.N[2]+j3))
					}
				}
			}
			seen[c.Rank()] = mine
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		all := map[int32]bool{}
		for _, mine := range seen {
			for _, j := range mine {
				if all[j] {
					t.Fatalf("p=%d: duplicate ownership of %d", p, j)
				}
				all[j] = true
			}
		}
		if len(all) != g.Total() {
			t.Fatalf("p=%d: covered %d of %d", p, len(all), g.Total())
		}
	}
}

func TestPencilOwnerOf(t *testing.T) {
	g := MustNew(8, 12, 16)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := NewPencil(g, c)
		if err != nil {
			return err
		}
		// Every point this rank owns must map back to this rank.
		for j1 := pe.Lo[0]; j1 < pe.Hi[0]; j1++ {
			for j2 := pe.Lo[1]; j2 < pe.Hi[1]; j2++ {
				if own := pe.OwnerOf(j1, j2); own != c.Rank() {
					t.Errorf("rank %d: OwnerOf(%d,%d)=%d", c.Rank(), j1, j2, own)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPencilRowColComms(t *testing.T) {
	g := MustNew(8, 12, 16)
	_, err := mpi.Run(6, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := NewPencil(g, c)
		if err != nil {
			return err
		}
		if pe.Row.Size() != pe.P[1] || pe.Col.Size() != pe.P[0] {
			t.Errorf("row %d col %d want %d %d", pe.Row.Size(), pe.Col.Size(), pe.P[1], pe.P[0])
		}
		if pe.Row.Rank() != pe.Coord[1] || pe.Col.Rank() != pe.Coord[0] {
			t.Errorf("sub-ranks %d %d want %v", pe.Row.Rank(), pe.Col.Rank(), pe.Coord)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEachLocalOrder(t *testing.T) {
	g := MustNew(4, 6, 8)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := NewPencil(g, c)
		if err != nil {
			return err
		}
		next := 0
		pe.EachLocal(func(i1, i2, i3, idx int) {
			if idx != next {
				t.Fatalf("idx %d want %d", idx, next)
			}
			if pe.Index(i1, i2, i3) != idx {
				t.Fatalf("Index(%d,%d,%d)=%d want %d", i1, i2, i3, pe.Index(i1, i2, i3), idx)
			}
			next++
		})
		if next != pe.LocalTotal() {
			t.Fatalf("visited %d want %d", next, pe.LocalTotal())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPencilTooSmall(t *testing.T) {
	g := MustNew(4, 4, 8)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		if _, err := NewPencil(g, c); err == nil {
			t.Error("expected error: 4x4 over 2x2 leaves 2 planes per rank")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
