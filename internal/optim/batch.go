package optim

import (
	"errors"
	"sort"
)

// This file implements lock-stepped multi-job batching: B independent
// Newton–Krylov solves ("fibers") run as goroutines on one rank, and a
// deterministic rendezvous scheduler interleaves their objective
// callbacks so that (a) at most one fiber is executing solver code at
// any instant — the MPI layer's per-rank counters are unlocked and every
// split communicator shares them, so true concurrency would race — and
// (b) callbacks that admit cross-job fusion (the spectral preconditioner
// and the cooperative stop poll) are executed by the scheduler itself in
// one fused pass over all parked jobs.
//
// Protocol. Every gated callback parks its fiber: the request is posted
// to the scheduler and the fiber blocks. When every active fiber is
// parked the scheduler takes a round snapshot, sorted by job index,
// fuses what it can (stop flags via one masked vector allreduce, fusable
// preconditioner applications via one batched diagonal pass), and then
// releases the round's members one at a time, waiting for each fiber to
// re-park or finish before releasing the next. A released fiber executes
// its (non-fused) callback and all inter-callback vector work inside
// that exclusive window. Because each job's callback sequence is
// SPMD-uniform across ranks and rounds are processed in job order, the
// round composition — and therefore the fused collective schedule — is
// identical on every rank, so the scheduler's fused operations are
// themselves valid collectives.
//
// A converged or failed job simply finishes its fiber: the active set
// shrinks and subsequent rounds are formed over the survivors, without
// disturbing their callback sequences.

// BatchCallKind identifies one kind of gated objective callback.
type BatchCallKind int

const (
	CallEvaluate BatchCallKind = iota
	CallEvalGradient
	CallHessMatVec
	CallApplyPrec
	CallProject
	CallStop
	// CallExclusive is a gated critical section: arbitrary fiber code
	// (e.g. the post-solve map reconstruction, which runs collectives on
	// the job's own communicator) executed inside an exclusive window.
	CallExclusive
	// CallInterp is a fusable semi-Lagrangian gather exchange, posted
	// mid-callback by a transport solver's interpolation gate. Requests
	// parked in the same round with equal keys are executed by the fused
	// Interp hook in one batched exchange; singletons (desynchronized
	// line searches) fall back to the solo exchange in their release
	// window.
	CallInterp
)

// ErrBatchAborted is recorded for fibers that were unwound because the
// scheduler itself failed (e.g. a fused collective raised a
// communication error); the aborted fibers are casualties, not
// independent failures.
var ErrBatchAborted = errors.New("optim: batch aborted")

// errAbortPanic is the panic value used to unwind fibers parked on a
// dead scheduler.
type errAbortPanic struct{}

// FusedOps are the cross-job executors the scheduler may use on a round.
// Both are optional; a nil hook means the corresponding callback is
// executed solo by its fiber. Hooks run on the scheduler goroutine while
// every fiber is parked, so they may perform collectives on the rank's
// base communicator.
type FusedOps[T Vec[T]] struct {
	// ApplyPrec applies each job's preconditioner in one fused pass.
	// jobs[i] is the job index of rs[i]; the returned slice is parallel
	// to rs and every element must be a fresh vector. Only jobs gated
	// with precFusable=true are routed here.
	ApplyPrec func(jobs []int, rs []T) []T
	// Stop resolves the batch's cooperative-stop poll in one masked
	// vector reduction: flags has one slot per job in the batch (the
	// local stop flag of jobs parked at a Stop call this round, zero
	// elsewhere) and the result must carry the globally-reduced flags.
	Stop func(flags []float64) []float64
	// Interp executes a round's same-key interp requests in one fused
	// gather exchange: jobs[i] is the job index of payloads[i], and the
	// payloads (opaque to the scheduler — in practice *semilag.BatchCall)
	// are mutated in place to carry the results. Called only for groups
	// of two or more requests, in job order, identically on every rank.
	Interp func(jobs []int, payloads []any)
}

type batchReq[T Vec[T]] struct {
	job  int
	kind BatchCallKind

	// arg is the operand of a fusable ApplyPrec call.
	arg T
	// exec runs the solo path on the fiber after release.
	exec func()
	// ipay/ikey describe a fusable Interp request: the opaque payload
	// handed to the fused executor, and the fusion key (requests fuse
	// only within equal keys, so the fused exchange shape stays
	// SPMD-uniform).
	ipay any
	ikey string
	// fused marks requests the scheduler satisfied itself; out/stopRes
	// carry the result.
	fused   bool
	out     T
	flag    float64
	stopRes bool

	release chan struct{}
}

type fiberEvent[T Vec[T]] struct {
	job      int
	req      *batchReq[T] // non-nil: fiber parked on this request
	done     bool         // fiber finished
	panicVal any          // recovered fiber panic, re-raised by Run
}

// Batch coordinates n lock-stepped solver fibers on one rank.
type Batch[T Vec[T]] struct {
	n       int
	fused   FusedOps[T]
	fusable []bool
	events  chan fiberEvent[T]
	abort   chan struct{}

	dropouts int
	rounds   int
}

// NewBatch builds a scheduler for n jobs with the given fused executors.
func NewBatch[T Vec[T]](n int, fused FusedOps[T]) *Batch[T] {
	return &Batch[T]{
		n:       n,
		fused:   fused,
		fusable: make([]bool, n),
		// Buffered so a fiber's final done event can never block even if
		// the scheduler has already panicked out of its loop.
		events: make(chan fiberEvent[T], 2*n+1),
		abort:  make(chan struct{}),
	}
}

// Gate wraps a job's objective so every callback is scheduled through
// the batch. precFusable routes this job's ApplyPrec through the fused
// executor (set it only when the preconditioner is the pure spectral
// diagonal — a two-level preconditioner must run solo).
func (b *Batch[T]) Gate(job int, inner Objective[T], precFusable bool) Objective[T] {
	b.fusable[job] = precFusable
	return &gated[T]{b: b, job: job, inner: inner}
}

// GateStop wraps a job's local stop predicate into a batch-wide gated
// poll. With a fused Stop hook the flags of all jobs polling this round
// are reduced in one masked vector collective; without one the local
// flag is the verdict.
func (b *Batch[T]) GateStop(job int, local func() bool) func() bool {
	return func() bool {
		req := &batchReq[T]{job: job, kind: CallStop}
		if local != nil && local() {
			req.flag = 1
		}
		b.park(req)
		if req.fused {
			return req.stopRes
		}
		return req.flag > 0
	}
}

// Interp parks a fusable gather request for job: payload describes the
// exchange (opaque to the scheduler) and key is its SPMD-uniform fusion
// key. It reports whether the fused executor satisfied the request; on
// false the caller must run its solo exchange inside the release window
// it now owns. Unlike the Objective gates this is invoked mid-callback —
// the release-one-at-a-time protocol makes a re-park inside a callback
// just another rendezvous participant.
func (b *Batch[T]) Interp(job int, key string, payload any) bool {
	req := &batchReq[T]{job: job, kind: CallInterp, ipay: payload, ikey: key}
	b.park(req)
	return req.fused
}

// Exclusive runs fn on job's fiber inside an exclusive window: no other
// fiber (and not the scheduler) touches the rank's communicators while
// fn executes. Use it for gated epilogues such as map reconstruction.
func (b *Batch[T]) Exclusive(job int, fn func()) {
	req := &batchReq[T]{job: job, kind: CallExclusive, exec: fn}
	b.park(req)
	req.exec()
}

// Dropouts reports how many jobs finished while at least one other job
// was still active — the batch-shrink events of this run.
func (b *Batch[T]) Dropouts() int { return b.dropouts }

// Rounds reports how many rendezvous rounds the scheduler executed.
func (b *Batch[T]) Rounds() int { return b.rounds }

// park posts req and blocks the calling fiber until the scheduler
// releases it (or unwinds it if the scheduler died).
func (b *Batch[T]) park(req *batchReq[T]) {
	req.release = make(chan struct{})
	b.events <- fiberEvent[T]{job: req.job, req: req}
	select {
	case <-req.release:
	case <-b.abort:
		panic(errAbortPanic{})
	}
}

// Run launches one goroutine per fiber and drives the rendezvous
// scheduler until every fiber has finished. It returns the per-job
// errors reported by the fiber bodies (ErrBatchAborted for fibers
// unwound by a scheduler failure). If a fiber panicked — e.g. the MPI
// layer aborted the world mid-collective — the first captured panic (by
// job index) is re-raised on the calling goroutine after all fibers have
// drained, so rank-failure propagation behaves as in the solo path.
//
// The fiber prologue (everything before its first gated call) runs
// concurrently across fibers and therefore must be communication-free;
// in practice the first solver operation is a gated Project.
func (b *Batch[T]) Run(fibers []func() error) []error {
	if len(fibers) != b.n {
		panic("optim: fiber count does not match batch width")
	}
	errs := make([]error, b.n)
	panics := make([]any, b.n)
	for j := range fibers {
		j := j
		fn := fibers[j]
		go func() {
			defer func() {
				ev := fiberEvent[T]{job: j, done: true}
				if pv := recover(); pv != nil {
					if _, aborted := pv.(errAbortPanic); aborted {
						errs[j] = ErrBatchAborted
					} else {
						ev.panicVal = pv
					}
				}
				b.events <- ev
			}()
			errs[j] = fn()
		}()
	}

	// If we panic out of the loop below (a fused collective failed),
	// wake every parked fiber so their goroutines drain instead of
	// leaking; the buffered events channel absorbs their done events.
	defer close(b.abort)

	active, running := b.n, b.n
	parked := make(map[int]*batchReq[T], b.n)
	handle := func(ev fiberEvent[T]) {
		running--
		if ev.done {
			active--
			if ev.panicVal != nil {
				panics[ev.job] = ev.panicVal
			}
			if active > 0 {
				b.dropouts++
			}
			return
		}
		parked[ev.job] = ev.req
	}

	for active > 0 {
		for running > 0 {
			handle(<-b.events)
		}
		if active == 0 {
			break
		}
		b.rounds++
		round := make([]*batchReq[T], 0, len(parked))
		for _, r := range parked {
			round = append(round, r)
		}
		sort.Slice(round, func(i, k int) bool { return round[i].job < round[k].job })

		// Fused stop: one masked vector reduction for every job polling
		// this round.
		if b.fused.Stop != nil {
			var stops []*batchReq[T]
			for _, r := range round {
				if r.kind == CallStop {
					stops = append(stops, r)
				}
			}
			if len(stops) > 0 {
				flags := make([]float64, b.n)
				for _, r := range stops {
					flags[r.job] = r.flag
				}
				out := b.fused.Stop(flags)
				for _, r := range stops {
					r.fused = true
					r.stopRes = out[r.job] > 0
				}
			}
		}

		// Fused preconditioner: one batched diagonal pass over every
		// fusable ApplyPrec parked this round.
		if b.fused.ApplyPrec != nil {
			var precs []*batchReq[T]
			for _, r := range round {
				if r.kind == CallApplyPrec && b.fusable[r.job] {
					precs = append(precs, r)
				}
			}
			if len(precs) > 0 {
				jobs := make([]int, len(precs))
				rs := make([]T, len(precs))
				for i, r := range precs {
					jobs[i] = r.job
					rs[i] = r.arg
				}
				outs := b.fused.ApplyPrec(jobs, rs)
				for i, r := range precs {
					r.fused = true
					r.out = outs[i]
				}
			}
		}

		// Fused interpolation: group this round's interp requests by
		// fusion key (first-seen order over the job-sorted round, so the
		// grouping is identical on every rank) and run each group of two
		// or more through one batched gather exchange. Singletons stay
		// unfused and run their solo exchange after release.
		if b.fused.Interp != nil {
			var keys []string
			groups := make(map[string][]*batchReq[T])
			for _, r := range round {
				if r.kind != CallInterp {
					continue
				}
				if _, seen := groups[r.ikey]; !seen {
					keys = append(keys, r.ikey)
				}
				groups[r.ikey] = append(groups[r.ikey], r)
			}
			for _, key := range keys {
				g := groups[key]
				if len(g) < 2 {
					continue
				}
				jobs := make([]int, len(g))
				pays := make([]any, len(g))
				for i, r := range g {
					jobs[i] = r.job
					pays[i] = r.ipay
				}
				b.fused.Interp(jobs, pays)
				for _, r := range g {
					r.fused = true
				}
			}
		}

		// Release one at a time: the released fiber owns the rank's
		// communicators until it re-parks or finishes.
		for _, r := range round {
			delete(parked, r.job)
			running++
			close(r.release)
			handle(<-b.events)
		}
	}

	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
	return errs
}

// gated adapts one job's Objective so every callback parks its fiber.
type gated[T Vec[T]] struct {
	b     *Batch[T]
	job   int
	inner Objective[T]
}

func (g *gated[T]) Evaluate(v T) ObjVals {
	var out ObjVals
	req := &batchReq[T]{job: g.job, kind: CallEvaluate}
	req.exec = func() { out = g.inner.Evaluate(v) }
	g.b.park(req)
	req.exec()
	return out
}

func (g *gated[T]) EvalGradient(v T) GradVals[T] {
	var out GradVals[T]
	req := &batchReq[T]{job: g.job, kind: CallEvalGradient}
	req.exec = func() { out = g.inner.EvalGradient(v) }
	g.b.park(req)
	req.exec()
	return out
}

func (g *gated[T]) HessMatVec(w T) T {
	var out T
	req := &batchReq[T]{job: g.job, kind: CallHessMatVec}
	req.exec = func() { out = g.inner.HessMatVec(w) }
	g.b.park(req)
	req.exec()
	return out
}

func (g *gated[T]) ApplyPrec(r T) T {
	var out T
	req := &batchReq[T]{job: g.job, kind: CallApplyPrec, arg: r}
	req.exec = func() { out = g.inner.ApplyPrec(r) }
	g.b.park(req)
	if req.fused {
		return req.out
	}
	req.exec()
	return out
}

func (g *gated[T]) Project(v T) T {
	var out T
	req := &batchReq[T]{job: g.job, kind: CallProject}
	req.exec = func() { out = g.inner.Project(v) }
	g.b.park(req)
	req.exec()
	return out
}
