package imaging

import (
	"math"
	"math/cmplx"

	"diffreg/internal/fft"
	"diffreg/internal/grid"
	"diffreg/internal/interp"
)

// RigidResult reports a rigid (translation) registration baseline run.
type RigidResult struct {
	Shift       [3]float64 // translation in grid cells applied to the template
	MisfitInit  float64    // 1/2 ||rho_T - rho_R||^2 before
	MisfitFinal float64    // after the rigid alignment
	Warped      []float64  // translated template
}

// RigidRegister aligns the template to the reference with the best periodic
// translation, found by FFT phase correlation over the global volumes (the
// low-dimensional baseline of Fig. 1: rigid registration leaves large
// residuals that only deformable registration removes). Serial by design;
// it runs on gathered volumes for the figure harness.
func RigidRegister(g grid.Grid, tmpl, ref []float64) RigidResult {
	n := g.N
	ft := fft.Forward3Real(tmpl, n[0], n[1], n[2])
	fr := fft.Forward3Real(ref, n[0], n[1], n[2])
	// Cross-power spectrum -> correlation surface.
	cross := make([]complex128, len(ft))
	for i := range cross {
		cross[i] = fr[i] * cmplx.Conj(ft[i])
	}
	corr := fft.Inverse3Real(cross, n[0], n[1], n[2])
	best, bestIdx := math.Inf(-1), 0
	for i, v := range corr {
		if v > best {
			best = v
			bestIdx = i
		}
	}
	s3 := bestIdx % n[2]
	s2 := (bestIdx / n[2]) % n[1]
	s1 := bestIdx / (n[1] * n[2])
	// Report the translation signed (a shift of n-1 is a shift of -1).
	signed := func(s, n int) float64 {
		if s > n/2 {
			return float64(s - n)
		}
		return float64(s)
	}
	shift := [3]float64{signed(s1, n[0]), signed(s2, n[1]), signed(s3, n[2])}

	pts := make([]float64, 3*len(tmpl))
	idx := 0
	for i1 := 0; i1 < n[0]; i1++ {
		for i2 := 0; i2 < n[1]; i2++ {
			for i3 := 0; i3 < n[2]; i3++ {
				pts[3*idx] = float64(i1) - shift[0]
				pts[3*idx+1] = float64(i2) - shift[1]
				pts[3*idx+2] = float64(i3) - shift[2]
				idx++
			}
		}
	}
	warped := make([]float64, len(tmpl))
	interp.EvalPeriodicBatch(tmpl, n, pts, warped)
	res := RigidResult{Shift: shift, Warped: warped}
	vol := g.CellVolume()
	for i := range tmpl {
		d0 := tmpl[i] - ref[i]
		d1 := warped[i] - ref[i]
		res.MisfitInit += 0.5 * d0 * d0 * vol
		res.MisfitFinal += 0.5 * d1 * d1 * vol
	}
	return res
}
