package pfft

import (
	"math/rand"
	"testing"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// TestRebindBitIdentical checks the cache-handoff contract: a plan built
// inside one mpi world, rebound to a fresh pencil of identical geometry in
// a later world, produces bit-identical transforms to a plan built fresh
// in that world — at 1 and 4 ranks.
func TestRebindBitIdentical(t *testing.T) {
	for _, p := range []int{1, 4} {
		g := grid.MustNew(16, 16, 16)

		// World 1: build the plans and run one transform to warm arenas.
		cached := make([]*Plan, p)
		if _, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			src := make([]float64, pe.LocalTotal())
			rng := rand.New(rand.NewSource(int64(100 + c.Rank())))
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			if _, err := pl.Forward(src); err != nil {
				return err
			}
			cached[c.Rank()] = pl
			return nil
		}); err != nil {
			t.Fatalf("p=%d world 1: %v", p, err)
		}

		// World 2: same geometry, fresh communicators. Compare the rebound
		// cached plan against a freshly built one on identical input.
		if _, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := cached[c.Rank()]
			if err := pl.Rebind(pe); err != nil {
				return err
			}
			fresh := NewPlan(pe)
			src := make([]float64, pe.LocalTotal())
			rng := rand.New(rand.NewSource(int64(200 + c.Rank())))
			for i := range src {
				src[i] = rng.NormFloat64()
			}
			specA, err := pl.Forward(src)
			if err != nil {
				return err
			}
			specB, err := fresh.Forward(src)
			if err != nil {
				return err
			}
			for i := range specA {
				if specA[i] != specB[i] {
					t.Errorf("p=%d rank %d: rebound plan diverges at mode %d: %v vs %v",
						p, c.Rank(), i, specA[i], specB[i])
					break
				}
			}
			backA, err := pl.Inverse(specA)
			if err != nil {
				return err
			}
			backB, err := fresh.Inverse(specB)
			if err != nil {
				return err
			}
			for i := range backA {
				if backA[i] != backB[i] {
					t.Errorf("p=%d rank %d: rebound inverse diverges at %d", p, c.Rank(), i)
					break
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("p=%d world 2: %v", p, err)
		}
	}
}

// TestRebindRejectsGeometryMismatch pins the guard rails of the handoff.
func TestRebindRejectsGeometryMismatch(t *testing.T) {
	build := func(n int) *Plan {
		var pl *Plan
		g := grid.MustNew(n, n, n)
		if _, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl = NewPlan(pe)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return pl
	}
	pl := build(16)
	other := build(8)
	if err := pl.Rebind(other.Pe); err == nil {
		t.Fatal("rebinding a 16^3 plan onto an 8^3 pencil must fail")
	}

	// Mismatched coordinates at equal global dims: rank 1's pencil of a
	// 4-rank world offered to a plan built for rank 0 of the same world.
	g := grid.MustNew(16, 16, 16)
	pes := make([]*grid.Pencil, 4)
	if _, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pes[c.Rank()] = pe
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pl4 := build(16) // built on a single-rank world: P = {1,1}
	if err := pl4.Rebind(pes[1]); err == nil {
		t.Fatal("rebinding across process-grid shapes must fail")
	}
}

// TestPlanCounters pins the alloc-observability contract: building a plan
// bumps PlanBuilds, the first transform grows the arena once, and warm
// transforms leave both counters unchanged.
func TestPlanCounters(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	if _, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		b0, a0 := PlanBuilds(), ArenaGrows()
		pl := NewPlan(pe)
		if PlanBuilds() != b0+1 {
			t.Errorf("PlanBuilds %d, want %d", PlanBuilds(), b0+1)
		}
		src := make([]float64, pe.LocalTotal())
		if _, err := pl.Forward(src); err != nil {
			return err
		}
		if ArenaGrows() != a0+1 {
			t.Errorf("ArenaGrows %d after first transform, want %d", ArenaGrows(), a0+1)
		}
		b1, a1 := PlanBuilds(), ArenaGrows()
		for i := 0; i < 3; i++ {
			if _, err := pl.Forward(src); err != nil {
				return err
			}
		}
		if PlanBuilds() != b1 || ArenaGrows() != a1 {
			t.Errorf("warm transforms moved counters: builds %d->%d grows %d->%d",
				b1, PlanBuilds(), a1, ArenaGrows())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
