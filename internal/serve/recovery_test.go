package serve

// Durability battery for the serving layer (run with -race):
//
//   - journal framing survives a torn tail: replay stops at the first bad
//     frame, the writer re-anchors, and nothing written after the restart
//     is lost;
//   - crash/restart: a server rebuilt from a journal snapshotted mid-run
//     re-runs every accepted-but-unfinished job and reproduces the
//     uninterrupted results bit-for-bit;
//   - retry supervisor: chaos-injected comm failures are retried and the
//     recovered results match the fault-free baseline exactly;
//   - checkpoint-carrying recovery: a retried attempt resumes from the
//     spool checkpoint and still lands on the uninterrupted trajectory;
//   - idempotency keys dedupe client retries, across restarts included;
//   - the retention ring bounds terminal-job memory;
//   - event streams and /readyz cooperate with shutdown.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"diffreg"
	"diffreg/internal/ckpt"
	"diffreg/internal/mpi"
)

// mustOpen fails the test instead of panicking on journal errors.
func mustOpen(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestJournalTornTailRecovery pins the framing contract: a crash can tear
// at most the final line, and a torn tail must neither lose intact records
// nor corrupt records appended after the restart.
func TestJournalTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := quickSpec()

	j, jobs, n, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || n != 0 {
		t.Fatalf("fresh journal replayed %d jobs, %d records", len(jobs), n)
	}
	if err := j.Accepted("job-000001", "key-1", &spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Attempt("job-000001", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Terminal("job-000001", JobDone, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Accepted("job-000002", "", &spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn final line: a partial frame with no trailing newline.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00deadbeef00 {"type":"terminal","id":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, jobs2, n2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 4 {
		t.Fatalf("replayed %d records, want the 4 intact ones", n2)
	}
	if len(jobs2) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs2))
	}
	if !jobs2[0].Terminal || jobs2[0].State != JobDone || jobs2[0].Idem != "key-1" || jobs2[0].Attempts != 1 {
		t.Fatalf("job 1 replay state drifted: %+v", jobs2[0])
	}
	if jobs2[1].Terminal {
		t.Fatalf("job 2 replayed terminal; the torn record must not count")
	}
	// Appends after the torn tail must re-anchor and stay readable.
	if err := j2.Accepted("job-000003", "", &spec); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, jobs3, n3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n3 != 5 || len(jobs3) != 3 || jobs3[2].ID != "job-000003" {
		t.Fatalf("post-restart append lost: %d records, %d jobs", n3, len(jobs3))
	}
}

// TestDurabilityStatsJSONShape pins the /stats retries and journal block
// wire formats and checks they ride inside GET /stats.
func TestDurabilityStatsJSONShape(t *testing.T) {
	b, err := json.Marshal(RetryStats{Enabled: true, MaxAttempts: 3,
		Scheduled: 2, Resumed: 1, Recovered: 1, Exhausted: 0, Pending: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"enabled":true,"max_attempts":3,"scheduled":2,"resumed":1,"recovered":1,"exhausted":0,"pending":1}`
	if got := strings.TrimSpace(string(b)); got != want {
		t.Fatalf("retry stats JSON drifted:\n got %s\nwant %s", got, want)
	}
	b, err = json.Marshal(JournalStats{Enabled: true, Path: "/j/journal.ndjson",
		Records: 7, Replayed: 3, Recovered: 1})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"enabled":true,"path":"/j/journal.ndjson","records":7,"replayed":3,"recovered":1}`
	if got := strings.TrimSpace(string(b)); got != want {
		t.Fatalf("journal stats JSON drifted:\n got %s\nwant %s", got, want)
	}

	srv := mustOpen(t, Config{Workers: 1, JournalDir: t.TempDir(),
		Retry: RetryPolicy{MaxAttempts: 2}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var rs RetryStats
	if err := json.Unmarshal(body["retries"], &rs); err != nil {
		t.Fatalf("/stats retries block: %v", err)
	}
	if !rs.Enabled || rs.MaxAttempts != 2 {
		t.Fatalf("retries block: %+v, want enabled with max_attempts 2", rs)
	}
	var js JournalStats
	if err := json.Unmarshal(body["journal"], &js); err != nil {
		t.Fatalf("/stats journal block: %v", err)
	}
	if !js.Enabled || js.Path == "" {
		t.Fatalf("journal block: %+v, want enabled with a path", js)
	}
}

// TestIdempotencyDedup: re-POSTing the same Idempotency-Key returns the
// original job instead of running it twice — header and body-field forms.
func TestIdempotencyDedup(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(key string) (string, bool) {
		t.Helper()
		body, _ := json.Marshal(quickSpec())
		req, err := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs: %d", resp.StatusCode)
		}
		var acc struct {
			ID      string `json:"id"`
			Deduped bool   `json:"deduped"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		return acc.ID, acc.Deduped
	}

	id1, dup := post("client-retry-1")
	if dup {
		t.Fatal("first submission reported deduped")
	}
	id2, dup := post("client-retry-1")
	if id2 != id1 || !dup {
		t.Fatalf("retry got (%s, deduped=%v), want (%s, true)", id2, dup, id1)
	}
	id3, dup := post("client-retry-2")
	if id3 == id1 || dup {
		t.Fatalf("distinct key got (%s, deduped=%v)", id3, dup)
	}
	// The body field works without the header.
	spec := quickSpec()
	spec.IdempotencyKey = "client-retry-2"
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != id3 {
		t.Fatalf("body-field key resolved to %s, want %s", job.ID, id3)
	}
	if got := srv.Stats().Deduped; got != 2 {
		t.Fatalf("deduped counter = %d, want 2", got)
	}
	waitJob(t, srv, id1)
	waitJob(t, srv, id3)
}

// copyJournal snapshots a live journal directory into dst — the moral
// equivalent of what SIGKILL leaves on disk.
func copyJournal(t *testing.T, src, dst string) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(src, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, journalFile), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRestartBattery is the durability gate: jobs accepted and
// started (but not finished) before a crash must re-run on restart and
// land bit-identically on the uninterrupted results, idempotency keys
// intact.
func TestCrashRestartBattery(t *testing.T) {
	specA := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 2, GradTol: 1e-12, IdempotencyKey: "alpha"}
	specB := specA
	specB.Tasks = 2
	specB.Beta = 5e-3
	specB.IdempotencyKey = ""
	baseA := serialBaseline(t, specA)
	baseB := serialBaseline(t, specB)

	dir1, dir2 := t.TempDir(), t.TempDir()
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	started := make(chan string, 4)
	srv1 := mustOpen(t, Config{
		Workers: 2, JournalDir: dir1,
		Retry:     RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Millisecond},
		beforeRun: func(j *Job) { started <- j.ID; <-gate },
	})
	if _, err := srv1.Submit(specA); err != nil {
		t.Fatal(err)
	}
	if _, err := srv1.Submit(specB); err != nil {
		t.Fatal(err)
	}
	// Both attempts journaled and paused: this is the crash point. The
	// snapshot sees accepted+attempt records and no terminal ones.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(time.Minute):
			t.Fatal("workers never reached the crash point")
		}
	}
	copyJournal(t, dir1, dir2)
	openGate()
	srv1.Close()

	// "Restart": rebuild from the snapshot. Both jobs replay non-terminal
	// and re-run to completion under their original IDs.
	srv2 := mustOpen(t, Config{
		Workers: 2, JournalDir: dir2,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Millisecond},
	})
	defer srv2.Close()
	if st := srv2.Stats(); st.Journal.Recovered != 2 || st.Journal.Replayed != 4 {
		t.Fatalf("replay stats: recovered %d (want 2), replayed %d (want 4)",
			st.Journal.Recovered, st.Journal.Replayed)
	}
	for _, tc := range []struct {
		id   string
		base *diffreg.Result
	}{{"job-000001", baseA}, {"job-000002", baseB}} {
		st := waitJob(t, srv2, tc.id)
		if st.State != JobDone {
			t.Fatalf("recovered job %s: %s (%s)", tc.id, st.State, st.Error)
		}
		if st.Attempts != 2 {
			t.Fatalf("recovered job %s attempts = %d, want 2 (1 pre-crash + 1 now)", tc.id, st.Attempts)
		}
		if math.Float64bits(st.Result.MisfitFinal) != math.Float64bits(tc.base.MisfitFinal) ||
			math.Float64bits(st.Result.GnormFinal) != math.Float64bits(tc.base.GnormFinal) {
			t.Fatalf("recovered job %s diverged from uninterrupted run: misfit %.17g != %.17g",
				tc.id, st.Result.MisfitFinal, tc.base.MisfitFinal)
		}
		if st.Result.NewtonIters != tc.base.NewtonIters {
			t.Fatalf("recovered job %s iterations %d != %d", tc.id, st.Result.NewtonIters, tc.base.NewtonIters)
		}
	}

	// Idempotency keys survive the restart: the client's re-POST of the
	// pre-crash submission resolves to the recovered job, not a new run.
	job, err := srv2.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000001" {
		t.Fatalf("idempotent re-submission got %s, want job-000001", job.ID)
	}
	// And fresh submissions continue the ID sequence past replayed jobs.
	fresh, err := srv2.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID != "job-000003" {
		t.Fatalf("fresh submission got %s, want job-000003", fresh.ID)
	}
	waitJob(t, srv2, fresh.ID)
	srv2.Close()

	// Third generation: everything is journaled terminal now, so nothing
	// re-runs, but the outcomes stay queryable.
	srv3 := mustOpen(t, Config{Workers: 1, JournalDir: dir2})
	defer srv3.Close()
	if st := srv3.Stats(); st.Journal.Recovered != 0 {
		t.Fatalf("terminal jobs re-ran after clean shutdown: recovered %d", st.Journal.Recovered)
	}
	j, ok := srv3.Job("job-000001")
	if !ok {
		t.Fatal("terminal job not replayed as a stub")
	}
	if st := j.Status(); st.State != JobDone {
		t.Fatalf("terminal stub state %s, want done", st.State)
	}
}

// TestRetrySoakUnderChaos: with retries enabled, chaos-injected comm
// failures must be absorbed — every job reaches done, retried jobs carry
// attempts > 1, and the recovered results are bit-identical to the
// fault-free baseline (injected faults are cleared on retry attempts, and
// any spooled checkpoint predates the fault, so the recovered trajectory
// is the clean one).
func TestRetrySoakUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("retry soak is long; the dedicated CI step runs it without -short")
	}
	healthy := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 4,
		TimeSteps: 2, MaxNewtonIters: 2, GradTol: 1e-12}
	baseline := serialBaseline(t, healthy)

	// The same deterministic sites the no-retry chaos soak uses.
	chaosSites := []string{
		"seed=11;site=1:fft-comm:send:2:bitflip",
		"seed=12;site=0:fft-comm:send:1:truncate",
		"seed=14;site=3:fft-comm:send:0:bitflip",
		"seed=13;site=2:interp-comm:send:1:drop",
	}
	srv := mustOpen(t, Config{
		Workers: 3, QueueDepth: 64, JournalDir: t.TempDir(),
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: 10 * time.Millisecond},
	})
	defer srv.Close()

	var chaosJobs, healthyJobs []*Job
	for _, site := range chaosSites {
		spec := healthy
		spec.Chaos = site
		job, err := srv.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		chaosJobs = append(chaosJobs, job)
		good, err := srv.Submit(healthy)
		if err != nil {
			t.Fatal(err)
		}
		healthyJobs = append(healthyJobs, good)
	}

	retried := 0
	for _, job := range append(append([]*Job{}, chaosJobs...), healthyJobs...) {
		select {
		case <-job.Done():
		case <-time.After(4 * time.Minute):
			t.Fatalf("job %s hung — retry containment broken", job.ID)
		}
		st := job.Status()
		if st.State != JobDone {
			t.Fatalf("job %s not recovered: %s (%s, kind %s)", job.ID, st.State, st.Error, st.ErrorKind)
		}
		if st.Attempts > 1 {
			retried++
		}
		if got := st.Result.MisfitFinal; math.Float64bits(got) != math.Float64bits(baseline.MisfitFinal) {
			t.Fatalf("job %s (attempts %d) diverged from fault-free baseline: %.17g != %.17g",
				job.ID, st.Attempts, got, baseline.MisfitFinal)
		}
	}
	if retried == 0 {
		t.Fatal("no job needed a retry — injection sites never fired")
	}
	stats := srv.Stats()
	if stats.Failed != 0 {
		t.Fatalf("retryable failures leaked to terminal: %d failed", stats.Failed)
	}
	if stats.Retries.Scheduled < int64(retried) || stats.Retries.Recovered < int64(retried) {
		t.Fatalf("retry accounting drifted: %+v, observed %d retried", stats.Retries, retried)
	}
	if stats.Retries.Pending != 0 {
		t.Fatalf("backoff timers leaked: %d pending", stats.Retries.Pending)
	}
}

// TestCheckpointCarryingRecovery: an attempt that finds a spool checkpoint
// resumes from it and still reproduces the uninterrupted solo run
// bit-for-bit; the spool is reaped once the job is terminal.
func TestCheckpointCarryingRecovery(t *testing.T) {
	spec := JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 2,
		TimeSteps: 2, MaxNewtonIters: 3, GradTol: 1e-12}
	baseline := serialBaseline(t, spec)

	// Seed the spool the way a killed attempt would have left it: the
	// same solve, checkpointed every iteration and stopped after one.
	spool := filepath.Join(t.TempDir(), "spool")
	if err := ckpt.EnsureSpoolDir(spool); err != nil {
		t.Fatal(err)
	}
	sp := ckpt.SpoolPath(spool, "job-000001")
	template, reference, err := spec.volumes()
	if err != nil {
		t.Fatal(err)
	}
	seed := spec.config()
	seed.CheckpointPath = sp
	seed.CheckpointEvery = 1
	seed.MaxNewtonIters = 1
	if _, err := diffreg.Register(template, reference, seed); err != nil {
		t.Fatal(err)
	}
	if !ckpt.HasCheckpoint(sp) {
		t.Fatal("seed run left no spool checkpoint")
	}

	srv := mustOpen(t, Config{
		Workers: 1, JournalDir: t.TempDir(), SpoolDir: spool,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: 10 * time.Millisecond},
	})
	defer srv.Close()
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "job-000001" {
		t.Fatalf("job ID %s does not match the seeded spool", job.ID)
	}
	st := waitJob(t, srv, job.ID)
	if st.State != JobDone {
		t.Fatalf("resumed job: %s (%s)", st.State, st.Error)
	}
	if got := srv.Stats().Retries.Resumed; got != 1 {
		t.Fatalf("resumed counter = %d, want 1", got)
	}
	if math.Float64bits(st.Result.MisfitFinal) != math.Float64bits(baseline.MisfitFinal) ||
		math.Float64bits(st.Result.GnormFinal) != math.Float64bits(baseline.GnormFinal) {
		t.Fatalf("resumed run diverged from uninterrupted: misfit %.17g != %.17g, gnorm %.17g != %.17g",
			st.Result.MisfitFinal, baseline.MisfitFinal, st.Result.GnormFinal, baseline.GnormFinal)
	}
	if st.Result.NewtonIters != baseline.NewtonIters {
		t.Fatalf("resumed run iterations %d != uninterrupted %d", st.Result.NewtonIters, baseline.NewtonIters)
	}
	if ckpt.HasCheckpoint(sp) {
		t.Fatal("spool checkpoint not reaped after terminal state")
	}

	// A corrupt spool must degrade to a from-scratch run, not a failure.
	sp2 := ckpt.SpoolPath(spool, "job-000002")
	if err := os.WriteFile(sp2, []byte("DREGCKPT garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	job2, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitJob(t, srv, job2.ID)
	if st2.State != JobDone {
		t.Fatalf("corrupt-spool job: %s (%s)", st2.State, st2.Error)
	}
	if math.Float64bits(st2.Result.MisfitFinal) != math.Float64bits(baseline.MisfitFinal) {
		t.Fatalf("corrupt-spool run diverged: %.17g != %.17g", st2.Result.MisfitFinal, baseline.MisfitFinal)
	}
}

// TestFusedBatchRequeuesSoloOnCommError: when a fused batch dies of a
// batch-level comm error, surviving members are re-queued to run solo
// under the retry budget instead of failing with the batch.
func TestFusedBatchRequeuesSoloOnCommError(t *testing.T) {
	spec := quickSpec()
	baseline := serialBaseline(t, spec)
	srv := mustOpen(t, Config{
		Workers: 1, MaxBatch: 2, BatchWindow: 200 * time.Millisecond,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: 5 * time.Millisecond},
		runFused: func([]diffreg.FusedJob) ([]*diffreg.Result, *diffreg.FusedInfo, error) {
			return nil, nil, fmt.Errorf("fused pass: %w",
				&mpi.CommError{Rank: 0, Phase: mpi.PhaseFFTComm, Op: "alltoallv", Detail: "injected batch fault"})
		},
	})
	defer srv.Close()

	a, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, job := range []*Job{a, b} {
		st := waitJob(t, srv, job.ID)
		if st.State != JobDone {
			t.Fatalf("batch survivor %s: %s (%s)", job.ID, st.State, st.Error)
		}
		if st.Attempts != 2 {
			t.Fatalf("batch survivor %s attempts = %d, want 2", job.ID, st.Attempts)
		}
		if math.Float64bits(st.Result.MisfitFinal) != math.Float64bits(baseline.MisfitFinal) {
			t.Fatalf("solo re-run of %s diverged from baseline", job.ID)
		}
	}
	stats := srv.Stats()
	if stats.Fusion.RequeuedSolo != 2 {
		t.Fatalf("requeued_solo = %d, want 2", stats.Fusion.RequeuedSolo)
	}
	if stats.Failed != 0 {
		t.Fatalf("batch members failed terminally: %d", stats.Failed)
	}
}

// TestRetryBudgetAndGating pins the supervisor's decision table: only comm
// errors retry, cancels win races, and the attempt budget is enforced
// (with the exhaustion counter).
func TestRetryBudgetAndGating(t *testing.T) {
	srv := mustOpen(t, Config{Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 2, Backoff: time.Hour}})
	defer srv.Close()

	job := newJob("job-test-1", quickSpec())
	job.setRunning()
	if srv.maybeRetry(job, "x", "solver", false) {
		t.Fatal("solver error retried")
	}
	if srv.maybeRetry(job, "x", "timeout", false) {
		t.Fatal("timeout retried")
	}
	canceled := newJob("job-test-2", quickSpec())
	canceled.setRunning()
	canceled.canceled.Store(true)
	if srv.maybeRetry(canceled, "x", "comm", false) {
		t.Fatal("canceled job retried")
	}

	if !srv.maybeRetry(job, "transient", "comm", false) {
		t.Fatal("comm error not retried with budget left")
	}
	st := job.Status()
	if st.State != JobQueued || st.NextRetry == nil {
		t.Fatalf("retry-scheduled job: state %s, next_retry %v", st.State, st.NextRetry)
	}
	if got := srv.Stats().Retries.Pending; got != 1 {
		t.Fatalf("pending = %d, want 1", got)
	}
	job.setRunning() // attempt 2 — the last of the budget
	if srv.maybeRetry(job, "transient", "comm", false) {
		t.Fatal("budget exceeded but retry scheduled")
	}
	if got := srv.Stats().Retries.Exhausted; got != 1 {
		t.Fatalf("exhausted = %d, want 1", got)
	}
	if d := srv.cfg.Retry.delay(2); d != time.Hour {
		t.Fatalf("delay(2) = %v, want base backoff", d)
	}
	p := RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		2: 100 * time.Millisecond, 3: 200 * time.Millisecond,
		4: 300 * time.Millisecond, 5: 300 * time.Millisecond,
	} {
		if d := p.withDefaults().delay(attempt); d != want {
			t.Fatalf("delay(%d) = %v, want %v", attempt, d, want)
		}
	}
}

// TestRetentionRing: terminal jobs past the cap are evicted — store,
// events, and idempotency key — while listing and stats stay coherent.
func TestRetentionRing(t *testing.T) {
	srv := New(Config{Workers: 1, Retain: 2})
	defer srv.Close()

	spec := quickSpec()
	spec.IdempotencyKey = "evict-me"
	first, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{first.ID}
	for i := 0; i < 4; i++ {
		job, err := srv.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for _, id := range ids {
		job, ok := srv.Job(id)
		if !ok {
			continue // already evicted mid-loop; checked below
		}
		<-job.Done()
	}
	// Eviction runs on each terminal transition; with 5 terminal jobs and
	// Retain 2, the three oldest must be gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Retained == 2 && st.Evicted == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention never converged: retained %d, evicted %d", st.Retained, st.Evicted)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, ok := srv.Job(ids[0]); ok {
		t.Fatalf("oldest job %s still tracked past the retention cap", ids[0])
	}
	if _, ok := srv.Job(ids[4]); !ok {
		t.Fatalf("newest job %s evicted", ids[4])
	}
	// The evicted idempotency key is free again: a re-submission runs anew.
	again, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID == first.ID {
		t.Fatal("evicted idempotency key still resolved to the old job")
	}
	<-again.Done()
}

// TestListFiltersAndReadyz covers the GET /jobs query surface (?limit,
// ?state, newest first) and the /readyz endpoint's draining signal.
func TestListFiltersAndReadyz(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	srv := New(Config{Workers: 1, QueueDepth: 8,
		beforeRun: func(*Job) { <-gate }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		job, err := srv.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	getList := func(query string) []struct {
		ID    string   `json:"id"`
		State JobState `json:"state"`
	} {
		t.Helper()
		resp, err := http.Get(ts.URL + "/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs%s: %d", query, resp.StatusCode)
		}
		var list []struct {
			ID    string   `json:"id"`
			State JobState `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	all := getList("")
	if len(all) != 3 || all[0].ID != ids[2] || all[2].ID != ids[0] {
		t.Fatalf("unfiltered list not newest-first: %+v", all)
	}
	if lim := getList("?limit=2"); len(lim) != 2 || lim[0].ID != ids[2] {
		t.Fatalf("?limit=2 drifted: %+v", lim)
	}
	queued := getList("?state=queued")
	for _, e := range queued {
		if e.State != JobQueued {
			t.Fatalf("?state=queued returned %s", e.State)
		}
	}
	// One job is claimed by the gated worker, two still queued.
	if len(queued) != 2 {
		t.Fatalf("?state=queued returned %d entries, want 2", len(queued))
	}
	for _, bad := range []string{"?limit=0", "?limit=x", "?state=bogus"} {
		resp, err := http.Get(ts.URL + "/jobs" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /jobs%s: %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz on an open server: %d", resp.StatusCode)
	}
	openGate()
	srv.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz on a draining server: %d, want 503", resp.StatusCode)
	}
	// Liveness is unaffected by draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz on a draining server: %d", resp.StatusCode)
	}
}

// TestEventStreamEndsOnClose: an idle stream watcher must end promptly
// when the server closes — with the job's terminal event delivered — so
// the HTTP drain never idles out its full deadline on open streams.
func TestEventStreamEndsOnClose(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()
	srv := New(Config{Workers: 1, beforeRun: func(*Job) { <-gate }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	if _, err := srv.Submit(quickSpec()); err != nil { // pins the worker
		t.Fatal(err)
	}
	watched, err := srv.Submit(quickSpec()) // stays queued
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + watched.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("stream ended before the queued event")
	}

	closed := make(chan struct{})
	go func() {
		openGate()
		srv.Close()
		close(closed)
	}()

	var last Event
	finished := make(chan error, 1)
	go func() {
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				finished <- err
				return
			}
		}
		finished <- sc.Err()
	}()
	select {
	case err := <-finished:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Minute):
		t.Fatal("event stream did not end after server close")
	}
	<-closed
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal event: %+v", last)
	}
}
