package semilag

import (
	"math"
	"math/rand"
	"testing"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
	"diffreg/internal/prec"
)

// batchPoints builds a per-job off-grid query cloud, decorrelated by seed.
func batchPoints(g grid.Grid, nq int, seed int64) [3][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var pts [3][]float64
	for d := 0; d < 3; d++ {
		pts[d] = make([]float64, nq)
		for q := range pts[d] {
			pts[d][q] = rng.Float64() * float64(g.N[d])
		}
	}
	return pts
}

// TestBatchInterpBitIdenticalToSolo asserts the fused gather executor
// reproduces each call's solo InterpMany bit for bit, for heterogeneous
// point clouds and field counts sharing one key shape, at one rank (all
// exchanges local wraps) and four ranks (both halo pairs and the value
// Alltoallv exercised), in both precisions. It also pins the fused
// message count: one fused exchange costs exactly as many messages as ONE
// solo exchange, however many jobs it carries.
func TestBatchInterpBitIdenticalToSolo(t *testing.T) {
	g := grid.MustNew(8, 12, 10)
	f1 := globalRandom(g.N, 1)
	f2 := globalRandom(g.N, 2)
	for _, p := range []int{1, 4} {
		for _, pr := range []prec.Precision{prec.F64, prec.F32} {
			_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				l1, l2 := localOf(pe, f1), localOf(pe, f2)
				fieldSets := [][][]float64{
					{l1, l2},
					{l2, l1},
					{l1, l1},
				}
				nb := len(fieldSets)

				// Solo reference: fresh plans, one exchange each; outs are
				// plan scratch, so copy them. Plans are built outside the
				// measurement window — planning runs its own points exchange.
				soloPlans := make([]*Plan, nb)
				for j := 0; j < nb; j++ {
					soloPlans[j] = NewPlanPrec(pe, batchPoints(g, 40+10*j, int64(j+1)), pr)
				}
				want := make([][][]float64, nb)
				soloBefore := *c.Stats()
				for j := 0; j < nb; j++ {
					outs := soloPlans[j].InterpMany(fieldSets[j]...)
					want[j] = make([][]float64, len(outs))
					for i, o := range outs {
						want[j][i] = append([]float64(nil), o...)
					}
				}
				soloAfter := *c.Stats()
				soloMsgs := soloAfter.Messages[mpi.PhaseInterpComm] - soloBefore.Messages[mpi.PhaseInterpComm]

				// Fused run over congruent fresh plans with the same clouds.
				calls := make([]*BatchCall, nb)
				for j := 0; j < nb; j++ {
					pl := NewPlanPrec(pe, batchPoints(g, 40+10*j, int64(j+1)), pr)
					calls[j] = &BatchCall{Plan: pl, Fields: fieldSets[j]}
					if calls[j].Key() != calls[0].Key() {
						t.Errorf("p=%d %v: keys differ within the batch: %q vs %q",
							p, pr, calls[j].Key(), calls[0].Key())
						return nil
					}
				}
				bi := NewBatchInterp(pe)
				fusedBefore := *c.Stats()
				bi.Run(calls)
				fusedAfter := *c.Stats()

				for j, call := range calls {
					for i := range want[j] {
						for q := range want[j][i] {
							if math.Float64bits(call.Outs[i][q]) != math.Float64bits(want[j][i][q]) {
								t.Errorf("p=%d %v job %d field %d point %d: fused %v != solo %v",
									p, pr, j, i, q, call.Outs[i][q], want[j][i][q])
								return nil
							}
						}
					}
				}

				// Message accounting: the fused exchange ships every job's
				// halos in one send pair per direction and every job's
				// values in one Alltoallv, so it costs exactly the messages
				// of a single solo one-field exchange — however many jobs
				// and fields it carries. The solo runs pad per field, so
				// they cost sum_j (nf_j*halo + alltoallv).
				fusedMsgs := fusedAfter.Messages[mpi.PhaseInterpComm] - fusedBefore.Messages[mpi.PhaseInterpComm]
				singleBefore := *c.Stats()
				soloPlans[0].Interp(fieldSets[0][0])
				singleAfter := *c.Stats()
				singleMsgs := singleAfter.Messages[mpi.PhaseInterpComm] - singleBefore.Messages[mpi.PhaseInterpComm]
				if fusedMsgs != singleMsgs {
					t.Errorf("p=%d %v: fused exchange cost %d msgs, want the single-field solo cost %d",
						p, pr, fusedMsgs, singleMsgs)
				}
				if p > 1 && soloMsgs <= fusedMsgs {
					t.Errorf("p=%d %v: fused exchange (%d msgs) did not undercut %d solo exchanges (%d msgs)",
						p, pr, fusedMsgs, nb, soloMsgs)
				}
				if d := fusedAfter.FusedInterpExchanges - fusedBefore.FusedInterpExchanges; d != 1 {
					t.Errorf("p=%d %v: FusedInterpExchanges delta = %d, want 1", p, pr, d)
				}
				if d := fusedAfter.FusedInterpJobs - fusedBefore.FusedInterpJobs; d != int64(nb) {
					t.Errorf("p=%d %v: FusedInterpJobs delta = %d, want %d", p, pr, d, nb)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d %v: %v", p, pr, err)
			}
		}
	}
}

// TestGateFallbackRunsSolo asserts a plan whose gate declines still
// produces correct results through the solo path, and that a gate that
// fills Outs short-circuits the exchange.
func TestGateFallbackRunsSolo(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	f := globalRandom(g.N, 3)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		l := localOf(pe, f)
		pts := batchPoints(g, 30, 7)

		want := append([]float64(nil), NewPlan(pe, pts).Interp(l)...)

		// Declining gate: solo fallback.
		declined := 0
		pl := NewPlan(pe, pts)
		pl.SetGate(func(call *BatchCall) bool { declined++; return false })
		got := pl.Interp(l)
		for q := range want {
			if math.Float64bits(got[q]) != math.Float64bits(want[q]) {
				t.Errorf("declined gate: point %d: %v != solo %v", q, got[q], want[q])
				return nil
			}
		}
		if declined != 1 {
			t.Errorf("gate consulted %d times, want 1", declined)
		}

		// Accepting gate: the executor's outs come back verbatim.
		pl2 := NewPlan(pe, pts)
		bi := NewBatchInterp(pe)
		pl2.SetGate(func(call *BatchCall) bool {
			bi.Run([]*BatchCall{call})
			return true
		})
		got2 := pl2.Interp(l)
		for q := range want {
			if math.Float64bits(got2[q]) != math.Float64bits(want[q]) {
				t.Errorf("accepting gate: point %d: %v != solo %v", q, got2[q], want[q])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestInterpManyZeroAllocs gates the plan-owned scratch: after warmup, a
// reused plan's InterpMany performs zero heap allocations at one rank in
// either precision (multi-rank runs still allocate inside the in-process
// point-to-points, which model real MPI receive buffers anyway).
func TestInterpManyZeroAllocs(t *testing.T) {
	defer par.SetWorkers(par.SetWorkers(1))
	g := grid.MustNew(12, 10, 8)
	f1 := globalRandom(g.N, 4)
	f2 := globalRandom(g.N, 5)
	f3 := globalRandom(g.N, 6)
	for _, pr := range []prec.Precision{prec.F64, prec.F32} {
		_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			l1, l2, l3 := localOf(pe, f1), localOf(pe, f2), localOf(pe, f3)
			pl := NewPlanPrec(pe, batchPoints(g, 200, 9), pr)
			pl.InterpMany(l1, l2, l3) // warm the scratch
			allocs := testing.AllocsPerRun(10, func() {
				pl.InterpMany(l1, l2, l3)
			})
			if allocs != 0 {
				t.Errorf("%v: InterpMany allocates %v times per run, want 0", pr, allocs)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", pr, err)
		}
	}
}
