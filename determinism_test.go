package diffreg

import (
	"math"
	"testing"

	"diffreg/internal/par"
)

// TestRegistrationBitIdenticalAcrossPoolSizes is the golden determinism
// test for the shared-memory worker pool: a two-rank registration run with
// pool size 1 must be bit-identical — velocity fields, misfit, gradient
// norms, and the whole iteration history — to the same run with a
// multi-worker pool. This holds because chunk boundaries and reduction
// association in package par depend only on the trip count, never on the
// worker count (see the par package comment).
func TestRegistrationBitIdenticalAcrossPoolSizes(t *testing.T) {
	n := 32
	if testing.Short() {
		n = 16
	}
	tmpl, ref, err := SyntheticProblem(n, n, n, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Tasks: 2, MaxNewtonIters: 2, GradTol: 1e-12}

	solve := func(workers int) *Result {
		t.Helper()
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		res, err := Register(tmpl, ref, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	serial := solve(1)
	pooled := solve(max(4, par.Workers()))

	if serial.MisfitFinal != pooled.MisfitFinal {
		t.Errorf("misfit differs: serial %x pooled %x",
			math.Float64bits(serial.MisfitFinal), math.Float64bits(pooled.MisfitFinal))
	}
	if serial.GnormFinal != pooled.GnormFinal {
		t.Errorf("gnorm differs: serial %x pooled %x",
			math.Float64bits(serial.GnormFinal), math.Float64bits(pooled.GnormFinal))
	}
	if len(serial.History) != len(pooled.History) {
		t.Fatalf("iteration history lengths differ: %d vs %d", len(serial.History), len(pooled.History))
	}
	for i := range serial.History {
		s, p := serial.History[i], pooled.History[i]
		if s.Objective != p.Objective || s.Misfit != p.Misfit || s.Gnorm != p.Gnorm ||
			s.CGIters != p.CGIters || s.Step != p.Step {
			t.Errorf("iteration %d differs: serial %+v pooled %+v", i, s, p)
		}
	}
	for d := 0; d < 3; d++ {
		sd, pd := serial.Velocity[d].Data, pooled.Velocity[d].Data
		if len(sd) != len(pd) {
			t.Fatalf("velocity[%d] lengths differ", d)
		}
		diffs := 0
		for k := range sd {
			if math.Float64bits(sd[k]) != math.Float64bits(pd[k]) {
				diffs++
				if diffs <= 3 {
					t.Errorf("velocity[%d][%d]: serial %x pooled %x",
						d, k, math.Float64bits(sd[k]), math.Float64bits(pd[k]))
				}
			}
		}
		if diffs > 0 {
			t.Errorf("velocity[%d]: %d of %d values differ bitwise", d, diffs, len(sd))
		}
	}
	for k := range serial.Warped.Data {
		if math.Float64bits(serial.Warped.Data[k]) != math.Float64bits(pooled.Warped.Data[k]) {
			t.Fatalf("warped image differs at %d", k)
		}
	}
}
