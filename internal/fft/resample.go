package fft

// Spectral resampling between grid resolutions, the transfer operator of
// the coarse-to-fine grid continuation (the "grid continuation" the paper
// lists among the missing pieces of its single-level solver). Band-limited
// functions transfer exactly; prolongation after restriction is the
// identity on the retained modes.

// fft3Complex transforms a complex volume in place along all three axes.
func fft3Complex(a []complex128, n [3]int, inverse bool) {
	p3 := NewPlan(n[2])
	line := make([]complex128, n[2])
	for i := 0; i < n[0]*n[1]; i++ {
		copy(line, a[i*n[2]:(i+1)*n[2]])
		if inverse {
			p3.Inverse(line, a[i*n[2]:(i+1)*n[2]])
		} else {
			p3.Forward(line, a[i*n[2]:(i+1)*n[2]])
		}
	}
	transformAxis(a, n[0], n[1], n[2], 1, inverse)
	transformAxis(a, n[0], n[1], n[2], 0, inverse)
}

// signedWavenumber maps index j in [0, n) to the signed wavenumber.
func signedWavenumber(j, n int) int {
	if j <= n/2 {
		return j
	}
	return j - n
}

// indexOfWavenumber maps a signed wavenumber to its index in [0, n), or
// -1 when the mode is not representable (or is the ambiguous Nyquist).
func indexOfWavenumber(k, n int) int {
	// Drop the Nyquist mode of even lengths: it cannot be transferred
	// without breaking conjugate symmetry.
	if 2*k >= n || 2*k <= -n {
		return -1
	}
	if k >= 0 {
		return k
	}
	return k + n
}

// Resample3Real spectrally resamples a real volume from dimensions `from`
// to dimensions `to` on the same periodic domain: modes shared by both
// grids are copied, all others are zero (truncation when coarsening,
// zero-padding when refining). The result is real to machine precision.
func Resample3Real(src []float64, from, to [3]int) []float64 {
	if from == to {
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	a := make([]complex128, from[0]*from[1]*from[2])
	for i, v := range src {
		a[i] = complex(v, 0)
	}
	fft3Complex(a, from, false)

	b := make([]complex128, to[0]*to[1]*to[2])
	scale := complex(float64(to[0]*to[1]*to[2])/float64(from[0]*from[1]*from[2]), 0)
	for j1 := 0; j1 < to[0]; j1++ {
		k1 := signedWavenumber(j1, to[0])
		s1 := indexOfWavenumber(k1, from[0])
		if s1 < 0 || indexOfWavenumber(k1, to[0]) < 0 {
			continue
		}
		for j2 := 0; j2 < to[1]; j2++ {
			k2 := signedWavenumber(j2, to[1])
			s2 := indexOfWavenumber(k2, from[1])
			if s2 < 0 || indexOfWavenumber(k2, to[1]) < 0 {
				continue
			}
			for j3 := 0; j3 < to[2]; j3++ {
				k3 := signedWavenumber(j3, to[2])
				s3 := indexOfWavenumber(k3, from[2])
				if s3 < 0 || indexOfWavenumber(k3, to[2]) < 0 {
					continue
				}
				b[(j1*to[1]+j2)*to[2]+j3] = scale * a[(s1*from[1]+s2)*from[2]+s3]
			}
		}
	}
	fft3Complex(b, to, true)
	out := make([]float64, len(b))
	for i, v := range b {
		out[i] = real(v)
	}
	return out
}
