// Quickstart: register the paper's synthetic image pair and inspect the
// result. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"diffreg"
)

func main() {
	// The synthetic benchmark problem of the paper (§IV-A1): the template
	// is a smooth sinusoidal phantom, the reference is the template
	// transported along a known velocity field.
	template, reference, err := diffreg.SyntheticProblem(32, 32, 32, 4, false)
	if err != nil {
		log.Fatal(err)
	}

	// Register on 4 (goroutine) ranks with the paper's default solver
	// parameters: beta = 1e-2, H2 regularization, nt = 4, Gauss-Newton,
	// gtol = 1e-2.
	res, err := diffreg.Register(template, reference, diffreg.Config{
		Tasks:   4,
		Verbose: true,
		Logf:    func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged:    %v after %d Newton iterations (%d Hessian matvecs)\n",
		res.Converged, res.NewtonIters, res.HessianMatvecs)
	fmt.Printf("misfit:       %.4e -> %.4e\n", res.MisfitInit, res.MisfitFinal)
	fmt.Printf("det(grad y1): [%.3f, %.3f] -- strictly positive means the map\n",
		res.DetMin, res.DetMax)
	fmt.Printf("              is a diffeomorphism (no folding or tearing)\n")

	// The warped template rho_T(y1) should now match the reference.
	var maxResidual float64
	for i := range reference.Data {
		if d := abs(res.Warped.Data[i] - reference.Data[i]); d > maxResidual {
			maxResidual = d
		}
	}
	fmt.Printf("max |rho_T(y1) - rho_R| = %.4f\n", maxResidual)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
