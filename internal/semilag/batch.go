package semilag

// Cross-job fusion of the gather exchange (Algorithm 1 across the job
// axis). A Plan with a gate installed offers each InterpMany to the batch
// scheduler; when several lock-stepped jobs park on the same kind of
// interpolation in one rendezvous round, the scheduler hands their calls
// to a BatchInterp, which runs ONE ghost-halo exchange and ONE value
// Alltoallv carrying every job's payload concatenated, then unpacks
// per-job segments bit-identically to the solo exchanges. The per-rank
// message count of a transport step drops from ~B·S·(P−1) toward
// S·(P−1); the floats a job sees are exactly the solo ones.
//
// Wire layout. Halo phases concatenate the per-(job, field) blocks in
// call order on tags 111-114 (one up/down and one right/left pair, like
// the solo pad). The value return concatenates, per destination rank,
// each call's solo segment [field-major, npts points per field] in call
// order — so slicing the fused payload at the per-call offsets recovers
// the solo wire content exactly.

import (
	"fmt"
	"time"

	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
	"diffreg/internal/prec"
)

// BatchCall describes one job's gated InterpMany: the plan and fields of
// the intercepted call, and the outputs filled by the batch executor.
// Outs follows the plan-owned scratch contract of InterpMany.
type BatchCall struct {
	Plan   *Plan
	Fields [][]float64
	Outs   [][]float64
}

// Key is the fusion key of the call: requests fuse only when parked in
// the same rendezvous round with equal keys, which makes the fused
// exchange shape SPMD-uniform (same precision, same field count on every
// member).
func (c *BatchCall) Key() string {
	nf := len(c.Fields)
	pfx := "f64:"
	if c.Plan.precision == prec.F32 {
		pfx = "f32:"
	}
	if nf >= 1 && nf <= 4 {
		return pfx + string(rune('0'+nf))
	}
	return fmt.Sprintf("%s%d", pfx, nf)
}

// Gate intercepts a plan's InterpMany. It returns true when the batch
// executor satisfied the call (call.Outs is filled); on false the caller
// runs the solo exchange itself — the opportunistic-fusion fallback for
// desynchronized jobs.
type Gate func(call *BatchCall) bool

// SetGate installs (or clears, with nil) the batch gate consulted by
// InterpMany.
func (pl *Plan) SetGate(g Gate) { pl.gate = g }

// BatchInterp executes fused gather exchanges for groups of congruent
// plans. It is bound to an executor pencil on the rank's base
// communicator (the job plans live on duplicated communicators with the
// identical rank layout) and owns all staging scratch, so warmed-up fused
// exchanges allocate nothing beyond the MPI receive buffers.
type BatchInterp struct {
	Pe    *grid.Pencil
	ghost *Ghost

	pads   [][]float64
	pads32 [][]float32
	blk    []float64
	blk32  []float32
	sbuf   []float64
	sbuf32 []float32
	vals   [][]float64
	vals32 [][]float32
	offs   []int
}

// NewBatchInterp returns a fused-gather executor bound to the pencil.
func NewBatchInterp(pe *grid.Pencil) *BatchInterp {
	return &BatchInterp{Pe: pe, ghost: NewGhost(pe)}
}

// Run executes the calls' gather exchanges fused. Every call must target
// a pencil congruent to the executor's (same grid, decomposition, and
// rank coordinates — jobs on duplicated communicators) at one shared
// precision and field count; the round-matching rule of the scheduler
// guarantees this, so violations panic. Call order must be identical on
// every rank (the scheduler sorts by job index).
func (bi *BatchInterp) Run(calls []*BatchCall) {
	if len(calls) == 0 {
		return
	}
	pr := calls[0].Plan.precision
	for _, c := range calls {
		pl := c.Plan
		if pl.precision != pr {
			panic("semilag: fused batch mixes precisions")
		}
		pe := pl.Pe
		if pe.Grid.N != bi.Pe.Grid.N || pe.P != bi.Pe.P || pe.Coord != bi.Pe.Coord || pe.Lo != bi.Pe.Lo {
			panic("semilag: fused batch plan is not congruent to the executor pencil")
		}
	}
	if pr == prec.F32 {
		bi.run32(calls)
		return
	}
	bi.run64(calls)
}

// fieldCount returns the total (job, field) payload count of the round.
func fieldCount(calls []*BatchCall) int {
	n := 0
	for _, c := range calls {
		n += len(c.Fields)
	}
	return n
}

// offsFor returns the per-destination-rank running-offset scratch, zeroed.
func (bi *BatchInterp) offsFor() []int {
	p := bi.Pe.Comm.Size()
	if len(bi.offs) < p {
		bi.offs = make([]int, p)
	}
	offs := bi.offs[:p]
	for r := range offs {
		offs[r] = 0
	}
	return offs
}

func (bi *BatchInterp) run64(calls []*BatchCall) {
	pe := bi.Pe
	gh := bi.ghost
	const G = GhostWidth
	n1, n2 := pe.Local(0), pe.Local(1)
	p1, p2 := pe.P[0], pe.P[1]
	p := pe.Comm.Size()
	nF := fieldCount(calls)

	padLen := gh.PaddedLen()
	for len(bi.pads) < nF {
		bi.pads = append(bi.pads, nil)
	}
	for k := 0; k < nF; k++ {
		if len(bi.pads[k]) < padLen {
			bi.pads[k] = make([]float64, padLen)
		}
	}

	// Interior copies and the per-field sweep counters (same attribution
	// as the solo path).
	k := 0
	for _, c := range calls {
		for _, f := range c.Fields {
			c.Plan.Pe.Comm.CountInterp(int64(c.Plan.NQ))
			gh.interiorInto(bi.pads[k], f)
			k++
		}
	}

	// One fused halo exchange: phase A rows then phase B slabs, each
	// carrying all nF blocks concatenated in call order. Phases are
	// per-communicator: set the split comms too so the halo
	// point-to-points are charged to interpolation communication.
	rb, cb := gh.blockLens()
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	oldCol := pe.Col.SetPhase(mpi.PhaseInterpComm)
	oldRow := pe.Row.SetPhase(mpi.PhaseInterpComm)
	if p1 == 1 {
		if len(bi.blk) < rb {
			bi.blk = make([]float64, rb)
		}
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlockInto(bi.blk[:rb], f, n1-G)
				gh.placeRows(bi.pads[k], 0, bi.blk[:rb])
				gh.rowBlockInto(bi.blk[:rb], f, 0)
				gh.placeRows(bi.pads[k], n1+G, bi.blk[:rb])
				k++
			}
		}
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		if len(bi.sbuf) < nF*rb {
			bi.sbuf = make([]float64, nF*rb)
		}
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlockInto(bi.sbuf[k*rb:(k+1)*rb], f, n1-G)
				k++
			}
		}
		col.Send(up, tagBatchRowUp, bi.sbuf[:nF*rb])
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlockInto(bi.sbuf[k*rb:(k+1)*rb], f, 0)
				k++
			}
		}
		col.Send(down, tagBatchRowDown, bi.sbuf[:nF*rb])
		low := col.Recv(down, tagBatchRowUp).([]float64)
		for k = 0; k < nF; k++ {
			gh.placeRows(bi.pads[k], 0, low[k*rb:(k+1)*rb])
		}
		high := col.Recv(up, tagBatchRowDown).([]float64)
		for k = 0; k < nF; k++ {
			gh.placeRows(bi.pads[k], n1+G, high[k*rb:(k+1)*rb])
		}
	}
	if p2 == 1 {
		if len(bi.blk) < cb {
			bi.blk = make([]float64, cb)
		}
		for k = 0; k < nF; k++ {
			gh.colBlockInto(bi.blk[:cb], bi.pads[k], n2)
			gh.placeCols(bi.pads[k], 0, bi.blk[:cb])
			gh.colBlockInto(bi.blk[:cb], bi.pads[k], G)
			gh.placeCols(bi.pads[k], n2+G, bi.blk[:cb])
		}
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		if len(bi.sbuf) < nF*cb {
			bi.sbuf = make([]float64, nF*cb)
		}
		for k = 0; k < nF; k++ {
			gh.colBlockInto(bi.sbuf[k*cb:(k+1)*cb], bi.pads[k], n2)
		}
		row.Send(right, tagBatchColRight, bi.sbuf[:nF*cb])
		for k = 0; k < nF; k++ {
			gh.colBlockInto(bi.sbuf[k*cb:(k+1)*cb], bi.pads[k], G)
		}
		row.Send(left, tagBatchColLeft, bi.sbuf[:nF*cb])
		lo := row.Recv(left, tagBatchColRight).([]float64)
		for k = 0; k < nF; k++ {
			gh.placeCols(bi.pads[k], 0, lo[k*cb:(k+1)*cb])
		}
		hi := row.Recv(right, tagBatchColLeft).([]float64)
		for k = 0; k < nF; k++ {
			gh.placeCols(bi.pads[k], n2+G, hi[k*cb:(k+1)*cb])
		}
	}
	pe.Comm.SetPhase(old)
	pe.Col.SetPhase(oldCol)
	pe.Row.SetPhase(oldRow)

	// Local tricubic sweeps: each job's points against its own padded
	// fields, via the job plan's pooled sweep (so Evals and exec time land
	// on the same counters as solo runs).
	vals := bi.valsFor(calls)
	offs := bi.offsFor()
	pd := gh.PaddedDims()
	t0 := time.Now()
	k = 0
	for _, c := range calls {
		pl := c.Plan
		nf := len(c.Fields)
		for fi := 0; fi < nf; fi++ {
			for r := 0; r < p; r++ {
				pts := pl.recvPts[r]
				npts := len(pts) / 3
				pl.sweep = sweepState{
					padded: bi.pads[k],
					pts:    pts,
					out:    vals[r][offs[r]+fi*npts : offs[r]+(fi+1)*npts],
					orig:   pl.origIdx[r],
					pd:     pd,
				}
				par.ForChunks(npts, interpGrain, pl.sweep64Fn())
				pl.Evals += int64(npts)
			}
			k++
		}
		for r := 0; r < p; r++ {
			offs[r] += nf * (len(pl.recvPts[r]) / 3)
		}
	}
	pe.Comm.AddExec(mpi.PhaseInterpExec, time.Since(t0).Seconds())

	// One fused value return for every job and field.
	back := vals
	if p > 1 {
		old = pe.Comm.SetPhase(mpi.PhaseInterpComm)
		back = pe.Comm.AlltoallvFloat64(vals)
		pe.Comm.SetPhase(old)
	}
	pe.Comm.CountFusedInterp(len(calls), nF)

	// Unpack each call's solo segment.
	offs = bi.offsFor()
	for _, c := range calls {
		pl := c.Plan
		nf := len(c.Fields)
		outs := pl.outsFor(nf)
		for r := 0; r < p; r++ {
			idx := pl.sendIdx[r]
			npts := len(idx)
			for fi := 0; fi < nf; fi++ {
				seg := back[r][offs[r]+fi*npts : offs[r]+(fi+1)*npts]
				for j, slot := range idx {
					outs[fi][slot] = seg[j]
				}
			}
			offs[r] += nf * npts
		}
		c.Outs = outs
	}
}

func (bi *BatchInterp) run32(calls []*BatchCall) {
	pe := bi.Pe
	gh := bi.ghost
	const G = GhostWidth
	n1, n2 := pe.Local(0), pe.Local(1)
	p1, p2 := pe.P[0], pe.P[1]
	p := pe.Comm.Size()
	nF := fieldCount(calls)

	padLen := gh.PaddedLen()
	for len(bi.pads32) < nF {
		bi.pads32 = append(bi.pads32, nil)
	}
	for k := 0; k < nF; k++ {
		if len(bi.pads32[k]) < padLen {
			bi.pads32[k] = make([]float32, padLen)
		}
	}

	k := 0
	for _, c := range calls {
		for _, f := range c.Fields {
			c.Plan.Pe.Comm.CountInterp(int64(c.Plan.NQ))
			gh.interior32Into(bi.pads32[k], f)
			k++
		}
	}

	rb, cb := gh.blockLens()
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	oldCol := pe.Col.SetPhase(mpi.PhaseInterpComm)
	oldRow := pe.Row.SetPhase(mpi.PhaseInterpComm)
	if p1 == 1 {
		if len(bi.blk32) < rb {
			bi.blk32 = make([]float32, rb)
		}
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlock32Into(bi.blk32[:rb], f, n1-G)
				gh.placeRows32(bi.pads32[k], 0, bi.blk32[:rb])
				gh.rowBlock32Into(bi.blk32[:rb], f, 0)
				gh.placeRows32(bi.pads32[k], n1+G, bi.blk32[:rb])
				k++
			}
		}
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		if len(bi.sbuf32) < nF*rb {
			bi.sbuf32 = make([]float32, nF*rb)
		}
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlock32Into(bi.sbuf32[k*rb:(k+1)*rb], f, n1-G)
				k++
			}
		}
		col.Send(up, tagBatchRowUp, bi.sbuf32[:nF*rb])
		k = 0
		for _, c := range calls {
			for _, f := range c.Fields {
				gh.rowBlock32Into(bi.sbuf32[k*rb:(k+1)*rb], f, 0)
				k++
			}
		}
		col.Send(down, tagBatchRowDown, bi.sbuf32[:nF*rb])
		low := col.Recv(down, tagBatchRowUp).([]float32)
		for k = 0; k < nF; k++ {
			gh.placeRows32(bi.pads32[k], 0, low[k*rb:(k+1)*rb])
		}
		high := col.Recv(up, tagBatchRowDown).([]float32)
		for k = 0; k < nF; k++ {
			gh.placeRows32(bi.pads32[k], n1+G, high[k*rb:(k+1)*rb])
		}
	}
	if p2 == 1 {
		if len(bi.blk32) < cb {
			bi.blk32 = make([]float32, cb)
		}
		for k = 0; k < nF; k++ {
			gh.colBlock32Into(bi.blk32[:cb], bi.pads32[k], n2)
			gh.placeCols32(bi.pads32[k], 0, bi.blk32[:cb])
			gh.colBlock32Into(bi.blk32[:cb], bi.pads32[k], G)
			gh.placeCols32(bi.pads32[k], n2+G, bi.blk32[:cb])
		}
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		if len(bi.sbuf32) < nF*cb {
			bi.sbuf32 = make([]float32, nF*cb)
		}
		for k = 0; k < nF; k++ {
			gh.colBlock32Into(bi.sbuf32[k*cb:(k+1)*cb], bi.pads32[k], n2)
		}
		row.Send(right, tagBatchColRight, bi.sbuf32[:nF*cb])
		for k = 0; k < nF; k++ {
			gh.colBlock32Into(bi.sbuf32[k*cb:(k+1)*cb], bi.pads32[k], G)
		}
		row.Send(left, tagBatchColLeft, bi.sbuf32[:nF*cb])
		lo := row.Recv(left, tagBatchColRight).([]float32)
		for k = 0; k < nF; k++ {
			gh.placeCols32(bi.pads32[k], 0, lo[k*cb:(k+1)*cb])
		}
		hi := row.Recv(right, tagBatchColLeft).([]float32)
		for k = 0; k < nF; k++ {
			gh.placeCols32(bi.pads32[k], n2+G, hi[k*cb:(k+1)*cb])
		}
	}
	pe.Comm.SetPhase(old)
	pe.Col.SetPhase(oldCol)
	pe.Row.SetPhase(oldRow)

	vals := bi.vals32For(calls)
	offs := bi.offsFor()
	pd := gh.PaddedDims()
	t0 := time.Now()
	k = 0
	for _, c := range calls {
		pl := c.Plan
		nf := len(c.Fields)
		for fi := 0; fi < nf; fi++ {
			for r := 0; r < p; r++ {
				pts := pl.recvPts[r]
				npts := len(pts) / 3
				pl.sweep = sweepState{
					padded32: bi.pads32[k],
					pts:      pts,
					out32:    vals[r][offs[r]+fi*npts : offs[r]+(fi+1)*npts],
					orig:     pl.origIdx[r],
					pd:       pd,
				}
				par.ForChunks(npts, interpGrain, pl.sweep32Fn())
				pl.Evals += int64(npts)
			}
			k++
		}
		for r := 0; r < p; r++ {
			offs[r] += nf * (len(pl.recvPts[r]) / 3)
		}
	}
	pe.Comm.AddExec(mpi.PhaseInterpExec, time.Since(t0).Seconds())

	back := vals
	if p > 1 {
		old = pe.Comm.SetPhase(mpi.PhaseInterpComm)
		back = pe.Comm.AlltoallvFloat32(vals)
		pe.Comm.SetPhase(old)
	}
	pe.Comm.CountFusedInterp(len(calls), nF)

	offs = bi.offsFor()
	for _, c := range calls {
		pl := c.Plan
		nf := len(c.Fields)
		outs := pl.outsFor(nf)
		for r := 0; r < p; r++ {
			idx := pl.sendIdx[r]
			npts := len(idx)
			for fi := 0; fi < nf; fi++ {
				seg := back[r][offs[r]+fi*npts : offs[r]+(fi+1)*npts]
				for j, slot := range idx {
					outs[fi][slot] = float64(seg[j])
				}
			}
			offs[r] += nf * npts
		}
		c.Outs = outs
	}
}

// valsFor sizes the fused per-destination-rank value buffers.
func (bi *BatchInterp) valsFor(calls []*BatchCall) [][]float64 {
	p := bi.Pe.Comm.Size()
	if bi.vals == nil {
		bi.vals = make([][]float64, p)
	}
	for r := 0; r < p; r++ {
		need := 0
		for _, c := range calls {
			need += len(c.Fields) * (len(c.Plan.recvPts[r]) / 3)
		}
		if cap(bi.vals[r]) < need {
			bi.vals[r] = make([]float64, need)
		}
		bi.vals[r] = bi.vals[r][:need]
	}
	return bi.vals
}

// vals32For is valsFor on the narrow path.
func (bi *BatchInterp) vals32For(calls []*BatchCall) [][]float32 {
	p := bi.Pe.Comm.Size()
	if bi.vals32 == nil {
		bi.vals32 = make([][]float32, p)
	}
	for r := 0; r < p; r++ {
		need := 0
		for _, c := range calls {
			need += len(c.Fields) * (len(c.Plan.recvPts[r]) / 3)
		}
		if cap(bi.vals32[r]) < need {
			bi.vals32[r] = make([]float32, need)
		}
		bi.vals32[r] = bi.vals32[r][:need]
	}
	return bi.vals32
}
