package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"diffreg"
	"diffreg/internal/ckpt"
)

// Config sizes the server. Zero values take the documented defaults; set
// CacheEntries negative to disable the plan cache.
type Config struct {
	// Workers is the number of concurrent solver slots (default 2). Each
	// running job additionally spawns its own Tasks rank goroutines.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (default 16).
	// Submissions beyond the cap are rejected — HTTP 429.
	QueueDepth int
	// CacheEntries is the plan-cache capacity in operator-set collections
	// (default 2*Workers; negative disables caching).
	CacheEntries int
	// DefaultTimeout is the per-job cooperative timeout applied when a spec
	// carries none (0 = no default timeout).
	DefaultTimeout time.Duration
	// Logf receives server lifecycle lines (nil discards).
	Logf func(format string, args ...any)

	// JournalDir enables the write-ahead job journal: accepted specs,
	// attempt starts, and terminal states are appended (CRC-framed,
	// fsynced) under this directory, and a server built from the same
	// directory replays them — re-running every non-terminal job. Empty
	// disables journaling. Open returns journal errors; New panics on
	// them.
	JournalDir string
	// SpoolDir enables checkpoint spooling: checkpoint-compatible jobs
	// run with a CheckpointPath inside this directory, so a retry (or a
	// journal replay after a crash) resumes from the last flushed
	// checkpoint bit-identically instead of from scratch. Spool files are
	// reaped when their job reaches a terminal state. Empty disables
	// spooling; Open defaults it to JournalDir/spool when journaling is
	// on and retries are enabled.
	SpoolDir string
	// Retry is the error-kind-aware attempt budget (see RetryPolicy).
	// The zero value disables retries.
	Retry RetryPolicy
	// Retain caps the terminal jobs kept queryable: once exceeded, the
	// oldest terminal jobs (and their event buffers and idempotency keys)
	// are evicted so memory stops growing under sustained traffic.
	// 0 means the default (1024); negative retains everything.
	Retain int

	// MaxBatch enables job fusion when > 1: queued jobs of identical
	// fusion shape — (grid, tasks, precision, cache opt-out) — are
	// grouped up to this width and executed as one fused solver pass
	// (see diffreg.RegisterFused). Per-job results are bit-identical to
	// solo execution. 0 or 1 disables fusion.
	MaxBatch int
	// BatchWindow is how long the fusion dispatcher holds a fusable job
	// open for same-shape companions before dispatching (default 25ms).
	// Only meaningful with MaxBatch > 1.
	BatchWindow time.Duration

	// beforeRun, when set, runs in the worker immediately before a job's
	// solve starts — a test hook for making "worker busy" deterministic.
	beforeRun func(*Job)
	// runFused, when set, replaces diffreg.RegisterFused for fused
	// batches — a test hook for injecting batch-level failures
	// deterministically.
	runFused func([]diffreg.FusedJob) ([]*diffreg.Result, *diffreg.FusedInfo, error)
}

// Submission errors surfaced by Submit (mapped to HTTP statuses by the
// handler).
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrClosed    = errors.New("serve: server is shutting down")
	// ErrJournal reports that the write-ahead journal rejected the
	// accepted-record append: the 202 is a durability promise, so a job
	// that cannot be journaled is not admitted (HTTP 503).
	ErrJournal = errors.New("serve: journal write failed")
)

// SpecError marks a malformed job spec (HTTP 400).
type SpecError struct{ Err error }

func (e *SpecError) Error() string { return "serve: bad job spec: " + e.Err.Error() }
func (e *SpecError) Unwrap() error { return e.Err }

// ServerStats is the GET /stats body.
type ServerStats struct {
	Workers      int          `json:"workers"`
	QueueDepth   int          `json:"queue_depth"`
	Queued       int          `json:"queued"`
	Running      int64        `json:"running"`
	Done         int64        `json:"done"`
	Failed       int64        `json:"failed"`
	Canceled     int64        `json:"canceled"`
	Rejected     int64        `json:"rejected"`
	Deduped      int64        `json:"deduped"`
	Retained     int          `json:"retained"`
	Evicted      int64        `json:"evicted"`
	Cache        CacheStats   `json:"cache"`
	CacheEnabled bool         `json:"cache_enabled"`
	Fusion       FusionStats  `json:"fusion"`
	Retries      RetryStats   `json:"retries"`
	Journal      JournalStats `json:"journal"`
}

// Server is the registration job server: a bounded queue feeding a fixed
// worker pool, a job store, and the plan cache. Create with New, serve its
// Handler over HTTP, stop with Close.
type Server struct {
	cfg   Config
	cache *PlanCache // nil when disabled
	queue chan *Job

	journal *Journal // nil when disabled
	closing chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	seq      int64
	closed   bool
	idem     map[string]string // idempotency key -> job ID
	retained []string          // terminal jobs, oldest first (retention ring)
	stale    int               // evicted IDs still present in order

	retryTimers map[string]*time.Timer // pending backoffs by job ID

	journalReplayed  int // intact records read at startup
	journalRecovered int // non-terminal jobs re-queued at startup

	wg       sync.WaitGroup
	running  atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	canceled atomic.Int64
	rejected atomic.Int64
	deduped  atomic.Int64
	evicted  atomic.Int64

	retryScheduled atomic.Int64
	retryResumed   atomic.Int64
	retryRecovered atomic.Int64
	retryExhausted atomic.Int64

	fusionBatches  atomic.Int64
	fusionJobs     atomic.Int64
	fusionDropouts atomic.Int64
	fusionRequeued atomic.Int64

	genMu sync.Mutex
	gen   map[genKey]genPair
}

// genKey identifies one deterministic generator output; memoizing it keeps
// repeat jobs from rebuilding the input pair (and the pfft plan the
// generators spin up internally) on every submission.
type genKey struct {
	generator      string
	n              [3]int
	seedA, seedB   int64
	nt             int
	incompressible bool
}

type genPair struct{ template, reference diffreg.Volume }

// maxGenEntries bounds the generator memo; entries are a pair of n1*n2*n3
// float64 volumes each.
const maxGenEntries = 8

// volumes materializes a job's input pair, memoizing named-generator
// outputs. The generators are deterministic and Register never mutates its
// inputs (both images are scattered into per-rank fields), so sharing one
// backing array across concurrent jobs is safe.
func (s *Server) volumes(spec *JobSpec) (diffreg.Volume, diffreg.Volume, error) {
	if spec.Generator == "" {
		return spec.volumes()
	}
	// The generator memo is part of the warm path: a cache-disabled server
	// (or a NoCache job) regenerates its inputs — and the plans inside the
	// generator — per job, which is what "cold" means operationally.
	if s.cache == nil || spec.NoCache {
		return spec.volumes()
	}
	key := genKey{
		generator: spec.Generator, n: spec.N,
		seedA: spec.SeedA, seedB: spec.SeedB,
		incompressible: spec.Incompressible,
	}
	if spec.Generator == "synthetic" {
		if key.nt = spec.TimeSteps; key.nt == 0 {
			key.nt = 4
		}
	}
	s.genMu.Lock()
	if p, ok := s.gen[key]; ok {
		s.genMu.Unlock()
		return p.template, p.reference, nil
	}
	s.genMu.Unlock()
	template, reference, err := spec.volumes()
	if err != nil {
		return template, reference, err
	}
	s.genMu.Lock()
	if s.gen == nil {
		s.gen = map[genKey]genPair{}
	}
	if len(s.gen) >= maxGenEntries {
		for k := range s.gen { // drop an arbitrary entry; the memo is tiny
			delete(s.gen, k)
			break
		}
	}
	s.gen[key] = genPair{template, reference}
	s.genMu.Unlock()
	return template, reference, nil
}

// New starts the worker pool and returns the server. It panics when a
// journal-enabled configuration cannot open its journal — use Open to
// handle that error.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// jobSeq extracts the numeric suffix of a server-assigned job ID, so a
// restarted server continues the ID sequence past every replayed job.
func jobSeq(id string) int64 {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// Open starts the worker pool and returns the server. With JournalDir
// set it first replays the journal: terminal jobs come back as queryable
// stubs (idempotency keys intact), non-terminal jobs are re-queued ahead
// of new traffic and re-run — with a checkpoint resume when the crashed
// attempt left a spool file behind.
func Open(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 2 * cfg.Workers
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.SpoolDir == "" && cfg.JournalDir != "" && cfg.Retry.enabled() {
		cfg.SpoolDir = filepath.Join(cfg.JournalDir, "spool")
	}
	if cfg.SpoolDir != "" {
		if err := ckpt.EnsureSpoolDir(cfg.SpoolDir); err != nil {
			return nil, fmt.Errorf("serve: spool dir: %w", err)
		}
	}
	var journal *Journal
	var replayed []*ReplayedJob
	records := 0
	if cfg.JournalDir != "" {
		var err error
		journal, replayed, records, err = OpenJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:             cfg,
		journal:         journal,
		closing:         make(chan struct{}),
		jobs:            map[string]*Job{},
		idem:            map[string]string{},
		retryTimers:     map[string]*time.Timer{},
		journalReplayed: records,
	}
	if cfg.CacheEntries > 0 {
		s.cache = NewPlanCache(cfg.CacheEntries)
	}
	nonTerminal := 0
	for _, r := range replayed {
		if !r.Terminal {
			nonTerminal++
		}
	}
	// The queue holds QueueDepth fresh submissions; replayed jobs ride in
	// extra slots so recovery never fights admission control.
	s.queue = make(chan *Job, cfg.QueueDepth+nonTerminal)
	for _, r := range replayed {
		job := newReplayedJob(r)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if r.Idem != "" {
			s.idem[r.Idem] = job.ID
		}
		if n := jobSeq(job.ID); n > s.seq {
			s.seq = n
		}
		if r.Terminal {
			s.retained = append(s.retained, job.ID)
		} else {
			job.onTerminal = s.retireJob
			s.queue <- job
			s.journalRecovered++
		}
	}
	s.enforceRetentionLocked() // replayed stubs respect the retention cap too
	if journal != nil {
		s.logf("journal: replayed %d records (%d jobs), re-running %d non-terminal jobs",
			records, len(replayed), nonTerminal)
	}
	if cfg.MaxBatch > 1 {
		// Fusion: one dispatcher groups the queue into fused batches;
		// workers consume groups.
		if s.cfg.BatchWindow <= 0 {
			s.cfg.BatchWindow = 25 * time.Millisecond
		}
		batches := make(chan []*Job, cfg.Workers)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.dispatch(batches)
		}()
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for group := range batches {
					s.runBatch(group)
				}
			}()
		}
		return s, nil
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	return s, nil
}

// Submit validates and enqueues a job. It returns *SpecError for malformed
// specs, ErrQueueFull when admission control rejects, ErrClosed after
// Close, and ErrJournal when the journal cannot record the acceptance.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	job, _, err := s.submit(spec)
	return job, err
}

// submit additionally reports whether the returned job was deduplicated
// against an earlier submission via its idempotency key.
func (s *Server) submit(spec JobSpec) (*Job, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, &SpecError{Err: err}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if key := spec.IdempotencyKey; key != "" {
		if id, ok := s.idem[key]; ok {
			if j, ok := s.jobs[id]; ok {
				s.mu.Unlock()
				s.deduped.Add(1)
				return j, true, nil
			}
			delete(s.idem, key) // the mapped job was evicted; the key is free
		}
	}
	// Admission control gates on QueueDepth, not channel capacity: the
	// channel carries extra replay/retry slots that fresh traffic must not
	// consume. Under s.mu the queue can only drain, so once this check
	// passes the send below cannot block.
	if len(s.queue) >= s.cfg.QueueDepth {
		s.rejected.Add(1)
		s.mu.Unlock()
		return nil, false, ErrQueueFull
	}
	s.seq++
	job := newJob(fmt.Sprintf("job-%06d", s.seq), spec)
	job.onTerminal = s.retireJob
	if err := s.journal.Accepted(job.ID, spec.IdempotencyKey, &spec); err != nil {
		s.seq--
		s.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	s.queue <- job
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	if spec.IdempotencyKey != "" {
		s.idem[spec.IdempotencyKey] = job.ID
	}
	s.mu.Unlock()
	s.logf("accepted %s: %v tasks=%d", job.ID, spec.N, spec.Tasks)
	return job, false, nil
}

// retainCap resolves Config.Retain (-1 = unlimited).
func (s *Server) retainCap() int {
	switch {
	case s.cfg.Retain < 0:
		return -1
	case s.cfg.Retain == 0:
		return 1024
	default:
		return s.cfg.Retain
	}
}

// retireJob is every job's onTerminal hook: it journals the outcome,
// reaps the spool checkpoint, and rotates the job through the bounded
// retention ring. Runs outside both j.mu and s.mu.
func (s *Server) retireJob(j *Job) {
	if s.journal != nil {
		st := j.Status()
		if err := s.journal.Terminal(j.ID, st.State, st.ErrorKind, st.Error); err != nil {
			s.logf("journal: terminal %s: %v", j.ID, err)
		}
	}
	if sp := s.spoolPath(j); sp != "" {
		if err := ckpt.Reap(sp); err != nil {
			s.logf("spool: reap %s: %v", j.ID, err)
		}
	}
	s.mu.Lock()
	s.retained = append(s.retained, j.ID)
	s.enforceRetentionLocked()
	s.mu.Unlock()
}

// enforceRetentionLocked evicts the oldest terminal jobs past the
// retention cap (caller holds s.mu). Eviction releases the job, its event
// buffer, and its idempotency key; the order slice is compacted lazily
// once evicted IDs dominate it.
func (s *Server) enforceRetentionLocked() {
	limit := s.retainCap()
	if limit < 0 {
		return
	}
	for len(s.retained) > limit {
		victim := s.retained[0]
		s.retained = s.retained[1:]
		vj, ok := s.jobs[victim]
		if !ok {
			continue
		}
		delete(s.jobs, victim)
		if k := vj.Spec.IdempotencyKey; k != "" && s.idem[k] == victim {
			delete(s.idem, k)
		}
		s.stale++
		s.evicted.Add(1)
	}
	if s.stale > 64 && s.stale*2 > len(s.order) {
		keep := s.order[:0]
		for _, id := range s.order {
			if _, ok := s.jobs[id]; ok {
				keep = append(keep, id)
			}
		}
		s.order = keep
		s.stale = 0
	}
}

// Job looks up a tracked job.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cache exposes the plan cache (nil when disabled).
func (s *Server) Cache() *PlanCache { return s.cache }

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Workers: s.cfg.Workers, QueueDepth: s.cfg.QueueDepth,
		Queued:  len(s.queue),
		Running: s.running.Load(), Done: s.done.Load(), Failed: s.failed.Load(),
		Canceled: s.canceled.Load(), Rejected: s.rejected.Load(),
		Deduped: s.deduped.Load(), Evicted: s.evicted.Load(),
		CacheEnabled: s.cache != nil,
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	st.Fusion = FusionStats{
		Enabled:       s.cfg.MaxBatch > 1,
		MaxBatch:      s.cfg.MaxBatch,
		Batches:       s.fusionBatches.Load(),
		FusedJobs:     s.fusionJobs.Load(),
		EarlyDropouts: s.fusionDropouts.Load(),
		RequeuedSolo:  s.fusionRequeued.Load(),
	}
	if st.Fusion.Batches > 0 {
		st.Fusion.MeanFill = float64(st.Fusion.FusedJobs) / float64(st.Fusion.Batches) / float64(s.cfg.MaxBatch)
	}
	st.Retries = RetryStats{
		Enabled:     s.cfg.Retry.enabled(),
		MaxAttempts: s.cfg.Retry.MaxAttempts,
		Scheduled:   s.retryScheduled.Load(),
		Resumed:     s.retryResumed.Load(),
		Recovered:   s.retryRecovered.Load(),
		Exhausted:   s.retryExhausted.Load(),
	}
	st.Journal = s.journal.stats()
	s.mu.Lock()
	st.Retained = len(s.retained)
	st.Retries.Pending = len(s.retryTimers)
	st.Journal.Replayed = s.journalReplayed
	st.Journal.Recovered = s.journalRecovered
	s.mu.Unlock()
	return st
}

// Close stops admission, requests cooperative stop of every non-terminal
// job, and waits for the workers to drain. Queued jobs that never ran are
// finished as canceled.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.closing) // wakes idle event-stream watchers so Shutdown drains fast
	s.stopRetryTimersLocked()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.stop.Store(true)
		}
	}
	close(s.queue)
	s.wg.Wait()
	// Workers have drained: anything still queued was closed out below in
	// runJob; anything never dequeued is finished here.
	for _, j := range jobs {
		if !j.State().Terminal() {
			j.finish(JobCanceled, nil, "server shutdown before start", "shutdown", nil)
			s.canceled.Add(1)
		}
	}
	if err := s.journal.Close(); err != nil {
		s.logf("journal: close: %v", err)
	}
	s.logf("server closed: %d done, %d failed, %d canceled", s.done.Load(), s.failed.Load(), s.canceled.Load())
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sourceRecorder wraps the cache to record whether this job's lease was a
// hit (reported in the result body).
type sourceRecorder struct {
	pc  *PlanCache
	hit atomic.Bool
}

func (r *sourceRecorder) Acquire(n [3]int, tasks int, precision string, slots int) diffreg.PlanLease {
	lease := r.pc.Acquire(n, tasks, precision, slots)
	if pl, ok := lease.(*planLease); ok && pl.Hit() {
		r.hit.Store(true)
	}
	return lease
}

// runJob executes one dequeued job end to end.
func (s *Server) runJob(job *Job) {
	if !job.setRunning() {
		s.canceled.Add(1) // canceled while queued; the worker skips it
		return
	}
	s.runClaimed(job)
}

func buildResult(res *diffreg.Result, wall float64, rec *sourceRecorder, spec *JobSpec) *JobResult {
	jr := &JobResult{
		Converged: res.Converged, Interrupted: res.Interrupted,
		NewtonIters: res.NewtonIters, HessianMatvecs: res.HessianMatvecs,
		MisfitInit: res.MisfitInit, MisfitFinal: res.MisfitFinal,
		GnormInit: res.GnormInit, GnormFinal: res.GnormFinal,
		DetMin: res.DetMin, DetMax: res.DetMax, DetMean: res.DetMean,
		Degradations:   res.Degradations,
		TimeToSolution: wall,
		FFTs:           res.FFTs, InterpSweeps: res.InterpSweeps,
	}
	if rec != nil {
		jr.CacheHit = rec.hit.Load()
	}
	if spec.ReturnFields {
		jr.Warped = res.Warped.Data
		jr.Velocity = make([][]float64, 3)
		for d := 0; d < 3; d++ {
			jr.Velocity[d] = res.Velocity[d].Data
		}
	}
	return jr
}

// defaultListLimit caps GET /jobs responses when the client passes no
// ?limit — with the retention ring the job store is bounded but still
// large, and a full dump is rarely what a poller wants.
const defaultListLimit = 256

// Handler returns the HTTP API:
//
//	POST /jobs            submit a JobSpec        -> 202 {id} | 400 | 429 | 503
//	GET  /jobs            list jobs (newest first; ?limit=N ?state=S) -> 200 [{id, state}]
//	GET  /jobs/{id}        job status + result     -> 200 JobStatus | 404
//	GET  /jobs/{id}/events NDJSON progress stream  -> 200 (blocks until terminal)
//	POST /jobs/{id}/cancel cooperative cancel      -> 202 {state} | 404
//	GET  /stats            server + cache counters -> 200 ServerStats
//	GET  /healthz          liveness                -> 200 "ok"
//	GET  /readyz           readiness               -> 200 "ready" | 503 draining/saturated
//
// POST /jobs honors an Idempotency-Key header (overriding the spec
// field): re-POSTing a key returns the original job with "deduped":true
// instead of running it twice.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<30))
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
			return
		}
		if key := r.Header.Get("Idempotency-Key"); key != "" {
			spec.IdempotencyKey = key
		}
		job, deduped, err := s.submit(spec)
		switch {
		case err == nil:
			body := map[string]any{"id": job.ID, "state": job.State()}
			if deduped {
				body["deduped"] = true
			}
			writeJSON(w, http.StatusAccepted, body)
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrClosed), errors.Is(err, ErrJournal):
			httpError(w, http.StatusServiceUnavailable, err.Error())
		default:
			httpError(w, http.StatusBadRequest, err.Error())
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		limit := defaultListLimit
		if q := r.URL.Query().Get("limit"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 1 {
				httpError(w, http.StatusBadRequest, "limit must be a positive integer")
				return
			}
			limit = v
		}
		var stateFilter JobState
		if q := r.URL.Query().Get("state"); q != "" {
			switch st := JobState(q); st {
			case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled:
				stateFilter = st
			default:
				httpError(w, http.StatusBadRequest, "unknown state (want queued|running|done|failed|canceled)")
				return
			}
		}
		s.mu.Lock()
		list := make([]map[string]any, 0, min(limit, len(s.order)))
		for i := len(s.order) - 1; i >= 0 && len(list) < limit; i-- {
			job, ok := s.jobs[s.order[i]]
			if !ok {
				continue // evicted from the retention ring
			}
			st := job.State()
			if stateFilter != "" && st != stateFilter {
				continue
			}
			list = append(list, map[string]any{"id": job.ID, "state": st})
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, list)
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		// A reconnecting client passes ?from=N with N = the number of
		// events it has already consumed; the stream resumes at event N
		// exactly — no event is replayed, none is skipped.
		next := 0
		if from := r.URL.Query().Get("from"); from != "" {
			v, err := strconv.Atoi(from)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, "from must be a non-negative integer")
				return
			}
			next = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			evs, notify, terminal := job.EventsSince(next)
			for _, ev := range evs {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			next += len(evs)
			if flusher != nil {
				flusher.Flush()
			}
			if terminal && len(evs) == 0 {
				return
			}
			if terminal {
				continue // drain whatever the terminal transition appended
			}
			select {
			case <-notify:
			case <-s.closing:
				// Server shutdown: Close finishes every job, so wait for
				// this one's terminal transition, drain the tail on the
				// next loop pass, and end the stream — instead of idling
				// out http.Server.Shutdown's full drain deadline.
				select {
				case <-job.Done():
				case <-r.Context().Done():
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"id": job.ID, "state": job.RequestCancel()})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness is distinct from liveness: a draining or saturated
		// server is alive (healthz 200) but should be rotated out of a
		// load balancer (readyz 503).
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		switch {
		case closed:
			httpError(w, http.StatusServiceUnavailable, "draining: server is shutting down")
		case len(s.queue) >= s.cfg.QueueDepth:
			httpError(w, http.StatusServiceUnavailable, "saturated: job queue full")
		default:
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
