// Package par provides the shared-memory execution layer of the solver: a
// process-wide worker pool with deterministic static chunking, playing the
// role OpenMP plays under AccFFT in the paper's single-node baseline. The
// hot kernels (per-pencil 1D FFT lines, Fourier-space diagonal scalings,
// tricubic stencil sweeps, pointwise vector ops) submit loops here instead
// of iterating inline, so a single rank exploits all cores while the
// simulated MPI ranks in package mpi provide the distributed axis.
//
// Determinism guarantee: chunk boundaries are a pure function of the trip
// count n and the caller's grain — never of the worker count or of
// scheduling — and reductions combine per-chunk partials in chunk order on
// the calling goroutine. Floating-point results are therefore bit-identical
// for every pool size, including 1; which worker executes which chunk can
// vary freely because chunks touch disjoint data. This is what lets the
// test layer assert exact equality between serial and parallel runs.
//
// The pool is global to the process and shared by all simulated MPI ranks:
// helper goroutines are started lazily up to Workers()-1, and the
// submitting goroutine always participates in its own job, so a loop makes
// progress even when every helper is busy with other ranks' work (no
// nested-pool deadlock is possible).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultGrain is the target number of items per chunk for pointwise
	// O(1)-per-item loops (For). Coarse-grained callers (per-line FFTs,
	// tricubic stencils) pass their own grain to Chunked.
	DefaultGrain = 4096
	// maxChunks bounds the chunk count so per-chunk bookkeeping stays
	// negligible; it is a constant, so chunk boundaries remain a pure
	// function of (n, grain).
	maxChunks = 256
	// maxHelpers bounds the number of pool goroutines ever started.
	maxHelpers = 64
)

var (
	// workers holds the configured pool size; 0 means GOMAXPROCS.
	workers atomic.Int64

	helperMu sync.Mutex
	helpers  int
	queue    = make(chan *job, 4*maxHelpers)

	statCalls  atomic.Int64
	statChunks atomic.Int64
	statWallNs atomic.Int64
	statBusyNs atomic.Int64
)

// Workers returns the effective pool size: the value set by SetWorkers, or
// GOMAXPROCS when unset.
func Workers() int {
	if w := workers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the pool size (1 disables parallel execution; 0 restores
// the GOMAXPROCS default) and returns the previous setting (0 if it was the
// default). Results are bit-identical for every setting; only wall-clock
// time changes.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(workers.Swap(int64(n)))
}

// Stats is a snapshot of the pool's cumulative activity. Busy is the sum of
// per-chunk execution times over all workers, Wall the sum of the parallel
// regions' elapsed times; Busy/Wall over an interval is the achieved
// intra-rank speedup of that interval.
type Stats struct {
	Calls  int64
	Chunks int64
	Wall   time.Duration
	Busy   time.Duration
}

// Snapshot returns the cumulative pool statistics.
func Snapshot() Stats {
	return Stats{
		Calls:  statCalls.Load(),
		Chunks: statChunks.Load(),
		Wall:   time.Duration(statWallNs.Load()),
		Busy:   time.Duration(statBusyNs.Load()),
	}
}

// Speedup returns the intra-rank speedup achieved between two snapshots
// (1 when no pool activity occurred).
func Speedup(before, after Stats) float64 {
	wall := (after.Wall - before.Wall).Seconds()
	busy := (after.Busy - before.Busy).Seconds()
	if wall <= 0 || busy <= 0 {
		return 1
	}
	return busy / wall
}

// job is one parallel loop in flight: a shared chunk cursor plus completion
// tracking. Helpers that pick up an exhausted job return immediately.
type job struct {
	n      int
	chunks int
	fn     func(c, lo, hi int)
	next   atomic.Int64
	busyNs atomic.Int64
	wg     sync.WaitGroup
}

// run grabs chunks off the shared cursor until none remain.
func (j *job) run() {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		lo, hi := chunkBounds(j.n, j.chunks, c)
		t0 := time.Now()
		j.fn(c, lo, hi)
		j.busyNs.Add(int64(time.Since(t0)))
		j.wg.Done()
	}
}

// chunkCount returns the number of chunks for n items at the given grain —
// a pure function of its arguments, independent of the worker count.
func chunkCount(n, grain int) int {
	if grain < 1 {
		grain = 1
	}
	c := (n + grain - 1) / grain
	if c > maxChunks {
		c = maxChunks
	}
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBounds returns the half-open range [lo, hi) of chunk c out of the
// balanced chunks of n items (the same balanced-share rule as grid.Share).
func chunkBounds(n, chunks, c int) (lo, hi int) {
	return c * n / chunks, (c + 1) * n / chunks
}

// ensureHelpers lazily starts pool goroutines so that at least want helpers
// exist (capped at maxHelpers). Helpers persist for the process lifetime.
func ensureHelpers(want int) {
	if want > maxHelpers {
		want = maxHelpers
	}
	if want <= 0 {
		return
	}
	helperMu.Lock()
	for helpers < want {
		helpers++
		go func() {
			for j := range queue {
				j.run()
			}
		}()
	}
	helperMu.Unlock()
}

// forChunks runs fn(c, lo, hi) for every chunk of the fixed decomposition,
// on the pool when it pays and inline otherwise. It returns only when every
// chunk has completed.
func forChunks(n, chunks int, fn func(c, lo, hi int)) {
	statCalls.Add(1)
	statChunks.Add(int64(chunks))
	w := Workers()
	t0 := time.Now()
	if w <= 1 || chunks == 1 {
		for c := 0; c < chunks; c++ {
			lo, hi := chunkBounds(n, chunks, c)
			fn(c, lo, hi)
		}
		d := int64(time.Since(t0))
		statWallNs.Add(d)
		statBusyNs.Add(d)
		return
	}
	j := &job{n: n, chunks: chunks, fn: fn}
	j.wg.Add(chunks)
	fan := w - 1
	if fan > chunks-1 {
		fan = chunks - 1
	}
	ensureHelpers(fan)
	// Wake up to fan helpers; if the queue is full every helper is already
	// busy, and the caller simply executes the chunks itself.
publish:
	for i := 0; i < fan; i++ {
		select {
		case queue <- j:
		default:
			break publish
		}
	}
	j.run()
	j.wg.Wait()
	statWallNs.Add(int64(time.Since(t0)))
	statBusyNs.Add(j.busyNs.Load())
}

// For splits [0, n) into deterministic contiguous chunks of roughly
// DefaultGrain items and runs fn(lo, hi) for each, concurrently on the
// pool. fn invocations must touch disjoint data; chunk-to-worker
// assignment is unspecified.
func For(n int, fn func(lo, hi int)) {
	Chunked(n, DefaultGrain, fn)
}

// Chunked is the batched variant of For for per-line work: grain is the
// target number of items per chunk, so callers whose items are themselves
// expensive (a 1D FFT line, a batch of tricubic stencils) get enough chunks
// to balance load. fn may allocate per-call scratch: it is invoked once per
// chunk, not once per item.
func Chunked(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	forChunks(n, chunkCount(n, grain), func(_, lo, hi int) { fn(lo, hi) })
}

// Chunks returns the number of chunks Chunked/ForChunks would use for n
// items at the given grain — a pure function of its arguments, exported so
// allocation-free callers can size per-chunk scratch ahead of time. The
// result never exceeds MaxChunks.
func Chunks(n, grain int) int { return chunkCount(n, grain) }

// MaxChunks is the upper bound on the chunk count of any parallel region;
// per-chunk scratch pools never need more than MaxChunks slots.
const MaxChunks = maxChunks

// ForChunks runs fn(c, lo, hi) for every chunk of the deterministic
// decomposition of n items at the given grain, concurrently on the pool.
// Unlike Chunked it passes the chunk index c (0 <= c < Chunks(n, grain)) and
// invokes fn directly with no wrapper closure, so a caller that retains fn
// across calls (e.g. a kernel stored on a plan) performs zero allocations
// per region when the pool is serial. fn invocations must touch disjoint
// data; per-chunk scratch indexed by c is safe because no two chunks share
// an index.
func ForChunks(n, grain int, fn func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	forChunks(n, chunkCount(n, grain), fn)
}

// Sum reduces fn over [0, n): fn returns the partial sum of its chunk, and
// the partials are added in chunk order with fixed association, so the
// result is bit-identical for every pool size.
func Sum(n int, fn func(lo, hi int) float64) float64 {
	return Reduce(n, 0, fn, func(a, b float64) float64 { return a + b })
}

// Reduce is the general deterministic reduction: per-chunk partials from fn
// are combined left-to-right in chunk order as acc = combine(acc, partial),
// starting from init. The chunk decomposition depends only on n, so the
// association — and hence the floating-point result — is independent of the
// worker count.
func Reduce(n int, init float64, fn func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return init
	}
	chunks := chunkCount(n, DefaultGrain)
	if chunks == 1 {
		// Single chunk: identical association to the plain serial loop.
		statCalls.Add(1)
		statChunks.Add(1)
		t0 := time.Now()
		acc := combine(init, fn(0, n))
		d := int64(time.Since(t0))
		statWallNs.Add(d)
		statBusyNs.Add(d)
		return acc
	}
	partials := make([]float64, chunks)
	forChunks(n, chunks, func(c, lo, hi int) { partials[c] = fn(lo, hi) })
	acc := init
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}
