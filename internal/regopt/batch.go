package regopt

import (
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/semilag"
	"diffreg/internal/spectral"
)

// Job-fusion glue: the spectral preconditioner is a pure per-mode
// diagonal, so B independent jobs' ApplyPrec calls can ride one fused
// 3·B-field transform pass on a shared executor operator set. Each job
// keeps its own symbol (its own beta, regularization norm, and — for the
// shifted variant — its current Levenberg shift), evaluated with exactly
// the solo ApplyPrec expression, so fused results are bit-identical.

// PrecFusable reports whether this problem's preconditioner application
// is the pure spectral diagonal and may therefore join a fused batch
// pass. The two-level preconditioner runs coarse-grid solves and must
// stay solo. (A problem whose two-level build later degrades to the
// diagonal simply keeps running solo — the solo path applies the same
// diagonal, so fusability is safely conservative.)
func (p *Problem) PrecFusable() bool { return !p.Opt.TwoLevelPrec }

// precSymbol returns the diagonal symbol of the preconditioner in the
// problem's current state; beta and the shift are read now, matching the
// call-time reads of the solo ApplyPrec.
func (p *Problem) precSymbol() func(k1, k2, k3 int) float64 {
	beta := p.Opt.Beta
	h2 := p.Opt.Reg == RegH2
	sigma := 0.0
	if p.Opt.ShiftedPrec {
		sigma = p.sigma
	}
	return func(k1, k2, k3 int) float64 {
		q := float64(k1*k1 + k2*k2 + k3*k3)
		a := q
		if h2 {
			a = q * q
		}
		if sigma == 0 && a == 0 {
			a = 1
		}
		return 1 / (beta*a + sigma)
	}
}

// FusedPrec builds the batch scheduler's fused-preconditioner executor
// over the given problems. exec is an operator set reserved for the
// scheduler (bound to the rank's base communicator); jobs indexes ps.
// Each returned vector is fresh and allocated on its job's own pencil.
func FusedPrec(exec *spectral.Ops, ps []*Problem) func(jobs []int, rs []*field.Vector) []*field.Vector {
	return func(jobs []int, rs []*field.Vector) []*field.Vector {
		outs := make([]*field.Vector, len(rs))
		fs := make([]func(k1, k2, k3 int) float64, len(rs))
		for i, j := range jobs {
			outs[i] = field.NewVector(ps[j].Pe)
			fs[i] = ps[j].precSymbol()
		}
		exec.DiagVectorBatch(rs, outs, fs)
		return outs
	}
}

// FusedInterp builds the batch scheduler's fused gather executor: one
// BatchInterp bound to the executor pencil on the rank's base
// communicator, fed the round's parked interp payloads in job order. The
// payloads are the *semilag.BatchCall values posted by the problems'
// transport gates; Run fills their Outs bit-identically to the solo
// exchanges.
func FusedInterp(exec *grid.Pencil) func(jobs []int, payloads []any) {
	bi := semilag.NewBatchInterp(exec)
	return func(jobs []int, payloads []any) {
		calls := make([]*semilag.BatchCall, len(payloads))
		for i, p := range payloads {
			calls[i] = p.(*semilag.BatchCall)
		}
		bi.Run(calls)
	}
}

// InterpGate builds the per-job transport gate: each intercepted
// InterpMany parks a CallInterp request keyed by the call's precision and
// field count; the scheduler fuses same-key rounds through FusedInterp
// and lets singletons fall back to their solo exchange.
func InterpGate(park func(key string, payload any) bool) semilag.Gate {
	return func(call *semilag.BatchCall) bool {
		return park(call.Key(), call)
	}
}
