package mpi

import (
	"fmt"
	"math"
	"testing"
)

func run(t *testing.T, p int, fn func(c *Comm) error) []*Stats {
	t.Helper()
	stats, err := Run(p, DefaultCostModel(), fn)
	if err != nil {
		t.Fatalf("p=%d: %v", p, err)
	}
	return stats
}

func TestSendRecv(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		run(t, p, func(c *Comm) error {
			// Ring exchange: send rank to the right, receive from the left.
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			c.Send(right, 7, []float64{float64(c.Rank())})
			got := c.Recv(left, 7).([]float64)
			if int(got[0]) != left {
				return fmt.Errorf("rank %d: got %v want %d", c.Rank(), got, left)
			}
			return nil
		})
	}
}

func TestSendCopiesPayload(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []float64{1, 2, 3}
			c.Send(1, 0, data)
			data[0] = 99 // must not be visible to the receiver
			c.Barrier()
		} else {
			got := c.Recv(0, 0).([]float64)
			c.Barrier()
			if got[0] != 1 {
				return fmt.Errorf("payload aliased: %v", got)
			}
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 10, []float64{10})
			c.Send(1, 20, []float64{20})
		} else {
			// Receive out of order: tag 20 first.
			b := c.Recv(0, 20).([]float64)
			a := c.Recv(0, 10).([]float64)
			if a[0] != 10 || b[0] != 20 {
				return fmt.Errorf("tag matching broken: %v %v", a, b)
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		run(t, p, func(c *Comm) error {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
			return nil
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		for root := 0; root < p; root++ {
			root := root
			run(t, p, func(c *Comm) error {
				var data []float64
				if c.Rank() == root {
					data = []float64{3.5, float64(root)}
				}
				out := c.Bcast(root, data).([]float64)
				if out[0] != 3.5 || int(out[1]) != root {
					return fmt.Errorf("rank %d: bad bcast %v", c.Rank(), out)
				}
				return nil
			})
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		p := p
		run(t, p, func(c *Comm) error {
			sum := c.AllreduceSum(float64(c.Rank() + 1))
			want := float64(p*(p+1)) / 2
			if sum != want {
				return fmt.Errorf("sum %g want %g", sum, want)
			}
			if mx := c.AllreduceMax(float64(c.Rank())); mx != float64(p-1) {
				return fmt.Errorf("max %g want %d", mx, p-1)
			}
			if mn := c.AllreduceMin(float64(c.Rank())); mn != 0 {
				return fmt.Errorf("min %g want 0", mn)
			}
			return nil
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 5} {
		p := p
		run(t, p, func(c *Comm) error {
			// Variable lengths: rank r contributes r+1 copies of r.
			mine := make([]float64, c.Rank()+1)
			for i := range mine {
				mine[i] = float64(c.Rank())
			}
			all := c.Allgather(mine)
			want := 0
			for r := 0; r < p; r++ {
				want += r + 1
			}
			if len(all) != want {
				return fmt.Errorf("len %d want %d", len(all), want)
			}
			idx := 0
			for r := 0; r < p; r++ {
				for i := 0; i <= r; i++ {
					if int(all[idx]) != r {
						return fmt.Errorf("slot %d: got %v want %d", idx, all[idx], r)
					}
					idx++
				}
			}
			return nil
		})
	}
}

func TestAlltoallv(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6} {
		p := p
		run(t, p, func(c *Comm) error {
			send := make([][]float64, p)
			for dest := 0; dest < p; dest++ {
				// rank r sends [r, dest] with length r+dest+1 to dest.
				s := make([]float64, c.Rank()+dest+1)
				for i := range s {
					s[i] = float64(100*c.Rank() + dest)
				}
				send[dest] = s
			}
			recv := c.AlltoallvFloat64(send)
			for src := 0; src < p; src++ {
				wantLen := src + c.Rank() + 1
				if len(recv[src]) != wantLen {
					return fmt.Errorf("from %d: len %d want %d", src, len(recv[src]), wantLen)
				}
				for _, v := range recv[src] {
					if int(v) != 100*src+c.Rank() {
						return fmt.Errorf("from %d: bad value %v", src, v)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoallvComplex(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		send := make([][]complex128, p)
		for dest := 0; dest < p; dest++ {
			send[dest] = []complex128{complex(float64(c.Rank()), float64(dest))}
		}
		recv := c.AlltoallvComplex(send)
		for src := 0; src < p; src++ {
			want := complex(float64(src), float64(c.Rank()))
			if recv[src][0] != want {
				return fmt.Errorf("from %d: got %v want %v", src, recv[src][0], want)
			}
		}
		return nil
	})
}

func TestSplit(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		// 2x3 process grid: row communicator shares r1, col shares r2.
		r1, r2 := c.Rank()/3, c.Rank()%3
		row := c.Split(r1, r2)
		col := c.Split(r2, r1)
		if row.Size() != 3 || col.Size() != 2 {
			return fmt.Errorf("sizes %d %d", row.Size(), col.Size())
		}
		if row.Rank() != r2 || col.Rank() != r1 {
			return fmt.Errorf("ranks %d %d want %d %d", row.Rank(), col.Rank(), r2, r1)
		}
		// Collectives on the sub-communicators must stay independent.
		s := row.AllreduceSum(float64(c.Rank()))
		want := float64(3*r1*3 + 3) // sum of world ranks in this row
		wantExact := 0.0
		for k := 0; k < 3; k++ {
			wantExact += float64(r1*3 + k)
		}
		_ = want
		if s != wantExact {
			return fmt.Errorf("row sum %g want %g", s, wantExact)
		}
		s2 := col.AllreduceSum(1)
		if s2 != 2 {
			return fmt.Errorf("col sum %g want 2", s2)
		}
		return nil
	})
}

func TestCostAccounting(t *testing.T) {
	stats := run(t, 2, func(c *Comm) error {
		c.SetPhase(PhaseFFTComm)
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 1000))
			c.Recv(1, 1)
		} else {
			c.Send(0, 1, make([]float64, 1000))
			c.Recv(0, 0)
		}
		return nil
	})
	cm := DefaultCostModel()
	wantTime := cm.Ts + cm.Tw*8000
	for r, s := range stats {
		if s.Messages[PhaseFFTComm] != 1 {
			t.Errorf("rank %d: %d messages, want 1", r, s.Messages[PhaseFFTComm])
		}
		if s.BytesRecv[PhaseFFTComm] != 8000 {
			t.Errorf("rank %d: %d bytes, want 8000", r, s.BytesRecv[PhaseFFTComm])
		}
		if math.Abs(s.ModeledComm[PhaseFFTComm]-wantTime) > 1e-15 {
			t.Errorf("rank %d: modeled %g want %g", r, s.ModeledComm[PhaseFFTComm], wantTime)
		}
	}
}

func TestRunPropagatesError(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{
		PhaseOther: "other", PhaseFFTComm: "fft-comm", PhaseFFTExec: "fft-exec",
		PhaseInterpComm: "interp-comm", PhaseInterpExec: "interp-exec",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d: got %q want %q", p, p.String(), want)
		}
	}
}

func TestConcurrentWorlds(t *testing.T) {
	// Two independent parallel runs in the same process must not interfere
	// (the solver may nest runs, e.g. a benchmark harness).
	done := make(chan error, 2)
	for w := 0; w < 2; w++ {
		w := w
		go func() {
			_, err := Run(3, DefaultCostModel(), func(c *Comm) error {
				for i := 0; i < 20; i++ {
					sum := c.AllreduceSum(float64(c.Rank() + w))
					want := float64(0+1+2) + 3*float64(w)
					if sum != want {
						return fmt.Errorf("world %d: sum %g want %g", w, sum, want)
					}
				}
				return nil
			})
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestNestedSplits(t *testing.T) {
	// Split a split: a 2x2 grid of a 8-rank world, then rows of rows.
	run(t, 8, func(c *Comm) error {
		half := c.Split(c.Rank()/4, c.Rank()%4) // two groups of 4
		if half.Size() != 4 {
			return fmt.Errorf("first split size %d", half.Size())
		}
		quarter := half.Split(half.Rank()/2, half.Rank()%2) // pairs
		if quarter.Size() != 2 {
			return fmt.Errorf("second split size %d", quarter.Size())
		}
		// Collectives at all three levels stay independent.
		if s := c.AllreduceSum(1); s != 8 {
			return fmt.Errorf("world sum %g", s)
		}
		if s := half.AllreduceSum(1); s != 4 {
			return fmt.Errorf("half sum %g", s)
		}
		if s := quarter.AllreduceSum(1); s != 2 {
			return fmt.Errorf("quarter sum %g", s)
		}
		return nil
	})
}

func TestAlltoallvEmptyPayloads(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		send := make([][]float64, 4)
		// Only rank 0 sends anything, and only to rank 3.
		if c.Rank() == 0 {
			send[3] = []float64{42}
		}
		recv := c.AlltoallvFloat64(send)
		if c.Rank() == 3 {
			if len(recv[0]) != 1 || recv[0][0] != 42 {
				return fmt.Errorf("rank 3: got %v", recv[0])
			}
		}
		for src, data := range recv {
			if c.Rank() == 3 && src == 0 {
				continue
			}
			if len(data) != 0 {
				return fmt.Errorf("rank %d: unexpected data from %d", c.Rank(), src)
			}
		}
		return nil
	})
}

func TestWorldRank(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.WorldRank() != c.Rank() {
			return fmt.Errorf("world rank %d via sub %d", c.Rank(), sub.WorldRank())
		}
		return nil
	})
}

func TestStatsTotalModeled(t *testing.T) {
	stats := run(t, 2, func(c *Comm) error {
		c.SetPhase(PhaseFFTComm)
		c.Send(1-c.Rank(), 5, []float64{1})
		c.Recv(1-c.Rank(), 5)
		c.SetPhase(PhaseInterpComm)
		c.Send(1-c.Rank(), 6, []float64{1, 2})
		c.Recv(1-c.Rank(), 6)
		return nil
	})
	for r, s := range stats {
		total := s.ModeledComm[PhaseFFTComm] + s.ModeledComm[PhaseInterpComm]
		if s.TotalModeled() != total {
			t.Errorf("rank %d: TotalModeled %g want %g", r, s.TotalModeled(), total)
		}
	}
}
