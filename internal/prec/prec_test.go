package prec

import "testing"

func TestParseCanonicalAndAliases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"", F64},
		{"float64", F64},
		{"f64", F64},
		{"fp64", F64},
		{"double", F64},
		{"float32", F32},
		{"f32", F32},
		{"fp32", F32},
		{"single", F32},
	} {
		got, err := Parse(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Parse(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"float16", "FLOAT64", "wide", "32"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestStringAndWireBytes(t *testing.T) {
	if F64.String() != "float64" || F32.String() != "float32" {
		t.Fatalf("String: %q, %q", F64.String(), F32.String())
	}
	if F64.WireBytesPerValue() != 8 || F32.WireBytesPerValue() != 4 {
		t.Fatalf("WireBytesPerValue: %d, %d", F64.WireBytesPerValue(), F32.WireBytesPerValue())
	}
	// Round-trip: Parse(p.String()) is the identity, so canonical strings
	// written into checkpoints and cache keys always parse back.
	for _, p := range []Precision{F64, F32} {
		if got, err := Parse(p.String()); err != nil || got != p {
			t.Errorf("Parse(%s.String()) = %v, %v", p, got, err)
		}
	}
}
