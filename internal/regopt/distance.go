package regopt

import "diffreg/internal/field"

// Distance is an image similarity measure. The paper's formulation is
// modular in this choice ("there are no significant changes in our
// formulation or algorithm if we would consider other, popular distance
// measures", §II-A): a measure supplies its value, the terminal adjoint
// condition lambda(1) = -dD/d(rho1) of eq. (3), and the terminal condition
// of the incremental adjoint, lambda~(1) = -(d^2 D) rho~(1).
type Distance interface {
	Name() string
	// Eval returns D(rho1, rhoR).
	Eval(rho1, rhoR *field.Scalar) float64
	// TerminalAdjoint returns lambda(1) = -dD/d(rho1).
	TerminalAdjoint(rho1, rhoR *field.Scalar) *field.Scalar
	// IncTerminal returns lambda~(1) = -(d^2 D/d rho1^2) applied to
	// rho~(1), the terminal condition of (5c)/(5d).
	IncTerminal(rho1, rhoR *field.Scalar, rhoT1 []float64) *field.Scalar
}

// L2Distance is the paper's squared L2 misfit 1/2 ||rho1 - rhoR||^2.
type L2Distance struct{}

// Name implements Distance.
func (L2Distance) Name() string { return "L2" }

// Eval implements Distance.
func (L2Distance) Eval(rho1, rhoR *field.Scalar) float64 {
	d := rho1.Clone()
	d.Axpy(-1, rhoR)
	return 0.5 * d.Dot(d)
}

// TerminalAdjoint implements Distance: lambda(1) = rhoR - rho1.
func (L2Distance) TerminalAdjoint(rho1, rhoR *field.Scalar) *field.Scalar {
	out := rhoR.Clone()
	out.Axpy(-1, rho1)
	return out
}

// IncTerminal implements Distance: the L2 Hessian is the identity, so
// lambda~(1) = -rho~(1).
func (L2Distance) IncTerminal(rho1, _ *field.Scalar, rhoT1 []float64) *field.Scalar {
	out := field.NewScalar(rho1.P)
	for i := range out.Data {
		out.Data[i] = -rhoT1[i]
	}
	return out
}

// NCCDistance is the (squared) normalized cross correlation measure
// D = 1 - <u,w>^2 / (<u,u><w,w>) with u, w the mean-centered deformed
// template and reference. It is invariant to affine intensity rescalings
// of either image, which makes it the measure of choice for multi-scanner
// data where L2 fails.
type NCCDistance struct{}

// Name implements Distance.
func (NCCDistance) Name() string { return "NCC" }

// centered returns the mean-free copy of s.
func centered(s *field.Scalar) *field.Scalar {
	out := s.Clone()
	m := s.Mean()
	for i := range out.Data {
		out.Data[i] -= m
	}
	return out
}

// nccTerms computes the inner products of the centered fields.
func nccTerms(rho1, rhoR *field.Scalar) (u, w *field.Scalar, a, b, c float64) {
	u = centered(rho1)
	w = centered(rhoR)
	a = u.Dot(w)
	b = u.Dot(u)
	c = w.Dot(w)
	if b < 1e-300 {
		b = 1e-300
	}
	if c < 1e-300 {
		c = 1e-300
	}
	return
}

// Eval implements Distance.
func (NCCDistance) Eval(rho1, rhoR *field.Scalar) float64 {
	_, _, a, b, c := nccTerms(rho1, rhoR)
	return 1 - a*a/(b*c)
}

// TerminalAdjoint implements Distance:
// -dD/d rho1 = (2a/(bc)) (w - (a/b) u), already mean free.
func (NCCDistance) TerminalAdjoint(rho1, rhoR *field.Scalar) *field.Scalar {
	u, w, a, b, c := nccTerms(rho1, rhoR)
	out := w.Clone()
	out.Axpy(-a/b, u)
	out.Scale(2 * a / (b * c))
	return out
}

// IncTerminal implements Distance: the exact second derivative of D
// applied to h = rho~(1). With da = <h~, w>, db = 2 <h~, u> (h~ the
// centered perturbation):
//
//	d(gradD)[h] = (2 da/(bc)) w - (2a db/(b^2 c)) w
//	            - (4a da/(b^2 c)) u + (4a^2 db/(b^3 c)) u
//	            - ... - (2a^2/(b^2 c)) h~   [sign: gradD = -TerminalAdjoint]
//
// and lambda~(1) = -d(gradD)[h]. The beta-scaled regularization term of
// the reduced Hessian keeps the overall operator positive on the Krylov
// subspace; PCG truncates in the rare indefinite case.
func (NCCDistance) IncTerminal(rho1, rhoR *field.Scalar, rhoT1 []float64) *field.Scalar {
	u, w, a, b, c := nccTerms(rho1, rhoR)
	h := field.NewScalar(rho1.P)
	copy(h.Data, rhoT1)
	hC := centered(h)
	da := hC.Dot(w)
	db := 2 * hC.Dot(u)

	// gradD = -(2a/(bc)) w + (2a^2/(b^2 c)) u; differentiate in h.
	out := field.NewScalar(rho1.P)
	out.Axpy(-2*da/(b*c), w)
	out.Axpy(2*a*db/(b*b*c), w)
	out.Axpy(4*a*da/(b*b*c), u)
	out.Axpy(-4*a*a*db/(b*b*b*c), u)
	out.Axpy(2*a*a/(b*b*c), hC)
	// out now holds d(gradD)[h]; lambda~(1) = -that.
	out.Scale(-1)
	return out
}

// WeightedL2Distance is the masked / weighted squared L2 misfit
// 1/2 ||sqrt(W)(rho1 - rhoR)||^2 with a fixed nonnegative weight image W
// (1 inside the region of interest, 0 or small outside). Radiotherapy and
// lung workflows mask out regions that must not drive the deformation;
// the optimality system only changes through the terminal conditions.
type WeightedL2Distance struct {
	// W is the weight image (same grid as the registered images).
	W *field.Scalar
}

// Name implements Distance.
func (d WeightedL2Distance) Name() string { return "weighted-L2" }

// Eval implements Distance.
func (d WeightedL2Distance) Eval(rho1, rhoR *field.Scalar) float64 {
	local := 0.0
	for i := range rho1.Data {
		v := rho1.Data[i] - rhoR.Data[i]
		local += d.W.Data[i] * v * v
	}
	return 0.5 * rho1.P.Comm.AllreduceSum(local) * rho1.P.Grid.CellVolume()
}

// TerminalAdjoint implements Distance: lambda(1) = W (rhoR - rho1).
func (d WeightedL2Distance) TerminalAdjoint(rho1, rhoR *field.Scalar) *field.Scalar {
	out := rhoR.Clone()
	out.Axpy(-1, rho1)
	for i := range out.Data {
		out.Data[i] *= d.W.Data[i]
	}
	return out
}

// IncTerminal implements Distance: the weighted Hessian is W, so
// lambda~(1) = -W rho~(1).
func (d WeightedL2Distance) IncTerminal(rho1, _ *field.Scalar, rhoT1 []float64) *field.Scalar {
	out := field.NewScalar(rho1.P)
	for i := range out.Data {
		out.Data[i] = -d.W.Data[i] * rhoT1[i]
	}
	return out
}
