package diffreg

// Ablation benchmarks for the design choices the paper motivates: cubic
// vs linear interpolation (§III-B2), Gauss-Newton vs first-order descent
// (§II-B), the spectral preconditioner (§III-A), interpolation-plan reuse
// (§III-C2), and Hermitian-redundancy exploitation in the r2c transform.

import (
	"math"
	"math/rand"
	"testing"

	"diffreg/internal/core"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/interp"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/paperbench"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/semilag"
	"diffreg/internal/spectral"
)

// BenchmarkAblationInterpOrder compares the tricubic kernel against the
// trilinear baseline used by packages like NIFTYREG/PLASTIMATCH. The
// paper argues cubic is required because interpolation error accumulates
// across time steps without a dt factor; err metrics show the accuracy
// gap at equal cost order.
func BenchmarkAblationInterpOrder(b *testing.B) {
	n := [3]int{32, 32, 32}
	h := 2 * math.Pi / 32
	f := make([]float64, 32*32*32)
	idx := 0
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			for k := 0; k < 32; k++ {
				f[idx] = math.Sin(float64(i)*h) * math.Cos(float64(j)*h) * math.Sin(float64(k)*h)
				idx++
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([][3]float64, 4096)
	for i := range pts {
		pts[i] = [3]float64{rng.Float64() * 32, rng.Float64() * 32, rng.Float64() * 32}
	}
	exact := func(p [3]float64) float64 {
		return math.Sin(p[0]*h) * math.Cos(p[1]*h) * math.Sin(p[2]*h)
	}
	b.Run("tricubic", func(b *testing.B) {
		maxErr := 0.0
		for i := 0; i < b.N; i++ {
			p := pts[i%len(pts)]
			if e := math.Abs(interp.EvalPeriodic(f, n, p) - exact(p)); e > maxErr {
				maxErr = e
			}
		}
		b.ReportMetric(maxErr, "max-err")
	})
	b.Run("trilinear", func(b *testing.B) {
		maxErr := 0.0
		for i := 0; i < b.N; i++ {
			p := pts[i%len(pts)]
			if e := math.Abs(interp.EvalPeriodicLinear(f, n, p) - exact(p)); e > maxErr {
				maxErr = e
			}
		}
		b.ReportMetric(maxErr, "max-err")
	})
}

// BenchmarkAblationOptimizer contrasts the paper's Gauss-Newton-Krylov
// scheme against the steepest-descent baseline most registration packages
// use; the iters metric shows the first-order method's linear convergence.
func BenchmarkAblationOptimizer(b *testing.B) {
	run := func(b *testing.B, firstOrder bool) {
		cfg := core.DefaultConfig()
		cfg.SkipMap = true
		cfg.FirstOrder = firstOrder
		cfg.Newton.MaxIters = 60
		var out *core.Outcome
		for i := 0; i < b.N; i++ {
			var err error
			out, err = paperbench.RunMeasurement([3]int{16, 16, 16}, 1, paperbench.SyntheticProblem, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if out != nil {
			b.ReportMetric(float64(out.Counts.NewtonIters), "outer-iters")
			b.ReportMetric(out.Result.GnormLast/out.Result.GnormInit, "grad-reduction")
		}
	}
	b.Run("gauss-newton", func(b *testing.B) { run(b, false) })
	b.Run("steepest-descent", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPreconditioner measures PCG with and without the
// inverse-regularization spectral preconditioner on a representative
// Hessian solve; the cg-iters metric is the paper's motivation for it.
func BenchmarkAblationPreconditioner(b *testing.B) {
	g := grid.MustNew(16, 16, 16)
	run := func(b *testing.B, usePrec bool) {
		var iters float64
		for i := 0; i < b.N; i++ {
			_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				ops := spectral.New(pfft.NewPlan(pe))
				rhoT := imaging.SyntheticTemplate(pe)
				rhoR := imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), 4, false)
				pr, err := regopt.New(ops, rhoT, rhoR, regopt.DefaultOptions())
				if err != nil {
					return err
				}
				e := pr.EvalGradient(field.NewVector(pe))
				rhs := e.G.Clone()
				rhs.Scale(-1)
				prec := func(w *field.Vector) *field.Vector { return pr.ApplyPrec(w) }
				if !usePrec {
					prec = func(w *field.Vector) *field.Vector { return w.Clone() }
				}
				_, cg := optim.PCG(
					func(w *field.Vector) *field.Vector { return pr.HessMatVec(e, w) },
					prec, rhs, 1e-3, 500,
				)
				iters = float64(cg.Iters)
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(iters, "cg-iters")
	}
	b.Run("spectral-prec", func(b *testing.B) { run(b, true) })
	b.Run("no-prec", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationPlanReuse measures the paper's interpolation-planner
// optimization: building the scatter plan once per velocity and reusing it
// for every transported field versus rebuilding it per interpolation.
func BenchmarkAblationPlanReuse(b *testing.B) {
	g := grid.MustNew(24, 24, 24)
	b.Run("reuse", func(b *testing.B) {
		_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			v := imaging.SyntheticVelocity(pe)
			f := imaging.SyntheticTemplate(pe)
			plan := semilag.DeparturePlan(pe, v, 0.25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Interp(f.Data)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			v := imaging.SyntheticVelocity(pe)
			f := imaging.SyntheticTemplate(pe)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				semilag.DeparturePlan(pe, v, 0.25).Interp(f.Data)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkDistributedFFT measures the distributed transform at several
// task counts (the communication is charged by the cost model, so the
// wall time here reflects kernel execution plus pack/unpack).
func BenchmarkDistributedFFT(b *testing.B) {
	g := grid.MustNew(32, 32, 32)
	for _, p := range []int{1, 4} {
		name := "tasks1"
		if p == 4 {
			name = "tasks4"
		}
		b.Run(name, func(b *testing.B) {
			_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				plan := pfft.NewPlan(pe)
				local := make([]float64, pe.LocalTotal())
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					spec, _ := plan.Forward(local)
					plan.Inverse(spec)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationIncompressibility compares the three treatments of
// volume change: none, the soft penalty gamma/2||div v||^2 (NIFTYREG
// style), and the paper's exact Leray-projection constraint. The det-dist
// metric is the maximum deviation of det(grad y1) from 1.
func BenchmarkAblationIncompressibility(b *testing.B) {
	run := func(b *testing.B, hard bool, gamma float64) {
		cfg := core.DefaultConfig()
		cfg.Opt.Beta = 1e-3
		cfg.Opt.Incompressible = hard
		cfg.Opt.DivPenalty = gamma
		var out *core.Outcome
		for i := 0; i < b.N; i++ {
			var err error
			out, err = paperbench.RunMeasurement([3]int{16, 16, 16}, 1, paperbench.SyntheticIncompressible, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if out != nil {
			dist := math.Max(math.Abs(out.DetMin-1), math.Abs(out.DetMax-1))
			b.ReportMetric(dist, "det-dist")
			b.ReportMetric(out.MisfitFinal/out.MisfitInit, "misfit-ratio")
		}
	}
	b.Run("unconstrained", func(b *testing.B) { run(b, false, 0) })
	b.Run("soft-penalty", func(b *testing.B) { run(b, false, 1) })
	b.Run("hard-leray", func(b *testing.B) { run(b, true, 0) })
}

// BenchmarkAblationMultilevel compares direct fine-grid solution against
// coarse-to-fine grid continuation — one of the remedies the paper lists
// for its single-level solver. The fine-matvecs metric counts the
// expensive finest-grid Hessian applications.
func BenchmarkAblationMultilevel(b *testing.B) {
	g := grid.MustNew(24, 24, 24)
	run := func(b *testing.B, levels int) {
		var fineMatvecs, misfit float64
		for i := 0; i < b.N; i++ {
			_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
				pe, err := grid.NewPencil(g, c)
				if err != nil {
					return err
				}
				ops := spectral.New(pfft.NewPlan(pe))
				rhoT := imaging.SyntheticTemplate(pe)
				rhoR := imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), 4, false)
				cfg := core.DefaultConfig()
				cfg.Opt.Beta = 1e-3 // harder regime, where continuation pays off
				out, stats, err := core.RegisterMultilevel(pe, rhoT, rhoR, cfg, levels)
				if err != nil {
					return err
				}
				fineMatvecs = float64(stats[len(stats)-1].Matvecs)
				misfit = out.MisfitFinal
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(fineMatvecs, "fine-matvecs")
		b.ReportMetric(misfit, "misfit")
	}
	b.Run("single-level", func(b *testing.B) { run(b, 1) })
	b.Run("two-level", func(b *testing.B) { run(b, 2) })
}

// BenchmarkAblationShiftedPrec compares the paper's inverse-regularization
// preconditioner against the data-shifted variant in the hard small-beta
// regime of Table V. The matvecs metric shows the beta-robustness gain.
func BenchmarkAblationShiftedPrec(b *testing.B) {
	run := func(b *testing.B, shifted bool) {
		cfg := core.DefaultConfig()
		cfg.SkipMap = true
		cfg.Opt.Beta = 1e-5
		cfg.Opt.ShiftedPrec = shifted
		cfg.Newton.MaxIters = 4
		cfg.Newton.GradTol = 1e-14
		cfg.Newton.MaxKrylov = 2000
		var out *core.Outcome
		for i := 0; i < b.N; i++ {
			var err error
			out, err = paperbench.RunMeasurement([3]int{16, 18, 16}, 1, paperbench.BrainProblem, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if out != nil {
			b.ReportMetric(float64(out.Counts.Matvecs), "matvecs")
			b.ReportMetric(out.MisfitFinal/out.MisfitInit, "misfit-ratio")
		}
	}
	b.Run("inverse-reg", func(b *testing.B) { run(b, false) })
	b.Run("shifted", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPrecKind compares the three Hessian preconditioners in
// the hard small-beta regime of Table V: the paper's inverse
// regularization, the data-shifted variant, and the two-level coarse-grid
// preconditioner (the paper's future-work item).
func BenchmarkAblationPrecKind(b *testing.B) {
	run := func(b *testing.B, shifted, twoLevel bool) {
		cfg := core.DefaultConfig()
		cfg.SkipMap = true
		cfg.Opt.Beta = 1e-5
		cfg.Opt.ShiftedPrec = shifted
		cfg.Opt.TwoLevelPrec = twoLevel
		cfg.Newton.MaxIters = 4
		cfg.Newton.GradTol = 1e-14
		cfg.Newton.MaxKrylov = 2000
		var out *core.Outcome
		for i := 0; i < b.N; i++ {
			var err error
			out, err = paperbench.RunMeasurement([3]int{16, 18, 16}, 1, paperbench.BrainProblem, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if out != nil {
			b.ReportMetric(float64(out.Counts.Matvecs), "fine-matvecs")
			b.ReportMetric(out.MisfitFinal/out.MisfitInit, "misfit-ratio")
		}
	}
	b.Run("inverse-reg", func(b *testing.B) { run(b, false, false) })
	b.Run("shifted", func(b *testing.B) { run(b, true, false) })
	b.Run("two-level", func(b *testing.B) { run(b, false, true) })
}
