package check

import (
	"fmt"
	"math"
	"math/rand"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/prec"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// synthImage is the frequency-1 template used by the derivative checks.
// Higher-frequency content raises the spectral-vs-interpolant gradient
// inconsistency floor (~(kh)^4) and eats into the h-range over which the
// O(h^2) Taylor remainder is visible; at frequency 1 the remainder is
// clean over four decades on a 24^3 grid.
func synthImage(pe *grid.Pencil) *field.Scalar {
	s := field.NewScalar(pe)
	s.SetFunc(func(x1, x2, x3 float64) float64 {
		return 0.5 + (math.Sin(x1)*math.Sin(x2)*math.Sin(x3)+
			math.Cos(x1)+math.Cos(x2)*math.Sin(x3))/4
	})
	return s
}

// synthProblem builds a registration problem whose reference image is the
// template transported by a known velocity vStar with the same discrete
// solver. The discrete residual therefore vanishes identically at vStar —
// the zero-residual point where the Gauss-Newton and full Newton matvecs
// coincide exactly.
func synthProblem(pe *grid.Pencil, ops *spectral.Ops, opt regopt.Options, vscale float64) (*regopt.Problem, *field.Vector, error) {
	rhoT := synthImage(pe)
	vStar := field.NewVector(pe)
	vStar.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return vscale * math.Cos(x1) * math.Sin(x2),
			vscale * math.Cos(x2) * math.Sin(x1),
			vscale * math.Cos(x1) * math.Sin(x3)
	})
	ts := transport.NewSolver(ops, opt.Nt)
	rhoR := field.NewScalar(pe)
	copy(rhoR.Data, ts.State(ts.NewContext(vStar, false), rhoT)[opt.Nt])
	pr, err := regopt.New(ops, rhoT, rhoR, opt)
	return pr, vStar, err
}

// taylorVelocity and taylorDirection are the fixed smooth evaluation point
// and perturbation of the Taylor tests (calibrated so the O(h^2) window
// spans the gated decades; randomness belongs in the adjoint fuzz, not
// here where the measured orders must be reproducible).
func taylorVelocity(pe *grid.Pencil, s float64) *field.Vector {
	v := field.NewVector(pe)
	v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return s * math.Sin(x2) * math.Cos(x3),
			-0.75 * s * math.Cos(x1),
			0.5 * s * math.Sin(x1+x2)
	})
	return v
}

func taylorDirection(pe *grid.Pencil) *field.Vector {
	w := field.NewVector(pe)
	w.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return 0.3 * math.Cos(x2+x3), 0.2 * math.Sin(x3), -0.25 * math.Cos(x1) * math.Sin(x2)
	})
	return w
}

// fitSlope returns the least-squares slope of log(rem) against log(h).
func fitSlope(hs, rems []float64) float64 {
	n := float64(len(hs))
	var sx, sy, sxx, sxy float64
	for i := range hs {
		x, y := math.Log(hs[i]), math.Log(rems[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// runTaylor performs the derivative checks: the reduced gradient is the
// derivative of the discrete objective (second-order Taylor remainder),
// the Hessian matvec is symmetric and consistent with finite differences
// of the gradient, and Gauss-Newton coincides with full Newton at zero
// residual.
func (e *env) runTaylor() {
	opt := regopt.Options{Beta: 1e-2, Reg: regopt.RegH2, Nt: e.opt.Nt, GaussNewton: true}
	pr, vStar, err := synthProblem(e.pe, e.ops, opt, 0.3)
	if err != nil {
		e.add("taylor", "setup", math.Inf(1), 0, ModeMax, err.Error())
		return
	}
	v := taylorVelocity(e.pe, 0.2)
	w := taylorDirection(e.pe)

	// Gradient Taylor remainder |J(v+hw) - J(v) - h<g,w>| = O(h^2): the
	// slope of the remainder over three (quick) or four decades of h.
	hs := []float64{1, 3.16e-1, 1e-1, 3.16e-2, 1e-2, 3.16e-3, 1e-3}
	if !e.opt.Quick {
		hs = append(hs, 3.16e-4, 1e-4)
	}
	if e.opt.Precision == prec.F32 {
		// Below h ~ 1e-2 the O(h^2) remainder sinks under the
		// single-precision evaluation noise of J (~eps32 x |J|), and the
		// fitted slope measures noise, not convergence order.
		hs = hs[:5]
	}
	ev := pr.EvalGradient(v)
	gw := ev.G.Dot(w)
	rems := make([]float64, len(hs))
	for i, h := range hs {
		vp := v.Clone()
		vp.Axpy(h, w)
		rems[i] = math.Abs(pr.Evaluate(vp).J - ev.J - h*gw)
	}
	decades := math.Log10(hs[0] / hs[len(hs)-1])
	e.add("taylor", "gradient_order", fitSlope(hs, rems), 1.9, ModeMin,
		fmt.Sprintf("%.1f decades, rem %.1e..%.1e", decades, rems[0], rems[len(rems)-1]))

	// Hessian symmetry <Hw1,w2> = <w1,Hw2>, normalized at operator level.
	// At v=0 the interpolation plans are the identity and the discrete
	// Gauss-Newton operator is exactly symmetric; at a general point the
	// asymmetry sits at the discretization-consistency level.
	rng := rand.New(rand.NewSource(e.opt.Seed + 2))
	w1 := randVector(e.pe, rng)
	w2 := randVector(e.pe, rng)
	sym := func(at *field.Vector) float64 {
		ea := pr.EvalGradient(at)
		h1 := pr.HessMatVec(ea, w1)
		h2 := pr.HessMatVec(ea, w2)
		return math.Abs(h1.Dot(w2)-w1.Dot(h2)) /
			(h1.NormL2()*w2.NormL2() + h2.NormL2()*w1.NormL2())
	}
	e.add("taylor", "hessian_sym_v0", sym(field.NewVector(e.pe)), e.opt.mach(1e-10, 1e-4), ModeMax, "identity plans")
	e.add("taylor", "hessian_sym_general", sym(v), e.opt.disc(1e-2), ModeMax, "discretization level")

	// At the zero-residual point the adjoint vanishes identically, so the
	// Gauss-Newton matvec must equal the full Newton matvec exactly.
	eGN := pr.EvalGradient(vStar)
	hGN := pr.HessMatVec(eGN, w)
	pr.Opt.GaussNewton = false
	eN := pr.EvalGradient(vStar)
	hN := pr.HessMatVec(eN, w)
	diff := hGN.Clone()
	diff.Axpy(-1, hN)
	// The zero-residual identity survives narrowing: the reference image
	// was generated by the same deterministic float32 pipeline, so the
	// residual cancels bitwise and only the matvec arithmetic differs.
	e.add("taylor", "gn_equals_newton_zero_residual", diff.NormL2()/hN.NormL2(), e.opt.mach(1e-12, 1e-5), ModeMax,
		fmt.Sprintf("misfit %.1e", eGN.Misfit))

	// The matvec is the derivative of the gradient: central differences of
	// g along w converge to H w. The full Newton matvec is held against the
	// FD derivative at a general point; the Gauss-Newton one at the
	// zero-residual point, where dropping the adjoint terms is exact.
	fdiff := func(at *field.Vector, hw *field.Vector, h float64) float64 {
		vp := at.Clone()
		vp.Axpy(h, w)
		vm := at.Clone()
		vm.Axpy(-h, w)
		fd := pr.EvalGradient(vp).G.Clone()
		fd.Axpy(-1, pr.EvalGradient(vm).G)
		fd.Scale(1 / (2 * h))
		fd.Axpy(-1, hw)
		return fd.NormL2() / hw.NormL2()
	}
	// The FD gate widens under float32: differencing two narrow-path
	// gradients at h=1e-3 amplifies their eps32-level noise by 1/h, which
	// sits just below the float64 discretization gate.
	fdGate := e.opt.mach(e.opt.disc(1e-2), 3e-2)
	e.add("taylor", "newton_matvec_vs_fd", fdiff(v, pr.HessMatVec(pr.EvalGradient(v), w), 1e-3),
		fdGate, ModeMax, "full Newton, general point")
	pr.Opt.GaussNewton = true
	e.add("taylor", "gn_matvec_vs_fd", fdiff(vStar, pr.HessMatVec(pr.EvalGradient(vStar), w), 1e-3),
		fdGate, ModeMax, "zero-residual point")
}
