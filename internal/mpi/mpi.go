// Package mpi implements an in-process message-passing runtime with the
// subset of MPI semantics used by the registration solver: point-to-point
// send/receive, barriers, broadcast, reductions, gather, all-to-all
// (including the variable-count flavor), and communicator splitting.
//
// Ranks are goroutines inside a single OS process. The package exists so
// that the distributed algorithms of the paper (pencil-decomposed FFT
// transposes, semi-Lagrangian scatter plans, ghost-layer exchanges) can be
// implemented with their real communication structure. Every operation is
// additionally charged against a latency/bandwidth cost model so that the
// communication columns of the paper's tables can be regenerated from the
// exact message counts and volumes the algorithms produce.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Phase labels the solver phase to which communication cost is attributed.
// The paper's tables report exactly the first four categories.
type Phase int

const (
	PhaseOther Phase = iota
	PhaseFFTComm
	PhaseFFTExec
	PhaseInterpComm
	PhaseInterpExec
	numPhases
)

// String returns the human-readable phase name used in reports.
func (p Phase) String() string {
	switch p {
	case PhaseFFTComm:
		return "fft-comm"
	case PhaseFFTExec:
		return "fft-exec"
	case PhaseInterpComm:
		return "interp-comm"
	case PhaseInterpExec:
		return "interp-exec"
	default:
		return "other"
	}
}

// CostModel holds the machine constants of the classical latency/bandwidth
// (Hockney) model: a message of n bytes costs Ts + Tw*n seconds.
type CostModel struct {
	Ts float64 // latency per message, seconds
	Tw float64 // reciprocal bandwidth, seconds per byte
}

// DefaultCostModel mirrors a 2016-era fat-tree interconnect (FDR
// InfiniBand): ~2 microseconds latency, ~6 GB/s effective point-to-point
// bandwidth. perfmodel recalibrates these from measured runs.
func DefaultCostModel() CostModel { return CostModel{Ts: 2e-6, Tw: 1.0 / 6e9} }

// message is a single point-to-point payload in flight. The envelope
// fields (seq, wantLen, sum) are populated only when the world runs with
// validation enabled (a FaultPlan attached or RunOpts.Validate set).
type message struct {
	commID int
	src    int // rank within the communicator
	tag    int
	data   any
	bytes  int

	validate bool
	seq      uint64 // per-(commID, src, tag) stream sequence number, from 1
	wantLen  int    // intended payload element count (-1: not validated)
	sum      uint64 // FNV-1a payload checksum computed before injection (0: not validated)
}

// streamKey identifies one ordered point-to-point stream at a receiver.
type streamKey struct{ commID, src, tag int }

// mailbox holds delivered-but-unreceived messages for one world rank.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
	seen  map[streamKey]uint64 // highest seq consumed per stream (validation mode)
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take outcomes.
const (
	takeOK = iota
	takeAborted
	takeTimeout
	takeGap
)

// take blocks until a message matching (commID, src, tag) is available and
// removes it from the queue. It returns early when the world aborts, or —
// if timeout > 0 — when no matching message arrives in time (the watchdog
// ticker wakes waiters periodically so the deadline is observed). Stale
// duplicate deliveries (seq at or below the last consumed for the stream)
// are discarded; their count is returned so the receiver can account them.
// A sequence gap (the next matching message skips ahead of the expected
// number) means an earlier message on the stream was lost while a later
// one already arrived; consuming it would hand the receiver a payload of
// the wrong shape, so takeGap is returned with the expected number and the
// message is left queued (the world is about to abort anyway).
func (m *mailbox) take(w *World, commID, src, tag int, timeout time.Duration) (message, int, int, uint64) {
	var start time.Time
	if timeout > 0 {
		start = time.Now()
	}
	dropped := 0
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if w.aborted() {
			return message{}, dropped, takeAborted, 0
		}
		for i := 0; i < len(m.queue); i++ {
			msg := m.queue[i]
			if msg.commID != commID || msg.src != src || msg.tag != tag {
				continue
			}
			if msg.validate {
				k := streamKey{commID, src, tag}
				if m.seen == nil {
					m.seen = map[streamKey]uint64{}
				}
				last := m.seen[k]
				if msg.seq <= last {
					m.queue = append(m.queue[:i], m.queue[i+1:]...)
					dropped++
					i--
					continue
				}
				if msg.seq != last+1 {
					return msg, dropped, takeGap, last + 1
				}
				m.seen[k] = msg.seq
			}
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return msg, dropped, takeOK, 0
		}
		if timeout > 0 && time.Since(start) > timeout {
			return message{}, dropped, takeTimeout, 0
		}
		m.cond.Wait()
	}
}

// World is the shared state of one parallel run: the mailboxes of all
// ranks plus communicator-ID bookkeeping, and — when resilience features
// are enabled — the fault plan, validation flag, watchdog interval, and
// the abort latch that guarantees a detected failure never hangs the run.
type World struct {
	size  int
	boxes []*mailbox
	cost  CostModel

	faults   *FaultPlan
	validate bool
	watchdog time.Duration
	done     chan struct{} // closed at world teardown; stops the watchdog ticker

	idMu  sync.Mutex
	idMap map[string]int
	idSeq int

	abortFlag atomic.Bool
	abortMu   sync.Mutex
	abortRank int
	abortErr  error
}

// abort latches the first failure of the world and wakes every blocked
// receiver so all ranks unwind instead of hanging.
func (w *World) abort(rank int, err error) {
	w.abortMu.Lock()
	if w.abortErr == nil {
		w.abortRank, w.abortErr = rank, err
	}
	w.abortMu.Unlock()
	w.abortFlag.Store(true)
	for _, b := range w.boxes {
		// The broadcast must hold the mailbox mutex: take() checks
		// aborted() under b.mu before sleeping, so an unlocked broadcast
		// can land between that check and the cond.Wait and be lost —
		// with no watchdog ticker to re-broadcast, the receiver would
		// sleep forever.
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// aborted reports whether any rank has latched a failure.
func (w *World) aborted() bool { return w.abortFlag.Load() }

// abortCause returns the rank and error of the first latched failure.
func (w *World) abortCause() (int, error) {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortRank, w.abortErr
}

// abortedError is the sentinel carried by ranks that unwind because a
// *peer* failed; Run reports the origin failure, not these.
type abortedError struct{ cause error }

// Error implements error.
func (e abortedError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("world aborted: %v", e.cause)
	}
	return "world aborted"
}

// Unwrap exposes the origin failure to errors.As/Is.
func (e abortedError) Unwrap() error { return e.cause }

// commID returns a process-wide communicator ID for the agreed-upon key.
// All members of a split derive the same key deterministically, so the
// first caller allocates and the rest observe the same ID.
func (w *World) commID(key string) int {
	w.idMu.Lock()
	defer w.idMu.Unlock()
	if id, ok := w.idMap[key]; ok {
		return id
	}
	w.idSeq++
	w.idMap[key] = w.idSeq
	return w.idSeq
}

// Stats accumulates per-rank communication statistics and algorithmic
// operation counts (the inputs of the performance model in perfmodel).
type Stats struct {
	Messages     [numPhases]int64
	BytesRecv    [numPhases]int64
	ModeledComm  [numPhases]float64 // seconds charged by the cost model
	MeasuredExec [numPhases]float64 // seconds recorded by AddExec

	FFTs         int64 // 3D transforms performed (forward or inverse)
	InterpSweeps int64 // off-grid interpolation passes over a field
	InterpPoints int64 // tricubic point evaluations

	// FusedInterpExchanges counts cross-job fused gather exchanges (one
	// batched halo + value return carrying several jobs' payloads);
	// FusedInterpJobs and FusedInterpFields record the job requests and
	// field payloads they carried. Jobs/Exchanges is the achieved
	// job-axis batching factor of the interpolation (0 exchanges on solo
	// paths).
	FusedInterpExchanges int64
	FusedInterpJobs      int64
	FusedInterpFields    int64

	// Alltoalls counts all-to-all collective invocations (any payload
	// type); each fused pencil transpose issues exactly one, however many
	// fields it carries, so this is the latency-term counter of the
	// ts*sqrt(p) model.
	Alltoalls int64
	// TransposeStages / TransposeFields count the pencil-FFT transpose
	// stages that actually communicated (communicator size > 1) and the
	// field-transposes they carried; Fields/Stages is the achieved
	// batching factor (1 = unbatched, 3 = a full vector per collective).
	TransposeStages int64
	TransposeFields int64

	// SendOps / CollOps count point-to-point sends and all-to-all
	// collective entries per phase. Fault-injection sites are addressed by
	// these indices (see FaultSite), so the counters double as the site
	// namespace of a FaultPlan.
	SendOps [numPhases]int64
	CollOps [numPhases]int64
	// DupsDropped counts stale duplicate deliveries discarded by the
	// receive-side sequence validation.
	DupsDropped int64
}

// TotalModeled returns the modeled communication time summed over phases.
func (s *Stats) TotalModeled() float64 {
	t := 0.0
	for _, v := range s.ModeledComm {
		t += v
	}
	return t
}

// Comm is one rank's view of a communicator.
type Comm struct {
	world *World
	id    int
	rank  int   // rank within this communicator
	group []int // communicator rank -> world rank
	phase Phase
	stats *Stats

	splitSeq int // number of Split calls issued on this communicator

	// seqs numbers outgoing per-(dest, tag) streams when validation is on.
	// A Comm is owned by its rank goroutine, so no lock is needed.
	seqs map[[2]int]uint64
	// pendingFault / pendingSite carry a payload fault from a collective
	// entry to the collective's first outgoing send.
	pendingFault FaultKind
	pendingSite  FaultSite
}

// RunOpts configures a world beyond the cost model.
type RunOpts struct {
	// Cost is the communication cost model.
	Cost CostModel
	// Faults attaches a deterministic fault-injection plan. Attaching a
	// plan implies Validate and enables a default watchdog.
	Faults *FaultPlan
	// Validate enables message envelopes (sequence numbers, length and
	// checksum verification on every receive) without injecting faults.
	Validate bool
	// Watchdog bounds how long a receive may wait for a message before it
	// raises a timeout CommError; 0 disables (or, with Faults attached,
	// selects the 2s default). The deadline measures the receiver's
	// blocked time, which includes however long the sender computes
	// before it sends — a healthy run whose compute imbalance between
	// ranks exceeds the deadline (e.g. large grids under a fault plan)
	// trips a spurious timeout. Raise Watchdog accordingly for large
	// problems; the deadline only needs to be smaller than the test
	// harness's hang timeout to keep its job as the hang detector.
	Watchdog time.Duration
}

// Run executes fn concurrently on p ranks and blocks until all complete.
// It returns the first non-nil error (if any) and the per-rank stats.
func Run(p int, cost CostModel, fn func(c *Comm) error) ([]*Stats, error) {
	return RunWith(p, RunOpts{Cost: cost}, fn)
}

// RunWith is Run with resilience options. Any rank failure — a returned
// error, a raised CommError, or a genuine panic — aborts the whole world:
// every receiver blocked on a message from the failed rank wakes up and
// unwinds, so RunWith always returns instead of hanging.
func RunWith(p int, opts RunOpts, fn func(c *Comm) error) ([]*Stats, error) {
	if p < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", p)
	}
	w := &World{size: p, cost: opts.Cost, idMap: map[string]int{}}
	w.faults = opts.Faults
	w.validate = opts.Validate || opts.Faults != nil
	w.watchdog = opts.Watchdog
	if w.watchdog == 0 && opts.Faults != nil {
		w.watchdog = 2 * time.Second
	}
	w.boxes = make([]*mailbox, p)
	group := make([]int, p)
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		group[i] = i
	}
	if w.watchdog > 0 {
		// The watchdog ticker wakes every blocked receiver periodically so
		// receive deadlines are observed even when no message ever arrives.
		w.done = make(chan struct{})
		interval := w.watchdog / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-w.done:
					return
				case <-t.C:
					for _, b := range w.boxes {
						// Locked for the same reason as in abort(): a
						// broadcast between a waiter's deadline check and
						// its cond.Wait would otherwise be lost.
						b.mu.Lock()
						b.cond.Broadcast()
						b.mu.Unlock()
					}
				}
			}
		}()
	}
	stats := make([]*Stats, p)
	errs := make([]error, p)
	panics := make([]string, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		stats[r] = &Stats{}
		c := &Comm{world: w, id: 0, rank: r, group: group, stats: stats[r]}
		wg.Add(1)
		go func(r int, c *Comm) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					if rf, ok := v.(rankFailure); ok {
						if _, secondary := rf.err.(abortedError); !secondary {
							w.abort(r, rf.err)
						}
						errs[r] = rf.err
						return
					}
					panics[r] = fmt.Sprintf("%v", v)
					w.abort(r, fmt.Errorf("panic: %v", v))
				}
			}()
			errs[r] = fn(c)
			if errs[r] != nil {
				w.abort(r, errs[r])
			}
		}(r, c)
	}
	wg.Wait()
	if w.done != nil {
		close(w.done)
	}
	for r, msg := range panics {
		if msg != "" {
			return stats, fmt.Errorf("mpi: panic in rank %d: %v", r, msg)
		}
	}
	// Report the origin failure deterministically (lowest failing rank),
	// skipping ranks that merely unwound because a peer aborted the world.
	for r, err := range errs {
		if err == nil {
			continue
		}
		if _, secondary := err.(abortedError); secondary {
			continue
		}
		return stats, fmt.Errorf("mpi: rank %d: %w", r, err)
	}
	if _, cause := w.abortCause(); cause != nil {
		return stats, fmt.Errorf("mpi: aborted: %w", cause)
	}
	return stats, nil
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns this rank's index in the top-level world.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// SetPhase selects the phase to which subsequent communication cost is
// charged and returns the previous phase so callers can restore it.
func (c *Comm) SetPhase(p Phase) Phase {
	old := c.phase
	c.phase = p
	return old
}

// AddExec records measured execution (computation) time for a phase.
func (c *Comm) AddExec(p Phase, seconds float64) { c.stats.MeasuredExec[p] += seconds }

// CountFFT records one distributed 3D transform.
func (c *Comm) CountFFT() { c.stats.FFTs++ }

// CountFFTs records n distributed 3D transforms at once (a batched pipeline
// carrying n fields still performs n logical transforms).
func (c *Comm) CountFFTs(n int) { c.stats.FFTs += int64(n) }

// CountInterp records one interpolation sweep evaluating n points.
func (c *Comm) CountInterp(n int64) {
	c.stats.InterpSweeps++
	c.stats.InterpPoints += n
}

// CountFusedInterp records one cross-job fused gather exchange carrying
// the given number of job requests and field payloads.
func (c *Comm) CountFusedInterp(jobs, fields int) {
	c.stats.FusedInterpExchanges++
	c.stats.FusedInterpJobs += int64(jobs)
	c.stats.FusedInterpFields += int64(fields)
}

// CountTranspose records one communicating pencil-transpose stage carrying
// the given number of fields through a single all-to-all.
func (c *Comm) CountTranspose(fields int) {
	c.stats.TransposeStages++
	c.stats.TransposeFields += int64(fields)
}

// Stats returns this rank's accumulated statistics.
func (c *Comm) Stats() *Stats { return c.stats }

// payloadBytes estimates the wire size of a payload for the cost model.
func payloadBytes(data any) int {
	switch d := data.(type) {
	case []float64:
		return 8 * len(d)
	case []float32:
		return 4 * len(d)
	case []complex128:
		return 16 * len(d)
	case []int:
		return 8 * len(d)
	case []byte:
		return len(d)
	case float64, int, int64:
		return 8
	case nil:
		return 0
	default:
		return 64 // opaque struct; charged a nominal size
	}
}

// clonePayload copies slice payloads so sender and receiver never alias.
func clonePayload(data any) any {
	switch d := data.(type) {
	case []float64:
		out := make([]float64, len(d))
		copy(out, d)
		return out
	case []float32:
		out := make([]float32, len(d))
		copy(out, d)
		return out
	case []complex128:
		out := make([]complex128, len(d))
		copy(out, d)
		return out
	case []int:
		out := make([]int, len(d))
		copy(out, d)
		return out
	case []byte:
		out := make([]byte, len(d))
		copy(out, d)
		return out
	default:
		return data
	}
}

// Send delivers data to dest (rank within this communicator) with the given
// tag. Sends are buffered and never block. With validation enabled the
// message carries an envelope (sequence number, length, checksum) computed
// before any fault is applied; with a FaultPlan attached, a matching
// injection site mutates, delays, drops, or duplicates the message.
func (c *Comm) Send(dest, tag int, data any) {
	if dest < 0 || dest >= len(c.group) {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dest, len(c.group)))
	}
	w := c.world
	if w.aborted() {
		c.raiseAbort()
	}
	payload := clonePayload(data)
	msg := message{commID: c.id, src: c.rank, tag: tag}
	if w.validate {
		msg.validate = true
		msg.wantLen = payloadLen(payload)
		msg.sum = payloadChecksum(payload)
		msg.seq = c.nextSeq(dest, tag)
	}
	idx := c.stats.SendOps[c.phase]
	c.stats.SendOps[c.phase]++
	dup := false
	if fp := w.faults; fp != nil {
		kind, site := c.pendingFault, c.pendingSite
		c.pendingFault = FaultNone
		if kind == FaultNone {
			kind = fp.lookup(c.WorldRank(), c.phase, OpSend, idx)
			site = FaultSite{Rank: c.WorldRank(), Phase: c.phase, Op: OpSend, Index: idx, Kind: kind}
		}
		switch kind {
		case FaultDelay:
			fp.record(site)
			time.Sleep(fp.delay())
		case FaultStall:
			fp.record(site)
			c.stall(fp)
		case FaultDrop:
			fp.record(site)
			return // the message is lost; the receiver's watchdog detects it
		case FaultDuplicate:
			fp.record(site)
			dup = true
		case FaultBitFlip:
			if corruptBit(payload, fp.bitFor(site, payloadBytes(payload))) {
				fp.record(site)
			}
		case FaultTruncate:
			if p2, ok := truncatePayload(payload); ok {
				payload = p2
				fp.record(site)
			}
		}
	}
	msg.data = payload
	msg.bytes = payloadBytes(payload)
	box := w.boxes[c.group[dest]]
	box.put(msg)
	if dup {
		box.put(msg)
	}
}

// nextSeq numbers the outgoing (dest, tag) stream on this communicator.
func (c *Comm) nextSeq(dest, tag int) uint64 {
	if c.seqs == nil {
		c.seqs = map[[2]int]uint64{}
	}
	k := [2]int{dest, tag}
	c.seqs[k]++
	return c.seqs[k]
}

// raiseAbort unwinds the calling rank because a peer latched a failure.
func (c *Comm) raiseAbort() {
	_, cause := c.world.abortCause()
	panic(rankFailure{abortedError{cause: cause}})
}

// stall parks the rank until the world aborts (a peer's watchdog noticed)
// or the plan's stall bound elapses — whichever comes first — so a stalled
// rank can never hang the process.
func (c *Comm) stall(fp *FaultPlan) {
	max := fp.MaxStall
	if max == 0 {
		if c.world.watchdog > 0 {
			max = 4 * c.world.watchdog
		} else {
			max = 2 * time.Second
		}
	}
	deadline := time.Now().Add(max)
	for !c.world.aborted() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.world.aborted() {
		c.raiseAbort()
	}
}

// collectiveSite counts one all-to-all collective entry against the
// per-phase site namespace and applies any fault registered there. Delay
// and stall act on the rank at the collective entry; payload kinds are
// deferred onto the collective's first outgoing send (on a size-1
// communicator no send ever happens, so such a site is a silent no-op).
func (c *Comm) collectiveSite() {
	w := c.world
	if w.aborted() {
		c.raiseAbort()
	}
	idx := c.stats.CollOps[c.phase]
	c.stats.CollOps[c.phase]++
	fp := w.faults
	if fp == nil {
		return
	}
	kind := fp.lookup(c.WorldRank(), c.phase, OpCollective, idx)
	if kind == FaultNone {
		return
	}
	site := FaultSite{Rank: c.WorldRank(), Phase: c.phase, Op: OpCollective, Index: idx, Kind: kind}
	switch kind {
	case FaultDelay:
		fp.record(site)
		time.Sleep(fp.delay())
	case FaultStall:
		fp.record(site)
		c.stall(fp)
	default:
		c.pendingFault = kind
		c.pendingSite = site
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Communication cost is charged to the current phase
// on the receiving rank. With validation enabled, a truncated or corrupted
// payload — and, with a watchdog, a message that never arrives — raises a
// typed *CommError that aborts the world.
func (c *Comm) Recv(src, tag int) any {
	if src < 0 || src >= len(c.group) {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", src, len(c.group)))
	}
	w := c.world
	msg, dups, status, wantSeq := w.boxes[c.group[c.rank]].take(w, c.id, src, tag, w.watchdog)
	c.stats.DupsDropped += int64(dups)
	switch status {
	case takeAborted:
		c.raiseAbort()
	case takeTimeout:
		Raise(&CommError{
			Rank: c.WorldRank(), Phase: c.phase, Op: "recv",
			Detail: fmt.Sprintf("timeout after %v waiting for message from rank %d tag %d (message lost or sender stalled)", w.watchdog, src, tag),
		})
	case takeGap:
		Raise(&CommError{
			Rank: c.WorldRank(), Phase: c.phase, Op: "recv",
			Detail: fmt.Sprintf("sequence gap from rank %d tag %d: next message is #%d, expected #%d (message lost)", src, tag, msg.seq, wantSeq),
		})
	}
	if msg.validate {
		if n := payloadLen(msg.data); msg.wantLen >= 0 && n != msg.wantLen {
			Raise(&CommError{
				Rank: c.WorldRank(), Phase: c.phase, Op: "recv",
				Detail: fmt.Sprintf("payload from rank %d tag %d has %d elements, expected %d (truncated message)", src, tag, n, msg.wantLen),
			})
		}
		if msg.sum != 0 && payloadChecksum(msg.data) != msg.sum {
			Raise(&CommError{
				Rank: c.WorldRank(), Phase: c.phase, Op: "recv",
				Detail: fmt.Sprintf("payload from rank %d tag %d fails checksum validation (corrupted message)", src, tag),
			})
		}
	}
	c.charge(msg.bytes)
	return msg.data
}

// charge records one received message of n bytes against the cost model.
func (c *Comm) charge(n int) {
	c.stats.Messages[c.phase]++
	c.stats.BytesRecv[c.phase] += int64(n)
	c.stats.ModeledComm[c.phase] += c.world.cost.Ts + c.world.cost.Tw*float64(n)
}

// SendRecvFloat64 exchanges float64 slices with two (possibly distinct)
// partners in a single step, which is safe because sends never block.
func (c *Comm) SendRecvFloat64(dest, destTag int, data []float64, src, srcTag int) []float64 {
	c.Send(dest, destTag, data)
	return c.Recv(src, srcTag).([]float64)
}

// Split partitions the communicator by color. Ranks passing the same color
// form a new communicator ordered by (key, rank). All members of the parent
// must call Split collectively the same number of times.
func (c *Comm) Split(color, key int) *Comm {
	type entry struct{ color, key, rank int }
	all := make([]entry, c.Size())
	mine := entry{color: color, key: key, rank: c.rank}
	// Allgather of the (color, key) triples via flat float64 encoding.
	enc := []float64{float64(color), float64(key), float64(c.rank)}
	gathered := c.Allgather(enc)
	for i := 0; i < c.Size(); i++ {
		all[i] = entry{int(gathered[3*i]), int(gathered[3*i+1]), int(gathered[3*i+2])}
	}
	_ = mine
	var members []entry
	for _, e := range all {
		if e.color == color {
			members = append(members, e)
		}
	}
	// Stable order by (key, rank).
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.key < a.key || (b.key == a.key && b.rank < a.rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, e := range members {
		group[i] = c.group[e.rank]
		if e.rank == c.rank {
			newRank = i
		}
	}
	c.splitSeq++
	key2 := fmt.Sprintf("%d/%d/%d", c.id, c.splitSeq, color)
	id := c.world.commID(key2)
	return &Comm{
		world: c.world,
		id:    id,
		rank:  newRank,
		group: group,
		phase: c.phase,
		stats: c.stats,
	}
}
