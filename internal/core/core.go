// Package core orchestrates a complete registration solve: it wires the
// spectral operators, transport solvers, optimality system, and the
// Newton-Krylov optimizer together, runs the optimization, reconstructs
// the deformation map, and collects the per-phase performance figures the
// paper's tables report (time to solution, FFT communication/execution,
// interpolation communication/execution).
package core

import (
	"runtime"
	"time"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/optim"
	"diffreg/internal/par"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// Config selects the problem formulation and solver parameters.
type Config struct {
	Opt    regopt.Options
	Newton optim.NewtonOptions
	// ContinuationBetas, when non-empty, runs parameter continuation over
	// this decreasing schedule before (and instead of) a single solve at
	// Opt.Beta.
	ContinuationBetas []float64
	// FirstOrder switches to the preconditioned steepest-descent baseline.
	FirstOrder bool
	// SkipMap disables the deformation-map reconstruction (used by pure
	// timing runs).
	SkipMap bool
	// Smooth applies the paper's grid-scale Gaussian preprocessing to the
	// input images before solving.
	Smooth bool
	// Intervals selects the number of piecewise-constant-in-time velocity
	// coefficients (1 = the paper's stationary velocity; > 1 enables the
	// time-varying extension of §V). Opt.Nt must be divisible by it.
	Intervals int
	// V0 warm-starts the stationary solve (used by grid continuation);
	// nil means the zero velocity.
	V0 *field.Vector
}

// DefaultConfig mirrors the paper's scalability setup.
func DefaultConfig() Config {
	return Config{Opt: regopt.DefaultOptions(), Newton: optim.DefaultNewtonOptions()}
}

// PhaseBreakdown aggregates the solver phases over all ranks (maximum),
// matching the columns of Tables I-IV. Communication times come from the
// message-level cost model; execution times are measured wall clock.
type PhaseBreakdown struct {
	TimeToSolution float64 // measured wall clock of the whole solve
	FFTComm        float64 // modeled
	FFTExec        float64 // measured
	InterpComm     float64 // modeled
	InterpExec     float64 // measured

	// PoolWorkers is the shared-memory worker-pool size the solve ran with
	// (package par); PoolSpeedup is the achieved intra-rank speedup of the
	// pooled kernel regions — worker-busy time over region wall time,
	// aggregated over the solve. PoolSpeedup is 1 for a serial pool.
	PoolWorkers int
	PoolSpeedup float64

	// AllocCount/AllocBytes are the heap allocations and bytes allocated
	// during the solve (runtime.MemStats deltas). The Go heap is shared by
	// all simulated ranks in the process, so these are process-global
	// figures, not per-rank ones; they attribute allocator pressure to the
	// solve as a whole.
	AllocCount float64
	AllocBytes float64
}

// Counts reports the algorithmic work of a solve.
type Counts struct {
	NewtonIters  int
	Matvecs      int
	StateSolves  int
	FFTs         int64
	InterpSweeps int64
	InterpPoints int64

	// Alltoalls counts all-to-all collectives (the latency term of the
	// transpose model); TransposeStages/TransposeFields record how many
	// pencil-transpose stages communicated and how many field-transposes
	// they carried — Fields/Stages is the achieved batching factor.
	Alltoalls       int64
	TransposeStages int64
	TransposeFields int64
}

// Outcome is the result of one registration solve on the calling rank.
type Outcome struct {
	Problem *regopt.Problem
	Result  *optim.Result[*field.Vector]

	V       *field.Vector // optimal velocity (stationary problems)
	VSeries field.Series  // optimal velocity coefficients (Intervals > 1)
	U       *field.Vector // displacement of the deformation map, y = x + u
	Det     *field.Scalar // det(grad y)
	Warped  *field.Scalar // rho_T(y1)

	MisfitInit  float64 // 1/2||rho_T - rho_R||^2 (after preprocessing)
	MisfitFinal float64
	DetMin      float64
	DetMax      float64
	DetMean     float64

	Phases PhaseBreakdown
	Counts Counts
}

// Register runs the full solve for a template/reference pair living on the
// pencil. The images are modified in place when cfg.Smooth is set.
func Register(pe *grid.Pencil, rhoT, rhoR *field.Scalar, cfg Config) (*Outcome, error) {
	ops := spectral.New(pfft.NewPlan(pe))
	if cfg.Smooth {
		ops.SmoothGridScale(rhoT)
		ops.SmoothGridScale(rhoR)
	}
	pr, err := regopt.New(ops, rhoT, rhoR, cfg.Opt)
	if err != nil {
		return nil, err
	}

	before := *pe.Comm.Stats() // snapshot to report only this solve's work
	parBefore := par.Snapshot()
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	t0 := time.Now()

	out := &Outcome{Problem: pr}
	ts := transport.NewSolver(ops, cfg.Opt.Nt)
	if cfg.Intervals > 1 {
		sp, err := regopt.NewSeries(pr, cfg.Intervals)
		if err != nil {
			return nil, err
		}
		v0 := field.NewSeries(pe, cfg.Intervals)
		var sres *optim.Result[field.Series]
		switch {
		case cfg.FirstOrder:
			sres = optim.SteepestDescent[field.Series](sp, v0, cfg.Newton)
		case len(cfg.ContinuationBetas) > 0:
			sres = optim.Continuation[field.Series](sp, sp.SetBeta, v0, cfg.ContinuationBetas, cfg.Newton)
		default:
			sres = optim.GaussNewton[field.Series](sp, v0, cfg.Newton)
		}
		out.VSeries = sres.V
		out.MisfitInit = sres.MisfitInit
		out.MisfitFinal = sres.MisfitLast
		// Adapt the series result into the scalar-result view used by the
		// reporting fields that do not depend on the velocity type.
		out.Result = &optim.Result[*field.Vector]{
			V: sres.V[0], Iters: sres.Iters,
			JInit: sres.JInit, JFinal: sres.JFinal,
			MisfitInit: sres.MisfitInit, MisfitLast: sres.MisfitLast,
			GnormInit: sres.GnormInit, GnormLast: sres.GnormLast,
			Converged: sres.Converged, History: sres.History,
		}
		out.V = sres.V[0]
		if !cfg.SkipMap {
			sc, err := ts.NewSeriesContext(sres.V, cfg.Opt.Incompressible)
			if err != nil {
				return nil, err
			}
			out.U = ts.DisplacementSeries(sc)
		}
	} else {
		drv := pr.Driver()
		v0 := cfg.V0
		if v0 == nil {
			v0 = field.NewVector(pe)
		}
		var res *optim.Result[*field.Vector]
		switch {
		case cfg.FirstOrder:
			res = optim.SteepestDescent[*field.Vector](drv, v0, cfg.Newton)
		case len(cfg.ContinuationBetas) > 0:
			res = optim.Continuation[*field.Vector](drv, drv.SetBeta, v0, cfg.ContinuationBetas, cfg.Newton)
		default:
			res = optim.GaussNewton[*field.Vector](drv, v0, cfg.Newton)
		}
		out.Result = res
		out.V = res.V
		out.MisfitInit = res.MisfitInit
		out.MisfitFinal = res.MisfitLast
		if !cfg.SkipMap {
			ctx := ts.NewContext(res.V, cfg.Opt.Incompressible)
			out.U = ts.Displacement(ctx)
		}
	}
	if out.U != nil {
		out.Det = ts.DetGrad(out.U)
		out.DetMin = out.Det.Min()
		out.DetMax = out.Det.Max()
		out.DetMean = out.Det.Mean()
		out.Warped = ts.ApplyMap(rhoT, out.U)
	}

	wall := time.Since(t0).Seconds()
	after := pe.Comm.Stats()
	out.Phases = aggregatePhases(pe.Comm, &before, after, wall)
	// Intra-rank (shared-memory) attribution: the pool counters are global
	// to the process, so every rank sees (approximately) the same interval
	// delta; the max over ranks smooths the snapshot skew.
	out.Phases.PoolWorkers = par.Workers()
	out.Phases.PoolSpeedup = pe.Comm.AllreduceMax(par.Speedup(parBefore, par.Snapshot()))
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	// The heap counters are process-global; the max over ranks just smooths
	// snapshot skew between the rank goroutines.
	out.Phases.AllocCount = pe.Comm.AllreduceMax(float64(memAfter.Mallocs - memBefore.Mallocs))
	out.Phases.AllocBytes = pe.Comm.AllreduceMax(float64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	out.Counts = Counts{
		NewtonIters:     out.Result.Iters,
		Matvecs:         pr.Matvecs,
		StateSolves:     pr.StateSolves,
		FFTs:            after.FFTs - before.FFTs,
		InterpSweeps:    after.InterpSweeps - before.InterpSweeps,
		InterpPoints:    after.InterpPoints - before.InterpPoints,
		Alltoalls:       after.Alltoalls - before.Alltoalls,
		TransposeStages: after.TransposeStages - before.TransposeStages,
		TransposeFields: after.TransposeFields - before.TransposeFields,
	}
	return out, nil
}

// aggregatePhases diffs the stats snapshots and takes the maximum over all
// ranks (the straggler determines the reported time, as with MPI timers).
func aggregatePhases(c *mpi.Comm, before, after *mpi.Stats, wall float64) PhaseBreakdown {
	b := PhaseBreakdown{
		TimeToSolution: c.AllreduceMax(wall),
		FFTComm:        c.AllreduceMax(after.ModeledComm[mpi.PhaseFFTComm] - before.ModeledComm[mpi.PhaseFFTComm]),
		FFTExec:        c.AllreduceMax(after.MeasuredExec[mpi.PhaseFFTExec] - before.MeasuredExec[mpi.PhaseFFTExec]),
		InterpComm:     c.AllreduceMax(after.ModeledComm[mpi.PhaseInterpComm] - before.ModeledComm[mpi.PhaseInterpComm]),
		InterpExec:     c.AllreduceMax(after.MeasuredExec[mpi.PhaseInterpExec] - before.MeasuredExec[mpi.PhaseInterpExec]),
	}
	return b
}

// ResidualNorms returns ||rho_T - rho_R|| and ||rho_T(y1) - rho_R|| — the
// before/after residuals visualized in Figs. 1, 6 and 7.
func (o *Outcome) ResidualNorms(rhoT, rhoR *field.Scalar) (before, afterN float64) {
	d := rhoT.Clone()
	d.Axpy(-1, rhoR)
	before = d.NormL2()
	if o.Warped != nil {
		d2 := o.Warped.Clone()
		d2.Axpy(-1, rhoR)
		afterN = d2.NormL2()
	}
	return before, afterN
}
