// Package grid describes the global periodic Cartesian grid and its pencil
// decomposition across a p1 x p2 process grid, following the data layout of
// the paper (Fig. 4): the physical-space array is split along the first two
// dimensions and each task owns a full "pencil" along the third.
package grid

import (
	"fmt"

	"diffreg/internal/mpi"
	"diffreg/internal/par"
)

// Grid is the global problem grid: N[0] x N[1] x N[2] points on the
// periodic domain [0, 2*pi)^3. Arrays are stored row-major with dimension 2
// fastest (C order).
type Grid struct {
	N [3]int
}

// New returns a grid descriptor after validating the dimensions.
func New(n1, n2, n3 int) (Grid, error) {
	if n1 < 4 || n2 < 4 || n3 < 4 {
		return Grid{}, fmt.Errorf("grid: dimensions %dx%dx%d too small (min 4)", n1, n2, n3)
	}
	return Grid{N: [3]int{n1, n2, n3}}, nil
}

// MustNew is New for sizes known to be valid (tests, examples).
func MustNew(n1, n2, n3 int) Grid {
	g, err := New(n1, n2, n3)
	if err != nil {
		panic(err)
	}
	return g
}

// Total returns the global number of grid points.
func (g Grid) Total() int { return g.N[0] * g.N[1] * g.N[2] }

// Spacing returns the grid spacing 2*pi/N[d] in dimension d.
func (g Grid) Spacing(d int) float64 { return 2 * pi / float64(g.N[d]) }

// CellVolume returns the volume element h1*h2*h3 used in quadrature.
func (g Grid) CellVolume() float64 {
	return g.Spacing(0) * g.Spacing(1) * g.Spacing(2)
}

const pi = 3.141592653589793

// Share returns the half-open range [lo, hi) of the i-th of p balanced
// shares of n items. Shares differ in size by at most one.
func Share(n, p, i int) (lo, hi int) {
	return i * n / p, (i + 1) * n / p
}

// ShareOwner returns which of p balanced shares of n items contains index j.
func ShareOwner(n, p, j int) int {
	// Balanced shares are monotone; invert with a guess plus local search.
	i := j * p / n
	for {
		lo, hi := Share(n, p, i)
		if j < lo {
			i--
		} else if j >= hi {
			i++
		} else {
			return i
		}
	}
}

// ProcGrid factors p into p1 x p2 as squarely as possible (p1 <= p2).
func ProcGrid(p int) (p1, p2 int) {
	p1 = 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			p1 = d
		}
	}
	return p1, p / p1
}

// Pencil is one rank's portion of the grid in the physical-space layout:
// dimensions 0 and 1 are split across the p1 x p2 process grid and
// dimension 2 is complete.
type Pencil struct {
	Grid  Grid
	P     [2]int // process grid (p1, p2)
	Coord [2]int // this rank's coordinates (r1, r2)
	Lo    [3]int // inclusive lower corner of the owned block
	Hi    [3]int // exclusive upper corner
	Comm  *mpi.Comm
	Row   *mpi.Comm // ranks with equal Coord[0] (varying r2), size p2
	Col   *mpi.Comm // ranks with equal Coord[1] (varying r1), size p1
}

// NewPencil builds the pencil decomposition for the calling rank. The
// communicator size must equal p1*p2 for some factorization chosen by
// ProcGrid, and each split dimension must have at least 4 points per rank
// (the tricubic stencil width).
func NewPencil(g Grid, comm *mpi.Comm) (*Pencil, error) {
	p := comm.Size()
	p1, p2 := ProcGrid(p)
	if g.N[0]/p1 < 4 || g.N[1]/p2 < 4 {
		return nil, fmt.Errorf("grid: %v over %dx%d tasks leaves fewer than 4 planes per rank", g.N, p1, p2)
	}
	r1 := comm.Rank() / p2
	r2 := comm.Rank() % p2
	pe := &Pencil{Grid: g, P: [2]int{p1, p2}, Coord: [2]int{r1, r2}, Comm: comm}
	pe.Lo[0], pe.Hi[0] = Share(g.N[0], p1, r1)
	pe.Lo[1], pe.Hi[1] = Share(g.N[1], p2, r2)
	pe.Lo[2], pe.Hi[2] = 0, g.N[2]
	pe.Row = comm.Split(r1, r2)
	pe.Col = comm.Split(r2, r1)
	return pe, nil
}

// Local returns the local extent in dimension d.
func (p *Pencil) Local(d int) int { return p.Hi[d] - p.Lo[d] }

// LocalTotal returns the number of locally owned points.
func (p *Pencil) LocalTotal() int { return p.Local(0) * p.Local(1) * p.Local(2) }

// Index converts local coordinates to the flat index in the local array.
func (p *Pencil) Index(i1, i2, i3 int) int {
	return (i1*p.Local(1)+i2)*p.Local(2) + i3
}

// OwnerOf returns the communicator rank whose pencil owns global point
// (j1, j2) in the first two dimensions (dimension 2 is never split).
func (p *Pencil) OwnerOf(j1, j2 int) int {
	r1 := ShareOwner(p.Grid.N[0], p.P[0], j1)
	r2 := ShareOwner(p.Grid.N[1], p.P[1], j2)
	return r1*p.P[1] + r2
}

// RankShare returns the owned range of rank r in dimension d (d = 0 or 1).
func (p *Pencil) RankShare(d, r int) (lo, hi int) {
	if d == 0 {
		return Share(p.Grid.N[0], p.P[0], r)
	}
	return Share(p.Grid.N[1], p.P[1], r)
}

// Coords returns the physical coordinates (x1, x2, x3) of the local point
// with local indices (i1, i2, i3).
func (p *Pencil) Coords(i1, i2, i3 int) (x1, x2, x3 float64) {
	h1, h2, h3 := p.Grid.Spacing(0), p.Grid.Spacing(1), p.Grid.Spacing(2)
	return float64(p.Lo[0]+i1) * h1, float64(p.Lo[1]+i2) * h2, float64(p.Lo[2]+i3) * h3
}

// EachLocal invokes fn for every locally owned point, passing local indices
// and the flat local array offset. The iteration order matches the array
// layout so fn bodies stream through memory.
func (p *Pencil) EachLocal(fn func(i1, i2, i3, idx int)) {
	n1, n2, n3 := p.Local(0), p.Local(1), p.Local(2)
	idx := 0
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				fn(i1, i2, i3, idx)
				idx++
			}
		}
	}
}

// EachLocalPar is EachLocal on the worker pool: contiguous flat-index
// chunks are evaluated concurrently, so fn must write only data indexed by
// idx (or otherwise disjoint per point). Within a chunk the order matches
// the array layout; across chunks it is unspecified.
func (p *Pencil) EachLocalPar(fn func(i1, i2, i3, idx int)) {
	n1, n2, n3 := p.Local(0), p.Local(1), p.Local(2)
	par.For(n1*n2*n3, func(lo, hi int) {
		i1 := lo / (n2 * n3)
		rem := lo % (n2 * n3)
		i2 := rem / n3
		i3 := rem % n3
		for idx := lo; idx < hi; idx++ {
			fn(i1, i2, i3, idx)
			i3++
			if i3 == n3 {
				i3 = 0
				i2++
				if i2 == n2 {
					i2 = 0
					i1++
				}
			}
		}
	})
}
