// Package semilag implements the semi-Lagrangian machinery of the paper:
// RK2 characteristic tracing (eq. 6), the distributed off-grid tricubic
// interpolation with its scatter/ghost communication pattern (Algorithm 1),
// and the reusable interpolation plan that is built once per velocity field
// per Newton iteration.
package semilag

import (
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// GhostWidth is the halo width required by the tricubic stencil: a query
// whose base cell is owned locally touches at most one plane below and two
// planes above the owned block.
const GhostWidth = 2

// Ghost exchanges halo layers of width GhostWidth in the two decomposed
// dimensions of a pencil. The third dimension is complete on every rank and
// wraps locally. Each exchange is the paper's "layer of ghost points ...
// synchronized before interpolation takes place", with the four corner
// blocks folded into the second phase, costing 4(tw N^2/p + ts) per rank.
type Ghost struct {
	Pe *grid.Pencil
}

// NewGhost returns a halo exchanger for the pencil.
func NewGhost(pe *grid.Pencil) *Ghost { return &Ghost{Pe: pe} }

// PaddedDims returns the dimensions of the padded local array.
func (g *Ghost) PaddedDims() [3]int {
	pe := g.Pe
	return [3]int{pe.Local(0) + 2*GhostWidth, pe.Local(1) + 2*GhostWidth, pe.Local(2)}
}

// PaddedLen returns the element count of the padded local array.
func (g *Ghost) PaddedLen() int {
	pd := g.PaddedDims()
	return pd[0] * pd[1] * pd[2]
}

// blockLens returns the element counts of the phase-A row block and the
// phase-B column slab (the two neighbor-exchange payloads of Pad).
func (g *Ghost) blockLens() (rb, cb int) {
	pe := g.Pe
	const G = GhostWidth
	pd := g.PaddedDims()
	return G * pe.Local(1) * pe.Local(2), pd[0] * G * pe.Local(2)
}

// MaxBlockLen returns the staging-scratch size PadInto needs: the larger
// of the two neighbor-exchange payloads.
func (g *Ghost) MaxBlockLen() int {
	rb, cb := g.blockLens()
	if cb > rb {
		return cb
	}
	return rb
}

// Halo exchange tags. Solo pads use 101-104; the batched (cross-job
// fused) exchange uses 111-114 so its concatenated payloads can never be
// confused with a solo exchange on the same communicator pair.
const (
	tagRowUp    = 101
	tagRowDown  = 102
	tagColRight = 103
	tagColLeft  = 104

	tagBatchRowUp    = 111
	tagBatchRowDown  = 112
	tagBatchColRight = 113
	tagBatchColLeft  = 114
)

// interiorInto copies the local field into the interior of the padded
// array dst.
func (g *Ghost) interiorInto(dst, f []float64) {
	pe := g.Pe
	const G = GhostWidth
	n1, n2, n3 := pe.Local(0), pe.Local(1), pe.Local(2)
	pd := g.PaddedDims()
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			src := (i1*n2 + i2) * n3
			dst0 := ((i1+G)*pd[1] + (i2 + G)) * pd[2]
			copy(dst[dst0:dst0+n3], f[src:src+n3])
		}
	}
}

// rowBlockInto packs GhostWidth rows of the unpadded field starting at
// i1lo into blk (the phase-A payload).
func (g *Ghost) rowBlockInto(blk, f []float64, i1lo int) {
	pe := g.Pe
	const G = GhostWidth
	n2, n3 := pe.Local(1), pe.Local(2)
	pos := 0
	for i1 := i1lo; i1 < i1lo+G; i1++ {
		src := i1 * n2 * n3
		copy(blk[pos:pos+n2*n3], f[src:src+n2*n3])
		pos += n2 * n3
	}
}

// placeRows unpacks a phase-A payload into the padded array at padded row
// pi1lo.
func (g *Ghost) placeRows(dst []float64, pi1lo int, blk []float64) {
	pe := g.Pe
	const G = GhostWidth
	n2, n3 := pe.Local(1), pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for i1 := 0; i1 < G; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			d := ((pi1lo+i1)*pd[1] + (i2 + G)) * pd[2]
			copy(dst[d:d+n3], blk[pos:pos+n3])
			pos += n3
		}
	}
}

// colBlockInto packs GhostWidth columns starting at padded column pi2lo
// into blk (the phase-B payload). It reads the padded array, so the
// phase-A corners travel for free.
func (g *Ghost) colBlockInto(blk, padded []float64, pi2lo int) {
	pe := g.Pe
	const G = GhostWidth
	n3 := pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for pi1 := 0; pi1 < pd[0]; pi1++ {
		for i2 := pi2lo; i2 < pi2lo+G; i2++ {
			src := (pi1*pd[1] + i2) * pd[2]
			copy(blk[pos:pos+n3], padded[src:src+n3])
			pos += n3
		}
	}
}

// placeCols unpacks a phase-B payload into the padded array at padded
// column pi2lo.
func (g *Ghost) placeCols(dst []float64, pi2lo int, blk []float64) {
	pe := g.Pe
	const G = GhostWidth
	n3 := pe.Local(2)
	pd := g.PaddedDims()
	pos := 0
	for pi1 := 0; pi1 < pd[0]; pi1++ {
		for i2 := 0; i2 < G; i2++ {
			d := (pi1*pd[1] + pi2lo + i2) * pd[2]
			copy(dst[d:d+n3], blk[pos:pos+n3])
			pos += n3
		}
	}
}

// Pad returns a copy of the local field extended by halo layers obtained
// from the neighboring ranks (or by periodic wrap when a dimension is not
// split). The input field has the pencil's local dimensions.
func (g *Ghost) Pad(f []float64) []float64 {
	out := make([]float64, g.PaddedLen())
	g.PadInto(out, f, make([]float64, g.MaxBlockLen()))
	return out
}

// PadInto fills dst (length PaddedLen) with the halo-padded field, staging
// neighbor-exchange payloads in blk (length at least MaxBlockLen). It is
// the allocation-free core of Pad: with a plan-owned dst and blk the only
// allocations left are the receive buffers the MPI layer hands back.
func (g *Ghost) PadInto(dst, f, blk []float64) {
	pe := g.Pe
	const G = GhostWidth
	n1, n2 := pe.Local(0), pe.Local(1)
	p1, p2 := pe.P[0], pe.P[1]

	g.interiorInto(dst, f)

	// Phases are per-communicator: set the split comms too so the halo
	// point-to-points are charged to interpolation communication.
	old := pe.Comm.SetPhase(mpi.PhaseInterpComm)
	oldCol := pe.Col.SetPhase(mpi.PhaseInterpComm)
	oldRow := pe.Row.SetPhase(mpi.PhaseInterpComm)
	defer func() {
		pe.Comm.SetPhase(old)
		pe.Col.SetPhase(oldCol)
		pe.Row.SetPhase(oldRow)
	}()

	// Phase A: exchange rows along dimension 0 within the column
	// communicator (ranks differing in coordinate r1). Rows span only the
	// owned dimension-1 range.
	rb, cb := g.blockLens()
	if p1 == 1 {
		g.rowBlockInto(blk[:rb], f, n1-G)
		g.placeRows(dst, 0, blk[:rb])
		g.rowBlockInto(blk[:rb], f, 0)
		g.placeRows(dst, n1+G, blk[:rb])
	} else {
		col := pe.Col
		up := (pe.Coord[0] + 1) % p1
		down := (pe.Coord[0] - 1 + p1) % p1
		g.rowBlockInto(blk[:rb], f, n1-G)
		col.Send(up, tagRowUp, blk[:rb]) // my top rows -> their low ghosts
		g.rowBlockInto(blk[:rb], f, 0)
		col.Send(down, tagRowDown, blk[:rb]) // my bottom rows -> their high ghosts
		g.placeRows(dst, 0, col.Recv(down, tagRowUp).([]float64))
		g.placeRows(dst, n1+G, col.Recv(up, tagRowDown).([]float64))
	}

	// Phase B: exchange slabs along dimension 1 within the row
	// communicator. Slabs span the full padded dimension 0, so the corner
	// halos arrive for free.
	if p2 == 1 {
		g.colBlockInto(blk[:cb], dst, n2)
		g.placeCols(dst, 0, blk[:cb])
		g.colBlockInto(blk[:cb], dst, G)
		g.placeCols(dst, n2+G, blk[:cb])
	} else {
		row := pe.Row
		right := (pe.Coord[1] + 1) % p2
		left := (pe.Coord[1] - 1 + p2) % p2
		g.colBlockInto(blk[:cb], dst, n2)
		row.Send(right, tagColRight, blk[:cb]) // my rightmost owned columns
		g.colBlockInto(blk[:cb], dst, G)
		row.Send(left, tagColLeft, blk[:cb]) // my leftmost owned columns
		g.placeCols(dst, 0, row.Recv(left, tagColRight).([]float64))
		g.placeCols(dst, n2+G, row.Recv(right, tagColLeft).([]float64))
	}
}
