package pfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"diffreg/internal/fft"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
)

// globalField builds a deterministic global array so every rank can fill
// its local portion consistently.
func globalField(n [3]int) []float64 {
	rng := rand.New(rand.NewSource(42))
	out := make([]float64, n[0]*n[1]*n[2])
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

func localPart(pe *grid.Pencil, global []float64) []float64 {
	n := pe.Grid.N
	out := make([]float64, pe.LocalTotal())
	pe.EachLocal(func(i1, i2, i3, idx int) {
		g := ((pe.Lo[0]+i1)*n[1]+(pe.Lo[1]+i2))*n[2] + (pe.Lo[2] + i3)
		out[idx] = global[g]
	})
	return out
}

// TestForwardMatchesSerial compares the distributed spectrum against the
// serial 3D reference transform for several grid shapes and task counts.
func TestForwardMatchesSerial(t *testing.T) {
	cases := []struct {
		n [3]int
		p int
	}{
		{[3]int{8, 8, 8}, 1},
		{[3]int{8, 8, 8}, 2},
		{[3]int{8, 8, 8}, 4},
		{[3]int{8, 12, 6}, 2},
		{[3]int{16, 8, 12}, 4},
		{[3]int{8, 12, 10}, 6},
		{[3]int{12, 15, 8}, 3}, // non-power-of-two everywhere
	}
	for _, tc := range cases {
		g := grid.MustNew(tc.n[0], tc.n[1], tc.n[2])
		global := globalField(g.N)
		want := fft.Forward3Real(global, g.N[0], g.N[1], g.N[2])
		m3 := fft.HalfLen(g.N[2])
		_, err := mpi.Run(tc.p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			spec := mustFwd(pl, localPart(pe, global))
			d := pl.SpecDims()
			if len(spec) != d[0]*d[1]*d[2] {
				t.Errorf("spec len %d dims %v", len(spec), d)
			}
			idx := 0
			for i1 := 0; i1 < d[0]; i1++ {
				for i2 := 0; i2 < d[1]; i2++ {
					for i3 := 0; i3 < d[2]; i3++ {
						g1 := i1
						g2 := pl.specLo[1] + i2
						g3 := pl.specLo[2] + i3
						ref := want[(g1*g.N[1]+g2)*m3+g3]
						if cmplx.Abs(spec[idx]-ref) > 1e-8 {
							t.Errorf("n=%v p=%d: spec(%d,%d,%d) = %v want %v",
								tc.n, tc.p, g1, g2, g3, spec[idx], ref)
							return nil
						}
						idx++
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%v p=%d: %v", tc.n, tc.p, err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		g := grid.MustNew(8, 12, 10)
		global := globalField(g.N)
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			local := localPart(pe, global)
			spec := mustFwd(pl, local)
			back := mustInv(pl, spec)
			for i := range local {
				if math.Abs(local[i]-back[i]) > 1e-9 {
					t.Errorf("p=%d: roundtrip error at %d: %g vs %g", p, i, local[i], back[i])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestWavenumber(t *testing.T) {
	// For n=8: indices 0..4 map to 0..4, 5..7 map to -3..-1.
	wants := []int{0, 1, 2, 3, 4, -3, -2, -1}
	for j, want := range wants {
		if k := Wavenumber(j, 8); k != want {
			t.Errorf("Wavenumber(%d,8)=%d want %d", j, k, want)
		}
	}
}

func TestEachSpecCoversAll(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(4, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlan(pe)
		count := 0
		pl.EachSpec(func(idx, k1, k2, k3 int) {
			if idx != count {
				t.Errorf("idx %d want %d", idx, count)
			}
			if k1 < -4 || k1 > 4 || k2 < -4 || k2 > 4 || k3 < 0 || k3 > 4 {
				t.Errorf("wavenumbers out of range: %d %d %d", k1, k2, k3)
			}
			count++
		})
		if count != pl.SpecLocalTotal() {
			t.Errorf("visited %d want %d", count, pl.SpecLocalTotal())
		}
		// Global sum of visited coefficients must equal N1*N2*HalfLen(N3).
		total := int(pe.Comm.AllreduceSum(float64(count)))
		want := g.N[0] * g.N[1] * fft.HalfLen(g.N[2])
		if total != want {
			t.Errorf("global spec count %d want %d", total, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDerivativeViaSpectrum differentiates sin(x1) spectrally through the
// distributed transform and checks against cos(x1) — an end-to-end check
// that the spectral layout and wavenumber bookkeeping agree.
func TestDerivativeViaSpectrum(t *testing.T) {
	g := grid.MustNew(16, 8, 8)
	for _, p := range []int{1, 4} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			pl := NewPlan(pe)
			local := make([]float64, pe.LocalTotal())
			pe.EachLocal(func(i1, i2, i3, idx int) {
				x1, _, _ := pe.Coords(i1, i2, i3)
				local[idx] = math.Sin(x1)
			})
			spec := mustFwd(pl, local)
			pl.EachSpec(func(idx, k1, k2, k3 int) {
				spec[idx] *= complex(0, float64(k1))
			})
			der := mustInv(pl, spec)
			pe.EachLocal(func(i1, i2, i3, idx int) {
				x1, _, _ := pe.Coords(i1, i2, i3)
				if math.Abs(der[idx]-math.Cos(x1)) > 1e-9 {
					t.Errorf("p=%d: derivative at x=%g: %g want %g", p, x1, der[idx], math.Cos(x1))
				}
			})
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestTransposeCommVolume verifies the transpose exchanges the expected
// data volume: each forward transform moves ~2 * N^3/p complex elements
// per rank (one per transpose), matching the paper's model.
func TestTransposeCommVolume(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	p := 4
	stats, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		pl := NewPlan(pe)
		local := make([]float64, pe.LocalTotal())
		mustFwd(pl, local)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.BytesRecv[mpi.PhaseFFTComm] == 0 {
			t.Errorf("rank %d: no FFT communication recorded", r)
		}
		if s.ModeledComm[mpi.PhaseFFTComm] <= 0 {
			t.Errorf("rank %d: no modeled comm time", r)
		}
	}
}

func TestTransferSpectrumIdentityGrid(t *testing.T) {
	// Transfer between two plans on the SAME grid is the identity.
	g := grid.MustNew(8, 12, 10)
	global := globalField(g.N)
	for _, p := range []int{1, 4, 6} {
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			plA := NewPlan(pe)
			plB := NewPlan(pe)
			spec := mustFwd(plA, localPart(pe, global))
			moved := TransferSpectrum(plA, plB, spec)
			back := mustInv(plB, moved)
			local := localPart(pe, global)
			// Nyquist modes are dropped by the transfer; compare after
			// removing them from the reference by a roundtrip.
			specRef := mustFwd(plA, local)
			n := g.N
			plA.EachSpec(func(idx, k1, k2, k3 int) {
				if 2*k1 >= n[0] || 2*k1 <= -n[0] || 2*k2 >= n[1] || 2*k2 <= -n[1] || 2*k3 >= n[2] {
					specRef[idx] = 0
				}
			})
			ref := mustInv(plA, specRef)
			for i := range back {
				if math.Abs(back[i]-ref[i]) > 1e-9 {
					t.Errorf("p=%d: identity transfer differs at %d: %g vs %g", p, i, back[i], ref[i])
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestTransferSpectrumParsevalBound(t *testing.T) {
	// Restriction cannot increase the (function-value) energy: the coarse
	// field's L2 norm is bounded by the fine one's.
	fine := grid.MustNew(16, 16, 16)
	coarse := grid.MustNew(8, 8, 8)
	global := globalField(fine.N)
	_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		peF, _ := grid.NewPencil(fine, c)
		peC, _ := grid.NewPencil(coarse, c)
		plF := NewPlan(peF)
		plC := NewPlan(peC)
		local := localPart(peF, global)
		spec := mustFwd(plF, local)
		moved := TransferSpectrum(plF, plC, spec)
		down := mustInv(plC, moved)
		var eF, eC float64
		for _, v := range local {
			eF += v * v
		}
		for _, v := range down {
			eC += v * v
		}
		eF = c.AllreduceSum(eF) / float64(fine.Total())
		eC = c.AllreduceSum(eC) / float64(coarse.Total())
		if eC > eF*(1+1e-12) {
			t.Errorf("restriction increased mean energy: %g > %g", eC, eF)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
