// Package pfft implements the distributed-memory 3D real-to-complex FFT on
// a pencil decomposition, following the communication structure of AccFFT
// used in the paper (Fig. 4): a local 1D transform along the complete
// third dimension, a transpose among the sqrt(p)-sized row communicators,
// a transform along the second dimension, a transpose among the column
// communicators, and a final transform along the first dimension. Each
// transpose is an all-to-all of N^3/p elements per rank, which is exactly
// the 3*N^3/p + ts*sqrt(p) term of the paper's communication model.
package pfft

import (
	"time"

	"diffreg/internal/fft"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
)

// lineGrain is the chunk granularity for per-line work: one item is a full
// 1D transform, so a handful of lines per chunk already amortizes the pool
// overhead while leaving enough chunks for load balance.
const lineGrain = 8

// Plan holds the per-rank state of the distributed transform.
type Plan struct {
	Pe *grid.Pencil

	m3      int    // retained complex length of dim 2 (N3/2+1)
	specDim [3]int // local spectral dims: (N1, share(N2,p1), share(M3,p2))
	specLo  [3]int // global offsets of the local spectral block

	plan1, plan2, plan3 *fft.Plan
}

// NewPlan builds a transform plan for the pencil decomposition.
func NewPlan(pe *grid.Pencil) *Plan {
	n := pe.Grid.N
	pl := &Plan{Pe: pe, m3: fft.HalfLen(n[2])}
	pl.plan1 = fft.NewPlan(n[0])
	pl.plan2 = fft.NewPlan(n[1])
	pl.plan3 = fft.NewPlan(n[2])
	lo2, hi2 := grid.Share(n[1], pe.P[0], pe.Coord[0])
	lo3, hi3 := grid.Share(pl.m3, pe.P[1], pe.Coord[1])
	pl.specDim = [3]int{n[0], hi2 - lo2, hi3 - lo3}
	pl.specLo = [3]int{0, lo2, lo3}
	return pl
}

// SpecDims returns the local dimensions of the spectral array.
func (pl *Plan) SpecDims() [3]int { return pl.specDim }

// SpecLocalTotal returns the number of local spectral coefficients.
func (pl *Plan) SpecLocalTotal() int {
	return pl.specDim[0] * pl.specDim[1] * pl.specDim[2]
}

// Wavenumber maps a global spectral grid index j along a dimension of
// global length n to the signed integer wavenumber.
func Wavenumber(j, n int) int {
	if j <= n/2 {
		return j
	}
	return j - n
}

// EachSpec iterates over the local spectral coefficients, passing the flat
// local index and the signed wavenumbers (k1, k2, k3).
func (pl *Plan) EachSpec(fn func(idx, k1, k2, k3 int)) {
	n := pl.Pe.Grid.N
	d := pl.specDim
	idx := 0
	for i1 := 0; i1 < d[0]; i1++ {
		k1 := Wavenumber(i1, n[0])
		for i2 := 0; i2 < d[1]; i2++ {
			k2 := Wavenumber(pl.specLo[1]+i2, n[1])
			for i3 := 0; i3 < d[2]; i3++ {
				k3 := pl.specLo[2] + i3 // r2c keeps only k3 in [0, N3/2]
				fn(idx, k1, k2, k3)
				idx++
			}
		}
	}
}

// EachSpecPar is EachSpec on the worker pool: the flat spectral index range
// is split into deterministic contiguous chunks evaluated concurrently.
// fn must write only data indexed by idx; the wavenumbers passed are
// identical to EachSpec's.
func (pl *Plan) EachSpecPar(fn func(idx, k1, k2, k3 int)) {
	n := pl.Pe.Grid.N
	d := pl.specDim
	par.For(d[0]*d[1]*d[2], func(lo, hi int) {
		i1 := lo / (d[1] * d[2])
		rem := lo % (d[1] * d[2])
		i2 := rem / d[2]
		i3 := rem % d[2]
		k1 := Wavenumber(i1, n[0])
		k2 := Wavenumber(pl.specLo[1]+i2, n[1])
		for idx := lo; idx < hi; idx++ {
			fn(idx, k1, k2, pl.specLo[2]+i3)
			i3++
			if i3 == d[2] {
				i3 = 0
				i2++
				if i2 == d[1] {
					i2 = 0
					i1++
					if i1 < d[0] {
						k1 = Wavenumber(i1, n[0])
					}
				}
				k2 = Wavenumber(pl.specLo[1]+i2, n[1])
			}
		}
	})
}

// Forward computes the unnormalized 3D r2c transform of the local real
// pencil (dims Local(0) x Local(1) x N3) and returns the local spectral
// block in the layout described by SpecDims.
func (pl *Plan) Forward(src []float64) []complex128 {
	pe := pl.Pe
	pe.Comm.CountFFT()
	n1, n2 := pe.Local(0), pe.Local(1)
	n3 := pe.Grid.N[2]
	m3 := pl.m3

	t0 := time.Now()
	// Stage 1: r2c along the complete dimension 2, one pool chunk per batch
	// of pencil lines.
	a := make([]complex128, n1*n2*m3)
	par.Chunked(n1*n2, lineGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pl.plan3.ForwardReal(src[i*n3:(i+1)*n3], a[i*m3:(i+1)*m3])
		}
	})
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Stage 2: transpose in the row communicator — unsplit dim 1, split
	// dim 2: (n1, n2loc, m3) -> (n1, N2, m3loc).
	a, dims := reshuffle(pe.Row, a, [3]int{n1, n2, m3}, 1, 2, pe.Grid.N[1])

	t0 = time.Now()
	transformAxisLocal(pl.plan2, a, dims, 1, false)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Stage 3: transpose in the column communicator — unsplit dim 0,
	// split dim 1: (n1loc, N2, m3loc) -> (N1, n2loc2, m3loc).
	a, dims = reshuffle(pe.Col, a, dims, 0, 1, pe.Grid.N[0])

	t0 = time.Now()
	transformAxisLocal(pl.plan1, a, dims, 0, false)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	if dims != pl.specDim {
		panic("pfft: spectral dims mismatch")
	}
	return a
}

// Inverse computes the normalized inverse transform of a local spectral
// block back to the local real pencil. The input is not modified.
func (pl *Plan) Inverse(spec []complex128) []float64 {
	pe := pl.Pe
	pe.Comm.CountFFT()
	a := make([]complex128, len(spec))
	copy(a, spec)
	dims := pl.specDim

	t0 := time.Now()
	transformAxisLocal(pl.plan1, a, dims, 0, true)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Undo the column transpose: split dim 0, unsplit dim 1.
	a, dims = reshuffle(pe.Col, a, dims, 1, 0, pe.Grid.N[1])

	t0 = time.Now()
	transformAxisLocal(pl.plan2, a, dims, 1, true)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Undo the row transpose: split dim 1, unsplit dim 2.
	a, dims = reshuffle(pe.Row, a, dims, 2, 1, pl.m3)

	t0 = time.Now()
	n3 := pe.Grid.N[2]
	out := make([]float64, pe.LocalTotal())
	par.Chunked(dims[0]*dims[1], lineGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pl.plan3.InverseReal(a[i*pl.m3:(i+1)*pl.m3], out[i*n3:(i+1)*n3])
		}
	})
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())
	return out
}

// reshuffle redistributes a local 3D complex block within comm: axis u,
// currently split across the communicator, becomes complete (global length
// gu), while axis s, currently complete, becomes split. Returns the new
// local block and its dimensions.
func reshuffle(c *mpi.Comm, data []complex128, dims [3]int, u, s, gu int) ([]complex128, [3]int) {
	q := c.Size()
	if q == 1 {
		// Nothing moves; dims stay identical because the split shares are
		// the whole axes.
		newDims := dims
		newDims[u] = gu
		newDims[s] = dims[s]
		res := make([]complex128, len(data))
		copy(res, data)
		return res, newDims
	}
	old := c.SetPhase(mpi.PhaseFFTComm)
	defer c.SetPhase(old)

	send := make([][]complex128, q)
	for t := 0; t < q; t++ {
		lo, hi := grid.Share(dims[s], q, t)
		blockDims := dims
		blockDims[s] = hi - lo
		off := [3]int{}
		off[s] = lo
		send[t] = packBlock(data, dims, off, blockDims)
	}
	recv := c.AlltoallvComplex(send)

	myLoS, myHiS := grid.Share(dims[s], q, c.Rank())
	newDims := dims
	newDims[u] = gu
	newDims[s] = myHiS - myLoS
	res := make([]complex128, newDims[0]*newDims[1]*newDims[2])
	for r := 0; r < q; r++ {
		loU, hiU := grid.Share(gu, q, r)
		blockDims := newDims
		blockDims[u] = hiU - loU
		off := [3]int{}
		off[u] = loU
		unpackBlock(res, newDims, off, blockDims, recv[r])
	}
	return res, newDims
}

// packBlock extracts the sub-block of a 3D array starting at off with the
// given block dimensions into a contiguous slice.
func packBlock(src []complex128, dims, off, blk [3]int) []complex128 {
	out := make([]complex128, blk[0]*blk[1]*blk[2])
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			copy(out[pos:pos+blk[2]], src[base:base+blk[2]])
			pos += blk[2]
		}
	}
	return out
}

// unpackBlock writes a contiguous block into the sub-region of dst at off.
func unpackBlock(dst []complex128, dims, off, blk [3]int, src []complex128) {
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			copy(dst[base:base+blk[2]], src[pos:pos+blk[2]])
			pos += blk[2]
		}
	}
}

// transformAxisLocal applies the 1D transform along the given axis of the
// local block. Lines are independent, so batches of them run concurrently
// on the worker pool with per-chunk scratch.
func transformAxisLocal(p *fft.Plan, a []complex128, dims [3]int, axis int, inverse bool) {
	length := dims[axis]
	if p.Len() != length {
		panic("pfft: plan length mismatch")
	}
	switch axis {
	case 0:
		stride := dims[1] * dims[2]
		par.Chunked(stride, lineGrain, func(lo, hi int) {
			line := make([]complex128, length)
			res := make([]complex128, length)
			for c := lo; c < hi; c++ {
				for j := 0; j < length; j++ {
					line[j] = a[c+j*stride]
				}
				apply(p, line, res, inverse)
				for j := 0; j < length; j++ {
					a[c+j*stride] = res[j]
				}
			}
		})
	case 1:
		stride := dims[2]
		// One item per (i0, i2) pair, i2 fastest — matches the serial order.
		par.Chunked(dims[0]*dims[2], lineGrain, func(lo, hi int) {
			line := make([]complex128, length)
			res := make([]complex128, length)
			for c := lo; c < hi; c++ {
				i0, i2 := c/dims[2], c%dims[2]
				base := i0*dims[1]*dims[2] + i2
				for j := 0; j < length; j++ {
					line[j] = a[base+j*stride]
				}
				apply(p, line, res, inverse)
				for j := 0; j < length; j++ {
					a[base+j*stride] = res[j]
				}
			}
		})
	case 2:
		par.Chunked(dims[0]*dims[1], lineGrain, func(lo, hi int) {
			line := make([]complex128, length)
			res := make([]complex128, length)
			for i := lo; i < hi; i++ {
				copy(line, a[i*length:(i+1)*length])
				apply(p, line, res, inverse)
				copy(a[i*length:(i+1)*length], res)
			}
		})
	}
}

func apply(p *fft.Plan, line, res []complex128, inverse bool) {
	if inverse {
		p.Inverse(line, res)
	} else {
		p.Forward(line, res)
	}
}
