package regopt

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/optim"
)

func TestL2DistanceMatchesInline(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		d := L2Distance{}
		val := d.Eval(pr.RhoT, pr.RhoR)
		diff := pr.RhoT.Clone()
		diff.Axpy(-1, pr.RhoR)
		if want := 0.5 * diff.Dot(diff); math.Abs(val-want) > 1e-12 {
			t.Errorf("L2 eval %g want %g", val, want)
		}
		lam := d.TerminalAdjoint(pr.RhoT, pr.RhoR)
		for i := range lam.Data {
			if math.Abs(lam.Data[i]-(pr.RhoR.Data[i]-pr.RhoT.Data[i])) > 1e-14 {
				t.Errorf("L2 terminal adjoint wrong at %d", i)
				return nil
			}
		}
		return nil
	})
}

func TestNCCProperties(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		d := NCCDistance{}
		// Perfectly correlated images give D = 0 even under affine
		// intensity rescaling — the property L2 lacks.
		scaled := pr.RhoR.Clone()
		scaled.Scale(3)
		for i := range scaled.Data {
			scaled.Data[i] += 0.7
		}
		if v := d.Eval(scaled, pr.RhoR); v > 1e-10 {
			t.Errorf("NCC of rescaled copy: %g, want ~0", v)
		}
		// D in [0, 1], and positive for genuinely different images.
		if v := d.Eval(pr.RhoT, pr.RhoR); v <= 0 || v > 1 {
			t.Errorf("NCC out of range: %g", v)
		}
		// At the perfect match the gradient must vanish.
		lam := d.TerminalAdjoint(scaled, pr.RhoR)
		// TerminalAdjoint at correlation 1: w - (a/b)u = w - w = 0 after
		// accounting for the scale.
		if m := lam.MaxAbs(); m > 1e-9 {
			t.Errorf("NCC terminal adjoint at optimum: %g", m)
		}
		return nil
	})
}

func TestNCCGradientMatchesFiniteDifference(t *testing.T) {
	// Full reduced-gradient check with the NCC measure: the decisive test
	// that the terminal adjoint is correct.
	g := grid.MustNew(16, 16, 16)
	opt := DefaultOptions()
	opt.Distance = NCCDistance{}
	setup(t, g, 1, opt, func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		w := testDirection(pr.Pe)
		e := pr.EvalGradient(v)
		gw := e.G.Dot(w)
		eps := 1e-5
		vp := v.Clone()
		vp.Axpy(eps, w)
		vm := v.Clone()
		vm.Axpy(-eps, w)
		fd := (pr.Evaluate(vp).J - pr.Evaluate(vm).J) / (2 * eps)
		rel := math.Abs(gw-fd) / (math.Abs(fd) + 1e-12)
		if rel > 0.05 {
			t.Errorf("NCC gradient vs FD: %g vs %g (rel %g)", gw, fd, rel)
		}
		return nil
	})
}

func TestNCCHessianMatchesGradientDifference(t *testing.T) {
	// The exact second derivative in IncTerminal must make the full-Newton
	// matvec match finite differences of the gradient.
	g := grid.MustNew(16, 16, 16)
	opt := Options{Beta: 1e-2, Reg: RegH2, Nt: 4, GaussNewton: false, Distance: NCCDistance{}}
	setup(t, g, 1, opt, func(pr *Problem) error {
		v := testVelocity(pr.Pe)
		w := testDirection(pr.Pe)
		e := pr.EvalGradient(v)
		hw := pr.HessMatVec(e, w)
		eps := 1e-4
		vp := v.Clone()
		vp.Axpy(eps, w)
		vm := v.Clone()
		vm.Axpy(-eps, w)
		gp := pr.EvalGradient(vp).G
		gm := pr.EvalGradient(vm).G
		fd := gp.Clone()
		fd.Axpy(-1, gm)
		fd.Scale(1 / (2 * eps))
		diff := hw.Clone()
		diff.Axpy(-1, fd)
		if rel := diff.NormL2() / (fd.NormL2() + 1e-12); rel > 0.08 {
			t.Errorf("NCC Hessian vs FD(grad): rel %g", rel)
		}
		return nil
	})
}

func TestNCCRegistrationHandlesIntensityRescaling(t *testing.T) {
	// The headline use case: the reference has a different intensity
	// scale. NCC registration must still drive its own misfit down and
	// produce a diffeomorphic map, where the L2 objective cannot even in
	// principle reach a small residual.
	g := grid.MustNew(16, 16, 16)
	opt := DefaultOptions()
	opt.Beta = 1e-3
	opt.Distance = NCCDistance{}
	setup(t, g, 1, opt, func(pr *Problem) error {
		// Rescale the reference intensities: rhoR <- 2*rhoR + 0.5.
		pr.RhoR.Scale(2)
		for i := range pr.RhoR.Data {
			pr.RhoR.Data[i] += 0.5
		}
		res := optim.GaussNewton[*field.Vector](pr.Driver(), field.NewVector(pr.Pe), optim.DefaultNewtonOptions())
		if res.MisfitLast > 0.3*res.MisfitInit {
			t.Errorf("NCC misfit %g -> %g under rescaling", res.MisfitInit, res.MisfitLast)
		}
		return nil
	})
}

func TestWeightedL2ReducesToL2WithUnitWeight(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 2, DefaultOptions(), func(pr *Problem) error {
		w := field.NewScalar(pr.Pe)
		w.Fill(1)
		d := WeightedL2Distance{W: w}
		l2 := L2Distance{}
		if a, b := d.Eval(pr.RhoT, pr.RhoR), l2.Eval(pr.RhoT, pr.RhoR); math.Abs(a-b) > 1e-12*(1+b) {
			t.Errorf("unit-weight eval %g vs L2 %g", a, b)
		}
		la := d.TerminalAdjoint(pr.RhoT, pr.RhoR)
		lb := l2.TerminalAdjoint(pr.RhoT, pr.RhoR)
		for i := range la.Data {
			if la.Data[i] != lb.Data[i] {
				t.Errorf("unit-weight adjoint differs at %d", i)
				return nil
			}
		}
		return nil
	})
}

func TestWeightedL2GradientMatchesFiniteDifference(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	opt := DefaultOptions()
	setup(t, g, 1, opt, func(pr *Problem) error {
		// Region of interest: a smooth bump in the domain center.
		w := field.NewScalar(pr.Pe)
		w.SetFunc(func(x1, x2, x3 float64) float64 {
			d1, d2, d3 := x1-math.Pi, x2-math.Pi, x3-math.Pi
			return math.Exp(-(d1*d1 + d2*d2 + d3*d3) / 2)
		})
		pr.Opt.Distance = WeightedL2Distance{W: w}
		v := testVelocity(pr.Pe)
		dir := testDirection(pr.Pe)
		e := pr.EvalGradient(v)
		gw := e.G.Dot(dir)
		eps := 1e-5
		vp := v.Clone()
		vp.Axpy(eps, dir)
		vm := v.Clone()
		vm.Axpy(-eps, dir)
		fd := (pr.Evaluate(vp).J - pr.Evaluate(vm).J) / (2 * eps)
		if rel := math.Abs(gw-fd) / (math.Abs(fd) + 1e-12); rel > 0.05 {
			t.Errorf("weighted-L2 gradient vs FD: %g vs %g (rel %g)", gw, fd, rel)
		}
		return nil
	})
}

func TestWeightedL2MaskIgnoresOutsideRegion(t *testing.T) {
	// Changing the images outside the mask must not change the misfit.
	g := grid.MustNew(12, 12, 12)
	setup(t, g, 1, DefaultOptions(), func(pr *Problem) error {
		w := field.NewScalar(pr.Pe)
		w.SetFunc(func(x1, _, _ float64) float64 {
			if x1 < math.Pi {
				return 1
			}
			return 0
		})
		d := WeightedL2Distance{W: w}
		before := d.Eval(pr.RhoT, pr.RhoR)
		mod := pr.RhoT.Clone()
		pr.Pe.EachLocal(func(i1, i2, i3, idx int) {
			x1, _, _ := pr.Pe.Coords(i1, i2, i3)
			if x1 >= math.Pi {
				mod.Data[idx] += 10
			}
		})
		after := d.Eval(mod, pr.RhoR)
		if math.Abs(before-after) > 1e-12*(1+before) {
			t.Errorf("masked misfit changed: %g vs %g", before, after)
		}
		return nil
	})
}
