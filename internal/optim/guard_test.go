package optim

import (
	"math"
	"strings"
	"testing"
)

// hostile is a diagonal convex quadratic J(v) = 1/2 <v, (A+beta I) v> -
// <b, v> whose callbacks can be poisoned on demand: a specific Evaluate,
// EvalGradient, or HessMatVec call (1-based counters) returns NaN, or the
// gradient is poisoned whenever the regularization weight equals
// poisonBeta. This is the unit-level stand-in for a transport solve
// corrupted by a bit-flipped message: the fault surfaces as a non-finite
// number in an otherwise well-posed problem.
type hostile struct {
	a, b dvec
	beta float64

	evalN, gradN, mvN int
	poisonEval        func(n int) bool
	poisonGrad        func(n int) bool
	poisonMV          func(n int) bool
	poisonBeta        float64
	nanPrec           bool
}

func (p *hostile) j(v dvec) float64 {
	j := 0.0
	for i := range v {
		j += 0.5*(p.a[i]+p.beta)*v[i]*v[i] - p.b[i]*v[i]
	}
	return j
}

func (p *hostile) Evaluate(v dvec) ObjVals {
	p.evalN++
	if p.poisonEval != nil && p.poisonEval(p.evalN) {
		return ObjVals{J: math.NaN(), Misfit: math.NaN()}
	}
	j := p.j(v)
	return ObjVals{J: j, Misfit: j}
}

func (p *hostile) EvalGradient(v dvec) GradVals[dvec] {
	p.gradN++
	poisoned := p.poisonGrad != nil && p.poisonGrad(p.gradN)
	if p.poisonBeta != 0 && p.beta == p.poisonBeta {
		poisoned = true
	}
	g := make(dvec, len(v))
	for i := range v {
		g[i] = (p.a[i]+p.beta)*v[i] - p.b[i]
	}
	if poisoned {
		return GradVals[dvec]{J: math.NaN(), Misfit: math.NaN(), G: g, Gnorm: math.NaN()}
	}
	return GradVals[dvec]{J: p.j(v), Misfit: p.j(v), G: g, Gnorm: g.NormL2()}
}

func (p *hostile) HessMatVec(w dvec) dvec {
	p.mvN++
	out := w.Clone()
	if p.poisonMV != nil && p.poisonMV(p.mvN) {
		out.Scale(math.NaN())
		return out
	}
	for i := range out {
		out[i] *= p.a[i] + p.beta
	}
	return out
}

func (p *hostile) ApplyPrec(r dvec) dvec {
	out := r.Clone()
	if p.nanPrec {
		out.Scale(math.NaN())
	}
	return out
}

func (p *hostile) Project(v dvec) dvec { return v }

func (p *hostile) solution() dvec {
	x := make(dvec, len(p.b))
	for i := range x {
		x[i] = p.b[i] / (p.a[i] + p.beta)
	}
	return x
}

func assertNear(t *testing.T, got, want dvec, tol float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Errorf("component %d: got %g want %g", i, got[i], want[i])
		}
	}
}

// TestPCGRestartOnCorruptedPreconditioner: a NaN-producing preconditioner
// breaks the very first recurrence; the guarded PCG must retry once with
// the identity and still solve the system.
func TestPCGRestartOnCorruptedPreconditioner(t *testing.T) {
	p := &hostile{a: dvec{2, 1, 0.5}, b: dvec{1, 1, 1}, nanPrec: true}
	rhs := dvec{1, 1, 1}
	x, res := PCG(p.HessMatVec, p.ApplyPrec, rhs, 1e-10, 50)
	if res.Breakdown || !res.Converged || res.Restarts != 1 {
		t.Fatalf("want converged restart=1, got %+v", res)
	}
	assertNear(t, x, dvec{0.5, 1, 2}, 1e-8)
}

// TestPCGBreakdownOnCorruptedMatvec: when the operator itself is the
// corrupted piece, the identity restart cannot rescue the solve; PCG must
// report Breakdown (with the restart attempt counted) and return the zero
// vector rather than NaNs.
func TestPCGBreakdownOnCorruptedMatvec(t *testing.T) {
	p := &hostile{a: dvec{2, 1}, b: dvec{1, 1}, poisonMV: func(int) bool { return true }}
	x, res := PCG(p.HessMatVec, p.ApplyPrec, dvec{1, 1}, 1e-10, 50)
	if !res.Breakdown || res.Restarts != 1 || res.Converged {
		t.Fatalf("want breakdown after restart, got %+v", res)
	}
	for i, xi := range x {
		if xi != 0 {
			t.Errorf("component %d: want the zero iterate, got %g", i, xi)
		}
	}
}

// TestPCGBreakdownMidSolveKeepsFiniteIterate: a matvec that turns NaN only
// on the third application must leave PCG with the last finite truncated
// iterate, not a poisoned one.
func TestPCGBreakdownMidSolveKeepsFiniteIterate(t *testing.T) {
	p := &hostile{a: dvec{5, 2, 1, 0.3}, b: dvec{1, 1, 1, 1},
		poisonMV: func(n int) bool { return n >= 3 }}
	x, res := PCG(p.HessMatVec, p.ApplyPrec, dvec{1, 1, 1, 1}, 1e-14, 50)
	if !res.Breakdown {
		t.Fatalf("want breakdown, got %+v", res)
	}
	if res.Iters == 0 {
		t.Fatalf("breakdown should happen mid-solve, got iters=0")
	}
	for i, xi := range x {
		if !finite(xi) {
			t.Errorf("component %d of the returned iterate is %g", i, xi)
		}
	}
}

// TestNewtonFallsBackOnPCGBreakdown: a corrupted Hessian matvec at one
// specific application must degrade that single Newton step to the
// preconditioned gradient, record the degradation, and leave the overall
// solve convergent.
func TestNewtonFallsBackOnPCGBreakdown(t *testing.T) {
	// The first two matvecs are poisoned so both the preconditioned pass
	// and its identity-restart break down; the step degrades to the
	// preconditioned gradient.
	p := &hostile{a: dvec{1.5, 1, 0.5}, b: dvec{1, -2, 0.5},
		poisonMV: func(n int) bool { return n <= 2 }}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-10
	opt.MaxIters = 60
	res := GaussNewton[dvec](p, dvec{3, -3, 2}, opt)
	if res.Failed || !res.Converged {
		t.Fatalf("want converged despite matvec fault: %+v", res)
	}
	if len(res.Degradations) == 0 || !strings.Contains(res.Degradations[0], "PCG breakdown") {
		t.Fatalf("want a PCG-breakdown degradation record, got %v", res.Degradations)
	}
	assertNear(t, res.V, p.solution(), 1e-6)
}

// TestArmijoRejectsNaNCandidate: a NaN objective at the first line-search
// trial (a transiently corrupted forward solve) must fail the sufficient
// decrease test and let the search continue to a shorter, finite step.
func TestArmijoRejectsNaNCandidate(t *testing.T) {
	p := &hostile{a: dvec{1.5, 1}, b: dvec{1, -2},
		poisonEval: func(n int) bool { return n == 1 }}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-10
	res := GaussNewton[dvec](p, dvec{3, -3}, opt)
	if res.Failed || !res.Converged {
		t.Fatalf("want convergence, got %+v", res)
	}
	if res.History[0].LineTrial < 2 {
		t.Errorf("first accepted step should need >= 2 trials (NaN rejected), got %d", res.History[0].LineTrial)
	}
	if res.History[0].Step != 0.5 {
		t.Errorf("first accepted step should be the halved one, got %g", res.History[0].Step)
	}
}

// TestNewtonRewindsOnNaNGradient: a non-finite gradient evaluation mid-run
// must rewind to the last accepted iterate, take one forced
// steepest-descent step, record the degradation, and still finish finite.
func TestNewtonRewindsOnNaNGradient(t *testing.T) {
	p := &hostile{a: dvec{1.5, 1, 0.5}, b: dvec{1, -2, 0.5},
		poisonGrad: func(n int) bool { return n == 3 }}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-10
	opt.MaxIters = 60
	res := GaussNewton[dvec](p, dvec{3, -3, 2}, opt)
	if res.Failed {
		t.Fatalf("one transient NaN must not fail the solve: %+v", res)
	}
	if !res.Converged {
		t.Fatalf("want convergence after rewind: ||g|| %g -> %g", res.GnormInit, res.GnormLast)
	}
	found := false
	for _, d := range res.Degradations {
		if strings.Contains(d, "rewind") {
			found = true
		}
	}
	if !found {
		t.Errorf("want a rewind degradation record, got %v", res.Degradations)
	}
	if !finite(res.JFinal) || !finite(res.GnormLast) {
		t.Errorf("non-finite result state: J=%v ||g||=%v", res.JFinal, res.GnormLast)
	}
	assertNear(t, res.V, p.solution(), 1e-6)
}

// TestNewtonFailsAfterRewindBudget: a persistently non-finite problem must
// exhaust the rewind budget and return Failed with the last good iterate —
// never hang, never return NaNs.
func TestNewtonFailsAfterRewindBudget(t *testing.T) {
	p := &hostile{a: dvec{1, 1}, b: dvec{1, 1},
		poisonGrad: func(n int) bool { return n >= 2 }}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-12
	opt.MaxIters = 60
	res := GaussNewton[dvec](p, dvec{3, -3}, opt)
	if !res.Failed || res.FailReason == "" {
		t.Fatalf("want Failed with a reason, got %+v", res)
	}
	for i, xi := range res.V {
		if !finite(xi) {
			t.Errorf("last-good iterate component %d is %g", i, xi)
		}
	}
	if len(res.Degradations) < int(opt.MaxRewinds)+1 && len(res.Degradations) < 3 {
		t.Errorf("want rewind trail then failure, got %v", res.Degradations)
	}
}

// TestNewtonFailsImmediatelyOnPoisonedStart: when even the initial
// evaluation is non-finite there is nothing to rewind to; the solve must
// fail fast with a structured reason.
func TestNewtonFailsImmediatelyOnPoisonedStart(t *testing.T) {
	p := &hostile{a: dvec{1, 1}, b: dvec{1, 1},
		poisonGrad: func(int) bool { return true }}
	res := GaussNewton[dvec](p, dvec{1, 1}, DefaultNewtonOptions())
	if !res.Failed || res.Iters != 0 {
		t.Fatalf("want immediate failure, got %+v", res)
	}
	if !strings.Contains(res.FailReason, "non-finite") {
		t.Errorf("FailReason = %q", res.FailReason)
	}
}

// TestSteepestDescentFailsOnNaN covers the same guard on the first-order
// path, which has no rewind ladder.
func TestSteepestDescentFailsOnNaN(t *testing.T) {
	p := &hostile{a: dvec{1, 1}, b: dvec{1, 1},
		poisonGrad: func(n int) bool { return n >= 2 }}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-12
	opt.MaxIters = 50
	res := SteepestDescent[dvec](p, dvec{3, -3}, opt)
	if !res.Failed || res.FailReason == "" {
		t.Fatalf("want Failed, got %+v", res)
	}
}

// TestStopInterruptsNewton: the collective stop flag must halt the solve
// at an iteration boundary with the last accepted iterate intact.
func TestStopInterruptsNewton(t *testing.T) {
	p := &hostile{a: dvec{1.5, 1}, b: dvec{1, -2}}
	calls := 0
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-14
	opt.MaxIters = 50
	opt.Stop = func() bool { calls++; return calls > 2 }
	iterates := 0
	opt.OnIterate = func(v any, prog Progress) { iterates++ }
	res := GaussNewton[dvec](p, dvec{3, -3}, opt)
	if !res.Interrupted {
		t.Fatalf("want Interrupted, got %+v", res)
	}
	if res.Iters != 2 || iterates != 2 {
		t.Errorf("want exactly 2 completed iterations, got Iters=%d OnIterate=%d", res.Iters, iterates)
	}
	for i, xi := range res.V {
		if !finite(xi) {
			t.Errorf("interrupted iterate component %d is %g", i, xi)
		}
	}
}

// TestResumeIsBitIdentical is the heart of the checkpoint guarantee at the
// driver level: a solve resumed from the OnIterate snapshot of iteration k
// must reproduce the uninterrupted trajectory bit for bit — same iterates,
// same history, same final state.
func TestResumeIsBitIdentical(t *testing.T) {
	mk := func() *hostile { return &hostile{a: dvec{1.7, 1.1, 0.6, 0.3}, b: dvec{1, -2, 0.5, 3}} }
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-13
	opt.MaxIters = 8

	// Uninterrupted run, capturing the snapshot after iteration 3.
	var snapV dvec
	var snapProg Progress
	full := opt
	full.OnIterate = func(v any, prog Progress) {
		if prog.Iter == 3 {
			snapV = v.(dvec).Clone()
			hist := make([]IterRecord, len(prog.History))
			copy(hist, prog.History)
			prog.History = hist
			snapProg = prog
		}
	}
	ref := GaussNewton[dvec](mk(), dvec{3, -3, 2, -1}, full)
	if snapV == nil {
		t.Fatalf("reference run finished before iteration 3 (%d iters)", ref.Iters)
	}

	resumed := opt
	resumed.Resume = &ResumeState{
		Iter: snapProg.Iter, JInit: snapProg.JInit, MisfitInit: snapProg.MisfitInit,
		GnormInit: snapProg.GnormInit, History: snapProg.History,
	}
	res := GaussNewton[dvec](mk(), snapV, resumed)

	if res.Iters != ref.Iters || res.Converged != ref.Converged {
		t.Fatalf("trajectory diverged: iters %d vs %d, converged %v vs %v",
			res.Iters, ref.Iters, res.Converged, ref.Converged)
	}
	if res.JFinal != ref.JFinal || res.GnormLast != ref.GnormLast {
		t.Errorf("final state not bit-identical: J %v vs %v, ||g|| %v vs %v",
			res.JFinal, ref.JFinal, res.GnormLast, ref.GnormLast)
	}
	for i := range ref.V {
		if res.V[i] != ref.V[i] {
			t.Errorf("iterate component %d: %v vs %v", i, res.V[i], ref.V[i])
		}
	}
	if len(res.History) != len(ref.History) {
		t.Fatalf("history length %d vs %d", len(res.History), len(ref.History))
	}
	for i := range ref.History {
		if res.History[i] != ref.History[i] {
			t.Errorf("history record %d differs: %+v vs %+v", i, res.History[i], ref.History[i])
		}
	}
}

// TestContinuationRetriesFailedLevel: when one continuation level is
// poisoned (every gradient at that beta is non-finite), the ladder must
// raise beta half a level — the geometric mean with the previous weight —
// and finish from the last good iterate instead of failing outright.
func TestContinuationRetriesFailedLevel(t *testing.T) {
	p := &hostile{a: dvec{1.5, 1}, b: dvec{1, -2}, poisonBeta: 1e-2}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-10
	opt.MaxIters = 60
	var levels []float64
	opt.OnLevel = func(level int, beta float64) { levels = append(levels, beta) }
	res := Continuation[dvec](p, func(b float64) { p.beta = b }, dvec{3, -3},
		[]float64{1e-1, 1e-2}, opt)
	if res.Failed {
		t.Fatalf("retry should rescue the schedule, got %+v", res)
	}
	want := math.Sqrt(1e-1 * 1e-2)
	if p.beta != want {
		t.Errorf("final beta %g, want the geometric-mean retry level %g", p.beta, want)
	}
	found := false
	for _, d := range res.Degradations {
		if strings.Contains(d, "retrying at beta") {
			found = true
		}
	}
	if !found {
		t.Errorf("want a level-retry degradation record, got %v", res.Degradations)
	}
	// The retry must notify OnLevel with the active beta so checkpoint
	// bookkeeping records bRetry, not the failed schedule entry.
	if len(levels) != 3 || levels[2] != want {
		t.Errorf("OnLevel betas %v, want [1e-1 1e-2 %g]", levels, want)
	}
	if !res.Converged {
		t.Errorf("retry level did not converge: ||g|| %g -> %g", res.GnormInit, res.GnormLast)
	}
}

// TestContinuationStopsOnInterrupt: an interrupt inside a level must
// propagate out immediately without starting later levels.
func TestContinuationStopsOnInterrupt(t *testing.T) {
	p := &hostile{a: dvec{1.5, 1}, b: dvec{1, -2}}
	opt := DefaultNewtonOptions()
	opt.GradTol = 1e-14
	opt.MaxIters = 50
	calls := 0
	opt.Stop = func() bool { calls++; return calls > 1 }
	var levels int
	opt.OnLevel = func(int, float64) { levels++ }
	res := Continuation[dvec](p, func(b float64) { p.beta = b }, dvec{3, -3},
		[]float64{1e-1, 1e-2, 1e-3}, opt)
	if !res.Interrupted {
		t.Fatalf("want Interrupted, got %+v", res)
	}
	if levels != 1 {
		t.Errorf("later levels must not start after an interrupt, OnLevel ran %d times", levels)
	}
}
