module diffreg

go 1.22
