package paperbench

import (
	"errors"
	"os"
)

var errNoFiles = errors.New("no files written")

func dirEntries(dir string) ([]os.DirEntry, error) {
	return os.ReadDir(dir)
}
