package core

import (
	"math"
	"testing"

	"diffreg/internal/ckpt"
	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/regopt"
	"diffreg/internal/spectral"
)

// runSynthetic registers the paper's synthetic problem and hands the
// outcome to fn.
func runSynthetic(t *testing.T, n, p int, cfg Config, fn func(pe *grid.Pencil, out *Outcome) error) {
	t.Helper()
	g := grid.MustNew(n, n, n)
	_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.SyntheticTemplate(pe)
		var vStar *field.Vector
		if cfg.Opt.Incompressible {
			vStar = imaging.SolenoidalVelocity(pe)
		} else {
			vStar = imaging.SyntheticVelocity(pe)
		}
		rhoR := imaging.MakeReference(ops, rhoT, vStar, cfg.Opt.Nt, cfg.Opt.Incompressible)
		out, err := Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		return fn(pe, out)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegisterSynthetic(t *testing.T) {
	for _, p := range []int{1, 4} {
		runSynthetic(t, 16, p, DefaultConfig(), func(pe *grid.Pencil, out *Outcome) error {
			if !out.Result.Converged {
				t.Errorf("p=%d: solver did not converge", p)
			}
			if out.MisfitFinal > 0.25*out.MisfitInit {
				t.Errorf("p=%d: misfit %g -> %g", p, out.MisfitInit, out.MisfitFinal)
			}
			if out.DetMin <= 0 {
				t.Errorf("p=%d: map not diffeomorphic: min det %g", p, out.DetMin)
			}
			if out.Phases.TimeToSolution <= 0 {
				t.Errorf("p=%d: no wall time recorded", p)
			}
			if out.Phases.InterpExec <= 0 || out.Phases.FFTExec <= 0 {
				t.Errorf("p=%d: phase exec times empty: %+v", p, out.Phases)
			}
			if p > 1 && (out.Phases.FFTComm <= 0 || out.Phases.InterpComm <= 0) {
				t.Errorf("p=%d: no modeled comm: %+v", p, out.Phases)
			}
			if out.Counts.FFTs == 0 || out.Counts.InterpSweeps == 0 || out.Counts.Matvecs == 0 {
				t.Errorf("p=%d: counters empty: %+v", p, out.Counts)
			}
			return nil
		})
	}
}

func TestRegisterIncompressible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Opt.Incompressible = true
	cfg.Opt.Beta = 1e-3 // beta=1e-2 over-damps the isochoric deformation
	runSynthetic(t, 16, 2, cfg, func(pe *grid.Pencil, out *Outcome) error {
		// Volume preservation: det(grad y) must stay near one everywhere.
		if math.Abs(out.DetMin-1) > 0.05 || math.Abs(out.DetMax-1) > 0.05 {
			t.Errorf("det range [%g, %g], want ~1", out.DetMin, out.DetMax)
		}
		if out.MisfitFinal > 0.5*out.MisfitInit {
			t.Errorf("misfit %g -> %g", out.MisfitInit, out.MisfitFinal)
		}
		return nil
	})
}

func TestRegisterDistributedMatchesSerial(t *testing.T) {
	var serialMisfit, serialDet float64
	runSynthetic(t, 16, 1, DefaultConfig(), func(pe *grid.Pencil, out *Outcome) error {
		serialMisfit = out.MisfitFinal
		serialDet = out.DetMin
		return nil
	})
	runSynthetic(t, 16, 4, DefaultConfig(), func(pe *grid.Pencil, out *Outcome) error {
		if math.Abs(out.MisfitFinal-serialMisfit) > 1e-9*(1+serialMisfit) {
			t.Errorf("misfit differs across task counts: %g vs %g", out.MisfitFinal, serialMisfit)
		}
		if math.Abs(out.DetMin-serialDet) > 1e-9 {
			t.Errorf("det differs: %g vs %g", out.DetMin, serialDet)
		}
		return nil
	})
}

func TestRegisterFirstOrderBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FirstOrder = true
	cfg.Newton.MaxIters = 30
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if out.MisfitFinal >= out.MisfitInit {
			t.Errorf("steepest descent made no progress")
		}
		if out.Counts.Matvecs != 0 {
			t.Errorf("first-order run should use no Hessian matvecs, got %d", out.Counts.Matvecs)
		}
		return nil
	})
}

func TestRegisterContinuation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ContinuationBetas = []float64{1e-1, 1e-2}
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if out.Problem.Opt.Beta != 1e-2 {
			t.Errorf("continuation did not reach target beta: %g", out.Problem.Opt.Beta)
		}
		if !out.Result.Converged {
			t.Errorf("continuation final level did not converge")
		}
		return nil
	})
}

func TestRegisterSkipMap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipMap = true
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if out.U != nil || out.Det != nil || out.Warped != nil {
			t.Errorf("map artifacts should be skipped")
		}
		return nil
	})
}

func TestRegisterBrainPhantom(t *testing.T) {
	// Multi-subject registration on the brain phantom (the paper's
	// real-world experiment, Table IV / Figs. 6-7) at reduced resolution.
	g := grid.MustNew(24, 28, 24) // anisotropic like 256x300x256
	_, err := mpi.Run(2, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.BrainPhantom(pe, 1)
		rhoR := imaging.BrainPhantom(pe, 2)
		imaging.PrepareImages(ops, rhoT, rhoR)
		cfg := DefaultConfig()
		// The paper's brain quality runs use beta down to 1e-4 (Table V);
		// 1e-3 gives a good misfit reduction at this reduced resolution.
		cfg.Opt.Beta = 1e-3
		out, err := Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		if out.MisfitFinal > 0.6*out.MisfitInit {
			t.Errorf("brain misfit %g -> %g", out.MisfitInit, out.MisfitFinal)
		}
		if out.DetMin <= 0 {
			t.Errorf("brain map not diffeomorphic: %g", out.DetMin)
		}
		before, after := out.ResidualNorms(rhoT, rhoR)
		if after >= before {
			t.Errorf("residual did not drop: %g -> %g", before, after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegisterRejectsBadOptions(t *testing.T) {
	g := grid.MustNew(8, 8, 8)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		cfg := DefaultConfig()
		cfg.Opt.Beta = -1
		s := field.NewScalar(pe)
		if _, err := Register(pe, s, s, cfg); err == nil {
			t.Error("negative beta accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Silence the unused import when regopt is only used via cfg defaults.
	_ = regopt.RegH2
}

func TestRegisterTimeVarying(t *testing.T) {
	// The non-stationary velocity extension (Intervals > 1) must reach at
	// least the stationary misfit and produce a diffeomorphic map.
	cfg := DefaultConfig()
	cfg.Intervals = 2
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if len(out.VSeries) != 2 {
			t.Errorf("expected 2 velocity coefficients, got %d", len(out.VSeries))
		}
		if out.MisfitFinal > 0.25*out.MisfitInit {
			t.Errorf("misfit %g -> %g", out.MisfitInit, out.MisfitFinal)
		}
		if out.DetMin <= 0 {
			t.Errorf("map not diffeomorphic: %g", out.DetMin)
		}
		return nil
	})
}

func TestRegisterTimeVaryingRejectsBadIntervals(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		cfg := DefaultConfig()
		cfg.Intervals = 3 // nt = 4 not divisible
		s := field.NewScalar(pe)
		s.SetFunc(func(x1, _, _ float64) float64 { return math.Sin(x1) })
		if _, err := Register(pe, s, s, cfg); err == nil {
			t.Error("nt=4 with 3 intervals accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegisterMultilevel(t *testing.T) {
	// Coarse-to-fine continuation must reach a comparable misfit with
	// fewer fine-grid Hessian matvecs than the single-level solve.
	g := grid.MustNew(24, 24, 24)
	for _, p := range []int{1, 2} {
		var singleMatvecs, singleIters int
		var singleMisfit float64
		_, err := mpi.Run(p, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
			pe, err := grid.NewPencil(g, c)
			if err != nil {
				return err
			}
			ops := spectral.New(pfft.NewPlan(pe))
			rhoT := imaging.SyntheticTemplate(pe)
			rhoR := imaging.MakeReference(ops, rhoT, imaging.SyntheticVelocity(pe), 4, false)
			cfg := DefaultConfig()
			out, err := Register(pe, rhoT, rhoR, cfg)
			if err != nil {
				return err
			}
			singleMatvecs = out.Counts.Matvecs
			singleIters = out.Counts.NewtonIters
			singleMisfit = out.MisfitFinal

			rhoT2 := imaging.SyntheticTemplate(pe)
			rhoR2 := imaging.MakeReference(ops, rhoT2, imaging.SyntheticVelocity(pe), 4, false)
			mlOut, stats, err := RegisterMultilevel(pe, rhoT2, rhoR2, cfg, 2)
			if err != nil {
				return err
			}
			if len(stats) != 2 {
				t.Errorf("p=%d: expected 2 level stats, got %d", p, len(stats))
			}
			if stats[0].N[0] >= stats[1].N[0] {
				t.Errorf("p=%d: levels not coarse-to-fine: %v", p, stats)
			}
			if mlOut.MisfitFinal > 1.5*singleMisfit {
				t.Errorf("p=%d: multilevel misfit %g vs single %g", p, mlOut.MisfitFinal, singleMisfit)
			}
			// The fine level should need no more matvecs than the direct
			// solve thanks to the warm start.
			fine := stats[len(stats)-1]
			if fine.Matvecs > singleMatvecs+singleIters {
				t.Errorf("p=%d: fine-level matvecs %d vs single-level %d",
					p, fine.Matvecs, singleMatvecs)
			}
			if mlOut.DetMin <= 0 {
				t.Errorf("p=%d: multilevel map not diffeomorphic", p)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestRegisterMultilevelValidates(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, _ := grid.NewPencil(g, c)
		s := field.NewScalar(pe)
		cfg := DefaultConfig()
		if _, _, err := RegisterMultilevel(pe, s, s, cfg, 0); err == nil {
			t.Error("levels=0 accepted")
		}
		cfg.Intervals = 2
		if _, _, err := RegisterMultilevel(pe, s, s, cfg, 2); err == nil {
			t.Error("time-varying multilevel accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRegisterTimeVaryingStopHook: the cooperative Stop hook is
// independent of checkpoint I/O, so installing it must not trip the
// stationary-velocity restriction for Intervals > 1 (regression: the
// regsolve signal handler always installs Stop, which used to fail every
// time-varying solve at startup). A firing stop must surface as an
// interrupted result with no deformation map.
func TestRegisterTimeVaryingStopHook(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Intervals = 2
	cfg.Newton.MaxIters = 2
	cfg.Checkpoint.Stop = func() bool { return false }
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if out.Result.Interrupted {
			t.Error("non-firing Stop hook interrupted the solve")
		}
		return nil
	})

	cfg = DefaultConfig()
	cfg.Intervals = 2
	polls := 0
	cfg.Checkpoint.Stop = func() bool { polls++; return polls > 1 }
	runSynthetic(t, 16, 1, cfg, func(pe *grid.Pencil, out *Outcome) error {
		if !out.Result.Interrupted {
			t.Error("firing Stop hook did not interrupt the time-varying solve")
		}
		if out.U != nil {
			t.Error("interrupted solve must skip map reconstruction")
		}
		return nil
	})
}

// TestRegisterResumeHonorsCheckpointBeta: a resumed continuation solve
// must run at the beta recorded in the checkpoint — which after a failed
// level is the geometric-mean retry value — not the original schedule
// entry of that level.
func TestRegisterResumeHonorsCheckpointBeta(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	_, err := mpi.Run(1, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		ops := spectral.New(pfft.NewPlan(pe))
		rhoT := imaging.SyntheticTemplate(pe)
		vStar := imaging.SyntheticVelocity(pe)
		rhoR := imaging.MakeReference(ops, rhoT, vStar, 4, false)
		const retryBeta = 0.05 // between schedule levels 1e-1 and 1e-2
		st := &ckpt.State{
			N: pe.Grid.N, Tasks: 1,
			Beta: retryBeta, BetaLevel: 1, Iter: 1,
			JInit: 1, MisfitInit: 1, GnormInit: 1,
		}
		n := pe.Grid.N[0] * pe.Grid.N[1] * pe.Grid.N[2]
		for d := 0; d < 3; d++ {
			st.V[d] = make([]float64, n)
		}
		cfg := DefaultConfig()
		cfg.ContinuationBetas = []float64{1e-1, 1e-2}
		cfg.Newton.MaxIters = 2
		cfg.SkipMap = true
		cfg.Checkpoint.Resume = st
		out, err := Register(pe, rhoT, rhoR, cfg)
		if err != nil {
			return err
		}
		if got := out.Problem.Opt.Beta; got != retryBeta {
			t.Errorf("resumed solve ran at beta %g, want the checkpointed %g", got, retryBeta)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
