package mpi

// Race-detector coverage: these tests hammer the concurrency machinery —
// many worlds running collectives at once, all collectives interleaved on
// split communicators — with small payloads so `go test -race -short`
// stays fast while still exercising every mailbox/condvar path.

import (
	"fmt"
	"sync"
	"testing"
)

// TestRaceConcurrentWorlds runs several independent worlds simultaneously,
// each performing the full collective repertoire. Mailboxes, communicator
// IDs, and cost accounting must not interfere across worlds.
func TestRaceConcurrentWorlds(t *testing.T) {
	worlds := 4
	rounds := 20
	if testing.Short() {
		worlds, rounds = 2, 5
	}
	var wg sync.WaitGroup
	for w := 0; w < worlds; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, err := Run(4, DefaultCostModel(), func(c *Comm) error {
				for r := 0; r < rounds; r++ {
					c.Barrier()
					sum := c.AllreduceSum(float64(c.Rank() + 1))
					if sum != 10 {
						return fmt.Errorf("world %d round %d: allreduce sum = %v, want 10", w, r, sum)
					}
					send := make([][]float64, c.Size())
					for d := range send {
						send[d] = []float64{float64(c.Rank()), float64(d), float64(r)}
					}
					recv := c.AlltoallvFloat64(send)
					for src, got := range recv {
						if got[0] != float64(src) || got[1] != float64(c.Rank()) || got[2] != float64(r) {
							return fmt.Errorf("world %d round %d: alltoallv from %d got %v", w, r, src, got)
						}
					}
					bc := c.Bcast(r%c.Size(), []float64{float64(r)}).([]float64)
					if bc[0] != float64(r) {
						return fmt.Errorf("world %d round %d: bcast got %v", w, r, bc)
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
}

// TestRaceSplitCollectives interleaves collectives on the parent and on
// row/column sub-communicators, the exact pattern of the pencil FFT
// transposes where all row communicators run all-to-alls concurrently.
func TestRaceSplitCollectives(t *testing.T) {
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	_, err := Run(4, DefaultCostModel(), func(c *Comm) error {
		row := c.Split(c.Rank()/2, c.Rank()%2)
		col := c.Split(c.Rank()%2, c.Rank()/2)
		for r := 0; r < rounds; r++ {
			send := make([][]complex128, row.Size())
			for d := range send {
				send[d] = []complex128{complex(float64(c.Rank()), float64(r))}
			}
			recv := row.AlltoallvComplex(send)
			for _, got := range recv {
				if imag(got[0]) != float64(r) {
					return fmt.Errorf("round %d: stale row payload %v", r, got)
				}
			}
			if s := col.AllreduceSum(1); s != float64(col.Size()) {
				return fmt.Errorf("round %d: col allreduce = %v", r, s)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRacePointToPointFanIn has every rank flood rank 0 with tagged
// messages while rank 0 drains them in a deterministic order, stressing
// the mailbox matching under contention.
func TestRacePointToPointFanIn(t *testing.T) {
	msgs := 50
	if testing.Short() {
		msgs = 10
	}
	_, err := Run(4, DefaultCostModel(), func(c *Comm) error {
		if c.Rank() != 0 {
			for m := 0; m < msgs; m++ {
				c.Send(0, m, []float64{float64(c.Rank()), float64(m)})
			}
			return nil
		}
		// Drain in a rotated order so arrival and receive orders differ.
		for m := 0; m < msgs; m++ {
			for src := 1; src < c.Size(); src++ {
				got := c.Recv(src, (m+src)%msgs).([]float64)
				if got[0] != float64(src) {
					return fmt.Errorf("message from %d carries rank %v", src, got[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
