// Package pfft implements the distributed-memory 3D real-to-complex FFT on
// a pencil decomposition, following the communication structure of AccFFT
// used in the paper (Fig. 4): a local 1D transform along the complete
// third dimension, a transpose among the sqrt(p)-sized row communicators,
// a transform along the second dimension, a transpose among the column
// communicators, and a final transform along the first dimension. Each
// transpose is an all-to-all of N^3/p elements per rank, which is exactly
// the 3*N^3/p + ts*sqrt(p) term of the paper's communication model.
//
// Transforms run through plan-owned workspaces: every Plan carries a
// reusable arena (stage buffers, transpose pack slab, per-chunk 1D line
// scratch) and prebuilt pool kernels, so the *Into entry points perform
// zero heap allocations after warmup. The batched entry points carry B
// fields through the pipeline together and fuse each transpose into a
// single all-to-all with field-interleaved payloads — one latency term
// ts*sqrt(p) amortized over all B components instead of paid B times.
package pfft

import (
	"fmt"
	"sync/atomic"
	"time"

	"diffreg/internal/fft"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/par"
	"diffreg/internal/prec"
)

// planBuilds and arenaGrows count plan constructions and workspace-arena
// growth events process-wide. They are the observable "pfft allocations" of
// a solve: a steady-state (warm-plan) run leaves both unchanged, which is
// what the serve-layer alloc-regression gates assert through the job-server
// path. Atomic because plans are built concurrently by rank goroutines.
var (
	planBuilds atomic.Int64
	arenaGrows atomic.Int64
)

// PlanBuilds returns the process-wide number of NewPlan calls.
func PlanBuilds() int64 { return planBuilds.Load() }

// ArenaGrows returns the process-wide number of workspace-arena growth
// events (see ensureBatch). Warm plans never grow their arena.
func ArenaGrows() int64 { return arenaGrows.Load() }

// lineGrain is the chunk granularity for per-line work: one item is a full
// 1D transform, so a handful of lines per chunk already amortizes the pool
// overhead while leaving enough chunks for load balance.
const lineGrain = 8

// Plan holds the per-rank state of the distributed transform.
type Plan struct {
	Pe *grid.Pencil

	// precision selects the transpose wire format. Transforms always run
	// in complex128; at prec.F32 the packed transpose payloads are encoded
	// as interleaved (re, im) float32 pairs, halving bytes on the wire.
	precision prec.Precision

	m3      int    // retained complex length of dim 2 (N3/2+1)
	specDim [3]int // local spectral dims: (N1, share(N2,p1), share(M3,p2))
	specLo  [3]int // global offsets of the local spectral block

	plan1, plan2, plan3 *fft.Plan

	// Local dims at the pipeline stages: dimsA after the r2c stage,
	// dimsB after the row transpose, specDim after the column transpose.
	dimsA, dimsB [3]int

	ws workspace
	st batchState

	// Prebuilt pool kernels (see batchState): retaining them on the plan
	// means a transform spawns no closures, which together with the
	// workspace arena makes the *Into paths allocation-free.
	fnRealFwd func(c, lo, hi int)
	fnRealInv func(c, lo, hi int)
	fnCplx    func(c, lo, hi int)

	// Single-field headers backing ForwardInto/InverseInto.
	oneReal [1][]float64
	oneSpec [1][]complex128
}

// workspace is the plan-owned arena reused across transforms. It grows to
// the largest batch size seen and is never shrunk, so steady-state calls
// allocate nothing.
type workspace struct {
	fields     int            // batch capacity (B)
	stageMax   int            // max local elements at any pipeline stage
	bufA, bufB [][]complex128 // per-field stage buffers, stageMax each
	hdrA, hdrB [][]complex128 // reusable per-field slice headers
	send       [][]complex128 // per-target headers into sendSlab
	sendSlab   []complex128   // fused transpose pack buffer
	send32     [][]float32    // per-target headers into sendSlab32 (F32 wire)
	sendSlab32 []float32      // narrow transpose pack buffer (F32 wire)
	line       []complex128   // per-chunk 1D line scratch slab
	lineLen    int            // scratch complexes per chunk
	chunkCap   int            // chunk slots in line
}

// batchState carries the parameters of the pool kernel currently running.
// A Plan is owned by one rank goroutine, so a single mutable state is safe;
// the pool workers read it only through the prebuilt kernels while the
// owning goroutine blocks in par.ForChunks.
type batchState struct {
	srcs    [][]float64    // real inputs (forward r2c stage)
	outs    [][]float64    // real outputs (inverse c2r stage)
	cur     [][]complex128 // per-field complex arrays of the current stage
	dims    [3]int
	axis    int
	inverse bool
	fp      *fft.Plan
	lines   int // lines per field in the current stage
}

// NewPlan builds a transform plan for the pencil decomposition at the
// float64 reference precision.
func NewPlan(pe *grid.Pencil) *Plan { return NewPlanPrec(pe, prec.F64) }

// NewPlanPrec builds a transform plan whose transpose wire format runs at
// the given precision. The local 1D transforms always execute in
// complex128; only the packed all-to-all payloads narrow.
func NewPlanPrec(pe *grid.Pencil, p prec.Precision) *Plan {
	planBuilds.Add(1)
	n := pe.Grid.N
	pl := &Plan{Pe: pe, precision: p, m3: fft.HalfLen(n[2])}
	pl.plan1 = fft.NewPlan(n[0])
	pl.plan2 = fft.NewPlan(n[1])
	pl.plan3 = fft.NewPlan(n[2])
	lo2, hi2 := grid.Share(n[1], pe.P[0], pe.Coord[0])
	lo3, hi3 := grid.Share(pl.m3, pe.P[1], pe.Coord[1])
	pl.specDim = [3]int{n[0], hi2 - lo2, hi3 - lo3}
	pl.specLo = [3]int{0, lo2, lo3}
	pl.dimsA = [3]int{pe.Local(0), pe.Local(1), pl.m3}
	pl.dimsB = [3]int{pe.Local(0), n[1], pl.specDim[2]}
	pl.buildKernels()
	return pl
}

// Rebind re-attaches the plan to a pencil of identical geometry on a
// (possibly) different communicator. Every communicator access in the
// transform pipeline goes through pl.Pe at call time, and all retained
// state — 1D plans, workspace arena, pool kernels, spectral layout — is a
// pure function of the geometry (grid dims, process grid, coordinates), so
// swapping the pencil is the complete handoff.
//
// This is what makes plan caching across solver jobs safe: a plan built
// inside one mpi world can serve a later job's world, as long as the
// single-owner contract still holds — a Plan is owned by exactly one rank
// goroutine at a time, and the caller (the serve-layer PlanCache) must
// guarantee no two in-flight jobs share it.
func (pl *Plan) Rebind(pe *grid.Pencil) error {
	old := pl.Pe
	if pe.Grid.N != old.Grid.N {
		return fmt.Errorf("pfft: rebind grid %v onto plan built for %v", pe.Grid.N, old.Grid.N)
	}
	if pe.P != old.P || pe.Coord != old.Coord {
		return fmt.Errorf("pfft: rebind process grid %v coord %v onto plan built for %v coord %v",
			pe.P, pe.Coord, old.P, old.Coord)
	}
	if pe.Lo != old.Lo || pe.Hi != old.Hi {
		return fmt.Errorf("pfft: rebind local block [%v,%v) onto plan owning [%v,%v)",
			pe.Lo, pe.Hi, old.Lo, old.Hi)
	}
	pl.Pe = pe
	return nil
}

// Precision returns the wire-format precision the plan was built at. A
// cached plan must only be rebound into a solve requesting the same
// precision: the wire format is baked into the workspace arena.
func (pl *Plan) Precision() prec.Precision { return pl.precision }

// buildKernels constructs the three pool kernels once; they read the
// current stage parameters from pl.st and per-chunk scratch from the arena.
func (pl *Plan) buildKernels() {
	n3 := pl.Pe.Grid.N[2]
	m3 := pl.m3
	pl.fnRealFwd = func(c, lo, hi int) {
		st := &pl.st
		work := pl.chunkScratch(c)
		for g := lo; g < hi; g++ {
			b, i := g/st.lines, g%st.lines
			pl.plan3.ForwardRealWork(st.srcs[b][i*n3:(i+1)*n3], st.cur[b][i*m3:(i+1)*m3], work)
		}
	}
	pl.fnRealInv = func(c, lo, hi int) {
		st := &pl.st
		work := pl.chunkScratch(c)
		for g := lo; g < hi; g++ {
			b, i := g/st.lines, g%st.lines
			pl.plan3.InverseRealWork(st.cur[b][i*m3:(i+1)*m3], st.outs[b][i*n3:(i+1)*n3], work)
		}
	}
	pl.fnCplx = func(c, lo, hi int) {
		st := &pl.st
		d := st.dims
		length := d[st.axis]
		work := pl.chunkScratch(c)
		line := work[:length]
		res := work[length : 2*length]
		fw := work[2*length:]
		for g := lo; g < hi; g++ {
			b, i := g/st.lines, g%st.lines
			a := st.cur[b]
			var base, stride int
			switch st.axis {
			case 0:
				stride = d[1] * d[2]
				base = i
			case 1:
				stride = d[2]
				// i enumerates (i0, i2) pairs, i2 fastest.
				base = (i/d[2])*d[1]*d[2] + i%d[2]
			default:
				stride = 1
				base = i * length
			}
			for j := 0; j < length; j++ {
				line[j] = a[base+j*stride]
			}
			if st.inverse {
				st.fp.InverseWork(line, res, fw)
			} else {
				st.fp.ForwardWork(line, res, fw)
			}
			for j := 0; j < length; j++ {
				a[base+j*stride] = res[j]
			}
		}
	}
}

// chunkScratch returns chunk c's slice of the line-scratch slab.
func (pl *Plan) chunkScratch(c int) []complex128 {
	return pl.ws.line[c*pl.ws.lineLen : (c+1)*pl.ws.lineLen]
}

// ensureBatch grows the workspace to carry b fields. Called on every
// transform; a no-op once the arena has seen the largest batch.
func (pl *Plan) ensureBatch(b int) {
	ws := &pl.ws
	if ws.fields >= b {
		return
	}
	arenaGrows.Add(1)
	prodA := pl.dimsA[0] * pl.dimsA[1] * pl.dimsA[2]
	prodB := pl.dimsB[0] * pl.dimsB[1] * pl.dimsB[2]
	ws.stageMax = prodA
	if prodB > ws.stageMax {
		ws.stageMax = prodB
	}
	if t := pl.SpecLocalTotal(); t > ws.stageMax {
		ws.stageMax = t
	}
	for len(ws.bufA) < b {
		ws.bufA = append(ws.bufA, make([]complex128, ws.stageMax))
		ws.bufB = append(ws.bufB, make([]complex128, ws.stageMax))
	}
	ws.hdrA = make([][]complex128, b)
	ws.hdrB = make([][]complex128, b)
	if q := max(pl.Pe.P[0], pl.Pe.P[1]); len(ws.send) < q {
		ws.send = make([][]complex128, q)
	}
	if pl.precision == prec.F32 {
		if q := max(pl.Pe.P[0], pl.Pe.P[1]); len(ws.send32) < q {
			ws.send32 = make([][]float32, q)
		}
		ws.sendSlab32 = make([]float32, 2*b*ws.stageMax)
	} else {
		ws.sendSlab = make([]complex128, b*ws.stageMax)
	}
	n := pl.Pe.Grid.N
	ws.lineLen = pl.plan3.RealWorkLen()
	if l := 2*n[0] + pl.plan1.WorkLen(); l > ws.lineLen {
		ws.lineLen = l
	}
	if l := 2*n[1] + pl.plan2.WorkLen(); l > ws.lineLen {
		ws.lineLen = l
	}
	ws.chunkCap = par.Chunks(b*ws.stageMax, lineGrain)
	ws.line = make([]complex128, ws.chunkCap*ws.lineLen)
	ws.fields = b
}

// WarmBatch pre-sizes the transpose arena for b-field transforms so a
// subsequent ForwardBatchInto/InverseBatchInto of that width allocates
// nothing. Used by the job-fusion path to prepare a plan for fields ×
// jobs batches before the solve starts.
func (pl *Plan) WarmBatch(b int) {
	pl.ensureBatch(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// invariant is the single internal panic of the package. It fires only on
// conditions that caller input cannot produce (argument validation has
// already passed): the transpose pipeline failing to land on the
// precomputed spectral/pencil layout is a bug in the plan itself, never a
// usage error.
func invariant(format string, args ...any) {
	panic("pfft: internal invariant violated: " + fmt.Sprintf(format, args...))
}

// SpecDims returns the local dimensions of the spectral array.
func (pl *Plan) SpecDims() [3]int { return pl.specDim }

// SpecLocalTotal returns the number of local spectral coefficients.
func (pl *Plan) SpecLocalTotal() int {
	return pl.specDim[0] * pl.specDim[1] * pl.specDim[2]
}

// Wavenumber maps a global spectral grid index j along a dimension of
// global length n to the signed integer wavenumber.
func Wavenumber(j, n int) int {
	if j <= n/2 {
		return j
	}
	return j - n
}

// EachSpec iterates over the local spectral coefficients, passing the flat
// local index and the signed wavenumbers (k1, k2, k3).
func (pl *Plan) EachSpec(fn func(idx, k1, k2, k3 int)) {
	n := pl.Pe.Grid.N
	d := pl.specDim
	idx := 0
	for i1 := 0; i1 < d[0]; i1++ {
		k1 := Wavenumber(i1, n[0])
		for i2 := 0; i2 < d[1]; i2++ {
			k2 := Wavenumber(pl.specLo[1]+i2, n[1])
			for i3 := 0; i3 < d[2]; i3++ {
				k3 := pl.specLo[2] + i3 // r2c keeps only k3 in [0, N3/2]
				fn(idx, k1, k2, k3)
				idx++
			}
		}
	}
}

// EachSpecPar is EachSpec on the worker pool: the flat spectral index range
// is split into deterministic contiguous chunks evaluated concurrently.
// fn must write only data indexed by idx; the wavenumbers passed are
// identical to EachSpec's.
func (pl *Plan) EachSpecPar(fn func(idx, k1, k2, k3 int)) {
	n := pl.Pe.Grid.N
	d := pl.specDim
	par.For(d[0]*d[1]*d[2], func(lo, hi int) {
		i1 := lo / (d[1] * d[2])
		rem := lo % (d[1] * d[2])
		i2 := rem / d[2]
		i3 := rem % d[2]
		k1 := Wavenumber(i1, n[0])
		k2 := Wavenumber(pl.specLo[1]+i2, n[1])
		for idx := lo; idx < hi; idx++ {
			fn(idx, k1, k2, pl.specLo[2]+i3)
			i3++
			if i3 == d[2] {
				i3 = 0
				i2++
				if i2 == d[1] {
					i2 = 0
					i1++
					if i1 < d[0] {
						k1 = Wavenumber(i1, n[0])
					}
				}
				k2 = Wavenumber(pl.specLo[1]+i2, n[1])
			}
		}
	})
}

// Forward computes the unnormalized 3D r2c transform of the local real
// pencil (dims Local(0) x Local(1) x N3) and returns the local spectral
// block in the layout described by SpecDims. It errors on a source of the
// wrong local length.
func (pl *Plan) Forward(src []float64) ([]complex128, error) {
	dst := make([]complex128, pl.SpecLocalTotal())
	if err := pl.ForwardInto(src, dst); err != nil {
		return nil, err
	}
	return dst, nil
}

// ForwardInto is Forward writing into a caller-provided spectral block;
// it performs zero heap allocations after workspace warmup (the in-process
// all-to-all still allocates on multi-rank communicators). It errors on
// mis-sized arguments before any communication happens.
func (pl *Plan) ForwardInto(src []float64, dst []complex128) error {
	pl.oneReal[0] = src
	pl.oneSpec[0] = dst
	err := pl.ForwardBatchInto(pl.oneReal[:], pl.oneSpec[:])
	pl.oneReal[0] = nil
	pl.oneSpec[0] = nil
	return err
}

// ForwardBatch transforms B fields together, fusing each transpose into a
// single all-to-all (one latency term for the whole batch).
func (pl *Plan) ForwardBatch(srcs [][]float64) ([][]complex128, error) {
	dsts := make([][]complex128, len(srcs))
	for b := range dsts {
		dsts[b] = make([]complex128, pl.SpecLocalTotal())
	}
	if err := pl.ForwardBatchInto(srcs, dsts); err != nil {
		return nil, err
	}
	return dsts, nil
}

// ForwardBatchInto is ForwardBatch into caller-provided spectral blocks.
// Every srcs[b] must have the local pencil length and every dsts[b] length
// SpecLocalTotal; violations are reported as errors before any
// communication happens, so no rank is left blocked in a transpose.
func (pl *Plan) ForwardBatchInto(srcs [][]float64, dsts [][]complex128) error {
	pe := pl.Pe
	B := len(srcs)
	if len(dsts) != B {
		return fmt.Errorf("pfft: forward batch: %d sources but %d destinations", B, len(dsts))
	}
	for b := 0; b < B; b++ {
		if len(srcs[b]) != pe.LocalTotal() {
			return fmt.Errorf("pfft: forward batch field %d: source length %d, want local pencil %d", b, len(srcs[b]), pe.LocalTotal())
		}
		if len(dsts[b]) != pl.SpecLocalTotal() {
			return fmt.Errorf("pfft: forward batch field %d: destination length %d, want spectral block %d", b, len(dsts[b]), pl.SpecLocalTotal())
		}
	}
	pl.ensureBatch(B)
	pe.Comm.CountFFTs(B)
	qRow, qCol := pe.Row.Size(), pe.Col.Size()
	st := &pl.st
	prodA := pl.dimsA[0] * pl.dimsA[1] * pl.dimsA[2]

	// Stage 1: r2c along the complete dimension 2. When no transpose
	// follows (both communicators trivial) the spectral layout equals the
	// stage-1 layout, so the lines land directly in dsts.
	cur := dsts
	if qRow > 1 || qCol > 1 {
		for b := 0; b < B; b++ {
			pl.ws.hdrA[b] = pl.ws.bufA[b][:prodA]
		}
		cur = pl.ws.hdrA[:B]
	}
	dims := pl.dimsA
	t0 := time.Now()
	st.srcs, st.cur, st.lines = srcs, cur, pl.dimsA[0]*pl.dimsA[1]
	par.ForChunks(B*st.lines, lineGrain, pl.fnRealFwd)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Stage 2: transpose in the row communicator — unsplit dim 1, split
	// dim 2: (n1, n2loc, m3) -> (n1, N2, m3loc). Trivial communicators
	// leave the block untouched (the shares are the whole axes), so the
	// stage is skipped entirely instead of copied.
	if qRow > 1 {
		nxt := dsts
		if qCol > 1 {
			prodB := pl.dimsB[0] * pl.dimsB[1] * pl.dimsB[2]
			for b := 0; b < B; b++ {
				pl.ws.hdrB[b] = pl.ws.bufB[b][:prodB]
			}
			nxt = pl.ws.hdrB[:B]
		}
		dims = pl.reshuffleBatch(pe.Row, cur, nxt, dims, 1, 2, pe.Grid.N[1])
		cur = nxt
	}

	t0 = time.Now()
	st.cur, st.dims, st.axis, st.inverse, st.fp = cur, dims, 1, false, pl.plan2
	st.lines = dims[0] * dims[2]
	par.ForChunks(B*st.lines, lineGrain, pl.fnCplx)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Stage 3: transpose in the column communicator — unsplit dim 0,
	// split dim 1: (n1loc, N2, m3loc) -> (N1, n2loc2, m3loc).
	if qCol > 1 {
		dims = pl.reshuffleBatch(pe.Col, cur, dsts, dims, 0, 1, pe.Grid.N[0])
		cur = dsts
	}

	t0 = time.Now()
	st.cur, st.dims, st.axis, st.inverse, st.fp = cur, dims, 0, false, pl.plan1
	st.lines = dims[1] * dims[2]
	par.ForChunks(B*st.lines, lineGrain, pl.fnCplx)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	if dims != pl.specDim {
		invariant("forward pipeline ended on dims %v, want spectral layout %v", dims, pl.specDim)
	}
	st.srcs, st.cur = nil, nil
	return nil
}

// Inverse computes the normalized inverse transform of a local spectral
// block back to the local real pencil. The input is not modified. It
// errors on a spectrum of the wrong local length.
func (pl *Plan) Inverse(spec []complex128) ([]float64, error) {
	out := make([]float64, pl.Pe.LocalTotal())
	if err := pl.InverseInto(spec, out); err != nil {
		return nil, err
	}
	return out, nil
}

// InverseInto is Inverse writing into a caller-provided real pencil; it
// performs zero heap allocations after workspace warmup. It errors on
// mis-sized arguments before any communication happens.
func (pl *Plan) InverseInto(spec []complex128, dst []float64) error {
	pl.oneSpec[0] = spec
	pl.oneReal[0] = dst
	err := pl.InverseBatchInto(pl.oneSpec[:], pl.oneReal[:])
	pl.oneSpec[0] = nil
	pl.oneReal[0] = nil
	return err
}

// InverseBatch inverts B spectral blocks together with fused transposes.
// The inputs are not modified.
func (pl *Plan) InverseBatch(specs [][]complex128) ([][]float64, error) {
	outs := make([][]float64, len(specs))
	for b := range outs {
		outs[b] = make([]float64, pl.Pe.LocalTotal())
	}
	if err := pl.InverseBatchInto(specs, outs); err != nil {
		return nil, err
	}
	return outs, nil
}

// InverseBatchInto is InverseBatch into caller-provided real pencils.
// Mis-sized arguments are reported as errors before any communication
// happens, so no rank is left blocked in a transpose.
func (pl *Plan) InverseBatchInto(specs [][]complex128, outs [][]float64) error {
	pe := pl.Pe
	B := len(specs)
	if len(outs) != B {
		return fmt.Errorf("pfft: inverse batch: %d spectra but %d outputs", B, len(outs))
	}
	for b := 0; b < B; b++ {
		if len(specs[b]) != pl.SpecLocalTotal() {
			return fmt.Errorf("pfft: inverse batch field %d: spectrum length %d, want spectral block %d", b, len(specs[b]), pl.SpecLocalTotal())
		}
		if len(outs[b]) != pe.LocalTotal() {
			return fmt.Errorf("pfft: inverse batch field %d: output length %d, want local pencil %d", b, len(outs[b]), pe.LocalTotal())
		}
	}
	pl.ensureBatch(B)
	pe.Comm.CountFFTs(B)
	qRow, qCol := pe.Row.Size(), pe.Col.Size()
	st := &pl.st

	// Work on a copy so the caller's spectrum survives.
	total := pl.SpecLocalTotal()
	for b := 0; b < B; b++ {
		pl.ws.hdrA[b] = pl.ws.bufA[b][:total]
		copy(pl.ws.hdrA[b], specs[b])
	}
	cur := pl.ws.hdrA[:B]
	dims := pl.specDim

	t0 := time.Now()
	st.cur, st.dims, st.axis, st.inverse, st.fp = cur, dims, 0, true, pl.plan1
	st.lines = dims[1] * dims[2]
	par.ForChunks(B*st.lines, lineGrain, pl.fnCplx)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Undo the column transpose: split dim 0, unsplit dim 1.
	if qCol > 1 {
		prodB := pl.dimsB[0] * pl.dimsB[1] * pl.dimsB[2]
		for b := 0; b < B; b++ {
			pl.ws.hdrB[b] = pl.ws.bufB[b][:prodB]
		}
		nxt := pl.ws.hdrB[:B]
		dims = pl.reshuffleBatch(pe.Col, cur, nxt, dims, 1, 0, pe.Grid.N[1])
		cur = nxt
	}

	t0 = time.Now()
	st.cur, st.dims, st.axis, st.inverse, st.fp = cur, dims, 1, true, pl.plan2
	st.lines = dims[0] * dims[2]
	par.ForChunks(B*st.lines, lineGrain, pl.fnCplx)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())

	// Undo the row transpose: split dim 1, unsplit dim 2.
	if qRow > 1 {
		prodA := pl.dimsA[0] * pl.dimsA[1] * pl.dimsA[2]
		for b := 0; b < B; b++ {
			pl.ws.hdrA[b] = pl.ws.bufA[b][:prodA]
		}
		nxt := pl.ws.hdrA[:B]
		dims = pl.reshuffleBatch(pe.Row, cur, nxt, dims, 2, 1, pl.m3)
		cur = nxt
	}
	if dims != pl.dimsA {
		invariant("inverse pipeline ended on dims %v, want pencil layout %v", dims, pl.dimsA)
	}

	t0 = time.Now()
	st.cur, st.outs, st.lines = cur, outs, dims[0]*dims[1]
	par.ForChunks(B*st.lines, lineGrain, pl.fnRealInv)
	pe.Comm.AddExec(mpi.PhaseFFTExec, time.Since(t0).Seconds())
	st.outs, st.cur = nil, nil
	return nil
}

// reshuffleBatch redistributes the B per-field blocks src within comm:
// axis u, currently split across the communicator, becomes complete
// (global length gu), while axis s, currently complete, becomes split.
// All B fields travel in one AlltoallvComplex with field-interleaved
// payloads; dst[b] receives field b. Returns the new local dimensions.
// Callers skip trivial communicators (size 1) entirely — the shares are
// the whole axes, so the block is already in its destination layout.
func (pl *Plan) reshuffleBatch(c *mpi.Comm, src, dst [][]complex128, dims [3]int, u, s, gu int) [3]int {
	if pl.precision == prec.F32 {
		return pl.reshuffleBatch32(c, src, dst, dims, u, s, gu)
	}
	q := c.Size()
	B := len(src)
	old := c.SetPhase(mpi.PhaseFFTComm)
	defer c.SetPhase(old)
	c.CountTranspose(B)

	ws := &pl.ws
	pos := 0
	for t := 0; t < q; t++ {
		lo, hi := grid.Share(dims[s], q, t)
		blk := dims
		blk[s] = hi - lo
		off := [3]int{}
		off[s] = lo
		blkTot := blk[0] * blk[1] * blk[2]
		part := ws.sendSlab[pos : pos+B*blkTot]
		pos += B * blkTot
		for b := 0; b < B; b++ {
			packBlockInto(part[b*blkTot:(b+1)*blkTot], src[b], dims, off, blk)
		}
		ws.send[t] = part
	}
	recv := c.AlltoallvComplex(ws.send[:q])

	myLoS, myHiS := grid.Share(dims[s], q, c.Rank())
	newDims := dims
	newDims[u] = gu
	newDims[s] = myHiS - myLoS
	for r := 0; r < q; r++ {
		loU, hiU := grid.Share(gu, q, r)
		blk := newDims
		blk[u] = hiU - loU
		off := [3]int{}
		off[u] = loU
		blkTot := blk[0] * blk[1] * blk[2]
		for b := 0; b < B; b++ {
			unpackBlock(dst[b], newDims, off, blk, recv[r][b*blkTot:(b+1)*blkTot])
		}
	}
	return newDims
}

// reshuffleBatch32 is the narrow-precision transpose: identical block
// schedule to reshuffleBatch, but payloads travel as interleaved (re, im)
// float32 pairs — half the wire bytes per coefficient. The mpi envelope
// (length + checksum) guards the bytes in flight; on top of that the
// decode validates the narrow framing per source — an even float count
// matching exactly 2·B·blkTot — and raises a typed *mpi.CommError on a
// ragged tail rather than decoding a garbage trailing element.
func (pl *Plan) reshuffleBatch32(c *mpi.Comm, src, dst [][]complex128, dims [3]int, u, s, gu int) [3]int {
	q := c.Size()
	B := len(src)
	old := c.SetPhase(mpi.PhaseFFTComm)
	defer c.SetPhase(old)
	c.CountTranspose(B)

	ws := &pl.ws
	pos := 0
	for t := 0; t < q; t++ {
		lo, hi := grid.Share(dims[s], q, t)
		blk := dims
		blk[s] = hi - lo
		off := [3]int{}
		off[s] = lo
		blkTot := blk[0] * blk[1] * blk[2]
		part := ws.sendSlab32[pos : pos+2*B*blkTot]
		pos += 2 * B * blkTot
		for b := 0; b < B; b++ {
			packBlockInto32(part[2*b*blkTot:2*(b+1)*blkTot], src[b], dims, off, blk)
		}
		ws.send32[t] = part
	}
	recv := c.AlltoallvFloat32(ws.send32[:q])

	myLoS, myHiS := grid.Share(dims[s], q, c.Rank())
	newDims := dims
	newDims[u] = gu
	newDims[s] = myHiS - myLoS
	for r := 0; r < q; r++ {
		loU, hiU := grid.Share(gu, q, r)
		blk := newDims
		blk[u] = hiU - loU
		off := [3]int{}
		off[u] = loU
		blkTot := blk[0] * blk[1] * blk[2]
		if len(recv[r])%2 != 0 || len(recv[r]) != 2*B*blkTot {
			mpi.Raise(&mpi.CommError{
				Rank:   c.Rank(),
				Phase:  mpi.PhaseFFTComm,
				Op:     "alltoallv-f32",
				Detail: fmt.Sprintf("narrow transpose payload from source %d: %d floats, want %d (B=%d, block %v)", r, len(recv[r]), 2*B*blkTot, B, blk),
			})
		}
		for b := 0; b < B; b++ {
			unpackBlock32(dst[b], newDims, off, blk, recv[r][2*b*blkTot:2*(b+1)*blkTot])
		}
	}
	return newDims
}

// packBlockInto extracts the sub-block of a 3D array starting at off with
// the given block dimensions into the caller's contiguous slice.
func packBlockInto(out, src []complex128, dims, off, blk [3]int) {
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			copy(out[pos:pos+blk[2]], src[base:base+blk[2]])
			pos += blk[2]
		}
	}
}

// unpackBlock writes a contiguous block into the sub-region of dst at off.
func unpackBlock(dst []complex128, dims, off, blk [3]int, src []complex128) {
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			copy(dst[base:base+blk[2]], src[pos:pos+blk[2]])
			pos += blk[2]
		}
	}
}

// packBlockInto32 is packBlockInto encoding each complex coefficient as an
// interleaved (re, im) float32 pair; out has 2x the block's element count.
func packBlockInto32(out []float32, src []complex128, dims, off, blk [3]int) {
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			for _, v := range src[base : base+blk[2]] {
				out[pos] = float32(real(v))
				out[pos+1] = float32(imag(v))
				pos += 2
			}
		}
	}
}

// unpackBlock32 decodes interleaved (re, im) float32 pairs back into the
// sub-region of dst at off.
func unpackBlock32(dst []complex128, dims, off, blk [3]int, src []float32) {
	pos := 0
	for i0 := 0; i0 < blk[0]; i0++ {
		for i1 := 0; i1 < blk[1]; i1++ {
			base := ((off[0]+i0)*dims[1]+(off[1]+i1))*dims[2] + off[2]
			row := dst[base : base+blk[2]]
			for j := range row {
				row[j] = complex(float64(src[pos]), float64(src[pos+1]))
				pos += 2
			}
		}
	}
}
