// Command imggen writes the built-in test volumes (the paper's synthetic
// problem and the brain phantom) as MetaImage (.mhd/.raw) pairs plus PGM
// preview slices, for use with regsolve -problem files or external tools.
//
// Examples:
//
//	imggen -kind synthetic -n 64 -out data/
//	imggen -kind brain -n1 64 -n2 75 -n3 64 -subject 3 -out data/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"diffreg"
	"diffreg/internal/grid"
	"diffreg/internal/imaging"
)

func main() {
	kind := flag.String("kind", "synthetic", "synthetic | brain")
	n := flag.Int("n", 32, "cubic grid size (shorthand for -n1/-n2/-n3)")
	n1 := flag.Int("n1", 0, "grid size, dimension 1")
	n2 := flag.Int("n2", 0, "grid size, dimension 2")
	n3 := flag.Int("n3", 0, "grid size, dimension 3")
	nt := flag.Int("nt", 4, "time steps for the synthetic forward solve")
	subject := flag.Int64("subject", 1, "brain phantom subject seed")
	subjectB := flag.Int64("subject2", 2, "second brain phantom subject seed")
	incompressible := flag.Bool("incompressible", false, "use the solenoidal synthetic velocity")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	if *n1 == 0 {
		*n1 = *n
	}
	if *n2 == 0 {
		*n2 = *n
	}
	if *n3 == 0 {
		*n3 = *n
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	g, err := grid.New(*n1, *n2, *n3)
	if err != nil {
		fail(err)
	}

	var a, b diffreg.Volume
	var nameA, nameB string
	switch *kind {
	case "synthetic":
		a, b, err = diffreg.SyntheticProblem(*n1, *n2, *n3, *nt, *incompressible)
		nameA, nameB = "template", "reference"
	case "brain":
		a, b, err = diffreg.BrainPhantomPair(*n1, *n2, *n3, *subject, *subjectB)
		nameA = fmt.Sprintf("brain_na%02d", *subject)
		nameB = fmt.Sprintf("brain_na%02d", *subjectB)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fail(err)
	}

	for _, v := range []struct {
		name string
		vol  diffreg.Volume
	}{{nameA, a}, {nameB, b}} {
		mhd := filepath.Join(*out, v.name+".mhd")
		if err := imaging.WriteMHD(mhd, g, v.vol.Data); err != nil {
			fail(err)
		}
		pgm := filepath.Join(*out, v.name+".pgm")
		if err := imaging.WritePGMSlice(pgm, g, v.vol.Data, 0, g.N[0]/2); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s (+.raw, +.pgm preview)\n", mhd)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "imggen:", err)
	os.Exit(1)
}
