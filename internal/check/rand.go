package check

import (
	"math"
	"math/rand"

	"diffreg/internal/field"
	"diffreg/internal/grid"
)

// The fuzz fields are random band-limited trigonometric polynomials: a
// fixed number of modes with |k_d| <= kmax and random amplitudes/phases.
// The coefficients are drawn from a seeded generator that every rank
// advances identically, and the field is evaluated pointwise from global
// coordinates, so the same field is produced for every decomposition —
// adjointness measured at p=1 and p=4 tests the same operator on the same
// data.
const (
	randTerms = 8
	randKmax  = 2
)

type trigTerm struct {
	a          float64
	k1, k2, k3 float64
	phase      float64
}

func drawTerms(rng *rand.Rand) []trigTerm {
	terms := make([]trigTerm, randTerms)
	for i := range terms {
		terms[i] = trigTerm{
			a:     rng.Float64()*2 - 1,
			k1:    float64(rng.Intn(2*randKmax+1) - randKmax),
			k2:    float64(rng.Intn(2*randKmax+1) - randKmax),
			k3:    float64(rng.Intn(2*randKmax+1) - randKmax),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	return terms
}

func evalTerms(terms []trigTerm, x1, x2, x3 float64) float64 {
	s := 0.0
	for _, t := range terms {
		s += t.a * math.Cos(t.k1*x1+t.k2*x2+t.k3*x3+t.phase)
	}
	return s
}

// randScalar draws a random band-limited scalar field.
func randScalar(pe *grid.Pencil, rng *rand.Rand) *field.Scalar {
	terms := drawTerms(rng)
	s := field.NewScalar(pe)
	s.SetFunc(func(x1, x2, x3 float64) float64 { return evalTerms(terms, x1, x2, x3) })
	return s
}

// randVector draws a random band-limited vector field.
func randVector(pe *grid.Pencil, rng *rand.Rand) *field.Vector {
	t1, t2, t3 := drawTerms(rng), drawTerms(rng), drawTerms(rng)
	v := field.NewVector(pe)
	v.SetFunc(func(x1, x2, x3 float64) (float64, float64, float64) {
		return evalTerms(t1, x1, x2, x3), evalTerms(t2, x1, x2, x3), evalTerms(t3, x1, x2, x3)
	})
	return v
}

// relDiff is the symmetric relative difference of two scalars, guarded
// against both vanishing.
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Abs(a) + math.Abs(b)
	if s < 1e-300 {
		return 0
	}
	return d / s
}
