package diffreg

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/grid"
	"diffreg/internal/mpi"
	"diffreg/internal/pfft"
	"diffreg/internal/spectral"
	"diffreg/internal/transport"
)

// ApplyDeformation warps an arbitrary volume by a displacement field
// recovered from a registration: out(x) = img(x + u(x)). Typical use is
// transferring a segmentation or label map from the template space to the
// reference space with the map computed on the intensity images. The
// interpolation is the solver's tricubic kernel; for hard label maps
// apply a nearest-label rounding afterwards.
func ApplyDeformation(img Volume, displacement [3]Volume, tasks int) (Volume, error) {
	if tasks < 1 {
		tasks = 1
	}
	for d := 0; d < 3; d++ {
		if displacement[d].N != img.N {
			return Volume{}, fmt.Errorf("diffreg: displacement dim %d has dims %v, image %v", d, displacement[d].N, img.N)
		}
	}
	g, err := grid.New(img.N[0], img.N[1], img.N[2])
	if err != nil {
		return Volume{}, err
	}
	out := NewVolume(img.N[0], img.N[1], img.N[2])
	_, err = mpi.Run(tasks, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		src := field.NewScalar(pe)
		u := field.NewVector(pe)
		var data [4][]float64
		if c.Rank() == 0 {
			data[0] = img.Data
			for d := 0; d < 3; d++ {
				data[d+1] = displacement[d].Data
			}
		}
		src.Scatter(data[0])
		for d := 0; d < 3; d++ {
			u.C[d].Scatter(data[d+1])
		}
		ts := transport.NewSolver(spectral.New(pfft.NewPlan(pe)), 1)
		warped := ts.ApplyMap(src, u)
		global := warped.Gather()
		if c.Rank() == 0 {
			copy(out.Data, global)
		}
		return nil
	})
	if err != nil {
		return Volume{}, err
	}
	return out, nil
}

// InverseDisplacement computes the displacement of the inverse map
// y^{-1} = x + uInv from a recovered velocity field, so quantities can be
// pushed forward from the reference space back to the template space.
func InverseDisplacement(velocity [3]Volume, timeSteps, tasks int, incompressible bool) ([3]Volume, error) {
	if tasks < 1 {
		tasks = 1
	}
	if timeSteps < 1 {
		timeSteps = 4
	}
	n := velocity[0].N
	g, err := grid.New(n[0], n[1], n[2])
	if err != nil {
		return [3]Volume{}, err
	}
	var out [3]Volume
	_, err = mpi.Run(tasks, mpi.DefaultCostModel(), func(c *mpi.Comm) error {
		pe, err := grid.NewPencil(g, c)
		if err != nil {
			return err
		}
		v := field.NewVector(pe)
		for d := 0; d < 3; d++ {
			var data []float64
			if c.Rank() == 0 {
				data = velocity[d].Data
			}
			v.C[d].Scatter(data)
		}
		ts := transport.NewSolver(spectral.New(pfft.NewPlan(pe)), timeSteps)
		ctx := ts.NewContext(v, incompressible)
		uInv := ts.InverseDisplacement(ctx)
		for d := 0; d < 3; d++ {
			gathered := uInv.C[d].Gather()
			if c.Rank() == 0 {
				out[d] = Volume{N: n, Data: gathered}
			}
		}
		return nil
	})
	if err != nil {
		return [3]Volume{}, err
	}
	return out, nil
}

// GridImage renders a lattice of grid lines as a volume; warping it with
// ApplyDeformation produces the deformed-grid overlays of the paper's
// Figs. 1 and 7.
func GridImage(n1, n2, n3, every int) Volume {
	if every < 2 {
		every = 4
	}
	out := NewVolume(n1, n2, n3)
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				if i1%every == 0 || i2%every == 0 || i3%every == 0 {
					out.Set(i1, i2, i3, 1)
				}
			}
		}
	}
	return out
}
