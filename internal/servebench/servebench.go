// Package servebench measures registration-as-a-service throughput for
// BENCH_pr6.json. It lives outside paperbench because it imports
// internal/serve (which imports diffreg); keeping it separate lets
// diffreg's in-package tests keep importing paperbench without a cycle.
package servebench

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"diffreg/internal/paperbench"
	"diffreg/internal/pfft"
	"diffreg/internal/serve"
)

// ServeRound is one measured serving round: a fixed job count pushed by
// concurrent clients through the job server's worker pool.
type ServeRound struct {
	Seconds       float64 `json:"seconds"`
	JobsPerMinute float64 `json:"jobs_per_minute"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	// PlanBuilds and ArenaGrows are the pfft package counter deltas over
	// the round: plans constructed and workspace arenas grown. The warm
	// round must show 0 and 0 — the steady-state zero-allocation condition
	// extended through the serving path.
	PlanBuilds int64 `json:"plan_builds"`
	ArenaGrows int64 `json:"arena_grows"`
}

// ServeSnapshot is the machine-readable output of `regbench -serve`:
// registration-as-a-service throughput at a fixed grid with a saturated
// worker pool, cold (plan cache disabled) versus warm (cache enabled and
// pre-seeded by a warm-up round).
type ServeSnapshot struct {
	Grid         [3]int     `json:"grid"`
	TasksPerJob  int        `json:"tasks_per_job"`
	Workers      int        `json:"workers"`
	Clients      int        `json:"clients"`
	JobsPerRound int        `json:"jobs_per_round"`
	Cold         ServeRound `json:"cold"`
	Warm         ServeRound `json:"warm"`
	// WarmSpeedup is cold.Seconds / warm.Seconds (> 1 means the plan cache
	// pays for itself).
	WarmSpeedup float64 `json:"warm_speedup"`
}

// serveRound saturates the server with jobsTotal copies of spec pushed by
// clients concurrent submitters and times the drain.
func serveRound(srv *serve.Server, spec serve.JobSpec, clients, jobsTotal int) (ServeRound, error) {
	builds0, grows0 := pfft.PlanBuilds(), pfft.ArenaGrows()
	hits0, misses0 := srv.Stats().Cache.Hits, srv.Stats().Cache.Misses

	jobs := make([]*serve.Job, jobsTotal)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < jobsTotal; i += clients {
				job, err := srv.Submit(spec)
				if err != nil {
					errs[c] = err
					return
				}
				jobs[i] = job
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ServeRound{}, err
		}
	}
	for _, job := range jobs {
		job.Wait()
		if st := job.Status(); st.State != serve.JobDone {
			return ServeRound{}, fmt.Errorf("job %s: %s (%s)", job.ID, st.State, st.Error)
		}
	}
	sec := time.Since(t0).Seconds()

	stats := srv.Stats()
	return ServeRound{
		Seconds:       sec,
		JobsPerMinute: float64(jobsTotal) / sec * 60,
		CacheHits:     stats.Cache.Hits - hits0,
		CacheMisses:   stats.Cache.Misses - misses0,
		PlanBuilds:    int64(pfft.PlanBuilds() - builds0),
		ArenaGrows:    int64(pfft.ArenaGrows() - grows0),
	}, nil
}

// Serve measures serving throughput for BENCH_pr6: one cold round against
// a cache-disabled server, then — on a cache-enabled server — a warm-up
// round that seeds one cache entry per worker, then the measured warm
// round, which must run without constructing a single pfft plan.
func Serve(quick bool) (paperbench.Report, error) {
	n := 64
	if quick {
		n = 32
	}
	// Two workers × two ranks per job keeps the pool matched to the
	// available cores; four clients keep the queue saturated throughout.
	const (
		workers      = 2
		clients      = 4
		jobsPerRound = 12
	)
	// The serving-latency job shape: one Gauss-Newton step with bounded
	// inner Krylov work — the high-throughput regime the plan cache is for.
	spec := serve.JobSpec{
		Generator: "synthetic", N: [3]int{n, n, n}, Tasks: 2,
		TimeSteps: 2, MaxNewtonIters: 1, MaxKrylovIters: 5, GradTol: 1e-12,
	}
	snap := ServeSnapshot{Grid: spec.N, TasksPerJob: spec.Tasks,
		Workers: workers, Clients: clients, JobsPerRound: jobsPerRound}

	// Cold: a fresh cache-disabled server taking its first batch — every
	// job builds its per-rank plans, operator tables, and workspaces from
	// scratch, and the round carries the first-touch costs (generator
	// construction, heap growth) a cold deployment actually pays.
	cold := serve.New(serve.Config{Workers: workers, QueueDepth: jobsPerRound + clients, CacheEntries: -1})
	round, err := serveRound(cold, spec, clients, jobsPerRound)
	cold.Close()
	if err != nil {
		return paperbench.Report{}, err
	}
	snap.Cold = round

	// Warm: cache enabled; the warm-up round leaves one entry per worker,
	// so the measured round runs fully on cached plans.
	warm := serve.New(serve.Config{Workers: workers, QueueDepth: jobsPerRound + clients, CacheEntries: workers})
	defer warm.Close()
	if _, err := serveRound(warm, spec, clients, jobsPerRound); err != nil {
		return paperbench.Report{}, err
	}
	round, err = serveRound(warm, spec, clients, jobsPerRound)
	if err != nil {
		return paperbench.Report{}, err
	}
	snap.Warm = round
	if snap.Warm.Seconds > 0 {
		snap.WarmSpeedup = snap.Cold.Seconds / snap.Warm.Seconds
	}

	text, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return paperbench.Report{}, err
	}
	return paperbench.Report{Title: "Registration-as-a-service throughput", Text: string(text)}, nil
}

func submitAndWait(srv *serve.Server, spec serve.JobSpec) (*serve.JobResult, error) {
	job, err := srv.Submit(spec)
	if err != nil {
		return nil, err
	}
	job.Wait()
	if st := job.Status(); st.State != serve.JobDone {
		return nil, fmt.Errorf("job %s: %s (%s)", job.ID, st.State, st.Error)
	}
	return job.Result(), nil
}
