package ckpt

import (
	"os"
	"path/filepath"
	"testing"

	"diffreg/internal/optim"
)

func spoolState() *State {
	st := &State{N: [3]int{4, 4, 4}, Tasks: 1, Precision: "float64",
		Beta: 1e-2, Iter: 3, JInit: 1, MisfitInit: 0.5, GnormInit: 0.25,
		History: []optim.IterRecord{{Iter: 1, J: 0.9}}}
	for d := 0; d < 3; d++ {
		st.V[d] = make([]float64, 64)
		for i := range st.V[d] {
			st.V[d][i] = float64(d*64 + i)
		}
	}
	return st
}

// TestSpoolHelpers drives the spool lifecycle: no checkpoint before the
// first save, a valid probe after it, and an idempotent reap.
func TestSpoolHelpers(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spool")
	if err := EnsureSpoolDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := EnsureSpoolDir(dir); err != nil {
		t.Fatalf("EnsureSpoolDir must be idempotent: %v", err)
	}
	path := SpoolPath(dir, "job-000007")
	if HasCheckpoint(path) {
		t.Fatal("HasCheckpoint true before any save")
	}
	if err := Save(path, spoolState()); err != nil {
		t.Fatal(err)
	}
	if !HasCheckpoint(path) {
		t.Fatal("HasCheckpoint false after a valid save")
	}
	if st, err := Load(path); err != nil || st.Iter != 3 {
		t.Fatalf("spooled checkpoint does not load: %v", err)
	}
	if err := Reap(path); err != nil {
		t.Fatal(err)
	}
	if HasCheckpoint(path) {
		t.Fatal("HasCheckpoint true after reap")
	}
	if err := Reap(path); err != nil {
		t.Fatalf("Reap must tolerate an already-gone spool file: %v", err)
	}
}

// TestHasCheckpointRejectsGarbage: the probe must reject files that are
// not checkpoints without relying on Load.
func TestHasCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.ckpt": {},
		"short.ckpt": []byte("DREGCKPT"),
		"wrong.ckpt": []byte("NOTACKPTxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if HasCheckpoint(p) {
			t.Errorf("%s accepted as a checkpoint", name)
		}
	}
	// A version bump must fail the probe even with valid magic.
	p := filepath.Join(dir, "ver.ckpt")
	if err := Save(p, spoolState()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len("DREGCKPT")] = 99
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if HasCheckpoint(p) {
		t.Error("future-version file accepted as resumable")
	}
}
