package optim

// Vec is the vector-space interface the Krylov and Newton drivers need.
// *field.Vector satisfies Vec[*field.Vector] directly; field.Series (the
// stacked velocity coefficients of the time-varying extension) satisfies
// Vec[field.Series]. The constraint is self-referential so that methods
// return the concrete type without casts.
//
// Determinism contract: implementations run their pointwise loops and
// reductions on the shared worker pool (package par), and Dot/NormL2 must
// use a fixed reduction association so the Krylov iteration — whose branch
// decisions (convergence, curvature) feed back into the iterates — takes
// bit-identical paths for every pool size. field's implementations satisfy
// this via par.Sum.
type Vec[T any] interface {
	Clone() T
	Axpy(a float64, x T)
	Scale(a float64)
	Dot(x T) float64
	NormL2() float64
}

// Objective is the reduced-space optimization problem: objective and
// gradient evaluations, Hessian matvecs at the last gradient point, the
// preconditioner, and the projection onto the feasible space (identity
// for unconstrained problems, Leray for incompressible ones). It is the
// same callback set the paper registers with TAO.
type Objective[T Vec[T]] interface {
	// Evaluate returns the objective value at v (one forward solve); used
	// by the line search.
	Evaluate(v T) ObjVals
	// EvalGradient returns the objective and the reduced gradient at v,
	// caching the state/adjoint trajectories for subsequent HessMatVec
	// calls.
	EvalGradient(v T) GradVals[T]
	// HessMatVec applies the (Gauss-)Newton Hessian at the last
	// EvalGradient point.
	HessMatVec(w T) T
	// ApplyPrec applies the spectral preconditioner.
	ApplyPrec(r T) T
	// Project maps onto the feasible space.
	Project(v T) T
}

// ObjVals are the scalars of one objective evaluation.
type ObjVals struct {
	J      float64
	Misfit float64
}

// GradVals are the results of one gradient evaluation.
type GradVals[T any] struct {
	J      float64
	Misfit float64
	G      T
	Gnorm  float64
}
