package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightsPartitionOfUnity(t *testing.T) {
	f := func(tRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 1)
		w := Weights(tt)
		sum := w[0] + w[1] + w[2] + w[3]
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightsInterpolateNodes(t *testing.T) {
	// At t=0 only the offset-0 weight is nonzero.
	w := Weights(0)
	want := [4]float64{0, 1, 0, 0}
	for i := range w {
		if math.Abs(w[i]-want[i]) > 1e-14 {
			t.Errorf("w[%d] = %g want %g", i, w[i], want[i])
		}
	}
}

func TestWeightsReproduceCubic(t *testing.T) {
	// For p(s) = s^3 - 2s^2 + 3s - 1 sampled at s = -1,0,1,2 the
	// interpolant at t must be exact.
	p := func(s float64) float64 { return s*s*s - 2*s*s + 3*s - 1 }
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 0.99} {
		w := Weights(tt)
		got := w[0]*p(-1) + w[1]*p(0) + w[2]*p(1) + w[3]*p(2)
		if math.Abs(got-p(tt)) > 1e-12 {
			t.Errorf("t=%g: got %g want %g", tt, got, p(tt))
		}
	}
}

func TestSplitIndex(t *testing.T) {
	cases := []struct {
		x    float64
		n    int
		i    int
		frac float64
	}{
		{2.25, 8, 2, 0.25},
		{-0.5, 8, 7, 0.5},
		{8.75, 8, 0, 0.75},
		{-8.25, 8, 7, 0.75},
		{7.999, 8, 7, 0.999},
	}
	for _, c := range cases {
		i, f := SplitIndex(c.x, c.n)
		if i != c.i || math.Abs(f-c.frac) > 1e-9 {
			t.Errorf("SplitIndex(%g,%d) = (%d,%g) want (%d,%g)", c.x, c.n, i, f, c.i, c.frac)
		}
	}
}

// sampleGrid fills a grid with fn evaluated at integer coordinates.
func sampleGrid(n [3]int, fn func(x, y, z float64) float64) []float64 {
	f := make([]float64, n[0]*n[1]*n[2])
	idx := 0
	for i := 0; i < n[0]; i++ {
		for j := 0; j < n[1]; j++ {
			for k := 0; k < n[2]; k++ {
				f[idx] = fn(float64(i), float64(j), float64(k))
				idx++
			}
		}
	}
	return f
}

func TestEvalPeriodicExactAtNodes(t *testing.T) {
	n := [3]int{6, 5, 7}
	rng := rand.New(rand.NewSource(1))
	f := make([]float64, n[0]*n[1]*n[2])
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	idx := 0
	for i := 0; i < n[0]; i++ {
		for j := 0; j < n[1]; j++ {
			for k := 0; k < n[2]; k++ {
				got := EvalPeriodic(f, n, [3]float64{float64(i), float64(j), float64(k)})
				if math.Abs(got-f[idx]) > 1e-12 {
					t.Fatalf("node (%d,%d,%d): %g want %g", i, j, k, got, f[idx])
				}
				idx++
			}
		}
	}
}

func TestEvalPeriodicTrigConvergence(t *testing.T) {
	// Tricubic interpolation of a smooth periodic function converges at
	// fourth order: doubling resolution should shrink the error ~16x.
	errAt := func(n int) float64 {
		dims := [3]int{n, n, n}
		h := 2 * math.Pi / float64(n)
		f := sampleGrid(dims, func(x, y, z float64) float64 {
			return math.Sin(x*h) * math.Cos(y*h) * math.Sin(z*h)
		})
		rng := rand.New(rand.NewSource(7))
		maxErr := 0.0
		for trial := 0; trial < 200; trial++ {
			p := [3]float64{rng.Float64() * float64(n), rng.Float64() * float64(n), rng.Float64() * float64(n)}
			got := EvalPeriodic(f, dims, p)
			want := math.Sin(p[0]*h) * math.Cos(p[1]*h) * math.Sin(p[2]*h)
			if e := math.Abs(got - want); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}
	e8, e16 := errAt(8), errAt(16)
	ratio := e8 / e16
	if ratio < 8 {
		t.Errorf("convergence ratio %g (errors %g -> %g), want >= 8 (4th order ~16)", ratio, e8, e16)
	}
}

func TestLinearLessAccurateThanCubic(t *testing.T) {
	n := 16
	dims := [3]int{n, n, n}
	h := 2 * math.Pi / float64(n)
	f := sampleGrid(dims, func(x, y, z float64) float64 {
		return math.Sin(x*h) * math.Sin(y*h) * math.Sin(z*h)
	})
	rng := rand.New(rand.NewSource(3))
	var cubErr, linErr float64
	for trial := 0; trial < 300; trial++ {
		p := [3]float64{rng.Float64() * float64(n), rng.Float64() * float64(n), rng.Float64() * float64(n)}
		want := math.Sin(p[0]*h) * math.Sin(p[1]*h) * math.Sin(p[2]*h)
		if e := math.Abs(EvalPeriodic(f, dims, p) - want); e > cubErr {
			cubErr = e
		}
		if e := math.Abs(EvalPeriodicLinear(f, dims, p) - want); e > linErr {
			linErr = e
		}
	}
	if cubErr*5 > linErr {
		t.Errorf("cubic err %g should be much smaller than linear err %g", cubErr, linErr)
	}
}

func TestEvalPeriodicWrapsCorrectly(t *testing.T) {
	// A translated query across the periodic boundary must equal the query
	// shifted by n.
	n := [3]int{8, 8, 8}
	rng := rand.New(rand.NewSource(9))
	f := make([]float64, 512)
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	for trial := 0; trial < 100; trial++ {
		p := [3]float64{rng.Float64() * 8, rng.Float64() * 8, rng.Float64() * 8}
		q := [3]float64{p[0] - 8, p[1] + 8, p[2] - 16}
		a, b := EvalPeriodic(f, n, p), EvalPeriodic(f, n, q)
		if math.Abs(a-b) > 1e-11 {
			t.Fatalf("periodicity violated: %g vs %g at %v", a, b, p)
		}
	}
}

func BenchmarkEvalPeriodic(b *testing.B) {
	n := [3]int{32, 32, 32}
	f := make([]float64, 32*32*32)
	rng := rand.New(rand.NewSource(1))
	for i := range f {
		f[i] = rng.NormFloat64()
	}
	pts := make([][3]float64, 1024)
	for i := range pts {
		pts[i] = [3]float64{rng.Float64() * 32, rng.Float64() * 32, rng.Float64() * 32}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalPeriodic(f, n, pts[i%len(pts)])
	}
}

func TestBSplineWeightsPartitionOfUnity(t *testing.T) {
	for _, tt := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.999} {
		w := BSplineWeights(tt)
		sum := 0.0
		for _, v := range w {
			sum += v
			if v < 0 {
				t.Errorf("t=%g: negative weight %g", tt, v)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("t=%g: weights sum to %g", tt, sum)
		}
	}
}

func TestBSplineSymbolRange(t *testing.T) {
	// The sampling symbol is bounded in [1/3, 1]: the prefilter is well
	// conditioned at every wavenumber.
	for n := 4; n <= 32; n *= 2 {
		for k := -n / 2; k <= n/2; k++ {
			s := BSplineSymbol(k, n)
			if s < 1.0/3-1e-12 || s > 1+1e-12 {
				t.Errorf("symbol(%d,%d) = %g out of [1/3, 1]", k, n, s)
			}
		}
	}
	if math.Abs(BSplineSymbol(0, 8)-1) > 1e-12 {
		t.Errorf("DC symbol %g want 1", BSplineSymbol(0, 8))
	}
}

func TestBSplineNoOvershoot(t *testing.T) {
	// The B-spline weights are nonnegative, so the interpolant stays
	// within the coefficient range — unlike the Lagrange kernel, which
	// overshoots near steps.
	n := [3]int{8, 8, 8}
	c := make([]float64, 512)
	for i := range c {
		if i%2 == 0 {
			c[i] = 1
		}
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		p := [3]float64{rng.Float64() * 8, rng.Float64() * 8, rng.Float64() * 8}
		v := EvalPeriodicBSpline(c, n, p)
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("overshoot: %g at %v", v, p)
		}
	}
}
