package mpi

// Deterministic fault injection and failure detection for the in-process
// MPI runtime. A FaultPlan is attached to a world (RunWith) and addresses
// injection sites exactly the way communication cost is charged: by
// (world rank, phase, operation class, per-phase call index). The runtime
// keeps per-phase send and collective counters next to the cost counters,
// so a site like "rank 2, fft-comm, send #17" is stable across runs of the
// same binary — the message schedule is deterministic.
//
// When a plan (or explicit validation) is active, every point-to-point
// message carries an envelope: a per-stream sequence number, the intended
// payload length, and an FNV-1a checksum computed before the fault is
// applied. The receive side verifies the envelope and converts corruption
// into a typed *CommError instead of a silent wrong answer; duplicated
// deliveries are discarded by sequence number. A message that is dropped
// outright is detected by the receive-side watchdog as a timeout.
//
// Any rank that detects a failure aborts the whole world: the abort wakes
// every blocked receiver, so a fault never turns into a hang.

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

func f64bits(x float64) uint64     { return math.Float64bits(x) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// FaultKind selects what happens at an injection site.
type FaultKind int

const (
	// FaultNone marks an unset site.
	FaultNone FaultKind = iota
	// FaultDelay sleeps the rank briefly before the operation proceeds.
	// The run must still produce the fault-free answer.
	FaultDelay
	// FaultDrop discards the outgoing message entirely. The receiver's
	// watchdog converts the missing message into a timeout CommError.
	FaultDrop
	// FaultDuplicate delivers the message twice. The receiver discards the
	// stale copy by sequence number; the run must still produce the
	// fault-free answer.
	FaultDuplicate
	// FaultBitFlip flips one payload bit chosen by the plan's seeded RNG.
	// The receiver's checksum validation raises a CommError.
	FaultBitFlip
	// FaultTruncate cuts the payload short. The receiver's length
	// validation raises a CommError.
	FaultTruncate
	// FaultStall parks the rank until the world aborts (a peer's watchdog
	// fires) or MaxStall elapses, whichever comes first. On a single-rank
	// world there is no peer to time out, so the stall simply expires and
	// the run completes with the fault-free answer.
	FaultStall
)

// String returns the spec-syntax name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultDelay:
		return "delay"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "dup"
	case FaultBitFlip:
		return "bitflip"
	case FaultTruncate:
		return "truncate"
	case FaultStall:
		return "stall"
	default:
		return "none"
	}
}

// FaultOp is the operation class an injection site addresses.
type FaultOp int

const (
	// OpSend addresses the n-th point-to-point send a rank issues in a
	// phase (collectives are built from sends, so their payloads are
	// reachable here too).
	OpSend FaultOp = iota
	// OpCollective addresses the n-th all-to-all collective a rank enters
	// in a phase. Delay/stall apply to the rank at the collective entry;
	// payload kinds are applied to the collective's first outgoing send.
	OpCollective
)

// String returns the spec-syntax name of the op class.
func (o FaultOp) String() string {
	if o == OpCollective {
		return "coll"
	}
	return "send"
}

// FaultSite addresses one injection point.
type FaultSite struct {
	Rank  int   // world rank
	Phase Phase // accounting phase the operation is charged to
	Op    FaultOp
	Index int64 // per-(rank, phase, op) call index, 0-based
	Kind  FaultKind
}

// String renders the site in spec syntax.
func (s FaultSite) String() string {
	return fmt.Sprintf("%d:%s:%s:%d:%s", s.Rank, s.Phase, s.Op, s.Index, s.Kind)
}

type siteKey struct {
	rank  int
	phase Phase
	op    FaultOp
	index int64
}

// FaultPlan is a seeded, deterministic set of injection sites. It is safe
// for concurrent use by all ranks of a world.
type FaultPlan struct {
	// Seed drives the per-site RNG (bit positions for FaultBitFlip).
	Seed int64
	// Delay is the FaultDelay sleep; 0 means 2ms.
	Delay time.Duration
	// MaxStall bounds FaultStall on worlds where no peer can time out;
	// 0 means 4x the watchdog interval (or 2s without a watchdog).
	MaxStall time.Duration

	sites map[siteKey]FaultKind

	mu       sync.Mutex
	injected []FaultSite
}

// NewFaultPlan returns an empty plan with the given seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{Seed: seed, sites: map[siteKey]FaultKind{}}
}

// Add registers an injection site and returns the plan for chaining.
func (fp *FaultPlan) Add(site FaultSite) *FaultPlan {
	if fp.sites == nil {
		fp.sites = map[siteKey]FaultKind{}
	}
	fp.sites[siteKey{site.Rank, site.Phase, site.Op, site.Index}] = site.Kind
	return fp
}

// Sites returns the number of registered injection sites.
func (fp *FaultPlan) Sites() int { return len(fp.sites) }

// lookup returns the fault registered at a site, or FaultNone.
func (fp *FaultPlan) lookup(rank int, phase Phase, op FaultOp, index int64) FaultKind {
	if len(fp.sites) == 0 {
		return FaultNone
	}
	return fp.sites[siteKey{rank, phase, op, index}]
}

// record notes that a site actually fired (sites addressing calls that
// never happen are silent no-ops).
func (fp *FaultPlan) record(site FaultSite) {
	fp.mu.Lock()
	fp.injected = append(fp.injected, site)
	fp.mu.Unlock()
}

// Injected returns the sites that actually fired, in firing order per rank
// (the interleaving across ranks is scheduler-dependent).
func (fp *FaultPlan) Injected() []FaultSite {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	out := make([]FaultSite, len(fp.injected))
	copy(out, fp.injected)
	return out
}

// bitFor returns the deterministic bit position to flip for a site with a
// payload of n bytes.
func (fp *FaultPlan) bitFor(site FaultSite, nbytes int) int {
	if nbytes == 0 {
		return 0
	}
	h := int64(1469598103934665603)
	for _, v := range []int64{fp.Seed, int64(site.Rank), int64(site.Phase), int64(site.Op), site.Index} {
		h = (h ^ v) * 1099511628211
	}
	rng := rand.New(rand.NewSource(h))
	return rng.Intn(nbytes * 8)
}

// delay returns the effective FaultDelay duration.
func (fp *FaultPlan) delay() time.Duration {
	if fp.Delay > 0 {
		return fp.Delay
	}
	return 2 * time.Millisecond
}

// ParseFaultSpec builds a FaultPlan from the CLI spec syntax
//
//	seed=S;delay-ms=D;site=RANK:PHASE:OP:INDEX:KIND[;site=...]
//
// with PHASE one of other|fft-comm|fft-exec|interp-comm|interp-exec, OP
// one of send|coll, and KIND one of delay|drop|dup|bitflip|truncate|stall.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	fp := NewFaultPlan(1)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mpi: fault spec %q: want key=value", part)
		}
		switch k {
		case "seed":
			s, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mpi: fault spec seed %q: %v", v, err)
			}
			fp.Seed = s
		case "delay-ms":
			d, err := strconv.Atoi(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("mpi: fault spec delay-ms %q", v)
			}
			fp.Delay = time.Duration(d) * time.Millisecond
		case "site":
			site, err := parseSite(v)
			if err != nil {
				return nil, err
			}
			fp.Add(site)
		default:
			return nil, fmt.Errorf("mpi: fault spec: unknown key %q", k)
		}
	}
	return fp, nil
}

// parseSite parses RANK:PHASE:OP:INDEX:KIND.
func parseSite(s string) (FaultSite, error) {
	f := strings.Split(s, ":")
	if len(f) != 5 {
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: want rank:phase:op:index:kind", s)
	}
	var site FaultSite
	rank, err := strconv.Atoi(f[0])
	if err != nil || rank < 0 {
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: bad rank %q", s, f[0])
	}
	site.Rank = rank
	switch f[1] {
	case "other":
		site.Phase = PhaseOther
	case "fft-comm":
		site.Phase = PhaseFFTComm
	case "fft-exec":
		site.Phase = PhaseFFTExec
	case "interp-comm":
		site.Phase = PhaseInterpComm
	case "interp-exec":
		site.Phase = PhaseInterpExec
	default:
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: bad phase %q", s, f[1])
	}
	switch f[2] {
	case "send":
		site.Op = OpSend
	case "coll":
		site.Op = OpCollective
	default:
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: bad op %q", s, f[2])
	}
	idx, err := strconv.ParseInt(f[3], 10, 64)
	if err != nil || idx < 0 {
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: bad index %q", s, f[3])
	}
	site.Index = idx
	switch f[4] {
	case "delay":
		site.Kind = FaultDelay
	case "drop":
		site.Kind = FaultDrop
	case "dup":
		site.Kind = FaultDuplicate
	case "bitflip":
		site.Kind = FaultBitFlip
	case "truncate":
		site.Kind = FaultTruncate
	case "stall":
		site.Kind = FaultStall
	default:
		return FaultSite{}, fmt.Errorf("mpi: fault site %q: bad kind %q", s, f[4])
	}
	return site, nil
}

// CommError is the typed failure a rank raises when it detects corrupted,
// missing, or invalid communication. It aborts the whole world; Run
// returns it wrapped, so callers match with errors.As.
type CommError struct {
	Rank   int    // world rank that detected the failure
	Phase  Phase  // phase the failing operation was charged to
	Op     string // operation description, e.g. "recv", "alltoallv"
	Detail string // what was detected
}

// Error implements error.
func (e *CommError) Error() string {
	return fmt.Sprintf("mpi: comm error at rank %d phase %s op %s: %s", e.Rank, e.Phase, e.Op, e.Detail)
}

// rankFailure is the typed panic used to unwind a rank after a detected
// failure; Run recovers it into the wrapped error.
type rankFailure struct{ err error }

// Raise unwinds the calling rank with a typed error. Run recovers the
// panic, aborts the world (so peer ranks blocked in receives wake up and
// unwind too), and returns the error wrapped and matchable by errors.As.
// Use it from deep inside collective call trees where threading an error
// return through every layer is not practical.
func Raise(err error) {
	panic(rankFailure{err})
}

// fnv1a is the checksum used for payload envelopes.
func fnv1a(h uint64, b []byte) uint64 {
	for _, v := range b {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h
}

const fnvOffset = 14695981039346656037

// payloadChecksum hashes the payload bytes of the slice types the runtime
// ships; opaque payloads hash to 0 and are not validated.
func payloadChecksum(data any) uint64 {
	h := uint64(fnvOffset)
	var buf [8]byte
	put := func(x uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(x >> (8 * i))
		}
		h = fnv1a(h, buf[:])
	}
	switch d := data.(type) {
	case []float64:
		for _, v := range d {
			put(f64bits(v))
		}
	case []float32:
		for _, v := range d {
			put(uint64(math.Float32bits(v)))
		}
	case []complex128:
		for _, v := range d {
			put(f64bits(real(v)))
			put(f64bits(imag(v)))
		}
	case []int:
		for _, v := range d {
			put(uint64(v))
		}
	case []byte:
		h = fnv1a(h, d)
	default:
		return 0
	}
	return h
}

// payloadLen returns the element count of a slice payload, or -1 for
// payloads whose length is not validated.
func payloadLen(data any) int {
	switch d := data.(type) {
	case []float64:
		return len(d)
	case []float32:
		return len(d)
	case []complex128:
		return len(d)
	case []int:
		return len(d)
	case []byte:
		return len(d)
	case nil:
		return 0
	default:
		return -1
	}
}

// corruptBit flips one bit of the (already cloned) payload in place and
// reports whether the payload type supports it.
func corruptBit(data any, bit int) bool {
	switch d := data.(type) {
	case []float64:
		if len(d) == 0 {
			return false
		}
		i := (bit / 64) % len(d)
		d[i] = f64frombits(f64bits(d[i]) ^ (1 << (bit % 64)))
	case []float32:
		if len(d) == 0 {
			return false
		}
		i := (bit / 32) % len(d)
		d[i] = math.Float32frombits(math.Float32bits(d[i]) ^ (1 << (bit % 32)))
	case []complex128:
		if len(d) == 0 {
			return false
		}
		i := (bit / 128) % len(d)
		re, im := f64bits(real(d[i])), f64bits(imag(d[i]))
		if bit%128 < 64 {
			re ^= 1 << (bit % 64)
		} else {
			im ^= 1 << (bit % 64)
		}
		d[i] = complex(f64frombits(re), f64frombits(im))
	case []int:
		if len(d) == 0 {
			return false
		}
		i := (bit / 64) % len(d)
		d[i] ^= 1 << (bit % 64)
	case []byte:
		if len(d) == 0 {
			return false
		}
		i := (bit / 8) % len(d)
		d[i] ^= 1 << (bit % 8)
	default:
		return false
	}
	return true
}

// truncatePayload cuts a cloned slice payload roughly in half (dropping at
// least one element) and reports whether the type supports it.
func truncatePayload(data any) (any, bool) {
	cut := func(n int) int {
		if n == 0 {
			return 0
		}
		return n / 2
	}
	switch d := data.(type) {
	case []float64:
		if len(d) == 0 {
			return data, false
		}
		return d[:cut(len(d))], true
	case []float32:
		if len(d) == 0 {
			return data, false
		}
		// float32 payloads carry the narrow transpose wire format, where
		// one complex value spans two consecutive floats. Cut to an odd
		// count whenever possible so the truncation severs a wire element
		// mid-pair: the receiver must reject the ragged tail, never decode
		// a garbage trailing element.
		n := cut(len(d))
		if n%2 == 0 && n+1 < len(d) {
			n++
		}
		return d[:n], true
	case []complex128:
		if len(d) == 0 {
			return data, false
		}
		return d[:cut(len(d))], true
	case []int:
		if len(d) == 0 {
			return data, false
		}
		return d[:cut(len(d))], true
	case []byte:
		if len(d) == 0 {
			return data, false
		}
		return d[:cut(len(d))], true
	default:
		return data, false
	}
}
