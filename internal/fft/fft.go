// Package fft provides serial 1D and 3D fast Fourier transforms built from
// scratch on the standard library: an iterative radix-2 Cooley-Tukey kernel
// for power-of-two lengths and Bluestein's chirp-z algorithm for arbitrary
// lengths (the brain grid of the paper is 256 x 300 x 256, so non-powers of
// two must be first-class). The distributed 3D transform in package pfft is
// composed from these 1D kernels, mirroring how AccFFT builds on FFTW.
package fft

import (
	"math"
	"math/cmplx"
	"sync"
)

// Plan caches the twiddle factors and scratch layout for one transform
// length. Plans are safe for concurrent use once built.
type Plan struct {
	n       int
	pow2    bool
	rev     []int        // bit-reversal permutation (radix-2 only)
	tw      []complex128 // stage twiddles, forward direction
	chirp   []complex128 // Bluestein chirp  w^(k^2/2)
	bfft    *Plan        // Bluestein inner power-of-two plan
	bkernel []complex128 // FFT of the Bluestein convolution kernel
	scratch *sync.Pool   // per-call work buffers
}

var (
	planMu    sync.Mutex
	planCache = map[int]*Plan{}
)

// NewPlan returns a (cached) plan for transforms of length n >= 1.
func NewPlan(n int) *Plan {
	planMu.Lock()
	if p, ok := planCache[n]; ok {
		planMu.Unlock()
		return p
	}
	planMu.Unlock()
	p := buildPlan(n)
	planMu.Lock()
	planCache[n] = p
	planMu.Unlock()
	return p
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func buildPlan(n int) *Plan {
	p := &Plan{n: n, pow2: isPow2(n)}
	if p.pow2 {
		p.rev = make([]int, n)
		bits := 0
		for 1<<bits < n {
			bits++
		}
		for i := 0; i < n; i++ {
			r := 0
			for b := 0; b < bits; b++ {
				if i&(1<<b) != 0 {
					r |= 1 << (bits - 1 - b)
				}
			}
			p.rev[i] = r
		}
		// Twiddles for all stages packed contiguously: stage with half-size
		// m uses m factors exp(-i*pi*j/m).
		for m := 1; m < n; m *= 2 {
			for j := 0; j < m; j++ {
				ang := -math.Pi * float64(j) / float64(m)
				p.tw = append(p.tw, cmplx.Exp(complex(0, ang)))
			}
		}
	} else {
		// Bluestein: x_k * w^(k^2/2) convolved with w^(-k^2/2).
		m := 1
		for m < 2*n-1 {
			m *= 2
		}
		p.chirp = make([]complex128, n)
		for k := 0; k < n; k++ {
			// Use k^2 mod 2n to keep the angle argument small.
			kk := (int64(k) * int64(k)) % int64(2*n)
			ang := -math.Pi * float64(kk) / float64(n)
			p.chirp[k] = cmplx.Exp(complex(0, ang))
		}
		p.bfft = NewPlan(m)
		kernel := make([]complex128, m)
		kernel[0] = cmplx.Conj(p.chirp[0])
		for k := 1; k < n; k++ {
			c := cmplx.Conj(p.chirp[k])
			kernel[k] = c
			kernel[m-k] = c
		}
		p.bkernel = make([]complex128, m)
		p.bfft.forwardPow2(kernel, p.bkernel)
	}
	p.scratch = &sync.Pool{New: func() any {
		if p.pow2 {
			buf := make([]complex128, n)
			return &buf
		}
		buf := make([]complex128, 2*len(p.bkernel))
		return &buf
	}}
	return p
}

// Len returns the transform length of the plan.
func (p *Plan) Len() int { return p.n }

// WorkLen returns the scratch length (complex values) the *Work transform
// variants require: n for the radix-2 inverse conjugate trick, 2m for the
// Bluestein convolution buffers.
func (p *Plan) WorkLen() int {
	if p.pow2 {
		return p.n
	}
	return 2 * len(p.bkernel)
}

// forwardPow2 computes the unnormalized forward DFT of src into dst
// (radix-2 path, len(src) == len(dst) == p.n, which must be a power of 2).
func (p *Plan) forwardPow2(src, dst []complex128) {
	n := p.n
	for i := 0; i < n; i++ {
		dst[p.rev[i]] = src[i]
	}
	twOff := 0
	for m := 1; m < n; m *= 2 {
		tw := p.tw[twOff : twOff+m]
		for s := 0; s < n; s += 2 * m {
			for j := 0; j < m; j++ {
				a := dst[s+j]
				b := dst[s+j+m] * tw[j]
				dst[s+j] = a + b
				dst[s+j+m] = a - b
			}
		}
		twOff += m
	}
}

// Forward computes the unnormalized forward DFT
// X_k = sum_j x_j exp(-2*pi*i*j*k/n), writing into dst (may alias src only
// for the radix-2 path when src == dst is not used; callers pass distinct
// slices).
func (p *Plan) Forward(src, dst []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic("fft: length mismatch")
	}
	if p.pow2 {
		p.forwardPow2(src, dst)
		return
	}
	p.bluestein(src, dst, false)
}

// ForwardWork is Forward with caller-provided scratch (len >= WorkLen());
// it performs no heap allocations, which is what the pencil FFT's
// plan-owned workspaces rely on. The scratch contents need not be zeroed.
func (p *Plan) ForwardWork(src, dst, work []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic("fft: length mismatch")
	}
	if p.pow2 {
		p.forwardPow2(src, dst)
		return
	}
	p.bluesteinWork(src, dst, false, work)
}

// InverseWork is Inverse with caller-provided scratch (len >= WorkLen());
// it performs no heap allocations.
func (p *Plan) InverseWork(src, dst, work []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic("fft: length mismatch")
	}
	n := p.n
	if p.pow2 {
		buf := work[:n]
		for i, v := range src {
			buf[i] = cmplx.Conj(v)
		}
		p.forwardPow2(buf, dst)
		inv := 1 / float64(n)
		for i, v := range dst {
			dst[i] = complex(real(v)*inv, -imag(v)*inv)
		}
		return
	}
	p.bluesteinWork(src, dst, true, work)
}

// Inverse computes the normalized inverse DFT
// x_j = (1/n) sum_k X_k exp(+2*pi*i*j*k/n).
func (p *Plan) Inverse(src, dst []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic("fft: length mismatch")
	}
	n := p.n
	if p.pow2 {
		// Conjugate trick: IDFT(x) = conj(DFT(conj(x)))/n.
		bufp := p.scratch.Get().(*[]complex128)
		buf := *bufp
		for i, v := range src {
			buf[i] = cmplx.Conj(v)
		}
		p.forwardPow2(buf, dst)
		inv := 1 / float64(n)
		for i, v := range dst {
			dst[i] = complex(real(v)*inv, -imag(v)*inv)
		}
		p.scratch.Put(bufp)
		return
	}
	p.bluestein(src, dst, true)
}

// bluestein evaluates the chirp-z transform for arbitrary n with pooled
// scratch.
func (p *Plan) bluestein(src, dst []complex128, inverse bool) {
	bufp := p.scratch.Get().(*[]complex128)
	p.bluesteinWork(src, dst, inverse, *bufp)
	p.scratch.Put(bufp)
}

// bluesteinWork evaluates the chirp-z transform using the caller's scratch
// buffer of length >= 2m.
func (p *Plan) bluesteinWork(src, dst []complex128, inverse bool, buf []complex128) {
	n, m := p.n, p.bfft.n
	a := buf[:m]
	b := buf[m : 2*m]
	for i := range a {
		a[i] = 0
	}
	if inverse {
		for k := 0; k < n; k++ {
			a[k] = cmplx.Conj(src[k] * cmplx.Conj(p.chirp[k]))
		}
	} else {
		for k := 0; k < n; k++ {
			a[k] = src[k] * p.chirp[k]
		}
	}
	p.bfft.forwardPow2(a, b)
	for i := range b {
		b[i] *= p.bkernel[i]
	}
	// Inverse FFT of b via conjugate trick, reusing a as scratch.
	for i, v := range b {
		a[i] = cmplx.Conj(v)
	}
	p.bfft.forwardPow2(a, b)
	invM := 1 / float64(m)
	if inverse {
		invN := 1 / float64(n)
		for k := 0; k < n; k++ {
			v := complex(real(b[k])*invM, -imag(b[k])*invM)
			// Undo outer conjugation and apply chirp + 1/n scaling.
			dst[k] = cmplx.Conj(v*p.chirp[k]) * complex(invN, 0)
		}
	} else {
		for k := 0; k < n; k++ {
			v := complex(real(b[k])*invM, -imag(b[k])*invM)
			dst[k] = v * p.chirp[k]
		}
	}
}
