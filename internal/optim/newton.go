package optim

import "math"

// Forcing selects the Eisenstat-Walker forcing sequence that sets the
// Krylov tolerance of each inexact Newton step.
type Forcing int

const (
	// ForcingQuadratic is the paper's choice (§II-C): eta_k =
	// min(cap, sqrt(||g_k||/||g_0||)), which yields superlinear local
	// convergence while keeping early Krylov solves loose. It is the zero
	// value and the default.
	ForcingQuadratic Forcing = iota
	// ForcingLinear tightens the tolerance proportionally to the gradient
	// decay, eta_k = min(cap, ||g_k||/||g_0||). It over-solves early
	// systems (more Hessian matvecs for the same outer trajectory) and is
	// kept for the convergence-history regression tests.
	ForcingLinear
)

// NewtonOptions controls the inexact (Gauss-)Newton-Krylov driver. The
// defaults mirror the paper's setup: relative gradient tolerance 1e-2,
// at most 50 outer iterations, quadratic forcing capped at 0.5.
type NewtonOptions struct {
	GradTol       float64 // stop when ||g|| <= GradTol * ||g0||
	AbsGradTol    float64 // additional absolute gradient floor
	MaxIters      int     // maximum Newton iterations
	MaxKrylov     int     // maximum PCG iterations per Newton step
	ForcingCap    float64 // upper bound for the forcing term
	Forcing       Forcing // forcing sequence (default quadratic)
	MaxLineSearch int     // maximum Armijo halvings
	ArmijoC1      float64 // sufficient decrease constant
	Log           func(format string, args ...any)
}

// forcingEta evaluates the selected Eisenstat-Walker sequence.
func (o *NewtonOptions) forcingEta(gnorm, gnorm0 float64) float64 {
	r := gnorm / gnorm0
	if o.Forcing == ForcingQuadratic {
		r = math.Sqrt(r)
	}
	return math.Min(o.ForcingCap, r)
}

// DefaultNewtonOptions returns the paper's solver parameters (§IV-A3).
func DefaultNewtonOptions() NewtonOptions {
	return NewtonOptions{
		GradTol:       1e-2,
		AbsGradTol:    1e-12,
		MaxIters:      50,
		MaxKrylov:     200,
		ForcingCap:    0.5,
		MaxLineSearch: 20,
		ArmijoC1:      1e-4,
	}
}

// IterRecord captures one outer iteration for reporting.
type IterRecord struct {
	Iter      int
	J         float64
	Misfit    float64
	Gnorm     float64
	Forcing   float64
	CGIters   int
	Step      float64
	LineTrial int
}

// Result summarizes a Newton (or steepest descent) solve.
type Result[T Vec[T]] struct {
	V          T
	Iters      int
	JInit      float64
	JFinal     float64
	MisfitInit float64
	MisfitLast float64
	GnormInit  float64
	GnormLast  float64
	Converged  bool
	History    []IterRecord
}

func (o *NewtonOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// GaussNewton minimizes the registration objective with the paper's
// line-search globalized, preconditioned, inexact Newton-Krylov scheme.
// Whether the Hessian is the Gauss-Newton or the full Newton one is
// selected by the problem options. v0 is the initial guess (it is
// projected onto the divergence-free space for incompressible problems).
func GaussNewton[T Vec[T]](p Objective[T], v0 T, opt NewtonOptions) *Result[T] {
	v := p.Project(v0.Clone())
	res := &Result[T]{}
	for iter := 0; ; iter++ {
		e := p.EvalGradient(v)
		if iter == 0 {
			res.JInit = e.J
			res.MisfitInit = e.Misfit
			res.GnormInit = e.Gnorm
		}
		res.JFinal = e.J
		res.MisfitLast = e.Misfit
		res.GnormLast = e.Gnorm
		res.Iters = iter
		res.V = v
		if e.Gnorm <= opt.GradTol*res.GnormInit || e.Gnorm <= opt.AbsGradTol {
			res.Converged = true
			break
		}
		if iter >= opt.MaxIters {
			break
		}

		// Eisenstat-Walker forcing (inexact Newton): the Krylov tolerance
		// tightens as the gradient decays.
		eta := opt.forcingEta(e.Gnorm, res.GnormInit)

		rhs := e.G.Clone()
		rhs.Scale(-1)
		dir, cg := PCG(p.HessMatVec, p.ApplyPrec, rhs, eta, opt.MaxKrylov)
		slope := e.G.Dot(dir)
		if slope >= 0 || (cg.Iters == 0 && cg.Indefinite) {
			// Not a descent direction (can happen with a truncated solve);
			// fall back to the preconditioned gradient.
			dir = p.ApplyPrec(rhs)
			slope = e.G.Dot(dir)
		}
		if slope >= 0 {
			// The preconditioned gradient is itself not a descent direction
			// (an indefinite two-level or shifted preconditioner state): use
			// plain steepest descent, whose slope -||g||^2 is negative for
			// any nonzero gradient.
			dir = rhs.Clone()
			slope = e.G.Dot(dir)
		}
		if slope >= 0 {
			// Only possible when g = 0, which the convergence test already
			// intercepts; bail out rather than backtrack on a flat model.
			break
		}

		alpha, trials, cand := armijo(p, v, dir, e.J, slope, opt)
		rec := IterRecord{
			Iter: iter, J: e.J, Misfit: e.Misfit, Gnorm: e.Gnorm,
			Forcing: eta, CGIters: cg.Iters, Step: alpha, LineTrial: trials,
		}
		res.History = append(res.History, rec)
		opt.logf("newton %2d: J=%.6e misfit=%.6e ||g||=%.3e eta=%.2e cg=%d alpha=%.3g",
			iter, e.J, e.Misfit, e.Gnorm, eta, cg.Iters, alpha)
		if alpha == 0 {
			// Line search failed: no further progress possible.
			break
		}
		// Adopt the accepted candidate object itself (not a recomputed
		// copy): the objective may have cached the candidate's transport
		// solve, and the next EvalGradient recognizes it by identity.
		v = cand
	}
	return res
}

// armijo backtracks from a full step until the sufficient decrease
// condition J(v + a d) <= J(v) + c1 a <g, d> holds. Every trial is
// projected onto the feasible space before evaluation, so accepted
// iterates cannot drift off the divergence-free subspace through
// accumulated axpy rounding (for unconstrained problems Project is the
// identity). Returns the accepted step (0 on failure), the number of
// trials, and the accepted candidate (the zero value on failure).
func armijo[T Vec[T]](p Objective[T], v, dir T, j0, slope float64, opt NewtonOptions) (float64, int, T) {
	alpha := 1.0
	for trial := 1; trial <= opt.MaxLineSearch; trial++ {
		cand := v.Clone()
		cand.Axpy(alpha, dir)
		cand = p.Project(cand)
		if p.Evaluate(cand).J <= j0+opt.ArmijoC1*alpha*slope {
			return alpha, trial, cand
		}
		alpha /= 2
	}
	var none T
	return 0, opt.MaxLineSearch, none
}

// SteepestDescent is the first-order baseline the paper contrasts against
// ("steepest descent methods only have a linear convergence rate"): the
// search direction is the preconditioned negative gradient.
func SteepestDescent[T Vec[T]](p Objective[T], v0 T, opt NewtonOptions) *Result[T] {
	v := p.Project(v0.Clone())
	res := &Result[T]{}
	for iter := 0; ; iter++ {
		e := p.EvalGradient(v)
		if iter == 0 {
			res.JInit, res.MisfitInit, res.GnormInit = e.J, e.Misfit, e.Gnorm
		}
		res.JFinal, res.MisfitLast, res.GnormLast = e.J, e.Misfit, e.Gnorm
		res.Iters = iter
		res.V = v
		if e.Gnorm <= opt.GradTol*res.GnormInit || e.Gnorm <= opt.AbsGradTol {
			res.Converged = true
			break
		}
		if iter >= opt.MaxIters {
			break
		}
		dir := p.ApplyPrec(e.G)
		dir.Scale(-1)
		slope := e.G.Dot(dir)
		if slope >= 0 {
			// Indefinite preconditioner state: fall back to -g.
			dir = e.G.Clone()
			dir.Scale(-1)
			slope = e.G.Dot(dir)
			if slope >= 0 {
				break
			}
		}
		alpha, trials, cand := armijo(p, v, dir, e.J, slope, opt)
		res.History = append(res.History, IterRecord{
			Iter: iter, J: e.J, Misfit: e.Misfit, Gnorm: e.Gnorm, Step: alpha, LineTrial: trials,
		})
		opt.logf("sd %3d: J=%.6e ||g||=%.3e alpha=%.3g", iter, e.J, e.Gnorm, alpha)
		if alpha == 0 {
			break
		}
		v = cand
	}
	return res
}

// Continuation runs the Newton solver over a decreasing schedule of
// regularization weights, warm-starting each level from the previous
// solution — the paper's "parameter continuation on beta" for the highly
// nonlinear regime. setBeta mutates the problem's weight; betas must be
// decreasing and the problem is left at the last value.
func Continuation[T Vec[T]](p Objective[T], setBeta func(float64), v0 T, betas []float64, opt NewtonOptions) *Result[T] {
	v := v0
	var last *Result[T]
	for _, b := range betas {
		setBeta(b)
		opt.logf("continuation: beta=%.3e", b)
		last = GaussNewton(p, v, opt)
		v = last.V
	}
	return last
}
