package serve

// Write-ahead job journal: an append-only, CRC-framed NDJSON log of the
// server's job lifecycle, giving regserve crash durability. Three record
// types are journaled:
//
//	accepted  the validated JobSpec, its server-assigned ID, and the
//	          client's idempotency key — written before Submit returns 202
//	attempt   an execution attempt is starting (solo or fused)
//	terminal  the job reached done | failed | canceled
//
// On restart the server replays the journal: jobs with a terminal record
// are recreated as terminal stubs (their results were not journaled, only
// their outcome), jobs without one are re-queued and re-run. Idempotency
// keys are rebuilt from the accepted records, so a client that re-POSTs a
// job it submitted before the crash gets the original ID back instead of a
// duplicate run.
//
// Framing: each record is one line,
//
//	<crc64-ecma hex, 16 chars> <space> <JSON> <newline>
//
// with the CRC taken over the JSON bytes. A crash can tear at most the
// final line (appends are sequential writes to one fd); replay stops at
// the first line that fails the frame check, and the opener truncates the
// torn bytes before appending — a torn line is by construction a record
// whose fsync never completed, so it was never acknowledged and dropping
// it loses nothing. Records are fsynced before Submit acknowledges — the
// 202 is a durability promise.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// journalFile is the journal's file name inside the journal directory.
const journalFile = "journal.ndjson"

var journalCRC = crc64.MakeTable(crc64.ECMA)

// journalRecord is the JSON payload of one journal line.
type journalRecord struct {
	Type    string   `json:"type"` // accepted | attempt | terminal
	ID      string   `json:"id"`
	Idem    string   `json:"idem,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	State   JobState `json:"state,omitempty"`
	ErrKind string   `json:"error_kind,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// ReplayedJob is one job reconstructed from the journal, in acceptance
// order.
type ReplayedJob struct {
	ID       string
	Spec     JobSpec
	Idem     string
	Attempts int // attempts started before the crash
	Terminal bool
	State    JobState // valid when Terminal
	ErrKind  string
	Error    string
}

// Journal is the open write-ahead log. Append errors are sticky: the
// first failure disables further writes (and is surfaced in JournalStats)
// rather than blocking the serving path on a dead disk.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	err     error
	records atomic.Int64 // appended this process
}

// JournalStats is the journal section of GET /stats.
type JournalStats struct {
	Enabled bool   `json:"enabled"`
	Path    string `json:"path,omitempty"`
	// Records counts journal records appended by this process.
	Records int64 `json:"records"`
	// Replayed counts records recovered from the journal at startup and
	// Recovered the non-terminal jobs that were re-queued from them.
	Replayed  int `json:"replayed"`
	Recovered int `json:"recovered"`
	// WriteError reports a sticky append failure (journaling is disabled
	// from the first failed write onward).
	WriteError string `json:"write_error,omitempty"`
}

// OpenJournal opens (creating if needed) the journal under dir and replays
// every intact record. It returns the journal positioned for appending,
// the replayed jobs in acceptance order, and the number of intact records
// read.
func OpenJournal(dir string) (*Journal, []*ReplayedJob, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	jobs, replayed, tornOff, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if tornOff >= 0 {
		// Drop the torn (never-acknowledged) tail so the next append starts
		// on a clean frame boundary and future replays read past it.
		if err := f.Truncate(tornOff); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
		}
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
	}
	if tornOff < 0 && size > 0 {
		// A crash can also tear off just the trailing newline of the final
		// record; re-anchor so the next append never glues onto it.
		var last [1]byte
		if _, err := f.ReadAt(last[:], size-1); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
		}
		if last[0] != '\n' {
			if _, err := f.WriteString("\n"); err != nil {
				f.Close()
				return nil, nil, 0, fmt.Errorf("serve: journal: %w", err)
			}
		}
	}
	return &Journal{f: f, path: path}, jobs, replayed, nil
}

// replay scans the journal and folds records into per-job replay state.
// It returns the jobs in acceptance order, the intact-record count, and
// the byte offset of a torn (unframed) tail (-1 when the file is clean).
func replay(f *os.File) (jobs []*ReplayedJob, records int, tornOff int64, err error) {
	if _, err := f.Seek(0, 0); err != nil {
		return nil, 0, -1, fmt.Errorf("serve: journal: %w", err)
	}
	byID := map[string]*ReplayedJob{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<30)
	var offset int64
	for sc.Scan() {
		line := sc.Bytes()
		rec, ok := decodeJournalLine(line)
		if !ok {
			// A frame failure can only be the torn final line of a crashed
			// writer; everything after it is untrusted, so replay stops and
			// the opener truncates from here.
			return jobs, records, offset, nil
		}
		offset += int64(len(line)) + 1
		records++
		switch rec.Type {
		case "accepted":
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			j := &ReplayedJob{ID: rec.ID, Spec: *rec.Spec, Idem: rec.Idem}
			byID[rec.ID] = j
			jobs = append(jobs, j)
		case "attempt":
			if j := byID[rec.ID]; j != nil && rec.Attempt > j.Attempts {
				j.Attempts = rec.Attempt
			}
		case "terminal":
			if j := byID[rec.ID]; j != nil {
				j.Terminal = true
				j.State = rec.State
				j.ErrKind = rec.ErrKind
				j.Error = rec.Error
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, -1, fmt.Errorf("serve: journal replay: %w", err)
	}
	return jobs, records, -1, nil
}

// decodeJournalLine validates one "crc json" frame.
func decodeJournalLine(line []byte) (journalRecord, bool) {
	var rec journalRecord
	sp := bytes.IndexByte(line, ' ')
	if sp != 16 {
		return rec, false
	}
	var want uint64
	if _, err := fmt.Sscanf(string(line[:16]), "%016x", &want); err != nil {
		return rec, false
	}
	payload := line[17:]
	if crc64.Checksum(payload, journalCRC) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// append frames, writes, and fsyncs one record. The first failure is
// sticky and returned to the caller (Submit surfaces it; attempt/terminal
// writers log and carry on — losing the journal must not kill live jobs).
func (j *Journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	line := fmt.Sprintf("%016x %s\n", crc64.Checksum(payload, journalCRC), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.f.WriteString(line); err != nil {
		j.err = fmt.Errorf("serve: journal append: %w", err)
		return j.err
	}
	if err := j.f.Sync(); err != nil {
		j.err = fmt.Errorf("serve: journal sync: %w", err)
		return j.err
	}
	j.records.Add(1)
	return nil
}

// Accepted journals a validated submission (before the 202 is returned).
func (j *Journal) Accepted(id, idem string, spec *JobSpec) error {
	return j.append(journalRecord{Type: "accepted", ID: id, Idem: idem, Spec: spec})
}

// Attempt journals the start of execution attempt n for a job.
func (j *Journal) Attempt(id string, n int) error {
	return j.append(journalRecord{Type: "attempt", ID: id, Attempt: n})
}

// Terminal journals a job's final state.
func (j *Journal) Terminal(id string, state JobState, errKind, errMsg string) error {
	return j.append(journalRecord{Type: "terminal", ID: id, State: state, ErrKind: errKind, Error: errMsg})
}

// Close releases the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// stats snapshots the writer-side counters (replay counts live on the
// server, which folds them in).
func (j *Journal) stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	st := JournalStats{Enabled: true, Path: j.path, Records: j.records.Load()}
	j.mu.Lock()
	if j.err != nil {
		st.WriteError = j.err.Error()
	}
	j.mu.Unlock()
	return st
}
