// Atlas construction: build an unbiased mean anatomy from a population of
// subjects by alternating registration and averaging — the application of
// the multi-GPU atlas work the paper cites ([28] Ha et al.) and a natural
// consumer of a fast registration solver: each iteration runs one
// registration per subject.
//
// Algorithm (a basic unbiased template estimation):
//
//	atlas <- voxelwise mean of the subjects
//	repeat: register every subject to the atlas,
//	        atlas <- mean of the warped subjects
//
// As the atlas sharpens, the population variance around it drops.
package main

import (
	"fmt"
	"log"
	"math"

	"diffreg"
)

func main() {
	const nSubjects = 4
	const n = 20

	subjects := make([]diffreg.Volume, nSubjects)
	for s := range subjects {
		a, _, err := diffreg.BrainPhantomPair(n, n, n, int64(10+s), 99)
		if err != nil {
			log.Fatal(err)
		}
		subjects[s] = a
	}

	atlas := mean(subjects)
	fmt.Printf("iteration 0 (plain average): population stddev %.5f\n", stddev(subjects, atlas))

	warped := make([]diffreg.Volume, nSubjects)
	copy(warped, subjects)
	for iter := 1; iter <= 2; iter++ {
		for s := range subjects {
			res, err := diffreg.Register(subjects[s], atlas, diffreg.Config{
				Tasks: 2,
				Beta:  1e-3,
			})
			if err != nil {
				log.Fatal(err)
			}
			if res.DetMin <= 0 {
				log.Fatalf("subject %d: map not diffeomorphic", s)
			}
			warped[s] = res.Warped
		}
		atlas = mean(warped)
		fmt.Printf("iteration %d: population stddev %.5f (after registering %d subjects)\n",
			iter, stddev(warped, atlas), nSubjects)
	}
	fmt.Println()
	fmt.Println("the variance around the atlas shrinks as the subjects are")
	fmt.Println("diffeomorphically aligned: anatomy-level differences remain,")
	fmt.Println("pose and shape differences are removed by the registrations")
}

func mean(vols []diffreg.Volume) diffreg.Volume {
	out := diffreg.NewVolume(vols[0].N[0], vols[0].N[1], vols[0].N[2])
	for _, v := range vols {
		for i, x := range v.Data {
			out.Data[i] += x
		}
	}
	for i := range out.Data {
		out.Data[i] /= float64(len(vols))
	}
	return out
}

func stddev(vols []diffreg.Volume, ref diffreg.Volume) float64 {
	var sum float64
	for _, v := range vols {
		for i, x := range v.Data {
			d := x - ref.Data[i]
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(len(vols)*len(ref.Data)))
}
