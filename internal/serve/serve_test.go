package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJob(t *testing.T, url string, spec JobSpec) (*http.Response, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatalf("decode response (%d): %v", resp.StatusCode, err)
	}
	return resp, acc.ID
}

func waitJob(t *testing.T, srv *Server, id string) JobStatus {
	t.Helper()
	job, ok := srv.Job(id)
	if !ok {
		t.Fatalf("job %s not tracked", id)
	}
	select {
	case <-job.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s hung", id)
	}
	return job.Status()
}

func quickSpec() JobSpec {
	return JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: 1,
		TimeSteps: 2, MaxNewtonIters: 1}
}

// TestAdmissionControl drives the three admission outcomes the API
// contract promises — accept (202), queue full (429), reject after close
// (503) — with the worker deterministically pinned busy via the beforeRun
// hook, so queue occupancy is exact rather than scheduling-dependent.
func TestAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv := New(Config{Workers: 1, QueueDepth: 1, beforeRun: func(*Job) {
		started <- struct{}{}
		<-release
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First job occupies the only worker.
	resp, runningID := postJob(t, ts.URL, quickSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first job")
	}
	// Second fills the single queue slot.
	if resp, _ := postJob(t, ts.URL, quickSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit should queue: %d", resp.StatusCode)
	}
	// Third must be rejected by admission control.
	if resp, _ := postJob(t, ts.URL, quickSpec()); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit should be rejected with 429, got %d", resp.StatusCode)
	}
	if st := srv.Stats(); st.Rejected != 1 || st.Queued != 1 {
		t.Fatalf("stats after rejection: %+v", st)
	}

	close(release)
	if st := waitJob(t, srv, runningID); st.State != JobDone {
		t.Fatalf("pinned job should finish once released: %s (%s)", st.State, st.Error)
	}
	srv.Close()

	// After Close: admission returns ErrClosed (503 over HTTP is exercised
	// via the in-process path because the test HTTP server is torn down
	// independently).
	if _, err := srv.Submit(quickSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
}

// TestAdmissionOutcomes is the table-driven half: per-spec validation
// failures map to 400 with a reason, good specs to 202.
func TestAdmissionOutcomes(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ok := quickSpec()
	inline := JobSpec{N: [3]int{4, 4, 4}, Tasks: 1, MaxNewtonIters: 1, TimeSteps: 2}
	inline.Template = make([]float64, 64)
	inline.Reference = make([]float64, 64)
	for i := range inline.Template {
		inline.Template[i] = float64(i%7) / 7
		inline.Reference[i] = float64((i+3)%7) / 7
	}

	cases := []struct {
		name   string
		spec   JobSpec
		status int
		reason string
	}{
		{"ok_synthetic", ok, http.StatusAccepted, ""},
		{"ok_inline", inline, http.StatusAccepted, ""},
		{"tiny_grid", JobSpec{Generator: "synthetic", N: [3]int{2, 16, 16}}, http.StatusBadRequest, "minimum grid size"},
		{"unknown_generator", JobSpec{Generator: "mri", N: [3]int{16, 16, 16}}, http.StatusBadRequest, "unknown generator"},
		{"inline_wrong_len", JobSpec{N: [3]int{16, 16, 16}, Template: make([]float64, 7), Reference: make([]float64, 7)}, http.StatusBadRequest, "inline volumes"},
		{"generator_plus_inline", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Template: make([]float64, 4096), Reference: make([]float64, 4096)}, http.StatusBadRequest, "mutually exclusive"},
		{"too_many_tasks", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Tasks: maxTasks + 1}, http.StatusBadRequest, "tasks"},
		{"bad_reg", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Reg: "tv"}, http.StatusBadRequest, "regularization"},
		{"bad_distance", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Distance: "mi"}, http.StatusBadRequest, "distance"},
		{"negative_knob", JobSpec{Generator: "synthetic", N: [3]int{16, 16, 16}, Beta: -1}, http.StatusBadRequest, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := json.Marshal(tc.spec)
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var got struct {
				ID    string `json:"id"`
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (error %q)", resp.StatusCode, tc.status, got.Error)
			}
			if tc.reason != "" && !strings.Contains(got.Error, tc.reason) {
				t.Fatalf("error %q does not mention %q", got.Error, tc.reason)
			}
			if tc.status == http.StatusAccepted {
				if st := waitJob(t, srv, got.ID); st.State != JobDone {
					t.Fatalf("accepted job failed: %s (%s)", st.State, st.Error)
				}
			}
		})
	}

	// Malformed JSON body is a 400 before validation even runs.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", resp.StatusCode)
	}
}

// TestJobTimeoutWatchdog submits a job whose per-job timeout is far below
// its solve time and expects the watchdog to stop it cooperatively: state
// failed, error_kind timeout, with the partial result still attached.
func TestJobTimeoutWatchdog(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()

	spec := JobSpec{Generator: "synthetic", N: [3]int{24, 24, 24}, Tasks: 1,
		TimeSteps: 4, MaxNewtonIters: 50, GradTol: 1e-14, TimeoutSec: 0.05}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, srv, job.ID)
	if st.State != JobFailed {
		t.Fatalf("timed-out job state %s (err %q)", st.State, st.Error)
	}
	if st.ErrorKind != "timeout" || !strings.Contains(st.Error, "watchdog") {
		t.Fatalf("expected a watchdog timeout error, got kind=%q err=%q", st.ErrorKind, st.Error)
	}
	if st.Result == nil || !st.Result.Interrupted {
		t.Fatalf("timeout must attach the partial (interrupted) result: %+v", st.Result)
	}
	if st.Result.NewtonIters >= 50 {
		t.Fatalf("watchdog fired after the solve already ran all %d iterations", st.Result.NewtonIters)
	}
}

// TestServerDefaultTimeout checks Config.DefaultTimeout applies when the
// spec carries none and that TimeoutSec < 0 opts a job out of it.
func TestServerDefaultTimeout(t *testing.T) {
	srv := New(Config{Workers: 1, DefaultTimeout: 50 * time.Millisecond})
	defer srv.Close()

	long := JobSpec{Generator: "synthetic", N: [3]int{24, 24, 24}, Tasks: 1,
		TimeSteps: 4, MaxNewtonIters: 50, GradTol: 1e-14}
	job, err := srv.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, srv, job.ID); st.ErrorKind != "timeout" {
		t.Fatalf("default timeout did not fire: state=%s kind=%q", st.State, st.ErrorKind)
	}

	short := quickSpec()
	short.TimeoutSec = -1 // opt out of the 50ms default
	job2, err := srv.Submit(short)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, srv, job2.ID); st.State != JobDone {
		t.Fatalf("timeout opt-out job should complete: %s (%s)", st.State, st.Error)
	}
}

// TestCancelRunningJob cancels mid-solve and expects a cooperative stop at
// an outer-iteration boundary: state canceled, partial result attached,
// fewer iterations than requested.
func TestCancelRunningJob(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Generator: "synthetic", N: [3]int{24, 24, 24}, Tasks: 1,
		TimeSteps: 4, MaxNewtonIters: 100, GradTol: 1e-14}
	resp, id := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	job, _ := srv.Job(id)

	// Wait for the first iteration event so the cancel provably lands
	// mid-solve, then cancel over HTTP.
	deadline := time.After(time.Minute)
	for {
		evs, notify, terminal := job.EventsSince(0)
		if terminal {
			t.Fatalf("job finished before it could be canceled: %+v", job.Status())
		}
		seen := false
		for _, ev := range evs {
			if ev.Kind == "iteration" {
				seen = true
			}
		}
		if seen {
			break
		}
		select {
		case <-notify:
		case <-deadline:
			t.Fatal("no iteration event within a minute")
		}
	}
	cresp, err := http.Post(ts.URL+"/jobs/"+id+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", cresp.StatusCode)
	}

	st := waitJob(t, srv, id)
	if st.State != JobCanceled {
		t.Fatalf("canceled job state %s (err %q)", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Interrupted || st.Result.NewtonIters >= 100 {
		t.Fatalf("cancel must stop at an iteration boundary with a partial result: %+v", st.Result)
	}
}

// TestCancelQueuedJob cancels a job that never reached a worker: it must
// finish immediately as canceled and the worker must skip it.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv := New(Config{Workers: 1, QueueDepth: 4, beforeRun: func(*Job) {
		started <- struct{}{}
		<-release
	}})

	blocker, err := srv.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := srv.Submit(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.RequestCancel(); got != JobCanceled {
		t.Fatalf("queued cancel returned state %s", got)
	}
	st := queued.Status()
	if st.State != JobCanceled || !strings.Contains(st.Error, "before start") {
		t.Fatalf("queued cancel: %+v", st)
	}

	close(release)
	blocker.Wait()
	srv.Close()
	// The worker drained the queue; the canceled job must not have run.
	if s := srv.Stats(); s.Done != 1 || s.Canceled != 1 {
		t.Fatalf("post-close stats: %+v", s)
	}
}

// TestCloseCancelsQueuedJobs shuts the server down with work still queued
// and checks every never-run job lands in canceled, not limbo.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	srv := New(Config{Workers: 1, QueueDepth: 8, beforeRun: func(*Job) {
		started <- struct{}{}
		<-release
	}})
	blocker, _ := srv.Submit(quickSpec())
	<-started
	var queued []*Job
	for i := 0; i < 3; i++ {
		j, err := srv.Submit(quickSpec())
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
	}
	close(release)
	srv.Close()

	if !blocker.State().Terminal() {
		t.Fatalf("running job not terminal after close: %s", blocker.State())
	}
	for _, j := range queued {
		if st := j.State(); st != JobCanceled && st != JobDone {
			t.Fatalf("queued job %s left in state %s after close", j.ID, st)
		}
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s done channel never closed", j.ID)
		}
	}
}

// TestEventStreamNDJSON exercises GET /jobs/{id}/events: the stream must
// deliver the full queued -> running -> level/iteration -> terminal
// sequence with contiguous sequence numbers, then close.
func TestEventStreamNDJSON(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := quickSpec()
	spec.MaxNewtonIters = 3
	spec.GradTol = 1e-12
	resp, id := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	sresp, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 4 {
		t.Fatalf("stream too short: %d events", len(events))
	}
	kinds := map[string]int{}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: stream not contiguous", i, ev.Seq)
		}
		kinds[ev.Kind]++
	}
	if events[0].State != JobQueued || events[1].State != JobRunning {
		t.Fatalf("stream must open queued->running: %+v %+v", events[0], events[1])
	}
	last := events[len(events)-1]
	if last.Kind != "state" || !last.State.Terminal() {
		t.Fatalf("stream must end on a terminal state event: %+v", last)
	}
	if kinds["level"] < 1 || kinds["iteration"] < 1 {
		t.Fatalf("expected level and iteration progress events, got %v", kinds)
	}
	for _, ev := range events {
		if ev.Kind == "iteration" {
			if ev.Progress == nil || !isFinite(ev.Progress.J) || !isFinite(ev.Progress.Gnorm) {
				t.Fatalf("iteration event carries non-finite objective: %+v", ev.Progress)
			}
		}
	}
}

// TestEventStreamReconnectFrom pins the ?from=N resume contract: a client
// that consumed k events, dropped the connection, and reconnects at from=k
// receives exactly the remainder — no dropped event, no duplicate. The
// handler used to ignore the parameter and restart every stream at
// sequence 0, which made reconnection replay the full history.
func TestEventStreamReconnectFrom(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := quickSpec()
	spec.MaxNewtonIters = 3
	spec.GradTol = 1e-12
	resp, id := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	stream := func(query string) []Event {
		t.Helper()
		sresp, err := http.Get(ts.URL + "/jobs/" + id + "/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("GET events%s: %d", query, sresp.StatusCode)
		}
		var evs []Event
		sc := bufio.NewScanner(sresp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			evs = append(evs, ev)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return evs
	}

	// First client: consume the whole stream (the job runs to completion).
	full := stream("")
	if len(full) < 4 {
		t.Fatalf("stream too short to exercise reconnection: %d events", len(full))
	}

	// Reconnect mid-history: the tail must carry on at seq k exactly.
	k := len(full) / 2
	tail := stream(fmt.Sprintf("?from=%d", k))
	if len(tail) != len(full)-k {
		t.Fatalf("reconnect at from=%d returned %d events, want %d", k, len(tail), len(full)-k)
	}
	for i, ev := range tail {
		want := full[k+i]
		if ev.Seq != want.Seq || ev.Kind != want.Kind || ev.State != want.State {
			t.Fatalf("reconnected event %d: seq=%d kind=%q state=%q, want seq=%d kind=%q state=%q",
				i, ev.Seq, ev.Kind, ev.State, want.Seq, want.Kind, want.State)
		}
	}

	// from=0 replays the full history; from past the end yields nothing
	// (the job is terminal, so the stream closes immediately).
	if replay := stream("?from=0"); len(replay) != len(full) {
		t.Fatalf("from=0 replayed %d events, want %d", len(replay), len(full))
	}
	if over := stream(fmt.Sprintf("?from=%d", len(full)+5)); len(over) != 0 {
		t.Fatalf("from past the end returned %d events, want 0", len(over))
	}

	// Malformed cursors are client errors, not silent restarts.
	for _, bad := range []string{"?from=-1", "?from=x"} {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/events" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET events%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// TestHTTPStatusEndpoints covers the small read-only endpoints: job list,
// status lookup, 404s, stats, healthz.
func TestHTTPStatusEndpoints(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, id := postJob(t, ts.URL, quickSpec())
	waitJob(t, srv, id)

	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.ID != id || st.State != JobDone || st.Result == nil {
		t.Fatalf("status body: %+v", st)
	}
	if st.Result.MisfitFinal >= st.Result.MisfitInit {
		t.Fatalf("served result did not reduce the misfit: %+v", st.Result)
	}

	for _, path := range []string{"/jobs/job-999999", "/jobs/job-999999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
	}
	cresp, err := http.Post(ts.URL+"/jobs/job-999999/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown job: %d", cresp.StatusCode)
	}

	lresp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []struct {
		ID    string   `json:"id"`
		State JobState `json:"state"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list) != 1 || list[0].ID != id || list[0].State != JobDone {
		t.Fatalf("job list: %+v", list)
	}

	var stats ServerStats
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Done != 1 || !stats.CacheEnabled || stats.Cache.Misses != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}

func TestSpecErrorWrapping(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	_, err := srv.Submit(JobSpec{Generator: "nope", N: [3]int{16, 16, 16}})
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("submit of a bad spec must return *SpecError, got %T: %v", err, err)
	}
	if msg := se.Error(); !strings.Contains(msg, "bad job spec") {
		t.Fatalf("spec error message %q", msg)
	}
}
