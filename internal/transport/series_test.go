package transport

import (
	"math"
	"testing"

	"diffreg/internal/field"
	"diffreg/internal/grid"
)

func TestSeriesContextValidates(t *testing.T) {
	g := grid.MustNew(12, 12, 12)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		vs := field.NewSeries(s.Pe, 3)
		if _, err := s.NewSeriesContext(vs, false); err == nil {
			t.Error("nt=4 with 3 intervals accepted")
		}
		vs2 := field.NewSeries(s.Pe, 2)
		sc, err := s.NewSeriesContext(vs2, false)
		if err != nil {
			return err
		}
		if sc.M != 2 || sc.Interval(0) != 0 || sc.Interval(1) != 0 || sc.Interval(2) != 1 || sc.Interval(3) != 1 {
			t.Errorf("interval mapping wrong: M=%d", sc.M)
		}
		return nil
	})
}

func TestStateSeriesWithEqualCoefficientsMatchesStationary(t *testing.T) {
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 2, 4, func(s *Solver) error {
		v := field.NewVector(s.Pe)
		v.SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1) * math.Cos(x2), -0.3 * math.Cos(x1) * math.Sin(x2), 0
		})
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)

		ctx := s.NewContext(v, true)
		want := s.State(ctx, rho0)

		vs := field.Series{v.Clone(), v.Clone()}
		sc, err := s.NewSeriesContext(vs, true)
		if err != nil {
			return err
		}
		got := s.StateSeries(sc, rho0)
		for j := range want {
			for i := range want[j] {
				if math.Abs(want[j][i]-got[j][i]) > 1e-12 {
					t.Errorf("state differs at t=%d i=%d", j, i)
					return nil
				}
			}
		}
		// Adjoint as well.
		lamT := field.NewScalar(s.Pe)
		lamT.SetFunc(smoothBlob)
		wantA := s.Adjoint(ctx, lamT)
		gotA := s.AdjointSeries(sc, lamT)
		for j := range wantA {
			for i := range wantA[j] {
				if math.Abs(wantA[j][i]-gotA[j][i]) > 1e-12 {
					t.Errorf("adjoint differs at t=%d i=%d", j, i)
					return nil
				}
			}
		}
		// Displacement too.
		wantU := s.Displacement(ctx)
		gotU := s.DisplacementSeries(sc)
		for d := 0; d < 3; d++ {
			for i := range wantU.C[d].Data {
				if math.Abs(wantU.C[d].Data[i]-gotU.C[d].Data[i]) > 1e-12 {
					t.Errorf("displacement differs at d=%d i=%d", d, i)
					return nil
				}
			}
		}
		return nil
	})
}

func TestStateSeriesTwoStageFlow(t *testing.T) {
	// Constant velocity a for the first half of [0,1], b for the second:
	// the exact solution is rho0(x - (a+b)/2).
	g := grid.MustNew(24, 24, 24)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		a := [3]float64{0.4, 0, 0}
		b := [3]float64{0, 0.4, 0}
		vs := field.NewSeries(s.Pe, 2)
		vs[0].SetFunc(func(_, _, _ float64) (float64, float64, float64) { return a[0], a[1], a[2] })
		vs[1].SetFunc(func(_, _, _ float64) (float64, float64, float64) { return b[0], b[1], b[2] })
		sc, err := s.NewSeriesContext(vs, true)
		if err != nil {
			return err
		}
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)
		got := s.StateSeries(sc, rho0)[s.Nt]
		maxErr := 0.0
		s.Pe.EachLocal(func(i1, i2, i3, idx int) {
			x1, x2, x3 := s.Pe.Coords(i1, i2, i3)
			want := smoothBlob(x1-(a[0]+b[0])/2, x2-(a[1]+b[1])/2, x3-(a[2]+b[2])/2)
			if e := math.Abs(got[idx] - want); e > maxErr {
				maxErr = e
			}
		})
		if maxErr > 1e-2 {
			t.Errorf("two-stage advection error %g", maxErr)
		}
		return nil
	})
}

func TestIncStateSeriesDirectionalDerivative(t *testing.T) {
	// The incremental state of the series problem must match the finite
	// difference of the series forward solve, with an independent
	// perturbation per interval.
	g := grid.MustNew(16, 16, 16)
	withSolver(t, g, 1, 4, func(s *Solver) error {
		vs := field.NewSeries(s.Pe, 2)
		vs[0].SetFunc(func(x1, x2, _ float64) (float64, float64, float64) {
			return 0.3 * math.Sin(x1) * math.Cos(x2), -0.3 * math.Cos(x1) * math.Sin(x2), 0
		})
		vs[1].SetFunc(func(x1, _, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Cos(x3), 0, 0.2 * math.Sin(x1)
		})
		ws := field.NewSeries(s.Pe, 2)
		ws[0].SetFunc(func(_, x2, x3 float64) (float64, float64, float64) {
			return 0.2 * math.Cos(x3), 0.1 * math.Sin(x2), 0
		})
		ws[1].SetFunc(func(x1, _, _ float64) (float64, float64, float64) {
			return 0, 0.15 * math.Cos(x1), 0.1 * math.Sin(x1)
		})
		rho0 := field.NewScalar(s.Pe)
		rho0.SetFunc(smoothBlob)

		sc, err := s.NewSeriesContext(vs, false)
		if err != nil {
			return err
		}
		states := s.StateSeries(sc, rho0)
		gradRho := s.GradSlices(states)
		inc := s.IncStateSeries(sc, gradRho, ws)

		eps := 1e-5
		vp := vs.Clone()
		vp.Axpy(eps, ws)
		scp, _ := s.NewSeriesContext(vp, false)
		statesP := s.StateSeries(scp, rho0)
		vm := vs.Clone()
		vm.Axpy(-eps, ws)
		scm, _ := s.NewSeriesContext(vm, false)
		statesM := s.StateSeries(scm, rho0)

		maxErr, scale := 0.0, 0.0
		for i := range inc[s.Nt] {
			fd := (statesP[s.Nt][i] - statesM[s.Nt][i]) / (2 * eps)
			if a := math.Abs(fd); a > scale {
				scale = a
			}
			if e := math.Abs(inc[s.Nt][i] - fd); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 0.05*scale {
			t.Errorf("series incremental state vs FD: err %g (scale %g)", maxErr, scale)
		}
		return nil
	})
}
