// Package fusebench measures multi-job fusion throughput (archived as
// BENCH_pr8.json / BENCH_pr9.json): the same job stream pushed through
// a time-sliced server (MaxBatch=1) and through fusion-enabled servers
// (MaxBatch 2 and 4), plus a communication-model comparison of one
// fused pass against the equivalent solo passes in both wire
// precisions, including the fused transport-gather message and byte
// counts of DESIGN.md §12. It lives outside paperbench for the same
// reason servebench does: it imports internal/serve, which imports
// diffreg.
package fusebench

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"diffreg"
	"diffreg/internal/paperbench"
	"diffreg/internal/serve"
)

// FusionRound is one measured serving round at a fixed fusion width.
type FusionRound struct {
	// MaxBatch is the server's fusion width cap for the round (1 =
	// time-sliced baseline).
	MaxBatch      int     `json:"max_batch"`
	Jobs          int     `json:"jobs"`
	Seconds       float64 `json:"seconds"`
	JobsPerMinute float64 `json:"jobs_per_minute"`
	FusedBatches  int64   `json:"fused_batches"`
	FusedJobs     int64   `json:"fused_jobs"`
	// SpeedupVsTimesliced is baseline.Seconds / round.Seconds.
	SpeedupVsTimesliced float64 `json:"speedup_vs_timesliced,omitempty"`
	// BitIdentical reports that every job of the round reproduced the
	// time-sliced baseline Float64bits-exactly (warped image, velocity,
	// and misfit) — fusion is a scheduling change, not a numerical one.
	BitIdentical bool `json:"bit_identical"`
}

// CommModel compares the message-level cost model's FFT-communication
// figure for one fused pass of B jobs against B solo passes on the same
// simulated network. These are MODELED seconds (DESIGN.md §2), not wall
// clock on this host: the fused pass sends the same bytes in B× fewer,
// B×-larger all-to-all messages during the batched preconditioner
// transforms, so the latency term shrinks. This is where the fusion win
// lives on a real cluster; the single-core container cannot surface it
// as wall clock.
type CommModel struct {
	Batch              int     `json:"batch"`
	Precision          string  `json:"precision"`
	SoloFFTCommSec     float64 `json:"solo_fft_comm_seconds"`  // B solo passes, summed
	FusedFFTCommSec    float64 `json:"fused_fft_comm_seconds"` // one fused pass, batch total
	ModeledCommSpeedup float64 `json:"modeled_comm_speedup"`

	// Interpolation-gather fusion figures: per-rank interp-phase message
	// and byte counts (ghost halos plus scattered-value returns) of B
	// solo passes summed against one transport-fused pass, plus the
	// fused-exchange occupancy counters. The message ratio is the
	// latency-term win of fusing the semi-Lagrangian gathers across the
	// job axis (DESIGN.md §12).
	SoloInterpMsgs       int64   `json:"solo_interp_msgs"`
	FusedInterpMsgs      int64   `json:"fused_interp_msgs"`
	SoloInterpBytes      int64   `json:"solo_interp_bytes"`
	FusedInterpBytes     int64   `json:"fused_interp_bytes"`
	InterpMsgReduction   float64 `json:"interp_msg_reduction"`
	FusedInterpExchanges int64   `json:"fused_interp_exchanges"`
	FusedInterpJobs      int64   `json:"fused_interp_jobs"`
}

// Snapshot is the machine-readable output of `regbench -batch`.
type Snapshot struct {
	Grid        [3]int        `json:"grid"`
	TasksPerJob int           `json:"tasks_per_job"`
	Workers     int           `json:"workers"`
	Rounds      []FusionRound `json:"rounds"`
	Modeled     CommModel     `json:"modeled_comm"`
	Modeled32   CommModel     `json:"modeled_comm_float32"`
	// Note qualifies the measured rounds' environment.
	Note string `json:"note"`
}

// fusionRound drains jobsTotal copies of spec through one server and
// reports throughput plus the fusion counters.
func fusionRound(srv *serve.Server, spec serve.JobSpec, jobsTotal int) (FusionRound, []*serve.JobResult, error) {
	jobs := make([]*serve.Job, jobsTotal)
	t0 := time.Now()
	for i := range jobs {
		job, err := srv.Submit(spec)
		if err != nil {
			return FusionRound{}, nil, err
		}
		jobs[i] = job
	}
	results := make([]*serve.JobResult, jobsTotal)
	for i, job := range jobs {
		job.Wait()
		if st := job.Status(); st.State != serve.JobDone {
			return FusionRound{}, nil, fmt.Errorf("job %s: %s (%s)", job.ID, st.State, st.Error)
		}
		results[i] = job.Result()
	}
	sec := time.Since(t0).Seconds()
	st := srv.Stats()
	return FusionRound{
		Jobs:          jobsTotal,
		Seconds:       sec,
		JobsPerMinute: float64(jobsTotal) / sec * 60,
		FusedBatches:  st.Fusion.Batches,
		FusedJobs:     st.Fusion.FusedJobs,
	}, results, nil
}

// bitIdentical reports Float64bits equality of the fields the rounds
// return (misfit, warped image, velocity components).
func bitIdentical(a, b []*serve.JobResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].MisfitFinal) != math.Float64bits(b[i].MisfitFinal) ||
			math.Float64bits(a[i].GnormFinal) != math.Float64bits(b[i].GnormFinal) {
			return false
		}
		if len(a[i].Warped) != len(b[i].Warped) {
			return false
		}
		for k := range a[i].Warped {
			if math.Float64bits(a[i].Warped[k]) != math.Float64bits(b[i].Warped[k]) {
				return false
			}
		}
		for d := range a[i].Velocity {
			for k := range a[i].Velocity[d] {
				if math.Float64bits(a[i].Velocity[d][k]) != math.Float64bits(b[i].Velocity[d][k]) {
					return false
				}
			}
		}
	}
	return true
}

// Batch measures fusion throughput: jobs/min at fusion widths 1, 2,
// and 4 with a single worker (so fused and time-sliced execution
// compete for the same cores), then the communication-model comparison
// of one fused pass against the equivalent solo passes in both wire
// precisions.
func Batch(quick bool) (paperbench.Report, error) {
	n := 64
	jobsTotal := 8
	if quick {
		n = 32
		jobsTotal = 4
	}
	spec := serve.JobSpec{
		Generator: "synthetic", N: [3]int{n, n, n}, Tasks: 2,
		TimeSteps: 2, MaxNewtonIters: 1, MaxKrylovIters: 5, GradTol: 1e-12,
		ReturnFields: true,
	}
	snap := Snapshot{Grid: spec.N, TasksPerJob: spec.Tasks, Workers: 1,
		Note: "measured on a single shared-core container: fused rounds can only win back scheduling and cache-locality overheads here; the communication win of batched transforms is reported by modeled_comm (message-level cost model), not by these wall-clock rounds",
	}

	var baseline FusionRound
	var baselineResults []*serve.JobResult
	for _, b := range []int{1, 2, 4} {
		srv := serve.New(serve.Config{
			Workers: 1, QueueDepth: jobsTotal + 2, MaxBatch: b,
			BatchWindow: 250 * time.Millisecond,
		})
		round, results, err := fusionRound(srv, spec, jobsTotal)
		srv.Close()
		if err != nil {
			return paperbench.Report{}, fmt.Errorf("max_batch=%d: %w", b, err)
		}
		round.MaxBatch = b
		if b == 1 {
			baseline, baselineResults = round, results
			round.BitIdentical = true // the baseline defines the reference bits
		} else {
			round.BitIdentical = bitIdentical(results, baselineResults)
			if round.Seconds > 0 {
				round.SpeedupVsTimesliced = baseline.Seconds / round.Seconds
			}
		}
		snap.Rounds = append(snap.Rounds, round)
	}

	// The transport-fused comparison leg runs at B=2 in quick mode (the
	// CI smoke) and B=4 in the full run, in both wire precisions.
	bModel := 4
	if quick {
		bModel = 2
	}
	model, err := commModel(spec, bModel, "float64")
	if err != nil {
		return paperbench.Report{}, err
	}
	snap.Modeled = model
	model32, err := commModel(spec, bModel, "float32")
	if err != nil {
		return paperbench.Report{}, err
	}
	snap.Modeled32 = model32

	text, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return paperbench.Report{}, err
	}
	return paperbench.Report{Title: "Multi-job fusion throughput", Text: string(text)}, nil
}

// commModel runs one job solo and a width-b fused batch of the same job
// directly through diffreg and compares the cost model's FFT
// communication figures plus the counted interp-phase traffic. The fused
// figures are batch totals (the simulated MPI layer keeps one counter
// set per rank), so the fair solo figures are b independent passes
// summed.
func commModel(spec serve.JobSpec, b int, precision string) (CommModel, error) {
	tmpl, ref, err := diffreg.SyntheticProblem(spec.N[0], spec.N[1], spec.N[2], spec.TimeSteps, false)
	if err != nil {
		return CommModel{}, err
	}
	cfg := diffreg.Config{
		Tasks: spec.Tasks, TimeSteps: spec.TimeSteps, Precision: precision,
		MaxNewtonIters: spec.MaxNewtonIters, MaxKrylovIters: spec.MaxKrylovIters,
		GradTol: spec.GradTol,
	}
	solo, err := diffreg.Register(tmpl, ref, cfg)
	if err != nil {
		return CommModel{}, err
	}
	jobs := make([]diffreg.FusedJob, b)
	for j := range jobs {
		jobs[j] = diffreg.FusedJob{Template: tmpl, Reference: ref, Config: cfg}
	}
	fused, _, err := diffreg.RegisterFused(jobs)
	if err != nil {
		return CommModel{}, err
	}
	m := CommModel{
		Batch:                b,
		Precision:            cfg.Precision,
		SoloFFTCommSec:       float64(b) * solo.Phases.FFTComm,
		FusedFFTCommSec:      fused[0].Phases.FFTComm, // batch total, same on every job
		SoloInterpMsgs:       int64(b) * solo.InterpMsgs,
		FusedInterpMsgs:      fused[0].InterpMsgs,
		SoloInterpBytes:      int64(b) * solo.InterpBytes,
		FusedInterpBytes:     fused[0].InterpBytes,
		FusedInterpExchanges: fused[0].FusedInterpExchanges,
		FusedInterpJobs:      fused[0].FusedInterpJobs,
	}
	if m.FusedFFTCommSec > 0 {
		m.ModeledCommSpeedup = m.SoloFFTCommSec / m.FusedFFTCommSec
	}
	if m.FusedInterpMsgs > 0 {
		m.InterpMsgReduction = float64(m.SoloInterpMsgs) / float64(m.FusedInterpMsgs)
	}
	return m, nil
}
