package regopt

import (
	"fmt"

	"diffreg/internal/field"
	"diffreg/internal/optim"
	"diffreg/internal/transport"
)

// SeriesProblem is the time-varying (non-stationary velocity) extension of
// the optimal control problem described in §V of the paper: the velocity
// is parameterized by NC piecewise-constant-in-time coefficient fields.
// The objective generalizes to
//
//	J[v] = 1/2 ||rho(1)-rho_R||^2 + beta/2 * (1/NC) sum_c |v_c|^2_A,
//
// the reduced gradient decouples per interval,
//
//	g_c = (beta/NC) A v_c + P int_{I_c} lambda grad rho dt,
//
// and the Gauss-Newton matvec follows the same structure with the
// incremental equations. NC = 1 recovers the stationary problem exactly.
// "All the parallelism related issues remain the same" (paper §V): every
// transport solve reuses the stationary per-interval machinery.
type SeriesProblem struct {
	P  *Problem
	NC int

	cur *SeriesEval
	// lastEval caches the most recent forward solve, keyed by the identity
	// of the coefficient fields (see Problem.lastEval).
	lastEval *SeriesEval
}

// NewSeries wraps a problem for nc velocity intervals; Opt.Nt must be
// divisible by nc.
func NewSeries(p *Problem, nc int) (*SeriesProblem, error) {
	if nc < 1 || p.Opt.Nt%nc != 0 {
		return nil, fmt.Errorf("regopt: nt=%d not divisible by %d intervals", p.Opt.Nt, nc)
	}
	return &SeriesProblem{P: p, NC: nc}, nil
}

// SeriesEval caches one evaluation point of the time-varying problem.
type SeriesEval struct {
	V       field.Series
	SC      *transport.SeriesContext
	States  [][]float64
	GradRho [][3][]float64
	Lambdas [][]float64

	J      float64
	Misfit float64
	RegE   float64
	G      field.Series
	Gnorm  float64
}

// evaluate runs the forward solve and fills the objective values.
func (sp *SeriesProblem) evaluate(vs field.Series) (*SeriesEval, error) {
	p := sp.P
	sc, err := p.TS.NewSeriesContext(vs, p.Opt.Incompressible)
	if err != nil {
		return nil, err
	}
	e := &SeriesEval{V: vs, SC: sc}
	e.States = p.TS.StateSeries(sc, p.RhoT)
	p.StateSolves++
	e.Misfit = p.Opt.dist().Eval(p.rho1Of(e.States), p.RhoR)
	for _, v := range vs {
		av := p.regApply(v)
		e.RegE += 0.5 * p.Opt.Beta * av.Dot(v) / float64(sp.NC)
		if gamma := p.divGamma(); gamma > 0 {
			dv := p.Ops.Div(v)
			e.RegE += 0.5 * gamma * dv.Dot(dv) / float64(sp.NC)
		}
	}
	e.J = e.Misfit + e.RegE
	sp.lastEval = e
	return e, nil
}

// cachedEval returns the cached evaluation when vs holds the identical
// coefficient field objects as the last solve (the line-search candidate
// handed back by the optimizer), or runs a fresh forward solve.
func (sp *SeriesProblem) cachedEval(vs field.Series) (*SeriesEval, error) {
	if e := sp.lastEval; e != nil && sameSeries(e.V, vs) {
		return e, nil
	}
	return sp.evaluate(vs)
}

// sameSeries reports whether two series hold the identical field objects.
func sameSeries(a, b field.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) > 0
}

// Evaluate implements optim.Objective.
func (sp *SeriesProblem) Evaluate(vs field.Series) optim.ObjVals {
	e, err := sp.evaluate(vs)
	if err != nil {
		panic(err) // interval mismatch is a programming error past NewSeries
	}
	return optim.ObjVals{J: e.J, Misfit: e.Misfit}
}

// accumulateBInterval integrates lam grad rho over one interval with the
// trapezoidal rule (interval endpoints carry half weights, which sum to
// the full weight across adjacent intervals).
func (sp *SeriesProblem) accumulateBInterval(c int, lams [][]float64, gradRho [][3][]float64) *field.Vector {
	p := sp.P
	nt := p.Opt.Nt
	dt := 1 / float64(nt)
	m := nt / sp.NC
	b := field.NewVector(p.Pe)
	for j := c * m; j <= (c+1)*m; j++ {
		w := dt
		if j == c*m || j == (c+1)*m {
			w = dt / 2
		}
		lam := lams[j]
		for d := 0; d < 3; d++ {
			gr := gradRho[j][d]
			dst := b.C[d].Data
			for i := range dst {
				dst[i] += w * lam[i] * gr[i]
			}
		}
	}
	return b
}

// EvalGradient implements optim.Objective: the per-interval reduced
// gradients, cached for the Hessian matvecs.
func (sp *SeriesProblem) EvalGradient(vs field.Series) optim.GradVals[field.Series] {
	p := sp.P
	e, err := sp.cachedEval(vs)
	if err != nil {
		panic(err)
	}
	lamT := p.Opt.dist().TerminalAdjoint(p.rho1Of(e.States), p.RhoR)
	e.Lambdas = p.TS.AdjointSeries(e.SC, lamT)
	p.AdjointSolves++
	e.GradRho = p.TS.GradSlices(e.States)

	g := make(field.Series, sp.NC)
	for c := 0; c < sp.NC; c++ {
		b := sp.accumulateBInterval(c, e.Lambdas, e.GradRho)
		// The data term of interval c is int_{I_c}; the reg term carries
		// the 1/NC interval weight. Scale the data term by NC so that the
		// gradient is taken with respect to the series inner product
		// (which averages over intervals).
		gc := p.regApply(vs[c])
		gc.Scale(p.Opt.Beta)
		pb := p.Project(b)
		pb.Scale(float64(sp.NC))
		gc.Axpy(1, pb)
		if gamma := p.divGamma(); gamma > 0 {
			gc.Axpy(-gamma, p.Ops.GradDiv(vs[c]))
		}
		g[c] = gc
	}
	e.G = g
	e.Gnorm = g.NormL2()
	sp.cur = e
	return optim.GradVals[field.Series]{J: e.J, Misfit: e.Misfit, G: g, Gnorm: e.Gnorm}
}

// HessMatVec implements optim.Objective: the Gauss-Newton matvec at the
// cached evaluation point.
func (sp *SeriesProblem) HessMatVec(vts field.Series) field.Series {
	p := sp.P
	e := sp.cur
	if e == nil {
		panic("regopt: series HessMatVec before EvalGradient")
	}
	p.Matvecs++
	incStates := p.TS.IncStateSeries(e.SC, e.GradRho, vts)
	term := p.Opt.dist().IncTerminal(p.rho1Of(e.States), p.RhoR, incStates[p.Opt.Nt])
	lamsT := p.TS.IncAdjointGNSeries(e.SC, term)

	h := make(field.Series, sp.NC)
	for c := 0; c < sp.NC; c++ {
		bt := sp.accumulateBInterval(c, lamsT, e.GradRho)
		hc := p.regApply(vts[c])
		hc.Scale(p.Opt.Beta)
		pb := p.Project(bt)
		pb.Scale(float64(sp.NC))
		hc.Axpy(1, pb)
		if gamma := p.divGamma(); gamma > 0 {
			hc.Axpy(-gamma, p.Ops.GradDiv(vts[c]))
		}
		h[c] = hc
	}
	return h
}

// ApplyPrec implements optim.Objective: the spectral preconditioner per
// interval.
func (sp *SeriesProblem) ApplyPrec(r field.Series) field.Series {
	out := make(field.Series, len(r))
	for c := range r {
		out[c] = sp.P.ApplyPrec(r[c])
	}
	return out
}

// Project implements optim.Objective per interval.
func (sp *SeriesProblem) Project(vs field.Series) field.Series {
	out := make(field.Series, len(vs))
	for c := range vs {
		out[c] = sp.P.Project(vs[c])
	}
	return out
}

// SetBeta updates the regularization weight (continuation).
func (sp *SeriesProblem) SetBeta(beta float64) { sp.P.Opt.Beta = beta }

// Cur returns the cached evaluation of the last gradient point.
func (sp *SeriesProblem) Cur() *SeriesEval { return sp.cur }

var _ optim.Objective[field.Series] = (*SeriesProblem)(nil)
