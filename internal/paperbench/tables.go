package paperbench

import (
	"fmt"
	"strings"

	"diffreg/internal/core"
	"diffreg/internal/perfmodel"
)

// tableIRows are the published Maverick results (synthetic problem, no
// incompressibility constraint, 16 tasks per node).
var tableIRows = []paperRow{
	{"#1", cube(64), 1, 16, 1.54, 1.20e-1, 9.69e-2, 1.82e-1, 8.20e-1},
	{"#2", cube(64), 2, 32, 9.50e-1, 1.42e-1, 4.88e-2, 1.15e-1, 4.27e-1},
	{"#3", cube(128), 1, 16, 1.52e1, 1.73, 1.35, 1.84, 6.66},
	{"#4", cube(128), 2, 32, 7.88, 1.30, 5.47e-1, 1.17, 3.49},
	{"#5", cube(128), 4, 64, 4.70, 1.19, 2.83e-1, 5.43e-1, 1.87},
	{"#6", cube(128), 16, 256, 2.01, 6.68e-1, 6.60e-2, 1.86e-1, 4.91e-1},
	{"#7", cube(256), 2, 32, 7.99e1, 1.44e1, 1.01e1, 1.08e1, 2.83e1},
	{"#8", cube(256), 8, 128, 2.30e1, 7.27, 1.56, 2.60, 8.04},
	{"#9", cube(256), 32, 512, 7.23, 2.67, 3.38e-1, 5.93e-1, 2.00},
	{"#10", cube(256), 64, 1024, 4.72, 1.70, 1.72e-1, 4.80e-1, 1.04},
	{"#11", cube(512), 8, 128, 1.91e2, 4.50e1, 2.38e1, 2.18e1, 6.89e1},
	{"#12", cube(512), 32, 512, 6.07e1, 1.90e1, 4.18, 4.22, 1.74e1},
	{"#13", cube(512), 64, 1024, 3.29e1, 1.28e1, 1.77, 2.33, 8.57},
}

// tableIIRows are the published Stampede results (2 tasks per node).
var tableIIRows = []paperRow{
	{"#14", cube(512), 256, 512, 3.84e1, 4.61, 2.62, 4.12, 1.98e1},
	{"#15", cube(512), 512, 1024, 2.02e1, 2.23, 1.30, 2.38, 9.42},
	{"#16", cube(512), 1024, 2048, 1.31e1, 1.69, 6.29e-1, 1.25, 4.83},
	{"#17", cube(1024), 256, 512, 3.54e2, 3.29e1, 3.10e1, 3.72e1, 1.93e2},
	{"#18", cube(1024), 512, 1024, 1.69e2, 2.23e1, 1.39e1, 1.79e1, 8.85e1},
	{"#19", cube(1024), 1024, 2048, 8.57e1, 1.15e1, 6.75, 8.78, 4.42e1},
}

// tableIIIRows are the published incompressible 128^3 results (Maverick,
// 2 tasks per node). The nonzero interpolation "communication" at 1 task
// in the paper is the local pack/copy overhead their timer attributes to
// the communication phase; our model charges pure message cost, so it
// reports 0 there.
var tableIIIRows = []paperRow{
	{"#20", cube(128), 1, 1, 1.48e2, 0, 1.98e1, 2.82, 9.26e1},
	{"#21", cube(128), 2, 4, 4.27e1, 3.18, 5.73, 8.39e-1, 2.31e1},
	{"#22", cube(128), 4, 8, 2.25e1, 2.17, 2.72, 5.83e-1, 1.15e1},
	{"#23", cube(128), 8, 16, 1.09e1, 1.10, 1.25, 4.03e-1, 5.80},
	{"#24", cube(128), 16, 32, 5.69, 6.69e-1, 6.20e-1, 2.68e-1, 2.93},
}

// tableIVRows are the published brain-image strong-scaling results
// (256x300x256, beta = 1e-2, two Newton iterations, Maverick).
var tableIVRows = []paperRow{
	{"#25", [3]int{256, 300, 256}, 1, 1, 1.34e3, 0, 2.59e2, 2.70e1, 7.72e2},
	{"#26", [3]int{256, 300, 256}, 2, 4, 3.92e2, 2.76e1, 6.91e1, 5.73, 1.90e2},
	{"#27", [3]int{256, 300, 256}, 8, 16, 9.54e1, 8.59, 1.38e1, 1.20, 4.78e1},
	{"#28", [3]int{256, 300, 256}, 16, 32, 4.85e1, 4.94, 6.50, 5.35e-1, 2.36e1},
	{"#29", [3]int{256, 300, 256}, 32, 256, 1.20e1, 4.03, 1.10, 8.77e-2, 3.31},
}

// modelTable renders a paper-vs-model comparison for a published table.
func modelTable(rows []paperRow, w0 perfmodel.Workload, m perfmodel.Machine) string {
	var b strings.Builder
	rowHeader(&b)
	for _, r := range rows {
		w := w0
		w.N = r.n
		w.P = r.tasks
		compareRow(&b, r, perfmodel.Predict(w, m))
	}
	return b.String()
}

// measuredScaling runs real solves at container scale and reports the
// per-rank busy-time proxy (max over ranks of measured execution plus
// modeled communication), which is what the wall clock would be on a
// machine with one core per rank.
func measuredScaling(n [3]int, tasks []int, prob Problem, cfg core.Config) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "measured on this implementation (grid %dx%dx%d, goroutine ranks):\n", n[0], n[1], n[2])
	fmt.Fprintf(&b, "%6s | %10s %10s %10s %10s | %12s | %8s | %10s | %9s\n",
		"tasks", "fft-comm", "fft-exec", "int-comm", "int-exec", "busy-time", "newton", "pool-spdup", "a2a-batch")
	base := 0.0
	for _, p := range tasks {
		out, err := RunMeasurement(n, p, prob, cfg)
		if err != nil {
			return "", err
		}
		ph := out.Phases
		busy := ph.FFTComm + ph.FFTExec + ph.InterpComm + ph.InterpExec
		if base == 0 {
			base = busy * float64(tasks[0])
		}
		// Achieved transpose batching factor: field-transposes carried per
		// all-to-all stage (1 at p = 1, where no transpose communicates).
		batch := 1.0
		if out.Counts.TransposeStages > 0 {
			batch = float64(out.Counts.TransposeFields) / float64(out.Counts.TransposeStages)
		}
		fmt.Fprintf(&b, "%6d | %10.4f %10.4f %10.4f %10.4f | %12.4f | %8d | %4.2fx @%-3d | %8.2fx\n",
			p, ph.FFTComm, ph.FFTExec, ph.InterpComm, ph.InterpExec, busy, out.Counts.NewtonIters,
			ph.PoolSpeedup, ph.PoolWorkers, batch)
	}
	return b.String(), nil
}

// Table1 regenerates Table I: synthetic strong and weak scaling on the
// Maverick machine model, plus a measured mini-scaling on this machine.
// quick restricts the measured section for use inside benchmarks.
func Table1(quick bool) (Report, error) {
	cfg := scalingConfig()
	w0, _, err := measureWorkload(SyntheticProblem, cfg, cube(32))
	if err != nil {
		return Report{}, err
	}
	m := perfmodel.Calibrate("maverick", workloadAt(w0, cube(128), 16), perfmodel.MaverickCalibration())

	var b strings.Builder
	fmt.Fprintf(&b, "workload (measured at 32^3, mesh-independent): %d FFTs, %d interpolation sweeps\n",
		w0.FFTs, w0.InterpSweeps)
	fmt.Fprintf(&b, "machine model calibrated on run #3; all other rows are predictions\n\n")
	b.WriteString(modelTable(tableIRows, w0, m))

	// Headline strong-scaling efficiencies (paper: 67%% for 32->512 tasks,
	// 50%% for 32->1024 on the 256^3 problem).
	t32 := perfmodel.Predict(workloadAt(w0, cube(256), 32), m).TimeToSolution
	t512 := perfmodel.Predict(workloadAt(w0, cube(256), 512), m).TimeToSolution
	t1024 := perfmodel.Predict(workloadAt(w0, cube(256), 1024), m).TimeToSolution
	fmt.Fprintf(&b, "\nstrong scaling 256^3: eff(32->512)=%.0f%% (paper 67%%), eff(32->1024)=%.0f%% (paper 50%%)\n",
		100*perfmodel.Efficiency(t32, 32, t512, 512), 100*perfmodel.Efficiency(t32, 32, t1024, 1024))

	tasks := []int{1, 2, 4}
	nMeas := cube(32)
	if quick {
		tasks = []int{1, 2}
		nMeas = cube(16)
	}
	meas, err := measuredScaling(nMeas, tasks, SyntheticProblem, cfg)
	if err != nil {
		return Report{}, err
	}
	b.WriteString("\n")
	b.WriteString(meas)
	return Report{ID: "table1", Title: "Table I: synthetic scaling (Maverick)", Text: b.String()}, nil
}

// Table2 regenerates Table II: large-scale synthetic runs on the Stampede
// machine model (512^3 and 1024^3 on up to 2048 tasks).
func Table2() (Report, error) {
	cfg := scalingConfig()
	w0, _, err := measureWorkload(SyntheticProblem, cfg, cube(32))
	if err != nil {
		return Report{}, err
	}
	m := perfmodel.Calibrate("stampede", workloadAt(w0, cube(512), 1024), perfmodel.StampedeCalibration())
	var b strings.Builder
	fmt.Fprintf(&b, "machine model calibrated on run #15; all other rows are predictions\n\n")
	b.WriteString(modelTable(tableIIRows, w0, m))
	return Report{ID: "table2", Title: "Table II: large-scale synthetic runs (Stampede)", Text: b.String()}, nil
}

// Table3 regenerates Table III: the incompressible (volume preserving)
// 128^3 runs. The workload counts come from a real incompressible solve;
// the machine model is the Table I Maverick calibration, so the agreement
// here is a genuine cross-check rather than a fit.
func Table3(quick bool) (Report, error) {
	cfg := scalingConfig()
	cfg.Opt.Incompressible = true
	cfg.SkipMap = false // keep the map so det(grad y) can be reported
	nMeas := cube(32)
	if quick {
		nMeas = cube(16)
	}
	wInc, outInc, err := measureWorkload(SyntheticIncompressible, cfg, nMeas)
	if err != nil {
		return Report{}, err
	}
	cfgC := scalingConfig()
	wCmp, _, err := measureWorkload(SyntheticProblem, cfgC, nMeas)
	if err != nil {
		return Report{}, err
	}
	m := perfmodel.Calibrate("maverick", workloadAt(wCmp, cube(128), 16), perfmodel.MaverickCalibration())

	var b strings.Builder
	fmt.Fprintf(&b, "incompressible workload: %d FFTs, %d sweeps (unconstrained case: %d FFTs, %d sweeps)\n",
		wInc.FFTs, wInc.InterpSweeps, wCmp.FFTs, wCmp.InterpSweeps)
	fmt.Fprintf(&b, "machine model from Table I calibration (cross-check, not a fit)\n\n")
	b.WriteString(modelTable(tableIIIRows, wInc, m))
	fmt.Fprintf(&b, "\nmeasured det(grad y) on the incompressible solve: [%.4f, %.4f] (volume preserving)\n",
		outInc.DetMin, outInc.DetMax)
	return Report{ID: "table3", Title: "Table III: incompressible 128^3 runs (Maverick)", Text: b.String()}, nil
}

// brainGrid scales the 256x300x256 brain grid down by the given factor for
// container-feasible measurement runs.
func brainGrid(scale int) [3]int {
	return [3]int{256 / scale, 300 / scale, 256 / scale}
}

// Table4 regenerates Table IV: brain-image strong scaling at beta = 1e-2
// with two Newton iterations.
func Table4(quick bool) (Report, error) {
	cfg := scalingConfig()
	cfg.Newton.MaxIters = 2
	cfg.Newton.GradTol = 1e-12 // force exactly two iterations, as the paper does
	nMeas := brainGrid(8)      // 32x37x32
	if quick {
		nMeas = brainGrid(16)
	}
	w0, _, err := measureWorkload(BrainProblem, cfg, nMeas)
	if err != nil {
		return Report{}, err
	}
	mCmp, _, err := measureWorkload(SyntheticProblem, scalingConfig(), cube(32))
	if err != nil {
		return Report{}, err
	}
	m := perfmodel.Calibrate("maverick", workloadAt(mCmp, cube(128), 16), perfmodel.MaverickCalibration())

	var b strings.Builder
	fmt.Fprintf(&b, "brain workload (2 Newton iterations): %d FFTs, %d sweeps; machine model from Table I\n",
		w0.FFTs, w0.InterpSweeps)
	fmt.Fprintf(&b, "brain phantom substitutes for NIREP na01/na02 (see DESIGN.md)\n\n")
	b.WriteString(modelTable(tableIVRows, w0, m))
	meas, err := measuredScaling(nMeas, []int{1, 2, 4}, BrainProblem, cfg)
	if err != nil {
		return Report{}, err
	}
	b.WriteString("\n")
	b.WriteString(meas)
	return Report{ID: "table4", Title: "Table IV: brain strong scaling (Maverick)", Text: b.String()}, nil
}

// Table5 regenerates Table V: sensitivity of the computational work to the
// regularization weight. This table is reproduced by real solves: the
// Hessian matvec count is a resolution-independent algorithmic quantity.
func Table5(quick bool) (Report, error) {
	type row struct {
		beta    float64
		matvecs int
		seconds float64
	}
	paper := []row{{1e-1, 43, 2.42e1}, {1e-3, 217, 1.11e2}, {1e-5, 1689, 8.58e2}}
	betas := []float64{1e-1, 1e-3, 1e-5}
	n := brainGrid(8)
	if quick {
		betas = []float64{1e-1, 1e-3}
		n = brainGrid(16)
	}
	var got []row
	for _, beta := range betas {
		cfg := scalingConfig()
		cfg.Opt.Beta = beta
		cfg.Newton.MaxIters = 4
		cfg.Newton.GradTol = 1e-14 // fixed 4 Newton iterations, as in Table V
		cfg.Newton.MaxKrylov = 2000
		out, err := RunMeasurement(n, 1, BrainProblem, cfg)
		if err != nil {
			return Report{}, err
		}
		got = append(got, row{beta, out.Counts.Matvecs, out.Phases.TimeToSolution})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "four Newton iterations on the brain pair (measured at %dx%dx%d)\n\n", n[0], n[1], n[2])
	fmt.Fprintf(&b, "%10s | %18s | %24s\n", "beta", "matvecs", "time (relative)")
	fmt.Fprintf(&b, "%10s | %8s %9s | %11s %12s\n", "", "paper", "measured", "paper", "measured")
	for i, r := range got {
		pp := row{}
		for _, p := range paper {
			if p.beta == r.beta {
				pp = p
			}
		}
		relPaper := pp.seconds / paper[0].seconds
		relGot := r.seconds / got[0].seconds
		fmt.Fprintf(&b, "%10.0e | %8d %9d | %5.1f (%4.1fx) %5.1f (%4.1fx)\n",
			r.beta, pp.matvecs, r.matvecs, pp.seconds, relPaper, r.seconds, relGot)
		_ = i
	}
	b.WriteString("\nthe preconditioner is mesh independent but not beta independent:\n")
	b.WriteString("matvecs and time grow steeply as beta decreases (paper: 35x at beta=1e-5)\n")
	return Report{ID: "table5", Title: "Table V: sensitivity to the regularization weight", Text: b.String()}, nil
}

func workloadAt(w perfmodel.Workload, n [3]int, p int) perfmodel.Workload {
	w.N = n
	w.P = p
	return w
}

// Table5Ext extends Table V beyond the paper: the same beta sweep solved
// with the three Hessian preconditioners — the paper's inverse
// regularization, the data-shifted variant, and the two-level coarse-grid
// preconditioner (the paper's "major remaining challenge"). Real runs.
func Table5Ext(quick bool) (Report, error) {
	betas := []float64{1e-1, 1e-3, 1e-5}
	n := brainGrid(8)
	if quick {
		betas = []float64{1e-1, 1e-3}
		n = brainGrid(16)
	}
	kinds := []struct {
		name     string
		shifted  bool
		twoLevel bool
	}{
		{"inverse-reg (paper)", false, false},
		{"data-shifted", true, false},
		{"two-level", false, true},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "four Newton iterations on the brain pair (measured at %dx%dx%d)\n", n[0], n[1], n[2])
	fmt.Fprintf(&b, "fine Hessian matvecs per solve:\n\n")
	fmt.Fprintf(&b, "%10s |", "beta")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %20s", k.name)
	}
	fmt.Fprintf(&b, "\n")
	for _, beta := range betas {
		fmt.Fprintf(&b, "%10.0e |", beta)
		for _, k := range kinds {
			cfg := scalingConfig()
			cfg.Opt.Beta = beta
			cfg.Opt.ShiftedPrec = k.shifted
			cfg.Opt.TwoLevelPrec = k.twoLevel
			cfg.Newton.MaxIters = 4
			cfg.Newton.GradTol = 1e-14
			cfg.Newton.MaxKrylov = 2000
			out, err := RunMeasurement(n, 1, BrainProblem, cfg)
			if err != nil {
				return Report{}, err
			}
			fmt.Fprintf(&b, " %20d", out.Counts.Matvecs)
		}
		fmt.Fprintf(&b, "\n")
	}
	b.WriteString("\nthe coarse-grid correction removes most of the beta-sensitivity of\n")
	b.WriteString("the single-level preconditioner (paper § Limitations / Conclusions)\n")
	return Report{ID: "table5ext", Title: "Table V (extended): preconditioner comparison", Text: b.String()}, nil
}
